// Ablation harness for the design choices DESIGN.md calls out:
//  (a) exact vs grid discrepancy inside STLocal — result quality and speed;
//  (b) expected-frequency model choice (global mean / window / EWMA) —
//      retrieval quality on distGen;
//  (c) discrepancy-based temporal intervals vs the Kleinberg automaton as
//      STComb's interval source.

#include <cstdio>
#include <memory>
#include <vector>

#include "stburst/common/timer.h"
#include "stburst/core/kleinberg.h"
#include "stburst/core/stcomb.h"
#include "stburst/core/stlocal.h"
#include "stburst/eval/pattern_match.h"
#include "stburst/gen/generators.h"

using namespace stburst;

namespace {

GeneratorOptions AblationOptions() {
  GeneratorOptions o;
  o.timeline = 200;
  o.num_streams = 150;
  o.num_terms = 40;
  o.num_patterns = 40;
  o.seed = 5150;
  return o;
}

RetrievalAggregate EvalStLocal(const SyntheticGenerator& gen,
                               const ExpectedModelFactory& factory,
                               const StLocalOptions& opts, double* seconds) {
  // Bound the per-snapshot rectangle count: noise rectangles beyond the
  // first few never win the retrieval match but dominate runtime.
  StLocalOptions bounded = opts;
  bounded.rbursty.max_rectangles = 6;
  Timer timer;
  std::vector<PatternRetrievalScore> scores;
  for (const InjectedPattern& truth : gen.patterns()) {
    TermSeries series = gen.GenerateTerm(truth.term);
    auto windows =
        MineRegionalPatterns(series, gen.positions(), factory, bounded);
    std::vector<MinedPattern> mined;
    if (windows.ok()) {
      for (const auto& w : *windows) {
        mined.push_back(MinedPattern{w.streams, w.timeframe, w.score});
      }
    }
    scores.push_back(ScoreRetrieval(truth.streams, truth.timeframe, mined,
                                    gen.options().timeline));
  }
  *seconds = timer.ElapsedSeconds();
  return Aggregate(scores);
}

}  // namespace

int main() {
  auto gen = SyntheticGenerator::Create(GeneratorMode::kDist, AblationOptions());
  if (!gen.ok()) {
    std::fprintf(stderr, "generator failed\n");
    return 1;
  }

  auto mean_factory = [] {
    return std::unique_ptr<ExpectedFrequencyModel>(new GlobalMeanModel());
  };

  // --- (a) exact vs grid discrepancy ------------------------------------
  std::printf("=== Ablation (a): discrepancy kernel inside STLocal ===\n");
  std::printf("%-14s %10s %12s %10s %10s\n", "kernel", "Jaccard", "StartErr",
              "EndErr", "secs");
  {
    StLocalOptions exact;
    double secs = 0.0;
    auto agg = EvalStLocal(*gen, mean_factory, exact, &secs);
    std::printf("%-14s %10.3f %12.2f %10.2f %10.2f\n", "exact", agg.mean_jaccard,
                agg.mean_start_error, agg.mean_end_error, secs);

    for (size_t g : {16, 32, 64}) {
      StLocalOptions grid;
      grid.rbursty.rect.mode = MaxRectOptions::Mode::kGrid;
      grid.rbursty.rect.grid_cols = g;
      grid.rbursty.rect.grid_rows = g;
      agg = EvalStLocal(*gen, mean_factory, grid, &secs);
      std::printf("grid %-9zu %10.3f %12.2f %10.2f %10.2f\n", g,
                  agg.mean_jaccard, agg.mean_start_error, agg.mean_end_error,
                  secs);
    }
  }

  // --- (b) expected-frequency model choice -------------------------------
  std::printf("\n=== Ablation (b): expected-frequency model (STLocal) ===\n");
  std::printf("%-14s %10s %12s %10s\n", "model", "Jaccard", "StartErr",
              "EndErr");
  struct NamedFactory {
    const char* name;
    ExpectedModelFactory factory;
  };
  const NamedFactory factories[] = {
      {"global-mean",
       [] { return std::unique_ptr<ExpectedFrequencyModel>(new GlobalMeanModel()); }},
      {"window-14",
       [] { return std::unique_ptr<ExpectedFrequencyModel>(new WindowMeanModel(14)); }},
      {"ewma-0.1",
       [] { return std::unique_ptr<ExpectedFrequencyModel>(new EwmaModel(0.1)); }},
      {"seasonal-7",
       [] { return std::unique_ptr<ExpectedFrequencyModel>(new SeasonalMeanModel(7)); }},
  };
  for (const NamedFactory& nf : factories) {
    StLocalOptions opts;
    double secs = 0.0;
    auto agg = EvalStLocal(*gen, nf.factory, opts, &secs);
    std::printf("%-14s %10.3f %12.2f %10.2f\n", nf.name, agg.mean_jaccard,
                agg.mean_start_error, agg.mean_end_error);
  }

  // --- (c) interval detector feeding STComb ------------------------------
  std::printf("\n=== Ablation (c): STComb interval source ===\n");
  std::printf("%-14s %10s %12s %10s\n", "detector", "Jaccard", "StartErr",
              "EndErr");
  {
    StCombOptions copts;
    copts.min_interval_burstiness = 0.3;
    StComb miner(copts);
    std::vector<PatternRetrievalScore> disc_scores, klein_scores;
    for (const InjectedPattern& truth : gen->patterns()) {
      TermSeries series = gen->GenerateTerm(truth.term);

      std::vector<MinedPattern> mined;
      for (const auto& p : miner.MinePatterns(series)) {
        mined.push_back(MinedPattern{p.streams, p.timeframe, p.score});
      }
      disc_scores.push_back(ScoreRetrieval(truth.streams, truth.timeframe,
                                           mined, gen->options().timeline));

      // Kleinberg per stream, pooled through the same clique machinery.
      std::vector<StreamInterval> intervals;
      for (StreamId s = 0; s < series.num_streams(); ++s) {
        std::span<const double> row_view = series.StreamRow(s);
        std::vector<double> row(row_view.begin(), row_view.end());
        std::vector<double> totals(row.size(), 0.0);
        double max_row = 1.0;
        for (double v : row) max_row = std::max(max_row, v);
        for (size_t i = 0; i < row.size(); ++i) totals[i] = max_row * 2.0;
        auto bursts = KleinbergBursts(row, totals);
        if (!bursts.ok()) continue;
        for (const auto& b : *bursts) {
          intervals.push_back(StreamInterval{s, b.interval, b.burstiness});
        }
      }
      mined.clear();
      for (const auto& p : miner.MineFromIntervals(intervals)) {
        mined.push_back(MinedPattern{p.streams, p.timeframe, p.score});
      }
      klein_scores.push_back(ScoreRetrieval(truth.streams, truth.timeframe,
                                            mined, gen->options().timeline));
    }
    auto d = Aggregate(disc_scores);
    auto k = Aggregate(klein_scores);
    std::printf("%-14s %10.3f %12.2f %10.2f\n", "discrepancy", d.mean_jaccard,
                d.mean_start_error, d.mean_end_error);
    std::printf("%-14s %10.3f %12.2f %10.2f\n", "kleinberg", k.mean_jaccard,
                k.mean_start_error, k.mean_end_error);
  }
  return 0;
}
