// Figure 9 — Weibull PDF curves for the (k, c) settings the generators use
// (paper Appendix B, Eq. 12). Prints the series the figure plots.

#include <cstdio>

#include "stburst/common/random.h"

using namespace stburst;

int main() {
  struct Config {
    double k, c;
  };
  // The four parameterizations shown in the paper's Figure 9 spirit: sharp
  // onset, slow build-up, narrow spike, long-lived event.
  const Config configs[] = {{1.5, 4.0}, {2.0, 8.0}, {5.0, 6.0}, {3.0, 14.0}};

  std::printf("=== Figure 9: Weibull pdf curves f(x; c, k) ===\n");
  std::printf("%6s", "x");
  for (const Config& c : configs) std::printf("  k=%.1f,c=%-5.1f", c.k, c.c);
  std::printf("\n");
  for (double x = 0.0; x <= 24.0; x += 1.0) {
    std::printf("%6.1f", x);
    for (const Config& c : configs) {
      std::printf("  %12.5f", WeibullPdf(x, c.k, c.c));
    }
    std::printf("\n");
  }
  std::printf("\nModes (peak locations): ");
  for (const Config& c : configs) std::printf("%.2f  ", WeibullMode(c.k, c.c));
  std::printf("\nEach curve integrates to 1; the generators rescale so the\n"
              "peak hits the sampled frequency P (Appendix B).\n");
  return 0;
}
