// Figure 7 — Running time (ms) per timestamp: online STLocal vs STComb
// re-applied to the growing prefix, emulating the streaming scenario on the
// Topix corpus.
//
// Paper shape: STLocal flat (around 1 ms per term per timestamp at the
// paper's scale); STComb's cost grows with the prefix length but stays
// small in absolute terms.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "stburst/common/timer.h"

using namespace stburst;
using namespace stburst::bench;

int main() {
  TopixSimulator sim = MakeTopix();
  const Collection& corpus = sim.collection();
  FrequencyIndex freq = FrequencyIndex::Build(corpus);
  std::vector<Point2D> positions = corpus.StreamPositions();
  const Timestamp weeks = corpus.timeline_length();
  const size_t n = positions.size();

  // Per-term processing is independent (§6.4), so we time a representative
  // sample of terms and report the average per-term per-timestamp cost.
  std::vector<TermId> terms;
  for (size_t e = 0; e < sim.events().size(); ++e) {
    for (TermId t : sim.QueryTerms(e)) terms.push_back(t);
  }
  for (TermId t = 0; t < corpus.vocabulary().size() && terms.size() < 60;
       t += 23) {
    if (freq.TotalCount(t) > 0.0) terms.push_back(t);
  }

  std::vector<double> stlocal_ms(weeks, 0.0), stcomb_ms(weeks, 0.0);
  StComb stcomb = MakeStComb();
  std::vector<double> burstiness(n);

  for (TermId term : terms) {
    TermSeries series = freq.DenseSeries(term);

    // STLocal: online, one snapshot per tick.
    std::vector<std::unique_ptr<ExpectedFrequencyModel>> models;
    for (size_t s = 0; s < n; ++s) models.push_back(MeanFactory()());
    StLocal miner(positions);
    for (Timestamp w = 0; w < weeks; ++w) {
      for (StreamId s = 0; s < n; ++s) {
        double y = series.at(s, w);
        burstiness[s] =
            models[s]->HasHistory() ? y - models[s]->Expected() : 0.0;
        models[s]->Observe(y);
      }
      Timer timer;
      if (!miner.ProcessSnapshot(burstiness).ok()) return 1;
      stlocal_ms[w] += timer.ElapsedMillis();
    }

    // STComb: re-applied to the whole prefix at every tick.
    for (Timestamp w = 0; w < weeks; ++w) {
      TermSeries prefix(n, w + 1);
      for (StreamId s = 0; s < n; ++s) {
        for (Timestamp t = 0; t <= w; ++t) prefix.set(s, t, series.at(s, t));
      }
      Timer timer;
      auto patterns = stcomb.MinePatterns(prefix);
      stcomb_ms[w] += timer.ElapsedMillis();
      (void)patterns;
    }
  }

  std::printf("=== Figure 7: running time (ms) per timestamp, per term ===\n");
  std::printf("terms timed: %zu, streams: %zu\n\n", terms.size(), n);
  std::printf("%6s %12s %12s\n", "week", "STComb", "STLocal");
  double denom = static_cast<double>(terms.size());
  PerfJson perf("bench_fig7");
  perf.SetCorpus(corpus.num_documents(), n, corpus.vocabulary().size(), weeks);
  for (Timestamp w = 0; w < weeks; ++w) {
    std::printf("%6d %12.3f %12.3f\n", w, stcomb_ms[w] / denom,
                stlocal_ms[w] / denom);
    perf.Add(StringPrintf("stcomb_week_%d", w), stcomb_ms[w] / denom * 1e6,
             terms.size());
    perf.Add(StringPrintf("stlocal_week_%d", w), stlocal_ms[w] / denom * 1e6,
             terms.size());
  }
  perf.Write("BENCH_fig7.json");
  std::printf("\nPaper shape check: STLocal flat (online, cost independent\n"
              "of the prefix); STComb growing with the prefix length. Note:\n"
              "our clique kernel is fast enough that STComb sits below\n"
              "STLocal at 48 weeks; the paper's crossover appears on longer\n"
              "timelines (see EXPERIMENTS.md).\n");
  return 0;
}
