// Figure 4 — Timeframe length (weeks) of the top pattern per query.
//
// For each Major-Events query, prints the length of the timeframe of the
// top regional (STLocal) and top combinatorial (STComb) pattern. Paper
// shape: similar lengths for most queries, with STLocal occasionally longer
// (events that linger in the local spotlight after fading elsewhere).

#include <cstdio>

#include "bench/bench_common.h"

using namespace stburst;
using namespace stburst::bench;

int main() {
  TopixSimulator sim = MakeTopix();
  const Collection& corpus = sim.collection();
  FrequencyIndex freq = FrequencyIndex::Build(corpus);
  std::vector<Point2D> positions = corpus.StreamPositions();

  std::printf("=== Figure 4: timeframe (weeks) of the top pattern ===\n");
  std::printf("%2s  %-16s %10s %10s\n", "#", "Query", "STLocal", "STComb");
  for (size_t e = 0; e < sim.events().size(); ++e) {
    auto terms = sim.QueryTerms(e);

    SpatiotemporalWindow window;
    Timestamp local_len =
        TopRegionalWindow(freq, positions, terms, &window)
            ? window.timeframe.length()
            : 0;
    CombinatorialPattern clique;
    Timestamp comb_len = TopCombinatorialPattern(freq, terms, &clique)
                             ? clique.timeframe.length()
                             : 0;
    std::printf("%2zu  %-16s %10d %10d\n", e + 1,
                std::string(sim.events()[e].query).c_str(), local_len,
                comb_len);
  }
  return 0;
}
