#!/usr/bin/env python3
"""Compare two BENCH_*.json perf logs and flag regressions.

The stburst bench harnesses (bench_micro, bench_fig7, bench_fig8) write
machine-readable perf JSON with the schema

    {"benchmark": "bench_micro",
     "isa": "avx512",
     "corpus": {"documents": D, "streams": n, "terms": V, "timeline": L},
     "results": [{"op": "frequency_build", "ns_per_op": 81.3e6, "items": N},
                 ...]}

This tool joins two such files on "op" and reports the candidate/baseline
ratio per op. Ops slower than baseline by more than --threshold (default
10%) are regressions; any regression makes the exit status nonzero so CI
can gate on it. Ops ending in "_naive" are fixed seed re-implementations
kept for speedup reporting — their drift is machine noise, so they are
ignored unless --include-naive is given.

"isa" records the SIMD dispatch level active when the run was recorded
(see bench_common.h). Two runs recorded under different levels measure
different code paths, so comparing them gates on an ISA change rather
than a code change: when both files carry "isa" and the values differ,
the tool prints the per-op ratios for reference but refuses to gate —
it warns and exits 0. Files without "isa" (pre-dispatch baselines) are
compared normally.

Usage:
    diff_bench.py BASELINE.json CANDIDATE.json [--threshold 0.10]
    diff_bench.py --self-test
"""

import argparse
import json
import sys


def load_results(path):
    """Returns ({op: ns_per_op}, isa_or_None) from one perf JSON file."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for entry in doc.get("results", []):
        out[entry["op"]] = float(entry["ns_per_op"])
    return out, doc.get("isa")


def isa_mismatch(baseline_isa, candidate_isa):
    """True when both runs recorded an ISA and the levels differ."""
    return (baseline_isa is not None and candidate_isa is not None
            and baseline_isa != candidate_isa)


def diff(baseline, candidate, threshold, include_naive=False):
    """Compares {op: ns} maps; returns (report_lines, regressions)."""
    lines = []
    regressions = []
    common = [op for op in baseline if op in candidate]
    for op in common:
        if not include_naive and op.endswith("_naive"):
            continue
        base, cand = baseline[op], candidate[op]
        if base <= 0:
            continue
        ratio = cand / base
        verdict = "ok"
        if ratio > 1.0 + threshold:
            verdict = "REGRESSION"
            regressions.append(op)
        elif ratio < 1.0 - threshold:
            verdict = "improved"
        lines.append("%-36s %12.0f -> %12.0f ns/op  %6.2fx  %s"
                     % (op, base, cand, ratio, verdict))
    only_base = sorted(set(baseline) - set(candidate))
    only_cand = sorted(set(candidate) - set(baseline))
    if only_base:
        # Non-fatal by design (renames and retirements are legitimate), but
        # loud: a benchmark that silently disappears from the new run would
        # otherwise let baseline drift hide a deleted op forever.
        lines.append("WARNING: %d op(s) in the baseline are missing from the "
                     "candidate run: %s — deleted benchmark or renamed op? "
                     "(not gated; refresh the baseline if intentional)"
                     % (len(only_base), ", ".join(only_base)))
    if only_cand:
        # Symmetric with the vanished-op case: an op the baseline has never
        # seen runs ungated, so a silently passing new benchmark would stay
        # ungated forever if this stayed quiet.
        lines.append("WARNING: %d op(s) in the candidate are missing from the "
                     "baseline: %s — new benchmark running ungated? "
                     "(not gated; refresh the baseline to start gating it)"
                     % (len(only_cand), ", ".join(only_cand)))
    return lines, regressions


def self_test():
    baseline = {"a": 100.0, "b": 200.0, "c_naive": 50.0, "gone": 1.0}
    candidate = {"a": 105.0, "b": 400.0, "c_naive": 500.0, "new": 1.0}

    lines, regressions = diff(baseline, candidate, threshold=0.10)
    assert regressions == ["b"], regressions          # 2x slower: flagged
    assert all("c_naive" not in r for r in regressions)  # naive ops ignored
    # A vanished op warns loudly (names the op) but never gates: the warning
    # is how baseline drift surfaces a deleted benchmark. A candidate-only
    # op warns just as loudly — it is running ungated until the baseline is
    # refreshed — and never gates either.
    warnings = [l for l in lines if l.startswith("WARNING")]
    assert len(warnings) == 2, lines
    vanished = [l for l in warnings if "missing from the candidate" in l]
    assert len(vanished) == 1 and "gone" in vanished[0], lines
    assert "gone" not in regressions
    ungated = [l for l in warnings if "missing from the baseline" in l]
    assert len(ungated) == 1 and "new" in ungated[0], lines
    assert "new" not in regressions

    warn_all, none = diff(baseline, {"a": 109.0}, threshold=0.10)
    assert none == [], none                           # within threshold: ok
    assert any(l.startswith("WARNING") and "b" in l for l in warn_all)

    _, incl = diff(baseline, candidate, threshold=0.10, include_naive=True)
    assert "c_naive" in incl

    _, loose = diff(baseline, candidate, threshold=2.0)
    assert loose == [], loose                         # threshold respected

    # ISA guard: gating is refused only when both runs recorded a level and
    # they differ; legacy files without "isa" keep comparing normally.
    assert isa_mismatch("avx512", "scalar")
    assert not isa_mismatch("avx512", "avx512")
    assert not isa_mismatch(None, "avx512")           # pre-dispatch baseline
    assert not isa_mismatch("avx512", None)
    assert not isa_mismatch(None, None)

    print("diff_bench.py self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json files; nonzero exit on regression.")
    parser.add_argument("baseline", nargs="?", help="baseline BENCH_*.json")
    parser.add_argument("candidate", nargs="?", help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative slowdown tolerated per op "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--include-naive", action="store_true",
                        help="also gate the *_naive baseline ops")
    parser.add_argument("--soft", action="store_true",
                        help="report regressions as warnings and exit 0; "
                             "tooling errors (unreadable/malformed files) "
                             "still exit nonzero — for CI smoke jobs on "
                             "shared runners")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in unit checks and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.candidate:
        parser.error("baseline and candidate files are required "
                     "(or use --self-test)")

    baseline, baseline_isa = load_results(args.baseline)
    candidate, candidate_isa = load_results(args.candidate)
    lines, regressions = diff(baseline, candidate, args.threshold,
                              args.include_naive)
    print("diff_bench: %s -> %s (threshold %.0f%%)"
          % (args.baseline, args.candidate, args.threshold * 100))
    for line in lines:
        print("  " + line)
    if isa_mismatch(baseline_isa, candidate_isa):
        # Different dispatch levels measure different code paths; gating
        # here would flag the ISA change, not a code change. The ratios
        # above stay printed for reference, but nothing gates.
        print("WARNING: baseline recorded isa=%s but candidate recorded "
              "isa=%s — refusing to gate across dispatch levels. Re-record "
              "both runs under the same level (see STBURST_NO_AVX512 / "
              "STBURST_NO_AVX2 in the README) to compare them."
              % (baseline_isa, candidate_isa))
        return 0
    if regressions:
        if args.soft:
            print("WARNING: %d op(s) regressed >%.0f%%: %s (non-gating: --soft)"
                  % (len(regressions), args.threshold * 100,
                     ", ".join(regressions)))
            return 0
        print("FAIL: %d op(s) regressed >%.0f%%: %s"
              % (len(regressions), args.threshold * 100,
                 ", ".join(regressions)))
        return 1
    print("OK: no op regressed more than %.0f%%" % (args.threshold * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
