// Figure 6 — Number of open spatiotemporal windows per term over the
// timeline, against the n*i worst-case upper bound.
//
// Paper shape: the worst case grows as 181, 362, 543, ... while the
// observed average stays orders of magnitude lower, peaking around ~10 open
// windows per term.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace stburst;
using namespace stburst::bench;

int main() {
  TopixSimulator sim = MakeTopix();
  const Collection& corpus = sim.collection();
  FrequencyIndex freq = FrequencyIndex::Build(corpus);
  std::vector<Point2D> positions = corpus.StreamPositions();
  const Timestamp weeks = corpus.timeline_length();
  const size_t n = positions.size();

  // Evaluate over the query terms plus a sample of background terms — the
  // same population as Figure 5, subsampled for harness runtime.
  std::vector<TermId> terms;
  for (size_t e = 0; e < sim.events().size(); ++e) {
    for (TermId t : sim.QueryTerms(e)) terms.push_back(t);
  }
  for (TermId t = 0; t < corpus.vocabulary().size(); t += 7) {
    if (freq.TotalCount(t) > 0.0) terms.push_back(t);
  }

  std::vector<double> open_windows(weeks, 0.0);
  std::vector<double> burstiness(n);
  for (TermId term : terms) {
    TermSeries series = freq.DenseSeries(term);
    std::vector<std::unique_ptr<ExpectedFrequencyModel>> models;
    for (size_t s = 0; s < n; ++s) models.push_back(MeanFactory()());
    StLocal miner(positions);
    for (Timestamp w = 0; w < weeks; ++w) {
      for (StreamId s = 0; s < n; ++s) {
        double y = series.at(s, w);
        burstiness[s] =
            models[s]->HasHistory() ? y - models[s]->Expected() : 0.0;
        models[s]->Observe(y);
      }
      if (!miner.ProcessSnapshot(burstiness).ok()) return 1;
      open_windows[w] += static_cast<double>(miner.num_open_windows());
    }
  }

  std::printf("=== Figure 6: open spatiotemporal windows per term ===\n");
  std::printf("terms averaged: %zu\n\n", terms.size());
  std::printf("%6s %14s %14s\n", "week", "upper bound", "observed avg");
  for (Timestamp w = 0; w < weeks; ++w) {
    std::printf("%6d %14zu %14.2f\n", w, n * static_cast<size_t>(w + 1),
                open_windows[w] / static_cast<double>(terms.size()));
  }
  std::printf("\nPaper shape check: observed average orders of magnitude\n"
              "below the bound, peaking near ~10.\n");
  return 0;
}
