// Table 3 — Precision in top-10 documents, plus the pairwise top-k set
// similarities reported in §6.3.
//
// For each Major-Events query, builds three engines over the simulated
// Topix corpus — TB (temporal only), STLocal (regional patterns), STComb
// (combinatorial patterns) — retrieves the top-10 documents with the
// Threshold Algorithm, and scores precision with the simulated annotator
// (provenance labels). Paper shape: STLocal perfect, STComb near-perfect,
// TB losing precision on the tier-3 (localized) queries; pairwise top-10
// overlaps clearly below 1 (0.61 / 0.58 / 0.67 in the paper).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "stburst/eval/metrics.h"
#include "stburst/index/search_engine.h"
#include "stburst/index/tb_engine.h"

using namespace stburst;
using namespace stburst::bench;

namespace {

std::vector<DocId> Docs(const TopKResult& r) {
  std::vector<DocId> out;
  for (const auto& d : r.docs) out.push_back(d.doc);
  return out;
}

double Precision(const TopixSimulator& sim, const TopKResult& r,
                 size_t event_index) {
  std::vector<bool> rel;
  for (const auto& d : r.docs) rel.push_back(sim.IsRelevant(d.doc, event_index));
  return PrecisionAtK(rel, 10);
}

}  // namespace

int main() {
  TopixSimulator sim = MakeTopix();
  const Collection& corpus = sim.collection();
  FrequencyIndex freq = FrequencyIndex::Build(corpus);
  std::vector<Point2D> positions = corpus.StreamPositions();

  std::printf("=== Table 3: precision in top-10 documents ===\n");
  std::printf("%2s  %-16s %8s %8s %8s\n", "#", "Query", "TB", "STLocal",
              "STComb");

  double tb_sum = 0, local_sum = 0, comb_sum = 0;
  double sim_comb_tb = 0, sim_comb_local = 0, sim_tb_local = 0;
  StComb stcomb = MakeStComb();

  for (size_t e = 0; e < sim.events().size(); ++e) {
    auto terms = sim.QueryTerms(e);

    // Pattern indexes per engine for this query's terms.
    PatternIndex regional, combinatorial;
    for (TermId term : terms) {
      TermSeries series = freq.DenseSeries(term);
      auto windows = MineRegionalPatterns(series, positions, MeanFactory());
      if (windows.ok()) {
        for (const auto& w : *windows) regional.AddWindow(term, w);
      }
      for (const auto& p : stcomb.MinePatterns(series)) {
        combinatorial.AddCombinatorial(term, p);
      }
    }
    PatternIndex tb = BuildTbPatternIndex(freq, terms);

    auto tb_engine = BurstySearchEngine::Build(corpus, tb);
    auto local_engine = BurstySearchEngine::Build(corpus, regional);
    auto comb_engine = BurstySearchEngine::Build(corpus, combinatorial);

    TopKResult tb_top = tb_engine.Search(terms, 10);
    TopKResult local_top = local_engine.Search(terms, 10);
    TopKResult comb_top = comb_engine.Search(terms, 10);

    double p_tb = Precision(sim, tb_top, e);
    double p_local = Precision(sim, local_top, e);
    double p_comb = Precision(sim, comb_top, e);
    tb_sum += p_tb;
    local_sum += p_local;
    comb_sum += p_comb;

    sim_comb_tb += TopKOverlap(Docs(comb_top), Docs(tb_top), 10);
    sim_comb_local += TopKOverlap(Docs(comb_top), Docs(local_top), 10);
    sim_tb_local += TopKOverlap(Docs(tb_top), Docs(local_top), 10);

    std::printf("%2zu  %-16s %8.1f %8.1f %8.1f\n", e + 1,
                std::string(sim.events()[e].query).c_str(), p_tb, p_local,
                p_comb);
  }

  const double n = static_cast<double>(sim.events().size());
  std::printf("%2s  %-16s %8.2f %8.2f %8.2f\n", "", "average", tb_sum / n,
              local_sum / n, comb_sum / n);

  std::printf("\n=== §6.3 pairwise top-10 set similarity ===\n");
  std::printf("STComb-TB:      %.2f   (paper: 0.61)\n", sim_comb_tb / n);
  std::printf("STComb-STLocal: %.2f   (paper: 0.58)\n", sim_comb_local / n);
  std::printf("TB-STLocal:     %.2f   (paper: 0.67)\n", sim_tb_local / n);
  return 0;
}
