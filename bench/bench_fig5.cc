// Figure 5 — Distribution of the average number of bursty rectangles per
// term per timestamp (the paper renders it as a pie chart; we print the
// histogram buckets).
//
// Paper shape: for the vast majority of terms (92%), the average number of
// rectangles per timestamp lies in [0, 1) — far below the n = 181 worst
// case assumed by the complexity analysis.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "stburst/core/rbursty.h"

using namespace stburst;
using namespace stburst::bench;

int main() {
  TopixSimulator sim = MakeTopix();
  const Collection& corpus = sim.collection();
  FrequencyIndex freq = FrequencyIndex::Build(corpus);
  std::vector<Point2D> positions = corpus.StreamPositions();
  const Timestamp weeks = corpus.timeline_length();

  // Average #rectangles per timestamp for every term in the vocabulary.
  std::vector<double> avg_rects;
  std::vector<std::unique_ptr<ExpectedFrequencyModel>> models;
  std::vector<double> burstiness(positions.size());
  for (TermId term = 0; term < corpus.vocabulary().size(); ++term) {
    // Terms that never occur trivially produce 0 rectangles; the paper's
    // population is over observed terms.
    if (freq.TotalCount(term) <= 0.0) continue;
    TermSeries series = freq.DenseSeries(term);

    models.clear();
    for (size_t s = 0; s < positions.size(); ++s) {
      models.push_back(MeanFactory()());
    }
    size_t total_rects = 0;
    for (Timestamp w = 0; w < weeks; ++w) {
      for (StreamId s = 0; s < positions.size(); ++s) {
        double y = series.at(s, w);
        burstiness[s] =
            models[s]->HasHistory() ? y - models[s]->Expected() : 0.0;
        models[s]->Observe(y);
      }
      auto rects = RBursty(positions, burstiness);
      if (rects.ok()) total_rects += rects->size();
    }
    avg_rects.push_back(static_cast<double>(total_rects) /
                        static_cast<double>(weeks));
  }

  std::printf("=== Figure 5: avg #bursty rectangles per term/timestamp ===\n");
  std::printf("terms analyzed: %zu (n = %zu streams)\n\n", avg_rects.size(),
              positions.size());
  const char* labels[] = {"[0, 1)", "[1, 2)", "[2, 3)", "[3, 4)", "4+"};
  std::vector<int64_t> buckets(5, 0);
  for (double v : avg_rects) {
    size_t b = v < 4.0 ? static_cast<size_t>(v) : 4;
    ++buckets[b];
  }
  for (size_t b = 0; b < buckets.size(); ++b) {
    std::printf("  %-7s %7lld terms  (%5.1f%%)\n", labels[b],
                static_cast<long long>(buckets[b]),
                100.0 * static_cast<double>(buckets[b]) /
                    static_cast<double>(avg_rects.size()));
  }
  std::printf("\nPaper shape check: the [0, 1) bucket dominates (92%% in the\n"
              "paper), orders of magnitude below the n-per-timestamp worst "
              "case.\n");
  return 0;
}
