// Microbenchmarks for the core kernels and the whole-vocabulary batch
// mining engine. Self-contained harness (no external benchmark framework):
// each op is timed with an adaptive repetition loop and the results are
// written to BENCH_micro.json (see PerfJson in bench_common.h for the
// schema) so the perf trajectory is tracked across PRs.
//
// Ops suffixed `_naive` are faithful re-implementations of the seed's
// serial hot paths (allocation-heavy per-term loops, unfused Kadane with a
// geometric membership rescan, multiset top-k, sort-merge index build) kept
// here as a fixed baseline: the reported optimized/naive ratios are the
// PR-over-seed speedups, measurable from one binary.

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <functional>
#include <limits>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/bench_common.h"
#include "stburst/common/parallel.h"
#include "stburst/common/random.h"
#include "stburst/common/simd.h"
#include "stburst/common/timer.h"
#include "stburst/core/batch_miner.h"
#include "stburst/history/long_horizon.h"
#include "stburst/stream/feed_runtime.h"
#include "stburst/stream/sharded_runtime.h"
#include "stburst/core/discrepancy.h"
#include "stburst/core/getmax.h"
#include "stburst/core/max_clique.h"
#include "stburst/core/temporal.h"
#include "stburst/geo/grid.h"
#include "stburst/index/inverted_index.h"
#include "stburst/index/threshold_algorithm.h"

namespace stburst {
namespace {

using bench::PerfJson;

// Times `fn`, adaptively repeating until >= 0.2 s of wall clock (or 1 rep
// for ops that already exceed it), then keeps the fastest of three such
// windows — the usual defense against scheduler noise on shared machines
// (the minimum is the run least perturbed by other tenants). Returns ns per
// call.
double TimeNs(const std::function<void()>& fn) {
  fn();  // warm-up
  size_t reps = 1;
  double best_s = 0.0;
  for (;;) {
    Timer timer;
    for (size_t i = 0; i < reps; ++i) fn();
    double s = timer.ElapsedSeconds();
    if (s >= 0.2 || reps >= (1u << 20)) {
      best_s = s;
      break;
    }
    double target = s > 1e-9 ? 0.25 / s : 1e6;
    reps = std::max(reps + 1, static_cast<size_t>(
                                  static_cast<double>(reps) * target));
  }
  for (int window = 0; window < 2; ++window) {
    Timer timer;
    for (size_t i = 0; i < reps; ++i) fn();
    best_s = std::min(best_s, timer.ElapsedSeconds());
  }
  return best_s * 1e9 / static_cast<double>(reps);
}

// ---------------------------------------------------------------------------
// Naive references: the seed's hot-path implementations, verbatim in shape.
// ---------------------------------------------------------------------------

struct NaiveCellMatrix {
  size_t rows = 0, cols = 0;
  std::vector<double> cells;
  std::vector<double> col_lo, col_hi, row_lo, row_hi;
  double at(size_t r, size_t c) const { return cells[r * cols + c]; }
};

struct NaiveKadane {
  double score = -std::numeric_limits<double>::infinity();
  size_t c1 = 0, c2 = 0;
};

NaiveKadane KadaneNaive(const std::vector<double>& sums) {
  NaiveKadane best;
  double run = 0.0;
  size_t run_start = 0;
  for (size_t c = 0; c < sums.size(); ++c) {
    if (run <= 0.0) {
      run = sums[c];
      run_start = c;
    } else {
      run += sums[c];
    }
    if (run > best.score) {
      best.score = run;
      best.c1 = run_start;
      best.c2 = c;
    }
  }
  return best;
}

MaxRectResult SolveCellsNaive(const NaiveCellMatrix& m,
                              const std::vector<Point2D>& points) {
  MaxRectResult result;
  if (m.rows == 0 || m.cols == 0) return result;
  std::vector<size_t> positive_rows;
  for (size_t r = 0; r < m.rows; ++r) {
    for (size_t c = 0; c < m.cols; ++c) {
      if (m.at(r, c) > 0.0) {
        positive_rows.push_back(r);
        break;
      }
    }
  }
  if (positive_rows.empty()) return result;
  const size_t last_positive_row = positive_rows.back();

  double best_score = 0.0;
  size_t best_r1 = 0, best_r2 = 0, best_c1 = 0, best_c2 = 0;
  bool found = false;
  std::vector<double> col_sums(m.cols);
  for (size_t r1 : positive_rows) {
    std::fill(col_sums.begin(), col_sums.end(), 0.0);
    size_t next_positive = 0;
    while (positive_rows[next_positive] < r1) ++next_positive;
    for (size_t r2 = r1; r2 <= last_positive_row; ++r2) {
      for (size_t c = 0; c < m.cols; ++c) col_sums[c] += m.at(r2, c);
      if (positive_rows[next_positive] != r2) continue;
      ++next_positive;
      NaiveKadane k = KadaneNaive(col_sums);
      if (k.score > best_score) {
        best_score = k.score;
        best_r1 = r1;
        best_r2 = r2;
        best_c1 = k.c1;
        best_c2 = k.c2;
        found = true;
      }
      if (next_positive >= positive_rows.size()) break;
    }
  }
  if (!found) return result;
  result.score = best_score;
  result.rect = Rect(m.col_lo[best_c1], m.row_lo[best_r1], m.col_hi[best_c2],
                     m.row_hi[best_r2]);
  for (size_t i = 0; i < points.size(); ++i) {
    if (result.rect.Contains(points[i])) result.points_inside.push_back(i);
  }
  return result;
}

NaiveCellMatrix BuildExactMatrixNaive(const std::vector<Point2D>& points,
                                      const std::vector<double>& weights) {
  NaiveCellMatrix m;
  std::vector<double> xs, ys;
  for (size_t i = 0; i < points.size(); ++i) {
    if (weights[i] == 0.0) continue;
    xs.push_back(points[i].x);
    ys.push_back(points[i].y);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());
  if (xs.empty() || ys.empty()) return m;
  m.cols = xs.size();
  m.rows = ys.size();
  m.col_lo = xs;
  m.col_hi = xs;
  m.row_lo = ys;
  m.row_hi = ys;
  m.cells.assign(m.rows * m.cols, 0.0);
  auto index_of = [](const std::vector<double>& v, double key) {
    return static_cast<size_t>(
        std::lower_bound(v.begin(), v.end(), key) - v.begin());
  };
  for (size_t i = 0; i < points.size(); ++i) {
    if (weights[i] == 0.0) continue;
    m.cells[index_of(ys, points[i].y) * m.cols + index_of(xs, points[i].x)] +=
        weights[i];
  }
  return m;
}

MaxRectResult MaxWeightRectangleExactNaive(const std::vector<Point2D>& points,
                                           const std::vector<double>& weights) {
  return SolveCellsNaive(BuildExactMatrixNaive(points, weights), points);
}

MaxRectResult MaxWeightRectangleGridNaive(const std::vector<Point2D>& points,
                                          const std::vector<double>& weights,
                                          size_t g) {
  Rect bounds = Rect::BoundingBox(points);
  auto grid = UniformGrid::Create(bounds, g, g);
  if (!grid.ok()) return MaxRectResult{};
  NaiveCellMatrix m;
  m.rows = grid->rows();
  m.cols = grid->cols();
  m.cells = grid->AggregateWeights(points, weights);
  m.col_lo.resize(m.cols);
  m.col_hi.resize(m.cols);
  m.row_lo.resize(m.rows);
  m.row_hi.resize(m.rows);
  for (size_t c = 0; c < m.cols; ++c) {
    Rect r = grid->CellRect(c, 0);
    m.col_lo[c] = r.min_x();
    m.col_hi[c] = r.max_x();
  }
  for (size_t r = 0; r < m.rows; ++r) {
    Rect rr = grid->CellRect(0, r);
    m.row_lo[r] = rr.min_y();
    m.row_hi[r] = rr.max_y();
  }
  return SolveCellsNaive(m, points);
}

// Seed ThresholdTopK: multiset top-k tracker, no reserved maps.
TopKResult ThresholdTopKNaive(const InvertedIndex& index,
                              const std::vector<TermId>& query, size_t k) {
  TopKResult result;
  if (k == 0) return result;
  std::vector<TermId> terms = query;
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  if (terms.empty()) return result;
  std::vector<const std::vector<Posting>*> lists;
  for (TermId t : terms) lists.push_back(&index.postings(t));
  std::vector<size_t> pos(lists.size(), 0);
  std::unordered_map<DocId, double> candidates;
  std::multiset<double> best_k;
  auto offer = [&](double score) {
    if (best_k.size() < k) {
      best_k.insert(score);
    } else if (score > *best_k.begin()) {
      best_k.erase(best_k.begin());
      best_k.insert(score);
    }
  };
  for (;;) {
    bool advanced = false;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (pos[i] >= lists[i]->size()) continue;
      const Posting& p = (*lists[i])[pos[i]];
      ++pos[i];
      ++result.sorted_accesses;
      advanced = true;
      if (candidates.find(p.doc) != candidates.end()) continue;
      double total = 0.0;
      for (size_t j = 0; j < lists.size(); ++j) {
        double s = 0.0;
        if (j == i) {
          s = p.score;
        } else {
          ++result.random_accesses;
          if (!index.Score(terms[j], p.doc, &s)) s = 0.0;
        }
        total += s;
      }
      candidates.emplace(p.doc, total);
      offer(total);
    }
    if (!advanced) break;
    double threshold = 0.0;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (pos[i] < lists[i]->size()) threshold += (*lists[i])[pos[i]].score;
    }
    if (best_k.size() == k && *best_k.begin() >= threshold) break;
    if (threshold <= 0.0 && best_k.size() == k) break;
  }
  for (const auto& [doc, score] : candidates) {
    if (score > 0.0) result.docs.push_back(ScoredDoc{doc, score});
  }
  std::sort(result.docs.begin(), result.docs.end(),
            [](const ScoredDoc& a, const ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (result.docs.size() > k) result.docs.resize(k);
  return result;
}

// Seed FrequencyIndex::Build: per-doc token sort, append everything, then a
// global per-term sort-merge.
std::vector<std::vector<TermPosting>> BuildFrequencyNaive(
    const Collection& collection) {
  std::vector<std::vector<TermPosting>> postings(
      collection.vocabulary().size());
  for (const Document& doc : collection.documents()) {
    std::vector<TermId> toks = doc.tokens;
    std::sort(toks.begin(), toks.end());
    for (size_t i = 0; i < toks.size();) {
      size_t j = i;
      while (j < toks.size() && toks[j] == toks[i]) ++j;
      postings[toks[i]].push_back(
          TermPosting{doc.stream, doc.time, static_cast<double>(j - i)});
      i = j;
    }
  }
  for (auto& plist : postings) {
    std::sort(plist.begin(), plist.end(),
              [](const TermPosting& a, const TermPosting& b) {
                if (a.stream != b.stream) return a.stream < b.stream;
                return a.time < b.time;
              });
    size_t out = 0;
    for (size_t i = 0; i < plist.size();) {
      size_t j = i;
      double count = 0.0;
      while (j < plist.size() && plist[j].stream == plist[i].stream &&
             plist[j].time == plist[i].time) {
        count += plist[j].count;
        ++j;
      }
      plist[out++] = TermPosting{plist[i].stream, plist[i].time, count};
      i = j;
    }
    plist.resize(out);
  }
  return postings;
}

// Seed StComb::MineFromIntervals: rebuild the pool and re-run the full
// MaxWeightClique (fresh event sort + hash maps) for every extracted
// pattern.
size_t MineFromIntervalsNaive(const std::vector<StreamInterval>& intervals) {
  size_t num_patterns = 0;
  std::vector<WeightedInterval> pool;
  pool.reserve(intervals.size());
  for (const StreamInterval& si : intervals) {
    pool.push_back(WeightedInterval{si.interval, si.burstiness,
                                    static_cast<int64_t>(si.stream)});
  }
  for (;;) {
    CliqueResult clique = MaxWeightClique(pool);
    if (clique.empty() || clique.weight <= 0.0) break;
    for (size_t idx : clique.members) pool[idx].weight = 0.0;
    ++num_patterns;
  }
  return num_patterns;
}

// Seed whole-vocabulary loop: fresh dense matrix per term, a row copy and a
// score-vector allocation per stream, iterated full-rebuild clique mining,
// serial over the vocabulary.
size_t MineVocabularyNaive(const FrequencyIndex& freq,
                           double min_interval_burstiness) {
  size_t total_patterns = 0;
  const size_t n = freq.num_streams();
  const size_t L = static_cast<size_t>(freq.timeline_length());
  for (TermId term = 0; term < freq.num_terms(); ++term) {
    TermSeries series = freq.DenseSeries(term);
    std::vector<StreamInterval> intervals;
    for (StreamId s = 0; s < n; ++s) {
      std::span<const double> view = series.StreamRow(s);
      std::vector<double> row(view.begin(), view.end());  // seed copied rows
      double total = 0.0;
      for (double v : row) total += v;
      if (total <= 0.0) continue;
      std::vector<double> scores(L);  // seed allocated scores per stream
      const double baseline = 1.0 / static_cast<double>(L);
      for (size_t i = 0; i < L; ++i) scores[i] = row[i] / total - baseline;
      for (const Segment& seg : MaximalSegments(scores)) {
        if (seg.score <= min_interval_burstiness) continue;
        intervals.push_back(
            StreamInterval{s,
                           Interval{static_cast<Timestamp>(seg.start),
                                    static_cast<Timestamp>(seg.end)},
                           seg.score});
      }
    }
    total_patterns += MineFromIntervalsNaive(intervals);
  }
  return total_patterns;
}

// The seed ThreadPool: one mutex-guarded FIFO shared by every worker. Kept
// here as the fixed baseline for the work-stealing pool comparison (the
// library pool now runs per-worker deques; this replica preserves the old
// scheduling shape: every Submit and every task grab bump the one lock).
class MutexQueuePool {
 public:
  explicit MutexQueuePool(size_t num_threads) {
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
  ~MutexQueuePool() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }
  void Submit(std::function<void()> task) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++in_flight_;
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return in_flight_ == 0; });
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
        if (queue_.empty()) return;  // shutdown with a drained queue
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_, done_cv_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

// ---------------------------------------------------------------------------

std::vector<double> RandomScores(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.Uniform(-1.0, 1.0);
  return v;
}

void RandomPlane(size_t n, uint64_t seed, std::vector<Point2D>* pts,
                 std::vector<double>* w) {
  Rng rng(seed);
  pts->resize(n);
  w->resize(n);
  for (size_t i = 0; i < n; ++i) {
    (*pts)[i] = Point2D{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    (*w)[i] = rng.Uniform(-1.0, 1.0);
  }
}

InvertedIndex RandomIndex(size_t docs, uint64_t seed) {
  Rng rng(seed);
  InvertedIndex idx;
  for (TermId t = 0; t < 3; ++t) {
    for (DocId d = 0; d < docs; ++d) {
      if (rng.Bernoulli(0.5)) idx.Add(t, d, rng.Uniform(0.01, 10.0));
    }
  }
  idx.Finalize();
  return idx;
}

int Run() {
  PerfJson perf("bench_micro");
  auto report = [&perf](const std::string& op, double ns, size_t items) {
    perf.Add(op, ns, items);
    std::printf("%-34s %14.0f ns/op  (%zu items)\n", op.c_str(), ns, items);
  };

  std::printf("=== bench_micro: kernels ===\n");

  {
    auto scores = RandomScores(1 << 14, 1);
    report("maximal_segments_16k",
           TimeNs([&] { MaximalSegments(scores); }), scores.size());
  }
  {
    Rng rng(3);
    std::vector<WeightedInterval> intervals;
    for (size_t i = 0; i < 4096; ++i) {
      Timestamp a = static_cast<Timestamp>(rng.UniformInt(0, 360));
      Timestamp b = a + static_cast<Timestamp>(rng.UniformInt(1, 40));
      intervals.push_back(WeightedInterval{Interval{a, b}, rng.Uniform(0.1, 1.0),
                                           static_cast<int64_t>(i)});
    }
    report("max_clique_4096", TimeNs([&] { MaxWeightClique(intervals); }),
           intervals.size());
  }
  {
    Rng rng(4);
    std::vector<double> y(1 << 12);
    for (double& v : y) v = rng.Exponential(2.0);
    y[y.size() / 2] += 50.0;
    report("extract_bursty_intervals_4k",
           TimeNs([&] { ExtractBurstyIntervals(y); }), y.size());
  }

  {
    std::vector<Point2D> pts;
    std::vector<double> w;
    RandomPlane(256, 5, &pts, &w);
    double naive =
        TimeNs([&] { MaxWeightRectangleExactNaive(pts, w); });
    double opt = TimeNs([&] { (void)MaxWeightRectangle(pts, w); });
    report("rect_exact_256_naive", naive, pts.size());
    report("rect_exact_256", opt, pts.size());
    std::printf("  -> exact rect speedup: %.2fx\n", naive / opt);
  }
  {
    std::vector<Point2D> pts;
    std::vector<double> w;
    RandomPlane(1 << 14, 6, &pts, &w);
    MaxRectOptions opts;
    opts.mode = MaxRectOptions::Mode::kGrid;
    double naive =
        TimeNs([&] { MaxWeightRectangleGridNaive(pts, w, opts.grid_cols); });
    double opt = TimeNs([&] { (void)MaxWeightRectangle(pts, w, opts); });
    report("rect_grid64_16k_naive", naive, pts.size());
    report("rect_grid64_16k", opt, pts.size());
    std::printf("  -> grid rect speedup: %.2fx\n", naive / opt);
  }

  // SolveCells kernel against a standing binning (the mining access
  // pattern: geometry built once, one O(points) weight scatter + sweep per
  // snapshot), under the dispatched ISA and with the scalar fallback
  // forced. The two paths are bit-identical by construction; the ratio is
  // the pure SIMD win on the band sweep.
  {
    std::printf("  [simd] active ISA: %s\n",
                simd::IsaName(simd::ActiveIsa()));
    struct Kernel {
      const char* op;
      size_t n;
      MaxRectOptions opts;
    };
    std::vector<Kernel> kernels;
    kernels.push_back({"solve_cells_exact", 256, MaxRectOptions{}});
    {
      MaxRectOptions grid;
      grid.mode = MaxRectOptions::Mode::kGrid;
      kernels.push_back({"solve_cells_grid", 1 << 14, grid});
    }
    for (const Kernel& kernel : kernels) {
      std::vector<Point2D> pts;
      std::vector<double> w;
      RandomPlane(kernel.n, 11, &pts, &w);
      auto binning = SpatialBinning::Create(pts, kernel.opts);
      if (!binning.ok()) return 1;
      double active =
          TimeNs([&] { (void)MaxWeightRectangle(*binning, w); });
      const simd::Isa previous = simd::SetIsaForTest(simd::Isa::kScalar);
      double scalar =
          TimeNs([&] { (void)MaxWeightRectangle(*binning, w); });
      simd::SetIsaForTest(previous);
      report(kernel.op, active, kernel.n);
      report(std::string(kernel.op) + "_scalar", scalar, kernel.n);
      std::printf("  -> %s: %.2fx %s over scalar\n", kernel.op,
                  scalar / active, simd::IsaName(simd::ActiveIsa()));
    }
  }
  // The vectorized-Kadane admission filter over a band sweep: the same
  // standing-binning solve with KadaneMode::kVectorized vs the default
  // sequential recurrence. Results are verified identical up front (the
  // filter only decides whether a band's exact recurrence runs); the ratio
  // is the pruning + SIMD-scan win on bands that cannot beat the running
  // best.
  {
    MaxRectOptions scalar_opts;
    scalar_opts.mode = MaxRectOptions::Mode::kGrid;
    scalar_opts.grid_cols = 128;
    scalar_opts.grid_rows = 128;
    scalar_opts.kadane = MaxRectOptions::KadaneMode::kScalar;
    MaxRectOptions vec_opts = scalar_opts;
    vec_opts.kadane = MaxRectOptions::KadaneMode::kVectorized;

    std::vector<Point2D> pts;
    std::vector<double> w;
    RandomPlane(1 << 15, 12, &pts, &w);
    auto scalar_binning = SpatialBinning::Create(pts, scalar_opts);
    auto vec_binning = SpatialBinning::Create(pts, vec_opts);
    if (!scalar_binning.ok() || !vec_binning.ok()) return 1;
    auto check_scalar = MaxWeightRectangle(*scalar_binning, w);
    auto check_vec = MaxWeightRectangle(*vec_binning, w);
    if (!check_scalar.ok() || !check_vec.ok() ||
        check_scalar->score != check_vec->score) {
      std::fprintf(stderr, "kadane mode parity violation\n");
      return 1;
    }
    double scalar_ns =
        TimeNs([&] { (void)MaxWeightRectangle(*scalar_binning, w); });
    double vec_ns = TimeNs([&] { (void)MaxWeightRectangle(*vec_binning, w); });
    report("kadane_band_sweep_scalar", scalar_ns, pts.size());
    report("kadane_band_sweep_vectorized", vec_ns, pts.size());
    std::printf("  -> vectorized kadane filter: %.2fx over the sequential "
                "recurrence (%s)\n",
                scalar_ns / vec_ns, simd::IsaName(simd::ActiveIsa()));
  }

  // Steal-heavy fan-out through the seed's mutex-queue pool vs the
  // work-stealing pool: generator tasks submit Zipf-cost children from
  // inside workers, so children land on the submitting worker's deque and
  // the others must steal — the regime where one shared lock serializes.
  {
    constexpr size_t kGenerators = 8;
    constexpr size_t kChildren = 64;
    constexpr size_t kTasks = kGenerators * kChildren;
    constexpr size_t kPoolThreads = 4;
    std::vector<double> out(kTasks);
    auto zipf_child = [&out](size_t i) {
      // Cost ~ 1/(i+1): the head tasks dominate the tail.
      const size_t iters = 6000 / (i % kChildren + 1) + 50;
      double acc = 0.0;
      for (size_t k = 0; k < iters; ++k) {
        acc += static_cast<double>((k ^ i) & 0xff) * 1e-9;
      }
      out[i] = acc;
    };

    MutexQueuePool queue_pool(kPoolThreads);
    double queue_ns = TimeNs([&] {
      for (size_t g = 0; g < kGenerators; ++g) {
        queue_pool.Submit([&, g] {
          for (size_t c = 0; c < kChildren; ++c) {
            const size_t i = g * kChildren + c;
            queue_pool.Submit([&zipf_child, i] { zipf_child(i); });
          }
        });
      }
      queue_pool.Wait();
    });

    ThreadPool steal_pool(kPoolThreads);
    double steal_ns = TimeNs([&] {
      for (size_t g = 0; g < kGenerators; ++g) {
        steal_pool.Submit([&, g] {
          for (size_t c = 0; c < kChildren; ++c) {
            const size_t i = g * kChildren + c;
            steal_pool.Submit([&zipf_child, i] { zipf_child(i); });
          }
        });
      }
      steal_pool.Wait();
    });
    report("pool_zipf_fanout_queue", queue_ns, kTasks);
    report("pool_zipf_fanout_steal", steal_ns, kTasks);
    std::printf("  -> work-stealing fan-out: %.2fx over the mutex queue "
                "(%zu threads, %zu tasks)\n",
                queue_ns / steal_ns, kPoolThreads, kTasks);
  }

  {
    InvertedIndex idx = RandomIndex(1 << 16, 7);
    std::vector<TermId> query = {0, 1, 2};
    double naive = TimeNs([&] { ThresholdTopKNaive(idx, query, 10); });
    double opt = TimeNs([&] { ThresholdTopK(idx, query, 10); });
    double exhaustive = TimeNs([&] { ExhaustiveTopK(idx, query, 10); });
    report("threshold_topk_64k_naive", naive, size_t{1} << 16);
    report("threshold_topk_64k", opt, size_t{1} << 16);
    report("exhaustive_topk_64k", exhaustive, size_t{1} << 16);
  }

  std::printf("\n=== bench_micro: standard Topix corpus ===\n");
  TopixSimulator sim = bench::MakeTopix();
  const Collection& corpus = sim.collection();
  std::printf("corpus: %zu documents, %zu streams, %zu terms, %d weeks\n",
              corpus.num_documents(), corpus.num_streams(),
              corpus.vocabulary().size(), corpus.timeline_length());
  perf.SetCorpus(corpus.num_documents(), corpus.num_streams(),
                 corpus.vocabulary().size(), corpus.timeline_length());

  {
    double naive = TimeNs([&] { BuildFrequencyNaive(corpus); });
    double opt = TimeNs([&] { FrequencyIndex::Build(corpus); });
    double t2 = TimeNs([&] { FrequencyIndex::Build(corpus, 2); });
    double t4 = TimeNs([&] { FrequencyIndex::Build(corpus, 4); });
    report("frequency_build_naive", naive, corpus.num_documents());
    report("frequency_build", opt, corpus.num_documents());
    report("frequency_build_t2", t2, corpus.num_documents());
    report("frequency_build_t4", t4, corpus.num_documents());
    std::printf("  -> index build speedup vs seed: %.2fx serial, %.2fx t2, "
                "%.2fx t4 (sharded)\n",
                naive / opt, naive / t2, naive / t4);
  }

  FrequencyIndex freq = FrequencyIndex::Build(corpus);
  const size_t vocab = freq.num_terms();

  size_t naive_patterns = 0;
  Timer t_naive;
  naive_patterns = MineVocabularyNaive(freq, 0.1);
  double naive_s = t_naive.ElapsedSeconds();
  report("mine_vocab_serial_naive", naive_s * 1e9, vocab);

  size_t batch_patterns = 0;
  Timer t1;
  {
    auto r = bench::MineVocabulary(freq, 1);
    if (!r.ok()) return 1;
    for (const TermPatterns& tp : r->terms) batch_patterns += tp.combinatorial.size();
  }
  double batch1_s = t1.ElapsedSeconds();
  report("mine_vocab_batch_t1", batch1_s * 1e9, vocab);

  Timer t4;
  {
    auto r = bench::MineVocabulary(freq, 4);
    if (!r.ok()) return 1;
    size_t check = 0;
    for (const TermPatterns& tp : r->terms) check += tp.combinatorial.size();
    if (check != batch_patterns) {
      std::fprintf(stderr, "parity violation: t1=%zu t4=%zu\n", batch_patterns,
                   check);
      return 1;
    }
  }
  double batch4_s = t4.ElapsedSeconds();
  report("mine_vocab_batch_t4", batch4_s * 1e9, vocab);

  if (naive_patterns != batch_patterns) {
    std::fprintf(stderr, "parity violation: naive=%zu batch=%zu\n",
                 naive_patterns, batch_patterns);
    return 1;
  }
  std::printf("  -> whole-vocab speedup vs seed serial loop: %.2fx (t1), "
              "%.2fx (t4); %zu patterns, parity OK\n",
              naive_s / batch1_s, naive_s / batch4_s, batch_patterns);

  // Live-feed path: one appended snapshot (one extra week of the corpus,
  // ~D/L documents) through Collection::Append + FrequencyIndex::
  // AppendSnapshot — serial and pool-spliced — versus the full rebuild it
  // replaces, plus the dirty-term incremental re-mine versus the
  // whole-vocabulary sweep, plus one full FeedRuntime tick.
  {
    Rng rng(321);
    const size_t docs_per_week =
        corpus.num_documents() / static_cast<size_t>(corpus.timeline_length());
    const size_t vocab_size = corpus.vocabulary().size();
    auto make_snapshot = [&] {
      Snapshot snap;
      snap.reserve(docs_per_week);
      for (size_t d = 0; d < docs_per_week; ++d) {
        SnapshotDocument doc;
        doc.stream =
            static_cast<StreamId>(rng.NextUint64(corpus.num_streams()));
        size_t len = 1 + rng.NextUint64(6);
        for (size_t i = 0; i < len; ++i) {
          TermId tok = static_cast<TermId>(rng.NextUint64(vocab_size));
          if (rng.Bernoulli(0.5)) {
            tok = static_cast<TermId>(tok % (vocab_size / 4 + 1));
          }
          doc.tokens.push_back(tok);
        }
        snap.push_back(std::move(doc));
      }
      return snap;
    };

    const size_t kWeeks = 16;
    // Snapshots are generated outside the timed regions: document synthesis
    // is harness work the library never performs. One master set feeds
    // every variant, so they splice identical data.
    std::vector<Snapshot> master;
    master.reserve(kWeeks);
    for (size_t w = 0; w < kWeeks; ++w) master.push_back(make_snapshot());

    Collection live = corpus;
    FrequencyIndex feed = FrequencyIndex::Build(live);
    auto mined = bench::MineVocabulary(feed, 1);
    if (!mined.ok()) return 1;
    (void)feed.TakeDirtyTerms();

    std::vector<Snapshot> snapshots = master;
    Timer t_append;
    for (Snapshot& snap : snapshots) {
      if (!live.Append(std::move(snap)).ok()) return 1;
      if (!feed.AppendSnapshot(live).ok()) return 1;
    }
    double append_s = t_append.ElapsedSeconds();
    report("frequency_append_snapshot",
           append_s * 1e9 / static_cast<double>(kWeeks), docs_per_week);

    // The same appends with the per-term splice fanned across a 4-worker
    // pool (3 pool threads + the caller).
    {
      Collection live4 = corpus;
      FrequencyIndex feed4 = FrequencyIndex::Build(live4);
      (void)feed4.TakeDirtyTerms();
      std::vector<Snapshot> snapshots4 = master;
      ThreadPool splice_pool(3);
      Timer t_splice;
      for (Snapshot& snap : snapshots4) {
        if (!live4.Append(std::move(snap)).ok()) return 1;
        if (!feed4.AppendSnapshot(live4, &splice_pool).ok()) return 1;
      }
      double splice_s = t_splice.ElapsedSeconds();
      report("append_splice_t4",
             splice_s * 1e9 / static_cast<double>(kWeeks), docs_per_week);
    }

    double rebuild = TimeNs([&] { FrequencyIndex::Build(live); });
    report("frequency_rebuild_after_append", rebuild, live.num_documents());
    std::printf("  -> append path: one snapshot in %.2f ms vs %.2f ms full "
                "rebuild (%.1fx)\n",
                append_s * 1e3 / static_cast<double>(kWeeks), rebuild / 1e6,
                rebuild / (append_s * 1e9 / static_cast<double>(kWeeks)));

    std::vector<TermId> dirty = feed.TakeDirtyTerms();
    BatchMinerOptions remine_opts;
    remine_opts.stcomb.min_interval_burstiness = 0.1;
    remine_opts.num_threads = 1;
    Timer t_remine;
    if (!RemineTerms(feed, dirty, remine_opts, &*mined).ok()) return 1;
    double remine_s = t_remine.ElapsedSeconds();
    report("remine_dirty_terms", remine_s * 1e9, dirty.size());
    std::printf("  -> re-mined %zu dirty terms in %.0f ms (vs %zu-term full "
                "sweep)\n",
                dirty.size(), remine_s * 1e3, vocab);

    // One full FeedRuntime tick over the corpus: pooled append splice,
    // retention eviction (window = the corpus timeline, so every tick
    // evicts one timestamp), dirty re-mine, and a budget-64 refresh sweep.
    double unsharded_tick_s = 0.0;
    {
      FeedRuntimeOptions fr_opts;
      fr_opts.miner.stcomb.min_interval_burstiness = 0.1;
      fr_opts.num_threads = 4;
      fr_opts.retention_window = corpus.timeline_length();
      fr_opts.refresh_budget = 64;
      auto runtime = FeedRuntime::Create(corpus, fr_opts);
      if (!runtime.ok()) return 1;
      std::vector<Snapshot> ticks = master;
      Timer t_tick;
      for (Snapshot& snap : ticks) {
        if (!runtime->Tick(std::move(snap)).ok()) return 1;
      }
      double tick_s = t_tick.ElapsedSeconds();
      unsharded_tick_s = tick_s;
      report("feed_runtime_tick",
             tick_s * 1e9 / static_cast<double>(kWeeks), docs_per_week);
      std::printf("  -> runtime tick: %.1f ms/snapshot (splice + evict + "
                  "re-mine + refresh), window %d weeks\n",
                  tick_s * 1e3 / static_cast<double>(kWeeks),
                  runtime->index().window_length());
    }

    // The same ticks with the defensive machinery on: per-document snapshot
    // validation under kDropDocument (each snapshot carries a few invalid
    // documents that must be quarantined) and an armed-but-roomy tick
    // deadline, so both degradation checks run every tick. Gates the cost of
    // the transactional guard rails against the raw tick above.
    {
      FeedRuntimeOptions fr_opts;
      fr_opts.miner.stcomb.min_interval_burstiness = 0.1;
      fr_opts.num_threads = 4;
      fr_opts.retention_window = corpus.timeline_length();
      fr_opts.refresh_budget = 64;
      fr_opts.on_invalid = InvalidDocPolicy::kDropDocument;
      fr_opts.tick_deadline_seconds = 3600.0;
      auto runtime = FeedRuntime::Create(corpus, fr_opts);
      if (!runtime.ok()) return 1;
      std::vector<Snapshot> ticks = master;
      for (Snapshot& snap : ticks) {
        for (size_t d = 0; d < 4; ++d) {
          SnapshotDocument bad;
          bad.stream = static_cast<StreamId>(corpus.num_streams() + d);
          bad.tokens = {TermId{0}};
          snap.push_back(std::move(bad));
        }
      }
      size_t rejected = 0;
      Timer t_tick;
      for (Snapshot& snap : ticks) {
        auto stats = runtime->Tick(std::move(snap));
        if (!stats.ok()) return 1;
        rejected += stats->rejected_documents;
      }
      double tick_s = t_tick.ElapsedSeconds();
      report("feed_runtime_tick_guarded",
             tick_s * 1e9 / static_cast<double>(kWeeks), docs_per_week);
      std::printf("  -> guarded tick: %.1f ms/snapshot (validation dropped "
                  "%zu documents, deadline armed)\n",
                  tick_s * 1e3 / static_cast<double>(kWeeks), rejected);
    }

    // The same ticks with the cold history tier on (kInMemory, 4-week
    // buckets): every evicted week folds into per-term coarse aggregates
    // inside the transactional tick. Gates the fold overhead against
    // feed_runtime_tick above. Then the read side: seeding one long-horizon
    // baseline (tier sums -> SeededMeanModel) for every (term, stream)
    // pair, the per-pair cost the expected-model adapter adds to scoring.
    {
      FeedRuntimeOptions fr_opts;
      fr_opts.miner.stcomb.min_interval_burstiness = 0.1;
      fr_opts.num_threads = 4;
      fr_opts.retention_window = corpus.timeline_length();
      fr_opts.refresh_budget = 64;
      fr_opts.history_mode = HistoryMode::kInMemory;
      fr_opts.history_bucket_width = 4;
      auto runtime = FeedRuntime::Create(corpus, fr_opts);
      if (!runtime.ok()) return 1;
      std::vector<Snapshot> ticks = master;
      size_t folded = 0;
      Timer t_tick;
      for (Snapshot& snap : ticks) {
        auto stats = runtime->Tick(std::move(snap));
        if (!stats.ok()) return 1;
        folded += stats->folded_terms;
      }
      double tick_s = t_tick.ElapsedSeconds();
      report("history_fold_tick",
             tick_s * 1e9 / static_cast<double>(kWeeks), docs_per_week);
      std::printf("  -> folding tick: %.1f ms/snapshot (%zu term-folds, "
                  "tier covers [%d, %d) at width 4)\n",
                  tick_s * 1e3 / static_cast<double>(kWeeks), folded,
                  runtime->history()->covered_start(),
                  runtime->history()->folded_until());

      const LongHorizonBaseline baseline(runtime->history());
      const size_t baseline_terms = corpus.vocabulary().size();
      const size_t baseline_streams = corpus.num_streams();
      double seeded_mass = 0.0;
      double pair_ns = TimeNs([&] {
        double mass = 0.0;
        for (size_t t = 0; t < baseline_terms; ++t) {
          for (size_t s = 0; s < baseline_streams; ++s) {
            auto model = baseline.ModelFor(static_cast<TermId>(t),
                                           static_cast<StreamId>(s));
            mass += model->Expected();
          }
        }
        seeded_mass = mass;
      });
      const size_t pairs = baseline_terms * baseline_streams;
      report("baseline_long_horizon",
             pair_ns / static_cast<double>(pairs), pairs);
      std::printf("  -> long-horizon baseline: %.0f ns/(term,stream) over "
                  "%zu pairs (seeded mass %.1f)\n",
                  pair_ns / static_cast<double>(pairs), pairs, seeded_mass);
    }

    // The sharded runtime requires documents in nondecreasing time order
    // (id-preserving evictions); the simulator files documents per event,
    // so re-file the same corpus time-sorted. Streams, vocabulary ids, and
    // per-timestamp document order are all preserved.
    auto sorted_or = Collection::Create(corpus.timeline_length());
    Collection sorted_corpus = std::move(sorted_or).value();
    for (const auto& info : corpus.streams()) {
      sorted_corpus.AddStream(info.name, info.geo, info.position);
    }
    {
      Vocabulary* vocab = sorted_corpus.mutable_vocabulary();
      for (size_t t = 0; t < corpus.vocabulary().size(); ++t) {
        vocab->Intern(corpus.vocabulary().TermOf(static_cast<TermId>(t)));
      }
    }
    {
      std::vector<size_t> order(corpus.num_documents());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return corpus.documents()[a].time < corpus.documents()[b].time;
      });
      for (size_t i : order) {
        const Document& d = corpus.documents()[i];
        if (!sorted_corpus.AddDocument(d.stream, d.time, d.tokens, d.event_id)
                 .ok()) {
          return 1;
        }
      }
    }

    // The same ticks through a 4-shard ShardedRuntime (same options as
    // feed_runtime_tick, vocabulary split hash(term) % 4, per-shard phases
    // fanned across one shared pool). The interesting ratio is against the
    // unsharded tick: sharding pays snapshot splitting and coordination to
    // buy per-shard parallelism, which only nets out with cores to spare.
    {
      ShardedRuntimeOptions sh_opts;
      sh_opts.runtime.miner.stcomb.min_interval_burstiness = 0.1;
      sh_opts.runtime.num_threads = 4;
      sh_opts.runtime.retention_window = corpus.timeline_length();
      sh_opts.runtime.refresh_budget = 64;
      sh_opts.num_shards = 4;
      auto runtime = ShardedRuntime::Create(sorted_corpus, sh_opts);
      if (!runtime.ok()) {
        std::fprintf(stderr, "sharded_tick_k4 Create: %s\n",
                     std::string(runtime.status().message()).c_str());
        return 1;
      }
      std::vector<Snapshot> ticks = master;
      Timer t_tick;
      for (Snapshot& snap : ticks) {
        auto stats = runtime->Tick(std::move(snap));
        if (!stats.ok()) {
          std::fprintf(stderr, "sharded_tick_k4 Tick: %s\n",
                       std::string(stats.status().message()).c_str());
          return 1;
        }
      }
      double tick_s = t_tick.ElapsedSeconds();
      report("sharded_tick_k4",
             tick_s * 1e9 / static_cast<double>(kWeeks), docs_per_week);
      std::printf("  -> sharded tick (K=4): %.1f ms/snapshot, %.2fx the "
                  "unsharded tick\n",
                  tick_s * 1e3 / static_cast<double>(kWeeks),
                  unsharded_tick_s / tick_s);
    }

    // Scatter-gather search over the 4-shard read plane: per-shard TA with
    // on-the-fly DocId translation, merged by the coordinator. Uncached, so
    // the op times the composed threshold loop itself.
    {
      ShardedRuntimeOptions sh_opts;
      sh_opts.runtime.miner.stcomb.min_interval_burstiness = 0.1;
      sh_opts.runtime.num_threads = 4;
      sh_opts.runtime.retention_window = corpus.timeline_length();
      sh_opts.runtime.refresh_budget = 64;
      sh_opts.runtime.search_serving = SearchServing::kCombinatorial;
      sh_opts.num_shards = 4;
      auto runtime = ShardedRuntime::Create(sorted_corpus, sh_opts);
      if (!runtime.ok()) {
        std::fprintf(stderr, "sharded_search_k4 Create: %s\n",
                     std::string(runtime.status().message()).c_str());
        return 1;
      }

      Rng qrng(654);
      const size_t vocab_size = corpus.vocabulary().size();
      std::vector<std::vector<TermId>> queries;
      for (size_t q = 0; q < 64; ++q) {
        TermId a = static_cast<TermId>(qrng.NextUint64(vocab_size));
        TermId b = static_cast<TermId>(qrng.NextUint64(vocab_size));
        queries.push_back({a, b});
      }
      constexpr size_t kReps = 512;
      Timer t_search;
      for (size_t r = 0; r < kReps; ++r) {
        for (const auto& q : queries) (void)runtime->Search(q, 10);
      }
      double search_s = t_search.ElapsedSeconds();
      const size_t total = kReps * queries.size();
      report("sharded_search_k4", search_s * 1e9 / static_cast<double>(total),
             total);
      std::printf("  -> sharded search (K=4): %.0f ns/query over %zu-term "
                  "vocabulary\n",
                  search_s * 1e9 / static_cast<double>(total), vocab_size);
    }
  }

  // Read plane: Search() throughput from concurrent reader threads against
  // a live runtime. The idle measurement runs with a CPU-matched spinner
  // thread standing in for the ticker, so the idle/under-ticks ratio
  // isolates read-path blocking from plain CPU contention (on a saturated
  // box the ticker steals cycles either way). The wait-free contract says
  // the ratio stays near 1; the binary reports it but does not gate (shared
  // runners time contention unreliably) — the committed baseline carries
  // the locally verified numbers.
  {
    FeedRuntimeOptions fr_opts;
    fr_opts.miner.stcomb.min_interval_burstiness = 0.1;
    // Single-threaded ticker: the idle leg's spinner burns one thread, so
    // the tick path must occupy one thread too or the ratio measures CPU
    // share instead of read-path blocking on small machines.
    fr_opts.num_threads = 1;
    // Roomy window: an evicting tick dirties a whole week of terms
    // (hundreds of ms re-mining), so the readers would outlive one tick.
    // Append-only ticks re-mine only the snapshot's few hundred terms,
    // publishing tens of generations while the readers run.
    fr_opts.retention_window = corpus.timeline_length() + 256;
    fr_opts.refresh_budget = 64;
    fr_opts.search_serving = SearchServing::kCombinatorial;
    auto runtime = FeedRuntime::Create(corpus, fr_opts);
    if (!runtime.ok()) return 1;

    Rng qrng(654);
    const size_t vocab_size = corpus.vocabulary().size();
    std::vector<std::vector<TermId>> queries;
    for (size_t q = 0; q < 64; ++q) {
      TermId a = static_cast<TermId>(qrng.NextUint64(vocab_size));
      TermId b = static_cast<TermId>(qrng.NextUint64(vocab_size));
      queries.push_back({a, b});
    }

    constexpr size_t kReaders = 2;
    constexpr size_t kQueriesPerReader = 131072;
    // Runs the readers to completion next to `competitor` (the spinner or
    // the ticker), returns ns per query.
    auto run_readers = [&](const std::function<void(
                               const std::atomic<bool>&)>& competitor) {
      std::atomic<bool> done{false};
      std::thread other([&] { competitor(done); });
      Timer t_read;
      std::vector<std::thread> readers;
      for (size_t r = 0; r < kReaders; ++r) {
        readers.emplace_back([&, r] {
          for (size_t q = 0; q < kQueriesPerReader; ++q) {
            (void)runtime->Search(queries[(r + q) % queries.size()], 10);
          }
        });
      }
      for (std::thread& th : readers) th.join();
      double s = t_read.ElapsedSeconds();
      done.store(true, std::memory_order_relaxed);
      other.join();
      return s * 1e9 / static_cast<double>(kReaders * kQueriesPerReader);
    };

    const double idle_ns = run_readers([](const std::atomic<bool>& done) {
      // CPU-matched stand-in for the ticker: burn one core.
      volatile uint64_t sink = 0;
      while (!done.load(std::memory_order_relaxed)) sink = sink + 1;
    });
    report("search_qps_idle", idle_ns, kReaders * kQueriesPerReader);

    // Small snapshots (few hundred dirty terms, not the whole vocabulary)
    // keep each tick in the tens of milliseconds, so many generations
    // publish while the readers run — the scenario the wait-free claim is
    // about, rather than one giant tick the readers outlive.
    Rng srng(655);
    auto make_tick = [&] {
      Snapshot snap;
      for (size_t d = 0; d < 256; ++d) {
        SnapshotDocument doc;
        doc.stream =
            static_cast<StreamId>(srng.NextUint64(corpus.num_streams()));
        size_t len = 1 + srng.NextUint64(3);
        for (size_t i = 0; i < len; ++i) {
          doc.tokens.push_back(
              static_cast<TermId>(srng.NextUint64(vocab_size)));
        }
        snap.push_back(std::move(doc));
      }
      return snap;
    };
    const uint64_t gen_before = runtime->search_snapshot()->generation;
    const double ticked_ns = run_readers([&](const std::atomic<bool>& done) {
      while (!done.load(std::memory_order_relaxed)) {
        if (!runtime->Tick(make_tick()).ok()) std::abort();
      }
    });
    const uint64_t gen_after = runtime->search_snapshot()->generation;
    report("search_qps_under_ticks", ticked_ns,
           kReaders * kQueriesPerReader);
    std::printf("  -> read plane: %.2f us/query idle (spinner-matched), "
                "%.2f us/query under ticks (%" PRIu64
                " snapshots published) — %.2fx idle throughput\n",
                idle_ns / 1e3, ticked_ns / 1e3, gen_after - gen_before,
                idle_ns / ticked_ns);
  }

  // The generation-keyed query cache: hot-hit latency for a repeated query
  // against a standing snapshot (every lookup after the first is a pure
  // LRU hit — the floor a dashboard polling a fixed panel of queries pays).
  {
    FeedRuntimeOptions fr_opts;
    fr_opts.miner.stcomb.min_interval_burstiness = 0.1;
    fr_opts.num_threads = 4;
    fr_opts.retention_window = corpus.timeline_length();
    fr_opts.refresh_budget = 64;
    fr_opts.search_serving = SearchServing::kCombinatorial;
    fr_opts.search_cache_entries = 1024;
    auto runtime = FeedRuntime::Create(corpus, fr_opts);
    if (!runtime.ok()) return 1;
    // A dashboard-shaped panel: 16 fixed queries polled round-robin, every
    // lookup after the warm pass a pure LRU hit. Timing the panel rather
    // than one query amortizes per-call allocator jitter (a hit copies the
    // k-doc result), which a sub-100ns single-query op cannot.
    std::vector<std::vector<TermId>> panel;
    for (TermId t = 0; t < 16; ++t) panel.push_back({t, t + 1, t + 2});
    for (const auto& q : panel) (void)runtime->Search(q, 10);
    double panel_ns = TimeNs([&] {
      for (const auto& q : panel) (void)runtime->Search(q, 10);
    });
    report("search_cached", panel_ns / panel.size(), panel.size());
    const QueryCacheStats cache_stats = runtime->search_cache_stats();
    std::printf("  -> cached search: %.0f ns/hit (%zu hits, %zu misses)\n",
                panel_ns / panel.size(), cache_stats.hits,
                cache_stats.misses);
  }

  // Regional mining over a vocabulary sample (one standalone
  // MineRegionalPatterns per term — each call builds its own binning), then
  // the whole vocabulary through the batch engine sharing one standing
  // binning across every term.
  {
    std::vector<Point2D> positions = corpus.StreamPositions();
    ExpectedModelFactory factory = bench::MeanFactory();
    StLocalOptions local_opts;
    std::vector<TermId> sample;
    for (TermId t = 0; t < vocab; t += 97) sample.push_back(t);

    Timer tr;
    size_t windows = 0;
    for (TermId term : sample) {
      TermSeries series = freq.DenseSeries(term);
      auto w = MineRegionalPatterns(series, positions, factory, local_opts);
      if (!w.ok()) return 1;
      windows += w->size();
    }
    double serial_s = tr.ElapsedSeconds();
    report("mine_regional_sample",
           serial_s * 1e9 / static_cast<double>(sample.size()), sample.size());
    std::printf("  -> regional sample: %zu windows over %zu terms\n", windows,
                sample.size());

    // Whole-vocabulary STLocal (one Timer window; a second run would double
    // the harness's longest op for no signal on a shared machine).
    BatchMinerOptions regional_opts;
    regional_opts.mine_combinatorial = false;
    regional_opts.mine_regional = true;
    regional_opts.positions = positions;
    regional_opts.model_factory = factory;
    regional_opts.stlocal = local_opts;
    regional_opts.num_threads = 1;
    Timer tv;
    auto regional = MineAllTerms(freq, regional_opts);
    if (!regional.ok()) return 1;
    double vocab_s = tv.ElapsedSeconds();
    size_t vocab_windows = 0;
    for (const TermPatterns& tp : regional->terms) {
      vocab_windows += tp.regional.size();
    }
    report("mine_all_terms_regional", vocab_s * 1e9, vocab);
    std::printf("  -> whole-vocab regional: %zu windows over %zu terms in "
                "%.1f s (shared binning, %s sweep)\n",
                vocab_windows, vocab, vocab_s,
                simd::IsaName(simd::ActiveIsa()));
  }

  // Retention-complete serving: the search index following a sliding window
  // in place (Reopen -> EvictBefore -> append -> Finalize) versus the full
  // rebuild it replaces, and a windowed regional watchlist's steady-state
  // tick (push one snapshot + rebase to the window).
  {
    // A search-shaped index in steady state: W ticks of docs live, each doc
    // scoring on a handful of Zipf-ish terms.
    constexpr size_t kTerms = 20000;
    constexpr size_t kDocsPerTick = 2000;
    constexpr size_t kWindowTicks = 48;
    Rng rng(97);
    InvertedIndex live_index;
    DocId next_doc = 0;
    std::vector<TermId> doc_terms;
    auto add_tick_docs = [&](InvertedIndex* idx) {
      for (size_t d = 0; d < kDocsPerTick; ++d) {
        const DocId doc = next_doc++;
        const size_t hits = 2 + rng.NextUint64(5);
        doc_terms.clear();
        for (size_t h = 0; h < hits; ++h) {
          TermId t = static_cast<TermId>(rng.NextUint64(kTerms));
          if (rng.Bernoulli(0.5)) t = static_cast<TermId>(t % (kTerms / 8 + 1));
          // Add() takes each (term, doc) pair at most once; colliding draws
          // after the Zipf fold are simply dropped.
          if (std::find(doc_terms.begin(), doc_terms.end(), t) !=
              doc_terms.end()) {
            continue;
          }
          doc_terms.push_back(t);
          idx->Add(t, doc, rng.Uniform(0.01, 10.0));
        }
      }
    };
    for (size_t w = 0; w < kWindowTicks; ++w) add_tick_docs(&live_index);
    live_index.Finalize();

    // Min of three 8-tick windows (the state slides steadily, so windows
    // are comparable) — single-window timing is too noisy for the 10% gate
    // on a shared machine.
    constexpr size_t kTicksPerWindow = 8;
    size_t evicted_ticks = 0;
    double evict_s = std::numeric_limits<double>::infinity();
    for (int window = 0; window < 3; ++window) {
      Timer t_evict;
      for (size_t tick = 0; tick < kTicksPerWindow; ++tick) {
        live_index.Reopen();
        live_index.EvictBefore(
            static_cast<DocId>(++evicted_ticks * kDocsPerTick));
        add_tick_docs(&live_index);
        live_index.Finalize();
      }
      evict_s = std::min(evict_s, t_evict.ElapsedSeconds());
    }
    report("inverted_reopen_evict",
           evict_s * 1e9 / static_cast<double>(kTicksPerWindow),
           live_index.total_postings());

    // The rebuild it replaces: re-Add every surviving posting from scratch
    // and freeze (scoring work excluded — this is the floor a rebuilding
    // consumer pays even with scores in hand).
    std::vector<std::vector<Posting>> frozen(kTerms);
    for (TermId t = 0; t < kTerms; ++t) frozen[t] = live_index.postings(t);
    double rebuild_ns = TimeNs([&] {
      InvertedIndex rebuilt;
      for (TermId t = 0; t < kTerms; ++t) {
        for (const Posting& p : frozen[t]) rebuilt.Add(t, p.doc, p.score);
      }
      rebuilt.Finalize();
    });
    report("inverted_rebuild_after_evict", rebuild_ns,
           live_index.total_postings());
    const double evict_ns =
        evict_s * 1e9 / static_cast<double>(kTicksPerWindow);
    std::printf("  -> eviction-aware refreeze: %.2f ms/tick vs %.2f ms "
                "rebuild (%.1fx)\n",
                evict_ns / 1e6, rebuild_ns / 1e6, rebuild_ns / evict_ns);

    // Windowed regional watchlist at corpus scale (181 streams): one
    // steady-state tick = push the next snapshot + EvictBefore back to a
    // 48-snapshot window (fresh models re-observe the window, per-region
    // sequences replay from the rebased burstiness).
    std::vector<Point2D> positions = corpus.StreamPositions();
    const size_t n = positions.size();
    constexpr Timestamp kWatchWindow = 48;
    constexpr size_t kWatchTicks = 96;
    Rng wrng(998);
    std::vector<std::vector<double>> snaps;
    for (size_t t = 0; t < kWatchWindow + kWatchTicks; ++t) {
      std::vector<double> snap(n);
      for (size_t s = 0; s < n; ++s) snap[s] = wrng.Exponential(1.0);
      if ((t / 8) % 3 == 0) {
        for (size_t s = 0; s < n / 6; ++s) snap[s] += 4.0;  // regional burst
      }
      snaps.push_back(std::move(snap));
    }
    OnlineRegionalMiner watch(positions, bench::MeanFactory());
    for (size_t t = 0; t < kWatchWindow; ++t) {
      if (!watch.Push(snaps[t]).ok()) return 1;
    }
    // Min of three windows over the steady-state ticks, as above.
    constexpr size_t kWatchTicksPerWindow = kWatchTicks / 3;
    double watch_s = std::numeric_limits<double>::infinity();
    size_t consumed = 0;
    for (int window = 0; window < 3; ++window) {
      Timer t_watch;
      for (size_t tick = 0; tick < kWatchTicksPerWindow; ++tick) {
        if (!watch.Push(snaps[kWatchWindow + consumed++]).ok()) return 1;
        if (!watch.EvictBefore(watch.current_time() - kWatchWindow).ok()) {
          return 1;
        }
      }
      watch_s = std::min(watch_s, t_watch.ElapsedSeconds());
    }
    report("watchlist_evict_tick",
           watch_s * 1e9 / static_cast<double>(kWatchTicksPerWindow), n);
    std::printf("  -> windowed regional watchlist: %.2f ms/tick "
                "(%d-snapshot window, %zu streams)\n",
                watch_s * 1e3 / static_cast<double>(kWatchTicksPerWindow),
                kWatchWindow, n);
  }

  perf.Write("BENCH_micro.json");
  return 0;
}

}  // namespace
}  // namespace stburst

int main() { return stburst::Run(); }
