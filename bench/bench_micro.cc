// Microbenchmarks (google-benchmark) for the core kernels: Ruzzo–Tompa
// GetMax, the interval-graph max-weight clique sweep, the max-discrepancy
// rectangle (exact and grid), temporal interval extraction, and the
// Threshold Algorithm.

#include <benchmark/benchmark.h>

#include <vector>

#include "stburst/common/random.h"
#include "stburst/core/discrepancy.h"
#include "stburst/core/getmax.h"
#include "stburst/core/max_clique.h"
#include "stburst/core/temporal.h"
#include "stburst/index/threshold_algorithm.h"

namespace stburst {
namespace {

std::vector<double> RandomScores(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.Uniform(-1.0, 1.0);
  return v;
}

void BM_MaximalSegments(benchmark::State& state) {
  auto scores = RandomScores(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaximalSegments(scores));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MaximalSegments)->Range(256, 1 << 16);

void BM_OnlineMaxSegmentsAdd(benchmark::State& state) {
  auto scores = RandomScores(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    OnlineMaxSegments online;
    for (double s : scores) online.Add(s);
    benchmark::DoNotOptimize(online.num_candidates());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OnlineMaxSegmentsAdd)->Range(256, 1 << 14);

void BM_MaxWeightClique(benchmark::State& state) {
  Rng rng(3);
  const size_t m = static_cast<size_t>(state.range(0));
  std::vector<WeightedInterval> intervals;
  for (size_t i = 0; i < m; ++i) {
    Timestamp a = static_cast<Timestamp>(rng.UniformInt(0, 360));
    Timestamp b = a + static_cast<Timestamp>(rng.UniformInt(1, 40));
    intervals.push_back(WeightedInterval{Interval{a, b},
                                         rng.Uniform(0.1, 1.0),
                                         static_cast<int64_t>(i)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxWeightClique(intervals));
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_MaxWeightClique)->Range(64, 1 << 14);

void BM_ExtractBurstyIntervals(benchmark::State& state) {
  Rng rng(4);
  std::vector<double> y(static_cast<size_t>(state.range(0)));
  for (double& v : y) v = rng.Exponential(2.0);
  y[y.size() / 2] += 50.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExtractBurstyIntervals(y));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExtractBurstyIntervals)->Range(365, 1 << 14);

void BM_MaxWeightRectangleExact(benchmark::State& state) {
  Rng rng(5);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<Point2D> pts(n);
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) {
    pts[i] = Point2D{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    w[i] = rng.Uniform(-1.0, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxWeightRectangle(pts, w));
  }
}
BENCHMARK(BM_MaxWeightRectangleExact)->RangeMultiplier(2)->Range(32, 512);

void BM_MaxWeightRectangleGrid(benchmark::State& state) {
  Rng rng(6);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<Point2D> pts(n);
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) {
    pts[i] = Point2D{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    w[i] = rng.Uniform(-1.0, 1.0);
  }
  MaxRectOptions opts;
  opts.mode = MaxRectOptions::Mode::kGrid;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxWeightRectangle(pts, w, opts));
  }
}
BENCHMARK(BM_MaxWeightRectangleGrid)->RangeMultiplier(4)->Range(1024, 65536);

void BM_ThresholdTopK(benchmark::State& state) {
  Rng rng(7);
  InvertedIndex idx;
  const size_t docs = static_cast<size_t>(state.range(0));
  for (TermId t = 0; t < 3; ++t) {
    for (DocId d = 0; d < docs; ++d) {
      if (rng.Bernoulli(0.5)) idx.Add(t, d, rng.Uniform(0.01, 10.0));
    }
  }
  idx.Finalize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ThresholdTopK(idx, {0, 1, 2}, 10));
  }
}
BENCHMARK(BM_ThresholdTopK)->Range(1024, 1 << 16);

void BM_ExhaustiveTopK(benchmark::State& state) {
  Rng rng(7);  // same index as BM_ThresholdTopK for comparability
  InvertedIndex idx;
  const size_t docs = static_cast<size_t>(state.range(0));
  for (TermId t = 0; t < 3; ++t) {
    for (DocId d = 0; d < docs; ++d) {
      if (rng.Bernoulli(0.5)) idx.Add(t, d, rng.Uniform(0.01, 10.0));
    }
  }
  idx.Finalize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExhaustiveTopK(idx, {0, 1, 2}, 10));
  }
}
BENCHMARK(BM_ExhaustiveTopK)->Range(1024, 1 << 16);

}  // namespace
}  // namespace stburst

BENCHMARK_MAIN();
