// Table 2 — Spatiotemporal pattern retrieval on artificial data.
//
// distGen and randGen corpora with injected ground-truth patterns; STLocal,
// STComb, and the Base baseline retrieve them; JaccardSim / Start-Error /
// End-Error are averaged over all injected patterns. Paper shape: STLocal
// best on distGen (0.88), STComb best on randGen (0.91), Base clearly worst
// everywhere (0.34/0.52).
//
// Scale note: the paper uses |D| unstated, 10000 terms, 1000 patterns,
// timeline 365. We keep timeline 365 and patterns-per-processed-term
// identical but evaluate the (identically distributed) patterns of a term
// subset so the harness completes in seconds; metrics are per-pattern
// averages, so the subset is an unbiased estimate.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "stburst/core/base_baseline.h"
#include "stburst/eval/pattern_match.h"
#include "stburst/gen/generators.h"

using namespace stburst;
using namespace stburst::bench;

namespace {

struct Row {
  RetrievalAggregate stlocal, stcomb, base;
};

Row RunMode(GeneratorMode mode, const char* name) {
  // Paper configuration: timeline 365, 10000 terms, 1000 injected patterns
  // (|D| is unstated in the paper; we use 100 streams with patterns covering
  // 20-50 of them so stream-set retrieval is a meaningful target).
  GeneratorOptions opts;
  opts.timeline = 365;
  opts.num_streams = 100;
  opts.num_terms = 10000;
  opts.num_patterns = 1000;
  opts.streams_min = 20;
  opts.streams_max = 50;
  opts.locality_scale = 4.0;
  opts.seed = 2012;

  auto gen = SyntheticGenerator::Create(mode, opts);
  if (!gen.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 gen.status().ToString().c_str());
    std::exit(1);
  }

  // Evaluate the first kEval injected patterns (they hit random terms, so
  // this is an unbiased subset; raise kEval for a full-paper run).
  const size_t kEval = 60;

  StCombOptions comb_opts;
  comb_opts.min_interval_burstiness = 0.3;
  StComb stcomb(comb_opts);
  BaseOptions base_opts;  // ell=2, delta=0.5 (tuned as in the paper)

  // Exact discrepancy kernel, with R-Bursty capped at a handful of
  // rectangles per snapshot: background noise otherwise spawns dozens of
  // throwaway rectangles per timestamp and dominates the harness runtime
  // without affecting which pattern wins.
  StLocalOptions local_opts;
  local_opts.rbursty.max_rectangles = 6;

  std::vector<PatternRetrievalScore> s_local, s_comb, s_base;
  for (size_t p = 0; p < kEval && p < gen->patterns().size(); ++p) {
    const InjectedPattern& truth = gen->patterns()[p];
    TermSeries series = gen->GenerateTerm(truth.term);

    std::vector<MinedPattern> mined;
    auto windows =
        MineRegionalPatterns(series, gen->positions(), MeanFactory(), local_opts);
    if (windows.ok()) {
      for (const auto& w : *windows) {
        mined.push_back(MinedPattern{w.streams, w.timeframe, w.score});
      }
    }
    s_local.push_back(
        ScoreRetrieval(truth.streams, truth.timeframe, mined, opts.timeline));

    mined.clear();
    for (const auto& c : stcomb.MinePatterns(series)) {
      mined.push_back(MinedPattern{c.streams, c.timeframe, c.score});
    }
    s_comb.push_back(
        ScoreRetrieval(truth.streams, truth.timeframe, mined, opts.timeline));

    mined.clear();
    for (const auto& b : BaseMine(series, MeanFactory(), base_opts)) {
      mined.push_back(MinedPattern{b.streams, b.timeframe, 0.0});
    }
    s_base.push_back(
        ScoreRetrieval(truth.streams, truth.timeframe, mined, opts.timeline));
  }
  std::printf("  %s: evaluated %zu injected patterns\n", name, s_local.size());
  return Row{Aggregate(s_local), Aggregate(s_comb), Aggregate(s_base)};
}

void PrintRow(const char* algo, const char* mode, const RetrievalAggregate& a) {
  std::printf("%-8s %-8s %10.2f %12.1f %10.1f\n", algo, mode, a.mean_jaccard,
              a.mean_start_error, a.mean_end_error);
}

}  // namespace

int main() {
  std::printf("=== Table 2: Spatiotemporal pattern retrieval ===\n");
  Row dist = RunMode(GeneratorMode::kDist, "distGen");
  Row rand = RunMode(GeneratorMode::kRand, "randGen");

  std::printf("\n%-8s %-8s %10s %12s %10s\n", "", "", "JaccardSim",
              "Start-Error", "End-Error");
  PrintRow("STLocal", "distGen", dist.stlocal);
  PrintRow("STLocal", "randGen", rand.stlocal);
  PrintRow("STComb", "distGen", dist.stcomb);
  PrintRow("STComb", "randGen", rand.stcomb);
  PrintRow("Base", "distGen", dist.base);
  PrintRow("Base", "randGen", rand.base);

  std::printf("\nPaper shape check: STLocal leads on distGen, STComb leads\n"
              "on randGen, Base trails everywhere.\n");
  return 0;
}
