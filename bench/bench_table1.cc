// Table 1 — Top-Scoring Bursty Source Patterns.
//
// For each Major-Events query, reports the number of countries in the top
// regional pattern (STLocal), the top combinatorial pattern (STComb), and
// the minimum bounding rectangle of STComb's clique. Paper shape: tier-1
// queries cover most of the 181 sources under both algorithms; tier-3
// queries stay small under STLocal while STComb's MBR balloons.
//
// Also prints the Major Events List itself (appendix Table 4).

#include <cstdio>

#include "bench/bench_common.h"
#include "stburst/core/pattern.h"

using namespace stburst;
using namespace stburst::bench;

int main() {
  std::printf("=== Appendix Table 4: Major Events List ===\n");
  for (const MajorEvent& e : MajorEventsList()) {
    std::printf("%2d  %-16s (tier %d)  %s\n", e.number,
                std::string(e.query).c_str(), e.tier,
                std::string(e.description).c_str());
  }

  std::printf("\nGenerating simulated Topix corpus...\n");
  TopixSimulator sim = MakeTopix();
  const Collection& corpus = sim.collection();
  FrequencyIndex freq = FrequencyIndex::Build(corpus);
  std::vector<Point2D> positions = corpus.StreamPositions();
  std::printf("  %zu documents, %zu streams, %d weeks\n\n",
              corpus.num_documents(), corpus.num_streams(),
              corpus.timeline_length());

  std::printf("=== Table 1: Top-Scoring Bursty Source Patterns ===\n");
  std::printf("%2s  %-16s %12s %12s %12s\n", "#", "Query", "#STLocal",
              "#STComb", "#MBR");
  for (size_t e = 0; e < sim.events().size(); ++e) {
    auto terms = sim.QueryTerms(e);

    SpatiotemporalWindow window;
    size_t n_local = TopRegionalWindow(freq, positions, terms, &window)
                         ? window.streams.size()
                         : 0;

    CombinatorialPattern clique;
    size_t n_comb = 0, n_mbr = 0;
    if (TopCombinatorialPattern(freq, terms, &clique)) {
      n_comb = clique.streams.size();
      n_mbr = StreamsInRect(StreamsMbr(clique.streams, positions),
                            positions).size();
    }
    std::printf("%2zu  %-16s %12zu %12zu %12zu\n", e + 1,
                std::string(sim.events()[e].query).c_str(), n_local, n_comb,
                n_mbr);
  }
  std::printf("\nPaper shape check: rows 1-6 large everywhere; rows 13-18\n"
              "small under STLocal with MBR counts far above both.\n");
  return 0;
}
