// Shared plumbing for the table/figure reproduction harnesses: one cached
// Topix corpus per process, the standard expected-model factory, and the
// pattern-mining wrappers every experiment uses.

#ifndef STBURST_BENCH_BENCH_COMMON_H_
#define STBURST_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "stburst/common/simd.h"
#include "stburst/core/batch_miner.h"
#include "stburst/core/stcomb.h"
#include "stburst/core/stlocal.h"
#include "stburst/gen/topix_sim.h"
#include "stburst/stream/frequency.h"

namespace stburst {
namespace bench {

/// The corpus configuration every experiment shares (documented in
/// EXPERIMENTS.md). mean_docs_per_week 6 yields ~60k documents; the paper's
/// 305k corpus is reproduced in shape, scaled down for harness runtime.
inline TopixOptions StandardTopixOptions() {
  TopixOptions o;
  o.mean_docs_per_week = 6.0;
  o.background_vocab = 20000;  // news-like: a long tail of rare terms
  o.use_mds = true;
  return o;
}

/// Generates (or exits on failure) the standard corpus.
inline TopixSimulator MakeTopix() {
  auto sim = TopixSimulator::Generate(StandardTopixOptions());
  if (!sim.ok()) {
    std::fprintf(stderr, "Topix generation failed: %s\n",
                 sim.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*sim);
}

/// Expected-frequency model used across the experiments: running mean with
/// a Laplace-style prior floor, so streams that never mention a term are
/// mildly negative rather than exactly neutral and rectangles stay tight
/// (DESIGN.md §4).
inline constexpr double kExpectedPriorFloor = 0.2;

inline ExpectedModelFactory MeanFactory() {
  return WithPriorFloor([] { return std::make_unique<GlobalMeanModel>(); },
                        kExpectedPriorFloor);
}

/// Standard STComb configuration for the Topix experiments: a small
/// burstiness floor removes background-noise intervals.
inline StComb MakeStComb(size_t max_patterns = static_cast<size_t>(-1)) {
  StCombOptions opts;
  opts.min_interval_burstiness = 0.1;
  opts.max_patterns = max_patterns;
  return StComb(opts);
}

/// Mines the top combinatorial pattern across a query's terms; false if no
/// term yields one.
inline bool TopCombinatorialPattern(const FrequencyIndex& freq,
                                    const std::vector<TermId>& terms,
                                    CombinatorialPattern* out) {
  StComb miner = MakeStComb(1);
  bool found = false;
  for (TermId term : terms) {
    auto patterns = miner.MinePatterns(freq.DenseSeries(term));
    if (!patterns.empty() && (!found || patterns[0].score > out->score)) {
      *out = patterns[0];
      found = true;
    }
  }
  return found;
}

/// Mines the top regional window across a query's terms; false if none.
inline bool TopRegionalWindow(const FrequencyIndex& freq,
                              const std::vector<Point2D>& positions,
                              const std::vector<TermId>& terms,
                              SpatiotemporalWindow* out) {
  bool found = false;
  for (TermId term : terms) {
    auto windows =
        MineRegionalPatterns(freq.DenseSeries(term), positions, MeanFactory());
    if (!windows.ok() || windows->empty()) continue;
    if (!found || (*windows)[0].score > out->score) {
      *out = (*windows)[0];
      found = true;
    }
  }
  return found;
}

/// Whole-vocabulary combinatorial mining through the batch engine with the
/// standard experiment configuration.
inline StatusOr<BatchMineResult> MineVocabulary(const FrequencyIndex& freq,
                                                size_t num_threads) {
  BatchMinerOptions opts;
  opts.stcomb.min_interval_burstiness = 0.1;
  opts.num_threads = num_threads;
  return MineAllTerms(freq, opts);
}

/// Machine-readable perf log: every harness appends (op, ns/op, items)
/// entries and writes one BENCH_<name>.json so the perf trajectory is
/// trackable across PRs. Schema:
///   {"benchmark": "...",
///    "isa": "avx512" | "avx2" | "scalar",
///    "corpus": {"documents": D, "streams": n, "terms": V, "timeline": L},
///    "results": [{"op": "...", "ns_per_op": X, "items": N}, ...]}
///
/// `isa` is the SIMD dispatch level active when the run was recorded;
/// diff_bench.py refuses to compare runs recorded under different levels
/// (the numbers answer different questions).
class PerfJson {
 public:
  explicit PerfJson(std::string benchmark) : benchmark_(std::move(benchmark)) {}

  void SetCorpus(size_t documents, size_t streams, size_t terms,
                 Timestamp timeline) {
    corpus_ = StringPrintf(
        "{\"documents\": %zu, \"streams\": %zu, \"terms\": %zu, "
        "\"timeline\": %d}",
        documents, streams, terms, timeline);
  }

  /// Records one measurement: `ns_per_op` nanoseconds per logical op over
  /// `items` processed units (0 when not meaningful).
  void Add(const std::string& op, double ns_per_op, size_t items = 0) {
    entries_.push_back(StringPrintf(
        "{\"op\": \"%s\", \"ns_per_op\": %.1f, \"items\": %zu}", op.c_str(),
        ns_per_op, items));
  }

  bool Write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"%s\",\n  \"isa\": \"%s\",\n"
                 "  \"corpus\": %s,\n  \"results\": [\n", benchmark_.c_str(),
                 simd::IsaName(simd::ActiveIsa()), corpus_.c_str());
    for (size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "    %s%s\n", entries_[i].c_str(),
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("perf json written to %s\n", path.c_str());
    return true;
  }

 private:
  std::string benchmark_;
  std::string corpus_ = "{}";
  std::vector<std::string> entries_;
};

}  // namespace bench
}  // namespace stburst

#endif  // STBURST_BENCH_BENCH_COMMON_H_
