// Shared plumbing for the table/figure reproduction harnesses: one cached
// Topix corpus per process, the standard expected-model factory, and the
// pattern-mining wrappers every experiment uses.

#ifndef STBURST_BENCH_BENCH_COMMON_H_
#define STBURST_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "stburst/core/stcomb.h"
#include "stburst/core/stlocal.h"
#include "stburst/gen/topix_sim.h"
#include "stburst/stream/frequency.h"

namespace stburst {
namespace bench {

/// The corpus configuration every experiment shares (documented in
/// EXPERIMENTS.md). mean_docs_per_week 6 yields ~60k documents; the paper's
/// 305k corpus is reproduced in shape, scaled down for harness runtime.
inline TopixOptions StandardTopixOptions() {
  TopixOptions o;
  o.mean_docs_per_week = 6.0;
  o.background_vocab = 20000;  // news-like: a long tail of rare terms
  o.use_mds = true;
  return o;
}

/// Generates (or exits on failure) the standard corpus.
inline TopixSimulator MakeTopix() {
  auto sim = TopixSimulator::Generate(StandardTopixOptions());
  if (!sim.ok()) {
    std::fprintf(stderr, "Topix generation failed: %s\n",
                 sim.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*sim);
}

/// Expected-frequency model used across the experiments: running mean with
/// a Laplace-style prior floor, so streams that never mention a term are
/// mildly negative rather than exactly neutral and rectangles stay tight
/// (DESIGN.md §4).
inline constexpr double kExpectedPriorFloor = 0.2;

inline ExpectedModelFactory MeanFactory() {
  return WithPriorFloor([] { return std::make_unique<GlobalMeanModel>(); },
                        kExpectedPriorFloor);
}

/// Standard STComb configuration for the Topix experiments: a small
/// burstiness floor removes background-noise intervals.
inline StComb MakeStComb(size_t max_patterns = static_cast<size_t>(-1)) {
  StCombOptions opts;
  opts.min_interval_burstiness = 0.1;
  opts.max_patterns = max_patterns;
  return StComb(opts);
}

/// Mines the top combinatorial pattern across a query's terms; false if no
/// term yields one.
inline bool TopCombinatorialPattern(const FrequencyIndex& freq,
                                    const std::vector<TermId>& terms,
                                    CombinatorialPattern* out) {
  StComb miner = MakeStComb(1);
  bool found = false;
  for (TermId term : terms) {
    auto patterns = miner.MinePatterns(freq.DenseSeries(term));
    if (!patterns.empty() && (!found || patterns[0].score > out->score)) {
      *out = patterns[0];
      found = true;
    }
  }
  return found;
}

/// Mines the top regional window across a query's terms; false if none.
inline bool TopRegionalWindow(const FrequencyIndex& freq,
                              const std::vector<Point2D>& positions,
                              const std::vector<TermId>& terms,
                              SpatiotemporalWindow* out) {
  bool found = false;
  for (TermId term : terms) {
    auto windows =
        MineRegionalPatterns(freq.DenseSeries(term), positions, MeanFactory());
    if (!windows.ok() || windows->empty()) continue;
    if (!found || (*windows)[0].score > out->score) {
      *out = (*windows)[0];
      found = true;
    }
  }
  return found;
}

}  // namespace bench
}  // namespace stburst

#endif  // STBURST_BENCH_BENCH_COMMON_H_
