// Figure 8 — Scalability: running time (seconds per term) vs the number of
// streams, on distGen data (timeline 365, 1000 injected patterns, 10000
// terms — the paper's configuration).
//
// Paper shape: both algorithms scale almost linearly in the stream count,
// with STLocal consistently below STComb. The paper sweeps |D| up to
// 128000; we sweep the same geometric ladder (cap configurable via argv[1])
// using the grid-mode discrepancy kernel for STLocal, which §2 of the paper
// endorses (grid-partitioned maps) and which keeps the per-snapshot cost
// independent of n.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_common.h"
#include "stburst/common/timer.h"
#include "stburst/gen/generators.h"

using namespace stburst;
using namespace stburst::bench;

int main(int argc, char** argv) {
  size_t max_streams = 32000;  // default cap; pass 128000 for the full sweep
  if (argc > 1) max_streams = static_cast<size_t>(std::atoll(argv[1]));

  const std::vector<size_t> ladder = {500,   1000,  2000,  4000,  8000,
                                      16000, 32000, 64000, 128000};
  // Terms timed per configuration; costs are reported per term.
  const size_t kTerms = 3;

  std::printf("=== Figure 8: running time vs number of streams ===\n");
  std::printf("%10s %14s %14s\n", "#streams", "STComb (s)", "STLocal (s)");
  PerfJson perf("bench_fig8");

  for (size_t n : ladder) {
    if (n > max_streams) break;
    GeneratorOptions opts;
    opts.timeline = 365;
    opts.num_streams = n;
    opts.num_terms = 10000;
    opts.num_patterns = 1000;
    opts.seed = 88;
    auto gen = SyntheticGenerator::Create(GeneratorMode::kDist, opts);
    if (!gen.ok()) {
      std::fprintf(stderr, "generator failed\n");
      return 1;
    }

    // Time terms that actually carry patterns so both algorithms do real
    // work (a dead term exits immediately and would flatter the numbers).
    std::vector<TermId> terms;
    for (const auto& p : gen->patterns()) {
      if (terms.size() >= kTerms) break;
      if (terms.empty() || terms.back() != p.term) terms.push_back(p.term);
    }

    StCombOptions comb_opts;
    comb_opts.min_interval_burstiness = 0.3;
    StComb stcomb(comb_opts);

    StLocalOptions local_opts;
    local_opts.rbursty.rect.mode = MaxRectOptions::Mode::kGrid;
    local_opts.rbursty.rect.grid_cols = 64;
    local_opts.rbursty.rect.grid_rows = 64;
    // At >= 10^4 streams, background noise alone makes ~half the grid cells
    // positive; unbounded R-Bursty would then peel off hundreds of noise
    // rectangles per snapshot. The cap keeps per-snapshot work bounded, as
    // a production deployment would.
    local_opts.rbursty.max_rectangles = 8;

    double comb_s = 0.0, local_s = 0.0;
    for (TermId term : terms) {
      TermSeries series = gen->GenerateTerm(term);

      Timer t1;
      auto patterns = stcomb.MinePatterns(series);
      comb_s += t1.ElapsedSeconds();
      (void)patterns;

      Timer t2;
      auto windows =
          MineRegionalPatterns(series, gen->positions(), MeanFactory(),
                               local_opts);
      local_s += t2.ElapsedSeconds();
      if (!windows.ok()) return 1;
    }
    std::printf("%10zu %14.3f %14.3f\n", n,
                comb_s / static_cast<double>(terms.size()),
                local_s / static_cast<double>(terms.size()));
    perf.Add(StringPrintf("stcomb_streams_%zu", n),
             comb_s / static_cast<double>(terms.size()) * 1e9, n);
    perf.Add(StringPrintf("stlocal_streams_%zu", n),
             local_s / static_cast<double>(terms.size()) * 1e9, n);
  }
  perf.Write("BENCH_fig8.json");
  std::printf("\nPaper shape check: both curves near-linear in #streams,\n"
              "relative constants favor our clique kernel, so STComb sits\nbelow STLocal (see EXPERIMENTS.md). Pass a larger cap as\n"
              "argv[1] for the paper's full sweep.\n");
  return 0;
}
