#!/usr/bin/env bash
# CI helper: install GoogleTest from the Ubuntu source package. One script
# shared by every job in ci.yml so the matrix cannot silently diverge.
set -euo pipefail
sudo apt-get update
sudo apt-get install -y libgtest-dev cmake
cmake -S /usr/src/googletest -B /tmp/gtest-build
cmake --build /tmp/gtest-build -j "$(nproc)"
sudo cmake --install /tmp/gtest-build
