#!/usr/bin/env bash
# CI helper: install GoogleTest from the Ubuntu source package. One script
# shared by every job in ci.yml so the matrix cannot silently diverge.
#
# The built tree is staged under GTEST_STAGE (default ~/.cache/gtest-install)
# so CI can cache it across runs, keyed on this script's hash: a warm stage
# skips apt and the compile entirely and only copies the staged headers and
# libraries into /usr/local.
set -euo pipefail

STAGE="${GTEST_STAGE:-$HOME/.cache/gtest-install}"

if [[ ! -f "$STAGE/.complete" ]]; then
  sudo apt-get update
  sudo apt-get install -y libgtest-dev cmake
  cmake -S /usr/src/googletest -B /tmp/gtest-build
  cmake --build /tmp/gtest-build -j "$(nproc)"
  cmake --install /tmp/gtest-build --prefix "$STAGE"
  touch "$STAGE/.complete"
fi

sudo cp -a "$STAGE/include" "$STAGE/lib" /usr/local/
