#!/usr/bin/env bash
# One-step CI: configure, build, and run the test suite.
#
# Usage: ./ci.sh [build-dir]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
