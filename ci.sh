#!/usr/bin/env bash
# One-step CI: configure, build, run the test suite, and check the perf
# tooling. With RUN_BENCH=1 also runs bench_micro and gates the result
# against the committed baseline (>10% per-op regression fails).
#
# Usage: ./ci.sh [build-dir]             (default: build; build-sanitize when SANITIZE=1)
#        BUILD_TYPE=Debug ./ci.sh        set CMAKE_BUILD_TYPE (default: RelWithDebInfo)
#        SANITIZE=1 ./ci.sh              ASan+UBSan build (-DSTBURST_SANITIZE=ON)
#        TSAN=1 ./ci.sh                  ThreadSanitizer build
#                                        (-DSTBURST_TSAN=ON) for the
#                                        read-plane concurrency leg; mutually
#                                        exclusive with SANITIZE=1
#        FAULT_INJECTION=1 ./ci.sh       compile in the deterministic fault
#                                        sites (-DSTBURST_FAULT_INJECTION=ON)
#                                        so the recovery sweep in
#                                        tests/fault_injection_test.cc runs;
#                                        combine with SANITIZE=1 for the CI
#                                        fault-recovery leg
#        RUN_BENCH=1 ./ci.sh             perf gate against bench/BENCH_micro.baseline.json
#        BENCH_SOFT=1 RUN_BENCH=1 ./ci.sh  bench smoke: tooling errors gate,
#                                          perf regressions only warn
#        BENCH_BASELINE=path ./ci.sh     override the baseline file
#        TEST_TIMEOUT=seconds ./ci.sh    per-test ctest timeout (default 600):
#                                        a hung test fails its job instead of
#                                        stalling it to the runner's limit
#        TEST_LABEL=regex ./ci.sh        run only ctest tests whose LABELS
#                                        match the regex (ctest -L), e.g.
#                                        TEST_LABEL=sharded or
#                                        TEST_LABEL='sharded|concurrency'
#        SHARDS=K ./ci.sh                sharded-runtime matrix leg: exports
#                                        STBURST_TEST_SHARDS=K so the parity
#                                        suite pins its shard count, and
#                                        narrows the run to the `sharded`
#                                        ctest label unless TEST_LABEL is
#                                        set explicitly
#        NO_CCACHE=1 ./ci.sh             skip the ccache compiler launcher
#                                        that is otherwise used when ccache
#                                        is on PATH (CI caches the ccache
#                                        default dir, ~/.cache/ccache)
#
# CC/CXX are honored as usual (the CI matrix sets gcc/clang through them).
set -euo pipefail

if [[ "${TSAN:-0}" == "1" && "${SANITIZE:-0}" == "1" ]]; then
  echo "TSAN=1 and SANITIZE=1 are mutually exclusive (TSan cannot share a" >&2
  echo "process with ASan); pick one" >&2
  exit 1
fi

if [[ "${FAULT_INJECTION:-0}" == "1" ]]; then
  DEFAULT_DIR="build-fault"
elif [[ "${SANITIZE:-0}" == "1" ]]; then
  DEFAULT_DIR="build-sanitize"
elif [[ "${TSAN:-0}" == "1" ]]; then
  DEFAULT_DIR="build-tsan"
else
  DEFAULT_DIR="build"
fi
BUILD_DIR="${1:-$DEFAULT_DIR}"
JOBS="$(nproc 2>/dev/null || echo 2)"

CMAKE_ARGS=()
if [[ -n "${BUILD_TYPE:-}" ]]; then
  CMAKE_ARGS+=("-DCMAKE_BUILD_TYPE=${BUILD_TYPE}")
fi
if [[ "${SANITIZE:-0}" == "1" ]]; then
  CMAKE_ARGS+=("-DSTBURST_SANITIZE=ON")
fi
if [[ "${TSAN:-0}" == "1" ]]; then
  CMAKE_ARGS+=("-DSTBURST_TSAN=ON")
fi
if [[ "${FAULT_INJECTION:-0}" == "1" ]]; then
  CMAKE_ARGS+=("-DSTBURST_FAULT_INJECTION=ON")
fi
if [[ "${NO_CCACHE:-0}" != "1" ]] && command -v ccache >/dev/null 2>&1; then
  CMAKE_ARGS+=("-DCMAKE_C_COMPILER_LAUNCHER=ccache"
               "-DCMAKE_CXX_COMPILER_LAUNCHER=ccache")
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}"
cmake --build "$BUILD_DIR" -j "$JOBS"
# The shard-matrix leg: SHARDS=K pins the shard count the parity suite
# tests (tests/sharded_runtime_test.cc reads STBURST_TEST_SHARDS) and, by
# default, runs only the `sharded` ctest label — the rest of the suite is
# shard-count independent and already covered by the main legs.
CTEST_ARGS=()
if [[ -n "${SHARDS:-}" ]]; then
  export STBURST_TEST_SHARDS="$SHARDS"
  TEST_LABEL="${TEST_LABEL:-sharded}"
fi
if [[ -n "${TEST_LABEL:-}" ]]; then
  CTEST_ARGS+=("-L" "$TEST_LABEL")
fi
# The per-test timeout turns a hang (a wedged windowed-feed test, a deadlock
# under sanitizers) into a loud failure instead of a 6-hour runner stall.
ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error -j "$JOBS" \
      --timeout "${TEST_TIMEOUT:-600}" \
      "${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}"

# The perf differ always runs its self-test so CI catches tooling rot even
# when the (slower) benchmark pass is skipped.
python3 bench/diff_bench.py --self-test

if [[ "${RUN_BENCH:-0}" == "1" ]]; then
  BASELINE="${BENCH_BASELINE:-bench/BENCH_micro.baseline.json}"
  # A bench binary that fails to run is a tooling error and always gates,
  # even in soft mode.
  (cd "$BUILD_DIR" && ./bench_micro)
  if [[ -f "$BASELINE" ]]; then
    if [[ "${BENCH_SOFT:-0}" == "1" ]]; then
      # Smoke mode (shared CI runners time ops unreliably): the differ
      # downgrades perf regressions to warnings but still exits nonzero on
      # tooling errors (missing/malformed JSON), which gate as usual.
      python3 bench/diff_bench.py --soft "$BASELINE" "$BUILD_DIR/BENCH_micro.json"
    else
      python3 bench/diff_bench.py "$BASELINE" "$BUILD_DIR/BENCH_micro.json"
    fi
  else
    echo "no baseline at $BASELINE; skipping perf diff" >&2
  fi
fi
