#!/usr/bin/env bash
# One-step CI: configure, build, run the test suite, and check the perf
# tooling. With RUN_BENCH=1 also runs bench_micro and gates the result
# against the committed baseline (>10% per-op regression fails).
#
# Usage: ./ci.sh [build-dir]             (default: build)
#        RUN_BENCH=1 ./ci.sh             perf gate against bench/BENCH_micro.baseline.json
#        BENCH_BASELINE=path ./ci.sh     override the baseline file
set -euo pipefail

BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error -j "$JOBS"

# The perf differ always runs its self-test so CI catches tooling rot even
# when the (slower) benchmark pass is skipped.
python3 bench/diff_bench.py --self-test

if [[ "${RUN_BENCH:-0}" == "1" ]]; then
  BASELINE="${BENCH_BASELINE:-bench/BENCH_micro.baseline.json}"
  (cd "$BUILD_DIR" && ./bench_micro)
  if [[ -f "$BASELINE" ]]; then
    python3 bench/diff_bench.py "$BASELINE" "$BUILD_DIR/BENCH_micro.json"
  else
    echo "no baseline at $BASELINE; skipping perf diff" >&2
  fi
fi
