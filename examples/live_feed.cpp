// Live-feed mining with the long-running FeedRuntime: the service-shaped
// version of the streaming ingest -> incremental mine cycle
// (docs/ARCHITECTURE.md describes the runtime and its retention contract).
//
//  1. Ingest a 30-week historical corpus.
//  2. FeedRuntime::Create owns the stack: sharded index build, initial
//     whole-vocabulary sweep, persistent thread pool, and (new) a
//     maintained bursty-document search index over the standing patterns.
//  3. Go live for 18 weeks. Every Tick: parallel append splice, retention
//     eviction beyond the 36-week window, dirty-term re-mining, a
//     background refresh sweep that re-mines the stalest quiet terms
//     (mass x staleness, 16 terms/tick), and the atomic publication of a
//     freshly built search-index snapshot (readers keep serving the old
//     one). Two watchlists follow the same index, evicted in lockstep:
//     an OnlineStComb (combinatorial) and an OnlineRegionalMiner
//     (regional, bounded to the window by EvictBefore).
//  4. Verify: the runtime's windowed index matches a from-scratch rebuild
//     of the evicted collection; the combinatorial watchlist matches batch
//     STComb over the retained window; the regional watchlist matches
//     MineRegionalPatterns over the same window; and the maintained search
//     index matches a full BurstySearchEngine rebuild from the standing
//     patterns.
//
// A burst of the watched term "storm" is injected into the clustered
// streams during live weeks 36-40, so the weekly log shows the pattern
// appear as the data arrives — and survive the window sliding past its
// start.
//
// Run: ./build/examples/live_feed
//
// When built with -DSTBURST_FAULT_INJECTION=ON and run with
// STBURST_LIVE_FEED_FAULT=1, every live week first replays its snapshot
// against an armed fault site (cycling through the registry, alternating
// Status and bad_alloc failures): the doomed tick must fail, roll back to
// bit-identical visible state, and the following clean tick must ingest the
// same snapshot — so the end-of-run parity checks double as the recovery
// proof. This is the CI fault-recovery smoke.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#ifdef STBURST_FAULT_INJECTION
#include "stburst/common/fault_injection.h"
#endif

#include "stburst/common/random.h"
#include "stburst/core/expected.h"
#include "stburst/core/online_stcomb.h"
#include "stburst/core/stlocal.h"
#include "stburst/index/search_engine.h"
#include "stburst/stream/feed_runtime.h"

using namespace stburst;

namespace {

constexpr Timestamp kHistoryWeeks = 30;
constexpr Timestamp kLiveWeeks = 18;
constexpr Timestamp kRetentionWeeks = 36;
constexpr size_t kBackgroundVocab = 400;

// A background document: 3-8 Zipf-ish tokens.
std::vector<TermId> BackgroundTokens(Rng& rng) {
  std::vector<TermId> tokens;
  size_t len = 3 + rng.NextUint64(6);
  for (size_t i = 0; i < len; ++i) {
    TermId tok = static_cast<TermId>(rng.NextUint64(kBackgroundVocab));
    if (rng.Bernoulli(0.5)) {
      tok = static_cast<TermId>(tok % (kBackgroundVocab / 8 + 1));
    }
    tokens.push_back(tok);
  }
  return tokens;
}

}  // namespace

int main() {
  // Twelve streams: a cluster of four cities (0-3) plus eight scattered.
  auto collection = Collection::Create(kHistoryWeeks);
  if (!collection.ok()) return 1;
  Rng rng(2012);
  for (int s = 0; s < 12; ++s) {
    double x = s < 4 ? 1.0 + 0.5 * s : 10.0 + 3.0 * s;
    double y = s < 4 ? 1.0 + 0.4 * s : 2.0 * (s % 5);
    collection->AddStream("city" + std::to_string(s), {}, Point2D{x, y});
  }
  Vocabulary* vocab = collection->mutable_vocabulary();
  for (size_t t = 0; t < kBackgroundVocab; ++t) {
    vocab->Intern("bg" + std::to_string(t));
  }
  const TermId storm = vocab->Intern("storm");

  // --- 1. Historical ingest ----------------------------------------------
  for (Timestamp week = 0; week < kHistoryWeeks; ++week) {
    for (StreamId s = 0; s < collection->num_streams(); ++s) {
      size_t docs = 2 + rng.NextUint64(3);
      for (size_t d = 0; d < docs; ++d) {
        std::vector<TermId> tokens = BackgroundTokens(rng);
        if (rng.Bernoulli(0.05)) tokens.push_back(storm);  // quiet mentions
        if (!collection->AddDocument(s, week, std::move(tokens)).ok()) return 1;
      }
    }
  }

  // --- 2. Bring up the runtime -------------------------------------------
  FeedRuntimeOptions opts;
  opts.miner.stcomb.min_interval_burstiness = 0.1;
  opts.num_threads = 4;              // one standing pool for everything
  opts.retention_window = kRetentionWeeks;
  opts.refresh_budget = 16;          // stalest quiet terms re-mined per tick
  opts.search_serving = SearchServing::kCombinatorial;  // live search index
  auto runtime = FeedRuntime::Create(std::move(*collection), opts);
  if (!runtime.ok()) {
    std::fprintf(stderr, "FeedRuntime::Create: %s\n",
                 runtime.status().ToString().c_str());
    return 1;
  }
  std::printf("runtime up: %zu documents, %zu terms, %d weeks history; "
              "%zu terms mined, %zu skipped\n\n",
              runtime->collection().num_documents(),
              runtime->index().num_terms(),
              runtime->collection().timeline_length(),
              runtime->result().terms_mined, runtime->result().terms_skipped);

  // Watchlist miners on the same index, replaying the retained history: a
  // combinatorial OnlineStComb and a windowed regional OnlineRegionalMiner.
  OnlineStComb watch(runtime->collection().num_streams(), opts.miner.stcomb);
  const std::vector<Point2D> positions =
      runtime->collection().StreamPositions();
  const ExpectedModelFactory mean_model = [] {
    return std::make_unique<GlobalMeanModel>();
  };
  OnlineRegionalMiner regional_watch(positions, mean_model);
  while (watch.current_time() < runtime->index().timeline_length()) {
    if (!watch.PushFromIndex(runtime->index(), storm).ok()) return 1;
    if (!regional_watch.PushFromIndex(runtime->index(), storm).ok()) return 1;
  }

  // --- 3. Go live ---------------------------------------------------------
#ifdef STBURST_FAULT_INJECTION
  const char* fault_env = std::getenv("STBURST_LIVE_FEED_FAULT");
  const bool fault_demo = fault_env != nullptr && std::string(fault_env) == "1";
  size_t faults_survived = 0;
  if (fault_demo) {
    std::printf("fault demo on: each week first ticks against an armed "
                "fault site\n");
  }
#endif
  std::printf("live feed (burst of \"storm\" in the cluster, weeks 36-40; "
              "window %d weeks):\n", kRetentionWeeks);
  std::printf("%6s %6s %7s %9s %8s %10s %22s\n", "week", "docs", "dirty",
              "refreshed", "window", "tick(ms)", "watched pattern");
  for (Timestamp week = kHistoryWeeks; week < kHistoryWeeks + kLiveWeeks;
       ++week) {
    const bool bursting = week >= 36 && week <= 40;
    Snapshot snap;
    for (StreamId s = 0; s < runtime->collection().num_streams(); ++s) {
      size_t docs = 2 + rng.NextUint64(3);
      for (size_t d = 0; d < docs; ++d) {
        SnapshotDocument doc;
        doc.stream = s;
        doc.tokens = BackgroundTokens(rng);
        if (rng.Bernoulli(0.05)) doc.tokens.push_back(storm);
        snap.push_back(std::move(doc));
      }
      if (bursting && s < 4) {
        // The cluster reports the storm heavily.
        SnapshotDocument doc;
        doc.stream = s;
        doc.tokens = {storm, storm, storm, storm};
        snap.push_back(std::move(doc));
      }
    }

#ifdef STBURST_FAULT_INJECTION
    if (fault_demo) {
      // Sites that fire on every ingesting tick; the eviction sites join
      // once the window starts sliding (timeline after this tick > window).
      std::vector<std::string> eligible = {
          "collection.append",   "frequency.append_splice",
          "batch_miner.mine_term", "runtime.remine",
          "runtime.search_update", "runtime.publish"};
      if (week + 1 > kRetentionWeeks) {
        eligible.insert(eligible.end(),
                        {"collection.evict", "frequency.evict", "index.evict"});
      }
      const std::string& site =
          eligible[static_cast<size_t>(week) % eligible.size()];
      const size_t docs_before = runtime->collection().num_documents();
      const Timestamp weeks_before = runtime->collection().timeline_length();
      const uint64_t gen_before = runtime->Search("storm", 1).generation;
      fault::Arm(site, 1,
                 week % 2 == 0 ? fault::FailureKind::kStatus
                               : fault::FailureKind::kBadAlloc);
      auto doomed = runtime->Tick(Snapshot(snap));  // copy: retry it clean
      const size_t hits = fault::HitCount(site);
      fault::DisarmAll();
      if (doomed.ok() || hits == 0) {
        std::fprintf(stderr, "fault demo: site %s did not fail week %d\n",
                     site.c_str(), week);
        return 1;
      }
      if (runtime->collection().num_documents() != docs_before ||
          runtime->collection().timeline_length() != weeks_before ||
          runtime->Search("storm", 1).generation != gen_before) {
        std::fprintf(stderr,
                     "fault demo: rollback left visible state, week %d "
                     "(site %s)\n",
                     week, site.c_str());
        return 1;
      }
      ++faults_survived;
    }
#endif
    auto stats = runtime->Tick(std::move(snap));
    if (!stats.ok()) {
      std::fprintf(stderr, "Tick: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    // The watchlists follow the index and its sliding window in lockstep;
    // the regional miner's EvictBefore rebases its expected models and
    // per-region sequences to the window, keeping it bounded-memory.
    if (!watch.PushFromIndex(runtime->index(), storm).ok()) return 1;
    if (!watch.EvictBefore(runtime->window_start()).ok()) return 1;
    if (!regional_watch.PushFromIndex(runtime->index(), storm).ok()) return 1;
    if (!regional_watch.EvictBefore(runtime->window_start()).ok()) return 1;

    auto patterns = watch.CurrentPatterns();
    std::string state = "-";
    if (!patterns.empty()) {
      state = "score " + std::to_string(patterns[0].score).substr(0, 5) +
              ", " + std::to_string(patterns[0].streams.size()) + " streams" +
              (bursting ? "  <- burst" : "");
    }
    std::printf("%6d %6zu %7zu %9zu %8d %10.1f %22s\n", stats->time,
                stats->documents, stats->dirty_terms, stats->refreshed_terms,
                runtime->window_start(), stats->seconds * 1e3, state.c_str());
  }

  // --- 4. Verify ----------------------------------------------------------
  FrequencyIndex rebuilt = FrequencyIndex::Build(runtime->collection(), 4);
  const FrequencyIndex& live_index = runtime->index();
  bool identical = rebuilt.num_terms() == live_index.num_terms() &&
                   rebuilt.timeline_length() == live_index.timeline_length() &&
                   rebuilt.window_start() == live_index.window_start();
  for (TermId t = 0; identical && t < live_index.num_terms(); ++t) {
    const auto& a = live_index.postings(t);
    const auto& b = rebuilt.postings(t);
    identical = a.size() == b.size();
    for (size_t i = 0; identical && i < a.size(); ++i) {
      identical = a[i].stream == b[i].stream && a[i].time == b[i].time &&
                  a[i].count == b[i].count;
    }
  }
  std::printf("\nwindowed live index vs rebuild of evicted collection: %s\n",
              identical ? "bit-identical" : "MISMATCH");

  // The watchlist miner over the window vs batch STComb over the windowed
  // dense series (batch timeframes are window-relative; shift to absolute).
  StComb batch(opts.miner.stcomb);
  auto batch_patterns = batch.MinePatterns(live_index.DenseSeries(storm));
  const Timestamp origin = live_index.window_start();
  auto online_patterns = watch.CurrentPatterns();
  bool same = batch_patterns.size() == online_patterns.size();
  for (size_t i = 0; same && i < batch_patterns.size(); ++i) {
    same = batch_patterns[i].streams == online_patterns[i].streams &&
           batch_patterns[i].timeframe.start + origin ==
               online_patterns[i].timeframe.start &&
           batch_patterns[i].timeframe.end + origin ==
               online_patterns[i].timeframe.end;
  }
  std::printf("online watchlist vs batch STComb over the window: %s\n",
              same ? "identical patterns" : "MISMATCH");

  // The regional watchlist, evicted in lockstep, vs batch regional mining
  // over the windowed dense series (same shift to absolute timestamps).
  auto batch_regional =
      MineRegionalPatterns(live_index.DenseSeries(storm), positions, mean_model);
  bool regional_same = batch_regional.ok();
  if (regional_same) {
    auto online_windows = regional_watch.Finish();
    regional_same = batch_regional->size() == online_windows.size();
    for (size_t i = 0; regional_same && i < online_windows.size(); ++i) {
      regional_same =
          (*batch_regional)[i].streams == online_windows[i].streams &&
          (*batch_regional)[i].timeframe.start + origin ==
              online_windows[i].timeframe.start &&
          (*batch_regional)[i].timeframe.end + origin ==
              online_windows[i].timeframe.end;
    }
  }
  std::printf("regional watchlist vs batch STLocal over the window: %s\n",
              regional_same ? "identical windows" : "MISMATCH");

  // The maintained search index vs a full engine rebuild from the standing
  // patterns — and a live query for the watched term.
  PatternIndex standing;
  for (TermId t = 0; t < runtime->result().terms.size(); ++t) {
    for (const auto& p : runtime->result().terms[t].combinatorial) {
      standing.AddCombinatorial(t, p);
    }
  }
  auto engine = BurstySearchEngine::Build(runtime->collection(), standing);
  const InvertedIndex* live_search = runtime->search_index();
  bool search_same =
      live_search != nullptr &&
      live_search->total_postings() == engine.index().total_postings();
  for (TermId t = 0; search_same && t < live_search->num_terms(); ++t) {
    const auto& a = live_search->postings(t);
    const auto& b = engine.index().postings(t);
    search_same = a.size() == b.size();
    for (size_t i = 0; search_same && i < a.size(); ++i) {
      search_same = a[i].doc == b[i].doc && a[i].score == b[i].score;
    }
  }
  std::printf("maintained search index vs full engine rebuild: %s\n",
              search_same ? "bit-identical" : "MISMATCH");
  auto top = runtime->Search("storm", 3);
  std::printf("top \"storm\" docs (generation %llu):",
              static_cast<unsigned long long>(top.generation));
  for (const ScoredDoc& d : top.docs) {
    const Document& doc = runtime->collection().document(d.doc);
    std::printf("  doc %u (stream %u, week %d, score %.2f)", d.doc, doc.stream,
                doc.time, d.score);
  }
  std::printf("\n");

  // The standing result keeps absolute timestamps: the storm slot should
  // still report the burst even after the window slid past its start.
  const TermPatterns& slot = runtime->patterns(storm);
  if (slot.mined && !slot.combinatorial.empty()) {
    std::printf("standing slot for \"storm\": timeframe [%d, %d], "
                "%zu streams, staleness %d ticks\n",
                slot.combinatorial[0].timeframe.start,
                slot.combinatorial[0].timeframe.end,
                slot.combinatorial[0].streams.size(),
                runtime->staleness(storm));
  }
#ifdef STBURST_FAULT_INJECTION
  if (fault_demo) {
    std::printf("fault demo: %zu armed ticks failed, rolled back, and the "
                "retried snapshots kept every parity check above\n",
                faults_survived);
    if (faults_survived != static_cast<size_t>(kLiveWeeks)) return 1;
  }
#endif
  return (identical && same && regional_same && search_same) ? 0 : 1;
}
