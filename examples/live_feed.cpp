// Live-feed mining: the streaming ingest -> incremental mine cycle, end to
// end, the way a monitoring deployment would run it (docs/ARCHITECTURE.md
// describes the architecture this demonstrates).
//
//  1. Ingest a 30-week historical corpus and build the FrequencyIndex with
//     the sharded multi-threaded build.
//  2. Run the initial whole-vocabulary batch mine (MineAllTerms).
//  3. Go live. Every week: Collection::Append files the snapshot,
//     FrequencyIndex::AppendSnapshot extends the postings in place,
//     RemineTerms refreshes only the dirty terms of the batch result, and
//     two watchlist miners — OnlineStComb (combinatorial) and
//     OnlineRegionalMiner (regional) — consume the very same index.
//  4. Verify: the incrementally maintained index matches a from-scratch
//     rebuild, and the online miner matches batch STComb on the final data.
//
// A burst of the watched term "storm" is injected into the clustered
// streams during live weeks 36-40, so the weekly log shows the pattern
// appear as the data arrives.
//
// Run: ./build/examples/live_feed

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "stburst/common/random.h"
#include "stburst/common/timer.h"
#include "stburst/core/batch_miner.h"
#include "stburst/core/online_stcomb.h"
#include "stburst/core/stlocal.h"
#include "stburst/stream/frequency.h"

using namespace stburst;

namespace {

constexpr Timestamp kHistoryWeeks = 30;
constexpr Timestamp kLiveWeeks = 18;
constexpr size_t kBackgroundVocab = 400;

// A background document: 3-8 Zipf-ish tokens.
std::vector<TermId> BackgroundTokens(Rng& rng) {
  std::vector<TermId> tokens;
  size_t len = 3 + rng.NextUint64(6);
  for (size_t i = 0; i < len; ++i) {
    TermId tok = static_cast<TermId>(rng.NextUint64(kBackgroundVocab));
    if (rng.Bernoulli(0.5)) {
      tok = static_cast<TermId>(tok % (kBackgroundVocab / 8 + 1));
    }
    tokens.push_back(tok);
  }
  return tokens;
}

}  // namespace

int main() {
  // Twelve streams: a cluster of four cities (0-3) plus eight scattered.
  auto collection = Collection::Create(kHistoryWeeks);
  if (!collection.ok()) return 1;
  Rng rng(2012);
  for (int s = 0; s < 12; ++s) {
    double x = s < 4 ? 1.0 + 0.5 * s : 10.0 + 3.0 * s;
    double y = s < 4 ? 1.0 + 0.4 * s : 2.0 * (s % 5);
    collection->AddStream("city" + std::to_string(s), {}, Point2D{x, y});
  }
  Vocabulary* vocab = collection->mutable_vocabulary();
  for (size_t t = 0; t < kBackgroundVocab; ++t) {
    vocab->Intern("bg" + std::to_string(t));
  }
  const TermId storm = vocab->Intern("storm");

  // --- 1. Historical ingest + sharded index build -------------------------
  for (Timestamp week = 0; week < kHistoryWeeks; ++week) {
    for (StreamId s = 0; s < collection->num_streams(); ++s) {
      size_t docs = 2 + rng.NextUint64(3);
      for (size_t d = 0; d < docs; ++d) {
        std::vector<TermId> tokens = BackgroundTokens(rng);
        if (rng.Bernoulli(0.05)) tokens.push_back(storm);  // quiet mentions
        if (!collection->AddDocument(s, week, std::move(tokens)).ok()) return 1;
      }
    }
  }
  Timer t_build;
  FrequencyIndex index = FrequencyIndex::Build(*collection, /*num_threads=*/4);
  std::printf("historical ingest: %zu documents, %zu terms, %d weeks; "
              "sharded index build %.1f ms\n",
              collection->num_documents(), index.num_terms(),
              collection->timeline_length(), t_build.ElapsedSeconds() * 1e3);

  // --- 2. Initial whole-vocabulary batch mine -----------------------------
  BatchMinerOptions opts;
  opts.stcomb.min_interval_burstiness = 0.1;
  opts.num_threads = 4;
  auto mined = MineAllTerms(index, opts);
  if (!mined.ok()) {
    std::fprintf(stderr, "MineAllTerms: %s\n",
                 mined.status().ToString().c_str());
    return 1;
  }
  BatchMineResult live = std::move(*mined);
  std::printf("initial sweep: %zu terms mined, %zu skipped\n\n",
              live.terms_mined, live.terms_skipped);

  // --- 3. Go live ---------------------------------------------------------
  auto factory = WithPriorFloor([] { return std::make_unique<GlobalMeanModel>(); },
                                0.2);
  OnlineStComb watch_comb(collection->num_streams(), opts.stcomb);
  OnlineRegionalMiner watch_regional(collection->StreamPositions(), factory);
  // The watchlist miners first replay the history already in the index.
  while (watch_comb.current_time() < index.timeline_length()) {
    if (!watch_comb.PushFromIndex(index, storm).ok()) return 1;
    if (!watch_regional.PushFromIndex(index, storm).ok()) return 1;
  }

  std::printf("live feed (burst of \"storm\" in the cluster, weeks 36-40):\n");
  std::printf("%6s %6s %8s %12s %22s\n", "week", "docs", "dirty",
              "remine(ms)", "watched pattern");
  for (Timestamp week = kHistoryWeeks; week < kHistoryWeeks + kLiveWeeks;
       ++week) {
    const bool bursting = week >= 36 && week <= 40;
    Snapshot snap;
    for (StreamId s = 0; s < collection->num_streams(); ++s) {
      size_t docs = 2 + rng.NextUint64(3);
      for (size_t d = 0; d < docs; ++d) {
        SnapshotDocument doc;
        doc.stream = s;
        doc.tokens = BackgroundTokens(rng);
        if (rng.Bernoulli(0.05)) doc.tokens.push_back(storm);
        snap.push_back(std::move(doc));
      }
      if (bursting && s < 4) {
        // The cluster reports the storm heavily.
        SnapshotDocument doc;
        doc.stream = s;
        doc.tokens = {storm, storm, storm, storm};
        snap.push_back(std::move(doc));
      }
    }
    const size_t snap_docs = snap.size();

    if (!collection->Append(std::move(snap)).ok()) return 1;
    if (!index.AppendSnapshot(*collection).ok()) return 1;

    std::vector<TermId> dirty = index.TakeDirtyTerms();
    Timer t_remine;
    if (!RemineTerms(index, dirty, opts, &live).ok()) return 1;
    double remine_ms = t_remine.ElapsedSeconds() * 1e3;

    if (!watch_comb.PushFromIndex(index, storm).ok()) return 1;
    if (!watch_regional.PushFromIndex(index, storm).ok()) return 1;

    auto patterns = watch_comb.CurrentPatterns();
    std::string state = "-";
    if (!patterns.empty()) {
      state = "score " + std::to_string(patterns[0].score).substr(0, 5) +
              ", " + std::to_string(patterns[0].streams.size()) + " streams" +
              (bursting ? "  <- burst" : "");
    }
    std::printf("%6d %6zu %8zu %12.1f %22s\n", week, snap_docs, dirty.size(),
                remine_ms, state.c_str());
  }

  // --- 4. Verify ----------------------------------------------------------
  FrequencyIndex rebuilt = FrequencyIndex::Build(*collection, 4);
  bool identical = rebuilt.num_terms() == index.num_terms() &&
                   rebuilt.timeline_length() == index.timeline_length();
  for (TermId t = 0; identical && t < index.num_terms(); ++t) {
    const auto& a = index.postings(t);
    const auto& b = rebuilt.postings(t);
    identical = a.size() == b.size();
    for (size_t i = 0; identical && i < a.size(); ++i) {
      identical = a[i].stream == b[i].stream && a[i].time == b[i].time &&
                  a[i].count == b[i].count;
    }
  }
  std::printf("\nincremental index vs from-scratch rebuild: %s\n",
              identical ? "bit-identical" : "MISMATCH");

  StComb batch(opts.stcomb);
  auto batch_patterns = batch.MinePatterns(index.DenseSeries(storm));
  auto online_patterns = watch_comb.CurrentPatterns();
  bool same = batch_patterns.size() == online_patterns.size();
  for (size_t i = 0; same && i < batch_patterns.size(); ++i) {
    same = batch_patterns[i].streams == online_patterns[i].streams &&
           batch_patterns[i].timeframe == online_patterns[i].timeframe;
  }
  std::printf("online watchlist vs batch STComb on final data: %s\n",
              same ? "identical patterns" : "MISMATCH");

  auto windows = watch_regional.Finish();
  if (!windows.empty()) {
    std::printf("top regional window for \"storm\": weeks [%d, %d], "
                "%zu streams, score %.2f\n",
                windows[0].timeframe.start, windows[0].timeframe.end,
                windows[0].streams.size(), windows[0].score);
  }
  return (identical && same) ? 0 : 1;
}
