// Global trend detection with STComb: which events touched the most
// countries, regardless of geography?
//
// Mines the top combinatorial pattern for each Major-Events query on the
// simulated Topix corpus and prints, per query, the number of countries in
// the top clique, its timeframe, and the countries inside its minimum
// bounding rectangle — the paper's Table 1 view of the data.
//
// Run: ./build/examples/global_trends

#include <cstdio>
#include <string>

#include "stburst/core/pattern.h"
#include "stburst/core/stcomb.h"
#include "stburst/gen/topix_sim.h"
#include "stburst/stream/frequency.h"

using namespace stburst;

int main() {
  TopixOptions options;
  options.mean_docs_per_week = 6.0;
  auto sim = TopixSimulator::Generate(options);
  if (!sim.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 sim.status().ToString().c_str());
    return 1;
  }
  const Collection& corpus = sim->collection();
  FrequencyIndex freq = FrequencyIndex::Build(corpus);
  std::vector<Point2D> positions = corpus.StreamPositions();

  StCombOptions opts;
  opts.min_interval_burstiness = 0.1;
  opts.max_patterns = 1;  // the HSS problem: only the top clique
  StComb miner(opts);

  std::printf("%-18s %10s %10s %12s  %s\n", "query", "#countries", "weeks",
              "#in-MBR", "sample members");
  for (size_t e = 0; e < sim->events().size(); ++e) {
    const MajorEvent& event = sim->events()[e];

    // Multi-word queries: mine each term and keep the strongest pattern.
    CombinatorialPattern best;
    bool found = false;
    for (TermId term : sim->QueryTerms(e)) {
      auto patterns = miner.MinePatterns(freq.DenseSeries(term));
      if (!patterns.empty() && (!found || patterns[0].score > best.score)) {
        best = patterns[0];
        found = true;
      }
    }
    if (!found) {
      std::printf("%-18s %10s\n", std::string(event.query).c_str(), "-");
      continue;
    }

    size_t in_mbr = StreamsInRect(StreamsMbr(best.streams, positions),
                                  positions).size();
    std::string members;
    for (size_t i = 0; i < best.streams.size() && i < 3; ++i) {
      members += corpus.stream(best.streams[i]).name + " ";
    }
    std::printf("%-18s %10zu %4d-%-5d %12zu  %s\n",
                std::string(event.query).c_str(), best.streams.size(),
                best.timeframe.start, best.timeframe.end, in_mbr,
                members.c_str());
  }
  std::printf("\nGlobal-impact queries (top rows) should cover far more\n"
              "countries than the localized ones (bottom rows), and the MBR\n"
              "count shows how scattered STComb's members are.\n");
  return 0;
}
