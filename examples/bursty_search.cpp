// Bursty-document search: the paper's §5 engine end to end.
//
// Builds three engines over the simulated Topix corpus — regional
// (STLocal patterns), combinatorial (STComb patterns), and the
// temporal-only TB baseline — runs a few Major-Events queries through each,
// and prints the top documents with their provenance so the differences in
// what each engine surfaces are visible.
//
// Run: ./build/examples/bursty_search

#include <cstdio>
#include <memory>
#include <string>

#include "stburst/core/stcomb.h"
#include "stburst/core/stlocal.h"
#include "stburst/gen/topix_sim.h"
#include "stburst/index/search_engine.h"
#include "stburst/index/tb_engine.h"

using namespace stburst;

namespace {

ExpectedModelFactory MeanFactory() {
  // Running mean with a Laplace prior floor: silent streams cost rectangle
  // area, keeping regional patterns tight (see DESIGN.md).
  return WithPriorFloor([] { return std::make_unique<GlobalMeanModel>(); },
                        0.05);
}

void PrintTop(const TopixSimulator& sim, const char* engine_name,
              const TopKResult& result, size_t event_index) {
  const Collection& corpus = sim.collection();
  std::printf("  [%s] top %zu (sorted accesses: %zu, early stop: %s)\n",
              engine_name, result.docs.size(), result.sorted_accesses,
              result.early_terminated ? "yes" : "no");
  size_t relevant = 0;
  for (size_t i = 0; i < result.docs.size(); ++i) {
    const Document& doc = corpus.document(result.docs[i].doc);
    bool rel = sim.IsRelevant(doc.id, event_index);
    relevant += rel ? 1 : 0;
    if (i < 3) {
      std::printf("    #%zu doc %-7u %-14s week %2d  %s\n", i + 1, doc.id,
                  corpus.stream(doc.stream).name.c_str(), doc.time,
                  rel ? "RELEVANT" : "not relevant");
    }
  }
  std::printf("    precision@%zu = %.2f\n", result.docs.size(),
              result.docs.empty()
                  ? 0.0
                  : static_cast<double>(relevant) / result.docs.size());
}

}  // namespace

int main() {
  TopixOptions options;
  options.mean_docs_per_week = 6.0;
  auto sim = TopixSimulator::Generate(options);
  if (!sim.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 sim.status().ToString().c_str());
    return 1;
  }
  const Collection& corpus = sim->collection();
  FrequencyIndex freq = FrequencyIndex::Build(corpus);

  // A tier-1, a tier-2, and two tier-3 queries.
  const size_t kQueries[] = {3, 10, 13, 16};

  for (size_t event_index : kQueries) {
    const MajorEvent& event = sim->events()[event_index];
    std::printf("\nquery \"%s\" (tier %d)\n", std::string(event.query).c_str(),
                event.tier);
    auto terms = sim->QueryTerms(event_index);

    // Mine patterns per query term, for each engine flavor.
    PatternIndex regional, combinatorial;
    StCombOptions copts;
    copts.min_interval_burstiness = 0.1;
    StComb stcomb(copts);
    for (TermId term : terms) {
      TermSeries series = freq.DenseSeries(term);
      auto windows =
          MineRegionalPatterns(series, corpus.StreamPositions(), MeanFactory());
      if (windows.ok()) {
        for (const auto& w : *windows) regional.AddWindow(term, w);
      }
      for (const auto& p : stcomb.MinePatterns(series)) {
        combinatorial.AddCombinatorial(term, p);
      }
    }
    PatternIndex tb = BuildTbPatternIndex(freq, terms);

    auto regional_engine = BurstySearchEngine::Build(corpus, regional);
    auto comb_engine = BurstySearchEngine::Build(corpus, combinatorial);
    auto tb_engine = BurstySearchEngine::Build(corpus, tb);

    PrintTop(*sim, "STLocal", regional_engine.Search(terms, 10), event_index);
    PrintTop(*sim, "STComb ", comb_engine.Search(terms, 10), event_index);
    PrintTop(*sim, "TB     ", tb_engine.Search(terms, 10), event_index);
  }
  return 0;
}
