// Quickstart: mine spatiotemporal burst patterns from a handful of streams.
//
// Builds a tiny 6-city collection, injects a regional burst of the term
// "storm", and runs both miners — STComb (combinatorial patterns) and
// STLocal (regional windows) — printing what each finds.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "stburst/common/random.h"
#include "stburst/core/stcomb.h"
#include "stburst/core/stlocal.h"
#include "stburst/stream/frequency.h"

using namespace stburst;

int main() {
  // Six streams on a small map: three clustered cities (0-2) and three
  // scattered ones. 52 weekly snapshots.
  const Timestamp kWeeks = 52;
  std::vector<Point2D> positions = {
      {1.0, 1.0}, {2.0, 1.5}, {1.5, 2.5},       // the cluster
      {20.0, 3.0}, {14.0, 18.0}, {30.0, 25.0},  // scattered
  };

  // Frequencies of the term "storm": quiet noise everywhere, plus a burst
  // in the clustered cities during weeks 20-26.
  TermSeries storm(positions.size(), kWeeks);
  Rng rng(7);
  for (StreamId s = 0; s < storm.num_streams(); ++s) {
    for (Timestamp w = 0; w < kWeeks; ++w) {
      storm.set(s, w, rng.Exponential(2.0));  // background, mean 0.5
    }
  }
  for (StreamId s = 0; s <= 2; ++s) {
    for (Timestamp w = 20; w <= 26; ++w) storm.add(s, w, 9.0);
  }

  // --- STComb: combinatorial patterns (ignores geography) ---------------
  StCombOptions comb_opts;
  comb_opts.min_interval_burstiness = 0.2;  // drop noise intervals
  StComb stcomb(comb_opts);
  auto patterns = stcomb.MinePatterns(storm);

  std::printf("STComb found %zu combinatorial pattern(s):\n", patterns.size());
  for (const auto& p : patterns) {
    std::printf("  %s\n", p.ToString().c_str());
  }

  // --- STLocal: regional windows (geography-aware, online) --------------
  auto windows = MineRegionalPatterns(
      storm, positions, [] { return std::make_unique<GlobalMeanModel>(); });
  if (!windows.ok()) {
    std::fprintf(stderr, "STLocal failed: %s\n",
                 windows.status().ToString().c_str());
    return 1;
  }
  std::printf("\nSTLocal found %zu maximal window(s); top 3:\n",
              windows->size());
  for (size_t i = 0; i < windows->size() && i < 3; ++i) {
    std::printf("  %s\n", (*windows)[i].ToString().c_str());
  }

  // The top window should be the cluster {0, 1, 2} around weeks 20-26.
  if (!windows->empty()) {
    const auto& top = (*windows)[0];
    std::printf("\nTop region covers %zu streams during weeks %d-%d "
                "(w-score %.2f)\n",
                top.streams.size(), top.timeframe.start, top.timeframe.end,
                top.score);
  }
  return 0;
}
