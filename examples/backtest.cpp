// Backtesting against the tiered long-horizon history (docs/STORAGE.md,
// docs/ARCHITECTURE.md "Tiered history"): a windowed FeedRuntime folds
// everything the retention window evicts into an mmap-backed ColdTier, a
// later process reopens that file and recovers the full-horizon baselines
// without replaying the cold span, and ReplayRange re-runs a stored
// stretch of history against today's models.
//
// Two phases, runnable as separate processes (the CI persistence leg does
// exactly that, so the recovery crosses a real process boundary):
//
//   backtest write <tier_path>
//     Ingest a deterministic 40-week feed through a FeedRuntime with an
//     8-week retention window and history_mode = kMmap. Weeks 20..27 carry
//     an injected burst of the term "flood" in the clustered streams —
//     long gone from the hot window by the end of the run. Alongside the
//     tier the phase writes `<tier_path>.expected`: every (term, stream)
//     long-horizon baseline (hot + cold, printed as hexfloats so the
//     comparison is bit-exact).
//
//   backtest recover <tier_path>
//     Rebuild ONLY the hot window (the last 8 weeks, regenerated — the
//     cold 32 weeks are never replayed), re-attach the runtime to the
//     tier file, and recompute every baseline through LongHorizonBaseline.
//     Any bit of divergence from `<tier_path>.expected` exits nonzero.
//     Then the backtest proper: ReplayRange over the cold span must
//     rediscover the "flood" burst at bucket resolution, and one more
//     live tick must keep folding where the previous process stopped.
//
// With no arguments both phases run in sequence against a path under the
// system temp directory.
//
// Run: ./build/examples/backtest [write|recover <tier_path>]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "stburst/common/random.h"
#include "stburst/core/expected.h"
#include "stburst/history/cold_tier.h"
#include "stburst/history/long_horizon.h"
#include "stburst/history/replay.h"
#include "stburst/stream/feed_runtime.h"

using namespace stburst;

namespace {

constexpr size_t kStreams = 6;
constexpr size_t kBackgroundVocab = 40;
constexpr Timestamp kSeedWeeks = 4;
constexpr int kLiveWeeks = 40;
constexpr Timestamp kWindow = 8;
constexpr Timestamp kBucketWidth = 4;
constexpr int kBurstBegin = 20, kBurstEnd = 28;  // live-week span of the burst
constexpr uint64_t kCorpusSeed = 20120829;

TermId FloodTerm() { return static_cast<TermId>(kBackgroundVocab); }

Collection MakeSeedCollection(Timestamp timeline_length) {
  auto c = Collection::Create(timeline_length);
  if (!c.ok()) {
    std::fprintf(stderr, "Collection::Create: %s\n",
                 c.status().ToString().c_str());
    std::exit(1);
  }
  for (size_t s = 0; s < kStreams; ++s) {
    c->AddStream("city" + std::to_string(s), {},
                 Point2D{static_cast<double>(s % 3),
                         static_cast<double>(s / 3)});
  }
  Vocabulary* v = c->mutable_vocabulary();
  for (size_t t = 0; t < kBackgroundVocab; ++t) {
    v->Intern("term" + std::to_string(t));
  }
  v->Intern("flood");
  return std::move(*c);
}

// The week's snapshot is a pure function of the absolute week number, so
// the write and recover processes regenerate identical hot windows without
// sharing any state but this source file.
Snapshot WeekSnapshot(Timestamp week) {
  Rng rng(kCorpusSeed + static_cast<uint64_t>(week));
  Snapshot snap;
  for (StreamId s = 0; s < kStreams; ++s) {
    const size_t docs = 1 + rng.NextUint64(2);
    for (size_t d = 0; d < docs; ++d) {
      SnapshotDocument doc;
      doc.stream = s;
      const size_t len = 3 + rng.NextUint64(4);
      for (size_t i = 0; i < len; ++i) {
        doc.tokens.push_back(static_cast<TermId>(
            rng.NextUint64(kBackgroundVocab)));
      }
      const Timestamp live_week = week - kSeedWeeks;
      if (live_week >= kBurstBegin && live_week < kBurstEnd && s < 3) {
        doc.tokens.push_back(FloodTerm());
        doc.tokens.push_back(FloodTerm());
      }
      snap.push_back(std::move(doc));
    }
  }
  return snap;
}

FeedRuntimeOptions RuntimeOptions(const std::string& tier_path) {
  FeedRuntimeOptions opts;
  opts.num_threads = 2;
  opts.retention_window = kWindow;
  opts.history_mode = HistoryMode::kMmap;
  opts.history_bucket_width = kBucketWidth;
  opts.history_path = tier_path;
  return opts;
}

size_t VocabSize() { return kBackgroundVocab + 1; }

// Every (term, stream) long-horizon baseline of `runtime`, in a fixed
// order. These are the values a restart must reproduce bit-for-bit.
std::vector<double> AllBaselines(const FeedRuntime& runtime) {
  LongHorizonBaseline baseline(runtime.history());
  std::vector<double> out;
  out.reserve(VocabSize() * kStreams);
  for (TermId t = 0; t < VocabSize(); ++t) {
    const TermSeries hot = runtime.index().DenseSeries(t);
    for (StreamId s = 0; s < kStreams; ++s) {
      auto model = baseline.ModelFor(t, s);
      // Feed the hot window through the seeded model: Expected() is then
      // the mean over the FULL horizon, cold span included.
      for (double y : hot.StreamRow(s)) model->Observe(y);
      out.push_back(model->Expected());
    }
  }
  return out;
}

int RunWrite(const std::string& tier_path) {
  std::remove(tier_path.c_str());
  Collection collection = MakeSeedCollection(kSeedWeeks);
  for (Timestamp w = 0; w < kSeedWeeks; ++w) {
    Snapshot snap = WeekSnapshot(w);
    for (SnapshotDocument& doc : snap) {
      if (!collection.AddDocument(doc.stream, w, std::move(doc.tokens)).ok()) {
        return 1;
      }
    }
  }
  auto runtime = FeedRuntime::Create(std::move(collection),
                                     RuntimeOptions(tier_path));
  if (!runtime.ok()) {
    std::fprintf(stderr, "FeedRuntime::Create: %s\n",
                 runtime.status().ToString().c_str());
    return 1;
  }
  size_t folded_total = 0;
  for (int w = 0; w < kLiveWeeks; ++w) {
    auto stats = runtime->Tick(WeekSnapshot(kSeedWeeks + w));
    if (!stats.ok()) {
      std::fprintf(stderr, "Tick week %d: %s\n", w,
                   stats.status().ToString().c_str());
      return 1;
    }
    folded_total += stats->folded_terms;
  }
  const ColdTier* tier = runtime->history();
  std::printf("write: %d live weeks, window_start=%d, tier covers [%d, %d), "
              "%zu term-folds\n",
              kLiveWeeks, runtime->window_start(), tier->covered_start(),
              tier->folded_until(), folded_total);
  if (tier->folded_until() != runtime->window_start()) {
    std::fprintf(stderr, "tier watermark lags the window\n");
    return 1;
  }

  const std::string expected_path = tier_path + ".expected";
  std::FILE* f = std::fopen(expected_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", expected_path.c_str());
    return 1;
  }
  std::fprintf(f, "window_start %d\n", runtime->window_start());
  const std::vector<double> baselines = AllBaselines(*runtime);
  for (double b : baselines) std::fprintf(f, "%a\n", b);
  std::fclose(f);
  std::printf("write: %zu baselines -> %s\n", baselines.size(),
              expected_path.c_str());
  return 0;
}

int RunRecover(const std::string& tier_path) {
  // Read back what the writing process promised.
  const std::string expected_path = tier_path + ".expected";
  std::FILE* f = std::fopen(expected_path.c_str(), "r");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot read %s (run `backtest write` first)\n",
                 expected_path.c_str());
    return 1;
  }
  int window_start = 0;
  if (std::fscanf(f, "window_start %d\n", &window_start) != 1) {
    std::fclose(f);
    std::fprintf(stderr, "malformed %s\n", expected_path.c_str());
    return 1;
  }
  std::vector<double> want;
  char token[80];
  while (std::fscanf(f, "%79s", token) == 1) {
    want.push_back(std::strtod(token, nullptr));
  }
  std::fclose(f);

  // Rebuild the hot window only: Create(window_start) leaves the cold span
  // as empty timestamps that are immediately evicted — no replay.
  Collection hot = MakeSeedCollection(window_start);
  for (Timestamp w = window_start; w < kSeedWeeks + kLiveWeeks; ++w) {
    if (!hot.Append(WeekSnapshot(w)).ok()) return 1;
  }
  auto runtime = FeedRuntime::Create(std::move(hot),
                                     RuntimeOptions(tier_path));
  if (!runtime.ok()) {
    std::fprintf(stderr, "restart FeedRuntime::Create: %s\n",
                 runtime.status().ToString().c_str());
    return 1;
  }
  if (runtime->window_start() != window_start) {
    std::fprintf(stderr, "restart window_start %d != written %d\n",
                 runtime->window_start(), window_start);
    return 1;
  }

  const std::vector<double> got = AllBaselines(*runtime);
  if (got.size() != want.size()) {
    std::fprintf(stderr, "baseline count %zu != written %zu\n", got.size(),
                 want.size());
    return 1;
  }
  size_t mismatches = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i] != want[i]) {  // bit-exact, no tolerance
      if (++mismatches <= 5) {
        std::fprintf(stderr, "baseline %zu: recovered %a != written %a\n", i,
                     got[i], want[i]);
      }
    }
  }
  if (mismatches != 0) {
    std::fprintf(stderr, "recover: %zu/%zu baselines diverged\n", mismatches,
                 got.size());
    return 1;
  }
  std::printf("recover: all %zu baselines bit-identical after restart\n",
              got.size());

  // The backtest proper: replay the cold span and rediscover the flood.
  const ColdTier* tier = runtime->history();
  auto replayed = ReplayRange(
      *tier, FloodTerm(), tier->bucket_lower_bound(),
      tier->bucket_upper_bound(),
      [] { return std::make_unique<GlobalMeanModel>(); });
  if (!replayed.ok()) {
    std::fprintf(stderr, "ReplayRange: %s\n",
                 replayed.status().ToString().c_str());
    return 1;
  }
  const auto burst_bucket_begin =
      static_cast<uint32_t>((kSeedWeeks + kBurstBegin) / kBucketWidth);
  bool found = false;
  for (const ReplayedInterval& interval : *replayed) {
    std::printf("recover: \"flood\" bursty on stream %u over weeks "
                "[%u, %u) (score %.3f)\n",
                interval.stream,
                interval.bucket_begin * static_cast<uint32_t>(kBucketWidth),
                interval.bucket_end * static_cast<uint32_t>(kBucketWidth),
                interval.burstiness);
    found |= interval.stream < 3 &&
             interval.bucket_begin <= burst_bucket_begin &&
             interval.bucket_end > burst_bucket_begin;
  }
  if (!found) {
    std::fprintf(stderr, "recover: injected burst not found in the tier\n");
    return 1;
  }

  // And the tier keeps growing where the previous process stopped.
  const Timestamp before = tier->folded_until();
  auto stats = runtime->Tick(WeekSnapshot(kSeedWeeks + kLiveWeeks));
  if (!stats.ok() || runtime->history()->folded_until() != before + 1) {
    std::fprintf(stderr, "recover: post-restart tick did not fold\n");
    return 1;
  }
  std::printf("recover: post-restart tick folded %zu terms, tier now "
              "covers [%d, %d)\n",
              stats->folded_terms, runtime->history()->covered_start(),
              runtime->history()->folded_until());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "write") == 0) {
    return RunWrite(argv[2]);
  }
  if (argc == 3 && std::strcmp(argv[1], "recover") == 0) {
    return RunRecover(argv[2]);
  }
  if (argc == 1) {
    const char* tmp = std::getenv("TMPDIR");
    const std::string path =
        std::string(tmp != nullptr ? tmp : "/tmp") + "/stburst_backtest.tier";
    const int write_rc = RunWrite(path);
    return write_rc != 0 ? write_rc : RunRecover(path);
  }
  std::fprintf(stderr, "usage: %s [write|recover <tier_path>]\n", argv[0]);
  return 2;
}
