// Sharded live feed: the same snapshot stream driven through a K=4
// ShardedRuntime and an unsharded FeedRuntime control, week by week, with
// the bit-identity contract checked at every tick (docs/ARCHITECTURE.md,
// "Sharded runtime").
//
//  1. Ingest a 30-week historical corpus (same generator as live_feed).
//  2. Bring up both runtimes over copies of the same collection: the
//     control owns the whole vocabulary; the sharded runtime splits it
//     hash(term) % 4 ways behind one coordinator pool.
//  3. Go live for 18 weeks with a storm burst in the clustered streams.
//     Every week both runtimes tick the same snapshot; the example then
//     verifies that tick stats (all but wall time), the watched term's
//     standing patterns, and the top-10 search answer for "storm" —
//     documents, scores, access counts, early termination — are identical.
//     Any divergence prints the week and exits nonzero.
//
// Run: ./build/examples/sharded_feed

#include <cstdio>
#include <string>
#include <vector>

#include "stburst/common/random.h"
#include "stburst/stream/feed_runtime.h"
#include "stburst/stream/sharded_runtime.h"

using namespace stburst;

namespace {

constexpr Timestamp kHistoryWeeks = 30;
constexpr Timestamp kLiveWeeks = 18;
constexpr Timestamp kRetentionWeeks = 36;
constexpr size_t kBackgroundVocab = 400;
constexpr size_t kNumShards = 4;

std::vector<TermId> BackgroundTokens(Rng& rng) {
  std::vector<TermId> tokens;
  size_t len = 3 + rng.NextUint64(6);
  for (size_t i = 0; i < len; ++i) {
    TermId tok = static_cast<TermId>(rng.NextUint64(kBackgroundVocab));
    if (rng.Bernoulli(0.5)) {
      tok = static_cast<TermId>(tok % (kBackgroundVocab / 8 + 1));
    }
    tokens.push_back(tok);
  }
  return tokens;
}

StatusOr<Collection> BuildCorpus() {
  STB_ASSIGN_OR_RETURN(Collection collection,
                       Collection::Create(kHistoryWeeks));
  Rng rng(2012);
  for (int s = 0; s < 12; ++s) {
    double x = s < 4 ? 1.0 + 0.5 * s : 10.0 + 3.0 * s;
    double y = s < 4 ? 1.0 + 0.4 * s : 2.0 * (s % 5);
    collection.AddStream("city" + std::to_string(s), {}, Point2D{x, y});
  }
  Vocabulary* vocab = collection.mutable_vocabulary();
  for (size_t t = 0; t < kBackgroundVocab; ++t) {
    vocab->Intern("bg" + std::to_string(t));
  }
  const TermId storm = vocab->Intern("storm");
  for (Timestamp week = 0; week < kHistoryWeeks; ++week) {
    for (StreamId s = 0; s < collection.num_streams(); ++s) {
      size_t docs = 2 + rng.NextUint64(3);
      for (size_t d = 0; d < docs; ++d) {
        std::vector<TermId> tokens = BackgroundTokens(rng);
        if (rng.Bernoulli(0.05)) tokens.push_back(storm);
        STB_RETURN_NOT_OK(
            collection.AddDocument(s, week, std::move(tokens)).status());
      }
    }
  }
  return collection;
}

bool SamePatterns(const TermPatterns& a, const TermPatterns& b) {
  if (a.term != b.term || a.mined != b.mined ||
      a.combinatorial.size() != b.combinatorial.size() ||
      a.regional.size() != b.regional.size()) {
    return false;
  }
  for (size_t i = 0; i < a.combinatorial.size(); ++i) {
    const CombinatorialPattern& x = a.combinatorial[i];
    const CombinatorialPattern& y = b.combinatorial[i];
    if (x.streams != y.streams || !(x.timeframe == y.timeframe) ||
        x.score != y.score) {
      return false;
    }
  }
  for (size_t i = 0; i < a.regional.size(); ++i) {
    const SpatiotemporalWindow& x = a.regional[i];
    const SpatiotemporalWindow& y = b.regional[i];
    if (!(x.region == y.region) || x.streams != y.streams ||
        !(x.timeframe == y.timeframe) || x.score != y.score) {
      return false;
    }
  }
  return true;
}

bool SameSearch(const TopKResult& a, const TopKResult& b) {
  // Generation schemes differ (shard-sum vs single index); everything the
  // caller can act on must match.
  return a.docs == b.docs && a.sorted_accesses == b.sorted_accesses &&
         a.random_accesses == b.random_accesses &&
         a.early_terminated == b.early_terminated;
}

}  // namespace

int main() {
  auto control_corpus = BuildCorpus();
  auto sharded_corpus = BuildCorpus();  // same seed: identical corpus
  if (!control_corpus.ok() || !sharded_corpus.ok()) return 1;
  const TermId storm = control_corpus->vocabulary().Lookup("storm");

  FeedRuntimeOptions opts;
  opts.miner.stcomb.min_interval_burstiness = 0.1;
  opts.num_threads = 4;
  opts.retention_window = kRetentionWeeks;
  opts.refresh_budget = 16;
  opts.search_serving = SearchServing::kCombinatorial;

  auto control = FeedRuntime::Create(std::move(*control_corpus), opts);
  if (!control.ok()) {
    std::fprintf(stderr, "FeedRuntime::Create: %s\n",
                 control.status().ToString().c_str());
    return 1;
  }
  ShardedRuntimeOptions sharded_opts;
  sharded_opts.runtime = opts;
  sharded_opts.num_shards = kNumShards;
  auto sharded =
      ShardedRuntime::Create(std::move(*sharded_corpus), sharded_opts);
  if (!sharded.ok()) {
    std::fprintf(stderr, "ShardedRuntime::Create: %s\n",
                 sharded.status().ToString().c_str());
    return 1;
  }
  std::printf("control up: %zu documents, %zu terms\n",
              control->collection().num_documents(),
              control->collection().vocabulary().size());
  size_t shard_docs = 0;
  for (size_t s = 0; s < sharded->num_shards(); ++s) {
    shard_docs += sharded->shard(s).collection().num_documents();
  }
  std::printf("sharded up: %zu shards, %zu routed document copies\n\n",
              sharded->num_shards(), shard_docs);

  Rng rng(777);
  std::printf("live parity run (%d weeks, window %d weeks):\n", kLiveWeeks,
              kRetentionWeeks);
  std::printf("%6s %6s %7s %9s %7s %12s %12s\n", "week", "docs", "dirty",
              "refresh", "evict", "control(ms)", "sharded(ms)");
  for (Timestamp week = kHistoryWeeks; week < kHistoryWeeks + kLiveWeeks;
       ++week) {
    const bool bursting = week >= 36 && week <= 40;
    Snapshot snap;
    for (StreamId s = 0; s < control->collection().num_streams(); ++s) {
      size_t docs = 2 + rng.NextUint64(3);
      for (size_t d = 0; d < docs; ++d) {
        SnapshotDocument doc;
        doc.stream = s;
        doc.tokens = BackgroundTokens(rng);
        if (rng.Bernoulli(0.05)) doc.tokens.push_back(storm);
        snap.push_back(std::move(doc));
      }
      if (bursting && s < 4) {
        SnapshotDocument doc;
        doc.stream = s;
        doc.tokens = {storm, storm, storm, storm};
        snap.push_back(std::move(doc));
      }
    }

    auto control_stats = control->Tick(Snapshot(snap));
    auto sharded_stats = sharded->Tick(std::move(snap));
    if (!control_stats.ok() || !sharded_stats.ok()) {
      std::fprintf(stderr, "tick failed week %d: control=%s sharded=%s\n",
                   week, control_stats.status().ToString().c_str(),
                   sharded_stats.status().ToString().c_str());
      return 1;
    }
    if (control_stats->time != sharded_stats->time ||
        control_stats->documents != sharded_stats->documents ||
        control_stats->rejected_documents !=
            sharded_stats->rejected_documents ||
        control_stats->dirty_terms != sharded_stats->dirty_terms ||
        control_stats->refreshed_terms != sharded_stats->refreshed_terms ||
        control_stats->search_terms != sharded_stats->search_terms ||
        control_stats->evicted != sharded_stats->evicted ||
        control_stats->degraded != sharded_stats->degraded) {
      std::fprintf(stderr, "tick stats diverged at week %d\n", week);
      return 1;
    }
    if (!SamePatterns(control->patterns(storm), sharded->patterns(storm))) {
      std::fprintf(stderr, "standing patterns diverged at week %d\n", week);
      return 1;
    }
    if (!SameSearch(control->Search("storm", 10),
                    sharded->Search("storm", 10))) {
      std::fprintf(stderr, "search answers diverged at week %d\n", week);
      return 1;
    }
    std::printf("%6d %6zu %7zu %9zu %7s %12.1f %12.1f\n", week,
                control_stats->documents, control_stats->dirty_terms,
                control_stats->refreshed_terms,
                control_stats->evicted ? "yes" : "no",
                control_stats->seconds * 1e3, sharded_stats->seconds * 1e3);
  }

  // Spot-check the full standing state once more at the end: every term's
  // patterns must match, whichever shard owns it.
  for (TermId t = 0; t < control->collection().vocabulary().size(); ++t) {
    if (!SamePatterns(control->patterns(t), sharded->patterns(t))) {
      std::fprintf(stderr, "final patterns diverged for term %u\n", t);
      return 1;
    }
  }

  std::printf("\n%d live weeks bit-identical across %zu shards "
              "(stats, standing patterns, search top-10)\n",
              kLiveWeeks, sharded->num_shards());
  return 0;
}
