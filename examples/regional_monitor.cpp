// Regional monitor: track a localized event through the streaming STLocal
// pipeline, the way a news-monitoring deployment would.
//
// Simulates the paper's Topix setting (181 country streams, 48 weeks) and
// feeds the snapshots of a chosen tier-3 query ("Vieira" — the Guinea-Bissau
// assassination) through StLocal one week at a time, printing the live
// state as data arrives and the final maximal windows at the end.
//
// Run: ./build/examples/regional_monitor

#include <cstdio>
#include <memory>
#include <vector>

#include "stburst/core/expected.h"
#include "stburst/core/stlocal.h"
#include "stburst/gen/topix_sim.h"
#include "stburst/stream/frequency.h"

using namespace stburst;

int main() {
  std::printf("Generating the simulated Topix corpus (181 countries, "
              "48 weeks)...\n");
  TopixOptions options;
  options.mean_docs_per_week = 6.0;
  auto sim = TopixSimulator::Generate(options);
  if (!sim.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 sim.status().ToString().c_str());
    return 1;
  }
  const Collection& corpus = sim->collection();
  std::printf("  %zu documents\n\n", corpus.num_documents());

  const size_t kEvent = 13;  // "Vieira", tier 3
  const MajorEvent& event = sim->events()[kEvent];
  std::printf("Monitoring query \"%s\" (%s)\n\n",
              std::string(event.query).c_str(),
              std::string(event.description).c_str());

  FrequencyIndex freq = FrequencyIndex::Build(corpus);
  TermId term = sim->QueryTerms(kEvent)[0];
  TermSeries series = freq.DenseSeries(term);
  std::vector<Point2D> positions = corpus.StreamPositions();

  // One expected-frequency model per stream, advanced causally — exactly
  // what a live deployment maintains.
  std::vector<std::unique_ptr<ExpectedFrequencyModel>> models;
  for (size_t s = 0; s < positions.size(); ++s) {
    models.push_back(std::make_unique<PriorFloorModel>(
        std::make_unique<GlobalMeanModel>(), 0.05));
  }

  StLocal miner(positions);
  std::vector<double> burstiness(positions.size());
  for (Timestamp week = 0; week < corpus.timeline_length(); ++week) {
    for (StreamId s = 0; s < positions.size(); ++s) {
      double y = series.at(s, week);
      burstiness[s] = models[s]->HasHistory() ? y - models[s]->Expected() : 0.0;
      models[s]->Observe(y);
    }
    Status st = miner.ProcessSnapshot(burstiness);
    if (!st.ok()) {
      std::fprintf(stderr, "snapshot failed: %s\n", st.ToString().c_str());
      return 1;
    }
    if (miner.num_live_sequences() > 0) {
      std::printf("week %2d: %2zu live region(s), %2zu open window(s)\n", week,
                  miner.num_live_sequences(), miner.num_open_windows());
    }
  }

  auto windows = miner.Finish();
  std::printf("\n%zu maximal spatiotemporal windows; strongest first:\n",
              windows.size());
  for (size_t i = 0; i < windows.size() && i < 5; ++i) {
    const auto& w = windows[i];
    std::printf("  w-score %7.2f  weeks [%2d, %2d]  %3zu countries:",
                w.score, w.timeframe.start, w.timeframe.end, w.streams.size());
    for (size_t j = 0; j < w.streams.size() && j < 6; ++j) {
      std::printf(" %s", corpus.stream(w.streams[j]).name.c_str());
    }
    if (w.streams.size() > 6) std::printf(" ...");
    std::printf("\n");
  }

  // Compare to the ground truth the simulator injected.
  auto truth = sim->AffectedStreams(kEvent);
  Interval frame = sim->RelevantTimeframe(kEvent);
  std::printf("\nGround truth: %zu countries affected during weeks [%d, %d]\n",
              truth.size(), frame.start, frame.end);
  return 0;
}
