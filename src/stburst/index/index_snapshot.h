// One published generation of the search read plane.
//
// A tick that edits search state builds the next IndexSnapshot off to the
// side (a private copy of the current index, edited through the usual
// Reopen → EvictBefore/ReplaceTerm → Finalize fast path) and publishes it
// with one atomic swap; readers hold a shared_ptr<const IndexSnapshot> and
// query it lock-free for as long as they like. The metadata alongside the
// index pins down what "internally consistent" means for a result computed
// against this snapshot: its generation, and the window the postings cover.

#ifndef STBURST_INDEX_INDEX_SNAPSHOT_H_
#define STBURST_INDEX_INDEX_SNAPSHOT_H_

#include <cstdint>

#include "stburst/index/inverted_index.h"
#include "stburst/stream/types.h"

namespace stburst {

/// An immutable, finalized search index plus the window metadata it was
/// built against. Never mutated after publication — ticks publish a
/// successor instead — so concurrent readers need no synchronization
/// beyond holding the shared_ptr.
struct IndexSnapshot {
  InvertedIndex index;

  /// == index.generation(); strictly increasing across published
  /// snapshots of one runtime. Query results computed against this
  /// snapshot carry it (TopKResult::generation), which is what keys the
  /// query-result cache.
  uint64_t generation = 0;

  /// First retained timestamp of the window the postings cover.
  Timestamp window_start = 0;

  /// Smallest live DocId: every posting's doc is >= doc_id_base.
  DocId doc_id_base = 0;
};

}  // namespace stburst

#endif  // STBURST_INDEX_INDEX_SNAPSHOT_H_
