#include "stburst/index/tb_engine.h"

#include <numeric>

#include "stburst/core/temporal.h"

namespace stburst {

PatternIndex BuildTbPatternIndex(const FrequencyIndex& frequencies,
                                 const std::vector<TermId>& terms) {
  std::vector<TermId> targets = terms;
  if (targets.empty()) {
    targets.resize(frequencies.num_terms());
    std::iota(targets.begin(), targets.end(), 0);
  }

  // Every pattern covers the full stream set: TB is blind to origins.
  std::vector<StreamId> all_streams(frequencies.num_streams());
  std::iota(all_streams.begin(), all_streams.end(), 0);

  PatternIndex index;
  for (TermId term : targets) {
    // The merged single stream: total frequency per timestamp.
    std::vector<double> merged(
        static_cast<size_t>(frequencies.timeline_length()), 0.0);
    for (const TermPosting& p : frequencies.postings(term)) {
      merged[static_cast<size_t>(p.time)] += p.count;
    }
    for (const BurstyInterval& bi : ExtractBurstyIntervals(merged)) {
      index.Add(term, TermPattern{all_streams, bi.interval, bi.burstiness});
    }
  }
  return index;
}

}  // namespace stburst
