#include "stburst/index/tb_engine.h"

#include <numeric>

#include "stburst/core/temporal.h"

namespace stburst {

PatternIndex BuildTbPatternIndex(const FrequencyIndex& frequencies,
                                 const std::vector<TermId>& terms) {
  std::vector<TermId> targets = terms;
  if (targets.empty()) {
    targets.resize(frequencies.num_terms());
    std::iota(targets.begin(), targets.end(), 0);
  }

  // Every pattern covers the full stream set: TB is blind to origins.
  std::vector<StreamId> all_streams(frequencies.num_streams());
  std::iota(all_streams.begin(), all_streams.end(), 0);

  // Operate over the retained window (origin-relative scatter, absolute
  // intervals out) so a windowed index costs O(window) per term and the
  // burstiness baseline is the window's — same mapping as the batch miner.
  const Timestamp origin = frequencies.window_start();
  PatternIndex index;
  for (TermId term : targets) {
    // The merged single stream: total frequency per retained timestamp.
    std::vector<double> merged(
        static_cast<size_t>(frequencies.window_length()), 0.0);
    for (const TermPosting& p : frequencies.postings(term)) {
      merged[static_cast<size_t>(p.time - origin)] += p.count;
    }
    for (const BurstyInterval& bi : ExtractBurstyIntervals(merged)) {
      index.Add(term,
                TermPattern{all_streams,
                            Interval{bi.interval.start + origin,
                                     bi.interval.end + origin},
                            bi.burstiness});
    }
  }
  return index;
}

}  // namespace stburst
