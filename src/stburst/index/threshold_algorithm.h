// Fagin's Threshold Algorithm (TA) for top-k aggregation over score-sorted
// posting lists (paper §5, reference [6]).
//
// The aggregate is the sum of per-term scores; documents missing from a
// term's list contribute 0 for that term. TA scans the query terms' lists
// in parallel depth order, random-accesses each newly seen document's
// remaining scores, and stops as soon as the k-th best complete score is at
// least the threshold (the sum of the scores at the current scan depths).

#ifndef STBURST_INDEX_THRESHOLD_ALGORITHM_H_
#define STBURST_INDEX_THRESHOLD_ALGORITHM_H_

#include <vector>

#include "stburst/index/inverted_index.h"
#include "stburst/stream/types.h"

namespace stburst {

/// A retrieved document with its aggregate score.
struct ScoredDoc {
  DocId doc = kInvalidDoc;
  double score = 0.0;

  friend bool operator==(const ScoredDoc& a, const ScoredDoc& b) {
    return a.doc == b.doc && a.score == b.score;
  }
};

/// Top-k retrieval outcome plus the access counts that make TA's early
/// termination observable in tests and benchmarks.
struct TopKResult {
  std::vector<ScoredDoc> docs;  // descending score, ties by ascending id
  size_t sorted_accesses = 0;
  size_t random_accesses = 0;
  bool early_terminated = false;  // stopped before exhausting the lists
  /// InvertedIndex::generation() at computation time. A cached result is
  /// stale — and must be recomputed — once it differs from the index's
  /// current generation (the index was reopened, fed, and re-finalized).
  uint64_t generation = 0;
};

/// Runs TA for `query` (a set of term ids; duplicates are ignored) over a
/// finalized index. Returns at most k documents with strictly positive
/// aggregate score.
TopKResult ThresholdTopK(const InvertedIndex& index,
                         const std::vector<TermId>& query, size_t k);

/// Reference implementation that exhaustively merges the full posting lists.
/// Identical output to ThresholdTopK; used for differential testing.
TopKResult ExhaustiveTopK(const InvertedIndex& index,
                          const std::vector<TermId>& query, size_t k);

}  // namespace stburst

#endif  // STBURST_INDEX_THRESHOLD_ALGORITHM_H_
