// Fagin's Threshold Algorithm (TA) for top-k aggregation over score-sorted
// posting lists (paper §5, reference [6]).
//
// The aggregate is the sum of per-term scores; documents missing from a
// term's list contribute 0 for that term. TA scans the query terms' lists
// in parallel depth order, random-accesses each newly seen document's
// remaining scores, and stops as soon as the k-th best complete score is at
// least the threshold (the sum of the scores at the current scan depths).

#ifndef STBURST_INDEX_THRESHOLD_ALGORITHM_H_
#define STBURST_INDEX_THRESHOLD_ALGORITHM_H_

#include <vector>

#include "stburst/index/inverted_index.h"
#include "stburst/stream/types.h"

namespace stburst {

/// A retrieved document with its aggregate score.
struct ScoredDoc {
  DocId doc = kInvalidDoc;
  double score = 0.0;

  friend bool operator==(const ScoredDoc& a, const ScoredDoc& b) {
    return a.doc == b.doc && a.score == b.score;
  }
};

/// Top-k retrieval outcome plus the access counts that make TA's early
/// termination observable in tests and benchmarks.
struct TopKResult {
  std::vector<ScoredDoc> docs;  // descending score, ties by ascending id
  size_t sorted_accesses = 0;
  size_t random_accesses = 0;
  bool early_terminated = false;  // stopped before exhausting the lists
  /// InvertedIndex::generation() at computation time. A cached result is
  /// stale — and must be recomputed — once it differs from the index's
  /// current generation (the index was reopened, fed, and re-finalized).
  uint64_t generation = 0;
};

/// Runs TA for `query` (a set of term ids; duplicates are ignored) over a
/// finalized index. Returns at most k documents with strictly positive
/// aggregate score.
TopKResult ThresholdTopK(const InvertedIndex& index,
                         const std::vector<TermId>& query, size_t k);

/// Reference implementation that exhaustively merges the full posting lists.
/// Identical output to ThresholdTopK; used for differential testing.
TopKResult ExhaustiveTopK(const InvertedIndex& index,
                          const std::vector<TermId>& query, size_t k);

/// One query term's posting list as served by a vocabulary shard: the
/// shard's index (postings hold shard-local DocIds) plus the translation
/// back to global ids. `doc_map` is ascending, indexed by
/// local_id - local_base: (*doc_map)[p.doc - local_base] is the global id
/// of local posting doc p.doc. The coordinator (ShardedRuntime::Search)
/// builds one per deduped query term from the owning shard's published
/// snapshot.
struct ShardedTermList {
  TermId term = kInvalidTerm;
  const InvertedIndex* index = nullptr;
  const std::vector<DocId>* doc_map = nullptr;
  DocId local_base = 0;
};

/// Scatter-gather TA over per-shard posting lists: the same threshold loop
/// as ThresholdTopK, with each sorted access translated shard-local →
/// global on the fly and each random access translated global → shard-local
/// (binary search on the ascending doc map; a document absent from a term's
/// shard scores 0 there, exactly as a document absent from a term's list
/// does unsharded).
///
/// Composition argument: shard postings are sorted by (score desc, DocId
/// asc) and the local → global translation is strictly increasing, so each
/// translated list is element-for-element the unsharded list of that term;
/// the frontier — and therefore the global threshold, the termination
/// point, and every access count — is bit-identical to ThresholdTopK over
/// the unsharded index (the per-shard thresholds sum to the global one in
/// list order). `lists` must be deduped and sorted by term, the order
/// DedupeQuery produces. `generation` stamps the result (the coordinator's
/// view generation; shard generations are not individually meaningful to a
/// caller holding a composed view).
TopKResult ShardedThresholdTopK(const std::vector<ShardedTermList>& lists,
                                size_t k, uint64_t generation);

}  // namespace stburst

#endif  // STBURST_INDEX_THRESHOLD_ALGORITHM_H_
