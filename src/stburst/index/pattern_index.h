// Unified storage of mined spatiotemporal patterns, keyed by term.
//
// Both pattern flavors (combinatorial cliques from STComb and regional
// windows from STLocal) reduce, for document scoring purposes (§5), to the
// same shape: a set of streams, a timeframe, and a score. A document
// overlaps a pattern iff its stream of origin and its timestamp are both
// included (Eq. 11's P_{t,d}).

#ifndef STBURST_INDEX_PATTERN_INDEX_H_
#define STBURST_INDEX_PATTERN_INDEX_H_

#include <algorithm>
#include <span>
#include <vector>

#include "stburst/core/interval.h"
#include "stburst/core/pattern.h"
#include "stburst/stream/types.h"

namespace stburst {

/// One pattern as seen by the search engine.
struct TermPattern {
  std::vector<StreamId> streams;  // sorted
  Interval timeframe;
  double score = 0.0;

  /// Eq. 11 overlap test: the document's origin and timestamp are both in
  /// the pattern.
  bool Overlaps(StreamId stream, Timestamp time) const {
    return timeframe.Contains(time) &&
           std::binary_search(streams.begin(), streams.end(), stream);
  }
};

/// Eq. 11 with f = max over an explicit pattern list (the per-term slice a
/// live maintainer holds — FeedRuntime's search serving): the maximum score
/// among `patterns` overlapping a document from `stream` at `time`; false
/// when none does. Every pattern's stream list must be sorted (TermPattern's
/// invariant).
bool MaxOverlapScore(std::span<const TermPattern> patterns, StreamId stream,
                     Timestamp time, double* score);

/// Per-term pattern lists. The engine is built for one pattern type at a
/// time (§5: "a separate instance is required for each type").
class PatternIndex {
 public:
  /// Appends a pattern for `term`. Stream list is sorted on insertion.
  void Add(TermId term, TermPattern pattern);

  /// Convenience adapters from the miners' native outputs.
  void AddCombinatorial(TermId term, const CombinatorialPattern& pattern);
  void AddWindow(TermId term, const SpatiotemporalWindow& window);

  /// Patterns recorded for a term (empty if none).
  const std::vector<TermPattern>& PatternsFor(TermId term) const;

  /// Eq. 11 with f = max: the maximum score among patterns of `term`
  /// overlapping a document from `stream` at `time`; returns false when no
  /// pattern overlaps (the -inf case).
  bool MaxOverlapScore(TermId term, StreamId stream, Timestamp time,
                       double* score) const;

  size_t num_terms_with_patterns() const { return non_empty_terms_; }
  size_t total_patterns() const { return total_patterns_; }

 private:
  std::vector<std::vector<TermPattern>> patterns_;  // indexed by TermId
  size_t non_empty_terms_ = 0;
  size_t total_patterns_ = 0;
  static const std::vector<TermPattern> kEmpty;
};

}  // namespace stburst

#endif  // STBURST_INDEX_PATTERN_INDEX_H_
