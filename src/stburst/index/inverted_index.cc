#include "stburst/index/inverted_index.h"

#include <algorithm>

#include "stburst/common/logging.h"

namespace stburst {

const std::vector<Posting> InvertedIndex::kEmpty;

namespace {

bool ScoreOrder(const Posting& a, const Posting& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

}  // namespace

void InvertedIndex::Add(TermId term, DocId doc, double score) {
  STB_CHECK(!finalized_) << "Add after Finalize (call Reopen first)";
  if (term >= postings_.size()) postings_.resize(term + 1);
  postings_[term].push_back(Posting{doc, score});
  ++total_postings_;
  if (ever_finalized_) dirty_.push_back(term);
}

void InvertedIndex::Finalize() {
  if (finalized_) return;
  lookup_.resize(postings_.size());
  auto refreeze_term = [this](TermId t) {
    auto& plist = postings_[t];
    std::sort(plist.begin(), plist.end(), ScoreOrder);
    auto& map = lookup_[t];
    map.clear();  // no-op on a fresh map
    map.reserve(plist.size());
    for (const Posting& p : plist) map.emplace(p.doc, p.score);
  };
  if (!ever_finalized_) {
    for (size_t t = 0; t < postings_.size(); ++t) {
      refreeze_term(static_cast<TermId>(t));
    }
  } else {
    // Incremental re-freeze: only terms with postings added since the last
    // Finalize() need their order and random-access map rebuilt.
    std::sort(dirty_.begin(), dirty_.end());
    dirty_.erase(std::unique(dirty_.begin(), dirty_.end()), dirty_.end());
    for (TermId t : dirty_) refreeze_term(t);
  }
  dirty_.clear();
  finalized_ = true;
  ever_finalized_ = true;
  ++generation_;
}

void InvertedIndex::Reopen() { finalized_ = false; }

const std::vector<Posting>& InvertedIndex::postings(TermId term) const {
  STB_CHECK(finalized_) << "postings before Finalize";
  if (term >= postings_.size()) return kEmpty;
  return postings_[term];
}

bool InvertedIndex::Score(TermId term, DocId doc, double* score) const {
  STB_CHECK(finalized_) << "Score before Finalize";
  if (term >= lookup_.size()) return false;
  auto it = lookup_[term].find(doc);
  if (it == lookup_[term].end()) return false;
  *score = it->second;
  return true;
}

}  // namespace stburst
