#include "stburst/index/inverted_index.h"

#include <algorithm>

#include "stburst/common/logging.h"

namespace stburst {

const std::vector<Posting> InvertedIndex::kEmpty;

void InvertedIndex::Add(TermId term, DocId doc, double score) {
  STB_CHECK(!finalized_) << "Add after Finalize";
  if (term >= postings_.size()) postings_.resize(term + 1);
  postings_[term].push_back(Posting{doc, score});
  ++total_postings_;
}

void InvertedIndex::Finalize() {
  if (finalized_) return;
  lookup_.resize(postings_.size());
  for (size_t t = 0; t < postings_.size(); ++t) {
    auto& plist = postings_[t];
    std::sort(plist.begin(), plist.end(), [](const Posting& a, const Posting& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.doc < b.doc;
    });
    auto& map = lookup_[t];
    map.reserve(plist.size());
    for (const Posting& p : plist) map.emplace(p.doc, p.score);
  }
  finalized_ = true;
}

const std::vector<Posting>& InvertedIndex::postings(TermId term) const {
  STB_CHECK(finalized_) << "postings before Finalize";
  if (term >= postings_.size()) return kEmpty;
  return postings_[term];
}

bool InvertedIndex::Score(TermId term, DocId doc, double* score) const {
  STB_CHECK(finalized_) << "Score before Finalize";
  if (term >= lookup_.size()) return false;
  auto it = lookup_[term].find(doc);
  if (it == lookup_[term].end()) return false;
  *score = it->second;
  return true;
}

}  // namespace stburst
