#include "stburst/index/inverted_index.h"

#include <algorithm>

#include "stburst/common/fault_injection.h"
#include "stburst/common/logging.h"

namespace stburst {

const std::vector<Posting> InvertedIndex::kEmpty;

namespace {

bool ScoreOrder(const Posting& a, const Posting& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

}  // namespace

void InvertedIndex::Add(TermId term, DocId doc, double score) {
  STB_CHECK(!finalized_) << "Add after Finalize (call Reopen first)";
  if (term >= postings_.size()) postings_.resize(term + 1);
  postings_[term].push_back(Posting{doc, score});
  ++total_postings_;
  if (ever_finalized_) dirty_.push_back(term);
}

void InvertedIndex::Finalize() {
  if (finalized_) return;
  lookup_.resize(postings_.size());
  auto refreeze_term = [this](TermId t) {
    auto& plist = postings_[t];
    std::sort(plist.begin(), plist.end(), ScoreOrder);
    auto& map = lookup_[t];
    // The map is maintained, not rebuilt: postings only ever leave through
    // EvictBefore (which erases their keys) and ClearTerm (which clears the
    // map), so at refreeze time every mapped doc is still in the list and
    // only docs added since the last freeze need nodes. emplace keeps the
    // existing node for mapped docs — a failed find instead of a
    // free+malloc pair, which is what makes the eviction-aware refreeze
    // cheaper than a rebuild (bench: inverted_reopen_evict).
    map.reserve(plist.size());
    for (const Posting& p : plist) map.emplace(p.doc, p.score);
  };
  if (!ever_finalized_) {
    for (size_t t = 0; t < postings_.size(); ++t) {
      refreeze_term(static_cast<TermId>(t));
    }
  } else {
    // Incremental re-freeze: only terms with postings added since the last
    // Finalize() need their order and random-access map rebuilt.
    std::sort(dirty_.begin(), dirty_.end());
    dirty_.erase(std::unique(dirty_.begin(), dirty_.end()), dirty_.end());
    for (TermId t : dirty_) refreeze_term(t);
  }
  dirty_.clear();
  finalized_ = true;
  ever_finalized_ = true;
  ++generation_;
}

void InvertedIndex::Reopen() { finalized_ = false; }

void InvertedIndex::AbortReopen() {
  STB_CHECK(ever_finalized_) << "AbortReopen on a never-finalized index";
  STB_CHECK(dirty_.empty()) << "AbortReopen with pending edits";
  finalized_ = true;
}

void InvertedIndex::EvictBefore(DocId min_live_doc) {
  STB_CHECK(!finalized_) << "EvictBefore on a frozen index (call Reopen first)";
  STBURST_FAULT_POINT_THROW("index.evict");
  for (size_t t = 0; t < postings_.size(); ++t) {
    auto& plist = postings_[t];
    const auto keep = [min_live_doc](const Posting& p) {
      return p.doc >= min_live_doc;
    };
    const auto first_evicted =
        std::find_if_not(plist.begin(), plist.end(), keep);
    if (first_evicted == plist.end()) continue;
    // Survivors keep their relative (score, doc) order, so no re-sort; and
    // the evicted docs are known exactly, so the random-access map pays
    // O(evicted) targeted erases, not an O(survivors) rebuild — that
    // asymmetry is what lets the steady-state tick beat a rebuild even
    // when an eviction touches most of the active vocabulary. One
    // allocation-free compaction pass does both.
    const bool mapped = t < lookup_.size();
    auto out = first_evicted;
    for (auto it = first_evicted; it != plist.end(); ++it) {
      if (keep(*it)) {
        *out++ = *it;
      } else {
        if (mapped) lookup_[t].erase(it->doc);
        --total_postings_;
      }
    }
    plist.erase(out, plist.end());
  }
}

void InvertedIndex::ClearTerm(TermId term) {
  STB_CHECK(!finalized_) << "ClearTerm on a frozen index (call Reopen first)";
  if (term >= postings_.size()) return;
  total_postings_ -= postings_[term].size();
  postings_[term].clear();
  if (term < lookup_.size()) lookup_[term].clear();
  if (ever_finalized_) dirty_.push_back(term);
}

void InvertedIndex::ReplaceTerm(TermId term, std::vector<Posting> postings) {
  STB_CHECK(!finalized_) << "ReplaceTerm on a frozen index (call Reopen first)";
  if (term >= postings_.size()) postings_.resize(term + 1);
  total_postings_ -= postings_[term].size();
  total_postings_ += postings.size();
  postings_[term] = std::move(postings);
  if (term < lookup_.size()) lookup_[term].clear();
  if (ever_finalized_) dirty_.push_back(term);
}

const std::vector<Posting>& InvertedIndex::postings(TermId term) const {
  STB_CHECK(finalized_) << "postings before Finalize";
  if (term >= postings_.size()) return kEmpty;
  return postings_[term];
}

bool InvertedIndex::Score(TermId term, DocId doc, double* score) const {
  STB_CHECK(finalized_) << "Score before Finalize";
  if (term >= lookup_.size()) return false;
  auto it = lookup_[term].find(doc);
  if (it == lookup_[term].end()) return false;
  *score = it->second;
  return true;
}

}  // namespace stburst
