#include "stburst/index/threshold_algorithm.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "stburst/common/logging.h"

namespace stburst {

namespace {

std::vector<TermId> DedupeQuery(const std::vector<TermId>& query) {
  std::vector<TermId> terms = query;
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  return terms;
}

std::vector<ScoredDoc> SortAndTruncate(
    std::unordered_map<DocId, double>&& scores, size_t k) {
  std::vector<ScoredDoc> docs;
  docs.reserve(scores.size());
  for (const auto& [doc, score] : scores) {
    if (score > 0.0) docs.push_back(ScoredDoc{doc, score});
  }
  std::sort(docs.begin(), docs.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  if (docs.size() > k) docs.resize(k);
  return docs;
}

}  // namespace

TopKResult ThresholdTopK(const InvertedIndex& index,
                         const std::vector<TermId>& query, size_t k) {
  TopKResult result;
  result.generation = index.generation();
  if (k == 0) return result;
  std::vector<TermId> terms = DedupeQuery(query);
  if (terms.empty()) return result;

  std::vector<const std::vector<Posting>*> lists;
  lists.reserve(terms.size());
  for (TermId t : terms) lists.push_back(&index.postings(t));

  std::vector<size_t> pos(lists.size(), 0);
  std::unordered_map<DocId, double> candidates;
  size_t expected = 0;
  for (const auto* list : lists) expected += list->size();
  candidates.reserve(std::min(expected, size_t{1} << 16));

  // Bounded min-heap over the current top-k scores: O(log k) per offer with
  // contiguous storage, versus the node-per-score multiset it replaces.
  std::priority_queue<double, std::vector<double>, std::greater<double>> best_k;

  auto offer = [&](double score) {
    if (best_k.size() < k) {
      best_k.push(score);
    } else if (score > best_k.top()) {
      best_k.pop();
      best_k.push(score);
    }
  };

  for (;;) {
    bool advanced = false;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (pos[i] >= lists[i]->size()) continue;
      const Posting& p = (*lists[i])[pos[i]];
      ++pos[i];
      ++result.sorted_accesses;
      advanced = true;
      if (candidates.find(p.doc) != candidates.end()) continue;
      // Complete the document's aggregate with random accesses.
      double total = 0.0;
      for (size_t j = 0; j < lists.size(); ++j) {
        double s = 0.0;
        if (j == i) {
          s = p.score;
        } else {
          ++result.random_accesses;
          if (!index.Score(terms[j], p.doc, &s)) s = 0.0;
        }
        total += s;
      }
      candidates.emplace(p.doc, total);
      offer(total);
    }
    if (!advanced) break;  // every list exhausted: exact result

    // Threshold from the new frontier. Exhausted lists contribute 0 (a doc
    // absent from a list scores 0 there).
    double threshold = 0.0;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (pos[i] < lists[i]->size()) threshold += (*lists[i])[pos[i]].score;
    }
    if (best_k.size() == k && best_k.top() >= threshold) {
      result.early_terminated = true;
      break;
    }
    if (threshold <= 0.0 && best_k.size() == k) {
      result.early_terminated = true;
      break;
    }
  }

  result.docs = SortAndTruncate(std::move(candidates), k);
  return result;
}

TopKResult ExhaustiveTopK(const InvertedIndex& index,
                          const std::vector<TermId>& query, size_t k) {
  TopKResult result;
  result.generation = index.generation();
  if (k == 0) return result;
  std::vector<TermId> terms = DedupeQuery(query);
  std::unordered_map<DocId, double> scores;
  size_t expected = 0;
  for (TermId t : terms) expected += index.postings(t).size();
  scores.reserve(std::min(expected, size_t{1} << 16));
  for (TermId t : terms) {
    for (const Posting& p : index.postings(t)) {
      scores[p.doc] += p.score;
      ++result.sorted_accesses;
    }
  }
  result.docs = SortAndTruncate(std::move(scores), k);
  return result;
}

}  // namespace stburst
