#include "stburst/index/threshold_algorithm.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "stburst/common/logging.h"

namespace stburst {

namespace {

std::vector<TermId> DedupeQuery(const std::vector<TermId>& query) {
  std::vector<TermId> terms = query;
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  return terms;
}

std::vector<ScoredDoc> SortAndTruncate(
    std::unordered_map<DocId, double>&& scores, size_t k) {
  std::vector<ScoredDoc> docs;
  docs.reserve(scores.size());
  for (const auto& [doc, score] : scores) {
    if (score > 0.0) docs.push_back(ScoredDoc{doc, score});
  }
  std::sort(docs.begin(), docs.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  if (docs.size() > k) docs.resize(k);
  return docs;
}

}  // namespace

TopKResult ThresholdTopK(const InvertedIndex& index,
                         const std::vector<TermId>& query, size_t k) {
  TopKResult result;
  result.generation = index.generation();
  if (k == 0) return result;
  std::vector<TermId> terms = DedupeQuery(query);
  if (terms.empty()) return result;

  std::vector<const std::vector<Posting>*> lists;
  lists.reserve(terms.size());
  for (TermId t : terms) lists.push_back(&index.postings(t));

  std::vector<size_t> pos(lists.size(), 0);
  std::unordered_map<DocId, double> candidates;
  size_t expected = 0;
  for (const auto* list : lists) expected += list->size();
  candidates.reserve(std::min(expected, size_t{1} << 16));

  // Bounded min-heap over the current top-k scores: O(log k) per offer with
  // contiguous storage, versus the node-per-score multiset it replaces.
  std::priority_queue<double, std::vector<double>, std::greater<double>> best_k;

  auto offer = [&](double score) {
    if (best_k.size() < k) {
      best_k.push(score);
    } else if (score > best_k.top()) {
      best_k.pop();
      best_k.push(score);
    }
  };

  for (;;) {
    bool advanced = false;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (pos[i] >= lists[i]->size()) continue;
      const Posting& p = (*lists[i])[pos[i]];
      ++pos[i];
      ++result.sorted_accesses;
      advanced = true;
      if (candidates.find(p.doc) != candidates.end()) continue;
      // Complete the document's aggregate with random accesses.
      double total = 0.0;
      for (size_t j = 0; j < lists.size(); ++j) {
        double s = 0.0;
        if (j == i) {
          s = p.score;
        } else {
          ++result.random_accesses;
          if (!index.Score(terms[j], p.doc, &s)) s = 0.0;
        }
        total += s;
      }
      candidates.emplace(p.doc, total);
      offer(total);
    }
    if (!advanced) break;  // every list exhausted: exact result

    // Threshold from the new frontier. Exhausted lists contribute 0 (a doc
    // absent from a list scores 0 there).
    double threshold = 0.0;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (pos[i] < lists[i]->size()) threshold += (*lists[i])[pos[i]].score;
    }
    if (best_k.size() == k && best_k.top() >= threshold) {
      result.early_terminated = true;
      break;
    }
    if (threshold <= 0.0 && best_k.size() == k) {
      result.early_terminated = true;
      break;
    }
  }

  result.docs = SortAndTruncate(std::move(candidates), k);
  return result;
}

TopKResult ShardedThresholdTopK(const std::vector<ShardedTermList>& lists,
                                size_t k, uint64_t generation) {
  TopKResult result;
  result.generation = generation;
  if (k == 0 || lists.empty()) return result;

  static const std::vector<Posting> kNoPostings;
  std::vector<const std::vector<Posting>*> postings;
  postings.reserve(lists.size());
  for (const ShardedTermList& l : lists) {
    postings.push_back(l.index != nullptr ? &l.index->postings(l.term)
                                          : &kNoPostings);
  }

  // Global id of a shard-local posting: O(1) through the ascending doc map.
  const auto to_global = [&](size_t i, DocId local) {
    const ShardedTermList& l = lists[i];
    return (*l.doc_map)[static_cast<size_t>(local - l.local_base)];
  };
  // Shard-local id of a global doc in list j's shard, or false when the
  // document was never routed there (it then carries none of that shard's
  // terms, so it scores 0 for the term — the same 0 the unsharded index
  // reports for a doc with no posting).
  const auto to_local = [&](size_t j, DocId global, DocId* local) {
    const ShardedTermList& l = lists[j];
    if (l.doc_map == nullptr) return false;
    const auto it =
        std::lower_bound(l.doc_map->begin(), l.doc_map->end(), global);
    if (it == l.doc_map->end() || *it != global) return false;
    *local = l.local_base +
             static_cast<DocId>(std::distance(l.doc_map->begin(), it));
    return true;
  };

  std::vector<size_t> pos(lists.size(), 0);
  std::unordered_map<DocId, double> candidates;
  size_t expected = 0;
  for (const auto* list : postings) expected += list->size();
  candidates.reserve(std::min(expected, size_t{1} << 16));

  std::priority_queue<double, std::vector<double>, std::greater<double>> best_k;
  auto offer = [&](double score) {
    if (best_k.size() < k) {
      best_k.push(score);
    } else if (score > best_k.top()) {
      best_k.pop();
      best_k.push(score);
    }
  };

  // The ThresholdTopK loop verbatim, over translated ids. The per-shard
  // frontier scores compose the global threshold by plain summation in list
  // order — the property that lets a distributed coordinator bound global
  // termination from per-shard partial thresholds without ever merging full
  // lists — and summing in list order keeps the floats bit-identical to the
  // unsharded run.
  for (;;) {
    bool advanced = false;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (pos[i] >= postings[i]->size()) continue;
      const Posting& p = (*postings[i])[pos[i]];
      ++pos[i];
      ++result.sorted_accesses;
      advanced = true;
      const DocId global = to_global(i, p.doc);
      if (candidates.find(global) != candidates.end()) continue;
      double total = 0.0;
      for (size_t j = 0; j < lists.size(); ++j) {
        double s = 0.0;
        if (j == i) {
          s = p.score;
        } else {
          ++result.random_accesses;
          DocId local = 0;
          if (!to_local(j, global, &local) || lists[j].index == nullptr ||
              !lists[j].index->Score(lists[j].term, local, &s)) {
            s = 0.0;
          }
        }
        total += s;
      }
      candidates.emplace(global, total);
      offer(total);
    }
    if (!advanced) break;

    double threshold = 0.0;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (pos[i] < postings[i]->size()) {
        threshold += (*postings[i])[pos[i]].score;
      }
    }
    if (best_k.size() == k && best_k.top() >= threshold) {
      result.early_terminated = true;
      break;
    }
    if (threshold <= 0.0 && best_k.size() == k) {
      result.early_terminated = true;
      break;
    }
  }

  result.docs = SortAndTruncate(std::move(candidates), k);
  return result;
}

TopKResult ExhaustiveTopK(const InvertedIndex& index,
                          const std::vector<TermId>& query, size_t k) {
  TopKResult result;
  result.generation = index.generation();
  if (k == 0) return result;
  std::vector<TermId> terms = DedupeQuery(query);
  std::unordered_map<DocId, double> scores;
  size_t expected = 0;
  for (TermId t : terms) expected += index.postings(t).size();
  scores.reserve(std::min(expected, size_t{1} << 16));
  for (TermId t : terms) {
    for (const Posting& p : index.postings(t)) {
      scores[p.doc] += p.score;
      ++result.sorted_accesses;
    }
  }
  result.docs = SortAndTruncate(std::move(scores), k);
  return result;
}

}  // namespace stburst
