// TB — the temporal-burstiness-only baseline engine (paper §6.3, reference
// [14]). "Since this approach disregards the origin of each document, the
// streams from the various countries were merged to a single stream":
// per term, the frequencies of all streams are aggregated into one
// sequence, the non-overlapping bursty temporal intervals are extracted
// (Eq. 1), and each interval becomes a pattern covering every stream. The
// resulting PatternIndex plugs into the same BurstySearchEngine.

#ifndef STBURST_INDEX_TB_ENGINE_H_
#define STBURST_INDEX_TB_ENGINE_H_

#include <vector>

#include "stburst/index/pattern_index.h"
#include "stburst/stream/frequency.h"

namespace stburst {

/// Builds the TB pattern index over the given terms (all terms of the
/// frequency index when `terms` is empty).
PatternIndex BuildTbPatternIndex(const FrequencyIndex& frequencies,
                                 const std::vector<TermId>& terms = {});

}  // namespace stburst

#endif  // STBURST_INDEX_TB_ENGINE_H_
