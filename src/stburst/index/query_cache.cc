#include "stburst/index/query_cache.h"

#include <utility>

#include "stburst/common/logging.h"

namespace stburst {

namespace {
// Boost-style hash combine; good enough for a bounded cache.
inline size_t Combine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}
}  // namespace

size_t QueryResultCache::KeyHash::operator()(const Key& key) const {
  size_t h = Combine(std::hash<uint64_t>{}(key.generation),
                     std::hash<size_t>{}(key.k));
  for (TermId term : key.terms) h = Combine(h, std::hash<TermId>{}(term));
  return h;
}

QueryResultCache::QueryResultCache(size_t max_entries)
    : max_entries_(max_entries) {
  STB_CHECK(max_entries_ > 0) << "QueryResultCache needs a positive capacity";
}

bool QueryResultCache::Lookup(uint64_t generation,
                              const std::vector<TermId>& terms, size_t k,
                              TopKResult* out) {
  Key key{generation, k, terms};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  *out = it->second->result;
  return true;
}

void QueryResultCache::Insert(uint64_t generation,
                              const std::vector<TermId>& terms, size_t k,
                              const TopKResult& result) {
  Key key{generation, k, terms};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Lost a benign insert race: same deterministic payload, just touch.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= max_entries_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Entry{std::move(key), result});
  map_.emplace(lru_.front().key, lru_.begin());
  ++stats_.insertions;
}

QueryCacheStats QueryResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  QueryCacheStats out = stats_;
  out.entries = lru_.size();
  return out;
}

}  // namespace stburst
