#include "stburst/index/search_engine.h"

#include <algorithm>
#include <cmath>

namespace stburst {

double Relevance(double term_frequency) { return std::log(term_frequency + 1.0); }

BurstySearchEngine::BurstySearchEngine(const Collection* collection,
                                       SearchEngineOptions options)
    : collection_(collection), options_(options) {}

BurstySearchEngine BurstySearchEngine::Build(const Collection& collection,
                                             const PatternIndex& patterns,
                                             SearchEngineOptions options) {
  BurstySearchEngine engine(&collection, options);

  std::vector<TermId> distinct;
  for (const Document& doc : collection.documents()) {
    // Distinct terms of the document with their frequencies.
    distinct = doc.tokens;
    std::sort(distinct.begin(), distinct.end());
    for (size_t i = 0; i < distinct.size();) {
      size_t j = i;
      while (j < distinct.size() && distinct[j] == distinct[i]) ++j;
      TermId term = distinct[i];
      double burst_score;
      if (patterns.MaxOverlapScore(term, doc.stream, doc.time, &burst_score)) {
        double entry = Relevance(static_cast<double>(j - i)) * burst_score;
        if (entry > 0.0) engine.index_.Add(term, doc.id, entry);
      }
      i = j;
    }
  }
  engine.index_.Finalize();
  return engine;
}

void ScoreTermDocuments(const Collection& collection,
                        const FrequencyIndex& freq, TermId term,
                        std::span<const TermPattern> patterns,
                        std::vector<Posting>* out) {
  if (patterns.empty()) return;  // no pattern can overlap: no postings
  for (const TermPosting& cell : freq.postings(term)) {
    double burst_score;
    if (!MaxOverlapScore(patterns, cell.stream, cell.time, &burst_score)) {
      continue;
    }
    for (DocId id : collection.DocumentsAt(cell.stream, cell.time)) {
      const Document& doc = collection.document(id);
      size_t count = 0;
      for (TermId token : doc.tokens) count += token == term ? 1 : 0;
      if (count == 0) continue;  // another doc of the cell carries the term
      const double entry =
          Relevance(static_cast<double>(count)) * burst_score;
      if (entry > 0.0) out->push_back(Posting{id, entry});
    }
  }
}

void IndexTermDocuments(const Collection& collection,
                        const FrequencyIndex& freq, TermId term,
                        std::span<const TermPattern> patterns,
                        InvertedIndex* index) {
  std::vector<Posting> scored;
  ScoreTermDocuments(collection, freq, term, patterns, &scored);
  for (const Posting& p : scored) index->Add(term, p.doc, p.score);
}

TopKResult BurstySearchEngine::Search(const std::string& query, size_t k) const {
  return Search(tokenizer_.TokenizeFrozen(query, collection_->vocabulary()), k);
}

TopKResult BurstySearchEngine::Search(const std::vector<TermId>& query,
                                      size_t k) const {
  if (options_.use_threshold_algorithm) {
    return ThresholdTopK(index_, query, k);
  }
  return ExhaustiveTopK(index_, query, k);
}

}  // namespace stburst
