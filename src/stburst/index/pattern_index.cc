#include "stburst/index/pattern_index.h"

namespace stburst {

const std::vector<TermPattern> PatternIndex::kEmpty;

void PatternIndex::Add(TermId term, TermPattern pattern) {
  if (term >= patterns_.size()) patterns_.resize(term + 1);
  std::sort(pattern.streams.begin(), pattern.streams.end());
  if (patterns_[term].empty()) ++non_empty_terms_;
  patterns_[term].push_back(std::move(pattern));
  ++total_patterns_;
}

void PatternIndex::AddCombinatorial(TermId term,
                                    const CombinatorialPattern& pattern) {
  Add(term, TermPattern{pattern.streams, pattern.timeframe, pattern.score});
}

void PatternIndex::AddWindow(TermId term, const SpatiotemporalWindow& window) {
  Add(term, TermPattern{window.streams, window.timeframe, window.score});
}

const std::vector<TermPattern>& PatternIndex::PatternsFor(TermId term) const {
  if (term >= patterns_.size()) return kEmpty;
  return patterns_[term];
}

bool MaxOverlapScore(std::span<const TermPattern> patterns, StreamId stream,
                     Timestamp time, double* score) {
  bool any = false;
  double best = 0.0;
  for (const TermPattern& p : patterns) {
    if (!p.Overlaps(stream, time)) continue;
    if (!any || p.score > best) best = p.score;
    any = true;
  }
  if (any) *score = best;
  return any;
}

bool PatternIndex::MaxOverlapScore(TermId term, StreamId stream, Timestamp time,
                                   double* score) const {
  return stburst::MaxOverlapScore(PatternsFor(term), stream, time, score);
}

}  // namespace stburst
