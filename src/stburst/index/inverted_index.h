// Score-sorted inverted index (paper §5): term -> documents ranked by their
// per-term score, supporting both the sorted access the Threshold Algorithm
// scans and the random access it probes.

#ifndef STBURST_INDEX_INVERTED_INDEX_H_
#define STBURST_INDEX_INVERTED_INDEX_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "stburst/stream/types.h"

namespace stburst {

/// One entry of a term's posting list.
struct Posting {
  DocId doc = kInvalidDoc;
  double score = 0.0;
};

/// Append-then-freeze inverted index with incremental re-freeze. Add() all
/// postings, Finalize() once, then query; per-term posting lists are sorted
/// by descending score. On a live feed, Reopen() lets new postings in after
/// a freeze: the next Finalize() re-sorts only the terms touched since the
/// last one, and generation() tells consumers holding cached query results
/// (e.g. Threshold-Algorithm top-k lists) that they are stale.
///
/// Thread-safety: queries on a finalized index are const and safe from any
/// number of threads; Add/Reopen/Finalize are writers and must be
/// externally serialized against them.
class InvertedIndex {
 public:
  /// Records that `doc` scores `score` for `term`. Must precede Finalize()
  /// (or follow a Reopen()). Each (term, doc) pair must be added at most
  /// once per lifetime of the term's postings — to change a frozen term's
  /// scores, ClearTerm() it and re-Add (re-adding a still-listed pair keeps
  /// the first-frozen score in the random-access map). Amortized O(1).
  void Add(TermId term, DocId doc, double score);

  /// Sorts posting lists and builds the random-access maps. Idempotent.
  /// The first call sorts everything; after a Reopen() only terms with new
  /// postings are re-sorted and re-mapped (O(Σ |postings| of dirty terms)).
  /// Each state-changing call bumps generation().
  void Finalize();

  /// Re-opens a finalized index so Add() is legal again. Queries are
  /// rejected until the next Finalize(). No-op when already open.
  void Reopen();

  /// Reverts a Reopen() that made no edits: re-freezes without bumping
  /// generation(), so consumers holding cached query results keep them —
  /// the index is exactly what they cached. The caller guarantees nothing
  /// was Added/Cleared/Evicted since the Reopen(); a transactional owner
  /// (FeedRuntime) uses this when a tick fails after Reopen() but before
  /// its first index edit. Checked error if edits are pending or the index
  /// was never finalized.
  void AbortReopen();

  /// Eviction-aware edit: removes every posting whose doc precedes
  /// `min_live_doc` — the in-place follow-up to a prefix eviction
  /// (Collection::EvictBefore with EvictionReport::ids_preserved, where
  /// surviving documents keep their ids). Erasure preserves each term's
  /// score order, so nothing is re-sorted, and the evicted docs are known
  /// exactly, so the random-access maps pay O(evicted) targeted erases —
  /// no per-term rebuild. Requires the index to be open (Reopen() first);
  /// the next Finalize() bumps generation() for the whole edit batch,
  /// exactly as an append-only refreeze would, so cached query results are
  /// invalidated the same way. O(total postings) scan + O(evicted) map
  /// erases — no collection re-scan, no re-scoring (bench:
  /// inverted_reopen_evict).
  void EvictBefore(DocId min_live_doc);

  /// Drops all postings of `term` (marking it dirty for the next
  /// Finalize()) so a consumer can re-derive them from fresh pattern state
  /// — the per-term replacement path FeedRuntime's search serving takes
  /// when a term is re-mined. Requires the index to be open. O(postings of
  /// the term).
  void ClearTerm(TermId term);

  /// ClearTerm + bulk re-Add in one move: replaces `term`'s postings with
  /// `postings` (scores need not be sorted — the next Finalize() sorts) and
  /// marks the term dirty. The move-in makes this the no-allocation commit
  /// step for staged per-term updates (FeedRuntime stages scored postings
  /// off to the side, then commits each term with one ReplaceTerm).
  /// Requires the index to be open. O(postings of the term).
  void ReplaceTerm(TermId term, std::vector<Posting> postings);

  /// Monotone freeze counter, bumped by every completing Finalize().
  /// Consumers cache it alongside derived results (top-k lists, pattern
  /// joins) and recompute when it moved.
  uint64_t generation() const { return generation_; }

  /// Sorted postings of a term (empty if none). Requires Finalize().
  const std::vector<Posting>& postings(TermId term) const;

  /// Random access: the score of `doc` for `term`; false if absent.
  /// Requires Finalize().
  bool Score(TermId term, DocId doc, double* score) const;

  size_t num_terms() const { return postings_.size(); }
  size_t total_postings() const { return total_postings_; }
  bool finalized() const { return finalized_; }

 private:
  bool finalized_ = false;
  bool ever_finalized_ = false;
  uint64_t generation_ = 0;
  size_t total_postings_ = 0;
  std::vector<std::vector<Posting>> postings_;  // indexed by TermId
  std::vector<std::unordered_map<DocId, double>> lookup_;
  std::vector<TermId> dirty_;  // terms Add()ed since the last Finalize()
  static const std::vector<Posting> kEmpty;
};

}  // namespace stburst

#endif  // STBURST_INDEX_INVERTED_INDEX_H_
