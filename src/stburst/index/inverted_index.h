// Score-sorted inverted index (paper §5): term -> documents ranked by their
// per-term score, supporting both the sorted access the Threshold Algorithm
// scans and the random access it probes.

#ifndef STBURST_INDEX_INVERTED_INDEX_H_
#define STBURST_INDEX_INVERTED_INDEX_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "stburst/stream/types.h"

namespace stburst {

/// One entry of a term's posting list.
struct Posting {
  DocId doc = kInvalidDoc;
  double score = 0.0;
};

/// Append-then-freeze inverted index. Add() all postings, Finalize() once,
/// then query. Per-term posting lists are sorted by descending score.
class InvertedIndex {
 public:
  /// Records that `doc` scores `score` for `term`. Must precede Finalize().
  void Add(TermId term, DocId doc, double score);

  /// Sorts posting lists and builds the random-access maps. Idempotent.
  void Finalize();

  /// Sorted postings of a term (empty if none). Requires Finalize().
  const std::vector<Posting>& postings(TermId term) const;

  /// Random access: the score of `doc` for `term`; false if absent.
  /// Requires Finalize().
  bool Score(TermId term, DocId doc, double* score) const;

  size_t num_terms() const { return postings_.size(); }
  size_t total_postings() const { return total_postings_; }
  bool finalized() const { return finalized_; }

 private:
  bool finalized_ = false;
  size_t total_postings_ = 0;
  std::vector<std::vector<Posting>> postings_;  // indexed by TermId
  std::vector<std::unordered_map<DocId, double>> lookup_;
  static const std::vector<Posting> kEmpty;
};

}  // namespace stburst

#endif  // STBURST_INDEX_INVERTED_INDEX_H_
