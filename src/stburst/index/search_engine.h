// The bursty-document search engine (paper §5).
//
// score(q, d) = sum over query terms t of relevance(d,t) * burstiness(d,t),
// with relevance(d,t) = log(freq(t,d) + 1) (the paper's best-performing
// choice) and burstiness(d,t) = the maximum score among the term's mined
// patterns that the document overlaps (ditto). Documents overlapping no
// pattern for a term contribute nothing for that term (the paper's -inf
// convention, applied per term so multi-term queries degrade gracefully).
//
// The engine is pattern-type agnostic: build it with STComb patterns for a
// combinatorial instance, STLocal windows for a regional instance, or
// temporal-only intervals for the TB baseline (tb_engine.h).

#ifndef STBURST_INDEX_SEARCH_ENGINE_H_
#define STBURST_INDEX_SEARCH_ENGINE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "stburst/index/inverted_index.h"
#include "stburst/index/pattern_index.h"
#include "stburst/index/threshold_algorithm.h"
#include "stburst/stream/collection.h"
#include "stburst/stream/frequency.h"
#include "stburst/stream/tokenizer.h"

namespace stburst {

struct SearchEngineOptions {
  /// Use the Threshold Algorithm; otherwise exhaustively merge postings
  /// (for differential testing and small corpora).
  bool use_threshold_algorithm = true;
};

/// Immutable once built. Holds a score-sorted inverted index whose per-term
/// entries are relevance * burstiness products, so top-k retrieval is a TA
/// run away.
class BurstySearchEngine {
 public:
  /// Indexes every document of `collection` against `patterns`. Documents
  /// that overlap no pattern for a term get no posting for that term.
  static BurstySearchEngine Build(const Collection& collection,
                                  const PatternIndex& patterns,
                                  SearchEngineOptions options = {});

  /// Top-k for a raw query string (tokenized against the collection's
  /// frozen vocabulary; unknown words are dropped).
  TopKResult Search(const std::string& query, size_t k) const;

  /// Top-k for pre-resolved term ids.
  TopKResult Search(const std::vector<TermId>& query, size_t k) const;

  const InvertedIndex& index() const { return index_; }

 private:
  BurstySearchEngine(const Collection* collection, SearchEngineOptions options);

  const Collection* collection_;  // not owned; must outlive the engine
  SearchEngineOptions options_;
  Tokenizer tokenizer_;
  InvertedIndex index_;
};

/// relevance(d, t) of Eq. 10 for a raw term frequency.
double Relevance(double term_frequency);

/// Recomputes the search postings of one term, term-major: every retained
/// document containing `term` — found through the frequency index's sparse
/// postings and the collection's per-(stream, timestamp) document lists —
/// is scored relevance × max pattern overlap, and positive entries are
/// Add()ed to `index`. The index must be open and hold no postings for the
/// term (ClearTerm first when replacing). This is the incremental path a
/// live maintainer (FeedRuntime's search serving) takes when a term's
/// patterns change: postings produced this way are identical to the ones
/// BurstySearchEngine::Build derives doc-major from the same pattern state
/// (tested). `freq` must be in sync with `collection` (same windowed feed).
/// O(Σ docs at the term's nonzero cells × tokens per doc).
void IndexTermDocuments(const Collection& collection,
                        const FrequencyIndex& freq, TermId term,
                        std::span<const TermPattern> patterns,
                        InvertedIndex* index);

/// The scoring half of IndexTermDocuments, decoupled from the index: appends
/// the term's positive (doc, score) entries to `out` in the same order
/// IndexTermDocuments would Add() them. A transactional maintainer
/// (FeedRuntime) scores every touched term into staging vectors first and
/// commits each with one InvertedIndex::ReplaceTerm only after the whole
/// tick succeeded. Same sync requirements as IndexTermDocuments.
void ScoreTermDocuments(const Collection& collection,
                        const FrequencyIndex& freq, TermId term,
                        std::span<const TermPattern> patterns,
                        std::vector<Posting>* out);

}  // namespace stburst

#endif  // STBURST_INDEX_SEARCH_ENGINE_H_
