// Bounded LRU cache for top-k query results, keyed on
// (index generation, query terms, k).
//
// The generation in the key is the whole invalidation story: a tick that
// publishes a new snapshot bumps the generation, so every entry cached
// against the old one becomes unreachable — no flush, no epoch scan — and
// ages out of the LRU as fresh-generation entries displace it. k is part
// of the key too: a top-5 result is not a prefix oracle for top-10 (TA
// early-terminates at different depths), so a k mismatch is a miss, never
// a truncated hit.
//
// Thread-safety: Lookup/Insert/stats take one internal mutex, shared by
// readers only — the tick path never touches the cache, so a slow tick
// cannot block a cached query (and an uncached runtime skips this class
// entirely; see FeedRuntimeOptions::search_cache_entries).

#ifndef STBURST_INDEX_QUERY_CACHE_H_
#define STBURST_INDEX_QUERY_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "stburst/index/threshold_algorithm.h"
#include "stburst/stream/types.h"

namespace stburst {

/// Counters for cache observability; `entries` is the current size, the
/// rest are monotone since construction.
struct QueryCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t insertions = 0;
  size_t evictions = 0;
  size_t entries = 0;
};

class QueryResultCache {
 public:
  /// `max_entries` must be positive; the cache never grows past it (the
  /// least recently used entry is evicted to make room).
  explicit QueryResultCache(size_t max_entries);

  QueryResultCache(const QueryResultCache&) = delete;
  QueryResultCache& operator=(const QueryResultCache&) = delete;

  /// True (and `*out` filled) iff an entry for exactly this
  /// (generation, terms, k) exists; refreshes its LRU position.
  bool Lookup(uint64_t generation, const std::vector<TermId>& terms, size_t k,
              TopKResult* out);

  /// Caches `result` under (generation, terms, k), evicting the LRU tail
  /// if full. Two readers racing the same miss may both Insert; the
  /// second simply refreshes the entry (results are deterministic, so the
  /// payloads are identical).
  void Insert(uint64_t generation, const std::vector<TermId>& terms, size_t k,
              const TopKResult& result);

  QueryCacheStats stats() const;

 private:
  struct Key {
    uint64_t generation = 0;
    size_t k = 0;
    std::vector<TermId> terms;

    friend bool operator==(const Key& a, const Key& b) {
      return a.generation == b.generation && a.k == b.k && a.terms == b.terms;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };
  struct Entry {
    Key key;
    TopKResult result;
  };

  mutable std::mutex mu_;
  const size_t max_entries_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_;
  QueryCacheStats stats_;
};

}  // namespace stburst

#endif  // STBURST_INDEX_QUERY_CACHE_H_
