// Term interning: bidirectional string <-> TermId mapping.

#ifndef STBURST_STREAM_VOCABULARY_H_
#define STBURST_STREAM_VOCABULARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "stburst/stream/types.h"

namespace stburst {

/// Dense term dictionary. Ids are assigned in first-seen order and are
/// stable for the lifetime of the vocabulary.
class Vocabulary {
 public:
  /// Returns the id for `term`, interning it if new.
  TermId Intern(std::string_view term);

  /// Returns the id for `term`, or kInvalidTerm if it was never interned.
  TermId Lookup(std::string_view term) const;

  /// Returns the string for an id. Requires a valid id.
  const std::string& TermOf(TermId id) const;

  /// Number of distinct terms.
  size_t size() const { return terms_.size(); }

 private:
  std::unordered_map<std::string, TermId> ids_;
  std::vector<std::string> terms_;
};

}  // namespace stburst

#endif  // STBURST_STREAM_VOCABULARY_H_
