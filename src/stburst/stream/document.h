// The document record: a bag of interned terms arriving from one stream at
// one timestamp (paper §2: Dx[i] is the set of documents reported from
// stream Dx at timestamp i).

#ifndef STBURST_STREAM_DOCUMENT_H_
#define STBURST_STREAM_DOCUMENT_H_

#include <vector>

#include "stburst/stream/types.h"

namespace stburst {

/// A geo- and time-stamped document. Terms are kept as a flat token list
/// (duplicates encode term frequency).
struct Document {
  DocId id = kInvalidDoc;
  StreamId stream = kInvalidStream;
  Timestamp time = 0;
  std::vector<TermId> tokens;

  /// Provenance: id of the injected event that emitted this document, or
  /// kNoEvent for background text. Used only by the evaluation harness (the
  /// simulated annotator); the mining algorithms never read it.
  int32_t event_id = kNoEvent;

  /// Number of occurrences of `t` in this document (freq(t, d), Eq. 6).
  int64_t TermFrequency(TermId t) const {
    int64_t c = 0;
    for (TermId tok : tokens) {
      if (tok == t) ++c;
    }
    return c;
  }
};

}  // namespace stburst

#endif  // STBURST_STREAM_DOCUMENT_H_
