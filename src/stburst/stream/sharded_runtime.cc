#include "stburst/stream/sharded_runtime.h"

#include <algorithm>
#include <new>
#include <optional>
#include <utility>

#include "stburst/common/fault_injection.h"
#include "stburst/common/logging.h"
#include "stburst/common/string_util.h"
#include "stburst/common/timer.h"

namespace stburst {

namespace {

// The coordinator's single fault gate: after every shard staged cleanly,
// before the first shard commits — the last point where one failure can
// still roll the WHOLE sharded tick back. The enclosing try/catch mirrors
// FeedRuntime's tick-phase exception mapping so an armed kBadAlloc here
// surfaces the same Status an in-shard allocation failure would.
Status ShardedCommitGate() {
  STBURST_FAULT_POINT("sharded.commit");
  return Status::OK();
}

Status GuardedShardedCommitGate() {
  try {
    return ShardedCommitGate();
  } catch (const std::bad_alloc&) {
    return Status::Internal("allocation failure during tick");
  }
#ifdef STBURST_FAULT_INJECTION
  catch (const fault::FaultInjected& e) {
    return Status::Internal(e.what());
  }
#endif
}

}  // namespace

ShardedRuntime::ShardedRuntime(ShardedRuntimeOptions options)
    : options_(std::move(options)), map_(options_.num_shards) {
  const size_t threads = ResolveThreadCount(options_.runtime.num_threads);
  // One pool for the whole fleet: the coordinator fans per-shard phases
  // across it and every shard fans its per-term work across the same pool
  // (safe: ParallelFor's completion wait is a helping wait). K private
  // pools would oversubscribe the machine K times.
  // The per-shard FeedRuntimes borrow this pool, so the fleet-wide
  // pin_threads knob is honored here, at the one place workers are spawned.
  if (threads > 1) {
    pool_ = std::make_unique<ThreadPool>(
        ThreadPoolOptions{threads - 1, options_.runtime.pin_threads});
  }
}

StatusOr<ShardedRuntime> ShardedRuntime::Create(Collection collection,
                                                ShardedRuntimeOptions options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  // Mirror FeedRuntime::Create's own option validation up front, so a
  // misconfiguration never mutates the input collection.
  if (options.runtime.retention_window < 0) {
    return Status::InvalidArgument("retention window must be non-negative");
  }
  if (options.runtime.search_cache_entries > 0 &&
      options.runtime.search_serving == SearchServing::kNone) {
    return Status::InvalidArgument(
        "search_cache_entries requires search_serving");
  }
  if (options.runtime.history_mode != HistoryMode::kOff &&
      options.runtime.history_bucket_width <= 0) {
    return Status::InvalidArgument(
        "history_bucket_width must be positive when history is on");
  }
  if (options.runtime.history_mode == HistoryMode::kMmap &&
      options.runtime.history_path.empty()) {
    return Status::InvalidArgument(
        "history_mode = kMmap requires history_path");
  }
  // The global ↔ shard-local DocId translation leans on evictions being
  // id-preserving in every shard AND in the global numbering, which is the
  // time-ordered (Append-driven) fast path. Out-of-order historical ingest
  // would renumber survivors differently per shard — refuse it up front.
  {
    Timestamp prev = 0;
    bool first = true;
    for (const Document& doc : collection.documents()) {
      if (!first && doc.time < prev) {
        return Status::InvalidArgument(
            "sharded runtime requires documents in nondecreasing time order "
            "(evictions must preserve DocIds)");
      }
      prev = doc.time;
      first = false;
    }
  }

  // Apply retention to the history before splitting, exactly where the
  // unsharded Create applies it, so every shard is built over the retained
  // window only.
  const Timestamp window = options.runtime.retention_window;
  if (window > 0 && collection.timeline_length() > window) {
    STB_RETURN_NOT_OK(
        collection.EvictBefore(collection.timeline_length() - window));
  }

  ShardedRuntime runtime(std::move(options));
  const size_t num_shards = runtime.map_.num_shards();
  runtime.vocab_ = collection.vocabulary();
  runtime.num_streams_ = collection.num_streams();
  runtime.window_start_ = collection.window_start();
  runtime.doc_id_base_ = collection.doc_id_base();
  runtime.next_global_doc_ =
      collection.doc_id_base() + static_cast<DocId>(collection.num_documents());

  // The eviction ledger: accepted documents per retained timestamp, so the
  // coordinator can advance doc_id_base_ in lockstep with the shards'
  // evictions without holding a global collection.
  runtime.docs_per_timestamp_.assign(
      static_cast<size_t>(collection.timeline_length() -
                          runtime.window_start_),
      0);
  for (const Document& doc : collection.documents()) {
    ++runtime.docs_per_timestamp_[static_cast<size_t>(doc.time -
                                                      runtime.window_start_)];
  }

  // Split the retained history: every shard gets the full stream table and
  // the full vocabulary (interned in id order, so TermIds align globally —
  // unowned terms simply never receive postings and are skipped by the
  // miner exactly like any zero-mass term), and exactly the documents that
  // carry at least one of its terms, tokens filtered to the owned subset.
  std::vector<Collection> shard_collections;
  shard_collections.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    STB_ASSIGN_OR_RETURN(Collection shard_collection,
                         Collection::Create(collection.timeline_length()));
    for (const StreamInfo& info : collection.streams()) {
      shard_collection.AddStream(info.name, info.geo, info.position);
    }
    Vocabulary* vocab = shard_collection.mutable_vocabulary();
    for (TermId t = 0; t < runtime.vocab_.size(); ++t) {
      vocab->Intern(runtime.vocab_.TermOf(t));
    }
    shard_collections.push_back(std::move(shard_collection));
  }

  runtime.doc_maps_.assign(num_shards, {});
  {
    std::vector<char> hit(num_shards, 0);
    std::vector<std::vector<TermId>> owned(num_shards);
    std::vector<size_t> touched;
    for (size_t i = 0; i < collection.documents().size(); ++i) {
      const Document& doc = collection.documents()[i];
      const DocId global = collection.doc_id_base() + static_cast<DocId>(i);
      touched.clear();
      for (TermId token : doc.tokens) {
        const size_t s = runtime.map_.shard_of(token);
        if (!hit[s]) {
          hit[s] = 1;
          owned[s].clear();
          touched.push_back(s);
        }
        owned[s].push_back(token);
      }
      for (size_t s : touched) {
        hit[s] = 0;
        STB_RETURN_NOT_OK(shard_collections[s]
                              .AddDocument(doc.stream, doc.time, owned[s],
                                           doc.event_id)
                              .status());
        runtime.doc_maps_[s].push_back(global);
      }
    }
  }

  // Per-shard runtime options: one borrowed pool, no per-shard query cache
  // (the coordinator caches composed results; per-shard caches would never
  // be hit — shards are queried through the scatter-gather path only).
  FeedRuntimeOptions shard_options = runtime.options_.runtime;
  shard_options.shared_pool = runtime.pool_.get();
  if (runtime.pool_ == nullptr) shard_options.num_threads = 1;
  shard_options.search_cache_entries = 0;

  runtime.shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    // Each shard folds its own terms into its own tier file: terms are
    // disjoint across shards and ticks are lockstep, so per-term tier rows
    // are bit-identical to the unsharded tier at any K (proven by the
    // sharded parity suite).
    if (shard_options.history_mode == HistoryMode::kMmap) {
      shard_options.history_path =
          runtime.options_.runtime.history_path + ".shard" +
          std::to_string(s);
    }
    STB_ASSIGN_OR_RETURN(
        FeedRuntime shard,
        FeedRuntime::Create(std::move(shard_collections[s]), shard_options));
    runtime.shards_.push_back(std::make_unique<FeedRuntime>(std::move(shard)));
  }

  if (runtime.options_.runtime.search_serving != SearchServing::kNone) {
    runtime.PublishView();
    if (runtime.options_.runtime.search_cache_entries > 0) {
      runtime.search_cache_ = std::make_unique<QueryResultCache>(
          runtime.options_.runtime.search_cache_entries);
    }
  }
  return runtime;
}

void ShardedRuntime::SyncVocabularies() {
  for (const std::unique_ptr<FeedRuntime>& shard : shards_) {
    Vocabulary* vocab = shard->mutable_vocabulary();
    for (TermId t = static_cast<TermId>(vocab->size()); t < vocab_.size();
         ++t) {
      vocab->Intern(vocab_.TermOf(t));
    }
  }
}

void ShardedRuntime::PublishView() {
  auto view = std::make_shared<ShardedSearchView>();
  const size_t num_shards = shards_.size();
  view->shards.resize(num_shards);
  view->doc_maps.resize(num_shards);
  view->local_bases.resize(num_shards);
  uint64_t generation = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    view->shards[s] = shards_[s]->search_snapshot();
    generation += view->shards[s]->generation;
    // Copy-on-write: the published map must stay frozen while readers hold
    // the view, so each publication snapshots the coordinator's live map.
    view->doc_maps[s] = std::make_shared<const std::vector<DocId>>(
        doc_maps_[s]);
    view->local_bases[s] = shards_[s]->collection().doc_id_base();
  }
  view->generation = generation;
  view_.Publish(std::move(view));
}

StatusOr<FeedTickStats> ShardedRuntime::Tick(Snapshot snapshot) {
  if (wedged_) {
    return Status::FailedPrecondition(
        "sharded runtime wedged by a partial cross-shard commit; rebuild via "
        "Create");
  }
  Timer timer;
  FeedTickStats stats;
  const size_t num_shards = shards_.size();

  // New terms the caller interned since the last tick reach every shard
  // before validation, keeping all vocabularies (and the dense TermId
  // space) aligned. Like unsharded interning, this survives a failed tick —
  // interned-but-unseen terms carry no state.
  SyncVocabularies();

  // Validate ONCE, globally: the policy (reject vs quarantine) applies to
  // the snapshot as a whole, and the per-shard sub-snapshots below are
  // valid by construction.
  STB_RETURN_NOT_OK(ValidateSnapshotDocuments(
      num_streams_, vocab_.size(), options_.runtime.on_invalid, &snapshot,
      &stats.rejected_documents));
  stats.documents = snapshot.size();

  std::vector<Snapshot> parts;
  std::vector<std::vector<size_t>> routed;
  map_.SplitSnapshot(snapshot, &parts, &routed);

  // Phase 1: fan PrepareTickIngest across the pool. Each shard appends its
  // sub-snapshot (empty ones still advance the shard timeline — the
  // lockstep invariant), evicts in lockstep, and stages its dirty re-mine.
  // PrepareTickIngest maps its own exceptions and rolls itself back on
  // failure, so the fan-out body never throws for shard-internal reasons.
  std::vector<std::optional<StatusOr<FeedRuntime::TickTransaction>>> prepared(
      num_shards);
  ParallelFor(pool_.get(), 0, num_shards, [&](size_t, size_t s) {
    prepared[s].emplace(shards_[s]->PrepareTickIngest(std::move(parts[s])));
  });
  Status failure = Status::OK();
  for (size_t s = 0; s < num_shards; ++s) {
    if (!prepared[s]->ok()) {
      failure = prepared[s]->status();
      break;
    }
  }
  if (!failure.ok()) {
    for (size_t s = 0; s < num_shards; ++s) {
      if (prepared[s]->ok()) {
        shards_[s]->AbortTick(std::move(prepared[s]->value()));
      }
    }
    return failure;
  }
  std::vector<FeedRuntime::TickTransaction> txs;
  txs.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    txs.push_back(std::move(prepared[s]->value()));
  }

  // Phase 2: ONE global refresh selection. Candidate sets are disjoint
  // across shards (an unowned term has no mass), priorities are identical
  // to the unsharded runtime's, and SelectRefreshTargets is the same
  // deterministic rule — so the sweep refreshes exactly the terms the
  // unsharded runtime would, whatever K is.
  std::vector<std::vector<TermId>> targets(num_shards);
  if (options_.runtime.refresh_budget > 0) {
    std::vector<RefreshCandidate> merged;
    for (size_t s = 0; s < num_shards; ++s) {
      std::vector<RefreshCandidate> candidates =
          shards_[s]->RefreshCandidates(txs[s]);
      merged.insert(merged.end(), candidates.begin(), candidates.end());
    }
    for (TermId t : FeedRuntime::SelectRefreshTargets(
             std::move(merged), options_.runtime.refresh_budget)) {
      targets[map_.shard_of(t)].push_back(t);
    }
  }

  // Phase 3: fan StageTickDerived. Everything is staged, nothing published.
  std::vector<Status> staged(num_shards, Status::OK());
  ParallelFor(pool_.get(), 0, num_shards, [&](size_t, size_t s) {
    staged[s] = shards_[s]->StageTickDerived(&txs[s], std::move(targets[s]));
  });
  for (size_t s = 0; s < num_shards; ++s) {
    if (!staged[s].ok()) {
      failure = staged[s];
      break;
    }
  }
  if (!failure.ok()) {
    for (size_t s = 0; s < num_shards; ++s) {
      shards_[s]->AbortTick(std::move(txs[s]));
    }
    return failure;
  }

  // The cross-shard atomicity gate: a failure here (fault-injected in the
  // sweep) aborts every shard — one shard's rollback rolls the whole
  // sharded tick, proving the all-or-nothing contract.
  failure = GuardedShardedCommitGate();
  if (!failure.ok()) {
    for (size_t s = 0; s < num_shards; ++s) {
      shards_[s]->AbortTick(std::move(txs[s]));
    }
    return failure;
  }

  // Phase 4: commit serially. Shard 0's clean failure can still roll the
  // whole tick back (nothing committed yet); any later failure — or a
  // shard wedging inside its own commit tail — leaves shards divergent,
  // which wedges the coordinator exactly like a FeedRuntime commit-tail
  // failure wedges it.
  std::vector<FeedTickStats> shard_stats(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    StatusOr<FeedTickStats> committed =
        shards_[s]->CommitTick(std::move(txs[s]));
    if (!committed.ok()) {
      for (size_t j = s + 1; j < num_shards; ++j) {
        shards_[j]->AbortTick(std::move(txs[j]));
      }
      if (s == 0 && !shards_[0]->wedged()) return committed.status();
      wedged_ = true;
      const Status& cause = committed.status();
      return Status::Internal(StringPrintf(
          "sharded commit failed at shard %zu (%.*s); runtime wedged — "
          "rebuild via Create",
          s, static_cast<int>(cause.message().size()),
          cause.message().data()));
    }
    shard_stats[s] = std::move(committed).value();
  }

  // Post-commit coordinator bookkeeping: global ids for this tick's
  // accepted documents (token-less ones consume an id but live in no
  // shard, exactly as one global Collection would number them), then the
  // eviction ledger and the per-shard doc maps.
  for (size_t s = 0; s < num_shards; ++s) {
    for (size_t pos : routed[s]) {
      doc_maps_[s].push_back(next_global_doc_ + static_cast<DocId>(pos));
    }
  }
  next_global_doc_ += static_cast<DocId>(stats.documents);
  docs_per_timestamp_.push_back(stats.documents);
  const Timestamp new_window_start = shards_[0]->window_start();
  while (window_start_ < new_window_start) {
    doc_id_base_ += static_cast<DocId>(docs_per_timestamp_.front());
    docs_per_timestamp_.pop_front();
    ++window_start_;
  }
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t live = shards_[s]->collection().num_documents();
    STB_DCHECK(doc_maps_[s].size() >= live);
    doc_maps_[s].erase(doc_maps_[s].begin(),
                       doc_maps_[s].end() - static_cast<ptrdiff_t>(live));
  }

  stats.time = shard_stats[0].time;
  stats.evicted = shard_stats[0].evicted;
  for (size_t s = 0; s < num_shards; ++s) {
    stats.dirty_terms += shard_stats[s].dirty_terms;
    stats.refreshed_terms += shard_stats[s].refreshed_terms;
    stats.search_terms += shard_stats[s].search_terms;
    // Shards own disjoint term sets, so the fold counts sum exactly like
    // the other per-term stats.
    stats.folded_terms += shard_stats[s].folded_terms;
    stats.degraded = stats.degraded || shard_stats[s].degraded;
  }

  if (options_.runtime.search_serving != SearchServing::kNone) PublishView();

  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

const TermPatterns& ShardedRuntime::patterns(TermId term) const {
  return shard_for(term).patterns(term);
}

Timestamp ShardedRuntime::staleness(TermId term) const {
  return shard_for(term).staleness(term);
}

Timestamp ShardedRuntime::timeline_length() const {
  return shards_[0]->collection().timeline_length();
}

Timestamp ShardedRuntime::window_start() const {
  return shards_[0]->window_start();
}

TopKResult ShardedRuntime::Search(const std::string& query, size_t k) const {
  return Search(tokenizer_.TokenizeFrozen(query, vocab_), k);
}

TopKResult ShardedRuntime::Search(const std::vector<TermId>& query,
                                  size_t k) const {
  STB_CHECK(options_.runtime.search_serving != SearchServing::kNone)
      << "Search requires ShardedRuntimeOptions::runtime.search_serving";
  const std::shared_ptr<const ShardedSearchView> view = view_.Load();
  const auto compute = [&] {
    // Dedupe exactly like ThresholdTopK, then route each term to its
    // owning shard's published snapshot. Scatter-gather with per-posting
    // translation; results carry global DocIds.
    std::vector<TermId> terms = query;
    std::sort(terms.begin(), terms.end());
    terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
    std::vector<ShardedTermList> lists;
    lists.reserve(terms.size());
    for (TermId t : terms) {
      const size_t s = map_.shard_of(t);
      lists.push_back(ShardedTermList{t, &view->shards[s]->index,
                                      view->doc_maps[s].get(),
                                      view->local_bases[s]});
    }
    return ShardedThresholdTopK(lists, k, view->generation);
  };
  if (search_cache_ != nullptr) {
    TopKResult cached;
    if (search_cache_->Lookup(view->generation, query, k, &cached)) {
      return cached;
    }
    TopKResult fresh = compute();
    search_cache_->Insert(view->generation, query, k, fresh);
    return fresh;
  }
  return compute();
}

QueryCacheStats ShardedRuntime::search_cache_stats() const {
  return search_cache_ != nullptr ? search_cache_->stats() : QueryCacheStats{};
}

}  // namespace stburst
