// ShardedRuntime — K vocabulary shards behind one FeedRuntime-shaped API.
//
// One FeedRuntime owning the whole vocabulary is the last single-owner
// bottleneck of the live path: every tick's re-mine, splice, and search
// re-scoring funnels through one runtime's state. ShardedRuntime splits the
// WRITE path by vocabulary — K independent FeedRuntime shards, terms
// assigned by hash(term) % K (ShardMap), each incoming snapshot split so a
// shard sees exactly the documents that carry its terms (tokens filtered to
// the owned subset) — and composes the READ path by scatter-gather: search
// runs the threshold algorithm across the shards' published snapshots with
// per-posting id translation, merging per-shard frontiers into the global
// termination threshold (index/threshold_algorithm.h,
// ShardedThresholdTopK).
//
// The invariant everything here is built around, enforced by tests at every
// K: a ShardedRuntime is BIT-IDENTICAL to the unsharded FeedRuntime fed the
// same snapshots — tick stats, standing patterns (patterns(t) routes to the
// owning shard), and search results including access counts. Why it holds:
//  - term disjointness: a term's postings, dirty transitions, and mined
//    patterns live wholly in its owning shard, and per-term mining reads
//    nothing but that term's windowed series + fixed stream geometry;
//  - lockstep timelines: every shard appends every snapshot (possibly
//    empty — an empty Append still extends the timeline), so window
//    arithmetic, staleness, and burstiness normalization agree everywhere;
//  - global refresh selection: the coordinator gathers every shard's
//    refresh candidates and runs the one global SelectRefreshTargets the
//    unsharded runtime would run, so sharding never changes which quiet
//    terms the sweep touches;
//  - monotone id translation: shard-local DocIds map to global ids through
//    an ascending per-shard doc map, so score-sorted postings translate
//    element-for-element and the TA run is access-for-access identical.
//
// Ticks are transactional across shards: the coordinator fans
// PrepareTickIngest / StageTickDerived across the standing pool (nested
// fan-out rides ParallelFor's helping wait), and any shard's failure aborts
// every shard's transaction — one shard's rollback rolls the whole sharded
// tick (fault-injected at "sharded.commit"). Commits run serially; a
// failure after the first shard committed cannot be rolled back and wedges
// the coordinator, mirroring FeedRuntime's own commit-tail contract.
//
// docs/ARCHITECTURE.md ("Sharded runtime") covers routing, snapshot
// splitting, threshold composition, and the rollback contract;
// examples/sharded_feed.cpp runs K=4 against an unsharded control.

#ifndef STBURST_STREAM_SHARDED_RUNTIME_H_
#define STBURST_STREAM_SHARDED_RUNTIME_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "stburst/common/parallel.h"
#include "stburst/common/published_ptr.h"
#include "stburst/common/statusor.h"
#include "stburst/index/index_snapshot.h"
#include "stburst/index/query_cache.h"
#include "stburst/index/threshold_algorithm.h"
#include "stburst/stream/feed_runtime.h"
#include "stburst/stream/shard_map.h"
#include "stburst/stream/tokenizer.h"

namespace stburst {

struct ShardedRuntimeOptions {
  /// Per-shard runtime configuration, applied to every shard. num_threads
  /// sizes ONE pool the coordinator owns and lends to all shards
  /// (shared_pool and search_cache_entries are overridden: the coordinator
  /// runs the pool and the query cache itself). tick_deadline_seconds is
  /// evaluated per shard against its own share of the tick.
  FeedRuntimeOptions runtime;

  /// Vocabulary shards. 1 degenerates to a single FeedRuntime behind the
  /// coordinator API (the parity baseline).
  size_t num_shards = 1;
};

/// One published generation of the sharded read plane: each shard's
/// IndexSnapshot plus the local → global DocId translation frozen at the
/// same tick. Immutable after publication; readers hold it across ticks.
struct ShardedSearchView {
  /// Sum of the shard snapshot generations: strictly increases whenever any
  /// shard published, which is what keys the coordinator's query cache.
  uint64_t generation = 0;
  std::vector<std::shared_ptr<const IndexSnapshot>> shards;
  /// Per shard: ascending global ids of its live documents, indexed by
  /// local_id - local_base.
  std::vector<std::shared_ptr<const std::vector<DocId>>> doc_maps;
  std::vector<DocId> local_bases;
};

/// The sharded coordinator. Single-writer like FeedRuntime: Tick must be
/// externally serialized against itself and the non-read-plane accessors;
/// search_view() and Search() with pre-resolved TermIds are safe from any
/// thread concurrently with a running Tick.
class ShardedRuntime {
 public:
  /// Takes ownership of the historical collection, applies the retention
  /// window, and splits the retained history into per-shard collections
  /// (every shard gets the full stream table and vocabulary, so ids align
  /// globally; unowned terms simply never carry postings). Requires the
  /// collection's documents in nondecreasing time order — the Append-driven
  /// invariant that keeps evictions id-preserving, which the global DocId
  /// translation depends on.
  static StatusOr<ShardedRuntime> Create(Collection collection,
                                         ShardedRuntimeOptions options);

  ShardedRuntime(ShardedRuntime&&) = default;
  ShardedRuntime& operator=(ShardedRuntime&&) = default;

  /// One transactional tick across all shards: validate globally, split,
  /// fan prepares and stagings across the pool, then commit every shard —
  /// or roll every shard back on any failure (bit-identical to a
  /// coordinator that never saw the snapshot). A failure after the first
  /// shard committed wedges the runtime (FailedPrecondition from then on);
  /// rebuild via Create. Returned stats aggregate the shards: documents /
  /// rejected are global, dirty/refreshed/search terms sum (term sets are
  /// disjoint), degraded ORs, time/evicted come from shard 0's lockstep
  /// timeline, seconds is the coordinator's wall clock.
  StatusOr<FeedTickStats> Tick(Snapshot snapshot);

  size_t num_shards() const { return shards_.size(); }
  const ShardMap& shard_map() const { return map_; }
  bool wedged() const { return wedged_; }

  /// The shard owning `term` (valid for any TermId).
  const FeedRuntime& shard_for(TermId term) const {
    return *shards_[map_.shard_of(term)];
  }
  const FeedRuntime& shard(size_t s) const { return *shards_[s]; }

  /// The standing pattern slot of `term`, answered by its owning shard —
  /// bit-identical to the unsharded FeedRuntime::patterns(term).
  const TermPatterns& patterns(TermId term) const;

  /// Ticks since `term` was last (re-)mined; owning shard's answer.
  Timestamp staleness(TermId term) const;

  /// Interning point for tokenizing snapshots before Tick. New terms are
  /// synced to every shard at the start of the next Tick.
  Vocabulary* mutable_vocabulary() { return &vocab_; }
  const Vocabulary& vocabulary() const { return vocab_; }

  /// Lockstep timeline accessors (every shard agrees; shard 0 answers).
  Timestamp timeline_length() const;
  Timestamp window_start() const;

  /// Smallest live global DocId (advanced by retention in lockstep with the
  /// shards' evictions).
  DocId doc_id_base() const { return doc_id_base_; }

  /// The coordinator's standing pool; nullptr when serial.
  ThreadPool* pool() { return pool_.get(); }

  /// The currently published composed read-plane view; null when search
  /// serving is off. One atomic load; safe from any thread.
  std::shared_ptr<const ShardedSearchView> search_view() const {
    return view_.Load();
  }

  /// Scatter-gather top-k over the composed view; results carry GLOBAL
  /// DocIds and are bit-identical to the unsharded FeedRuntime::Search
  /// (docs, scores, access counts, early termination) apart from the
  /// generation stamp, which is the view's. Requires search serving; safe
  /// concurrently with Tick.
  TopKResult Search(const std::string& query, size_t k) const;
  TopKResult Search(const std::vector<TermId>& query, size_t k) const;

  /// Coordinator query-cache counters; all-zero when disabled.
  QueryCacheStats search_cache_stats() const;

 private:
  ShardedRuntime(ShardedRuntimeOptions options);

  /// Interns coordinator-vocabulary terms the shards haven't seen yet
  /// (dense ids, so interning in id order keeps every shard aligned).
  void SyncVocabularies();

  /// Rebuilds and publishes the composed view from the shards' current
  /// snapshots and the coordinator's doc maps.
  void PublishView();

  ShardedRuntimeOptions options_;
  ShardMap map_;
  std::unique_ptr<ThreadPool> pool_;  // lent to every shard; null if serial
  std::vector<std::unique_ptr<FeedRuntime>> shards_;
  // Master vocabulary + stream count for global validation and string
  // queries (the shards hold aligned copies).
  Vocabulary vocab_;
  size_t num_streams_ = 0;
  Tokenizer tokenizer_;
  // Global DocId accounting: ids are assigned to every accepted document
  // (token-less ones included) exactly as one global Collection would.
  DocId next_global_doc_ = 0;
  DocId doc_id_base_ = 0;
  Timestamp window_start_ = 0;
  // Accepted documents per retained timestamp — the eviction ledger that
  // advances doc_id_base_ when the window slides.
  std::deque<size_t> docs_per_timestamp_;
  // Per shard: ascending global ids of its live local docs (index:
  // local_id - shard collection doc_id_base()).
  std::vector<std::vector<DocId>> doc_maps_;
  PublishedPtr<ShardedSearchView> view_;
  std::unique_ptr<QueryResultCache> search_cache_;
  bool wedged_ = false;
};

}  // namespace stburst

#endif  // STBURST_STREAM_SHARDED_RUNTIME_H_
