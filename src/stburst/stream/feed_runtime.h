// FeedRuntime — the long-running live-feed mining service.
//
// PR 2 left the live path as loose parts the caller had to wire per tick
// (Append → AppendSnapshot → TakeDirtyTerms → RemineTerms), with three
// structural leaks for a feed that runs for weeks: postings and online
// histories grew without bound, quiet terms went stale forever, and every
// re-mine paid a thread spawn/join. FeedRuntime owns the whole live stack —
// the Collection, the FrequencyIndex, one persistent ThreadPool, and a
// standing BatchMineResult — and drives the full tick cycle:
//
//   Tick(snapshot):
//     0. ValidateSnapshot                 reject or quarantine malformed
//                                         documents (on_invalid policy)
//     1. Collection::Append               file the new documents
//     2. FrequencyIndex::AppendSnapshot   per-term splice fanned across the pool
//     3. retention eviction               drop timestamps older than the window
//                                         (collection + index, in lockstep)
//     4. staged re-mine of the dirty set  appended + evicted terms, on the pool
//     5. background refresh sweep         re-mine the stalest quiet terms,
//                                         prioritized by mass × staleness,
//                                         under the per-tick budget
//     6. search snapshot build + publish  [optional] the next read-plane
//                                         generation, built off to the side
//                                         on a private copy of the current
//                                         index (per-term re-scoring fanned
//                                         across the pool) and published to
//                                         readers with one atomic swap
//
// Every tick is transactional (the failure and recovery contract in
// docs/ARCHITECTURE.md): steps 4–6 mine, score, and build into staging
// state — including the entire next search snapshot — and publish in one
// commit tail, while steps 1–3 record undo state that a failure — a Status
// error or an exception (std::bad_alloc included) out of any step, on any
// pool worker — rolls back exactly. After a failed Tick every accessor
// (result(), search_snapshot() and its generation, collection(), index())
// answers bit-identically to a runtime that never saw the snapshot — an
// unpublished snapshot is simply dropped, readers never knew it existed —
// and the next clean Tick converges to batch parity. Under a tick deadline
// the runtime degrades instead of falling behind: the refresh sweep is
// shed first, search re-scoring deferred second (see
// FeedRuntimeOptions::tick_deadline_seconds).
//
// With a retention window W, live memory is O(V + W · active terms) and a
// long-running feed plateaus (tested: peak postings memory stays within
// 1.5x of the steady state); without one, memory grows with the feed.
// Every step is deterministic: the standing result after any tick is
// bit-identical at any thread count (tested at 1/2/4/8).
//
// docs/ARCHITECTURE.md covers the retention/eviction contract, the refresh
// scheduling policy, and the read plane (snapshot lifecycle, memory
// ordering, cache invalidation); examples/live_feed.cpp runs the runtime
// end to end.

#ifndef STBURST_STREAM_FEED_RUNTIME_H_
#define STBURST_STREAM_FEED_RUNTIME_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "stburst/common/parallel.h"
#include "stburst/common/published_ptr.h"
#include "stburst/common/statusor.h"
#include "stburst/core/batch_miner.h"
#include "stburst/history/cold_tier.h"
#include "stburst/index/index_snapshot.h"
#include "stburst/index/inverted_index.h"
#include "stburst/index/pattern_index.h"
#include "stburst/index/query_cache.h"
#include "stburst/index/threshold_algorithm.h"
#include "stburst/stream/collection.h"
#include "stburst/stream/frequency.h"
#include "stburst/stream/tokenizer.h"
#include "stburst/stream/types.h"

namespace stburst {

/// Which mined pattern type the runtime's optional search index scores
/// documents against (§5: one engine instance per pattern type).
enum class SearchServing {
  kNone,           ///< no search index is maintained
  kCombinatorial,  ///< score against the standing STComb patterns
  kRegional,       ///< score against the standing STLocal windows
};

/// What Tick does with a snapshot document that fails validation (unknown
/// stream, token outside the vocabulary, duplicate event report). NaN or
/// negative frequencies are structurally unrepresentable — counts are token
/// multiplicities — so the malformed inputs that exist are exactly these.
enum class InvalidDocPolicy {
  /// The whole tick fails with InvalidArgument and nothing is ingested —
  /// the strict default: a malformed snapshot points at a broken producer
  /// and deserves a loud error, not silent data loss.
  kRejectTick,
  /// Quarantine: the offending documents are dropped (counted in
  /// FeedTickStats::rejected_documents) and the rest of the snapshot
  /// ingests normally — the keep-serving choice for feeds with untrusted
  /// producers.
  kDropDocument,
};

struct FeedRuntimeOptions {
  /// Per-term mining configuration. `miner.pool` and `miner.num_threads`
  /// are overridden by the runtime (it supplies its own standing pool).
  BatchMinerOptions miner;

  /// Workers of the persistent pool (0 = hardware concurrency, 1 = fully
  /// serial on the calling thread). Shared by the index build, the append
  /// splice, eviction, every re-mine, and the search-snapshot build — no
  /// per-tick thread spawn/join. Ignored when `shared_pool` is set.
  size_t num_threads = 1;

  /// Pin the owned pool's workers to cores (ThreadPoolOptions::pin_threads)
  /// — for dedicated hosts where the runtime owns the machine. Ignored when
  /// `shared_pool` is set (the pool's creator decides) or when the runtime
  /// is serial.
  bool pin_threads = false;

  /// Borrowed standing pool. When set, the runtime spawns no threads of its
  /// own and fans every parallel phase across this pool instead — the way a
  /// coordinator (ShardedRuntime) lets K shards share one pool rather than
  /// oversubscribing the machine K times. Nested fan-out is safe: ParallelFor
  /// waits by helping (see common/parallel.h). Not owned; must outlive the
  /// runtime.
  ThreadPool* shared_pool = nullptr;

  /// Retention window W in timestamps: after each tick, timestamps older
  /// than timeline_length - W are evicted from the collection, the index,
  /// and the standing result (burstiness re-normalized to the window;
  /// pattern timeframes stay absolute). 0 keeps the full history
  /// (unbounded memory — the PR-2 behavior).
  Timestamp retention_window = 0;

  /// Tiered history (docs/ARCHITECTURE.md "Tiered history", retention rule
  /// 9): what eviction does with the snapshots it drops. kOff discards them
  /// (the pre-tier behavior); kInMemory folds them into a process-local
  /// ColdTier of per-(term, stream, bucket) aggregates; kMmap additionally
  /// publishes each folded generation to `history_path` (atomic
  /// rename-on-publish; format in docs/STORAGE.md) so a restarted runtime
  /// recovers months of baseline without replay. The tier feeds
  /// LongHorizonBaseline (history/long_horizon.h) and ReplayRange
  /// (history/replay.h); folding happens inside the tick transaction and
  /// rolls back with it (fault site `history.fold`). Without a retention
  /// window nothing is ever evicted, so the tier stays empty.
  HistoryMode history_mode = HistoryMode::kOff;

  /// Aggregation bucket width in timestamps (e.g. 4 for 4-week buckets on a
  /// weekly feed). Must be > 0 when history is on; must match the existing
  /// file when reopening an mmap tier (aggregates cannot be re-bucketed).
  Timestamp history_bucket_width = 4;

  /// Published tier file for kMmap (required there, ignored otherwise). A
  /// ShardedRuntime derives per-shard files as `<path>.shard<i>`.
  std::string history_path;

  /// Maintain a bursty-document search read plane (paper §5) over the
  /// standing result. Each tick that changes search state builds the next
  /// immutable IndexSnapshot off to the side — a private copy of the
  /// current index, edited on the incremental fast path (evicted
  /// documents' postings dropped, exactly the terms re-mined this tick
  /// re-derived) — and publishes it with one atomic swap; Search() is
  /// always window-consistent with result() (tested: equal to a
  /// from-scratch BurstySearchEngine build over the retained collection
  /// and standing patterns). Readers hold snapshots across ticks without
  /// blocking either side; each published generation bumps
  /// search_snapshot()->generation by one.
  SearchServing search_serving = SearchServing::kNone;

  /// Capacity (entries) of the query-result cache; 0 disables it. Entries
  /// are keyed on (snapshot generation, query terms, k), so a published
  /// tick invalidates the whole cache for free — stale generations can
  /// never be looked up again and age out of the LRU. Cached lookups take
  /// one reader-only mutex the tick path never touches; leave 0 for the
  /// mutex-free query path (PublishedPtr slot + frozen data only).
  /// Requires search_serving.
  size_t search_cache_entries = 0;

  /// Background refresh budget: quiet terms re-mined per tick, stalest
  /// first (priority = total windowed mass × ticks since last mine, ties to
  /// the smaller TermId). Only terms whose burstiness normalization
  /// actually drifted qualify — i.e. the retained window length changed
  /// since their last mine; on a length-preserving steady-state slide a
  /// quiet term's slot is provably identical, so the sweep drains to zero
  /// instead of re-mining no-ops forever. Counted in terms, not wall
  /// clock, so the sweep is deterministic at any thread count. 0 disables
  /// the sweep (quiet slots keep the PR-2 staleness contract
  /// indefinitely).
  size_t refresh_budget = 0;

  /// What Tick does with snapshot documents that fail validation.
  InvalidDocPolicy on_invalid = InvalidDocPolicy::kRejectTick;

  /// Soft per-tick deadline in seconds; 0 disables it. When a tick is over
  /// deadline it degrades instead of falling further behind, shedding work
  /// in a fixed ladder: (1) the refresh sweep is skipped; (2) search
  /// re-scoring is deferred — the terms carry over and are scored by the
  /// next tick that has headroom. Search *eviction* is never deferred (a
  /// deferred drop would serve dead DocIds), and correctness work (append,
  /// eviction, dirty re-mine) always runs: degradation trades freshness of
  /// derived state, never consistency. Degraded ticks set
  /// FeedTickStats::degraded.
  double tick_deadline_seconds = 0.0;

  /// Clock the deadline reads, in seconds (only the difference between
  /// calls matters). Null uses a monotonic wall clock; tests inject a
  /// scripted clock to drive the degradation ladder deterministically.
  std::function<double()> clock;
};

/// What one Tick did — sizes for monitoring, wall time for dashboards.
struct FeedTickStats {
  Timestamp time = 0;          ///< timestamp assigned to the snapshot
  size_t documents = 0;        ///< documents filed from the snapshot
  size_t rejected_documents = 0;  ///< documents dropped by validation
                                  ///< (kDropDocument policy only)
  size_t dirty_terms = 0;      ///< terms re-mined for new/evicted postings
  size_t refreshed_terms = 0;  ///< quiet terms re-mined by the sweep
  size_t search_terms = 0;     ///< terms whose search postings were re-derived
  size_t folded_terms = 0;     ///< terms whose evicted postings the cold
                               ///< tier folded this tick (history on only)
  bool evicted = false;        ///< whether retention advanced the window
  bool degraded = false;       ///< deadline ladder shed work this tick
  double seconds = 0.0;        ///< wall time of the whole tick
};

/// One quiet term the refresh sweep could re-mine this tick, with the
/// priority the scheduling policy assigns it (windowed mass × ticks since
/// its last mine). Produced by FeedRuntime::RefreshCandidates; a
/// coordinator that owns several runtimes (ShardedRuntime) merges the
/// per-shard candidate lists and selects one global budget with
/// FeedRuntime::SelectRefreshTargets, so sharding never changes *which*
/// terms the sweep refreshes.
struct RefreshCandidate {
  TermId term = kInvalidTerm;
  double priority = 0.0;
};

/// The pure validation half of FeedRuntime's step 0, usable by any owner of
/// a snapshot stream (ShardedRuntime validates once globally before
/// splitting). kRejectTick returns InvalidArgument on the first malformed
/// document; kDropDocument compacts the offenders out of `snapshot` and
/// adds their count to `*rejected`. Malformed means: unknown stream id
/// (>= num_streams), token outside [0, vocabulary_size), or the same stream
/// re-reporting the same explicit event id within this snapshot.
Status ValidateSnapshotDocuments(size_t num_streams, size_t vocabulary_size,
                                 InvalidDocPolicy policy, Snapshot* snapshot,
                                 size_t* rejected);

/// The long-running runtime. Single-writer: Tick must be externally
/// serialized against itself and against non-read-plane accessors
/// (result(), collection(), index(), mutable_vocabulary()). The read plane
/// is the exception: search_snapshot(), search_index(), and Search() with
/// pre-resolved TermIds are safe from any number of threads concurrently
/// with a running Tick — readers see the last published snapshot until the
/// tick's single publication swap, never intermediate state. (String-query
/// Search only reads the frozen vocabulary, so it too is tick-safe; it
/// must not overlap a mutable_vocabulary()->Intern burst.)
class FeedRuntime {
 public:
  /// Takes ownership of the historical collection, builds the sharded
  /// index, runs the initial whole-vocabulary sweep, and applies the
  /// retention window to the history. The collection may be empty of
  /// documents (a cold start).
  static StatusOr<FeedRuntime> Create(Collection collection,
                                      FeedRuntimeOptions options);

  FeedRuntime(FeedRuntime&&) = default;
  FeedRuntime& operator=(FeedRuntime&&) = default;

  /// Runs the full tick cycle on one snapshot, transactionally: on error
  /// (validation under kRejectTick, a Status failure from any step, or an
  /// exception — std::bad_alloc included — thrown on any pool worker) the
  /// snapshot's effects are rolled back and every accessor keeps answering
  /// from the pre-tick state — result(), search_snapshot() (the same
  /// object, generation unchanged; the half-built successor is dropped
  /// unpublished), collection(), index() are bit-identical to a runtime
  /// that never saw the snapshot — and the next clean Tick converges to
  /// batch parity. The narrow exception: a failure inside the final commit
  /// tail (after staged state started publishing — in practice only a true
  /// OOM during the bookkeeping moves) wedges the runtime, and every later
  /// Tick returns FailedPrecondition; rebuild via Create. The
  /// fault-injection sweep (tests/fault_injection_test.cc) proves the
  /// rollback contract for every registered failure site.
  StatusOr<FeedTickStats> Tick(Snapshot snapshot);

  /// One in-flight tick's staged state and undo log, opaque and move-only.
  /// Produced by PrepareTickIngest and consumed by exactly one of
  /// CommitTick or AbortTick; dropping one without either leaks no memory
  /// but leaves the runtime with the tick's ingestion applied and nothing
  /// staged — always finish the protocol.
  class TickTransaction {
   public:
    TickTransaction(TickTransaction&&) noexcept;
    TickTransaction& operator=(TickTransaction&&) noexcept;
    ~TickTransaction();

   private:
    friend class FeedRuntime;
    TickTransaction();
    struct Impl;
    std::unique_ptr<Impl> impl_;
  };

  /// Phase-split Tick, for coordinators that interleave several runtimes'
  /// ticks into one transaction (ShardedRuntime). The protocol is
  ///
  ///   PrepareTickIngest → RefreshCandidates / SelectRefreshTargets →
  ///   StageTickDerived → CommitTick | AbortTick
  ///
  /// and Tick() itself is exactly this composition, so a single-runtime
  /// caller never needs it. Each phase is individually transactional: a
  /// non-OK PrepareTickIngest has already rolled itself back; a non-OK
  /// StageTickDerived leaves the transaction intact and the caller MUST
  /// AbortTick it; CommitTick either commits, rolls back cleanly, or — on a
  /// failure after publication began — wedges the runtime, exactly like
  /// Tick.
  ///
  /// PrepareTickIngest runs validation and the mutation phase (append,
  /// index splice, retention eviction) plus the dirty re-mine into staging.
  StatusOr<TickTransaction> PrepareTickIngest(Snapshot snapshot);

  /// Every quiet term the refresh sweep could touch this tick (the tick's
  /// dirty set is excluded — it is being re-mined anyway), with priorities.
  /// Pure; unordered. Pair with SelectRefreshTargets.
  std::vector<RefreshCandidate> RefreshCandidates(
      const TickTransaction& tx) const;

  /// The deterministic selection rule of the refresh sweep: the `budget`
  /// highest-priority candidates, ties to the smaller TermId. Static so a
  /// coordinator can run it over merged per-shard candidate lists and get
  /// the same global pick the unsharded runtime would make.
  static std::vector<TermId> SelectRefreshTargets(
      std::vector<RefreshCandidate> candidates, size_t budget);

  /// Stages the tick's derived state: the refresh re-mine of
  /// `refresh_targets` (deadline rung 1 may shed it), the search re-scoring
  /// (rung 2 may defer it), and the next search snapshot — publishing
  /// nothing. On failure the caller must AbortTick the transaction.
  Status StageTickDerived(TickTransaction* tx,
                          std::vector<TermId> refresh_targets);

  /// Publishes the staged state and returns the tick's stats. On a clean
  /// pre-publication failure the transaction is rolled back; a failure
  /// after publication began wedges the runtime (see Tick).
  StatusOr<FeedTickStats> CommitTick(TickTransaction tx);

  /// Rolls the transaction back to the exact pre-tick state. No-throw.
  void AbortTick(TickTransaction tx);

  /// True once a commit-tail failure wedged the runtime (every further
  /// Tick / PrepareTickIngest returns FailedPrecondition).
  bool wedged() const { return wedged_; }

  const Collection& collection() const { return collection_; }
  const FrequencyIndex& index() const { return index_; }
  /// The standing mining result: one slot per TermId, timeframes absolute.
  const BatchMineResult& result() const { return result_; }
  /// Convenience: the standing slot of one term (empty slot for unknown
  /// ids).
  const TermPatterns& patterns(TermId term) const;

  /// Interning point for tokenizing snapshots before Tick. New terms are
  /// absorbed by the next tick; do not mutate anything else mid-cycle.
  Vocabulary* mutable_vocabulary() { return collection_.mutable_vocabulary(); }

  /// The standing pool, usable by callers between ticks (e.g. to fan a
  /// search-index rebuild); nullptr when the runtime is serial. The
  /// borrowed pool when options.shared_pool was set.
  ThreadPool* pool() { return pool_; }

  /// The currently published search snapshot — one atomic acquire load, no
  /// locks. Hold it as long as you like: it stays bit-identical while
  /// ticks publish successors, and is freed when the last holder releases
  /// it. Window-consistent with result() as of the tick that published it;
  /// null when search serving is off. Safe from any thread concurrently
  /// with Tick.
  std::shared_ptr<const IndexSnapshot> search_snapshot() const {
    return search_snapshot_.Load();
  }

  /// Compatibility view of the current snapshot's index; nullptr when
  /// search serving is off. The pointee is pinned by the runtime's own
  /// reference, so the pointer stays valid at least until the next
  /// publishing Tick — callers that hold results across ticks should hold
  /// search_snapshot() instead. Cached query results are keyed by its
  /// generation(), which moves once per tick that edited search state.
  const InvertedIndex* search_index() const;

  /// Top-k bursty documents for a raw query string (tokenized against the
  /// collection's vocabulary; unknown words are dropped) over the current
  /// search snapshot. Requires search serving; safe concurrently with Tick
  /// (but not with vocabulary interning — see the class comment).
  TopKResult Search(const std::string& query, size_t k) const;

  /// Top-k for pre-resolved term ids: one atomic snapshot load + TA over
  /// the immutable snapshot (plus one cache mutex when
  /// search_cache_entries > 0). Safe from any number of threads
  /// concurrently with Tick; the result's generation tells which snapshot
  /// answered.
  TopKResult Search(const std::vector<TermId>& query, size_t k) const;

  /// Query-cache counters; all-zero when the cache is disabled.
  QueryCacheStats search_cache_stats() const;

  Timestamp window_start() const { return index_.window_start(); }

  /// The cold history tier evicted snapshots fold into; null when
  /// options.history_mode == kOff. Borrowable by LongHorizonBaseline /
  /// ReplayRange between ticks (single-writer rules apply: the tier mutates
  /// inside Tick).
  const ColdTier* history() const { return history_.get(); }

  /// Ticks since `term`'s slot was last (re-)mined: 0 right after its mine,
  /// growing while it stays quiet. The refresh sweep drains the largest
  /// mass × staleness products first.
  Timestamp staleness(TermId term) const;

 private:
  // Undo log of one in-flight tick; defined in feed_runtime.cc.
  struct FeedTickUndo;

  FeedRuntime(Collection collection, FeedRuntimeOptions options);

  /// Step 0 of Tick, pure (no runtime state touched): enforces the
  /// on_invalid policy. kRejectTick returns InvalidArgument on the first
  /// malformed document; kDropDocument filters them out of `snapshot` and
  /// counts them into `stats->rejected_documents`.
  Status ValidateSnapshot(Snapshot* snapshot, FeedTickStats* stats) const;

  /// The guarded phase bodies: each stages or publishes its slice of the
  /// tick, recording undo state before every mutation. Exceptions escape to
  /// the public phase wrappers, which map them to Status (bad_alloc,
  /// injected faults, everything else) exactly like Tick always did.
  Status PrepareIngestGuarded(Snapshot snapshot, TickTransaction::Impl* tx);
  Status StageDerivedGuarded(TickTransaction::Impl* tx,
                             std::vector<TermId> refresh_targets);
  Status CommitGuarded(TickTransaction::Impl* tx);

  /// Whether the tick whose deadline clock `tx` carries is over
  /// options_.tick_deadline_seconds; false with no deadline configured.
  /// Calls options_.clock at most once (the scripted-clock contract).
  bool TickOverDeadline(const TickTransaction::Impl& tx) const;

  /// Restores the exact pre-tick state recorded in `undo` (reverse order of
  /// the tick's mutations). No-throw.
  void RollbackTick(FeedTickUndo* undo);

  /// Scores `term`'s retained documents against `slot`, appending the
  /// positive search postings to `out`. Const and scratch-parameterized so
  /// StageSearchPostings can run it on pool workers.
  void ScoreSearchTerm(TermId term, const TermPatterns& slot,
                       std::vector<TermPattern>* scratch,
                       std::vector<Posting>* out) const;

  /// Scores every term in `terms` (slot via `slot_for`) across the
  /// standing pool into index-addressed result slots — deterministic at
  /// any thread count. The staging half of the search update; the builder
  /// commits each list with InvertedIndex::ReplaceTerm.
  std::vector<std::vector<Posting>> StageSearchPostings(
      const std::vector<TermId>& terms,
      const std::function<const TermPatterns&(TermId)>& slot_for) const;

  FeedRuntimeOptions options_;
  Collection collection_;
  // The standing pool: owned_pool_ holds the runtime's own workers (null
  // when serial or borrowing); pool_ is the pool every phase actually uses —
  // owned_pool_.get(), options_.shared_pool, or null when fully serial.
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;
  // Standing stream-position binning for regional mining (null otherwise):
  // built once at Create — stream positions never move — and lent to every
  // re-mine via options_.miner.binning, so no tick rebuilds the geometry.
  std::unique_ptr<SpatialBinning> binning_;
  FrequencyIndex index_;
  BatchMineResult result_;
  // Cold history tier (options_.history_mode != kOff): evicted postings
  // fold into it inside the tick transaction; kMmap generations publish in
  // the commit tail. unique_ptr keeps the runtime movable and the off case
  // free.
  std::unique_ptr<ColdTier> history_;
  // The read plane (options_.search_serving != kNone): the published
  // snapshot slot readers load from, the optional query-result cache
  // (null when search_cache_entries == 0), and the tokenizer for string
  // queries.
  PublishedPtr<IndexSnapshot> search_snapshot_;
  std::unique_ptr<QueryResultCache> search_cache_;
  Tokenizer tokenizer_;
  // Per-term bookkeeping for the refresh policy, indexed by TermId.
  std::vector<Timestamp> last_mined_;   // timeline length at last (re-)mine
  std::vector<Timestamp> last_window_;  // window length at last (re-)mine
  std::vector<double> mass_;            // windowed TotalCount at last mine
  // Degradation ladder: terms whose search re-scoring a deadline-pressed
  // tick deferred (sorted, unique); the next tick with headroom scores
  // them. Empty in steady state.
  std::vector<TermId> deferred_search_terms_;
  // Set when a failure struck inside a commit tail (partial publish — no
  // rollback possible); every further Tick refuses with FailedPrecondition.
  bool wedged_ = false;
};

}  // namespace stburst

#endif  // STBURST_STREAM_FEED_RUNTIME_H_
