// FeedRuntime — the long-running live-feed mining service.
//
// PR 2 left the live path as loose parts the caller had to wire per tick
// (Append → AppendSnapshot → TakeDirtyTerms → RemineTerms), with three
// structural leaks for a feed that runs for weeks: postings and online
// histories grew without bound, quiet terms went stale forever, and every
// re-mine paid a thread spawn/join. FeedRuntime owns the whole live stack —
// the Collection, the FrequencyIndex, one persistent ThreadPool, and a
// standing BatchMineResult — and drives the full tick cycle:
//
//   Tick(snapshot):
//     1. Collection::Append               file the new documents
//     2. FrequencyIndex::AppendSnapshot   per-term splice fanned across the pool
//     3. retention eviction               drop timestamps older than the window
//                                         (collection + index, in lockstep)
//     4. RemineTerms on the dirty set     appended + evicted terms, on the pool
//     5. background refresh sweep         re-mine the stalest quiet terms,
//                                         prioritized by mass × staleness,
//                                         under the per-tick budget
//     6. search-index maintenance         [optional] drop evicted documents'
//                                         postings in place and re-derive
//                                         the postings of every term
//                                         re-mined this tick, in one
//                                         Reopen→Finalize generation bump
//
// With a retention window W, live memory is O(V + W · active terms) and a
// long-running feed plateaus (tested: peak postings memory stays within
// 1.5x of the steady state); without one, memory grows with the feed.
// Every step is deterministic: the standing result after any tick is
// bit-identical at any thread count (tested at 1/2/4/8).
//
// docs/ARCHITECTURE.md covers the retention/eviction contract and the
// refresh scheduling policy; examples/live_feed.cpp runs the runtime end to
// end.

#ifndef STBURST_STREAM_FEED_RUNTIME_H_
#define STBURST_STREAM_FEED_RUNTIME_H_

#include <memory>
#include <string>
#include <vector>

#include "stburst/common/parallel.h"
#include "stburst/common/statusor.h"
#include "stburst/core/batch_miner.h"
#include "stburst/index/inverted_index.h"
#include "stburst/index/pattern_index.h"
#include "stburst/index/threshold_algorithm.h"
#include "stburst/stream/collection.h"
#include "stburst/stream/frequency.h"
#include "stburst/stream/tokenizer.h"
#include "stburst/stream/types.h"

namespace stburst {

/// Which mined pattern type the runtime's optional search index scores
/// documents against (§5: one engine instance per pattern type).
enum class SearchServing {
  kNone,           ///< no search index is maintained
  kCombinatorial,  ///< score against the standing STComb patterns
  kRegional,       ///< score against the standing STLocal windows
};

struct FeedRuntimeOptions {
  /// Per-term mining configuration. `miner.pool` and `miner.num_threads`
  /// are overridden by the runtime (it supplies its own standing pool).
  BatchMinerOptions miner;

  /// Workers of the persistent pool (0 = hardware concurrency, 1 = fully
  /// serial on the calling thread). Shared by the index build, the append
  /// splice, eviction, and every re-mine — no per-tick thread spawn/join.
  size_t num_threads = 1;

  /// Retention window W in timestamps: after each tick, timestamps older
  /// than timeline_length - W are evicted from the collection, the index,
  /// and the standing result (burstiness re-normalized to the window;
  /// pattern timeframes stay absolute). 0 keeps the full history
  /// (unbounded memory — the PR-2 behavior).
  Timestamp retention_window = 0;

  /// Maintain a bursty-document search index (paper §5) over the standing
  /// result, updated on every tick: evicted documents' postings are dropped
  /// in place (InvertedIndex::EvictBefore — DocIds survive eviction on the
  /// Append-driven fast path), and exactly the terms whose slots were
  /// re-mined this tick (dirty + refreshed) get their postings re-derived —
  /// so Search() is always window-consistent with result() (tested: equal
  /// to a from-scratch BurstySearchEngine build over the retained
  /// collection and standing patterns). Each tick's update is one
  /// Reopen→edit→Finalize cycle, bumping search_index()->generation() once.
  SearchServing search_serving = SearchServing::kNone;

  /// Background refresh budget: quiet terms re-mined per tick, stalest
  /// first (priority = total windowed mass × ticks since last mine, ties to
  /// the smaller TermId). Only terms whose burstiness normalization
  /// actually drifted qualify — i.e. the retained window length changed
  /// since their last mine; on a length-preserving steady-state slide a
  /// quiet term's slot is provably identical, so the sweep drains to zero
  /// instead of re-mining no-ops forever. Counted in terms, not wall
  /// clock, so the sweep is deterministic at any thread count. 0 disables
  /// the sweep (quiet slots keep the PR-2 staleness contract
  /// indefinitely).
  size_t refresh_budget = 0;
};

/// What one Tick did — sizes for monitoring, wall time for dashboards.
struct FeedTickStats {
  Timestamp time = 0;          ///< timestamp assigned to the snapshot
  size_t documents = 0;        ///< documents filed from the snapshot
  size_t dirty_terms = 0;      ///< terms re-mined for new/evicted postings
  size_t refreshed_terms = 0;  ///< quiet terms re-mined by the sweep
  size_t search_terms = 0;     ///< terms whose search postings were re-derived
  bool evicted = false;        ///< whether retention advanced the window
  double seconds = 0.0;        ///< wall time of the whole tick
};

/// The long-running runtime. Single-writer: Tick (and the accessors during
/// it) must be externally serialized; between ticks all const accessors are
/// safe to call concurrently (the standing pool is idle then).
class FeedRuntime {
 public:
  /// Takes ownership of the historical collection, builds the sharded
  /// index, runs the initial whole-vocabulary sweep, and applies the
  /// retention window to the history. The collection may be empty of
  /// documents (a cold start).
  static StatusOr<FeedRuntime> Create(Collection collection,
                                      FeedRuntimeOptions options);

  FeedRuntime(FeedRuntime&&) = default;
  FeedRuntime& operator=(FeedRuntime&&) = default;

  /// Runs the full tick cycle on one snapshot. On error the runtime should
  /// be considered wedged mid-cycle (the same contract as RemineTerms):
  /// inspect, fix the configuration, or rebuild via Create.
  StatusOr<FeedTickStats> Tick(Snapshot snapshot);

  const Collection& collection() const { return collection_; }
  const FrequencyIndex& index() const { return index_; }
  /// The standing mining result: one slot per TermId, timeframes absolute.
  const BatchMineResult& result() const { return result_; }
  /// Convenience: the standing slot of one term (empty slot for unknown
  /// ids).
  const TermPatterns& patterns(TermId term) const;

  /// Interning point for tokenizing snapshots before Tick. New terms are
  /// absorbed by the next tick; do not mutate anything else mid-cycle.
  Vocabulary* mutable_vocabulary() { return collection_.mutable_vocabulary(); }

  /// The standing pool, usable by callers between ticks (e.g. to fan a
  /// search-index rebuild); nullptr when the runtime is serial.
  ThreadPool* pool() { return pool_.get(); }

  /// The maintained search index — window-consistent with result() after
  /// every Tick; nullptr when options.search_serving is kNone. Cached query
  /// results are keyed by its generation(), which moves once per tick that
  /// edited the index.
  const InvertedIndex* search_index() const {
    return options_.search_serving == SearchServing::kNone ? nullptr
                                                           : &search_index_;
  }

  /// Top-k bursty documents for a raw query string (tokenized against the
  /// collection's vocabulary; unknown words are dropped) over the
  /// maintained search index. Requires search serving; safe to call
  /// concurrently between ticks.
  TopKResult Search(const std::string& query, size_t k) const;

  /// Top-k for pre-resolved term ids.
  TopKResult Search(const std::vector<TermId>& query, size_t k) const;

  Timestamp window_start() const { return index_.window_start(); }

  /// Ticks since `term`'s slot was last (re-)mined: 0 right after its mine,
  /// growing while it stays quiet. The refresh sweep drains the largest
  /// mass × staleness products first.
  Timestamp staleness(TermId term) const;

 private:
  FeedRuntime(Collection collection, FeedRuntimeOptions options);

  /// Re-mines `terms` on the standing pool and stamps their slots fresh.
  Status Remine(const std::vector<TermId>& terms);

  /// Picks the refresh_budget stalest massy quiet terms, deterministically.
  std::vector<TermId> PickRefreshTargets() const;

  /// Replaces the open search index's postings of one term, scoring the
  /// term's retained documents against its standing slot.
  void UpdateSearchTerm(TermId term);

  /// Re-derives every term's search postings (the fallback when an eviction
  /// renumbered DocIds — never on an Append-driven feed). The index object
  /// is edited, not replaced, so generation() stays monotone.
  void RebuildSearchIndex();

  FeedRuntimeOptions options_;
  Collection collection_;
  std::unique_ptr<ThreadPool> pool_;  // null when serial
  // Standing stream-position binning for regional mining (null otherwise):
  // built once at Create — stream positions never move — and lent to every
  // re-mine via options_.miner.binning, so no tick rebuilds the geometry.
  std::unique_ptr<SpatialBinning> binning_;
  FrequencyIndex index_;
  BatchMineResult result_;
  // Search serving (options_.search_serving != kNone): the maintained
  // score-sorted index, the tokenizer for string queries, and a scratch
  // pattern list reused across per-term updates.
  InvertedIndex search_index_;
  Tokenizer tokenizer_;
  std::vector<TermPattern> term_patterns_scratch_;
  // Per-term bookkeeping for the refresh policy, indexed by TermId.
  std::vector<Timestamp> last_mined_;   // timeline length at last (re-)mine
  std::vector<Timestamp> last_window_;  // window length at last (re-)mine
  std::vector<double> mass_;            // windowed TotalCount at last mine
};

}  // namespace stburst

#endif  // STBURST_STREAM_FEED_RUNTIME_H_
