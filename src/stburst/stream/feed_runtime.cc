#include "stburst/stream/feed_runtime.h"

#include <algorithm>
#include <exception>
#include <new>
#include <unordered_set>
#include <utility>

#include "stburst/common/fault_injection.h"
#include "stburst/common/logging.h"
#include "stburst/common/string_util.h"
#include "stburst/common/timer.h"
#include "stburst/index/search_engine.h"

namespace stburst {

namespace {
const TermPatterns kEmptyPatterns;
}  // namespace

// The undo log of one in-flight tick. Every `*_appended` / `*_evicted` flag
// is set immediately BEFORE its mutating call, so a failure anywhere inside
// the call (including a partial mutation cut short by an exception) is
// still rolled back; the per-structure rollbacks are built to clean up
// partial applications. `committing` flips once the commit tail starts
// publishing staged state — past that point rollback is impossible and a
// failure wedges the runtime instead. The search read plane needs no undo
// entry at all: its next generation is built entirely off to the side and
// an unpublished IndexSnapshot is simply dropped.
struct FeedRuntime::FeedTickUndo {
  Timestamp old_timeline = 0;
  size_t old_num_documents = 0;
  FrequencyIndex::AppendCheckpoint freq_checkpoint;
  std::vector<TermId> pre_dirty;
  bool pre_dirty_captured = false;
  bool collection_appended = false;
  bool index_appended = false;
  bool collection_evicted = false;
  bool freq_evicted = false;
  bool history_folded = false;
  bool bookkeeping_resized = false;
  bool committing = false;
  CollectionEvictUndo collection_undo;
  FrequencyEvictUndo freq_undo;
  ColdFoldUndo history_undo;
  size_t old_result_terms = 0;
  size_t old_bookkeeping_terms = 0;
};

// Everything one in-flight tick stages between PrepareTickIngest and
// CommitTick/AbortTick: the undo log, the running stats, the deadline
// clock, and the staged mining / scoring / snapshot state. Lives behind
// TickTransaction's pimpl so the header stays free of the undo types.
struct FeedRuntime::TickTransaction::Impl {
  FeedTickUndo undo;
  FeedTickStats stats;
  Timer timer;                 // starts at PrepareTickIngest
  double clock_start = 0.0;    // options_.clock() at PrepareTickIngest
  EvictionReport eviction;
  std::vector<TermId> dirty_todo;
  std::vector<TermPatterns> staged_dirty;
  std::vector<TermId> refresh_todo;
  std::vector<TermPatterns> staged_refresh;
  std::vector<TermId> score_terms;
  std::vector<std::vector<Posting>> staged_postings;
  std::vector<TermId> deferred_next;
  std::shared_ptr<IndexSnapshot> next_snapshot;
  bool touch_search = false;
};

FeedRuntime::TickTransaction::TickTransaction() = default;
FeedRuntime::TickTransaction::TickTransaction(TickTransaction&&) noexcept =
    default;
FeedRuntime::TickTransaction& FeedRuntime::TickTransaction::operator=(
    TickTransaction&&) noexcept = default;
FeedRuntime::TickTransaction::~TickTransaction() = default;

namespace {

// The tick phases' shared exception-to-Status mapping: every phase body may
// throw (std::bad_alloc from any container, an injected fault from a pool
// worker), and every phase must surface the identical Status a monolithic
// Tick always produced.
template <typename Fn>
Status GuardTickPhase(Fn&& fn) {
  try {
    return fn();
  } catch (const std::bad_alloc&) {
    return Status::Internal("allocation failure during tick");
  }
#ifdef STBURST_FAULT_INJECTION
  catch (const fault::FaultInjected& e) {
    return Status::Internal(e.what());
  }
#endif
  catch (const std::exception& e) {
    return Status::Internal(
        StringPrintf("exception during tick: %s", e.what()));
  }
}

}  // namespace

FeedRuntime::FeedRuntime(Collection collection, FeedRuntimeOptions options)
    : options_(std::move(options)), collection_(std::move(collection)) {
  if (options_.shared_pool != nullptr) {
    // Borrowed pool: the coordinator that lent it sizes the parallelism;
    // spawning our own workers on top would oversubscribe the machine once
    // per shard.
    pool_ = options_.shared_pool;
  } else {
    const size_t threads = ResolveThreadCount(options_.num_threads);
    // The calling thread participates in every ParallelFor, so threads - 1
    // pool workers give the requested parallelism; serial runtimes hold no
    // pool at all (ParallelFor(nullptr, ...) runs inline).
    if (threads > 1) {
      owned_pool_ = std::make_unique<ThreadPool>(
          ThreadPoolOptions{threads - 1, options_.pin_threads});
      pool_ = owned_pool_.get();
    }
  }
  // The miner always runs on the standing pool (or inline when serial);
  // a caller-supplied transient-pool configuration would reintroduce the
  // per-tick spawn/join this runtime exists to remove.
  options_.miner.pool = pool_;
  options_.miner.num_threads = 1;
}

StatusOr<FeedRuntime> FeedRuntime::Create(Collection collection,
                                          FeedRuntimeOptions options) {
  if (options.retention_window < 0) {
    return Status::InvalidArgument("retention window must be non-negative");
  }
  // A search index over a pattern type the miner never produces would
  // silently serve zero results forever.
  if (options.search_serving == SearchServing::kCombinatorial &&
      !options.miner.mine_combinatorial) {
    return Status::InvalidArgument(
        "search_serving = kCombinatorial requires miner.mine_combinatorial");
  }
  if (options.search_serving == SearchServing::kRegional &&
      !options.miner.mine_regional) {
    return Status::InvalidArgument(
        "search_serving = kRegional requires miner.mine_regional");
  }
  // A cache with nothing to cache points at a misconfigured caller.
  if (options.search_cache_entries > 0 &&
      options.search_serving == SearchServing::kNone) {
    return Status::InvalidArgument(
        "search_cache_entries requires search_serving");
  }
  if (options.history_mode != HistoryMode::kOff &&
      options.history_bucket_width <= 0) {
    return Status::InvalidArgument(
        "history_bucket_width must be positive when history is on");
  }
  if (options.history_mode == HistoryMode::kMmap &&
      options.history_path.empty()) {
    return Status::InvalidArgument(
        "history_mode = kMmap requires history_path");
  }
  FeedRuntime runtime(std::move(collection), std::move(options));

  // Apply retention to the history before the initial sweep, so the sweep
  // mines exactly the retained window (and pays only for it).
  const Timestamp window = runtime.options_.retention_window;
  if (window > 0 && runtime.collection_.timeline_length() > window) {
    STB_RETURN_NOT_OK(runtime.collection_.EvictBefore(
        runtime.collection_.timeline_length() - window));
  }

  // Attach the cold history tier: fresh tiers adopt the live window's start
  // as their coverage origin; reopened mmap tiers must reach it (no gap
  // between the persisted aggregates and the live window). Folding begins
  // with the first evicting Tick — Create's own deep-history eviction above
  // is a declared drop, not a fold, and covered_start() records that.
  if (runtime.options_.history_mode != HistoryMode::kOff) {
    StatusOr<ColdTier> tier =
        runtime.options_.history_mode == HistoryMode::kMmap
            ? ColdTier::OpenOrCreate(runtime.options_.history_path,
                                     runtime.options_.history_bucket_width)
            : ColdTier::CreateInMemory(runtime.options_.history_bucket_width);
    if (!tier.ok()) return tier.status();
    runtime.history_ = std::make_unique<ColdTier>(std::move(tier).value());
    STB_RETURN_NOT_OK(
        runtime.history_->AttachAt(runtime.collection_.window_start()));
  }

  // Stream positions are fixed for the runtime's lifetime, so the regional
  // miners' cell geometry is too: build it once and lend it to every
  // (re-)mine below. Heap-owned so the pointer survives moves of `runtime`.
  if (runtime.options_.miner.mine_regional &&
      runtime.options_.miner.binning == nullptr) {
    STB_ASSIGN_OR_RETURN(
        SpatialBinning binning,
        SpatialBinning::Create(runtime.options_.miner.positions,
                               runtime.options_.miner.stlocal.rbursty.rect));
    runtime.binning_ = std::make_unique<SpatialBinning>(std::move(binning));
    runtime.options_.miner.binning = runtime.binning_.get();
  }

  runtime.index_ = FrequencyIndex::BuildWithPool(runtime.collection_,
                                                 runtime.pool_);
  STB_ASSIGN_OR_RETURN(runtime.result_,
                       MineAllTerms(runtime.index_, runtime.options_.miner));

  const Timestamp now = runtime.collection_.timeline_length();
  runtime.last_mined_.assign(runtime.index_.num_terms(), now);
  runtime.last_window_.assign(runtime.index_.num_terms(),
                              runtime.index_.window_length());
  runtime.mass_.resize(runtime.index_.num_terms());
  for (TermId t = 0; t < runtime.index_.num_terms(); ++t) {
    runtime.mass_[t] = runtime.index_.TotalCount(t);
  }

  // Initial search snapshot (generation 1): retention was already applied
  // above, so the postings cover exactly the retained window and every
  // DocId is live. Scored across the pool like every later tick.
  if (runtime.options_.search_serving != SearchServing::kNone) {
    std::vector<TermId> all(runtime.index_.num_terms());
    for (size_t t = 0; t < all.size(); ++t) all[t] = static_cast<TermId>(t);
    std::vector<std::vector<Posting>> staged = runtime.StageSearchPostings(
        all,
        [&](TermId term) -> const TermPatterns& { return runtime.patterns(term); });
    auto first = std::make_shared<IndexSnapshot>();
    for (size_t i = 0; i < all.size(); ++i) {
      first->index.ReplaceTerm(all[i], std::move(staged[i]));
    }
    first->index.Finalize();
    first->generation = first->index.generation();
    first->window_start = runtime.index_.window_start();
    first->doc_id_base = runtime.collection_.doc_id_base();
    runtime.search_snapshot_.Publish(std::move(first));
    if (runtime.options_.search_cache_entries > 0) {
      runtime.search_cache_ = std::make_unique<QueryResultCache>(
          runtime.options_.search_cache_entries);
    }
  }
  return runtime;
}

StatusOr<FeedTickStats> FeedRuntime::Tick(Snapshot snapshot) {
  // Exactly the phase protocol a coordinator drives, with this runtime as
  // the only participant. Each phase maps its own exceptions, so the error
  // surface is identical to the old monolithic tick.
  STB_ASSIGN_OR_RETURN(TickTransaction tx,
                       PrepareTickIngest(std::move(snapshot)));
  std::vector<TermId> refresh_targets;
  if (options_.refresh_budget > 0) {
    refresh_targets =
        SelectRefreshTargets(RefreshCandidates(tx), options_.refresh_budget);
  }
  const Status staged = StageTickDerived(&tx, std::move(refresh_targets));
  if (!staged.ok()) {
    AbortTick(std::move(tx));
    return staged;
  }
  return CommitTick(std::move(tx));
}

StatusOr<FeedRuntime::TickTransaction> FeedRuntime::PrepareTickIngest(
    Snapshot snapshot) {
  if (wedged_) {
    return Status::FailedPrecondition(
        "runtime wedged by a commit-tail failure; rebuild via Create");
  }
  TickTransaction tx;
  tx.impl_ = std::make_unique<TickTransaction::Impl>();
  const Status status = GuardTickPhase([&] {
    return PrepareIngestGuarded(std::move(snapshot), tx.impl_.get());
  });
  if (!status.ok()) {
    // A prepare failure never reaches the commit tail, so rollback is
    // always possible: the caller gets a clean error and an untouched
    // runtime, with no transaction to dispose of.
    RollbackTick(&tx.impl_->undo);
    return status;
  }
  return tx;
}

Status FeedRuntime::StageTickDerived(TickTransaction* tx,
                                     std::vector<TermId> refresh_targets) {
  return GuardTickPhase([&] {
    return StageDerivedGuarded(tx->impl_.get(), std::move(refresh_targets));
  });
}

StatusOr<FeedTickStats> FeedRuntime::CommitTick(TickTransaction tx) {
  TickTransaction::Impl* impl = tx.impl_.get();
  const Status status =
      GuardTickPhase([&] { return CommitGuarded(impl); });
  if (status.ok()) return std::move(impl->stats);
  if (impl->undo.committing) {
    // Staged state was partially published; there is no pre-tick state left
    // to restore. Refuse all further work instead of serving a mix.
    wedged_ = true;
    return Status::Internal(StringPrintf(
        "commit tail failed (%.*s); runtime wedged — rebuild via Create",
        static_cast<int>(status.message().size()), status.message().data()));
  }
  RollbackTick(&impl->undo);
  return status;
}

void FeedRuntime::AbortTick(TickTransaction tx) {
  if (tx.impl_ == nullptr) return;
  RollbackTick(&tx.impl_->undo);
}

Status ValidateSnapshotDocuments(size_t num_streams, size_t vocabulary_size,
                                 InvalidDocPolicy policy, Snapshot* snapshot,
                                 size_t* rejected) {
  const size_t vocab = vocabulary_size;
  // Duplicate = the same stream re-reporting the same explicit event id
  // within one snapshot. Documents without an event id are never flagged
  // (identical content from a no-id producer is plausible, a repeated event
  // id is by definition the same report twice). NaN / negative frequencies
  // need no check: counts are token multiplicities, structurally
  // non-negative integers (see the validation table in
  // docs/ARCHITECTURE.md).
  std::unordered_set<uint64_t> seen_events;
  auto invalid_reason = [&](const SnapshotDocument& doc) -> const char* {
    if (doc.stream >= num_streams) return "unknown stream id";
    for (TermId term : doc.tokens) {
      // kInvalidTerm is the all-ones sentinel, caught by the range check.
      if (term >= vocab) return "token outside the vocabulary";
    }
    if (doc.event_id != kNoEvent) {
      const uint64_t key = (static_cast<uint64_t>(doc.stream) << 32) |
                           static_cast<uint32_t>(doc.event_id);
      if (!seen_events.insert(key).second) return "duplicate event report";
    }
    return nullptr;
  };

  if (policy == InvalidDocPolicy::kRejectTick) {
    for (size_t i = 0; i < snapshot->size(); ++i) {
      const char* reason = invalid_reason((*snapshot)[i]);
      if (reason != nullptr) {
        return Status::InvalidArgument(
            StringPrintf("snapshot document %zu rejected: %s", i, reason));
      }
    }
    return Status::OK();
  }
  // kDropDocument: quarantine the offenders in place, keep the rest.
  size_t out = 0;
  for (size_t i = 0; i < snapshot->size(); ++i) {
    if (invalid_reason((*snapshot)[i]) == nullptr) {
      if (out != i) (*snapshot)[out] = std::move((*snapshot)[i]);
      ++out;
    }
  }
  *rejected += snapshot->size() - out;
  snapshot->resize(out);
  return Status::OK();
}

Status FeedRuntime::ValidateSnapshot(Snapshot* snapshot,
                                     FeedTickStats* stats) const {
  return ValidateSnapshotDocuments(collection_.num_streams(),
                                   collection_.vocabulary().size(),
                                   options_.on_invalid, snapshot,
                                   &stats->rejected_documents);
}

bool FeedRuntime::TickOverDeadline(const TickTransaction::Impl& tx) const {
  if (options_.tick_deadline_seconds <= 0.0) return false;
  const double elapsed = options_.clock
                             ? options_.clock() - tx.clock_start
                             : tx.timer.ElapsedSeconds();
  return elapsed > options_.tick_deadline_seconds;
}

Status FeedRuntime::PrepareIngestGuarded(Snapshot snapshot,
                                         TickTransaction::Impl* tx) {
  // The deadline clock starts with the tick, before validation — exactly
  // where the monolithic tick started it.
  tx->clock_start = options_.clock ? options_.clock() : 0.0;
  FeedTickUndo* undo = &tx->undo;
  FeedTickStats* stats = &tx->stats;

  // Step 0: validation is pure — a rejected tick never touched the runtime.
  STB_RETURN_NOT_OK(ValidateSnapshot(&snapshot, stats));
  stats->documents = snapshot.size();

  // ---- mutation phase: record undo state before every mutating call ----
  undo->old_timeline = collection_.timeline_length();
  undo->old_num_documents = collection_.num_documents();
  undo->freq_checkpoint = index_.CheckpointBeforeAppend();
  undo->pre_dirty = index_.PendingDirtyTerms();
  undo->pre_dirty_captured = true;

  undo->collection_appended = true;
  STB_ASSIGN_OR_RETURN(stats->time, collection_.Append(std::move(snapshot)));
  undo->index_appended = true;
  STB_RETURN_NOT_OK(index_.AppendSnapshot(collection_, pool_));

  const Timestamp window = options_.retention_window;
  if (window > 0 && collection_.timeline_length() > window) {
    const Timestamp cutoff = collection_.timeline_length() - window;
    if (cutoff > index_.window_start()) {
      undo->collection_evicted = true;
      STB_RETURN_NOT_OK(collection_.EvictBefore(cutoff, &tx->eviction,
                                                &undo->collection_undo));
      undo->freq_evicted = true;
      STB_RETURN_NOT_OK(
          index_.EvictBefore(cutoff, pool_, &undo->freq_undo));
      stats->evicted = true;

      // Tiered history (retention rule 9): the postings the eviction just
      // removed — captured verbatim in the undo log, so the fold costs no
      // extra posting walk — aggregate into the cold tier before they are
      // forgotten. In-memory only here; the kMmap generation publishes in
      // the commit tail. RollbackTick restores the pre-fold tier.
      if (history_ != nullptr) {
        STBURST_FAULT_POINT("history.fold");
        undo->history_folded = true;
        stats->folded_terms = history_->FoldEvicted(
            undo->freq_undo.removed, cutoff, &undo->history_undo);
      }
    }
  }

  // ---- staged dirty re-mine: into buffers, publish nothing ----
  // Terms with appended or evicted postings: their slots are wrong until
  // re-mined. Quiet terms' slots stay exact under the sliding window —
  // their windowed series content is unchanged and timeframes are absolute
  // (the retention contract).
  std::vector<TermId> dirty = index_.TakeDirtyTerms();
  STBURST_FAULT_POINT("runtime.remine");
  STB_ASSIGN_OR_RETURN(
      tx->dirty_todo,
      StageRemineTerms(index_, dirty, options_.miner, &tx->staged_dirty));
  stats->dirty_terms = tx->dirty_todo.size();
  return Status::OK();
}

Status FeedRuntime::StageDerivedGuarded(TickTransaction::Impl* tx,
                                        std::vector<TermId> refresh_targets) {
  FeedTickStats* stats = &tx->stats;
  if (options_.refresh_budget > 0) {
    if (TickOverDeadline(*tx)) {
      // Degradation ladder, step 1: shed the refresh sweep. Pure freshness
      // work — quiet slots just keep their standard staleness drift.
      stats->degraded = true;
    } else {
      STB_ASSIGN_OR_RETURN(
          tx->refresh_todo,
          StageRemineTerms(index_, refresh_targets, options_.miner,
                           &tx->staged_refresh));
    }
  }
  stats->refreshed_terms = tx->refresh_todo.size();

  const std::vector<TermId>& dirty_todo = tx->dirty_todo;
  const std::vector<TermId>& refresh_todo = tx->refresh_todo;
  const bool search = options_.search_serving != SearchServing::kNone;
  const bool rebuild_all =
      search && stats->evicted && !tx->eviction.ids_preserved;
  if (search) {
    // The score set: this tick's re-mined terms, plus any scoring a
    // previous degraded tick deferred — or every term after a renumbering
    // eviction (out-of-order historical ingest; never an Append-driven
    // feed), when every standing DocId went stale at once.
    std::vector<TermId> want;
    if (rebuild_all) {
      want.resize(index_.num_terms());
      for (size_t t = 0; t < want.size(); ++t) {
        want[t] = static_cast<TermId>(t);
      }
    } else {
      want.reserve(dirty_todo.size() + refresh_todo.size() +
                   deferred_search_terms_.size());
      want.insert(want.end(), dirty_todo.begin(), dirty_todo.end());
      want.insert(want.end(), refresh_todo.begin(), refresh_todo.end());
      want.insert(want.end(), deferred_search_terms_.begin(),
                  deferred_search_terms_.end());
      std::sort(want.begin(), want.end());
      want.erase(std::unique(want.begin(), want.end()), want.end());
    }
    if (!rebuild_all && !want.empty() && TickOverDeadline(*tx)) {
      // Degradation ladder, step 2: defer search re-scoring — the terms
      // carry over and the next tick with headroom scores them. Search
      // *eviction* still publishes below (a deferred drop would serve dead
      // DocIds), and a renumbering rebuild is never deferred for the same
      // reason.
      stats->degraded = true;
      tx->deferred_next = std::move(want);
    } else {
      // A term staged this tick scores against its staged slot (its
      // standing slot is still pre-tick); deferred carry-overs score
      // against their standing slot, which their original tick committed.
      const auto slot_for = [&](TermId term) -> const TermPatterns& {
        auto it =
            std::lower_bound(dirty_todo.begin(), dirty_todo.end(), term);
        if (it != dirty_todo.end() && *it == term) {
          return tx->staged_dirty[static_cast<size_t>(it -
                                                      dirty_todo.begin())];
        }
        it = std::lower_bound(refresh_todo.begin(), refresh_todo.end(), term);
        if (it != refresh_todo.end() && *it == term) {
          return tx->staged_refresh[static_cast<size_t>(
              it - refresh_todo.begin())];
        }
        if (term < result_.terms.size()) return result_.terms[term];
        return kEmptyPatterns;
      };
      tx->score_terms = std::move(want);
      tx->staged_postings = StageSearchPostings(tx->score_terms, slot_for);
    }
  }

  // ---- staged snapshot build: the next read-plane generation, entirely
  // off to the side. A private copy of the published index goes through the
  // incremental fast path (Reopen → EvictBefore → ReplaceTerm → Finalize);
  // readers keep loading the current snapshot untouched, and on any failure
  // up to and including the runtime.publish fault point the half-built
  // successor is simply dropped — no undo entry needed.
  tx->touch_search =
      search && (stats->evicted || !tx->score_terms.empty());
  if (tx->touch_search) {
    const std::shared_ptr<const IndexSnapshot> current =
        search_snapshot_.Load();
    tx->next_snapshot = std::make_shared<IndexSnapshot>();
    tx->next_snapshot->index = current->index;
    tx->next_snapshot->index.Reopen();
    if (stats->evicted && tx->eviction.ids_preserved) {
      tx->next_snapshot->index.EvictBefore(tx->eviction.doc_id_base);
    }
    for (size_t i = 0; i < tx->score_terms.size(); ++i) {
      tx->next_snapshot->index.ReplaceTerm(tx->score_terms[i],
                                           std::move(tx->staged_postings[i]));
    }
    // The copy carried the published generation, so this Finalize lands on
    // exactly generation + 1: one bump per editing tick, as before.
    tx->next_snapshot->index.Finalize();
    tx->next_snapshot->generation = tx->next_snapshot->index.generation();
    tx->next_snapshot->window_start = index_.window_start();
    tx->next_snapshot->doc_id_base = collection_.doc_id_base();
    STBURST_FAULT_POINT("runtime.publish");
  }
  return Status::OK();
}

Status FeedRuntime::CommitGuarded(TickTransaction::Impl* tx) {
  FeedTickUndo* undo = &tx->undo;
  FeedTickStats* stats = &tx->stats;
  const std::vector<TermId>& dirty_todo = tx->dirty_todo;
  const std::vector<TermId>& refresh_todo = tx->refresh_todo;

  // Revertible prologue: container growth that can still fail cleanly — a
  // rollback just shrinks back to the recorded sizes (the grown slots are
  // defaults nobody read).
  const size_t num_terms = index_.num_terms();
  const Timestamp now = collection_.timeline_length();
  const Timestamp window_len = index_.window_length();
  undo->bookkeeping_resized = true;
  undo->old_result_terms = result_.terms.size();
  undo->old_bookkeeping_terms = last_mined_.size();
  result_.terms.resize(num_terms);
  for (size_t t = undo->old_result_terms; t < num_terms; ++t) {
    result_.terms[t].term = static_cast<TermId>(t);
  }
  // Vocabulary growth: new terms with postings are in dirty_todo and get
  // stamped below; interned-but-unseen terms carry no mass, so their stamp
  // never matters.
  last_mined_.resize(num_terms, now);
  last_window_.resize(num_terms, window_len);
  mass_.resize(num_terms, 0.0);

  // Point of no return: staged state starts publishing. Everything below
  // is no-throw or allocation-light (moves, in-place stamps, one atomic
  // snapshot swap); a failure past here — in practice only a true OOM
  // inside the bookkeeping moves — wedges the runtime.
  undo->committing = true;

  for (size_t i = 0; i < dirty_todo.size(); ++i) {
    result_.terms[dirty_todo[i]] = std::move(tx->staged_dirty[i]);
  }
  for (size_t i = 0; i < refresh_todo.size(); ++i) {
    result_.terms[refresh_todo[i]] = std::move(tx->staged_refresh[i]);
  }
  size_t mined = 0;
  for (const TermPatterns& slot : result_.terms) mined += slot.mined ? 1 : 0;
  result_.terms_mined = mined;
  result_.terms_skipped = result_.terms.size() - mined;
  result_.threads_used = pool_ != nullptr ? pool_->num_threads() + 1 : 1;

  for (TermId t : dirty_todo) {
    last_mined_[t] = now;
    last_window_[t] = window_len;
    mass_[t] = index_.TotalCount(t);
  }
  for (TermId t : refresh_todo) {
    last_mined_[t] = now;
    last_window_[t] = window_len;
    mass_[t] = index_.TotalCount(t);
  }

  if (tx->touch_search) {
    stats->search_terms = tx->score_terms.size();
    // The publication swap: readers that loaded the old snapshot keep it
    // alive; every later load sees the new generation complete (release
    // store / acquire load pair — see common/published_ptr.h).
    search_snapshot_.Publish(std::move(tx->next_snapshot));
  }
  deferred_search_terms_ = std::move(tx->deferred_next);

  // Cold-tier checkpoint (kMmap): persist the folded generation. Publish
  // failure is deliberately non-wedging — the in-memory tier is already
  // correct and the on-disk file is a checkpoint that lags until the next
  // folding tick retries; a crash meanwhile recovers the last generation
  // that *was* atomically published (see docs/STORAGE.md). The local
  // try/catch keeps even an allocation failure inside Publish from
  // escalating a healthy commit into a wedge.
  if (undo->history_folded && history_ != nullptr && history_->mmap_backed()) {
    try {
      const Status published = history_->Publish();
      if (!published.ok()) {
        STB_LOG(WARNING) << "cold tier publish failed ("
                         << published.ToString()
                         << "); on-disk generation lags until the next "
                            "folding tick";
      }
    } catch (const std::exception& e) {
      STB_LOG(WARNING) << "cold tier publish threw (" << e.what()
                       << "); on-disk generation lags until the next "
                          "folding tick";
    }
  }

  stats->seconds = tx->timer.ElapsedSeconds();
  return Status::OK();
}

void FeedRuntime::RollbackTick(FeedTickUndo* undo) {
  // Reverse order of the tick's mutations. Each rollback is a no-op when
  // its mutation never started (or never got to mutate anything). The
  // search snapshot never appears here: a failed tick's successor was
  // never published, so readers stayed on the old generation throughout.
  if (undo->bookkeeping_resized) {
    result_.terms.resize(undo->old_result_terms);
    last_mined_.resize(undo->old_bookkeeping_terms);
    last_window_.resize(undo->old_bookkeeping_terms);
    mass_.resize(undo->old_bookkeeping_terms);
  }
  if (undo->history_folded && history_ != nullptr) {
    history_->RollbackFold(std::move(undo->history_undo));
  }
  if (undo->freq_evicted) index_.RollbackEvict(std::move(undo->freq_undo));
  if (undo->collection_evicted) {
    collection_.RollbackEvict(std::move(undo->collection_undo));
  }
  if (undo->index_appended) index_.RollbackAppend(undo->freq_checkpoint);
  if (undo->collection_appended) {
    collection_.RollbackAppend(undo->old_timeline, undo->old_num_documents);
  }
  if (undo->pre_dirty_captured) {
    index_.RestoreDirtyTerms(std::move(undo->pre_dirty));
  }
}

std::vector<RefreshCandidate> FeedRuntime::RefreshCandidates(
    const TickTransaction& tx) const {
  // Priority = windowed mass × ticks since last mine: a heavy term drifting
  // for two ticks outranks a light one drifting for ten. mass_ is exact for
  // every quiet term (anything whose postings changed was re-mined and
  // re-stamped this tick), so the scan is O(V) with no posting walks.
  //
  // A quiet term only qualifies while its burstiness normalization actually
  // drifted — the window length changed since its last mine. On a
  // length-preserving steady-state slide its windowed series content and
  // absolute timeframes are unchanged (retention contract), so a re-mine
  // would be a bit-identical no-op; skipping it drains the sweep to zero
  // once the window is full. Sub-threshold terms never qualify either: the
  // miner would skip them anyway, and cycling them through the budget
  // would starve real work.
  const std::vector<TermId>& exclude = tx.impl_->dirty_todo;
  const Timestamp now = collection_.timeline_length();
  const Timestamp window = index_.window_length();
  std::vector<RefreshCandidate> candidates;
  for (TermId t = 0; t < last_mined_.size(); ++t) {
    // The tick's dirty set is being re-mined anyway; spending budget on it
    // would be duplicate work (and before the staged redesign these terms
    // were already stamped fresh by the time the sweep ran).
    if (std::binary_search(exclude.begin(), exclude.end(), t)) continue;
    const Timestamp stale = now - last_mined_[t];
    if (stale <= 0 || mass_[t] <= 0.0) continue;
    if (last_window_[t] == window) continue;
    if (mass_[t] < options_.miner.min_term_total) continue;
    candidates.push_back(
        RefreshCandidate{t, mass_[t] * static_cast<double>(stale)});
  }
  return candidates;
}

std::vector<TermId> FeedRuntime::SelectRefreshTargets(
    std::vector<RefreshCandidate> candidates, size_t budget) {
  budget = std::min(budget, candidates.size());
  // Deterministic order: priority descending, TermId ascending on ties —
  // the sweep must pick the same terms at any thread count (and, merged
  // across shards, the same terms at any shard count).
  std::partial_sort(candidates.begin(),
                    candidates.begin() + static_cast<ptrdiff_t>(budget),
                    candidates.end(),
                    [](const RefreshCandidate& a, const RefreshCandidate& b) {
                      if (a.priority != b.priority) {
                        return a.priority > b.priority;
                      }
                      return a.term < b.term;
                    });
  std::vector<TermId> targets;
  targets.reserve(budget);
  for (size_t i = 0; i < budget; ++i) targets.push_back(candidates[i].term);
  return targets;
}

void FeedRuntime::ScoreSearchTerm(TermId term, const TermPatterns& slot,
                                  std::vector<TermPattern>* scratch,
                                  std::vector<Posting>* out) const {
  scratch->clear();
  if (options_.search_serving == SearchServing::kCombinatorial) {
    for (const CombinatorialPattern& p : slot.combinatorial) {
      scratch->push_back(TermPattern{p.streams, p.timeframe, p.score});
    }
  } else {
    for (const SpatiotemporalWindow& w : slot.regional) {
      scratch->push_back(TermPattern{w.streams, w.timeframe, w.score});
    }
  }
  // TermPattern's overlap test binary-searches the stream list; the
  // miners already emit sorted stream sets, but sort defensively — the
  // lists are tiny and Build (via PatternIndex::Add) does the same.
  for (TermPattern& p : *scratch) {
    std::sort(p.streams.begin(), p.streams.end());
  }
  ScoreTermDocuments(collection_, index_, term, *scratch, out);
}

std::vector<std::vector<Posting>> FeedRuntime::StageSearchPostings(
    const std::vector<TermId>& terms,
    const std::function<const TermPatterns&(TermId)>& slot_for) const {
  // Sharded across the standing pool: per-worker pattern scratch (the
  // calling thread takes the highest worker id), results into
  // index-addressed slots — schedule-independent output at any thread
  // count. Reads only frozen state (collection, frequency index, standing
  // + staged slots), so workers share it without synchronization.
  std::vector<std::vector<Posting>> staged(terms.size());
  const size_t workers = pool_ != nullptr ? pool_->num_threads() + 1 : 1;
  std::vector<std::vector<TermPattern>> scratch(workers);
  ParallelFor(pool_, 0, terms.size(), [&](size_t worker, size_t i) {
    STBURST_FAULT_POINT_THROW("runtime.search_update");
    ScoreSearchTerm(terms[i], slot_for(terms[i]), &scratch[worker],
                    &staged[i]);
  });
  return staged;
}

TopKResult FeedRuntime::Search(const std::string& query, size_t k) const {
  return Search(tokenizer_.TokenizeFrozen(query, collection_.vocabulary()), k);
}

TopKResult FeedRuntime::Search(const std::vector<TermId>& query,
                               size_t k) const {
  STB_CHECK(options_.search_serving != SearchServing::kNone)
      << "Search requires FeedRuntimeOptions::search_serving";
  // One acquire load pins the generation this query answers from; the
  // snapshot stays alive (and bit-identical) through the TA run however
  // many ticks publish meanwhile.
  const std::shared_ptr<const IndexSnapshot> snapshot =
      search_snapshot_.Load();
  if (search_cache_ != nullptr) {
    TopKResult cached;
    if (search_cache_->Lookup(snapshot->generation, query, k, &cached)) {
      return cached;
    }
    TopKResult fresh = ThresholdTopK(snapshot->index, query, k);
    search_cache_->Insert(snapshot->generation, query, k, fresh);
    return fresh;
  }
  return ThresholdTopK(snapshot->index, query, k);
}

const InvertedIndex* FeedRuntime::search_index() const {
  if (options_.search_serving == SearchServing::kNone) return nullptr;
  // The slot's own strong reference keeps the pointee alive past this
  // call's temporary; the pointer stays valid until the next publishing
  // tick (see the header contract).
  return &search_snapshot_.Load()->index;
}

QueryCacheStats FeedRuntime::search_cache_stats() const {
  return search_cache_ != nullptr ? search_cache_->stats() : QueryCacheStats{};
}

const TermPatterns& FeedRuntime::patterns(TermId term) const {
  if (term >= result_.terms.size()) return kEmptyPatterns;
  return result_.terms[term];
}

Timestamp FeedRuntime::staleness(TermId term) const {
  if (term >= last_mined_.size()) return 0;
  return collection_.timeline_length() - last_mined_[term];
}

}  // namespace stburst
