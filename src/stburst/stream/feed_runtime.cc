#include "stburst/stream/feed_runtime.h"

#include <algorithm>
#include <utility>

#include "stburst/common/logging.h"
#include "stburst/common/timer.h"
#include "stburst/index/search_engine.h"

namespace stburst {

namespace {
const TermPatterns kEmptyPatterns;
}  // namespace

FeedRuntime::FeedRuntime(Collection collection, FeedRuntimeOptions options)
    : options_(std::move(options)), collection_(std::move(collection)) {
  const size_t threads = ResolveThreadCount(options_.num_threads);
  // The calling thread participates in every ParallelFor, so threads - 1
  // pool workers give the requested parallelism; serial runtimes hold no
  // pool at all (ParallelFor(nullptr, ...) runs inline).
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads - 1);
  // The miner always runs on the standing pool (or inline when serial);
  // a caller-supplied transient-pool configuration would reintroduce the
  // per-tick spawn/join this runtime exists to remove.
  options_.miner.pool = pool_.get();
  options_.miner.num_threads = 1;
}

StatusOr<FeedRuntime> FeedRuntime::Create(Collection collection,
                                          FeedRuntimeOptions options) {
  if (options.retention_window < 0) {
    return Status::InvalidArgument("retention window must be non-negative");
  }
  // A search index over a pattern type the miner never produces would
  // silently serve zero results forever.
  if (options.search_serving == SearchServing::kCombinatorial &&
      !options.miner.mine_combinatorial) {
    return Status::InvalidArgument(
        "search_serving = kCombinatorial requires miner.mine_combinatorial");
  }
  if (options.search_serving == SearchServing::kRegional &&
      !options.miner.mine_regional) {
    return Status::InvalidArgument(
        "search_serving = kRegional requires miner.mine_regional");
  }
  FeedRuntime runtime(std::move(collection), std::move(options));

  // Apply retention to the history before the initial sweep, so the sweep
  // mines exactly the retained window (and pays only for it).
  const Timestamp window = runtime.options_.retention_window;
  if (window > 0 && runtime.collection_.timeline_length() > window) {
    STB_RETURN_NOT_OK(runtime.collection_.EvictBefore(
        runtime.collection_.timeline_length() - window));
  }

  // Stream positions are fixed for the runtime's lifetime, so the regional
  // miners' cell geometry is too: build it once and lend it to every
  // (re-)mine below. Heap-owned so the pointer survives moves of `runtime`.
  if (runtime.options_.miner.mine_regional &&
      runtime.options_.miner.binning == nullptr) {
    STB_ASSIGN_OR_RETURN(
        SpatialBinning binning,
        SpatialBinning::Create(runtime.options_.miner.positions,
                               runtime.options_.miner.stlocal.rbursty.rect));
    runtime.binning_ = std::make_unique<SpatialBinning>(std::move(binning));
    runtime.options_.miner.binning = runtime.binning_.get();
  }

  runtime.index_ = FrequencyIndex::BuildWithPool(runtime.collection_,
                                                 runtime.pool_.get());
  STB_ASSIGN_OR_RETURN(runtime.result_,
                       MineAllTerms(runtime.index_, runtime.options_.miner));

  const Timestamp now = runtime.collection_.timeline_length();
  runtime.last_mined_.assign(runtime.index_.num_terms(), now);
  runtime.last_window_.assign(runtime.index_.num_terms(),
                              runtime.index_.window_length());
  runtime.mass_.resize(runtime.index_.num_terms());
  for (TermId t = 0; t < runtime.index_.num_terms(); ++t) {
    runtime.mass_[t] = runtime.index_.TotalCount(t);
  }

  // Initial search build: retention was already applied above, so the index
  // covers exactly the retained window and every DocId it holds is live.
  if (runtime.options_.search_serving != SearchServing::kNone) {
    runtime.RebuildSearchIndex();
    runtime.search_index_.Finalize();
  }
  return runtime;
}

StatusOr<FeedTickStats> FeedRuntime::Tick(Snapshot snapshot) {
  Timer timer;
  FeedTickStats stats;
  stats.documents = snapshot.size();

  STB_ASSIGN_OR_RETURN(stats.time, collection_.Append(std::move(snapshot)));
  STB_RETURN_NOT_OK(index_.AppendSnapshot(collection_, pool_.get()));

  const Timestamp window = options_.retention_window;
  EvictionReport eviction;
  if (window > 0 && collection_.timeline_length() > window) {
    const Timestamp cutoff = collection_.timeline_length() - window;
    if (cutoff > index_.window_start()) {
      STB_RETURN_NOT_OK(collection_.EvictBefore(cutoff, &eviction));
      STB_RETURN_NOT_OK(index_.EvictBefore(cutoff, pool_.get()));
      stats.evicted = true;
    }
  }

  // Terms with appended or evicted postings: their slots are wrong until
  // re-mined. Quiet terms' slots stay exact under the sliding window —
  // their windowed series content is unchanged and timeframes are absolute
  // (the retention contract).
  std::vector<TermId> dirty = index_.TakeDirtyTerms();
  stats.dirty_terms = dirty.size();
  STB_RETURN_NOT_OK(Remine(dirty));

  std::vector<TermId> refreshed;
  if (options_.refresh_budget > 0) {
    refreshed = PickRefreshTargets();
    stats.refreshed_terms = refreshed.size();
    STB_RETURN_NOT_OK(Remine(refreshed));
  }

  // Search maintenance: one Reopen→edit→Finalize cycle per editing tick —
  // evicted documents leave in place (their terms lost postings and are
  // re-derived below anyway; the in-place drop keeps the index structurally
  // free of dead DocIds whatever the dirty bookkeeping says), then exactly
  // the re-mined slots are re-scored. Quiet terms' postings stay exact:
  // their docs, frequencies, and standing patterns are all unchanged. A
  // tick with nothing to edit skips the cycle entirely, so generation()
  // moves only when the index could have changed (the documented cache-
  // invalidation contract).
  if (options_.search_serving != SearchServing::kNone &&
      (stats.evicted || !dirty.empty() || !refreshed.empty())) {
    search_index_.Reopen();
    bool rebuilt_all = false;
    if (stats.evicted) {
      if (eviction.ids_preserved) {
        search_index_.EvictBefore(eviction.doc_id_base);
      } else {
        // Out-of-order historical ingest: survivors were renumbered, so
        // every DocId in the search index is stale. Never reached on an
        // Append-driven feed. The rebuild runs after Remine, so it scores
        // every term — including the dirty and refreshed ones — against
        // its current slot; re-deriving them again below would be pure
        // duplicate work.
        RebuildSearchIndex();
        rebuilt_all = true;
      }
    }
    if (!rebuilt_all) {
      for (TermId t : dirty) UpdateSearchTerm(t);
      for (TermId t : refreshed) UpdateSearchTerm(t);
    }
    stats.search_terms =
        rebuilt_all ? index_.num_terms() : dirty.size() + refreshed.size();
    search_index_.Finalize();
  }

  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

Status FeedRuntime::Remine(const std::vector<TermId>& terms) {
  STB_RETURN_NOT_OK(RemineTerms(index_, terms, options_.miner, &result_));
  const Timestamp now = collection_.timeline_length();
  if (last_mined_.size() < index_.num_terms()) {
    // Vocabulary grew this tick. New terms with postings are in `terms`
    // (AppendSnapshot marked them dirty) and get stamped below; interned-
    // but-unseen terms carry no mass, so their stamp never matters.
    last_mined_.resize(index_.num_terms(), now);
    last_window_.resize(index_.num_terms(), index_.window_length());
    mass_.resize(index_.num_terms(), 0.0);
  }
  for (TermId t : terms) {
    last_mined_[t] = now;
    last_window_[t] = index_.window_length();
    mass_[t] = index_.TotalCount(t);
  }
  return Status::OK();
}

std::vector<TermId> FeedRuntime::PickRefreshTargets() const {
  // Priority = windowed mass × ticks since last mine: a heavy term drifting
  // for two ticks outranks a light one drifting for ten. mass_ is exact for
  // every quiet term (anything whose postings changed was re-mined and
  // re-stamped this tick), so the scan is O(V) with no posting walks.
  //
  // A quiet term only qualifies while its burstiness normalization actually
  // drifted — the window length changed since its last mine. On a
  // length-preserving steady-state slide its windowed series content and
  // absolute timeframes are unchanged (retention contract), so a re-mine
  // would be a bit-identical no-op; skipping it drains the sweep to zero
  // once the window is full. Sub-threshold terms never qualify either: the
  // miner would skip them anyway, and cycling them through the budget
  // would starve real work.
  const Timestamp now = collection_.timeline_length();
  const Timestamp window = index_.window_length();
  std::vector<std::pair<double, TermId>> candidates;
  for (TermId t = 0; t < last_mined_.size(); ++t) {
    const Timestamp stale = now - last_mined_[t];
    if (stale <= 0 || mass_[t] <= 0.0) continue;
    if (last_window_[t] == window) continue;
    if (mass_[t] < options_.miner.min_term_total) continue;
    candidates.emplace_back(mass_[t] * static_cast<double>(stale), t);
  }
  const size_t budget = std::min(options_.refresh_budget, candidates.size());
  // Deterministic order: priority descending, TermId ascending on ties —
  // the sweep must pick the same terms at any thread count.
  std::partial_sort(candidates.begin(),
                    candidates.begin() + static_cast<ptrdiff_t>(budget),
                    candidates.end(),
                    [](const std::pair<double, TermId>& a,
                       const std::pair<double, TermId>& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<TermId> targets;
  targets.reserve(budget);
  for (size_t i = 0; i < budget; ++i) targets.push_back(candidates[i].second);
  return targets;
}

void FeedRuntime::UpdateSearchTerm(TermId term) {
  search_index_.ClearTerm(term);
  term_patterns_scratch_.clear();
  if (term < result_.terms.size()) {
    const TermPatterns& slot = result_.terms[term];
    if (options_.search_serving == SearchServing::kCombinatorial) {
      for (const CombinatorialPattern& p : slot.combinatorial) {
        term_patterns_scratch_.push_back(
            TermPattern{p.streams, p.timeframe, p.score});
      }
    } else {
      for (const SpatiotemporalWindow& w : slot.regional) {
        term_patterns_scratch_.push_back(
            TermPattern{w.streams, w.timeframe, w.score});
      }
    }
    // TermPattern's overlap test binary-searches the stream list; the
    // miners already emit sorted stream sets, but sort defensively — the
    // lists are tiny and Build (via PatternIndex::Add) does the same.
    for (TermPattern& p : term_patterns_scratch_) {
      std::sort(p.streams.begin(), p.streams.end());
    }
  }
  IndexTermDocuments(collection_, index_, term, term_patterns_scratch_,
                     &search_index_);
}

void FeedRuntime::RebuildSearchIndex() {
  for (TermId t = 0; t < index_.num_terms(); ++t) UpdateSearchTerm(t);
}

TopKResult FeedRuntime::Search(const std::string& query, size_t k) const {
  return Search(tokenizer_.TokenizeFrozen(query, collection_.vocabulary()), k);
}

TopKResult FeedRuntime::Search(const std::vector<TermId>& query,
                               size_t k) const {
  STB_CHECK(options_.search_serving != SearchServing::kNone)
      << "Search requires FeedRuntimeOptions::search_serving";
  return ThresholdTopK(search_index_, query, k);
}

const TermPatterns& FeedRuntime::patterns(TermId term) const {
  if (term >= result_.terms.size()) return kEmptyPatterns;
  return result_.terms[term];
}

Timestamp FeedRuntime::staleness(TermId term) const {
  if (term >= last_mined_.size()) return 0;
  return collection_.timeline_length() - last_mined_[term];
}

}  // namespace stburst
