// The spatiotemporal collection D = {D1[.], ..., Dn[.]} (paper §2): a set of
// geo-stamped document streams over a shared discrete timeline.

#ifndef STBURST_STREAM_COLLECTION_H_
#define STBURST_STREAM_COLLECTION_H_

#include <string>
#include <vector>

#include "stburst/common/statusor.h"
#include "stburst/geo/point.h"
#include "stburst/stream/document.h"
#include "stburst/stream/types.h"
#include "stburst/stream/vocabulary.h"

namespace stburst {

/// Static description of one document stream: a named source fixed at a
/// geographic location (its geostamp) with a planar projection used by the
/// regional algorithms.
struct StreamInfo {
  StreamId id = kInvalidStream;
  std::string name;
  GeoPoint geo;
  Point2D position;  // planar location (e.g. the MDS embedding)
};

/// One document of an incoming snapshot, before it has a timestamp: the
/// stream that reported it and its interned tokens. Append() stamps it with
/// the new timestamp and assigns its DocId.
struct SnapshotDocument {
  StreamId stream = kInvalidStream;
  std::vector<TermId> tokens;
  int32_t event_id = kNoEvent;
};

/// Everything one timeline tick delivers: the documents reported by all
/// streams during the new timestamp. Streams absent from the snapshot simply
/// reported nothing.
using Snapshot = std::vector<SnapshotDocument>;

/// Captured pre-eviction state that RollbackEvict uses to undo one
/// EvictBefore exactly — the collection-level half of FeedRuntime's
/// transactional tick (docs/ARCHITECTURE.md, failure contract). On the
/// time-ordered fast path this holds just the copied evicted prefix
/// (O(evicted) capture); on the renumbering path it holds a full deep copy
/// of the pre-eviction document state (O(retained) — never reached by an
/// Append-driven feed). Capture strictly precedes mutation, so an
/// EvictBefore that throws mid-capture leaves the collection untouched and
/// `applied` false. Restore consumes the undo.
struct CollectionEvictUndo {
  Timestamp window_start = 0;
  DocId doc_id_base = 0;
  bool full_copy = false;
  /// False until the eviction actually started mutating the collection;
  /// RollbackEvict of an unapplied undo is a no-op.
  bool applied = false;
  /// Fast path: the evicted documents, in their original order. Full-copy
  /// path: every pre-eviction document.
  std::vector<Document> documents;
  /// The evicted docs_at_ prefix cells per stream (fast path), or the full
  /// pre-eviction per-stream tables (full-copy path).
  std::vector<std::vector<std::vector<DocId>>> docs_at;
};

/// How one Collection::EvictBefore changed the DocId space — the contract
/// DocId-keyed consumers (search indexes) use to follow an eviction
/// incrementally instead of rebuilding (see docs/ARCHITECTURE.md, retention
/// rule 4).
struct EvictionReport {
  /// The new window_start(): first retained timestamp.
  Timestamp cutoff = 0;
  /// Documents dropped by this eviction (0 for a no-op cutoff).
  size_t evicted_documents = 0;
  /// The new doc_id_base(): live ids are [doc_id_base, doc_id_base +
  /// num_documents()).
  DocId doc_id_base = 0;
  /// True when the evicted documents were exactly the id-prefix
  /// [old base, new base) and every surviving document kept its id — the
  /// time-ordered fast path every Append-driven feed takes. A DocId-keyed
  /// index then only drops entries with doc < doc_id_base, in place
  /// (InvertedIndex::EvictBefore). False means survivors were renumbered
  /// densely (out-of-order historical ingest): previously handed-out ids
  /// are meaningless and DocId-keyed state must rebuild.
  bool ids_preserved = false;
};

/// A spatiotemporal collection: streams, an interned vocabulary, and the
/// documents each stream reported per timestamp. Timestamps are 0-based; the
/// timeline starts at the length given to Create() and grows one timestamp
/// per Append() — the live-feed ingest path (docs/ARCHITECTURE.md).
///
/// Retention: a long-running feed bounds its memory by evicting timestamps
/// older than a retention window (EvictBefore). The retained range is
/// [window_start(), timeline_length()); timestamps stay absolute, so
/// evicting never renumbers the timeline, but DocIds of evicted documents
/// become invalid and surviving documents are renumbered densely — eviction
/// invalidates any external DocId-keyed state (see docs/ARCHITECTURE.md,
/// retention/eviction contract).
///
/// Thread-safety: none. All mutators (AddStream, AddDocument, Append,
/// EvictBefore, vocabulary interning) require external exclusion against
/// readers; the sharded FrequencyIndex::Build reads concurrently from worker
/// threads and relies on the collection being quiescent during the scan.
class Collection {
 public:
  /// Creates a collection over `timeline_length` timestamps (must be > 0).
  static StatusOr<Collection> Create(Timestamp timeline_length);

  /// Registers a stream; returns its dense id.
  StreamId AddStream(std::string name, GeoPoint geo, Point2D position);

  /// Recomputes every stream's planar position from its geostamp via
  /// classical MDS over haversine distances (the paper's §6.1 pipeline).
  Status ProjectStreamsWithMds();

  /// Appends a document. Validates stream id and timestamp; assigns and
  /// returns the document's dense id.
  StatusOr<DocId> AddDocument(StreamId stream, Timestamp time,
                              std::vector<TermId> tokens,
                              int32_t event_id = kNoEvent);

  /// Extends the timeline by one timestamp and files the snapshot's
  /// documents under it, in snapshot order. Validation is all-or-nothing:
  /// if any document names an unknown stream, nothing is appended and
  /// InvalidArgument is returned. Returns the new timestamp on success.
  /// After a successful Append, FrequencyIndex::AppendSnapshot catches the
  /// index up without a rebuild. O(snapshot tokens + num_streams).
  StatusOr<Timestamp> Append(Snapshot snapshot);

  /// Undoes the most recent Append(s): drops every document filed at
  /// timestamps >= `old_timeline_length` and shrinks the timeline back.
  /// Also cleans up a *partially applied* Append (one that died mid-push on
  /// an allocation failure), which is what makes Append + RollbackAppend an
  /// all-or-nothing pair for FeedRuntime's transactional tick.
  /// `old_num_documents` is num_documents() from before the Append;
  /// requires old_timeline_length in [window_start(), timeline_length()].
  /// No-throw; O(dropped documents + streams · dropped timestamps).
  void RollbackAppend(Timestamp old_timeline_length, size_t old_num_documents);

  /// Drops every document (and per-stream slot) of timestamps before
  /// `cutoff`, advancing window_start(). On the time-ordered fast path
  /// (Append-driven feeds) surviving documents keep their ids; otherwise
  /// survivors are renumbered densely starting at doc_id_base() — their
  /// relative order is preserved, but previously handed-out DocIds are
  /// invalidated. `report`, when non-null, receives which of the two
  /// happened so DocId-keyed consumers (search indexes) can follow the
  /// eviction in place instead of rebuilding. The vocabulary and streams
  /// are never evicted. cutoff <= window_start() is a no-op (reported as
  /// zero evictions with ids preserved); cutoff beyond the timeline is
  /// OutOfRange with the collection untouched and the report still coherent
  /// (a defined no-op, not caller-discipline UB). Both paths move
  /// O(retained documents + streams · window) elements; the fast path
  /// additionally skips the renumbering pass and the per-document docs_at_
  /// re-filing.
  ///
  /// `undo`, when non-null, captures everything RollbackEvict needs to
  /// restore the pre-eviction state exactly — an O(evicted) copy of the
  /// evicted prefix on the fast path, a full pre-eviction copy on the
  /// renumbering path. Capture completes before any mutation, so a failure
  /// at any point leaves either an untouched collection (undo unapplied) or
  /// a restorable one.
  Status EvictBefore(Timestamp cutoff, EvictionReport* report = nullptr,
                     CollectionEvictUndo* undo = nullptr);

  /// Restores the state captured by the matching EvictBefore, consuming the
  /// undo. Must be applied to the collection exactly as that eviction (or
  /// its mid-flight failure) left it — no interleaved mutations. A no-op
  /// when the eviction never started mutating. No-throw given the undo's
  /// buffers.
  void RollbackEvict(CollectionEvictUndo&& undo);

  /// First retained timestamp: 0 until EvictBefore advances it. Documents
  /// and DocumentsAt() exist only for times in
  /// [window_start(), timeline_length()).
  Timestamp window_start() const { return window_start_; }

  /// Ids of live documents are [doc_id_base(), doc_id_base() +
  /// num_documents()); eviction advances the base.
  DocId doc_id_base() const { return doc_id_base_; }

  /// Mutable vocabulary for tokenization during ingest.
  Vocabulary* mutable_vocabulary() { return &vocabulary_; }
  const Vocabulary& vocabulary() const { return vocabulary_; }

  Timestamp timeline_length() const { return timeline_length_; }
  size_t num_streams() const { return streams_.size(); }
  size_t num_documents() const { return documents_.size(); }

  const StreamInfo& stream(StreamId id) const;
  const std::vector<StreamInfo>& streams() const { return streams_; }
  /// Requires id in [doc_id_base(), doc_id_base() + num_documents()).
  const Document& document(DocId id) const;
  /// The retained documents, positionally indexed (documents()[i] has
  /// DocId doc_id_base() + i).
  const std::vector<Document>& documents() const { return documents_; }

  /// Planar positions of all streams, indexed by StreamId.
  std::vector<Point2D> StreamPositions() const;

  /// Ids of documents reported by `stream` at `time` (Dx[i] in the paper).
  const std::vector<DocId>& DocumentsAt(StreamId stream, Timestamp time) const;

 private:
  explicit Collection(Timestamp timeline_length);

  Timestamp timeline_length_;
  Timestamp window_start_ = 0;  // first retained timestamp
  DocId doc_id_base_ = 0;       // id of documents_[0]
  // documents_ is in nondecreasing time order (true for Append-driven feeds
  // and in-order historical ingest) — enables the O(evicted) prefix-erase
  // eviction fast path; cleared by an out-of-order AddDocument.
  bool docs_time_ordered_ = true;
  Vocabulary vocabulary_;
  std::vector<StreamInfo> streams_;
  std::vector<Document> documents_;  // retained docs; id = doc_id_base_ + pos
  // per-stream, per-retained-timestamp document id lists; indexed
  // [stream][time - window_start_]
  std::vector<std::vector<std::vector<DocId>>> docs_at_;
};

}  // namespace stburst

#endif  // STBURST_STREAM_COLLECTION_H_
