#include "stburst/stream/collection.h"

#include "stburst/common/logging.h"
#include "stburst/common/string_util.h"
#include "stburst/geo/mds.h"

namespace stburst {

StatusOr<Collection> Collection::Create(Timestamp timeline_length) {
  if (timeline_length <= 0) {
    return Status::InvalidArgument("timeline length must be positive");
  }
  return Collection(timeline_length);
}

Collection::Collection(Timestamp timeline_length)
    : timeline_length_(timeline_length) {}

StreamId Collection::AddStream(std::string name, GeoPoint geo, Point2D position) {
  StreamId id = static_cast<StreamId>(streams_.size());
  streams_.push_back(StreamInfo{id, std::move(name), geo, position});
  docs_at_.emplace_back(static_cast<size_t>(timeline_length_));
  return id;
}

Status Collection::ProjectStreamsWithMds() {
  if (streams_.empty()) {
    return Status::FailedPrecondition("no streams to project");
  }
  std::vector<GeoPoint> geos;
  geos.reserve(streams_.size());
  for (const StreamInfo& s : streams_) geos.push_back(s.geo);
  STB_ASSIGN_OR_RETURN(std::vector<Point2D> projected, ProjectGeoPoints(geos));
  for (size_t i = 0; i < streams_.size(); ++i) {
    streams_[i].position = projected[i];
  }
  return Status::OK();
}

StatusOr<DocId> Collection::AddDocument(StreamId stream, Timestamp time,
                                        std::vector<TermId> tokens,
                                        int32_t event_id) {
  if (stream >= streams_.size()) {
    return Status::InvalidArgument(
        StringPrintf("unknown stream id %u", stream));
  }
  if (time < 0 || time >= timeline_length_) {
    return Status::OutOfRange(
        StringPrintf("timestamp %d outside [0, %d)", time, timeline_length_));
  }
  DocId id = static_cast<DocId>(documents_.size());
  documents_.push_back(Document{id, stream, time, std::move(tokens), event_id});
  docs_at_[stream][static_cast<size_t>(time)].push_back(id);
  return id;
}

StatusOr<Timestamp> Collection::Append(Snapshot snapshot) {
  for (const SnapshotDocument& doc : snapshot) {
    if (doc.stream >= streams_.size()) {
      return Status::InvalidArgument(
          StringPrintf("unknown stream id %u in snapshot", doc.stream));
    }
  }
  const Timestamp time = timeline_length_;
  ++timeline_length_;
  for (auto& per_stream : docs_at_) per_stream.emplace_back();
  for (SnapshotDocument& doc : snapshot) {
    DocId id = static_cast<DocId>(documents_.size());
    docs_at_[doc.stream].back().push_back(id);
    documents_.push_back(
        Document{id, doc.stream, time, std::move(doc.tokens), doc.event_id});
  }
  return time;
}

const StreamInfo& Collection::stream(StreamId id) const {
  STB_CHECK(id < streams_.size()) << "invalid StreamId " << id;
  return streams_[id];
}

const Document& Collection::document(DocId id) const {
  STB_CHECK(id < documents_.size()) << "invalid DocId " << id;
  return documents_[id];
}

std::vector<Point2D> Collection::StreamPositions() const {
  std::vector<Point2D> out;
  out.reserve(streams_.size());
  for (const StreamInfo& s : streams_) out.push_back(s.position);
  return out;
}

const std::vector<DocId>& Collection::DocumentsAt(StreamId stream,
                                                  Timestamp time) const {
  STB_CHECK(stream < streams_.size()) << "invalid StreamId " << stream;
  STB_CHECK(time >= 0 && time < timeline_length_) << "invalid time " << time;
  return docs_at_[stream][static_cast<size_t>(time)];
}

}  // namespace stburst
