#include "stburst/stream/collection.h"

#include <algorithm>

#include "stburst/common/fault_injection.h"
#include "stburst/common/logging.h"
#include "stburst/common/string_util.h"
#include "stburst/geo/mds.h"

namespace stburst {

StatusOr<Collection> Collection::Create(Timestamp timeline_length) {
  if (timeline_length <= 0) {
    return Status::InvalidArgument("timeline length must be positive");
  }
  return Collection(timeline_length);
}

Collection::Collection(Timestamp timeline_length)
    : timeline_length_(timeline_length) {}

StreamId Collection::AddStream(std::string name, GeoPoint geo, Point2D position) {
  StreamId id = static_cast<StreamId>(streams_.size());
  streams_.push_back(StreamInfo{id, std::move(name), geo, position});
  docs_at_.emplace_back(static_cast<size_t>(timeline_length_ - window_start_));
  return id;
}

Status Collection::ProjectStreamsWithMds() {
  if (streams_.empty()) {
    return Status::FailedPrecondition("no streams to project");
  }
  std::vector<GeoPoint> geos;
  geos.reserve(streams_.size());
  for (const StreamInfo& s : streams_) geos.push_back(s.geo);
  STB_ASSIGN_OR_RETURN(std::vector<Point2D> projected, ProjectGeoPoints(geos));
  for (size_t i = 0; i < streams_.size(); ++i) {
    streams_[i].position = projected[i];
  }
  return Status::OK();
}

StatusOr<DocId> Collection::AddDocument(StreamId stream, Timestamp time,
                                        std::vector<TermId> tokens,
                                        int32_t event_id) {
  if (stream >= streams_.size()) {
    return Status::InvalidArgument(
        StringPrintf("unknown stream id %u", stream));
  }
  if (time < window_start_ || time >= timeline_length_) {
    return Status::OutOfRange(
        StringPrintf("timestamp %d outside retained window [%d, %d)", time,
                     window_start_, timeline_length_));
  }
  DocId id = doc_id_base_ + static_cast<DocId>(documents_.size());
  if (!documents_.empty() && time < documents_.back().time) {
    docs_time_ordered_ = false;
  }
  documents_.push_back(Document{id, stream, time, std::move(tokens), event_id});
  docs_at_[stream][static_cast<size_t>(time - window_start_)].push_back(id);
  return id;
}

StatusOr<Timestamp> Collection::Append(Snapshot snapshot) {
  for (const SnapshotDocument& doc : snapshot) {
    if (doc.stream >= streams_.size()) {
      return Status::InvalidArgument(
          StringPrintf("unknown stream id %u in snapshot", doc.stream));
    }
  }
  STBURST_FAULT_POINT("collection.append");
  const Timestamp time = timeline_length_;
  ++timeline_length_;
  for (auto& per_stream : docs_at_) per_stream.emplace_back();
  for (SnapshotDocument& doc : snapshot) {
    DocId id = doc_id_base_ + static_cast<DocId>(documents_.size());
    docs_at_[doc.stream].back().push_back(id);
    documents_.push_back(
        Document{id, doc.stream, time, std::move(doc.tokens), doc.event_id});
  }
  return time;
}

void Collection::RollbackAppend(Timestamp old_timeline_length,
                                size_t old_num_documents) {
  STB_CHECK(old_timeline_length >= window_start_ &&
            old_timeline_length <= timeline_length_)
      << "rollback target " << old_timeline_length
      << " outside retained timeline";
  STB_CHECK(old_num_documents <= documents_.size())
      << "rollback target document count exceeds current count";
  // Drop the appended documents. Append files new documents strictly at the
  // tail (new timestamps only), so a suffix resize undoes them; this also
  // cleans a partially applied Append that died mid-push, because every
  // document it managed to push is in that suffix.
  documents_.resize(old_num_documents);
  // Append files ids only into the per-stream cell it just emplaced, so
  // dropping the trailing cells removes every filed id and leaves the
  // surviving cells untouched even after a partial Append.
  const size_t old_cells = static_cast<size_t>(old_timeline_length -
                                               window_start_);
  for (auto& per_stream : docs_at_) {
    if (per_stream.size() > old_cells) per_stream.resize(old_cells);
  }
  timeline_length_ = old_timeline_length;
  // Appends never break time order; if it was set before, a rollback cannot
  // have restored it, so docs_time_ordered_ is left as-is.
}

Status Collection::EvictBefore(Timestamp cutoff, EvictionReport* report,
                               CollectionEvictUndo* undo) {
  if (report != nullptr) {
    // Filled for the no-op and error paths too, so a caller can always read
    // a coherent "nothing moved" report.
    report->cutoff = window_start_;
    report->evicted_documents = 0;
    report->doc_id_base = doc_id_base_;
    report->ids_preserved = true;
  }
  if (cutoff <= window_start_) return Status::OK();
  if (cutoff > timeline_length_) {
    return Status::OutOfRange(
        StringPrintf("eviction cutoff %d beyond timeline %d", cutoff,
                     timeline_length_));
  }
  const size_t docs_before = documents_.size();
  const size_t drop = static_cast<size_t>(cutoff - window_start_);
  const bool prefix_evictable = docs_time_ordered_;
  // Fast path: the evicted documents are exactly the time-ordered prefix.
  const auto split =
      prefix_evictable
          ? std::partition_point(
                documents_.begin(), documents_.end(),
                [cutoff](const Document& d) { return d.time < cutoff; })
          : documents_.begin();
  if (undo != nullptr) {
    // Populate the restore header before anything can fail (including the
    // fault point below), so RollbackEvict of a never-started eviction is a
    // clean no-op rather than a restore from a default-constructed undo.
    undo->window_start = window_start_;
    undo->doc_id_base = doc_id_base_;
    undo->full_copy = !prefix_evictable;
    undo->applied = false;
    undo->documents.clear();
    undo->docs_at.clear();
  }
  STBURST_FAULT_POINT("collection.evict");
  if (undo != nullptr) {
    // Capture strictly precedes mutation: every allocation the undo needs
    // happens here, so an allocation failure during capture leaves the
    // collection untouched (and the undo unapplied). Copies, not moves —
    // a half-taken move would be a mutation.
    if (prefix_evictable) {
      undo->documents.assign(documents_.begin(), split);
      undo->docs_at.reserve(docs_at_.size());
      for (const auto& per_stream : docs_at_) {
        undo->docs_at.emplace_back(
            per_stream.begin(),
            per_stream.begin() + static_cast<ptrdiff_t>(drop));
      }
    } else {
      // Renumbering rewrites every surviving document and re-files every
      // docs_at_ cell, so the only exact undo is a full pre-eviction copy.
      undo->documents = documents_;
      undo->docs_at = docs_at_;
    }
    undo->applied = true;
  }
  if (prefix_evictable) {
    // Fast path for the steady-state feed (documents filed in nondecreasing
    // time order): a prefix erase keeps every surviving id satisfying
    // id == doc_id_base_ + position with no renumbering and no docs_at_
    // re-filing — O(evicted + log docs) document work per tick instead of
    // O(retained).
    doc_id_base_ += static_cast<DocId>(split - documents_.begin());
    documents_.erase(documents_.begin(), split);
  } else {
    // General path (historical AddDocument calls out of time order): keep
    // survivors in their original relative order and renumber them densely
    // from the advanced base. Iterating documents_ in order during the
    // re-file below preserves each cell's original filing order, which is
    // what keeps FrequencyIndex::Build over an evicted collection
    // deterministic.
    std::vector<Document> kept;
    kept.reserve(documents_.size());
    for (Document& doc : documents_) {
      if (doc.time >= cutoff) kept.push_back(std::move(doc));
    }
    doc_id_base_ += static_cast<DocId>(documents_.size() - kept.size());
    documents_ = std::move(kept);
    for (size_t i = 0; i < documents_.size(); ++i) {
      documents_[i].id = doc_id_base_ + static_cast<DocId>(i);
    }
  }

  for (auto& per_stream : docs_at_) {
    per_stream.erase(per_stream.begin(),
                     per_stream.begin() + static_cast<ptrdiff_t>(drop));
    if (!prefix_evictable) {
      for (auto& cell : per_stream) cell.clear();
    }
  }
  window_start_ = cutoff;
  if (!prefix_evictable) {
    for (const Document& doc : documents_) {
      docs_at_[doc.stream][static_cast<size_t>(doc.time - window_start_)]
          .push_back(doc.id);
    }
  }
  if (report != nullptr) {
    report->cutoff = window_start_;
    report->evicted_documents = docs_before - documents_.size();
    report->doc_id_base = doc_id_base_;
    report->ids_preserved = prefix_evictable;
  }
  return Status::OK();
}

void Collection::RollbackEvict(CollectionEvictUndo&& undo) {
  if (!undo.applied) return;  // the eviction never mutated anything
  if (undo.full_copy) {
    documents_ = std::move(undo.documents);
    docs_at_ = std::move(undo.docs_at);
  } else {
    // Re-prepend the evicted prefix. The post-eviction vectors kept their
    // pre-eviction capacity (erase never shrinks), so these inserts stay
    // within capacity and only move elements — no allocation, no throw.
    documents_.insert(documents_.begin(),
                      std::make_move_iterator(undo.documents.begin()),
                      std::make_move_iterator(undo.documents.end()));
    STB_CHECK(undo.docs_at.size() == docs_at_.size())
        << "eviction undo captured a different stream set";
    for (size_t s = 0; s < docs_at_.size(); ++s) {
      docs_at_[s].insert(docs_at_[s].begin(),
                         std::make_move_iterator(undo.docs_at[s].begin()),
                         std::make_move_iterator(undo.docs_at[s].end()));
    }
  }
  window_start_ = undo.window_start;
  doc_id_base_ = undo.doc_id_base;
}

const StreamInfo& Collection::stream(StreamId id) const {
  STB_CHECK(id < streams_.size()) << "invalid StreamId " << id;
  return streams_[id];
}

const Document& Collection::document(DocId id) const {
  STB_CHECK(id >= doc_id_base_ &&
            id - doc_id_base_ < documents_.size())
      << "invalid or evicted DocId " << id;
  return documents_[id - doc_id_base_];
}

std::vector<Point2D> Collection::StreamPositions() const {
  std::vector<Point2D> out;
  out.reserve(streams_.size());
  for (const StreamInfo& s : streams_) out.push_back(s.position);
  return out;
}

const std::vector<DocId>& Collection::DocumentsAt(StreamId stream,
                                                  Timestamp time) const {
  STB_CHECK(stream < streams_.size()) << "invalid StreamId " << stream;
  STB_CHECK(time >= window_start_ && time < timeline_length_)
      << "time " << time << " outside retained window";
  return docs_at_[stream][static_cast<size_t>(time - window_start_)];
}

}  // namespace stburst
