// Text tokenization into interned terms.

#ifndef STBURST_STREAM_TOKENIZER_H_
#define STBURST_STREAM_TOKENIZER_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "stburst/stream/types.h"
#include "stburst/stream/vocabulary.h"

namespace stburst {

/// Tokenizer configuration.
struct TokenizerOptions {
  /// ASCII-lowercase tokens before interning.
  bool lowercase = true;
  /// Drop tokens shorter than this many characters.
  size_t min_token_length = 1;
  /// Drop tokens in this set (checked after lowercasing).
  std::unordered_set<std::string> stopwords;
};

/// Splits text on non-alphanumeric characters, normalizes per the options,
/// and interns the surviving tokens into a vocabulary.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  /// Tokenizes `text`, interning new terms into `*vocab`.
  std::vector<TermId> Tokenize(std::string_view text, Vocabulary* vocab) const;

  /// Tokenizes without interning: unseen terms are dropped. Useful for
  /// queries against a frozen index.
  std::vector<TermId> TokenizeFrozen(std::string_view text,
                                     const Vocabulary& vocab) const;

  const TokenizerOptions& options() const { return options_; }

  /// A small English stopword list suitable for the news-like corpora.
  static std::unordered_set<std::string> DefaultStopwords();

 private:
  std::vector<std::string> SplitNormalize(std::string_view text) const;

  TokenizerOptions options_;
};

}  // namespace stburst

#endif  // STBURST_STREAM_TOKENIZER_H_
