// Text tokenization into interned terms.

#ifndef STBURST_STREAM_TOKENIZER_H_
#define STBURST_STREAM_TOKENIZER_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "stburst/stream/types.h"
#include "stburst/stream/vocabulary.h"

namespace stburst {

/// Tokenizer configuration.
struct TokenizerOptions {
  /// ASCII-lowercase tokens before interning.
  bool lowercase = true;
  /// Drop tokens shorter than this many characters.
  size_t min_token_length = 1;
  /// Drop alphanumeric runs longer than this many bytes (0 = unbounded).
  /// A megabyte-long "word" in a hostile or binary input is garbage, not a
  /// term: dropping (rather than truncating) avoids aliasing distinct junk
  /// runs into one interned term, and the accumulator never grows past the
  /// bound however long the run is.
  size_t max_token_length = 64;
  /// Drop tokens in this set (checked after lowercasing).
  std::unordered_set<std::string> stopwords;
};

/// Splits text on non-alphanumeric characters, normalizes per the options,
/// and interns the surviving tokens into a vocabulary. Total on any byte
/// stream: bytes outside [0, 127] (invalid UTF-8, binary blobs, embedded
/// NULs) are ordinary non-alphanumeric separators — never UB, never an
/// error — and memory stays bounded by max_token_length per in-flight
/// token.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  /// Tokenizes `text`, interning new terms into `*vocab`.
  std::vector<TermId> Tokenize(std::string_view text, Vocabulary* vocab) const;

  /// Tokenizes without interning: unseen terms are dropped. Useful for
  /// queries against a frozen index.
  std::vector<TermId> TokenizeFrozen(std::string_view text,
                                     const Vocabulary& vocab) const;

  const TokenizerOptions& options() const { return options_; }

  /// A small English stopword list suitable for the news-like corpora.
  static std::unordered_set<std::string> DefaultStopwords();

 private:
  std::vector<std::string> SplitNormalize(std::string_view text) const;

  TokenizerOptions options_;
};

}  // namespace stburst

#endif  // STBURST_STREAM_TOKENIZER_H_
