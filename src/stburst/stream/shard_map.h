// Term-to-shard routing for the vocabulary-sharded runtime.
//
// ShardedRuntime partitions the write path by vocabulary: shard s owns
// every term with shard_of(term) == s, and a document is carried to every
// shard that owns at least one of its tokens (so each shard's collection
// holds exactly the documents its terms occur in, with the tokens filtered
// to the owned subset). The assignment is a fixed hash — splitmix64's
// finalizer over the TermId, mod K — so it is deterministic across
// platforms and processes, needs no routing table, and spreads a Zipfian
// vocabulary evenly: the heavy head terms land on pseudo-random shards
// instead of clustering by interning order.

#ifndef STBURST_STREAM_SHARD_MAP_H_
#define STBURST_STREAM_SHARD_MAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stburst/stream/collection.h"
#include "stburst/stream/types.h"

namespace stburst {

/// Stateless term router. Copyable; valid for any vocabulary (routing
/// depends only on the TermId value, so a growing vocabulary never
/// re-routes existing terms).
class ShardMap {
 public:
  /// `num_shards` must be >= 1.
  explicit ShardMap(size_t num_shards);

  size_t num_shards() const { return num_shards_; }

  /// The shard owning `term`. Constant-time, allocation-free.
  size_t shard_of(TermId term) const {
    // splitmix64 finalizer: full-avalanche mixing so consecutive TermIds
    // (interning order) don't stripe across shards in lockstep.
    uint64_t x = static_cast<uint64_t>(term);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x % num_shards_);
  }

  /// Splits one incoming snapshot into per-shard sub-snapshots:
  /// `(*per_shard)[s]` holds, in input order, a copy of every document with
  /// at least one token owned by shard s, its token list filtered to the
  /// owned terms (order and multiplicity preserved; stream and event_id
  /// kept). A document whose tokens are all unowned by s is absent from s;
  /// a token-less document is routed nowhere. `routed`, when non-null,
  /// receives per shard the ascending positions within `snapshot` of the
  /// documents routed there — the coordinator's hook for mapping each
  /// shard's new local DocIds back to global ones. Both outputs are
  /// assigned (previous contents discarded).
  void SplitSnapshot(const Snapshot& snapshot,
                     std::vector<Snapshot>* per_shard,
                     std::vector<std::vector<size_t>>* routed = nullptr) const;

 private:
  size_t num_shards_;
};

}  // namespace stburst

#endif  // STBURST_STREAM_SHARD_MAP_H_
