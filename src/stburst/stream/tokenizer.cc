#include "stburst/stream/tokenizer.h"

#include <cctype>

#include "stburst/common/string_util.h"

namespace stburst {

Tokenizer::Tokenizer(TokenizerOptions options) : options_(std::move(options)) {}

std::vector<std::string> Tokenizer::SplitNormalize(std::string_view text) const {
  const size_t max_len = options_.max_token_length;
  std::vector<std::string> out;
  std::string current;
  bool overlong = false;
  auto flush = [&]() {
    if (!overlong && current.size() >= options_.min_token_length &&
        options_.stopwords.find(current) == options_.stopwords.end()) {
      out.push_back(current);
    }
    current.clear();
    overlong = false;
  };
  for (char raw : text) {
    // The unsigned-char cast keeps <cctype> defined for every byte value —
    // a negative plain char (any byte >= 0x80 on signed-char platforms) is
    // UB to pass to isalnum/tolower directly.
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      if (max_len > 0 && current.size() >= max_len) {
        // Keep scanning the run without accumulating it; the whole run is
        // dropped at the next separator.
        overlong = true;
      } else {
        current.push_back(options_.lowercase
                              ? static_cast<char>(std::tolower(c))
                              : raw);
      }
    } else {
      flush();
    }
  }
  flush();
  return out;
}

std::vector<TermId> Tokenizer::Tokenize(std::string_view text,
                                        Vocabulary* vocab) const {
  std::vector<TermId> out;
  for (const std::string& tok : SplitNormalize(text)) {
    out.push_back(vocab->Intern(tok));
  }
  return out;
}

std::vector<TermId> Tokenizer::TokenizeFrozen(std::string_view text,
                                              const Vocabulary& vocab) const {
  std::vector<TermId> out;
  for (const std::string& tok : SplitNormalize(text)) {
    TermId id = vocab.Lookup(tok);
    if (id != kInvalidTerm) out.push_back(id);
  }
  return out;
}

std::unordered_set<std::string> Tokenizer::DefaultStopwords() {
  return {"a",    "an",  "and", "are", "as",   "at",   "be",   "by",   "for",
          "from", "has", "he",  "in",  "is",   "it",   "its",  "of",   "on",
          "that", "the", "to",  "was", "were", "will", "with", "this", "but",
          "they", "have", "had", "what", "when", "where", "who",  "which"};
}

}  // namespace stburst
