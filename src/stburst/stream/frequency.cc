#include "stburst/stream/frequency.h"

#include <algorithm>

#include "stburst/common/logging.h"

namespace stburst {

TermSeries::TermSeries(size_t num_streams, Timestamp timeline_length)
    : num_streams_(num_streams), timeline_length_(timeline_length) {
  STB_CHECK(timeline_length > 0) << "timeline length must be positive";
  data_.assign(num_streams * static_cast<size_t>(timeline_length), 0.0);
}

size_t TermSeries::Index(StreamId stream, Timestamp time) const {
  STB_DCHECK(stream < num_streams_) << "stream " << stream << " out of range";
  STB_DCHECK(time >= 0 && time < timeline_length_)
      << "time " << time << " out of range";
  return static_cast<size_t>(stream) * static_cast<size_t>(timeline_length_) +
         static_cast<size_t>(time);
}

std::vector<double> TermSeries::StreamRow(StreamId stream) const {
  std::vector<double> row(static_cast<size_t>(timeline_length_));
  for (Timestamp t = 0; t < timeline_length_; ++t) row[t] = at(stream, t);
  return row;
}

std::vector<double> TermSeries::SnapshotColumn(Timestamp time) const {
  std::vector<double> col(num_streams_);
  for (StreamId s = 0; s < num_streams_; ++s) col[s] = at(s, time);
  return col;
}

std::vector<double> TermSeries::AggregateOverStreams() const {
  std::vector<double> agg(static_cast<size_t>(timeline_length_), 0.0);
  for (StreamId s = 0; s < num_streams_; ++s) {
    for (Timestamp t = 0; t < timeline_length_; ++t) agg[t] += at(s, t);
  }
  return agg;
}

double TermSeries::Total() const {
  double sum = 0.0;
  for (double v : data_) sum += v;
  return sum;
}

const std::vector<TermPosting> FrequencyIndex::kEmpty;

FrequencyIndex FrequencyIndex::Build(const Collection& collection) {
  FrequencyIndex index;
  index.num_streams_ = collection.num_streams();
  index.timeline_length_ = collection.timeline_length();
  index.postings_.resize(collection.vocabulary().size());

  // Accumulate (term -> stream -> time -> count) by a single scan; documents
  // repeat terms, so count duplicates within each token list first.
  for (const Document& doc : collection.documents()) {
    // Tokens within a doc are few; sort a local copy to group duplicates.
    std::vector<TermId> toks = doc.tokens;
    std::sort(toks.begin(), toks.end());
    for (size_t i = 0; i < toks.size();) {
      size_t j = i;
      while (j < toks.size() && toks[j] == toks[i]) ++j;
      TermId term = toks[i];
      STB_CHECK(term < index.postings_.size()) << "token outside vocabulary";
      index.postings_[term].push_back(TermPosting{
          doc.stream, doc.time, static_cast<double>(j - i)});
      i = j;
    }
  }

  // Merge duplicate (stream, time) pairs produced by multiple documents.
  for (auto& plist : index.postings_) {
    std::sort(plist.begin(), plist.end(),
              [](const TermPosting& a, const TermPosting& b) {
                if (a.stream != b.stream) return a.stream < b.stream;
                return a.time < b.time;
              });
    size_t out = 0;
    for (size_t i = 0; i < plist.size();) {
      size_t j = i;
      double count = 0.0;
      while (j < plist.size() && plist[j].stream == plist[i].stream &&
             plist[j].time == plist[i].time) {
        count += plist[j].count;
        ++j;
      }
      plist[out++] = TermPosting{plist[i].stream, plist[i].time, count};
      i = j;
    }
    plist.resize(out);
  }
  return index;
}

const std::vector<TermPosting>& FrequencyIndex::postings(TermId term) const {
  if (term >= postings_.size()) return kEmpty;
  return postings_[term];
}

TermSeries FrequencyIndex::DenseSeries(TermId term) const {
  TermSeries series(num_streams_, timeline_length_);
  for (const TermPosting& p : postings(term)) {
    series.add(p.stream, p.time, p.count);
  }
  return series;
}

double FrequencyIndex::TotalCount(TermId term) const {
  double total = 0.0;
  for (const TermPosting& p : postings(term)) total += p.count;
  return total;
}

}  // namespace stburst
