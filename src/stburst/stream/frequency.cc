#include "stburst/stream/frequency.h"

#include <algorithm>

#include "stburst/common/logging.h"

namespace stburst {

TermSeries::TermSeries(size_t num_streams, Timestamp timeline_length)
    : num_streams_(num_streams), timeline_length_(timeline_length) {
  STB_CHECK(timeline_length > 0) << "timeline length must be positive";
  data_.assign(num_streams * static_cast<size_t>(timeline_length), 0.0);
}

size_t TermSeries::Index(StreamId stream, Timestamp time) const {
  STB_DCHECK(stream < num_streams_) << "stream " << stream << " out of range";
  STB_DCHECK(time >= 0 && time < timeline_length_)
      << "time " << time << " out of range";
  return static_cast<size_t>(stream) * static_cast<size_t>(timeline_length_) +
         static_cast<size_t>(time);
}

std::vector<double> TermSeries::SnapshotColumn(Timestamp time) const {
  std::vector<double> col(num_streams_);
  const size_t L = static_cast<size_t>(timeline_length_);
  const double* p = data_.data() + Index(0, time);
  for (size_t s = 0; s < num_streams_; ++s, p += L) col[s] = *p;
  return col;
}

std::vector<double> TermSeries::AggregateOverStreams() const {
  const size_t L = static_cast<size_t>(timeline_length_);
  std::vector<double> agg(L, 0.0);
  // Walk the row-major buffer contiguously: one streaming pass, rows added
  // into the L-length accumulator.
  const double* p = data_.data();
  for (size_t s = 0; s < num_streams_; ++s, p += L) {
    for (size_t t = 0; t < L; ++t) agg[t] += p[t];
  }
  return agg;
}

double TermSeries::Total() const {
  double sum = 0.0;
  for (double v : data_) sum += v;
  return sum;
}

void TermSeries::Clear() { std::fill(data_.begin(), data_.end(), 0.0); }

const std::vector<TermPosting> FrequencyIndex::kEmpty;

FrequencyIndex FrequencyIndex::Build(const Collection& collection) {
  FrequencyIndex index;
  index.num_streams_ = collection.num_streams();
  index.timeline_length_ = collection.timeline_length();
  const size_t vocab = collection.vocabulary().size();
  index.postings_.resize(vocab);

  // Single scan with bucketed accumulation: per-document term counts are
  // collected with an epoch-stamped scratch table (no per-doc sort), then
  // appended to each term's bucket. Consecutive documents of the same
  // (stream, time) cell merge into the bucket's tail, so when documents
  // arrive grouped by cell — the common ingest order — buckets come out
  // sorted and deduplicated with no comparison sort at all. Buckets that
  // observe an out-of-order append are flagged and canonicalized afterwards.
  std::vector<uint32_t> seen_epoch(vocab, 0);
  std::vector<uint32_t> slot_of(vocab, 0);
  std::vector<TermId> doc_terms;
  std::vector<double> doc_counts;
  std::vector<uint8_t> needs_sort(vocab, 0);
  uint32_t epoch = 0;

  for (const Document& doc : collection.documents()) {
    ++epoch;
    doc_terms.clear();
    doc_counts.clear();
    for (TermId term : doc.tokens) {
      STB_CHECK(term < vocab) << "token outside vocabulary";
      if (seen_epoch[term] != epoch) {
        seen_epoch[term] = epoch;
        slot_of[term] = static_cast<uint32_t>(doc_terms.size());
        doc_terms.push_back(term);
        doc_counts.push_back(1.0);
      } else {
        doc_counts[slot_of[term]] += 1.0;
      }
    }
    for (size_t k = 0; k < doc_terms.size(); ++k) {
      std::vector<TermPosting>& bucket = index.postings_[doc_terms[k]];
      if (!bucket.empty()) {
        TermPosting& tail = bucket.back();
        if (tail.stream == doc.stream && tail.time == doc.time) {
          tail.count += doc_counts[k];
          continue;
        }
        if (tail.stream > doc.stream ||
            (tail.stream == doc.stream && tail.time > doc.time)) {
          needs_sort[doc_terms[k]] = 1;
        }
      }
      bucket.push_back(TermPosting{doc.stream, doc.time, doc_counts[k]});
    }
  }

  // Canonicalize the stragglers: sort by (stream, time) and merge duplicate
  // cells that were not adjacent during the scan.
  for (TermId term = 0; term < vocab; ++term) {
    if (!needs_sort[term]) continue;
    std::vector<TermPosting>& bucket = index.postings_[term];
    std::sort(bucket.begin(), bucket.end(),
              [](const TermPosting& a, const TermPosting& b) {
                if (a.stream != b.stream) return a.stream < b.stream;
                return a.time < b.time;
              });
    size_t out = 0;
    for (size_t i = 0; i < bucket.size();) {
      size_t j = i;
      double count = 0.0;
      while (j < bucket.size() && bucket[j].stream == bucket[i].stream &&
             bucket[j].time == bucket[i].time) {
        count += bucket[j].count;
        ++j;
      }
      bucket[out++] = TermPosting{bucket[i].stream, bucket[i].time, count};
      i = j;
    }
    bucket.resize(out);
  }
  return index;
}

const std::vector<TermPosting>& FrequencyIndex::postings(TermId term) const {
  if (term >= postings_.size()) return kEmpty;
  return postings_[term];
}

TermSeries FrequencyIndex::DenseSeries(TermId term) const {
  TermSeries series(num_streams_, timeline_length_);
  for (const TermPosting& p : postings(term)) {
    series.add(p.stream, p.time, p.count);
  }
  return series;
}

void FrequencyIndex::FillSeries(TermId term, TermSeries* series) const {
  STB_CHECK(series->num_streams() == num_streams_ &&
            series->timeline_length() == timeline_length_)
      << "scratch series dimensions mismatch";
  series->Clear();
  for (const TermPosting& p : postings(term)) {
    series->add(p.stream, p.time, p.count);
  }
}

double FrequencyIndex::TotalCount(TermId term) const {
  double total = 0.0;
  for (const TermPosting& p : postings(term)) total += p.count;
  return total;
}

}  // namespace stburst
