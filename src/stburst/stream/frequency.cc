#include "stburst/stream/frequency.h"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "stburst/common/fault_injection.h"
#include "stburst/common/logging.h"
#include "stburst/common/parallel.h"

namespace stburst {

TermSeries::TermSeries(size_t num_streams, Timestamp timeline_length)
    : num_streams_(num_streams), timeline_length_(timeline_length) {
  STB_CHECK(timeline_length >= 0) << "timeline length must be non-negative";
  data_.assign(num_streams * static_cast<size_t>(timeline_length), 0.0);
}

size_t TermSeries::Index(StreamId stream, Timestamp time) const {
  STB_DCHECK(stream < num_streams_) << "stream " << stream << " out of range";
  STB_DCHECK(time >= 0 && time < timeline_length_)
      << "time " << time << " out of range";
  return static_cast<size_t>(stream) * static_cast<size_t>(timeline_length_) +
         static_cast<size_t>(time);
}

std::vector<double> TermSeries::SnapshotColumn(Timestamp time) const {
  std::vector<double> col(num_streams_);
  const size_t L = static_cast<size_t>(timeline_length_);
  const double* p = data_.data() + Index(0, time);
  for (size_t s = 0; s < num_streams_; ++s, p += L) col[s] = *p;
  return col;
}

std::vector<double> TermSeries::AggregateOverStreams() const {
  const size_t L = static_cast<size_t>(timeline_length_);
  std::vector<double> agg(L, 0.0);
  // Walk the row-major buffer contiguously: one streaming pass, rows added
  // into the L-length accumulator.
  const double* p = data_.data();
  for (size_t s = 0; s < num_streams_; ++s, p += L) {
    for (size_t t = 0; t < L; ++t) agg[t] += p[t];
  }
  return agg;
}

double TermSeries::Total() const {
  double sum = 0.0;
  for (double v : data_) sum += v;
  return sum;
}

void TermSeries::Clear() { std::fill(data_.begin(), data_.end(), 0.0); }

const std::vector<TermPosting> FrequencyIndex::kEmpty;

namespace {

// Canonical posting order.
bool PostingLess(const TermPosting& a, const TermPosting& b) {
  if (a.stream != b.stream) return a.stream < b.stream;
  return a.time < b.time;
}

bool PostingCellEq(const TermPosting& a, const TermPosting& b) {
  return a.stream == b.stream && a.time == b.time;
}

// Brings a bucket to canonical form: sorted by (stream, time), one entry per
// cell. stable_sort keeps same-cell entries in the order they were appended
// (document order), so the count of a cell is always the left-to-right float
// fold over its documents — this is what makes the sharded build and the
// append path bit-identical to the serial scan. The sort is skipped when the
// bucket is already ordered (the common ingest-grouped case), leaving a
// single merge pass.
void CanonicalizeBucket(std::vector<TermPosting>* bucket) {
  std::vector<TermPosting>& b = *bucket;
  // Fast path: find the first violation of strict (stream, time) order. A
  // bucket with none is already canonical — the common case when shards of
  // an ingest-ordered corpus are concatenated — and costs one read-only
  // scan. Otherwise entries before the violation are untouched and only the
  // tail is (sorted and) rewritten.
  size_t first_bad = 1;
  while (first_bad < b.size() && PostingLess(b[first_bad - 1], b[first_bad])) {
    ++first_bad;
  }
  if (first_bad >= b.size()) return;

  size_t begin = first_bad - 1;
  if (!std::is_sorted(b.begin() + static_cast<ptrdiff_t>(begin), b.end(),
                      PostingLess)) {
    std::stable_sort(b.begin(), b.end(), PostingLess);
    begin = 0;  // sorting may have rearranged the previously clean prefix
  }
  size_t out = begin;
  for (size_t i = begin; i < b.size();) {
    size_t j = i;
    double count = 0.0;
    while (j < b.size() && PostingCellEq(b[j], b[i])) {
      count += b[j].count;
      ++j;
    }
    b[out++] = TermPosting{b[i].stream, b[i].time, count};
    i = j;
  }
  b.resize(out);
}

// Accumulation state of one document shard: per-term posting buckets plus a
// flag per term recording whether the bucket observed an out-of-order append
// (and therefore needs a sort during canonicalization).
struct ShardBuckets {
  std::vector<std::vector<TermPosting>> buckets;
  std::vector<uint8_t> needs_sort;

  explicit ShardBuckets(size_t vocab) : buckets(vocab), needs_sort(vocab, 0) {}
};

// Scans documents [begin, end) of `collection` into `shard` with bucketed
// accumulation: per-document term counts are collected with an epoch-stamped
// scratch table (no per-doc sort), then appended to each term's bucket.
// Consecutive documents of the same (stream, time) cell merge into the
// bucket's tail, so when documents arrive grouped by cell — the common
// ingest order — buckets come out sorted and deduplicated with no comparison
// sort at all.
void AccumulateDocumentRange(const Collection& collection, size_t begin,
                             size_t end, ShardBuckets* shard) {
  const size_t vocab = shard->buckets.size();
  std::vector<uint32_t> seen_epoch(vocab, 0);
  std::vector<uint32_t> slot_of(vocab, 0);
  std::vector<TermId> doc_terms;
  std::vector<double> doc_counts;
  uint32_t epoch = 0;

  const std::vector<Document>& docs = collection.documents();
  for (size_t d = begin; d < end; ++d) {
    const Document& doc = docs[d];
    ++epoch;
    doc_terms.clear();
    doc_counts.clear();
    for (TermId term : doc.tokens) {
      STB_CHECK(term < vocab) << "token outside vocabulary";
      if (seen_epoch[term] != epoch) {
        seen_epoch[term] = epoch;
        slot_of[term] = static_cast<uint32_t>(doc_terms.size());
        doc_terms.push_back(term);
        doc_counts.push_back(1.0);
      } else {
        doc_counts[slot_of[term]] += 1.0;
      }
    }
    for (size_t k = 0; k < doc_terms.size(); ++k) {
      std::vector<TermPosting>& bucket = shard->buckets[doc_terms[k]];
      if (!bucket.empty()) {
        TermPosting& tail = bucket.back();
        if (tail.stream == doc.stream && tail.time == doc.time) {
          tail.count += doc_counts[k];
          continue;
        }
        if (tail.stream > doc.stream ||
            (tail.stream == doc.stream && tail.time > doc.time)) {
          shard->needs_sort[doc_terms[k]] = 1;
        }
      }
      bucket.push_back(TermPosting{doc.stream, doc.time, doc_counts[k]});
    }
  }
}

}  // namespace

FrequencyIndex FrequencyIndex::Build(const Collection& collection,
                                     size_t num_threads) {
  return BuildImpl(collection, ResolveThreadCount(num_threads), nullptr);
}

FrequencyIndex FrequencyIndex::BuildWithPool(const Collection& collection,
                                             ThreadPool* pool) {
  return BuildImpl(collection, pool == nullptr ? 1 : pool->num_threads() + 1,
                   pool);
}

FrequencyIndex FrequencyIndex::BuildImpl(const Collection& collection,
                                         size_t threads,
                                         ThreadPool* borrowed) {
  FrequencyIndex index;
  index.num_streams_ = collection.num_streams();
  index.timeline_length_ = collection.timeline_length();
  index.window_start_ = collection.window_start();
  const size_t vocab = collection.vocabulary().size();
  const size_t num_docs = collection.documents().size();

  // Sharding a tiny corpus costs more in per-shard vocab tables than the
  // scan itself; stay serial below a few thousand documents per shard.
  constexpr size_t kMinDocsPerShard = 2048;
  const size_t shards =
      std::min(threads, std::max<size_t>(1, num_docs / kMinDocsPerShard));

  if (shards <= 1) {
    ShardBuckets all(vocab);
    AccumulateDocumentRange(collection, 0, num_docs, &all);
    for (TermId term = 0; term < vocab; ++term) {
      if (all.needs_sort[term]) CanonicalizeBucket(&all.buckets[term]);
    }
    index.postings_ = std::move(all.buckets);
    return index;
  }

  // Stage 1: accumulate T contiguous document ranges independently. Ranges
  // are contiguous so each shard inherits the collection's ingest order and
  // the tail-merge fast path keeps working per shard.
  std::vector<ShardBuckets> shard_buckets;
  shard_buckets.reserve(shards);
  for (size_t sh = 0; sh < shards; ++sh) shard_buckets.emplace_back(vocab);

  // A borrowed standing pool is used as-is. Otherwise spawn a transient one
  // — but never oversubscribe the machine: running more workers than
  // hardware threads only adds context-switch and cache thrash to a
  // CPU-bound scan. The shard structure still follows the requested thread
  // count either way, so the merge path exercised — and the (bit-identical)
  // output — do not depend on the host.
  ThreadPool* pool = borrowed;
  std::unique_ptr<ThreadPool> transient;
  if (pool == nullptr) {
    size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    const size_t workers = std::min(threads, hw);
    // The calling thread participates, so workers - 1 pool threads suffice
    // (a null pool runs both stages on the calling thread alone).
    if (workers > 1) {
      transient = std::make_unique<ThreadPool>(workers - 1);
      pool = transient.get();
    }
  }

  ParallelFor(pool, 0, shards, [&](size_t /*worker*/, size_t sh) {
    AccumulateDocumentRange(collection, num_docs * sh / shards,
                            num_docs * (sh + 1) / shards, &shard_buckets[sh]);
  });

  // Stage 2: per-term merge, parallel over the vocabulary. Shard buckets are
  // concatenated in shard order — i.e. document order — then canonicalized,
  // so cell counts fold in exactly the order the serial scan folds them.
  index.postings_.resize(vocab);
  ParallelFor(pool, 0, vocab, [&](size_t /*worker*/, size_t t) {
    const TermId term = static_cast<TermId>(t);
    std::vector<TermPosting>& out = index.postings_[term];
    size_t total = 0;
    for (size_t sh = 0; sh < shards; ++sh) {
      total += shard_buckets[sh].buckets[term].size();
    }
    size_t merged_shards = 0;
    bool dirty = false;           // some run saw an out-of-order append
    bool boundaries_clean = true;  // runs strictly increase across joins
    for (size_t sh = 0; sh < shards; ++sh) {
      std::vector<TermPosting>& b = shard_buckets[sh].buckets[term];
      if (b.empty()) continue;
      dirty = dirty || shard_buckets[sh].needs_sort[term] != 0;
      if (++merged_shards == 1) {
        // Steal the first run instead of copying it, then make room for the
        // rest in one shot (at most one realloc, often none).
        out = std::move(b);
        if (out.capacity() < total) out.reserve(total);
      } else {
        if (!PostingLess(out.back(), b.front())) boundaries_clean = false;
        out.insert(out.end(), b.begin(), b.end());
      }
    }
    // Clean runs joined at strictly increasing boundaries are canonical by
    // construction (each run is sorted and deduplicated) — the O(shards)
    // boundary check above replaces an O(postings) verification scan.
    // Anything else canonicalizes: a flagged run needs its sort, and equal
    // boundary cells must merge.
    if (dirty || !boundaries_clean) CanonicalizeBucket(&out);
  });
  return index;
}

Status FrequencyIndex::AppendSnapshot(const Collection& collection,
                                      ThreadPool* pool) {
  if (collection.timeline_length() < timeline_length_) {
    return Status::InvalidArgument("collection timeline is behind the index");
  }
  if (collection.window_start() > timeline_length_) {
    return Status::InvalidArgument(
        "collection evicted timestamps the index has not ingested");
  }
  if (collection.num_streams() < num_streams_) {
    return Status::InvalidArgument("collection lost streams");
  }
  const size_t vocab = collection.vocabulary().size();
  if (vocab < postings_.size()) {
    return Status::InvalidArgument("collection vocabulary is behind the index");
  }
  postings_.resize(vocab);
  num_streams_ = collection.num_streams();

  // Gather the new snapshots' postings per term, tail-merging documents of
  // the same cell (documents at one (stream, time) are consecutive here).
  // The scan runs time-major so pending entries arrive in (time, stream)
  // order per term.
  std::vector<std::vector<TermPosting>> pending(vocab);
  std::vector<TermId> touched;
  std::vector<uint32_t> seen_epoch(vocab, 0);
  std::vector<uint32_t> slot_of(vocab, 0);
  std::vector<TermId> doc_terms;
  std::vector<double> doc_counts;
  uint32_t epoch = 0;

  for (Timestamp i = timeline_length_; i < collection.timeline_length(); ++i) {
    for (StreamId s = 0; s < num_streams_; ++s) {
      for (DocId d : collection.DocumentsAt(s, i)) {
        const Document& doc = collection.document(d);
        ++epoch;
        doc_terms.clear();
        doc_counts.clear();
        for (TermId term : doc.tokens) {
          STB_CHECK(term < vocab) << "token outside vocabulary";
          if (seen_epoch[term] != epoch) {
            seen_epoch[term] = epoch;
            slot_of[term] = static_cast<uint32_t>(doc_terms.size());
            doc_terms.push_back(term);
            doc_counts.push_back(1.0);
          } else {
            doc_counts[slot_of[term]] += 1.0;
          }
        }
        for (size_t k = 0; k < doc_terms.size(); ++k) {
          std::vector<TermPosting>& bucket = pending[doc_terms[k]];
          if (bucket.empty()) touched.push_back(doc_terms[k]);
          if (!bucket.empty() && bucket.back().stream == s &&
              bucket.back().time == i) {
            bucket.back().count += doc_counts[k];
          } else {
            bucket.push_back(TermPosting{s, i, doc_counts[k]});
          }
        }
      }
    }
  }

  // Splice each touched term's pending entries into its bucket. Pending is
  // in (time, stream) order; a stable sort by stream alone yields (stream,
  // time) order. All new times exceed every pre-existing time, so the two
  // sorted halves merge without duplicate cells. Terms are independent, so
  // the splice fans across the pool when one is supplied — same output,
  // spliced concurrently.
  ParallelFor(pool, 0, touched.size(), [&](size_t /*worker*/, size_t k) {
    STBURST_FAULT_POINT_THROW("frequency.append_splice");
    const TermId term = touched[k];
    std::vector<TermPosting>& add = pending[term];
    std::stable_sort(add.begin(), add.end(),
                     [](const TermPosting& a, const TermPosting& b) {
                       return a.stream < b.stream;
                     });
    std::vector<TermPosting>& bucket = postings_[term];
    const size_t old_size = bucket.size();
    bucket.insert(bucket.end(), add.begin(), add.end());
    std::inplace_merge(bucket.begin(),
                       bucket.begin() + static_cast<ptrdiff_t>(old_size),
                       bucket.end(), PostingLess);
  });
  dirty_terms_.insert(dirty_terms_.end(), touched.begin(), touched.end());

  timeline_length_ = collection.timeline_length();
  return Status::OK();
}

void FrequencyIndex::RollbackAppend(const AppendCheckpoint& checkpoint) {
  STB_CHECK(checkpoint.timeline_length >= window_start_ &&
            checkpoint.timeline_length <= timeline_length_)
      << "append checkpoint outside retained timeline";
  STB_CHECK(checkpoint.num_terms <= postings_.size())
      << "append checkpoint vocabulary exceeds current";
  // Every posting the append spliced in carries an appended timestamp, and
  // splices never merge into pre-existing cells (new times strictly exceed
  // every retained time), so dropping the new-time suffix of each surviving
  // term restores the exact pre-append bucket — whether that term's splice
  // ran to completion or never started.
  postings_.resize(checkpoint.num_terms);
  const Timestamp first_new = checkpoint.timeline_length;
  for (std::vector<TermPosting>& bucket : postings_) {
    auto keep_end = std::remove_if(
        bucket.begin(), bucket.end(),
        [first_new](const TermPosting& p) { return p.time >= first_new; });
    bucket.erase(keep_end, bucket.end());
  }
  timeline_length_ = checkpoint.timeline_length;
  num_streams_ = checkpoint.num_streams;
}

Status FrequencyIndex::EvictBefore(Timestamp cutoff, ThreadPool* pool,
                                   FrequencyEvictUndo* undo) {
  if (cutoff <= window_start_) return Status::OK();
  if (cutoff > timeline_length_) {
    return Status::OutOfRange("eviction cutoff beyond the timeline");
  }
  if (undo != nullptr) {
    undo->window_start = window_start_;
    undo->cutoff = cutoff;
    undo->removed.clear();
  }
  std::mutex undo_mutex;

  // Per-term drop of the evicted entries, fanned across the pool. Buckets
  // are (stream, time)-sorted, so evicted entries are interleaved per
  // stream run — a remove_if compaction, not a prefix erase. Shrink the
  // bucket whenever the slack passes ~25% so a steadily evicting feed's
  // capacity tracks its size instead of its high-water mark.
  std::vector<uint8_t> changed(postings_.size(), 0);
  ParallelFor(pool, 0, postings_.size(), [&](size_t /*worker*/, size_t t) {
    STBURST_FAULT_POINT_THROW("frequency.evict");
    std::vector<TermPosting>& bucket = postings_[t];
    if (undo != nullptr) {
      // Capture before compacting, and publish the captured entries before
      // touching the bucket: a throw elsewhere then can never leave a
      // compacted bucket missing from the undo.
      std::vector<TermPosting> evicted;
      for (const TermPosting& p : bucket) {
        if (p.time < cutoff) evicted.push_back(p);
      }
      if (!evicted.empty()) {
        std::lock_guard<std::mutex> lock(undo_mutex);
        undo->removed.emplace_back(static_cast<TermId>(t), std::move(evicted));
      }
    }
    auto keep_end = std::remove_if(
        bucket.begin(), bucket.end(),
        [cutoff](const TermPosting& p) { return p.time < cutoff; });
    if (keep_end == bucket.end()) return;
    bucket.erase(keep_end, bucket.end());
    if (bucket.capacity() > bucket.size() + bucket.size() / 4 + 8) {
      bucket.shrink_to_fit();
    }
    changed[t] = 1;
  });

  for (TermId t = 0; t < changed.size(); ++t) {
    if (changed[t]) dirty_terms_.push_back(t);
  }
  window_start_ = cutoff;
  return Status::OK();
}

void FrequencyIndex::RollbackEvict(FrequencyEvictUndo&& undo) {
  for (auto& [term, evicted] : undo.removed) {
    STB_CHECK(term < postings_.size()) << "eviction undo term out of range";
    std::vector<TermPosting>& bucket = postings_[term];
    // The surviving entries (time >= cutoff) and the evicted entries
    // (time < cutoff) are both (stream, time)-sorted subsequences of the
    // original bucket with disjoint cells, so a merge reconstructs it
    // exactly. Filtering the current bucket to post-cutoff entries first
    // makes the restore idempotent against a worker that captured its
    // entries but threw before compacting.
    std::vector<TermPosting> restored;
    restored.reserve(bucket.size() + evicted.size());
    std::vector<TermPosting> kept;
    kept.reserve(bucket.size());
    for (const TermPosting& p : bucket) {
      if (p.time >= undo.cutoff) kept.push_back(p);
    }
    std::merge(evicted.begin(), evicted.end(), kept.begin(), kept.end(),
               std::back_inserter(restored), PostingLess);
    bucket = std::move(restored);
  }
  window_start_ = undo.window_start;
}

size_t FrequencyIndex::PostingsMemoryBytes() const {
  size_t bytes = postings_.capacity() * sizeof(postings_[0]);
  for (const std::vector<TermPosting>& bucket : postings_) {
    bytes += bucket.capacity() * sizeof(TermPosting);
  }
  return bytes;
}

std::vector<TermId> FrequencyIndex::TakeDirtyTerms() {
  std::sort(dirty_terms_.begin(), dirty_terms_.end());
  dirty_terms_.erase(std::unique(dirty_terms_.begin(), dirty_terms_.end()),
                     dirty_terms_.end());
  return std::exchange(dirty_terms_, {});
}

const std::vector<TermPosting>& FrequencyIndex::postings(TermId term) const {
  if (term >= postings_.size()) return kEmpty;
  return postings_[term];
}

TermSeries FrequencyIndex::DenseSeries(TermId term) const {
  TermSeries series(num_streams_, window_length());
  for (const TermPosting& p : postings(term)) {
    series.add(p.stream, p.time - window_start_, p.count);
  }
  return series;
}

void FrequencyIndex::FillSeries(TermId term, TermSeries* series) const {
  STB_CHECK(series->num_streams() == num_streams_ &&
            series->timeline_length() == window_length())
      << "scratch series dimensions mismatch";
  series->Clear();
  for (const TermPosting& p : postings(term)) {
    series->add(p.stream, p.time - window_start_, p.count);
  }
}

std::vector<double> FrequencyIndex::SnapshotColumn(TermId term,
                                                   Timestamp time) const {
  std::vector<double> col(num_streams_, 0.0);
  const std::vector<TermPosting>& plist = postings(term);
  // Postings are (stream, time)-sorted with one entry per cell: binary
  // search each stream's cell instead of scanning the whole history, so a
  // per-tick pull over a hot term stays O(n log P) as the feed grows.
  auto it = plist.begin();
  for (StreamId s = 0; s < num_streams_; ++s) {
    it = std::lower_bound(it, plist.end(), TermPosting{s, time, 0.0},
                          PostingLess);
    if (it == plist.end()) break;
    if (it->stream == s && it->time == time) {
      col[s] = it->count;
      ++it;
    }
  }
  return col;
}

double FrequencyIndex::TotalCount(TermId term) const {
  double total = 0.0;
  for (const TermPosting& p : postings(term)) total += p.count;
  return total;
}

}  // namespace stburst
