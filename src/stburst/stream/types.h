// Identifier types shared across the stream, core, and index modules.

#ifndef STBURST_STREAM_TYPES_H_
#define STBURST_STREAM_TYPES_H_

#include <cstdint>
#include <limits>

namespace stburst {

/// Interned term identifier (see Vocabulary).
using TermId = uint32_t;

/// Document stream identifier: dense, assigned by Collection in insertion
/// order, so it doubles as an index into per-stream arrays.
using StreamId = uint32_t;

/// Document identifier: dense, assigned by Collection in insertion order.
using DocId = uint32_t;

/// Discrete timestamp (snapshot index on the timeline), 0-based.
using Timestamp = int32_t;

inline constexpr TermId kInvalidTerm = std::numeric_limits<TermId>::max();
inline constexpr StreamId kInvalidStream = std::numeric_limits<StreamId>::max();
inline constexpr DocId kInvalidDoc = std::numeric_limits<DocId>::max();

/// Sentinel for "document not produced by any injected event" (used by the
/// generators' provenance labels and the simulated annotator).
inline constexpr int32_t kNoEvent = -1;

}  // namespace stburst

#endif  // STBURST_STREAM_TYPES_H_
