#include "stburst/stream/shard_map.h"

#include "stburst/common/logging.h"

namespace stburst {

ShardMap::ShardMap(size_t num_shards) : num_shards_(num_shards) {
  STB_CHECK(num_shards >= 1) << "ShardMap requires at least one shard";
}

void ShardMap::SplitSnapshot(const Snapshot& snapshot,
                             std::vector<Snapshot>* per_shard,
                             std::vector<std::vector<size_t>>* routed) const {
  per_shard->assign(num_shards_, Snapshot{});
  if (routed != nullptr) routed->assign(num_shards_, {});
  // Per-document scratch: which shards already received this document, and
  // the filtered token list under construction per shard. Sized once; the
  // touched list resets only the shards actually hit, so a K-shard split of
  // a snapshot costs O(tokens + routed copies), not O(docs · K).
  std::vector<char> hit(num_shards_, 0);
  std::vector<std::vector<TermId>> owned(num_shards_);
  std::vector<size_t> touched;
  for (size_t i = 0; i < snapshot.size(); ++i) {
    const SnapshotDocument& doc = snapshot[i];
    touched.clear();
    for (TermId token : doc.tokens) {
      const size_t s = shard_of(token);
      if (!hit[s]) {
        hit[s] = 1;
        owned[s].clear();
        touched.push_back(s);
      }
      owned[s].push_back(token);
    }
    for (size_t s : touched) {
      hit[s] = 0;
      SnapshotDocument copy;
      copy.stream = doc.stream;
      copy.event_id = doc.event_id;
      copy.tokens = owned[s];
      (*per_shard)[s].push_back(std::move(copy));
      if (routed != nullptr) (*routed)[s].push_back(i);
    }
  }
}

}  // namespace stburst
