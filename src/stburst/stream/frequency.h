// Term-frequency views over a collection.
//
// Dx[i][t] (paper Eq. 6) — the total frequency of term t in the documents
// stream Dx reported at timestamp i — is the sole input the mining
// algorithms need. TermSeries is the dense n-streams x L-timestamps matrix
// of those values for one term; FrequencyIndex materializes it from a
// document Collection. The synthetic generators construct TermSeries
// directly, bypassing documents.
//
// FrequencyIndex supports two ingest modes that share one canonical
// representation (per-term postings sorted by (stream, time), one entry per
// nonzero cell):
//  - Build(collection, num_threads): full scan, optionally sharded across
//    worker threads. The sharded build is bit-identical to the serial one
//    for every thread count (see the determinism note on Build).
//  - AppendSnapshot(collection): incremental catch-up after
//    Collection::Append extended the timeline, touching only the terms that
//    actually appear in the new snapshots. Terms touched since the last
//    TakeDirtyTerms() call are tracked so downstream consumers (the batch
//    miner, search indexes) can re-derive only what changed.

#ifndef STBURST_STREAM_FREQUENCY_H_
#define STBURST_STREAM_FREQUENCY_H_

#include <span>
#include <vector>

#include "stburst/common/statusor.h"
#include "stburst/stream/collection.h"
#include "stburst/stream/types.h"

namespace stburst {

class ThreadPool;

/// Dense frequency matrix for a single term: rows are streams, columns are
/// timestamps. Values are real (generators inject fractional frequencies).
class TermSeries {
 public:
  /// Zero-initialized n x L matrix. Requires n > 0 would be too strict (a
  /// collection may have no streams), and likewise L = 0 is a valid empty
  /// window (a fully evicted feed): both degenerate shapes are usable,
  /// holding no cells. L must be non-negative.
  TermSeries(size_t num_streams, Timestamp timeline_length);

  size_t num_streams() const { return num_streams_; }
  Timestamp timeline_length() const { return timeline_length_; }

  double at(StreamId stream, Timestamp time) const {
    return data_[Index(stream, time)];
  }
  void set(StreamId stream, Timestamp time, double value) {
    data_[Index(stream, time)] = value;
  }
  void add(StreamId stream, Timestamp time, double delta) {
    data_[Index(stream, time)] += delta;
  }

  /// Frequency sequence of one stream over the whole timeline (length L):
  /// a zero-copy view into the row-major buffer, valid until the series is
  /// mutated or destroyed.
  std::span<const double> StreamRow(StreamId stream) const {
    return {data_.data() + Index(stream, 0), static_cast<size_t>(timeline_length_)};
  }

  /// Frequencies of all streams at one timestamp (length n) — the snapshot
  /// D[i] restricted to this term. Columns are strided in memory, so this
  /// one copies.
  std::vector<double> SnapshotColumn(Timestamp time) const;

  /// Element-wise sum across streams (length L): the single merged stream
  /// the TB baseline operates on (§6.3).
  std::vector<double> AggregateOverStreams() const;

  /// Sum of all entries.
  double Total() const;

  /// Resets every entry to zero without reallocating — lets the batch miner
  /// reuse one scratch matrix across terms.
  void Clear();

 private:
  size_t Index(StreamId stream, Timestamp time) const;

  size_t num_streams_;
  Timestamp timeline_length_;
  std::vector<double> data_;  // row-major: stream * L + time
};

/// One (stream, time, count) observation for a term.
struct TermPosting {
  StreamId stream;
  Timestamp time;
  double count;
};

/// Captured pre-eviction postings that FrequencyIndex::RollbackEvict uses to
/// undo one EvictBefore exactly — O(evicted postings), holding only the
/// removed entries per touched term. Consumed by the restore.
struct FrequencyEvictUndo {
  Timestamp window_start = 0;
  Timestamp cutoff = 0;
  /// Per touched term, the evicted postings in canonical (stream, time)
  /// order. Terms the eviction left untouched do not appear.
  std::vector<std::pair<TermId, std::vector<TermPosting>>> removed;
};

/// Sparse per-term frequency postings over a document collection.
///
/// Thread-safety: Build is internally parallel but externally exclusive (the
/// collection, including its vocabulary, must not be mutated during the
/// scan). After Build / AppendSnapshot return, all const accessors are safe
/// to call concurrently from any number of threads; AppendSnapshot and
/// TakeDirtyTerms are writers and must be externally serialized against the
/// readers (quiesce mining, append, re-mine — see docs/ARCHITECTURE.md).
class FrequencyIndex {
 public:
  /// An empty index: no terms, no streams, zero-length timeline. Exists so
  /// owners (FeedRuntime) can hold an index member and assign from Build().
  FrequencyIndex() = default;

  /// Scans every document in `collection` once and builds canonical per-term
  /// postings (sorted by (stream, time), duplicate cells merged).
  ///
  /// `num_threads`: 1 (default) runs serially on the calling thread; 0 means
  /// hardware concurrency. With T > 1 the document scan is sharded into T
  /// contiguous document ranges accumulated independently, then the per-term
  /// shard buckets are merged with a parallel loop over the vocabulary.
  /// The count is a ceiling: the build never runs more workers than the
  /// hardware offers (oversubscribing a CPU-bound scan only thrashes), but
  /// the shard structure follows the request, so behavior is host-invariant.
  ///
  /// Determinism: output is bit-identical for every thread count. Shards
  /// are contiguous document ranges concatenated in document order and
  /// canonicalization is stable, so a cell's count folds over its documents
  /// in document order; shard boundaries can group that fold into partial
  /// sums, which is exact because counts are per-document term frequencies
  /// (small integer doubles). If fractional counts are ever introduced, the
  /// cross-thread guarantee weakens to "equal up to float associativity"
  /// at cells straddling a shard boundary.
  /// Complexity: O(tokens + nnz) work, O(nnz + T·V) transient space.
  static FrequencyIndex Build(const Collection& collection,
                              size_t num_threads = 1);

  /// Borrowing variant: shards the scan across `pool` (its workers plus
  /// the calling thread) instead of spawning a transient pool — the path a
  /// long-running owner with a standing pool (FeedRuntime) uses. A null
  /// pool builds serially. Output is bit-identical to every Build. A named
  /// function, not a Build overload: a literal `Build(c, 0)` must keep
  /// meaning "hardware concurrency", not a null pool.
  static FrequencyIndex BuildWithPool(const Collection& collection,
                                      ThreadPool* pool);

  /// Incrementally extends the index with every timestamp `collection`
  /// gained since this index was built or last caught up (the result of one
  /// or more Collection::Append calls). Postings are extended in place; only
  /// terms occurring in the new snapshots are touched, and those terms are
  /// recorded for TakeDirtyTerms().
  ///
  /// Contract: `collection` must be the same logical collection the index
  /// was built from, with documents added only at appended timestamps —
  /// late additions to pre-existing timestamps are not picked up (rebuild
  /// instead). New streams and new vocabulary terms are absorbed. Returns
  /// InvalidArgument if the collection's timeline or vocabulary is behind
  /// the index. Equivalence: after any sequence of appends the index is
  /// bit-identical to Build(collection) from scratch (tested).
  ///
  /// `pool`: when non-null, the per-term splice of the gathered postings is
  /// fanned across the pool (the gather scan stays serial — it is a single
  /// pass over the new documents). The splice is per-term independent, so
  /// output is bit-identical with or without a pool, at any pool size
  /// (tested). Feeds with 10^4+ documents per tick are splice-dominated and
  /// benefit; tiny ticks do not.
  /// Complexity: O(V + new tokens + Σ postings(t) over touched terms t).
  Status AppendSnapshot(const Collection& collection,
                        ThreadPool* pool = nullptr);

  /// The index dimensions an AppendSnapshot may grow — everything
  /// RollbackAppend needs to undo one. Capture before the append.
  struct AppendCheckpoint {
    Timestamp timeline_length = 0;
    size_t num_terms = 0;
    size_t num_streams = 0;
  };

  /// Snapshot of the current dimensions, for RollbackAppend.
  AppendCheckpoint CheckpointBeforeAppend() const {
    return AppendCheckpoint{timeline_length_, postings_.size(), num_streams_};
  }

  /// Undoes every AppendSnapshot since `checkpoint` was captured, including
  /// one that failed partway through its parallel splice: every appended
  /// posting carries a timestamp >= checkpoint.timeline_length and splices
  /// never merge into pre-existing cells, so dropping those postings (and
  /// the terms the append grew the vocabulary by) restores the exact
  /// pre-append postings. The dirty set is NOT rewound — restore it
  /// separately from a PendingDirtyTerms() copy taken alongside the
  /// checkpoint. No interleaved evictions allowed between capture and
  /// rollback. No-throw; O(retained postings of touched terms).
  void RollbackAppend(const AppendCheckpoint& checkpoint);

  /// Drops all postings older than `cutoff`, advancing window_start(). Terms
  /// that lose postings are recorded as dirty (their standing mining slots
  /// reference evicted timestamps) and their buckets are shrunk when the
  /// slack exceeds ~25%, so a steadily evicting feed's postings memory
  /// plateaus at O(window · active terms) instead of growing with the feed.
  /// Terms untouched by the cutoff are NOT dirtied: their windowed series
  /// content is unchanged, and patterns are reported in absolute timestamps,
  /// so on a length-preserving window slide (evicting as many timestamps as
  /// were appended since the slot was mined — FeedRuntime's steady state)
  /// their standing results remain exact. An eviction that shrinks the net
  /// window length shifts the burstiness baseline 1/N for every term, so
  /// untouched quiet slots then carry the standard staleness drift until
  /// re-mined (see the retention contract in docs/ARCHITECTURE.md); re-mine
  /// the full vocabulary after first applying a window to deep history.
  ///
  /// `pool`: when non-null the per-term scan is fanned across the pool;
  /// output is identical with or without it. cutoff <= window_start() is a
  /// no-op; cutoff beyond the timeline is OutOfRange (state untouched).
  /// O(retained + evicted postings) work.
  ///
  /// `undo`, when non-null, receives the evicted postings per touched term
  /// (workers append under a mutex; the set of captured terms is complete
  /// even when a worker throws mid-pass, because ParallelFor quiesces before
  /// rethrowing). RollbackEvict restores them exactly.
  Status EvictBefore(Timestamp cutoff, ThreadPool* pool = nullptr,
                     FrequencyEvictUndo* undo = nullptr);

  /// Restores the postings captured by the matching EvictBefore, consuming
  /// the undo. Valid after a completed eviction or one that threw partway:
  /// every term in the undo is re-merged (evicted entries all predate the
  /// cutoff, so the merge reconstructs the original canonical bucket), terms
  /// not in the undo were never touched. The dirty set is NOT rewound —
  /// restore it separately (see RollbackAppend).
  void RollbackEvict(FrequencyEvictUndo&& undo);

  /// First retained timestamp (0 until EvictBefore advances it). Postings
  /// hold absolute timestamps in [window_start(), timeline_length()).
  Timestamp window_start() const { return window_start_; }

  /// Number of retained timestamps — the dense-series width the miners
  /// operate over.
  Timestamp window_length() const { return timeline_length_ - window_start_; }

  /// Bytes held by the posting buckets (capacity, not size — the number the
  /// allocator actually charges). The retention tests pin the live-memory
  /// plateau with this.
  size_t PostingsMemoryBytes() const;

  /// Terms whose postings changed since the last call (sorted, unique), and
  /// resets the dirty set. Feed to RemineTerms / index rebuilds so
  /// downstream work is proportional to the feed, not the corpus.
  std::vector<TermId> TakeDirtyTerms();

  /// The pending dirty set as-is (unsorted, may hold duplicates), without
  /// resetting it. Capture alongside CheckpointBeforeAppend so a failed
  /// tick can restore the set with RestoreDirtyTerms.
  std::vector<TermId> PendingDirtyTerms() const { return dirty_terms_; }

  /// Replaces the pending dirty set wholesale — the rollback counterpart of
  /// PendingDirtyTerms (exact, because the posting rollbacks restore the
  /// postings the set describes).
  void RestoreDirtyTerms(std::vector<TermId> dirty) {
    dirty_terms_ = std::move(dirty);
  }

  size_t num_terms() const { return postings_.size(); }
  size_t num_streams() const { return num_streams_; }
  Timestamp timeline_length() const { return timeline_length_; }

  /// Sparse postings for a term; empty for out-of-range ids.
  const std::vector<TermPosting>& postings(TermId term) const;

  /// Materializes the dense matrix for one term over the retained window:
  /// num_streams() x window_length(), column j holding the frequencies of
  /// absolute timestamp window_start() + j. Before any eviction this is the
  /// full timeline, unchanged.
  TermSeries DenseSeries(TermId term) const;

  /// Fills a caller-owned scratch matrix (dimensions must match
  /// num_streams() x window_length()) with the term's dense frequencies.
  /// Allocation-free; the batch miner calls this once per term per worker.
  void FillSeries(TermId term, TermSeries* series) const;

  /// Per-stream frequencies of `term` at one timestamp (length
  /// num_streams()): the snapshot column the online miners consume
  /// (OnlineStComb::PushFromIndex). O(n log postings(term)) — per-stream
  /// binary search, so per-tick pulls stay cheap as the feed grows.
  std::vector<double> SnapshotColumn(TermId term, Timestamp time) const;

  /// Total corpus frequency of a term. O(postings(term)).
  double TotalCount(TermId term) const;

 private:
  static FrequencyIndex BuildImpl(const Collection& collection, size_t threads,
                                  ThreadPool* borrowed);

  size_t num_streams_ = 0;
  Timestamp timeline_length_ = 0;
  Timestamp window_start_ = 0;  // first retained timestamp
  std::vector<std::vector<TermPosting>> postings_;  // indexed by TermId
  std::vector<TermId> dirty_terms_;  // touched by appends; may hold dupes
  static const std::vector<TermPosting> kEmpty;
};

}  // namespace stburst

#endif  // STBURST_STREAM_FREQUENCY_H_
