// Term-frequency views over a collection.
//
// Dx[i][t] (paper Eq. 6) — the total frequency of term t in the documents
// stream Dx reported at timestamp i — is the sole input the mining
// algorithms need. TermSeries is the dense n-streams x L-timestamps matrix
// of those values for one term; FrequencyIndex materializes it from a
// document Collection. The synthetic generators construct TermSeries
// directly, bypassing documents.

#ifndef STBURST_STREAM_FREQUENCY_H_
#define STBURST_STREAM_FREQUENCY_H_

#include <span>
#include <vector>

#include "stburst/common/statusor.h"
#include "stburst/stream/collection.h"
#include "stburst/stream/types.h"

namespace stburst {

/// Dense frequency matrix for a single term: rows are streams, columns are
/// timestamps. Values are real (generators inject fractional frequencies).
class TermSeries {
 public:
  /// Zero-initialized n x L matrix. Requires n > 0 would be too strict (a
  /// collection may have no streams); L must be positive.
  TermSeries(size_t num_streams, Timestamp timeline_length);

  size_t num_streams() const { return num_streams_; }
  Timestamp timeline_length() const { return timeline_length_; }

  double at(StreamId stream, Timestamp time) const {
    return data_[Index(stream, time)];
  }
  void set(StreamId stream, Timestamp time, double value) {
    data_[Index(stream, time)] = value;
  }
  void add(StreamId stream, Timestamp time, double delta) {
    data_[Index(stream, time)] += delta;
  }

  /// Frequency sequence of one stream over the whole timeline (length L):
  /// a zero-copy view into the row-major buffer, valid until the series is
  /// mutated or destroyed.
  std::span<const double> StreamRow(StreamId stream) const {
    return {data_.data() + Index(stream, 0), static_cast<size_t>(timeline_length_)};
  }

  /// Frequencies of all streams at one timestamp (length n) — the snapshot
  /// D[i] restricted to this term. Columns are strided in memory, so this
  /// one copies.
  std::vector<double> SnapshotColumn(Timestamp time) const;

  /// Element-wise sum across streams (length L): the single merged stream
  /// the TB baseline operates on (§6.3).
  std::vector<double> AggregateOverStreams() const;

  /// Sum of all entries.
  double Total() const;

  /// Resets every entry to zero without reallocating — lets the batch miner
  /// reuse one scratch matrix across terms.
  void Clear();

 private:
  size_t Index(StreamId stream, Timestamp time) const;

  size_t num_streams_;
  Timestamp timeline_length_;
  std::vector<double> data_;  // row-major: stream * L + time
};

/// One (stream, time, count) observation for a term.
struct TermPosting {
  StreamId stream;
  Timestamp time;
  double count;
};

/// Sparse per-term frequency postings over a document collection, built once
/// and then queried per term. Postings are sorted by (stream, time).
class FrequencyIndex {
 public:
  /// Scans every document in `collection` once.
  static FrequencyIndex Build(const Collection& collection);

  size_t num_terms() const { return postings_.size(); }
  size_t num_streams() const { return num_streams_; }
  Timestamp timeline_length() const { return timeline_length_; }

  /// Sparse postings for a term; empty for out-of-range ids.
  const std::vector<TermPosting>& postings(TermId term) const;

  /// Materializes the dense matrix for one term.
  TermSeries DenseSeries(TermId term) const;

  /// Fills a caller-owned scratch matrix (dimensions must match
  /// num_streams() x timeline_length()) with the term's dense frequencies.
  /// Allocation-free; the batch miner calls this once per term per worker.
  void FillSeries(TermId term, TermSeries* series) const;

  /// Total corpus frequency of a term.
  double TotalCount(TermId term) const;

 private:
  FrequencyIndex() = default;

  size_t num_streams_ = 0;
  Timestamp timeline_length_ = 0;
  std::vector<std::vector<TermPosting>> postings_;  // indexed by TermId
  static const std::vector<TermPosting> kEmpty;
};

}  // namespace stburst

#endif  // STBURST_STREAM_FREQUENCY_H_
