#include "stburst/core/stcomb.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "stburst/common/logging.h"
#include "stburst/core/max_clique.h"

namespace stburst {

StComb::StComb(StCombOptions options) : options_(options) {}

std::vector<StreamInterval> StComb::ExtractStreamIntervals(
    const TermSeries& series) const {
  std::vector<StreamInterval> out;
  for (StreamId s = 0; s < series.num_streams(); ++s) {
    for (const BurstyInterval& bi :
         ExtractBurstyIntervals(series.StreamRow(s),
                                options_.min_interval_burstiness)) {
      out.push_back(StreamInterval{s, bi.interval, bi.burstiness});
    }
  }
  return out;
}

std::vector<CombinatorialPattern> StComb::MinePatterns(
    const TermSeries& series) const {
  return MineFromIntervals(ExtractStreamIntervals(series));
}

// Iterated maximum-weight clique without per-round rebuilds. A clique on an
// interval graph is a stabbing set (Helly in 1-D), so each round scans the
// endpoint events in coordinate order and maximizes the active weight; the
// event list is sorted ONCE, and after each report the events and the live
// index list are compacted in place (order-preserving, so the list stays
// sorted and the per-stream tie-breaking stays in index order). All events
// sharing a coordinate are applied before the coordinate is evaluated,
// which makes the intra-coordinate order irrelevant and keeps
// closed-interval semantics ([a,b] and [b,c] intersect) via the end+1 close
// coordinate. This matches iterating MaxWeightClique over the shrinking
// pool exactly — same stabs, same members, same scores — at
// O(m log m + rounds * m_live) instead of O(rounds * m log m) with two
// allocations per round.
std::vector<CombinatorialPattern> StComb::MineFromIntervals(
    std::vector<StreamInterval> intervals) const {
  std::vector<CombinatorialPattern> patterns;

  struct Event {
    Timestamp at;
    uint32_t idx;
    bool open;
  };
  thread_local std::vector<Event> events;
  thread_local std::vector<uint32_t> alive;
  events.clear();
  alive.clear();
  for (size_t i = 0; i < intervals.size(); ++i) {
    const StreamInterval& si = intervals[i];
    if (si.burstiness <= 0.0 || !si.interval.valid()) continue;
    alive.push_back(static_cast<uint32_t>(i));
    events.push_back(Event{si.interval.start, static_cast<uint32_t>(i), true});
    events.push_back(Event{static_cast<Timestamp>(si.interval.end + 1),
                           static_cast<uint32_t>(i), false});
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.at < b.at; });

  thread_local std::unordered_map<int64_t, size_t> best_by_tag;
  thread_local std::vector<uint32_t> members;

  while (patterns.size() < options_.max_patterns && !alive.empty()) {
    // Round sweep: maximum active weight over the surviving intervals.
    double active = 0.0;
    double best_weight = 0.0;
    Timestamp best_stab = 0;
    for (size_t i = 0; i < events.size();) {
      const Timestamp at = events[i].at;
      while (i < events.size() && events[i].at == at) {
        const Event& e = events[i];
        active += e.open ? intervals[e.idx].burstiness
                         : -intervals[e.idx].burstiness;
        ++i;
      }
      if (active > best_weight) {
        best_weight = active;
        best_stab = at;
      }
    }
    if (best_weight <= 0.0) break;

    // Members: the stabbed intervals, heaviest per stream (the paper's
    // one-interval-per-stream eligibility rule). `alive` is ascending, so
    // ties resolve exactly as an index-order scan of the full pool.
    best_by_tag.clear();
    for (uint32_t idx : alive) {
      const StreamInterval& si = intervals[idx];
      if (!si.interval.Contains(best_stab)) continue;
      auto [it, inserted] =
          best_by_tag.emplace(static_cast<int64_t>(si.stream), size_t{idx});
      if (!inserted && intervals[it->second].burstiness < si.burstiness) {
        it->second = idx;
      }
    }

    // Fold members in ascending pool order: the map's iteration order
    // depends on its (thread_local) bucket history, and the score is a
    // float sum whose result must not — determinism across thread counts
    // and scheduling requires a fixed fold order.
    members.clear();
    for (const auto& [tag, idx] : best_by_tag) {
      members.push_back(static_cast<uint32_t>(idx));
    }
    std::sort(members.begin(), members.end());

    CombinatorialPattern p;
    Interval common;
    bool first = true;
    for (uint32_t idx : members) {
      const StreamInterval& si = intervals[idx];
      p.score += si.burstiness;
      p.streams.push_back(si.stream);
      common = first ? si.interval : common.Intersect(si.interval);
      first = false;
      // Remove the reported interval from the pool so later patterns do not
      // reuse it; the compaction below drops it from the sweep structures.
      intervals[idx].burstiness = 0.0;
    }
    STB_DCHECK(common.valid()) << "clique members must share a segment";
    p.timeframe = common;
    std::sort(p.streams.begin(), p.streams.end());

    if (p.streams.size() >= options_.min_streams) {
      patterns.push_back(std::move(p));
    }

    alive.erase(std::remove_if(alive.begin(), alive.end(),
                               [&](uint32_t idx) {
                                 return intervals[idx].burstiness <= 0.0;
                               }),
                alive.end());
    events.erase(std::remove_if(events.begin(), events.end(),
                                [&](const Event& e) {
                                  return intervals[e.idx].burstiness <= 0.0;
                                }),
                 events.end());
  }

  std::sort(patterns.begin(), patterns.end(),
            [](const CombinatorialPattern& a, const CombinatorialPattern& b) {
              return a.score > b.score;
            });
  return patterns;
}

}  // namespace stburst
