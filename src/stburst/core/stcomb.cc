#include "stburst/core/stcomb.h"

#include <algorithm>

#include "stburst/common/logging.h"
#include "stburst/core/max_clique.h"

namespace stburst {

StComb::StComb(StCombOptions options) : options_(options) {}

std::vector<StreamInterval> StComb::ExtractStreamIntervals(
    const TermSeries& series) const {
  std::vector<StreamInterval> out;
  for (StreamId s = 0; s < series.num_streams(); ++s) {
    std::vector<double> row = series.StreamRow(s);
    for (const BurstyInterval& bi :
         ExtractBurstyIntervals(row, options_.min_interval_burstiness)) {
      out.push_back(StreamInterval{s, bi.interval, bi.burstiness});
    }
  }
  return out;
}

std::vector<CombinatorialPattern> StComb::MinePatterns(
    const TermSeries& series) const {
  return MineFromIntervals(ExtractStreamIntervals(series));
}

std::vector<CombinatorialPattern> StComb::MineFromIntervals(
    std::vector<StreamInterval> intervals) const {
  std::vector<CombinatorialPattern> patterns;

  // Working pool of interval-graph vertices, indices stable across rounds.
  std::vector<WeightedInterval> pool;
  pool.reserve(intervals.size());
  for (const StreamInterval& si : intervals) {
    pool.push_back(WeightedInterval{si.interval, si.burstiness,
                                    static_cast<int64_t>(si.stream)});
  }

  while (patterns.size() < options_.max_patterns) {
    CliqueResult clique = MaxWeightClique(pool);
    if (clique.empty() || clique.weight <= 0.0) break;

    CombinatorialPattern p;
    p.score = clique.weight;
    Interval common;
    bool first = true;
    for (size_t idx : clique.members) {
      const WeightedInterval& wi = pool[idx];
      p.streams.push_back(static_cast<StreamId>(wi.tag));
      common = first ? wi.interval : common.Intersect(wi.interval);
      first = false;
    }
    STB_DCHECK(common.valid()) << "clique members must share a segment";
    p.timeframe = common;
    std::sort(p.streams.begin(), p.streams.end());

    // Remove the reported intervals from the pool (weight 0 => ignored by
    // the sweep) so later patterns do not reuse them.
    for (size_t idx : clique.members) pool[idx].weight = 0.0;

    if (p.streams.size() >= options_.min_streams) {
      patterns.push_back(std::move(p));
    }
  }

  std::sort(patterns.begin(), patterns.end(),
            [](const CombinatorialPattern& a, const CombinatorialPattern& b) {
              return a.score > b.score;
            });
  return patterns;
}

}  // namespace stburst
