// Closed 1-D intervals on the discrete timeline.

#ifndef STBURST_CORE_INTERVAL_H_
#define STBURST_CORE_INTERVAL_H_

#include <algorithm>
#include <string>

#include "stburst/common/string_util.h"
#include "stburst/stream/types.h"

namespace stburst {

/// A closed interval [start, end] of timestamps; valid iff start <= end.
struct Interval {
  Timestamp start = 0;
  Timestamp end = -1;  // default-constructed interval is invalid/empty

  bool valid() const { return start <= end; }

  /// Number of timestamps covered (|I|); 0 when invalid.
  Timestamp length() const { return valid() ? end - start + 1 : 0; }

  bool Contains(Timestamp t) const { return valid() && t >= start && t <= end; }

  bool Intersects(const Interval& o) const {
    return valid() && o.valid() && start <= o.end && o.start <= end;
  }

  /// Intersection; invalid when disjoint.
  Interval Intersect(const Interval& o) const {
    return Interval{std::max(start, o.start), std::min(end, o.end)};
  }

  /// Smallest interval covering both.
  Interval Union(const Interval& o) const {
    if (!valid()) return o;
    if (!o.valid()) return *this;
    return Interval{std::min(start, o.start), std::max(end, o.end)};
  }

  /// |I ∩ O| / |I ∪ O| with the union measured as covered timestamps of the
  /// two intervals (not the hull). 0 when either is invalid.
  double TemporalJaccard(const Interval& o) const {
    if (!valid() || !o.valid()) return 0.0;
    Timestamp inter = Intersect(o).length();
    Timestamp uni = length() + o.length() - inter;
    return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
  }

  std::string ToString() const {
    return valid() ? StringPrintf("[%d:%d]", start, end) : "[invalid]";
  }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.start == b.start && a.end == b.end;
  }
  friend bool operator!=(const Interval& a, const Interval& b) {
    return !(a == b);
  }
};

}  // namespace stburst

#endif  // STBURST_CORE_INTERVAL_H_
