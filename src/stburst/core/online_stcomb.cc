#include "stburst/core/online_stcomb.h"

#include "stburst/core/temporal.h"

namespace stburst {

OnlineStComb::OnlineStComb(size_t num_streams, StCombOptions options)
    : options_(options), miner_(options), streams_(num_streams) {}

Status OnlineStComb::Push(const std::vector<double>& frequencies) {
  if (frequencies.size() != streams_.size()) {
    return Status::InvalidArgument("snapshot size does not match stream count");
  }
  for (StreamId s = 0; s < streams_.size(); ++s) {
    StreamState& st = streams_[s];
    st.raw.push_back(frequencies[s]);
    if (frequencies[s] != 0.0) {
      st.mass += frequencies[s];
      st.dirty = true;
    } else if (st.mass > 0.0) {
      // A zero extends the timeline (N changes), which shifts every
      // transformed score; intervals are stale for any stream with mass.
      st.dirty = true;
    }
  }
  ++time_;
  pooled_dirty_ = true;
  return Status::OK();
}

Status OnlineStComb::PushFromIndex(const FrequencyIndex& index, TermId term) {
  if (index.num_streams() != streams_.size()) {
    return Status::InvalidArgument("index stream count does not match miner");
  }
  if (time_ >= index.timeline_length()) {
    return Status::FailedPrecondition(
        "online miner is already caught up with the index");
  }
  return Push(index.SnapshotColumn(term, time_));
}

void OnlineStComb::RefreshStream(StreamId s) {
  StreamState& st = streams_[s];
  st.intervals.clear();
  if (st.mass > 0.0) {
    for (const BurstyInterval& bi :
         ExtractBurstyIntervals(st.raw, options_.min_interval_burstiness)) {
      st.intervals.push_back(StreamInterval{s, bi.interval, bi.burstiness});
    }
  }
  st.dirty = false;
}

const std::vector<StreamInterval>& OnlineStComb::CurrentIntervals() {
  if (pooled_dirty_) {
    pooled_.clear();
    for (StreamId s = 0; s < streams_.size(); ++s) {
      if (streams_[s].dirty) RefreshStream(s);
      pooled_.insert(pooled_.end(), streams_[s].intervals.begin(),
                     streams_[s].intervals.end());
    }
    pooled_dirty_ = false;
  }
  return pooled_;
}

std::vector<CombinatorialPattern> OnlineStComb::CurrentPatterns() {
  return miner_.MineFromIntervals(CurrentIntervals());
}

}  // namespace stburst
