#include "stburst/core/online_stcomb.h"

#include "stburst/core/temporal.h"

namespace stburst {

OnlineStComb::OnlineStComb(size_t num_streams, StCombOptions options)
    : options_(options), miner_(options), streams_(num_streams) {}

Status OnlineStComb::Push(const std::vector<double>& frequencies) {
  if (frequencies.size() != streams_.size()) {
    return Status::InvalidArgument("snapshot size does not match stream count");
  }
  for (StreamId s = 0; s < streams_.size(); ++s) {
    StreamState& st = streams_[s];
    st.raw.push_back(frequencies[s]);
    if (frequencies[s] != 0.0) {
      st.mass += frequencies[s];
      st.dirty = true;
    } else if (st.mass > 0.0) {
      // A zero extends the timeline (N changes), which shifts every
      // transformed score; intervals are stale for any stream with mass.
      st.dirty = true;
    }
  }
  ++time_;
  pooled_dirty_ = true;
  return Status::OK();
}

Status OnlineStComb::PushFromIndex(const FrequencyIndex& index, TermId term) {
  if (index.num_streams() != streams_.size()) {
    return Status::InvalidArgument("index stream count does not match miner");
  }
  if (time_ >= index.timeline_length()) {
    return Status::FailedPrecondition(
        "online miner is already caught up with the index");
  }
  if (time_ < index.window_start()) {
    // SnapshotColumn would silently return zeros for an evicted timestamp,
    // corrupting the miner's mass/N normalization. Attach watchlists before
    // the index evicts past them (or evict the miner in lockstep).
    return Status::FailedPrecondition(
        "index evicted the timestamp the miner needs next");
  }
  return Push(index.SnapshotColumn(term, time_));
}

Status OnlineStComb::EvictBefore(Timestamp cutoff) {
  if (cutoff <= origin_) return Status::OK();
  if (cutoff > time_) {
    return Status::OutOfRange("eviction cutoff beyond consumed history");
  }
  const size_t drop = static_cast<size_t>(cutoff - origin_);
  for (StreamState& st : streams_) {
    st.raw.erase(st.raw.begin(), st.raw.begin() + static_cast<ptrdiff_t>(drop));
    // Re-sum instead of subtracting the evicted prefix: the mass must be
    // exactly the fold batch STComb computes over the windowed series, or
    // the online/batch parity decays to float drift over long feeds.
    double mass = 0.0;
    for (double v : st.raw) mass += v;
    st.mass = mass;
    st.dirty = true;
  }
  origin_ = cutoff;
  pooled_dirty_ = true;
  return Status::OK();
}

void OnlineStComb::RefreshStream(StreamId s) {
  StreamState& st = streams_[s];
  st.intervals.clear();
  if (st.mass > 0.0) {
    for (const BurstyInterval& bi :
         ExtractBurstyIntervals(st.raw, options_.min_interval_burstiness)) {
      st.intervals.push_back(StreamInterval{
          s, Interval{bi.interval.start + origin_, bi.interval.end + origin_},
          bi.burstiness});
    }
  }
  st.dirty = false;
}

const std::vector<StreamInterval>& OnlineStComb::CurrentIntervals() {
  if (pooled_dirty_) {
    pooled_.clear();
    for (StreamId s = 0; s < streams_.size(); ++s) {
      if (streams_[s].dirty) RefreshStream(s);
      pooled_.insert(pooled_.end(), streams_[s].intervals.begin(),
                     streams_[s].intervals.end());
    }
    pooled_dirty_ = false;
  }
  return pooled_;
}

std::vector<CombinatorialPattern> OnlineStComb::CurrentPatterns() {
  return miner_.MineFromIntervals(CurrentIntervals());
}

}  // namespace stburst
