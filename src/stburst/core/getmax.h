// GetMax — Ruzzo & Tompa's linear-time algorithm for all maximal scoring
// subsequences (paper Appendix C, reference [21]).
//
// Given a sequence of real scores, a maximal segment is a contiguous
// subsequence whose score cannot be increased by extending or trimming it,
// and that is not contained in any higher-scoring segment. STLocal feeds
// each tracked region's per-timestamp r-scores through an online instance of
// this algorithm to maintain its maximal spatiotemporal windows, and the
// temporal-burst extractor of [14] reduces to it as well (DESIGN.md §4).

#ifndef STBURST_CORE_GETMAX_H_
#define STBURST_CORE_GETMAX_H_

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace stburst {

/// A maximal scoring segment: inclusive index range plus its score.
struct Segment {
  size_t start = 0;
  size_t end = 0;  // inclusive
  double score = 0.0;

  friend bool operator==(const Segment& a, const Segment& b) {
    return a.start == b.start && a.end == b.end && a.score == b.score;
  }
};

/// Online GetMax: scores arrive one at a time via Add(); CurrentSegments()
/// is always the set of maximal segments of the prefix consumed so far.
/// Per-element cost is amortized O(list traversal) — linear overall for the
/// short candidate lists burst mining produces.
class OnlineMaxSegments {
 public:
  /// Consumes the next score.
  void Add(double score);

  /// Number of scores consumed.
  size_t size() const { return n_; }

  /// Sum of all consumed scores (S.total in Algorithm 2). When this drops
  /// below zero, no future maximal segment can start in the consumed prefix
  /// and the owner may discard the sequence.
  double total() const { return cum_; }

  /// Maximal segments of the consumed prefix, in left-to-right order.
  std::vector<Segment> CurrentSegments() const;

  /// Appends the maximal segments to `out` without allocating a fresh
  /// vector — the per-(term, stream) hot path of batch mining.
  void AppendCurrentSegments(std::vector<Segment>* out) const;

  /// Number of maximal segments currently maintained, without materializing
  /// them (Figure 6 reports this count per timestamp).
  size_t num_candidates() const { return cands_.size(); }

  /// Resets to the empty sequence.
  void Reset();

 private:
  // Candidate segment: [start, end] with l = cumulative score before start,
  // r = cumulative score through end (Ruzzo–Tompa's bookkeeping).
  struct Candidate {
    size_t start;
    size_t end;
    double l;
    double r;
  };

  std::vector<Candidate> cands_;
  double cum_ = 0.0;
  size_t n_ = 0;
};

/// Batch variant: all maximal segments of `scores`, left to right.
std::vector<Segment> MaximalSegments(std::span<const double> scores);

/// Braced-list convenience (spans cannot bind initializer lists directly).
inline std::vector<Segment> MaximalSegments(std::initializer_list<double> scores) {
  return MaximalSegments(std::span<const double>(scores.begin(), scores.size()));
}

}  // namespace stburst

#endif  // STBURST_CORE_GETMAX_H_
