#include "stburst/core/getmax.h"

namespace stburst {

void OnlineMaxSegments::Add(double score) {
  const size_t idx = n_++;
  if (score <= 0.0) {
    // Non-positive scores never open or extend a candidate directly; they
    // only contribute through the cumulative totals.
    cum_ += score;
    return;
  }

  Candidate k{idx, idx, cum_, cum_ + score};
  cum_ += score;

  // Ruzzo–Tompa steps 1-2: find the rightmost candidate j with l_j < l_k.
  //  - none, or r_j >= r_k: append k.
  //  - otherwise merge: k absorbs candidates j..top and restarts the search.
  for (;;) {
    size_t j = cands_.size();
    while (j > 0 && cands_[j - 1].l >= k.l) --j;
    if (j == 0) {
      cands_.push_back(k);
      return;
    }
    const Candidate& cj = cands_[j - 1];
    if (cj.r >= k.r) {
      cands_.push_back(k);
      return;
    }
    // Extend k leftwards to cj's start; drop cj and everything after it.
    k.start = cj.start;
    k.l = cj.l;
    cands_.resize(j - 1);
  }
}

std::vector<Segment> OnlineMaxSegments::CurrentSegments() const {
  std::vector<Segment> out;
  out.reserve(cands_.size());
  AppendCurrentSegments(&out);
  return out;
}

void OnlineMaxSegments::AppendCurrentSegments(std::vector<Segment>* out) const {
  for (const Candidate& c : cands_) {
    out->push_back(Segment{c.start, c.end, c.r - c.l});
  }
}

void OnlineMaxSegments::Reset() {
  cands_.clear();
  cum_ = 0.0;
  n_ = 0;
}

std::vector<Segment> MaximalSegments(std::span<const double> scores) {
  OnlineMaxSegments online;
  for (double s : scores) online.Add(s);
  return online.CurrentSegments();
}

}  // namespace stburst
