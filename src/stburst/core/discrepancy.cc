#include "stburst/core/discrepancy.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "stburst/common/logging.h"
#include "stburst/common/simd.h"
#include "stburst/geo/grid.h"

namespace stburst {

namespace {

// Per-thread scratch of the solver. `cells` is the dense rows x cols weight
// matrix; it is kept all-zero *between* solves (the touched-cell reset
// below), so a solve only pays for the cells its points actually occupy —
// never an O(rows · cols) clear. `cell_epoch` stamps which cells were
// written during the current solve, which both dedupes the touched list
// (coincident points share a cell) and distinguishes "first write" (store)
// from "accumulate" (add).
//
// Buffers stabilize at the largest binning each thread sees: R-Bursty and
// STLocal solve once per snapshot per term against a fixed binning, and the
// batch miner's workers share one binning across the whole vocabulary.
struct SolveScratch {
  std::vector<double> cells;        // row-major; all-zero between solves
  std::vector<uint32_t> cell_epoch; // epoch of the last write per cell
  uint32_t epoch = 0;               // current solve's stamp
  std::vector<size_t> touched;      // unique cell indices written this solve
  std::vector<double> col_sums;
  std::vector<double> row_pos_mass;    // positive cell mass per row
  std::vector<double> suffix_pos_mass; // positive mass in rows >= r
  std::vector<size_t> positive_rows;
};

SolveScratch& LocalScratch(size_t ncells) {
  thread_local SolveScratch scratch;
  if (scratch.cells.size() < ncells) {
    scratch.cells.resize(ncells, 0.0);
    scratch.cell_epoch.resize(ncells, 0);
  }
  if (++scratch.epoch == 0) {  // stamp wrapped: invalidate every old stamp
    std::fill(scratch.cell_epoch.begin(), scratch.cell_epoch.end(), 0u);
    scratch.epoch = 1;
  }
  scratch.touched.clear();
  return scratch;
}

// Kadane sweep over row bands with two admissible-pruning levels:
//  - anchor level: the positive mass in rows >= r1 bounds every rectangle
//    anchored at r1; suffix mass is non-increasing in r1, so once it cannot
//    beat the incumbent no later anchor can either and the sweep stops.
//  - band level: the positive mass inside [r1, r2] bounds the band's Kadane
//    score; bands that cannot beat the incumbent only accumulate column
//    sums (one vectorized pass) and skip the max-subarray bookkeeping.
// Tie-breaking (strict improvement only) keeps the pruned solver's output
// independent of how many bands the bounds let it skip.
//
// The across-column passes (band accumulation, and the col_sums + row
// update ahead of the Kadane recurrence) go through simd::AddInto — lanes
// are independent columns, no fold is reassociated, so the SIMD and scalar
// paths are bit-identical (tested). The Kadane recurrence itself is a
// loop-carried dependency and stays scalar; under KadaneMode::kVectorized
// each admitted band first runs simd::MaxSubarrayMayExceed (the vectorized
// prefix-scan filter), and only bands the filter cannot prove beaten run
// the recurrence. The filter's `false` is exact (conservative rounding
// slack), so the emitted rectangle matches the scalar mode's.
MaxRectResult SolveCells(const SpatialBinning& b, SolveScratch& scratch) {
  MaxRectResult result;
  const size_t rows = b.rows();
  const size_t cols = b.cols();
  if (rows == 0 || cols == 0) return result;
  const double* cells = scratch.cells.data();

  // Positive mass per row, from the touched cells alone: untouched cells
  // are zero by the scratch invariant, so this is the same per-row total
  // the old full matrix scan produced at O(points) instead of
  // O(rows · cols) — the win that makes quiet snapshots (no positive
  // cell anywhere) cost only the scatter.
  std::vector<double>& row_pos_mass = scratch.row_pos_mass;
  row_pos_mass.assign(rows, 0.0);
  for (size_t idx : scratch.touched) {
    const double v = cells[idx];
    if (v > 0.0) row_pos_mass[idx / cols] += v;
  }
  // Rows hosting positive mass: an optimal rectangle can be shrunk until
  // its top and bottom edges touch positive cells.
  std::vector<size_t>& positive_rows = scratch.positive_rows;
  positive_rows.clear();
  for (size_t r = 0; r < rows; ++r) {
    if (row_pos_mass[r] > 0.0) positive_rows.push_back(r);
  }
  if (positive_rows.empty()) return result;
  const size_t last_positive_row = positive_rows.back();

  std::vector<double>& suffix_pos_mass = scratch.suffix_pos_mass;
  suffix_pos_mass.assign(rows + 1, 0.0);
  for (size_t r = rows; r-- > 0;) {
    suffix_pos_mass[r] = suffix_pos_mass[r + 1] + row_pos_mass[r];
  }

  double best_score = 0.0;
  size_t best_r1 = 0, best_r2 = 0, best_c1 = 0, best_c2 = 0;
  bool found = false;

  const bool vectorized_kadane =
      b.kadane() == MaxRectOptions::KadaneMode::kVectorized;
  std::vector<double>& col_sums = scratch.col_sums;
  col_sums.resize(cols);
  for (size_t anchor = 0; anchor < positive_rows.size(); ++anchor) {
    const size_t r1 = positive_rows[anchor];
    if (suffix_pos_mass[r1] <= best_score) break;  // nor can any later anchor

    std::fill(col_sums.begin(), col_sums.end(), 0.0);
    double band_pos_mass = 0.0;
    size_t next_positive = anchor;
    // Extend the band downward through every row (non-positive rows inside
    // the band still contribute their weight), evaluating only when the
    // band's bottom edge also touches a positive row.
    for (size_t r2 = r1; r2 <= last_positive_row; ++r2) {
      const double* row = cells + r2 * cols;
      band_pos_mass += row_pos_mass[r2];
      const bool evaluate =
          positive_rows[next_positive] == r2 && band_pos_mass > best_score;
      if (positive_rows[next_positive] == r2) ++next_positive;

      simd::AddInto(col_sums.data(), row, cols);
      if (evaluate &&
          (!vectorized_kadane ||
           simd::MaxSubarrayMayExceed(col_sums.data(), cols, best_score))) {
        // Max-subarray recurrence over the freshly accumulated column sums.
        double run = 0.0;
        size_t run_start = 0;
        for (size_t c = 0; c < cols; ++c) {
          const double v = col_sums[c];
          if (run <= 0.0) {
            run = v;
            run_start = c;
          } else {
            run += v;
          }
          if (run > best_score) {
            best_score = run;
            best_r1 = r1;
            best_r2 = r2;
            best_c1 = run_start;
            best_c2 = c;
            found = true;
          }
        }
      }
      if (next_positive >= positive_rows.size()) break;
    }
  }
  if (!found) return result;

  result.score = best_score;
  result.rect = Rect(b.col_lo()[best_c1], b.row_lo()[best_r1],
                     b.col_hi()[best_c2], b.row_hi()[best_r2]);
  // Members come from the binned indices: exactly the points whose mass the
  // winning cells aggregated — no geometric rescan.
  const std::span<const uint32_t> point_rows = b.point_rows();
  const std::span<const uint32_t> point_cols = b.point_cols();
  const size_t n = b.num_points();
  for (size_t i = 0; i < n; ++i) {
    if (point_rows[i] >= best_r1 && point_rows[i] <= best_r2 &&
        point_cols[i] >= best_c1 && point_cols[i] <= best_c2) {
      result.points_inside.push_back(i);
    }
  }
  return result;
}

}  // namespace

StatusOr<SpatialBinning> SpatialBinning::Create(
    const std::vector<Point2D>& points, const MaxRectOptions& options) {
  SpatialBinning b;
  b.kadane_ = options.kadane;
  if (options.mode == MaxRectOptions::Mode::kGrid) {
    if (options.grid_cols == 0 || options.grid_rows == 0) {
      return Status::InvalidArgument("grid resolution must be positive");
    }
    Rect bounds = Rect::BoundingBox(points);
    if (bounds.empty()) return b;  // no points: zero-cell binning
    if (bounds.width() > 0.0 && bounds.height() > 0.0) {
      STB_ASSIGN_OR_RETURN(
          UniformGrid grid,
          UniformGrid::Create(bounds, options.grid_cols, options.grid_rows));
      b.rows_ = grid.rows();
      b.cols_ = grid.cols();
      b.point_col_.resize(points.size());
      b.point_row_.resize(points.size());
      for (size_t i = 0; i < points.size(); ++i) {
        size_t col, row;
        grid.CellCoords(points[i], &col, &row);
        b.point_col_[i] = static_cast<uint32_t>(col);
        b.point_row_[i] = static_cast<uint32_t>(row);
      }
      b.col_lo_.resize(b.cols_);
      b.col_hi_.resize(b.cols_);
      b.row_lo_.resize(b.rows_);
      b.row_hi_.resize(b.rows_);
      for (size_t c = 0; c < b.cols_; ++c) {
        Rect r = grid.CellRect(c, 0);
        b.col_lo_[c] = r.min_x();
        b.col_hi_[c] = r.max_x();
      }
      for (size_t r = 0; r < b.rows_; ++r) {
        Rect rr = grid.CellRect(0, r);
        b.row_lo_[r] = rr.min_y();
        b.row_hi_[r] = rr.max_y();
      }
      return b;
    }
    // Degenerate map (all points collinear): fall through to the exact
    // compression, which handles 1-D layouts natively.
  }
  std::vector<double>& xs = b.col_lo_;
  std::vector<double>& ys = b.row_lo_;
  xs.reserve(points.size());
  ys.reserve(points.size());
  for (const Point2D& p : points) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());
  b.cols_ = xs.size();
  b.rows_ = ys.size();
  b.col_hi_ = xs;
  b.row_hi_ = ys;
  b.point_col_.resize(points.size());
  b.point_row_.resize(points.size());
  auto index_of = [](const std::vector<double>& v, double key) {
    return static_cast<uint32_t>(
        std::lower_bound(v.begin(), v.end(), key) - v.begin());
  };
  for (size_t i = 0; i < points.size(); ++i) {
    b.point_col_[i] = index_of(xs, points[i].x);
    b.point_row_[i] = index_of(ys, points[i].y);
  }
  return b;
}

StatusOr<MaxRectResult> MaxWeightRectangle(const SpatialBinning& binning,
                                           std::span<const double> weights) {
  if (weights.size() != binning.num_points()) {
    return Status::InvalidArgument("weights length does not match binning");
  }
  const size_t ncells = binning.rows() * binning.cols();
  if (ncells == 0) return MaxRectResult{};

  SolveScratch& scratch = LocalScratch(ncells);
  // O(points) weight scatter: first touch of a cell stores, later touches
  // accumulate — the fold over a cell's coincident points runs in point
  // order, matching a scatter into a zeroed matrix.
  const size_t n = weights.size();
  const size_t cols = binning.cols();
  const std::span<const uint32_t> point_rows = binning.point_rows();
  const std::span<const uint32_t> point_cols = binning.point_cols();
  for (size_t i = 0; i < n; ++i) {
    const double w = weights[i];
    if (w == 0.0) continue;
    const size_t idx = static_cast<size_t>(point_rows[i]) * cols + point_cols[i];
    if (scratch.cell_epoch[idx] != scratch.epoch) {
      scratch.cell_epoch[idx] = scratch.epoch;
      scratch.cells[idx] = w;
      scratch.touched.push_back(idx);
    } else {
      scratch.cells[idx] += w;
    }
  }

  MaxRectResult result = SolveCells(binning, scratch);

  // Touched-cell reset: restore the all-zero invariant at O(points) — a
  // masked scatter of zeros over the epoch-stamped touched list.
  simd::ScatterZero(scratch.cells.data(), scratch.touched.data(),
                    scratch.touched.size());
  return result;
}

StatusOr<MaxRectResult> MaxWeightRectangle(const std::vector<Point2D>& points,
                                           const std::vector<double>& weights,
                                           const MaxRectOptions& options) {
  if (points.size() != weights.size()) {
    return Status::InvalidArgument("points/weights length mismatch");
  }
  if (points.empty()) return MaxRectResult{};
  STB_ASSIGN_OR_RETURN(SpatialBinning binning,
                       SpatialBinning::Create(points, options));
  return MaxWeightRectangle(binning, weights);
}

}  // namespace stburst
