#include "stburst/core/discrepancy.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "stburst/common/logging.h"
#include "stburst/geo/grid.h"

namespace stburst {

namespace {

// A rows x cols matrix of aggregated weights, where column c spans
// [col_lo[c], col_hi[c]] in x and row r spans [row_lo[r], row_hi[r]] in y.
// In exact mode each row/column is a single coordinate (lo == hi); in grid
// mode they are grid-cell extents. point_row/point_col record the bin of
// every input point so the solver can collect a rectangle's members straight
// from the binning instead of rescanning the plane.
//
// Instances are reused as thread-local scratch across MaxWeightRectangle
// calls: R-Bursty and STLocal call the solver once per snapshot per term,
// and the buffers stabilize at the largest size seen by each thread.
struct CellMatrix {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<double> cells;  // row-major
  std::vector<double> col_lo, col_hi;
  std::vector<double> row_lo, row_hi;
  std::vector<uint32_t> point_row, point_col;  // bin of each input point
};

// Per-thread scratch of the band sweep.
struct SolveScratch {
  std::vector<double> col_sums;
  std::vector<double> row_pos_mass;    // positive mass per row
  std::vector<double> suffix_pos_mass; // positive mass in rows >= r
  std::vector<size_t> positive_rows;
};

// Kadane sweep over row bands with two admissible-pruning levels:
//  - anchor level: the positive mass in rows >= r1 bounds every rectangle
//    anchored at r1; suffix mass is non-increasing in r1, so once it cannot
//    beat the incumbent no later anchor can either and the sweep stops.
//  - band level: the positive mass inside [r1, r2] bounds the band's Kadane
//    score; bands that cannot beat the incumbent only accumulate column
//    sums (one fused pass) and skip the max-subarray bookkeeping.
// Tie-breaking (strict improvement only) matches the naive sweep, so the
// pruned solver returns bit-identical rectangles.
MaxRectResult SolveCells(const CellMatrix& m) {
  MaxRectResult result;
  if (m.rows == 0 || m.cols == 0) return result;

  thread_local SolveScratch scratch;
  std::vector<double>& col_sums = scratch.col_sums;
  std::vector<double>& row_pos_mass = scratch.row_pos_mass;
  std::vector<double>& suffix_pos_mass = scratch.suffix_pos_mass;
  std::vector<size_t>& positive_rows = scratch.positive_rows;

  row_pos_mass.assign(m.rows, 0.0);
  positive_rows.clear();
  for (size_t r = 0; r < m.rows; ++r) {
    const double* row = m.cells.data() + r * m.cols;
    double pos = 0.0;
    for (size_t c = 0; c < m.cols; ++c) {
      if (row[c] > 0.0) pos += row[c];
    }
    row_pos_mass[r] = pos;
    // Rows hosting positive mass: an optimal rectangle can be shrunk until
    // its top and bottom edges touch positive cells.
    if (pos > 0.0) positive_rows.push_back(r);
  }
  if (positive_rows.empty()) return result;
  const size_t last_positive_row = positive_rows.back();

  suffix_pos_mass.assign(m.rows + 1, 0.0);
  for (size_t r = m.rows; r-- > 0;) {
    suffix_pos_mass[r] = suffix_pos_mass[r + 1] + row_pos_mass[r];
  }

  double best_score = 0.0;
  size_t best_r1 = 0, best_r2 = 0, best_c1 = 0, best_c2 = 0;
  bool found = false;

  col_sums.resize(m.cols);
  for (size_t anchor = 0; anchor < positive_rows.size(); ++anchor) {
    const size_t r1 = positive_rows[anchor];
    if (suffix_pos_mass[r1] <= best_score) break;  // nor can any later anchor

    std::fill(col_sums.begin(), col_sums.end(), 0.0);
    double band_pos_mass = 0.0;
    size_t next_positive = anchor;
    // Extend the band downward through every row (non-positive rows inside
    // the band still contribute their weight), evaluating only when the
    // band's bottom edge also touches a positive row.
    for (size_t r2 = r1; r2 <= last_positive_row; ++r2) {
      const double* row = m.cells.data() + r2 * m.cols;
      band_pos_mass += row_pos_mass[r2];
      const bool evaluate =
          positive_rows[next_positive] == r2 && band_pos_mass > best_score;
      if (positive_rows[next_positive] == r2) ++next_positive;

      if (!evaluate) {
        for (size_t c = 0; c < m.cols; ++c) col_sums[c] += row[c];
      } else {
        // Fused pass: accumulate the new row into the column sums and run
        // the max-subarray recurrence on the updated values in one sweep.
        double run = 0.0;
        size_t run_start = 0;
        for (size_t c = 0; c < m.cols; ++c) {
          const double v = col_sums[c] + row[c];
          col_sums[c] = v;
          if (run <= 0.0) {
            run = v;
            run_start = c;
          } else {
            run += v;
          }
          if (run > best_score) {
            best_score = run;
            best_r1 = r1;
            best_r2 = r2;
            best_c1 = run_start;
            best_c2 = c;
            found = true;
          }
        }
      }
      if (next_positive >= positive_rows.size()) break;
    }
  }
  if (!found) return result;

  result.score = best_score;
  result.rect = Rect(m.col_lo[best_c1], m.row_lo[best_r1], m.col_hi[best_c2],
                     m.row_hi[best_r2]);
  // Members come from the binned indices: exactly the points whose mass the
  // winning cells aggregated — no geometric rescan.
  const size_t n = m.point_row.size();
  for (size_t i = 0; i < n; ++i) {
    if (m.point_row[i] >= best_r1 && m.point_row[i] <= best_r2 &&
        m.point_col[i] >= best_c1 && m.point_col[i] <= best_c2) {
      result.points_inside.push_back(i);
    }
  }
  return result;
}

void BuildExactMatrix(const std::vector<Point2D>& points,
                      const std::vector<double>& weights, CellMatrix* m) {
  std::vector<double>& xs = m->col_lo;
  std::vector<double>& ys = m->row_lo;
  xs.clear();
  ys.clear();
  xs.reserve(points.size());
  ys.reserve(points.size());
  for (const Point2D& p : points) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  m->cols = xs.size();
  m->rows = ys.size();
  m->col_hi = xs;
  m->row_hi = ys;
  m->cells.assign(m->rows * m->cols, 0.0);
  m->point_col.resize(points.size());
  m->point_row.resize(points.size());

  auto index_of = [](const std::vector<double>& v, double key) {
    return static_cast<uint32_t>(
        std::lower_bound(v.begin(), v.end(), key) - v.begin());
  };
  for (size_t i = 0; i < points.size(); ++i) {
    const uint32_t c = index_of(xs, points[i].x);
    const uint32_t r = index_of(ys, points[i].y);
    m->point_col[i] = c;
    m->point_row[i] = r;
    if (weights[i] != 0.0) m->cells[r * m->cols + c] += weights[i];
  }
}

Status BuildGridMatrix(const std::vector<Point2D>& points,
                       const std::vector<double>& weights, size_t grid_cols,
                       size_t grid_rows, CellMatrix* m) {
  Rect bounds = Rect::BoundingBox(points);
  if (bounds.empty()) {
    m->rows = m->cols = 0;
    return Status::OK();
  }
  if (bounds.width() <= 0.0 || bounds.height() <= 0.0) {
    // Degenerate map (all points collinear): fall back to the exact sweep,
    // which handles 1-D layouts natively.
    BuildExactMatrix(points, weights, m);
    return Status::OK();
  }
  STB_ASSIGN_OR_RETURN(UniformGrid grid,
                       UniformGrid::Create(bounds, grid_cols, grid_rows));

  m->rows = grid.rows();
  m->cols = grid.cols();
  m->cells.assign(m->rows * m->cols, 0.0);
  m->point_col.resize(points.size());
  m->point_row.resize(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    size_t col, row;
    grid.CellCoords(points[i], &col, &row);
    m->point_col[i] = static_cast<uint32_t>(col);
    m->point_row[i] = static_cast<uint32_t>(row);
    m->cells[row * m->cols + col] += weights[i];
  }

  m->col_lo.resize(m->cols);
  m->col_hi.resize(m->cols);
  m->row_lo.resize(m->rows);
  m->row_hi.resize(m->rows);
  for (size_t c = 0; c < m->cols; ++c) {
    Rect r = grid.CellRect(c, 0);
    m->col_lo[c] = r.min_x();
    m->col_hi[c] = r.max_x();
  }
  for (size_t r = 0; r < m->rows; ++r) {
    Rect rr = grid.CellRect(0, r);
    m->row_lo[r] = rr.min_y();
    m->row_hi[r] = rr.max_y();
  }
  return Status::OK();
}

}  // namespace

StatusOr<MaxRectResult> MaxWeightRectangle(const std::vector<Point2D>& points,
                                           const std::vector<double>& weights,
                                           const MaxRectOptions& options) {
  if (points.size() != weights.size()) {
    return Status::InvalidArgument("points/weights length mismatch");
  }
  if (points.empty()) return MaxRectResult{};

  thread_local CellMatrix matrix;
  if (options.mode == MaxRectOptions::Mode::kGrid) {
    if (options.grid_cols == 0 || options.grid_rows == 0) {
      return Status::InvalidArgument("grid resolution must be positive");
    }
    STB_RETURN_NOT_OK(BuildGridMatrix(points, weights, options.grid_cols,
                                      options.grid_rows, &matrix));
    return SolveCells(matrix);
  }
  BuildExactMatrix(points, weights, &matrix);
  return SolveCells(matrix);
}

}  // namespace stburst
