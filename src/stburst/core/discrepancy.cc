#include "stburst/core/discrepancy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stburst/common/logging.h"
#include "stburst/geo/grid.h"

namespace stburst {

namespace {

// A rows x cols matrix of aggregated weights, where column c spans
// [col_lo[c], col_hi[c]] in x and row r spans [row_lo[r], row_hi[r]] in y.
// In exact mode each row/column is a single coordinate (lo == hi); in grid
// mode they are grid-cell extents.
struct CellMatrix {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<double> cells;  // row-major
  std::vector<double> col_lo, col_hi;
  std::vector<double> row_lo, row_hi;

  double at(size_t r, size_t c) const { return cells[r * cols + c]; }
};

// Max-sum contiguous span of `sums`; returns {score, c1, c2}. If every
// prefix is empty the single best element is returned (possibly negative).
struct KadaneResult {
  double score = -std::numeric_limits<double>::infinity();
  size_t c1 = 0;
  size_t c2 = 0;
};

KadaneResult Kadane(const std::vector<double>& sums) {
  KadaneResult best;
  double run = 0.0;
  size_t run_start = 0;
  for (size_t c = 0; c < sums.size(); ++c) {
    if (run <= 0.0) {
      run = sums[c];
      run_start = c;
    } else {
      run += sums[c];
    }
    if (run > best.score) {
      best.score = run;
      best.c1 = run_start;
      best.c2 = c;
    }
  }
  return best;
}

MaxRectResult SolveCells(const CellMatrix& m,
                         const std::vector<Point2D>& points,
                         const std::vector<double>& weights) {
  MaxRectResult result;
  if (m.rows == 0 || m.cols == 0) return result;

  // Rows hosting at least one strictly positive cell: an optimal rectangle
  // can be shrunk until its top and bottom edges touch positive mass.
  std::vector<size_t> positive_rows;
  for (size_t r = 0; r < m.rows; ++r) {
    for (size_t c = 0; c < m.cols; ++c) {
      if (m.at(r, c) > 0.0) {
        positive_rows.push_back(r);
        break;
      }
    }
  }
  if (positive_rows.empty()) return result;
  const size_t last_positive_row = positive_rows.back();

  double best_score = 0.0;
  size_t best_r1 = 0, best_r2 = 0, best_c1 = 0, best_c2 = 0;
  bool found = false;

  std::vector<double> col_sums(m.cols);
  for (size_t r1 : positive_rows) {
    std::fill(col_sums.begin(), col_sums.end(), 0.0);
    // Extend the band downward through every row (non-positive rows inside
    // the band still contribute their weight), evaluating Kadane only when
    // the band's bottom edge also touches a positive row.
    size_t next_positive = 0;
    while (positive_rows[next_positive] < r1) ++next_positive;
    for (size_t r2 = r1; r2 <= last_positive_row; ++r2) {
      for (size_t c = 0; c < m.cols; ++c) col_sums[c] += m.at(r2, c);
      if (positive_rows[next_positive] != r2) continue;
      ++next_positive;
      KadaneResult k = Kadane(col_sums);
      if (k.score > best_score) {
        best_score = k.score;
        best_r1 = r1;
        best_r2 = r2;
        best_c1 = k.c1;
        best_c2 = k.c2;
        found = true;
      }
      if (next_positive >= positive_rows.size()) break;
    }
  }
  if (!found) return result;

  result.score = best_score;
  result.rect = Rect(m.col_lo[best_c1], m.row_lo[best_r1], m.col_hi[best_c2],
                     m.row_hi[best_r2]);
  for (size_t i = 0; i < points.size(); ++i) {
    (void)weights;
    if (result.rect.Contains(points[i])) result.points_inside.push_back(i);
  }
  return result;
}

CellMatrix BuildExactMatrix(const std::vector<Point2D>& points,
                            const std::vector<double>& weights) {
  CellMatrix m;
  std::vector<double> xs, ys;
  xs.reserve(points.size());
  ys.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    if (weights[i] == 0.0) continue;  // weightless points cannot matter
    xs.push_back(points[i].x);
    ys.push_back(points[i].y);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());
  if (xs.empty() || ys.empty()) return m;

  m.cols = xs.size();
  m.rows = ys.size();
  m.col_lo = xs;
  m.col_hi = xs;
  m.row_lo = ys;
  m.row_hi = ys;
  m.cells.assign(m.rows * m.cols, 0.0);

  auto index_of = [](const std::vector<double>& v, double key) {
    return static_cast<size_t>(
        std::lower_bound(v.begin(), v.end(), key) - v.begin());
  };
  for (size_t i = 0; i < points.size(); ++i) {
    if (weights[i] == 0.0) continue;
    size_t c = index_of(xs, points[i].x);
    size_t r = index_of(ys, points[i].y);
    m.cells[r * m.cols + c] += weights[i];
  }
  return m;
}

StatusOr<CellMatrix> BuildGridMatrix(const std::vector<Point2D>& points,
                                     const std::vector<double>& weights,
                                     size_t grid_cols, size_t grid_rows) {
  CellMatrix m;
  Rect bounds = Rect::BoundingBox(points);
  if (bounds.empty()) return m;
  if (bounds.width() <= 0.0 || bounds.height() <= 0.0) {
    // Degenerate map (all points collinear): fall back to the exact sweep,
    // which handles 1-D layouts natively.
    return BuildExactMatrix(points, weights);
  }
  STB_ASSIGN_OR_RETURN(UniformGrid grid,
                       UniformGrid::Create(bounds, grid_cols, grid_rows));
  std::vector<double> cells = grid.AggregateWeights(points, weights);

  m.rows = grid.rows();
  m.cols = grid.cols();
  m.cells = std::move(cells);
  m.col_lo.resize(m.cols);
  m.col_hi.resize(m.cols);
  m.row_lo.resize(m.rows);
  m.row_hi.resize(m.rows);
  for (size_t c = 0; c < m.cols; ++c) {
    Rect r = grid.CellRect(c, 0);
    m.col_lo[c] = r.min_x();
    m.col_hi[c] = r.max_x();
  }
  for (size_t r = 0; r < m.rows; ++r) {
    Rect rr = grid.CellRect(0, r);
    m.row_lo[r] = rr.min_y();
    m.row_hi[r] = rr.max_y();
  }
  return m;
}

}  // namespace

StatusOr<MaxRectResult> MaxWeightRectangle(const std::vector<Point2D>& points,
                                           const std::vector<double>& weights,
                                           const MaxRectOptions& options) {
  if (points.size() != weights.size()) {
    return Status::InvalidArgument("points/weights length mismatch");
  }
  if (points.empty()) return MaxRectResult{};

  if (options.mode == MaxRectOptions::Mode::kGrid) {
    if (options.grid_cols == 0 || options.grid_rows == 0) {
      return Status::InvalidArgument("grid resolution must be positive");
    }
    STB_ASSIGN_OR_RETURN(
        CellMatrix m,
        BuildGridMatrix(points, weights, options.grid_cols, options.grid_rows));
    return SolveCells(m, points, weights);
  }
  return SolveCells(BuildExactMatrix(points, weights), points, weights);
}

}  // namespace stburst
