#include "stburst/core/max_clique.h"

#include <algorithm>
#include <unordered_map>

namespace stburst {

CliqueResult MaxWeightClique(const std::vector<WeightedInterval>& intervals) {
  CliqueResult best;

  // Sweep events: +weight when an interval opens, -weight one past its end.
  // Closed intervals [a, b] and [b, c] intersect, so openings at a
  // coordinate are applied before the candidate evaluation and closings take
  // effect strictly after the end coordinate.
  struct Event {
    Timestamp at;
    double delta;
  };
  std::vector<Event> events;
  events.reserve(intervals.size() * 2);
  for (const WeightedInterval& wi : intervals) {
    if (wi.weight <= 0.0 || !wi.interval.valid()) continue;
    events.push_back(Event{wi.interval.start, wi.weight});
    events.push_back(Event{static_cast<Timestamp>(wi.interval.end + 1),
                           -wi.weight});
  }
  if (events.empty()) return best;

  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.delta > b.delta;  // openings before closings at the same point
  });

  double active = 0.0;
  double best_weight = 0.0;
  Timestamp best_stab = events.front().at;
  for (size_t i = 0; i < events.size();) {
    Timestamp at = events[i].at;
    while (i < events.size() && events[i].at == at) {
      active += events[i].delta;
      ++i;
    }
    if (active > best_weight) {
      best_weight = active;
      best_stab = at;
    }
  }
  if (best_weight <= 0.0) return best;

  // Collect the stabbed intervals, keeping the heaviest per tag.
  std::unordered_map<int64_t, size_t> best_by_tag;
  for (size_t idx = 0; idx < intervals.size(); ++idx) {
    const WeightedInterval& wi = intervals[idx];
    if (wi.weight <= 0.0 || !wi.interval.Contains(best_stab)) continue;
    auto [it, inserted] = best_by_tag.emplace(wi.tag, idx);
    if (!inserted && intervals[it->second].weight < wi.weight) {
      it->second = idx;
    }
  }
  for (const auto& [tag, idx] : best_by_tag) {
    best.members.push_back(idx);
    best.weight += intervals[idx].weight;
  }
  std::sort(best.members.begin(), best.members.end());
  best.stab = best_stab;
  return best;
}

std::vector<CliqueResult> EnumerateMaximalCliques(
    const std::vector<WeightedInterval>& intervals) {
  // In an interval graph, every maximal clique is the set of intervals
  // containing some interval's right endpoint r, and that set is maximal
  // iff no interval both starts after the previous considered endpoint and
  // ends later (i.e. the stabbing set at r is not a subset of the stabbing
  // set at a later point). Sweeping right endpoints in increasing order, a
  // stabbing set is maximal exactly when some active interval ENDS at the
  // sweep point (ending intervals cannot appear in any later stabbing set)
  // and no interval opens at the same coordinate after it closes -- with
  // closed intervals, opens at coordinate x are applied before evaluating
  // x, so the rule reduces to: evaluate each distinct right endpoint after
  // applying its opens, skip endpoints whose stabbing set is a subset of
  // the next one.
  std::vector<CliqueResult> out;
  std::vector<size_t> order;
  for (size_t i = 0; i < intervals.size(); ++i) {
    if (intervals[i].interval.valid()) order.push_back(i);
  }
  if (order.empty()) return out;

  // Distinct right endpoints, ascending.
  std::vector<Timestamp> stabs;
  for (size_t i : order) stabs.push_back(intervals[i].interval.end);
  std::sort(stabs.begin(), stabs.end());
  stabs.erase(std::unique(stabs.begin(), stabs.end()), stabs.end());

  // Sort intervals by start for an incremental sweep.
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return intervals[a].interval.start < intervals[b].interval.start;
  });

  size_t next_open = 0;
  std::vector<size_t> active;  // indices of intervals with start <= stab
  for (size_t si = 0; si < stabs.size(); ++si) {
    Timestamp stab = stabs[si];
    while (next_open < order.size() &&
           intervals[order[next_open]].interval.start <= stab) {
      active.push_back(order[next_open]);
      ++next_open;
    }
    // Drop intervals that ended before this stab point.
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](size_t idx) {
                                  return intervals[idx].interval.end < stab;
                                }),
                 active.end());

    // The stabbing set at `stab` is a subset of the one at the next stab
    // point iff no active interval ends here before the next point's opens
    // complete. Since `stab` IS a right endpoint, at least one active
    // interval ends exactly here unless that interval also covers the next
    // stab -- impossible, as its end equals this stab. However, if every
    // interval ending here also starts after the previous stab AND the
    // next stab point's stabbing set contains all currently active
    // intervals, the clique would be dominated; that can only happen when
    // no interval ends at `stab`, which cannot occur. Hence every distinct
    // right endpoint yields a maximal clique, except for duplicates: two
    // consecutive stabs can produce identical member sets when the later
    // one adds nothing and drops nothing, which we filter below.
    CliqueResult clique;
    clique.stab = stab;
    for (size_t idx : active) {
      clique.members.push_back(idx);
      clique.weight += intervals[idx].weight;
    }
    std::sort(clique.members.begin(), clique.members.end());
    if (clique.members.empty()) continue;
    // Containment along the sweep is local: if the set at stab s1 is inside
    // the set at s3 > s1, every member covers everything between, so it is
    // also inside the set at any intermediate stab. Neighbor checks
    // therefore suffice to enforce maximality.
    if (!out.empty() &&
        std::includes(out.back().members.begin(), out.back().members.end(),
                      clique.members.begin(), clique.members.end())) {
      continue;  // current set not maximal (subset of the previous one)
    }
    if (!out.empty() &&
        std::includes(clique.members.begin(), clique.members.end(),
                      out.back().members.begin(), out.back().members.end())) {
      out.pop_back();  // previous set dominated by the current one
    }
    out.push_back(std::move(clique));
  }
  return out;
}

}  // namespace stburst
