// Expected-frequency baselines E_x[i][t] (paper §4, Eq. 7).
//
// The burstiness of term t at stream Dx and timestamp i is the discrepancy
//     B(t, Dx[i]) = Dx[i][t] − Ex[i][t]
// between observed and expected frequency. The paper leaves the baseline
// pluggable ("the average observed frequency ... over all the snapshots
// collected before timestamp i", "only the most recent measurements", or
// seasonal data); this module provides those models behind one interface.
// Models are strictly causal: Expected() uses only observations made before
// the current timestamp.

#ifndef STBURST_CORE_EXPECTED_H_
#define STBURST_CORE_EXPECTED_H_

#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "stburst/common/math_util.h"

namespace stburst {

/// Causal expected-frequency model for one (stream, term) pair.
class ExpectedFrequencyModel {
 public:
  virtual ~ExpectedFrequencyModel() = default;

  /// Expected frequency of the upcoming observation, given only past ones.
  /// Meaningful only when HasHistory(); callers that want a neutral first
  /// timestamp (burstiness 0) should special-case !HasHistory().
  virtual double Expected() const = 0;

  /// Incorporates the observation for the current timestamp.
  virtual void Observe(double y) = 0;

  /// True once at least one observation has been made.
  virtual bool HasHistory() const = 0;

  /// Restores the freshly-constructed state: afterwards the model must
  /// behave exactly like a new instance from the same factory —
  /// HasHistory() false and the same Expected()/Observe() trajectory for
  /// any observation sequence. RegionalMiningScratch (stlocal.h) relies on
  /// this to reuse one model arena across every term of a batch sweep
  /// instead of paying a factory allocation per (stream, term).
  virtual void Reset() = 0;
};

/// Factory producing a fresh model per (stream, term) pair.
using ExpectedModelFactory =
    std::function<std::unique_ptr<ExpectedFrequencyModel>()>;

/// E[i] = mean of all observations before i (the paper's default baseline).
class GlobalMeanModel : public ExpectedFrequencyModel {
 public:
  double Expected() const override { return stats_.mean(); }
  void Observe(double y) override { stats_.Add(y); }
  bool HasHistory() const override { return stats_.count() > 0; }
  void Reset() override { stats_.Reset(); }

 private:
  RunningStats stats_;
};

/// E[i] = mean of the most recent `window` observations ("only the most
/// recent measurements").
class WindowMeanModel : public ExpectedFrequencyModel {
 public:
  explicit WindowMeanModel(size_t window);

  double Expected() const override;
  void Observe(double y) override;
  bool HasHistory() const override { return !recent_.empty(); }
  void Reset() override;

 private:
  size_t window_;
  std::deque<double> recent_;
  double sum_ = 0.0;
};

/// Exponentially-weighted recent mean — a smooth version of the sliding
/// window that needs O(1) state.
class EwmaModel : public ExpectedFrequencyModel {
 public:
  explicit EwmaModel(double alpha) : ewma_(alpha) {}

  double Expected() const override { return ewma_.value(); }
  void Observe(double y) override { ewma_.Add(y); }
  bool HasHistory() const override { return !ewma_.empty(); }
  void Reset() override { ewma_.Reset(); }

 private:
  Ewma ewma_;
};

/// E[i] = mean of observations at i−p, i−2p, ... for period p ("data from
/// previous timeframes ... e.g. the Dec. of previous years"). Falls back to
/// the global mean until a same-phase observation exists.
class SeasonalMeanModel : public ExpectedFrequencyModel {
 public:
  explicit SeasonalMeanModel(size_t period);

  double Expected() const override;
  void Observe(double y) override;
  bool HasHistory() const override { return n_ > 0; }
  void Reset() override;

 private:
  size_t period_;
  size_t n_ = 0;
  std::vector<RunningStats> phase_stats_;
  RunningStats global_;
};

/// Wraps another model and imposes a minimum expected frequency — a
/// Laplace-style prior: a stream that has never mentioned a term still
/// carries a small expectation. Under the discrepancy score (Eq. 7) this
/// makes silent streams mildly negative instead of exactly neutral, so
/// R-Bursty's rectangles pay for every silent stream they cover and stay
/// tight around the sources that actually report (see DESIGN.md §4).
class PriorFloorModel : public ExpectedFrequencyModel {
 public:
  PriorFloorModel(std::unique_ptr<ExpectedFrequencyModel> inner, double floor)
      : inner_(std::move(inner)), floor_(floor) {}

  double Expected() const override {
    double e = inner_->HasHistory() ? inner_->Expected() : 0.0;
    return e > floor_ ? e : floor_;
  }
  void Observe(double y) override { inner_->Observe(y); }
  /// The prior counts as history: the floor applies from the first snapshot.
  bool HasHistory() const override { return true; }
  void Reset() override { inner_->Reset(); }

 private:
  std::unique_ptr<ExpectedFrequencyModel> inner_;
  double floor_;
};

/// Decorates a factory with PriorFloorModel.
ExpectedModelFactory WithPriorFloor(ExpectedModelFactory inner, double floor);

/// Computes the burstiness series b[i] = y[i] − E[i] for one stream,
/// advancing `model` causally. The first observation (no history) is scored
/// 0 rather than y[0] so that the very first snapshot is not spuriously
/// bursty for every term.
std::vector<double> BurstinessSeries(std::span<const double> y,
                                     ExpectedFrequencyModel* model);

}  // namespace stburst

#endif  // STBURST_CORE_EXPECTED_H_
