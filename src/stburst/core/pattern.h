// Spatiotemporal burstiness pattern types (paper §1, §3, §4).

#ifndef STBURST_CORE_PATTERN_H_
#define STBURST_CORE_PATTERN_H_

#include <string>
#include <vector>

#include "stburst/core/interval.h"
#include "stburst/geo/point.h"
#include "stburst/geo/rect.h"
#include "stburst/stream/types.h"

namespace stburst {

/// A combinatorial pattern (§3): a set of streams from arbitrary locations
/// that were simultaneously bursty during a common timeframe. Produced by
/// STComb. `score` is the cumulative temporal burstiness of the member
/// intervals.
struct CombinatorialPattern {
  std::vector<StreamId> streams;  // sorted, one interval each
  Interval timeframe;             // common segment of the member intervals
  double score = 0.0;

  std::string ToString() const;
};

/// A regional pattern (§4): a maximal spatiotemporal window — an
/// axis-oriented rectangle on the map plus the timeframe during which it was
/// bursty. `score` is the w-score (Eq. 9).
struct SpatiotemporalWindow {
  Rect region;
  std::vector<StreamId> streams;  // streams inside the region, sorted
  Interval timeframe;
  double score = 0.0;

  std::string ToString() const;
};

/// Minimum bounding rectangle of the given streams' planar positions
/// (Table 1 reports how many streams fall inside the MBR of STComb's top
/// clique).
Rect StreamsMbr(const std::vector<StreamId>& streams,
                const std::vector<Point2D>& positions);

/// Streams whose position lies inside `rect` (boundary inclusive), sorted.
std::vector<StreamId> StreamsInRect(const Rect& rect,
                                    const std::vector<Point2D>& positions);

}  // namespace stburst

#endif  // STBURST_CORE_PATTERN_H_
