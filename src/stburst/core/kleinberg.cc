#include "stburst/core/kleinberg.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace stburst {

namespace {

// Negative log-likelihood of observing r of d events under rate p, dropping
// the binomial coefficient (identical across states, so it cancels).
double StateCost(double r, double d, double p) {
  double cost = 0.0;
  if (r > 0.0) cost -= r * std::log(p);
  if (d - r > 0.0) cost -= (d - r) * std::log(1.0 - p);
  return cost;
}

}  // namespace

StatusOr<std::vector<BurstyInterval>> KleinbergBursts(
    const std::vector<double>& relevant, const std::vector<double>& totals,
    const KleinbergOptions& options) {
  if (relevant.size() != totals.size()) {
    return Status::InvalidArgument("relevant/totals length mismatch");
  }
  if (options.s <= 1.0) {
    return Status::InvalidArgument("burst multiplier s must exceed 1");
  }
  if (options.gamma < 0.0) {
    return Status::InvalidArgument("gamma must be non-negative");
  }
  const size_t n = relevant.size();
  std::vector<BurstyInterval> out;
  if (n == 0) return out;

  double r_total = 0.0, d_total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (relevant[i] < 0.0 || totals[i] < relevant[i]) {
      return Status::InvalidArgument(
          "counts must satisfy 0 <= relevant[i] <= totals[i]");
    }
    r_total += relevant[i];
    d_total += totals[i];
  }
  if (r_total <= 0.0 || d_total <= 0.0) return out;

  const double p0 = std::min(r_total / d_total, 0.9999);
  const double p1 = std::min(options.s * p0, 0.9999);
  if (p1 <= p0) return out;  // base rate already saturated

  const double transition_cost =
      options.gamma * std::log(static_cast<double>(n) + 1.0);

  // Viterbi over states {0 = base, 1 = burst}. Moving 0->1 pays the
  // transition cost; 1->0 is free (Kleinberg's asymmetric costs).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> cost0(n), cost1(n);
  std::vector<int8_t> from0(n), from1(n);

  cost0[0] = StateCost(relevant[0], totals[0], p0);
  cost1[0] = transition_cost + StateCost(relevant[0], totals[0], p1);
  from0[0] = from1[0] = -1;
  for (size_t i = 1; i < n; ++i) {
    double c0 = StateCost(relevant[i], totals[i], p0);
    double c1 = StateCost(relevant[i], totals[i], p1);
    // into base state: from base (free) or from burst (free)
    if (cost0[i - 1] <= cost1[i - 1]) {
      cost0[i] = cost0[i - 1] + c0;
      from0[i] = 0;
    } else {
      cost0[i] = cost1[i - 1] + c0;
      from0[i] = 1;
    }
    // into burst state: from base pays the transition cost
    double via_base = cost0[i - 1] + transition_cost;
    double via_burst = cost1[i - 1];
    if (via_burst <= via_base) {
      cost1[i] = via_burst + c1;
      from1[i] = 1;
    } else {
      cost1[i] = via_base + c1;
      from1[i] = 0;
    }
  }

  // Backtrack the optimal state sequence.
  std::vector<int8_t> state(n);
  state[n - 1] = cost0[n - 1] <= cost1[n - 1] ? 0 : 1;
  for (size_t i = n - 1; i > 0; --i) {
    state[i - 1] = state[i] == 0 ? from0[i] : from1[i];
  }
  (void)kInf;

  // Runs of the burst state become intervals; score = the base state's
  // excess cost over the burst state across the run (likelihood advantage).
  for (size_t i = 0; i < n;) {
    if (state[i] != 1) {
      ++i;
      continue;
    }
    size_t j = i;
    double advantage = 0.0;
    while (j < n && state[j] == 1) {
      advantage += StateCost(relevant[j], totals[j], p0) -
                   StateCost(relevant[j], totals[j], p1);
      ++j;
    }
    out.push_back(BurstyInterval{
        Interval{static_cast<Timestamp>(i), static_cast<Timestamp>(j - 1)},
        advantage});
    i = j;
  }
  return out;
}

}  // namespace stburst
