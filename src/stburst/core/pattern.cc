#include "stburst/core/pattern.h"

#include "stburst/common/logging.h"
#include "stburst/common/string_util.h"

namespace stburst {

std::string CombinatorialPattern::ToString() const {
  return StringPrintf("CombinatorialPattern{%zu streams, %s, score=%.4f}",
                      streams.size(), timeframe.ToString().c_str(), score);
}

std::string SpatiotemporalWindow::ToString() const {
  return StringPrintf("Window{%s, %zu streams, %s, w-score=%.4f}",
                      region.ToString().c_str(), streams.size(),
                      timeframe.ToString().c_str(), score);
}

Rect StreamsMbr(const std::vector<StreamId>& streams,
                const std::vector<Point2D>& positions) {
  Rect mbr;
  for (StreamId s : streams) {
    STB_CHECK(s < positions.size()) << "stream " << s << " has no position";
    mbr.ExpandToInclude(positions[s]);
  }
  return mbr;
}

std::vector<StreamId> StreamsInRect(const Rect& rect,
                                    const std::vector<Point2D>& positions) {
  std::vector<StreamId> out;
  for (StreamId s = 0; s < positions.size(); ++s) {
    if (rect.Contains(positions[s])) out.push_back(s);
  }
  return out;
}

}  // namespace stburst
