// STLocal (paper §4, Algorithm 2): online mining of maximal spatiotemporal
// windows for one term.
//
// For every snapshot, R-Bursty proposes bursty rectangles; each distinct
// region (identified by the set of streams it covers) owns a sequence of
// per-timestamp r-scores, and an online Ruzzo–Tompa instance over that
// sequence maintains the region's maximal windows. A sequence whose running
// total drops below zero can never seed another maximal window and is
// retired (lines 11-12 of the algorithm).

#ifndef STBURST_CORE_STLOCAL_H_
#define STBURST_CORE_STLOCAL_H_

#include <map>
#include <memory>
#include <span>
#include <vector>

#include "stburst/common/statusor.h"
#include "stburst/core/expected.h"
#include "stburst/core/getmax.h"
#include "stburst/core/pattern.h"
#include "stburst/core/rbursty.h"
#include "stburst/geo/point.h"
#include "stburst/stream/frequency.h"

namespace stburst {

struct StLocalOptions {
  RBurstyOptions rbursty;
  /// Finished windows scoring at or below this are dropped.
  double min_window_score = 0.0;
  /// Keep the per-snapshot burstiness history that the history-replaying
  /// EvictBefore(cutoff) needs — O(num_streams) memory per retained
  /// snapshot, trimmed by each eviction. Off by default: batch sweeps
  /// (MineAllTerms) never evict and should not pay the copy, and
  /// OnlineRegionalMiner supplies rebased values itself (it owns the raw
  /// history), so its inner miner does not track either.
  bool track_history = false;
};

/// Per-term online miner. Feed one snapshot of per-stream burstiness values
/// per timestamp; call Finish() once the stream closes.
///
/// Binning: R-Bursty's cell geometry depends only on the positions, so the
/// miner builds one SpatialBinning on the first snapshot and reuses it for
/// its whole lifetime. Whole-vocabulary drivers that run one StLocal per
/// term over the *same* positions (the batch miner) pass a shared binning
/// instead, skipping even that one build per term.
class StLocal {
 public:
  /// `positions[s]` is the planar location of stream s. `shared_binning`,
  /// when non-null, must have been built via SpatialBinning::Create from
  /// these positions and options.rbursty.rect, and must outlive the miner
  /// (not owned); null makes the miner build its own.
  explicit StLocal(std::vector<Point2D> positions, StLocalOptions options = {},
                   const SpatialBinning* shared_binning = nullptr);

  /// Positions-free variant for drivers that already hold the binning: the
  /// geometry comes entirely from `binning` (which must cover exactly
  /// `num_streams` points, outlive the miner, and match
  /// options.rbursty.rect; not owned). Skips the per-miner positions copy —
  /// the whole-vocabulary path constructs one StLocal per term.
  StLocal(size_t num_streams, StLocalOptions options,
          const SpatialBinning& binning);

  /// Processes the snapshot for the next timestamp. `burstiness[s]` is
  /// B(t, Dx[i]) per Eq. 7. Must match the stream count.
  Status ProcessSnapshot(std::span<const double> burstiness);
  Status ProcessSnapshot(const std::vector<double>& burstiness) {
    return ProcessSnapshot(std::span<const double>(burstiness));
  }

  /// Retires all live sequences and returns every maximal window found, in
  /// descending w-score order. The miner can keep processing afterwards;
  /// Finish() is idempotent on a closed stream.
  std::vector<SpatiotemporalWindow> Finish();

  /// Rebases the miner to the retained window [cutoff, current_time()):
  /// afterwards its whole state — live sequences (births, r-score
  /// histories), open candidates, and finished windows — is identical to a
  /// fresh miner fed only the retained snapshots, with every timestamp kept
  /// absolute (a fresh miner's window-relative output shifted by cutoff).
  /// Sequences whose span precedes the cutoff are gone; a sequence
  /// straddling it is reborn at its first bursty report inside the window;
  /// a region that re-emerges after the cutoff starts a clean sequence —
  /// exactly the retirement/rebirth a windowed batch re-mine produces.
  /// Implemented as a replay of the retained burstiness history, so it
  /// requires options.track_history (FailedPrecondition otherwise).
  /// cutoff <= window_start() is a no-op; cutoff beyond current_time() is
  /// OutOfRange. O(window × ProcessSnapshot).
  Status EvictBefore(Timestamp cutoff);

  /// Rebasing variant for drivers that own the raw history and must
  /// *recompute* the window's burstiness rather than replay it (an
  /// expected-frequency model's baseline covers evicted snapshots, so
  /// every retained value changes when the models rebase —
  /// OnlineRegionalMiner::EvictBefore). `rebased` holds the retained
  /// window's burstiness, time-major: snapshot cutoff + j at
  /// [j·num_streams(), (j+1)·num_streams()); its size must be
  /// (current_time() - cutoff) · num_streams(). Works with or without
  /// track_history (the tracked history, if any, is replaced by `rebased`).
  /// cutoff must be in [window_start(), current_time()].
  Status EvictBefore(Timestamp cutoff, std::span<const double> rebased);

  /// First retained timestamp: 0 until EvictBefore advances it.
  Timestamp window_start() const { return origin_; }

  /// Timestamps processed so far.
  Timestamp current_time() const { return time_; }

  /// Streams this miner was constructed over.
  size_t num_streams() const { return num_streams_; }

  /// Live region sequences (bounded by n·L in theory, tiny in practice —
  /// Figure 6's subject).
  size_t num_live_sequences() const { return live_.size(); }

  /// Maximal-window candidates currently maintained across live sequences.
  size_t num_open_windows() const;

 private:
  struct Sequence {
    Rect rect;           // geometry when first reported
    Timestamp born = 0;  // timestamp of the first score
    OnlineMaxSegments segments;
  };

  /// Builds own_binning_ from the positions on first use (no-op when a
  /// shared binning was supplied).
  Status EnsureBinning();

  /// Moves a sequence's maximal segments into finished_. `streams` is the
  /// region identity — the sequence's key in live_.
  void Retire(const std::vector<StreamId>& streams, const Sequence& seq);

  /// ProcessSnapshot body; `record` gates the history append so the
  /// eviction replay does not re-record what it is replaying.
  Status ProcessSnapshotImpl(std::span<const double> burstiness, bool record);

  /// Resets the mining state to an empty window starting at `cutoff` and
  /// re-processes `burstiness` (time-major window snapshots) through it.
  Status ReplayWindow(Timestamp cutoff, std::span<const double> burstiness);

  std::vector<Point2D> positions_;  // empty in the positions-free variant
  size_t num_streams_ = 0;
  StLocalOptions options_;
  Timestamp time_ = 0;
  Timestamp origin_ = 0;  // first retained timestamp
  // Time-major burstiness of the retained snapshots (track_history only):
  // what EvictBefore(cutoff) replays.
  std::vector<double> history_;
  const SpatialBinning* binning_ = nullptr;  // shared_binning or own_binning_
  std::unique_ptr<SpatialBinning> own_binning_;  // stable across moves
  // Keyed by the region's canonical stream set so a region re-reported on a
  // later snapshot extends its existing sequence. The key IS the region
  // identity; sequences do not duplicate it.
  std::map<std::vector<StreamId>, Sequence> live_;
  std::vector<SpatiotemporalWindow> finished_;
};

/// Streaming regional miner for one term: owns the per-stream expected-
/// frequency models and an StLocal instance, converting raw frequency
/// snapshots into burstiness values (Eq. 7) as they arrive. Push columns by
/// hand or straight from a live-fed FrequencyIndex (PushFromIndex); the
/// windows Finish() returns are identical to running MineRegionalPatterns
/// over the same prefix (tested). Single-threaded; one instance per
/// (term, feed).
///
/// Retention: the miner keeps the raw frequency history of the retained
/// window (like OnlineStComb keeps each stream's raw prefix), and
/// EvictBefore(cutoff) rebases everything to the window — the
/// expected-frequency models are rebuilt over the retained raws and the
/// per-region sequences are replayed from the recomputed burstiness — so a
/// watchlist evicted in lockstep with its FrequencyIndex holds O(n ·
/// window) memory and stays exactly equal to a batch re-mine over the
/// window. Without evictions the raw history grows with the feed (the
/// OnlineStComb trade).
class OnlineRegionalMiner {
 public:
  /// `shared_binning`: see StLocal — optional, not owned, must match the
  /// positions and options.rbursty.rect. `options.track_history` is
  /// ignored: the miner owns the raw history itself and hands its inner
  /// StLocal rebased burstiness on eviction.
  OnlineRegionalMiner(std::vector<Point2D> positions,
                      const ExpectedModelFactory& model_factory,
                      StLocalOptions options = {},
                      const SpatialBinning* shared_binning = nullptr);

  /// Consumes the per-stream raw frequencies of the next timestamp. Must
  /// match the stream count. O(RBursty) per snapshot.
  Status Push(std::span<const double> frequencies);

  /// Pushes the snapshot at the miner's current time for `term` straight
  /// from a shared index — the live-feed glue (the index must already hold
  /// that timestamp, i.e. AppendSnapshot ran first, and must not have
  /// evicted it — FailedPrecondition otherwise). O(n log postings(term)).
  Status PushFromIndex(const FrequencyIndex& index, TermId term);

  /// Drops the consumed history older than `cutoff` and rebases the miner
  /// to the retained window: fresh expected-frequency models re-observe the
  /// retained raw frequencies (their baselines covered evicted snapshots,
  /// so every retained burstiness value is recomputed — the regional
  /// counterpart of OnlineStComb re-summing its mass), and the per-region
  /// sequences are replayed from the rebased values via
  /// StLocal::EvictBefore. Afterwards the miner's windows — current and
  /// future — are identical to a fresh miner (or MineRegionalPatterns) over
  /// the windowed series, with timeframes absolute. Evict in lockstep with
  /// the FrequencyIndex the watchlist follows (see examples/live_feed.cpp).
  /// cutoff <= window_start() is a no-op; cutoff beyond current_time() is
  /// OutOfRange. O(window × (models + RBursty)) per call.
  Status EvictBefore(Timestamp cutoff);

  /// First retained timestamp (0 until EvictBefore advances it).
  Timestamp window_start() const { return origin_; }

  /// Timestamps consumed so far.
  Timestamp current_time() const { return miner_.current_time(); }

  /// See StLocal::Finish().
  std::vector<SpatiotemporalWindow> Finish() { return miner_.Finish(); }

 private:
  ExpectedModelFactory model_factory_;
  std::vector<std::unique_ptr<ExpectedFrequencyModel>> models_;
  StLocal miner_;
  std::vector<double> burstiness_;
  Timestamp origin_ = 0;      // absolute timestamp of raw_'s first snapshot
  std::vector<double> raw_;   // time-major raw frequencies of the window
};

/// Reusable state for repeated MineRegionalPatterns calls — the batch
/// miner keeps one per worker. The per-stream expected models are
/// constructed by the factory on first use and Reset() between terms
/// (which the ExpectedFrequencyModel contract makes equivalent to fresh
/// instances), and the time-major burstiness buffer is recycled, so a
/// whole-vocabulary sweep pays O(streams) factory allocations per worker
/// instead of O(terms · streams). A scratch instance must stay paired with
/// a single factory (its arena embodies that factory's model type) and a
/// single thread at a time; output is bit-identical to the scratch-free
/// path (tested).
struct RegionalMiningScratch {
  std::vector<std::unique_ptr<ExpectedFrequencyModel>> models;
  std::vector<double> burstiness;
};

/// Convenience batch driver for one term: derives per-stream burstiness from
/// the frequency matrix with a fresh expected-frequency model per stream
/// (walking each stream's row through a zero-copy span, no per-snapshot
/// column gather), replays the timeline through StLocal, and returns the
/// maximal windows. Output is identical to pushing the columns through an
/// OnlineRegionalMiner (tested). `shared_binning`: see StLocal. `scratch`,
/// when non-null, reuses models and buffers across calls (see
/// RegionalMiningScratch) without changing the output.
StatusOr<std::vector<SpatiotemporalWindow>> MineRegionalPatterns(
    const TermSeries& series, const std::vector<Point2D>& positions,
    const ExpectedModelFactory& model_factory, const StLocalOptions& options = {},
    const SpatialBinning* shared_binning = nullptr,
    RegionalMiningScratch* scratch = nullptr);

}  // namespace stburst

#endif  // STBURST_CORE_STLOCAL_H_
