// Temporal burstiness (paper §3, Eq. 1; reference [14]).
//
// Given the frequency sequence Y of a term in one stream, the burstiness of
// an interval I is
//     B_T(I) = sum_{i in I} Y[i] / W  -  |I| / N,
// with W the total frequency and N the sequence length — the discrepancy
// between the interval's share of occurrences and its share of the timeline.
// Since B_T is additive over the per-timestamp scores s_i = Y[i]/W − 1/N,
// the non-overlapping maximal bursty intervals of [14] are exactly the
// Ruzzo–Tompa maximal segments of s, extracted in linear time.

#ifndef STBURST_CORE_TEMPORAL_H_
#define STBURST_CORE_TEMPORAL_H_

#include <span>
#include <vector>

#include "stburst/core/interval.h"

namespace stburst {

/// A bursty temporal interval with its B_T score (always in (0, 1] for
/// extracted intervals).
struct BurstyInterval {
  Interval interval;
  double burstiness = 0.0;
};

/// B_T(I) of Eq. 1 for an arbitrary interval. Returns 0 when the sequence
/// has no mass or the interval is invalid/out of range. Takes a span so
/// zero-copy TermSeries rows flow in without materializing a vector.
double TemporalBurstiness(std::span<const double> y, const Interval& interval);

/// The non-overlapping maximal bursty intervals of `y`, each with its B_T
/// score, in timeline order. Intervals scoring <= min_burstiness are
/// dropped. Linear time.
std::vector<BurstyInterval> ExtractBurstyIntervals(std::span<const double> y,
                                                   double min_burstiness = 0.0);

/// Allocation-free variant: appends the extracted intervals to `out`
/// (which is NOT cleared). Runs on per-thread scratch; the batch miner
/// calls this once per (term, stream) pair.
void AppendBurstyIntervals(std::span<const double> y, double min_burstiness,
                           std::vector<BurstyInterval>* out);

}  // namespace stburst

#endif  // STBURST_CORE_TEMPORAL_H_
