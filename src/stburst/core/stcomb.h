// STComb — combinatorial spatiotemporal pattern mining (paper §3).
//
// Pipeline: (1) extract each stream's non-overlapping bursty temporal
// intervals (Eq. 1, [14]); (2) the eligible subsets of the pooled intervals
// are exactly the cliques of their interval graph (Lemma 1 / Prop. 1); (3)
// the highest-scoring subset (HSS) is the maximum-weight clique, found by
// maxClique; (4) multiple non-overlapping patterns are obtained by
// iterating maxClique and deleting each reported clique's intervals.

#ifndef STBURST_CORE_STCOMB_H_
#define STBURST_CORE_STCOMB_H_

#include <cstddef>
#include <vector>

#include "stburst/core/pattern.h"
#include "stburst/core/temporal.h"
#include "stburst/stream/frequency.h"
#include "stburst/stream/types.h"

namespace stburst {

/// A bursty temporal interval attributed to its stream of origin — the unit
/// STComb pools across streams. Any temporal burst detector that reports
/// non-overlapping per-stream intervals can produce these (§3: the
/// methodology "is compatible with any framework that reports
/// non-overlapping bursty intervals").
struct StreamInterval {
  StreamId stream = kInvalidStream;
  Interval interval;
  double burstiness = 0.0;
};

struct StCombOptions {
  /// Per-stream intervals with B_T at or below this are discarded upfront.
  double min_interval_burstiness = 0.0;
  /// Stop after this many patterns (the HSS problem alone needs 1).
  size_t max_patterns = static_cast<size_t>(-1);
  /// A pattern must contain at least this many streams to be reported.
  size_t min_streams = 1;
};

/// Combinatorial pattern miner. Stateless; safe to share across threads.
class StComb {
 public:
  explicit StComb(StCombOptions options = {});

  /// Full pipeline over a term's dense stream x time frequency matrix.
  /// Patterns are returned in descending score order.
  std::vector<CombinatorialPattern> MinePatterns(const TermSeries& series) const;

  /// Pattern mining from precomputed per-stream intervals. Intervals of the
  /// same stream must be pairwise non-overlapping.
  std::vector<CombinatorialPattern> MineFromIntervals(
      std::vector<StreamInterval> intervals) const;

  /// Step (1) alone: per-stream bursty intervals of a term.
  std::vector<StreamInterval> ExtractStreamIntervals(
      const TermSeries& series) const;

  const StCombOptions& options() const { return options_; }

 private:
  StCombOptions options_;
};

}  // namespace stburst

#endif  // STBURST_CORE_STCOMB_H_
