// maxClique — maximum-weight clique on interval graphs (paper §3, Prop. 1,
// reference [8]).
//
// By Helly's property in one dimension, a set of pairwise-intersecting
// closed intervals shares a common point, so a clique in an interval graph
// is exactly a set of intervals stabbed by one point. The maximum-weight
// clique is therefore found by sweeping interval endpoints and maximizing
// the total weight of open intervals — O(m log m) for the sort, matching
// the Gupta–Lee–Leung bound the paper cites.

#ifndef STBURST_CORE_MAX_CLIQUE_H_
#define STBURST_CORE_MAX_CLIQUE_H_

#include <cstdint>
#include <vector>

#include "stburst/core/interval.h"

namespace stburst {

/// An interval-graph vertex: a closed timeline interval with a positive
/// weight and an owner tag (the stream it came from).
struct WeightedInterval {
  Interval interval;
  double weight = 0.0;
  int64_t tag = -1;
};

/// A maximum-weight clique: indices into the input vector, their total
/// weight, and a stabbing timestamp they all contain.
struct CliqueResult {
  std::vector<size_t> members;
  double weight = 0.0;
  Timestamp stab = 0;

  bool empty() const { return members.empty(); }
};

/// Returns the maximum-weight clique of the interval graph induced by
/// `intervals`. Intervals with weight <= 0 can never increase a clique's
/// weight and are ignored. If several same-tag intervals stab the optimum
/// point (possible only with overlapping same-tag input), only the heaviest
/// is kept, preserving the paper's one-interval-per-stream eligibility rule.
/// Returns an empty clique when no positive-weight interval exists.
CliqueResult MaxWeightClique(const std::vector<WeightedInterval>& intervals);

/// Enumerates ALL maximal cliques of the interval graph — §3's alternative
/// to iterated maxClique ("one can alternatively use any of the available
/// algorithms for the enumeration of overlapping maximal cliques for
/// interval graphs", ref. [32]). For interval graphs the maximal cliques
/// are exactly the stabbing sets at interval right endpoints that are not
/// dominated by a later stabbing set; a left-to-right endpoint sweep yields
/// them in O(m log m + output). Unlike MaxWeightClique, weights play no
/// role here (zero/negative-weight intervals participate); callers score
/// the returned cliques themselves. Cliques come back ordered by stab
/// point, each with members sorted by index.
std::vector<CliqueResult> EnumerateMaximalCliques(
    const std::vector<WeightedInterval>& intervals);

}  // namespace stburst

#endif  // STBURST_CORE_MAX_CLIQUE_H_
