// Batch mining engine: whole-vocabulary spatiotemporal pattern mining.
//
// The paper evaluates its miners one term at a time; real deployments (and
// the bench harnesses) sweep the entire vocabulary. MineAllTerms fans the
// per-term STComb / STLocal pipelines across a thread pool and returns a
// result slot per TermId, so the output is deterministic — independent of
// thread count and scheduling — while the per-term hot paths run on
// allocation-free per-worker scratch:
//  - combinatorial mining streams each term's sparse postings directly into
//    per-stream interval extraction (no dense n x L matrix is materialized);
//  - regional mining reuses one dense scratch matrix per worker.

#ifndef STBURST_CORE_BATCH_MINER_H_
#define STBURST_CORE_BATCH_MINER_H_

#include <cstddef>
#include <vector>

#include "stburst/common/statusor.h"
#include "stburst/core/expected.h"
#include "stburst/core/pattern.h"
#include "stburst/core/stcomb.h"
#include "stburst/core/stlocal.h"
#include "stburst/geo/point.h"
#include "stburst/stream/frequency.h"

namespace stburst {

struct BatchMinerOptions {
  /// Per-term combinatorial mining configuration (§3).
  StCombOptions stcomb;
  /// Per-term regional mining configuration (§4). Requires `positions` and
  /// `model_factory` when mine_regional is set.
  StLocalOptions stlocal;

  bool mine_combinatorial = true;
  bool mine_regional = false;

  /// Worker threads; 0 means hardware concurrency. 1 runs fully serial on
  /// the calling thread (the parity baseline).
  size_t num_threads = 0;

  /// Terms whose total corpus frequency is below this are skipped (their
  /// result slot stays empty). Prunes the Zipfian singleton tail cheaply.
  double min_term_total = 0.0;

  /// Planar stream positions (indexed by StreamId); regional mining only.
  std::vector<Point2D> positions;
  /// Fresh expected-frequency model per (stream, term); regional mining
  /// only. Must be safe to invoke concurrently from multiple threads.
  ExpectedModelFactory model_factory;
};

/// Mining output of one term. Slots for skipped or patternless terms carry
/// empty vectors.
struct TermPatterns {
  TermId term = kInvalidTerm;
  std::vector<CombinatorialPattern> combinatorial;
  std::vector<SpatiotemporalWindow> regional;
};

struct BatchMineResult {
  /// One slot per vocabulary term, indexed by TermId.
  std::vector<TermPatterns> terms;
  /// Terms actually mined.
  size_t terms_mined = 0;
  /// Terms not mined: no postings in the corpus, or total frequency below
  /// min_term_total.
  size_t terms_skipped = 0;
  /// Worker count the batch actually ran with.
  size_t threads_used = 0;
};

/// Mines every vocabulary term of `index` and returns per-term patterns in
/// TermId order. Output is identical for every thread count.
StatusOr<BatchMineResult> MineAllTerms(const FrequencyIndex& index,
                                       const BatchMinerOptions& options = {});

}  // namespace stburst

#endif  // STBURST_CORE_BATCH_MINER_H_
