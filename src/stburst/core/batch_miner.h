// Batch mining engine: whole-vocabulary spatiotemporal pattern mining.
//
// The paper evaluates its miners one term at a time; real deployments (and
// the bench harnesses) sweep the entire vocabulary. MineAllTerms fans the
// per-term STComb / STLocal pipelines across a thread pool and returns a
// result slot per TermId, so the output is deterministic — independent of
// thread count and scheduling — while the per-term hot paths run on
// allocation-free per-worker scratch:
//  - combinatorial mining streams each term's sparse postings directly into
//    per-stream interval extraction (no dense n x L matrix is materialized);
//  - regional mining reuses one dense scratch matrix per worker.
//
// For a live feed, RemineTerms keeps a BatchMineResult current without a
// full sweep: after FrequencyIndex::AppendSnapshot, pass the index's dirty
// terms and only those slots are recomputed (docs/ARCHITECTURE.md walks the
// full append → re-mine cycle; examples/live_feed.cpp demonstrates it).

#ifndef STBURST_CORE_BATCH_MINER_H_
#define STBURST_CORE_BATCH_MINER_H_

#include <cstddef>
#include <vector>

#include "stburst/common/statusor.h"
#include "stburst/core/expected.h"
#include "stburst/core/pattern.h"
#include "stburst/core/stcomb.h"
#include "stburst/core/stlocal.h"
#include "stburst/geo/point.h"
#include "stburst/stream/frequency.h"

namespace stburst {

class ThreadPool;

struct BatchMinerOptions {
  /// Per-term combinatorial mining configuration (§3).
  StCombOptions stcomb;
  /// Per-term regional mining configuration (§4). Requires `positions` and
  /// `model_factory` when mine_regional is set.
  StLocalOptions stlocal;

  bool mine_combinatorial = true;
  bool mine_regional = false;

  /// Worker threads; 0 means hardware concurrency. 1 runs fully serial on
  /// the calling thread (the parity baseline). Ignored when `pool` is set.
  size_t num_threads = 0;

  /// Persistent thread pool to fan the per-term work across. When null
  /// (default), each call builds and joins a transient pool of
  /// `num_threads` workers — fine for one-shot sweeps, but a per-tick
  /// RemineTerms pays thread spawn/join every snapshot; a long-running
  /// feed (FeedRuntime) supplies its standing pool here instead. The pool
  /// is only borrowed for the duration of the call; output is identical
  /// either way and at any pool size. Not owned.
  ThreadPool* pool = nullptr;

  /// Terms whose total corpus frequency is below this are skipped (their
  /// result slot stays empty). Prunes the Zipfian singleton tail cheaply.
  double min_term_total = 0.0;

  /// Planar stream positions (indexed by StreamId); regional mining only.
  std::vector<Point2D> positions;
  /// Fresh expected-frequency model per (stream, term); regional mining
  /// only. Must be safe to invoke concurrently from multiple threads.
  ExpectedModelFactory model_factory;

  /// Standing spatial binning of `positions` for regional mining. When null
  /// (default) each MineAllTerms/RemineTerms call builds one and shares it
  /// across every term of that call; a long-running owner (FeedRuntime)
  /// builds it once and lends it here so even per-tick re-mines skip the
  /// geometry build. Must come from SpatialBinning::Create over `positions`
  /// and `stlocal.rbursty.rect`, and stays valid while the stream positions
  /// are fixed (streams are append-only and never move, so in practice:
  /// until the stream set itself grows). Read-only, shared by all workers.
  /// Not owned.
  const SpatialBinning* binning = nullptr;
};

/// Mining output of one term. Slots for skipped or patternless terms carry
/// empty vectors.
struct TermPatterns {
  TermId term = kInvalidTerm;
  /// True when the term was actually mined; false means the term was
  /// skipped (no postings, or total frequency below min_term_total).
  bool mined = false;
  std::vector<CombinatorialPattern> combinatorial;
  std::vector<SpatiotemporalWindow> regional;
};

struct BatchMineResult {
  /// One slot per vocabulary term, indexed by TermId.
  std::vector<TermPatterns> terms;
  /// Terms actually mined (slots with mined == true).
  size_t terms_mined = 0;
  /// Terms not mined: no postings in the corpus, or total frequency below
  /// min_term_total. Invariant: terms_mined + terms_skipped == terms.size().
  size_t terms_skipped = 0;
  /// Worker count the last (re-)mining call actually ran with.
  size_t threads_used = 0;
};

/// Mines every vocabulary term of `index` and returns per-term patterns in
/// TermId order.
///
/// Windowed indexes: mining operates over the index's retained window
/// (burstiness normalized by window mass and window length), and every
/// pattern timeframe is reported in absolute timestamps — so results from
/// an evicting feed compare directly across ticks even as the window
/// slides (the retention contract in docs/ARCHITECTURE.md).
///
/// Determinism: output is identical for every thread count (slots are
/// TermId-addressed; no cross-term state).
/// Thread-safety: `index` and `options` are read concurrently by the
/// workers and must not be mutated during the call.
/// Complexity: O(Σ per-term mining) work over options.num_threads workers;
/// per-worker scratch is O(L) (+ O(n·L) when mine_regional).
StatusOr<BatchMineResult> MineAllTerms(const FrequencyIndex& index,
                                       const BatchMinerOptions& options = {});

/// Recomputes only `terms` (typically FrequencyIndex::TakeDirtyTerms()
/// after an append), updating their slots of `result` in place; all other
/// slots are untouched. Grows `result` when the index's vocabulary grew and
/// refreshes the mined/skipped counters. Every listed term's slot comes out
/// identical to what a fresh MineAllTerms over the current index would
/// produce (tested), at a cost proportional to the feed instead of the
/// corpus.
///
/// Staleness contract: interval burstiness is normalized by timeline length,
/// so a term with no new postings still drifts slightly as the timeline
/// grows; unlisted slots deliberately keep the patterns of their last mine
/// ("current as of the term's last activity" — the incremental-maintenance
/// trade, discussed in docs/ARCHITECTURE.md). Use OnlineStComb for watched
/// terms that need exact per-snapshot semantics.
///
/// `result` must come from MineAllTerms (or a prior RemineTerms) over an
/// earlier state of the same index, with the same options. Duplicate ids in
/// `terms` are ignored; unknown ids are InvalidArgument. `result` must not
/// be read concurrently with the call. All-or-nothing: terms are mined into
/// staging slots (StageRemineTerms) and moved into `result` only after
/// every listed term mined cleanly, so a non-OK return leaves `result`
/// exactly as it was — keep the `terms` list and re-run after fixing the
/// configuration (the index's dirty set was already consumed).
Status RemineTerms(const FrequencyIndex& index, const std::vector<TermId>& terms,
                   const BatchMinerOptions& options, BatchMineResult* result);

/// The staging half of RemineTerms: mines the deduped `terms` into
/// `staged` — one compact slot per entry of the returned (sorted, unique)
/// term list, parallel to it — touching no standing result. A transactional
/// owner (FeedRuntime) stages against its live BatchMineResult and commits
/// by moving slots in only after the whole tick succeeded; a failure
/// (non-OK, or an exception out of a mining worker) leaves `staged` safe to
/// discard and the owner's result untouched. Same options/validation
/// semantics as RemineTerms.
StatusOr<std::vector<TermId>> StageRemineTerms(
    const FrequencyIndex& index, const std::vector<TermId>& terms,
    const BatchMinerOptions& options, std::vector<TermPatterns>* staged);

}  // namespace stburst

#endif  // STBURST_CORE_BATCH_MINER_H_
