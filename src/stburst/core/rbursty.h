// R-Bursty (paper §4, Algorithm 1): all non-overlapping bursty rectangles of
// one snapshot.
//
// Repeatedly extracts the maximum-discrepancy rectangle; after reporting a
// rectangle, the streams inside it get weight −∞ so no later rectangle can
// contain them, which both removes overlap and bounds the number of
// rectangles by the stream count. Stops when the best rectangle's r-score
// drops to zero or below.

#ifndef STBURST_CORE_RBURSTY_H_
#define STBURST_CORE_RBURSTY_H_

#include <span>
#include <vector>

#include "stburst/common/statusor.h"
#include "stburst/core/discrepancy.h"
#include "stburst/geo/point.h"
#include "stburst/geo/rect.h"
#include "stburst/stream/types.h"

namespace stburst {

/// One bursty rectangle of a snapshot: its geometry, its r-score (Eq. 8),
/// and the streams inside it (sorted).
struct BurstyRectangle {
  Rect rect;
  double score = 0.0;
  std::vector<StreamId> streams;
};

struct RBurstyOptions {
  MaxRectOptions rect;
  /// Optional cap on the number of rectangles reported per snapshot.
  size_t max_rectangles = static_cast<size_t>(-1);
};

/// Runs Algorithm 1 on one snapshot: `positions[s]` is stream s's planar
/// location and `burstiness[s]` its B(t, Dx[i]) score (Eq. 7). Rectangles
/// come back in the order found, i.e. descending r-score.
///
/// Builds a SpatialBinning for the positions internally (shared across the
/// iterative extractions of this one call); snapshot-at-a-time callers
/// (STLocal) hold a standing binning and use the overload below instead.
StatusOr<std::vector<BurstyRectangle>> RBursty(
    const std::vector<Point2D>& positions, const std::vector<double>& burstiness,
    const RBurstyOptions& options = {});

/// Same algorithm against a prebuilt binning of the stream positions
/// (binning.num_points() must equal burstiness.size()). `options.rect` is
/// ignored — the binning already fixes the cell geometry. Identical output
/// to the position-based overload over the binning's point set.
StatusOr<std::vector<BurstyRectangle>> RBursty(
    const SpatialBinning& binning, std::span<const double> burstiness,
    const RBurstyOptions& options = {});

}  // namespace stburst

#endif  // STBURST_CORE_RBURSTY_H_
