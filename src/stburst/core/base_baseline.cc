#include "stburst/core/base_baseline.h"

#include <algorithm>
#include <numeric>

#include "stburst/common/logging.h"

namespace stburst {

std::vector<Interval> BaseBinarizedIntervals(const std::vector<double>& burstiness,
                                             int gap_fill) {
  const size_t n = burstiness.size();
  std::vector<uint8_t> bits(n);
  for (size_t i = 0; i < n; ++i) bits[i] = burstiness[i] > 0.0 ? 1 : 0;

  // Fill interior zero-runs shorter than gap_fill ("not in the beginning or
  // end of the sequence").
  size_t i = 0;
  while (i < n) {
    if (bits[i] != 0) {
      ++i;
      continue;
    }
    size_t j = i;
    while (j < n && bits[j] == 0) ++j;
    bool interior = i > 0 && j < n;
    if (interior && static_cast<int>(j - i) < gap_fill) {
      for (size_t k = i; k < j; ++k) bits[k] = 1;
    }
    i = j;
  }

  std::vector<Interval> intervals;
  i = 0;
  while (i < n) {
    if (bits[i] == 0) {
      ++i;
      continue;
    }
    size_t j = i;
    while (j < n && bits[j] == 1) ++j;
    intervals.push_back(Interval{static_cast<Timestamp>(i),
                                 static_cast<Timestamp>(j - 1)});
    i = j;
  }
  return intervals;
}

std::vector<BasePattern> BaseMine(const TermSeries& series,
                                  const ExpectedModelFactory& model_factory,
                                  const BaseOptions& options,
                                  const std::vector<StreamId>* order) {
  std::vector<StreamId> stream_order;
  if (order != nullptr) {
    stream_order = *order;
  } else {
    stream_order.resize(series.num_streams());
    std::iota(stream_order.begin(), stream_order.end(), 0);
  }

  std::vector<BasePattern> patterns;
  for (StreamId s : stream_order) {
    STB_CHECK(s < series.num_streams()) << "stream order references stream " << s;
    auto model = model_factory();
    std::vector<double> b = BurstinessSeries(series.StreamRow(s), model.get());
    for (const Interval& interval :
         BaseBinarizedIntervals(b, options.gap_fill)) {
      // Find the best-matching existing pattern.
      BasePattern* best = nullptr;
      double best_sim = options.merge_jaccard;
      for (BasePattern& p : patterns) {
        double sim = p.timeframe.TemporalJaccard(interval);
        if (sim >= best_sim) {
          best_sim = sim;
          best = &p;
        }
      }
      if (best != nullptr) {
        // "I and I' are merged, and I' ∩ I replaces I' in I."
        best->timeframe = best->timeframe.Intersect(interval);
        if (!std::binary_search(best->streams.begin(), best->streams.end(), s)) {
          best->streams.insert(
              std::lower_bound(best->streams.begin(), best->streams.end(), s),
              s);
        }
      } else {
        patterns.push_back(BasePattern{{s}, interval});
      }
    }
  }
  return patterns;
}

}  // namespace stburst
