#include "stburst/core/temporal.h"

#include "stburst/core/getmax.h"

namespace stburst {

double TemporalBurstiness(const std::vector<double>& y, const Interval& interval) {
  if (y.empty() || !interval.valid()) return 0.0;
  if (interval.start < 0 ||
      static_cast<size_t>(interval.end) >= y.size()) {
    return 0.0;
  }
  double total = 0.0;
  for (double v : y) total += v;
  if (total <= 0.0) return 0.0;

  double in_interval = 0.0;
  for (Timestamp t = interval.start; t <= interval.end; ++t) {
    in_interval += y[static_cast<size_t>(t)];
  }
  return in_interval / total -
         static_cast<double>(interval.length()) / static_cast<double>(y.size());
}

std::vector<BurstyInterval> ExtractBurstyIntervals(const std::vector<double>& y,
                                                   double min_burstiness) {
  std::vector<BurstyInterval> out;
  if (y.empty()) return out;
  double total = 0.0;
  for (double v : y) total += v;
  if (total <= 0.0) return out;

  const double baseline = 1.0 / static_cast<double>(y.size());
  std::vector<double> scores(y.size());
  for (size_t i = 0; i < y.size(); ++i) scores[i] = y[i] / total - baseline;

  for (const Segment& seg : MaximalSegments(scores)) {
    if (seg.score <= min_burstiness) continue;
    out.push_back(BurstyInterval{
        Interval{static_cast<Timestamp>(seg.start),
                 static_cast<Timestamp>(seg.end)},
        seg.score});
  }
  return out;
}

}  // namespace stburst
