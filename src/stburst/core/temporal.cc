#include "stburst/core/temporal.h"

#include "stburst/core/getmax.h"

namespace stburst {

double TemporalBurstiness(std::span<const double> y, const Interval& interval) {
  if (y.empty() || !interval.valid()) return 0.0;
  if (interval.start < 0 ||
      static_cast<size_t>(interval.end) >= y.size()) {
    return 0.0;
  }
  double total = 0.0;
  for (double v : y) total += v;
  if (total <= 0.0) return 0.0;

  double in_interval = 0.0;
  for (Timestamp t = interval.start; t <= interval.end; ++t) {
    in_interval += y[static_cast<size_t>(t)];
  }
  return in_interval / total -
         static_cast<double>(interval.length()) / static_cast<double>(y.size());
}

void AppendBurstyIntervals(std::span<const double> y, double min_burstiness,
                           std::vector<BurstyInterval>* out) {
  if (y.empty()) return;
  double total = 0.0;
  for (double v : y) total += v;
  if (total <= 0.0) return;

  // Hot path of per-term mining: the Ruzzo–Tompa state is per-thread
  // scratch, so one (term, stream) extraction performs no allocations
  // beyond the caller's output growth.
  const double baseline = 1.0 / static_cast<double>(y.size());
  thread_local OnlineMaxSegments getmax;
  getmax.Reset();
  for (double v : y) getmax.Add(v / total - baseline);

  thread_local std::vector<Segment> segments;
  segments.clear();
  getmax.AppendCurrentSegments(&segments);
  for (const Segment& seg : segments) {
    if (seg.score <= min_burstiness) continue;
    out->push_back(BurstyInterval{
        Interval{static_cast<Timestamp>(seg.start),
                 static_cast<Timestamp>(seg.end)},
        seg.score});
  }
}

std::vector<BurstyInterval> ExtractBurstyIntervals(std::span<const double> y,
                                                   double min_burstiness) {
  std::vector<BurstyInterval> out;
  AppendBurstyIntervals(y, min_burstiness, &out);
  return out;
}

}  // namespace stburst
