// OnlineStComb — a streaming variant of STComb (the paper's §8 names "a
// purely online version of STComb" as future work; this module provides
// one).
//
// STComb's expensive part is re-deriving every stream's bursty temporal
// intervals when new data arrives. This class maintains, per stream, the
// online Ruzzo–Tompa state over the transformed scores s_i = y_i/W − 1/N.
// Because W (total mass) and N (length) change as the stream grows, the
// per-stream transformation is refreshed lazily: scores are stored raw, and
// the maximal segments are recomputed per stream only when that stream's
// mass changed since the last query — typically a small fraction of
// streams per snapshot for real vocabularies. The clique stage is already
// an O(m log m) sweep over the current interval pool, cheap enough to run
// per query.

#ifndef STBURST_CORE_ONLINE_STCOMB_H_
#define STBURST_CORE_ONLINE_STCOMB_H_

#include <vector>

#include "stburst/common/statusor.h"
#include "stburst/core/stcomb.h"
#include "stburst/stream/frequency.h"
#include "stburst/stream/types.h"

namespace stburst {

/// Online combinatorial miner for one term. Feed one frequency snapshot per
/// timestamp; query patterns at any time.
class OnlineStComb {
 public:
  explicit OnlineStComb(size_t num_streams, StCombOptions options = {});

  /// Appends the next timestamp's per-stream frequencies. Must match the
  /// stream count.
  Status Push(const std::vector<double>& frequencies);

  /// Pushes the snapshot at the miner's current time for `term` straight
  /// from a shared FrequencyIndex — the glue that lets the online and batch
  /// miners serve one live-fed index. The index must already hold that
  /// timestamp (i.e. FrequencyIndex::AppendSnapshot ran first) and must not
  /// have evicted it (FailedPrecondition otherwise — attach watchlists
  /// before the index's window slides past them, then EvictBefore in
  /// lockstep); call in a loop to catch up after a batch of appends.
  /// O(n log postings(term)).
  Status PushFromIndex(const FrequencyIndex& index, TermId term);

  /// Timestamps consumed so far.
  Timestamp current_time() const { return time_; }
  size_t num_streams() const { return streams_.size(); }

  /// Drops the retained history older than `cutoff`: every stream's raw
  /// prefix is evicted and its mass re-summed over the remaining window, so
  /// the burstiness transformation (W and N) is re-normalized to the window
  /// — exactly what batch STComb over the windowed dense series computes.
  /// Interval/pattern timestamps stay absolute. A long-running watchlist
  /// miner evicted in lockstep with its FrequencyIndex holds O(window)
  /// memory per stream instead of the full feed history. cutoff <=
  /// window_start() is a no-op; cutoff beyond current_time() is OutOfRange.
  ///
  /// This is the shared watchlist eviction contract (docs/ARCHITECTURE.md,
  /// retention rules 2 and 8): evict-then-continue equals a fresh miner
  /// over the windowed series, timestamps absolute. OnlineRegionalMiner::
  /// EvictBefore makes the same promise for regional watchlists (there the
  /// rebase must also rebuild the expected-frequency models and replay the
  /// per-region sequences, not just re-sum masses).
  Status EvictBefore(Timestamp cutoff);

  /// First retained timestamp (0 until EvictBefore advances it).
  Timestamp window_start() const { return origin_; }

  /// Current per-stream bursty intervals (recomputing only streams whose
  /// mass changed since the last call), in absolute timestamps.
  const std::vector<StreamInterval>& CurrentIntervals();

  /// Current combinatorial patterns over the retained window, descending
  /// score — identical to running batch STComb on the windowed prefix
  /// (timeframes reported in absolute timestamps).
  std::vector<CombinatorialPattern> CurrentPatterns();

 private:
  struct StreamState {
    std::vector<double> raw;        // frequency history of the window
    double mass = 0.0;              // running sum of raw
    bool dirty = true;              // intervals stale?
    std::vector<StreamInterval> intervals;  // absolute timestamps
  };

  void RefreshStream(StreamId s);

  StCombOptions options_;
  StComb miner_;
  Timestamp time_ = 0;
  Timestamp origin_ = 0;  // absolute timestamp of raw[0]
  std::vector<StreamState> streams_;
  std::vector<StreamInterval> pooled_;
  bool pooled_dirty_ = true;
};

}  // namespace stburst

#endif  // STBURST_CORE_ONLINE_STCOMB_H_
