// Kleinberg's two-state burst automaton (reference [13]).
//
// §3 of the paper notes the STComb pipeline "is compatible with any
// framework that reports non-overlapping bursty intervals"; this module
// provides the classic alternative to the discrepancy-based detector of
// [14]. The batch (enumerating) variant for document streams is
// implemented: at each timestamp the term generated r_t of d_t relevant
// events; the automaton chooses between a base state with rate p0 = R/D and
// a burst state with rate p1 = s*p0 by minimizing binomial negative
// log-likelihood plus a transition cost gamma * ln(T) for entering the
// burst state. The optimal state sequence is found with Viterbi dynamic
// programming; runs of the burst state become the reported intervals.

#ifndef STBURST_CORE_KLEINBERG_H_
#define STBURST_CORE_KLEINBERG_H_

#include <vector>

#include "stburst/common/statusor.h"
#include "stburst/core/temporal.h"

namespace stburst {

struct KleinbergOptions {
  /// Burst-state rate multiplier (s in Kleinberg's notation); > 1.
  double s = 2.0;
  /// Cost scale for entering the burst state; >= 0.
  double gamma = 1.0;
};

/// Detects bursty intervals in a sequence of (relevant, total) counts.
/// `relevant[i]` is the term's frequency at timestamp i and `totals[i]` the
/// total volume at that timestamp (totals[i] >= relevant[i] >= 0). Returned
/// intervals are non-overlapping and ordered; each carries the likelihood
/// advantage of the burst state over the base state as its score, so the
/// output plugs directly into StComb::MineFromIntervals.
StatusOr<std::vector<BurstyInterval>> KleinbergBursts(
    const std::vector<double>& relevant, const std::vector<double>& totals,
    const KleinbergOptions& options = {});

}  // namespace stburst

#endif  // STBURST_CORE_KLEINBERG_H_
