#include "stburst/core/batch_miner.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "stburst/common/fault_injection.h"
#include "stburst/common/logging.h"
#include "stburst/common/parallel.h"
#include "stburst/core/temporal.h"

namespace stburst {

namespace {

// Per-worker reusable state. One instance per worker id; ParallelFor
// guarantees a worker id is never active on two threads at once.
struct WorkerScratch {
  std::vector<double> row;                  // one stream's timeline
  std::vector<BurstyInterval> bursts;       // one stream's bursty intervals
  std::vector<StreamInterval> intervals;    // pooled per-term intervals
  std::unique_ptr<TermSeries> dense;        // regional mining only
  RegionalMiningScratch regional;           // model arena + burstiness buffer
};

// Combinatorial step (1) straight from sorted sparse postings: postings are
// grouped by stream, so each group is scattered into the window scratch
// (absolute time minus `origin`) and fed to interval extraction; the
// extracted intervals are mapped back to absolute timestamps. Streams
// without postings have no mass and thus no intervals — identical output to
// the dense ExtractStreamIntervals, at O(nnz + active_streams * L) instead
// of O(n * L).
void ExtractIntervalsFromPostings(const std::vector<TermPosting>& postings,
                                  size_t timeline, Timestamp origin,
                                  double min_burstiness,
                                  WorkerScratch* scratch) {
  scratch->intervals.clear();
  scratch->row.resize(timeline);
  size_t i = 0;
  while (i < postings.size()) {
    const StreamId stream = postings[i].stream;
    std::fill(scratch->row.begin(), scratch->row.end(), 0.0);
    size_t j = i;
    while (j < postings.size() && postings[j].stream == stream) {
      scratch->row[static_cast<size_t>(postings[j].time - origin)] +=
          postings[j].count;
      ++j;
    }
    scratch->bursts.clear();
    AppendBurstyIntervals(scratch->row, min_burstiness, &scratch->bursts);
    for (const BurstyInterval& bi : scratch->bursts) {
      scratch->intervals.push_back(StreamInterval{
          stream,
          Interval{bi.interval.start + origin, bi.interval.end + origin},
          bi.burstiness});
    }
    i = j;
  }
}

Status ValidateRegional(const FrequencyIndex& index,
                        const BatchMinerOptions& options) {
  if (!options.mine_regional) return Status::OK();
  if (options.positions.size() != index.num_streams()) {
    return Status::InvalidArgument(
        "regional mining requires one position per stream");
  }
  if (!options.model_factory) {
    return Status::InvalidArgument(
        "regional mining requires an expected-model factory");
  }
  if (options.binning != nullptr &&
      options.binning->num_points() != index.num_streams()) {
    return Status::InvalidArgument(
        "shared binning does not cover the index's streams");
  }
  return Status::OK();
}

// State shared by one batch run (full sweep or dirty-term re-mine): the
// per-worker scratch, the shared STComb instance, and first-error capture.
// MineTerm is the single per-term pipeline both entry points fan out.
struct MineShared {
  const FrequencyIndex& index;
  const BatchMinerOptions& options;
  const StComb stcomb;
  const size_t timeline;   // retained window width
  const Timestamp origin;  // absolute timestamp of window column 0
  // Stream-position binning shared by every term's regional mine: either
  // the caller's standing binning (options.binning) or one built per run.
  // Immutable, so all workers read it concurrently. Null without regional
  // mining.
  const SpatialBinning* binning;
  std::vector<WorkerScratch> scratch;
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::optional<Status> error;

  MineShared(const FrequencyIndex& idx, const BatchMinerOptions& opts,
             const SpatialBinning* shared_binning, size_t threads)
      : index(idx),
        options(opts),
        stcomb(opts.stcomb),
        timeline(static_cast<size_t>(idx.window_length())),
        origin(idx.window_start()),
        binning(shared_binning),
        scratch(threads) {}

  void MineTerm(size_t worker, TermId term, TermPatterns* slot) {
    STBURST_FAULT_POINT_THROW("batch_miner.mine_term");
    slot->term = term;
    slot->mined = false;
    slot->combinatorial.clear();
    slot->regional.clear();

    const std::vector<TermPosting>& postings = index.postings(term);
    if (postings.empty()) return;
    if (options.min_term_total > 0.0 &&
        index.TotalCount(term) < options.min_term_total) {
      return;
    }
    slot->mined = true;
    WorkerScratch& ws = scratch[worker];

    if (options.mine_combinatorial) {
      ExtractIntervalsFromPostings(postings, timeline, origin,
                                   options.stcomb.min_interval_burstiness, &ws);
      // MineFromIntervals consumes its pool by value; moving the scratch in
      // avoids a per-term copy (the next term clears and refills it anyway).
      slot->combinatorial = stcomb.MineFromIntervals(std::move(ws.intervals));
    }

    if (options.mine_regional) {
      if (ws.dense == nullptr) {
        ws.dense = std::make_unique<TermSeries>(index.num_streams(),
                                                index.window_length());
      }
      index.FillSeries(term, ws.dense.get());
      auto windows = MineRegionalPatterns(*ws.dense, options.positions,
                                          options.model_factory,
                                          options.stlocal, binning,
                                          &ws.regional);
      if (!windows.ok()) {
        std::unique_lock<std::mutex> lock(error_mu);
        if (!error.has_value()) error = windows.status();
        failed.store(true, std::memory_order_relaxed);
        // Keep the invariant that non-mined slots carry empty vectors even
        // on the error path.
        slot->mined = false;
        slot->combinatorial.clear();
        return;
      }
      slot->regional = std::move(*windows);
      // StLocal mines the window-relative series; report absolute times.
      for (SpatiotemporalWindow& w : slot->regional) {
        w.timeframe.start += origin;
        w.timeframe.end += origin;
      }
    }
  }
};

// Worker-id slots of one batch run: a borrowed pool contributes its workers
// plus the calling thread (ParallelFor gives the caller the highest id);
// otherwise the transient-pool path sizes scratch by the requested count.
size_t RunWorkerSlots(const BatchMinerOptions& options) {
  return options.pool != nullptr ? options.pool->num_threads() + 1
                                 : ResolveThreadCount(options.num_threads);
}

// Fans `body` over [0, n) — across the borrowed standing pool when the
// options carry one (no per-call thread spawn/join), else a transient pool.
void RunParallel(const BatchMinerOptions& options, size_t n,
                 const std::function<void(size_t, size_t)>& body) {
  if (options.pool != nullptr) {
    ParallelFor(options.pool, 0, n, body);
  } else {
    ParallelFor(ResolveThreadCount(options.num_threads), 0, n, body);
  }
}

// Resolves the run's shared binning into `binning`: the caller's standing
// one when lent, else a fresh build over the options' positions stored in
// `own` (whose lifetime the caller scopes to the run). No-op without
// regional mining.
Status ResolveBinning(const BatchMinerOptions& options,
                      std::optional<SpatialBinning>* own,
                      const SpatialBinning** binning) {
  *binning = options.binning;
  if (!options.mine_regional || *binning != nullptr) return Status::OK();
  STB_ASSIGN_OR_RETURN(*own, SpatialBinning::Create(
                                 options.positions, options.stlocal.rbursty.rect));
  *binning = &**own;
  return Status::OK();
}

// Restores the mined/skipped bookkeeping invariant (mined + skipped ==
// num_terms) after slots changed.
void RecountTerms(BatchMineResult* result) {
  size_t mined = 0;
  for (const TermPatterns& slot : result->terms) {
    if (slot.mined) ++mined;
  }
  result->terms_mined = mined;
  result->terms_skipped = result->terms.size() - mined;
}

}  // namespace

StatusOr<BatchMineResult> MineAllTerms(const FrequencyIndex& index,
                                       const BatchMinerOptions& options) {
  STB_RETURN_NOT_OK(ValidateRegional(index, options));

  BatchMineResult result;
  result.terms.resize(index.num_terms());
  const size_t threads = RunWorkerSlots(options);
  result.threads_used = threads;
  if (index.num_terms() == 0) return result;

  std::optional<SpatialBinning> own_binning;
  const SpatialBinning* binning = nullptr;
  STB_RETURN_NOT_OK(ResolveBinning(options, &own_binning, &binning));

  MineShared shared(index, options, binning, threads);
  RunParallel(options, index.num_terms(), [&](size_t worker, size_t t) {
    if (shared.failed.load(std::memory_order_relaxed)) return;
    shared.MineTerm(worker, static_cast<TermId>(t), &result.terms[t]);
  });

  if (shared.error.has_value()) return *shared.error;
  RecountTerms(&result);
  return result;
}

StatusOr<std::vector<TermId>> StageRemineTerms(
    const FrequencyIndex& index, const std::vector<TermId>& terms,
    const BatchMinerOptions& options, std::vector<TermPatterns>* staged) {
  STB_RETURN_NOT_OK(ValidateRegional(index, options));

  // Dedupe so no two workers share a slot, and validate before mining so a
  // rejected call stages nothing.
  std::vector<TermId> todo = terms;
  std::sort(todo.begin(), todo.end());
  todo.erase(std::unique(todo.begin(), todo.end()), todo.end());
  for (TermId term : todo) {
    if (term >= index.num_terms()) {
      return Status::InvalidArgument("term id outside the index vocabulary");
    }
  }

  staged->clear();
  staged->resize(todo.size());
  if (!todo.empty()) {
    std::optional<SpatialBinning> own_binning;
    const SpatialBinning* binning = nullptr;
    STB_RETURN_NOT_OK(ResolveBinning(options, &own_binning, &binning));
    MineShared shared(index, options, binning, RunWorkerSlots(options));
    RunParallel(options, todo.size(), [&](size_t worker, size_t i) {
      if (shared.failed.load(std::memory_order_relaxed)) return;
      shared.MineTerm(worker, todo[i], &(*staged)[i]);
    });
    if (shared.error.has_value()) return *shared.error;
  }
  return todo;
}

Status RemineTerms(const FrequencyIndex& index, const std::vector<TermId>& terms,
                   const BatchMinerOptions& options, BatchMineResult* result) {
  if (result->terms.size() > index.num_terms()) {
    return Status::InvalidArgument("result holds more term slots than the index");
  }
  // Stage first, publish after: `result` is only touched once every listed
  // term has mined cleanly, so any error leaves it exactly as it was.
  std::vector<TermPatterns> staged;
  STB_ASSIGN_OR_RETURN(std::vector<TermId> todo,
                       StageRemineTerms(index, terms, options, &staged));

  // Absorb vocabulary growth: slots for new terms start out skipped and are
  // overwritten below iff listed in `terms`.
  const size_t old_size = result->terms.size();
  result->terms.resize(index.num_terms());
  for (size_t t = old_size; t < result->terms.size(); ++t) {
    result->terms[t].term = static_cast<TermId>(t);
  }

  result->threads_used = RunWorkerSlots(options);
  for (size_t i = 0; i < todo.size(); ++i) {
    result->terms[todo[i]] = std::move(staged[i]);
  }
  RecountTerms(result);
  return Status::OK();
}

}  // namespace stburst
