#include "stburst/core/batch_miner.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "stburst/common/logging.h"
#include "stburst/common/parallel.h"
#include "stburst/core/temporal.h"

namespace stburst {

namespace {

// Per-worker reusable state. One instance per worker id; ParallelFor
// guarantees a worker id is never active on two threads at once.
struct WorkerScratch {
  std::vector<double> row;                  // one stream's timeline
  std::vector<BurstyInterval> bursts;       // one stream's bursty intervals
  std::vector<StreamInterval> intervals;    // pooled per-term intervals
  std::unique_ptr<TermSeries> dense;        // regional mining only
};

// Combinatorial step (1) straight from sorted sparse postings: postings are
// grouped by stream, so each group is scattered into the timeline scratch
// and fed to interval extraction. Streams without postings have no mass and
// thus no intervals — identical output to the dense ExtractStreamIntervals,
// at O(nnz + active_streams * L) instead of O(n * L).
void ExtractIntervalsFromPostings(const std::vector<TermPosting>& postings,
                                  size_t timeline, double min_burstiness,
                                  WorkerScratch* scratch) {
  scratch->intervals.clear();
  scratch->row.resize(timeline);
  size_t i = 0;
  while (i < postings.size()) {
    const StreamId stream = postings[i].stream;
    std::fill(scratch->row.begin(), scratch->row.end(), 0.0);
    size_t j = i;
    while (j < postings.size() && postings[j].stream == stream) {
      scratch->row[static_cast<size_t>(postings[j].time)] += postings[j].count;
      ++j;
    }
    scratch->bursts.clear();
    AppendBurstyIntervals(scratch->row, min_burstiness, &scratch->bursts);
    for (const BurstyInterval& bi : scratch->bursts) {
      scratch->intervals.push_back(StreamInterval{stream, bi.interval,
                                                  bi.burstiness});
    }
    i = j;
  }
}

}  // namespace

StatusOr<BatchMineResult> MineAllTerms(const FrequencyIndex& index,
                                       const BatchMinerOptions& options) {
  if (options.mine_regional) {
    if (options.positions.size() != index.num_streams()) {
      return Status::InvalidArgument(
          "regional mining requires one position per stream");
    }
    if (!options.model_factory) {
      return Status::InvalidArgument(
          "regional mining requires an expected-model factory");
    }
  }

  BatchMineResult result;
  result.terms.resize(index.num_terms());
  const size_t threads = ResolveThreadCount(options.num_threads);
  result.threads_used = threads;
  if (index.num_terms() == 0) return result;

  const StComb stcomb(options.stcomb);
  const size_t timeline = static_cast<size_t>(index.timeline_length());

  std::vector<WorkerScratch> scratch(threads);
  std::atomic<size_t> mined{0};
  std::atomic<size_t> skipped{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::optional<Status> error;

  auto mine_term = [&](size_t worker, size_t t) {
    if (failed.load(std::memory_order_relaxed)) return;
    const TermId term = static_cast<TermId>(t);
    TermPatterns& slot = result.terms[t];
    slot.term = term;

    const std::vector<TermPosting>& postings = index.postings(term);
    if (postings.empty()) {
      skipped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (options.min_term_total > 0.0 &&
        index.TotalCount(term) < options.min_term_total) {
      skipped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    mined.fetch_add(1, std::memory_order_relaxed);
    WorkerScratch& ws = scratch[worker];

    if (options.mine_combinatorial) {
      ExtractIntervalsFromPostings(postings, timeline,
                                   options.stcomb.min_interval_burstiness, &ws);
      slot.combinatorial = stcomb.MineFromIntervals(ws.intervals);
    }

    if (options.mine_regional) {
      if (ws.dense == nullptr) {
        ws.dense = std::make_unique<TermSeries>(index.num_streams(),
                                                index.timeline_length());
      }
      index.FillSeries(term, ws.dense.get());
      auto windows = MineRegionalPatterns(*ws.dense, options.positions,
                                          options.model_factory, options.stlocal);
      if (!windows.ok()) {
        std::unique_lock<std::mutex> lock(error_mu);
        if (!error.has_value()) error = windows.status();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
      slot.regional = std::move(*windows);
    }
  };

  ParallelFor(threads, 0, index.num_terms(), mine_term);

  if (error.has_value()) return *error;
  result.terms_mined = mined.load();
  result.terms_skipped = skipped.load();
  return result;
}

}  // namespace stburst
