// Base — the baseline pattern miner the paper compares against (§6.2.2).
//
// Per stream: compute the burstiness series (Eq. 7), binarize at zero,
// gap-fill interior zero-runs shorter than ℓ, and take the remaining
// one-runs as the stream's bursty intervals. Then process the streams in
// order, merging each interval into an existing pattern whose interval has
// temporal Jaccard >= δ (the merged pattern keeps the intersection of the
// two intervals), or opening a new pattern otherwise.

#ifndef STBURST_CORE_BASE_BASELINE_H_
#define STBURST_CORE_BASE_BASELINE_H_

#include <vector>

#include "stburst/core/expected.h"
#include "stburst/core/interval.h"
#include "stburst/stream/frequency.h"
#include "stburst/stream/types.h"

namespace stburst {

/// A Base pattern: the streams that contributed intervals plus the running
/// intersection of those intervals.
struct BasePattern {
  std::vector<StreamId> streams;  // sorted
  Interval timeframe;
};

struct BaseOptions {
  /// ℓ: interior zero-runs shorter than this are flipped to ones.
  int gap_fill = 2;
  /// δ: minimum temporal Jaccard for merging an interval into a pattern.
  double merge_jaccard = 0.5;
};

/// The per-stream binarized bursty intervals (the miner's first stage,
/// exposed for testing and tuning).
std::vector<Interval> BaseBinarizedIntervals(const std::vector<double>& burstiness,
                                             int gap_fill);

/// Runs the full Base miner over one term's frequency matrix, using a fresh
/// expected-frequency model per stream. Streams are processed in id order
/// (the paper uses a random order; pass a shuffled `order` to emulate it).
std::vector<BasePattern> BaseMine(const TermSeries& series,
                                  const ExpectedModelFactory& model_factory,
                                  const BaseOptions& options = {},
                                  const std::vector<StreamId>* order = nullptr);

}  // namespace stburst

#endif  // STBURST_CORE_BASE_BASELINE_H_
