#include "stburst/core/expected.h"

#include "stburst/common/logging.h"

namespace stburst {

WindowMeanModel::WindowMeanModel(size_t window) : window_(window) {
  STB_CHECK(window > 0) << "window must be positive";
}

double WindowMeanModel::Expected() const {
  if (recent_.empty()) return 0.0;
  return sum_ / static_cast<double>(recent_.size());
}

void WindowMeanModel::Observe(double y) {
  recent_.push_back(y);
  sum_ += y;
  if (recent_.size() > window_) {
    sum_ -= recent_.front();
    recent_.pop_front();
  }
}

void WindowMeanModel::Reset() {
  recent_.clear();
  sum_ = 0.0;
}

SeasonalMeanModel::SeasonalMeanModel(size_t period)
    : period_(period), phase_stats_(period) {
  STB_CHECK(period > 0) << "period must be positive";
}

double SeasonalMeanModel::Expected() const {
  const RunningStats& phase = phase_stats_[n_ % period_];
  if (phase.count() > 0) return phase.mean();
  return global_.mean();
}

void SeasonalMeanModel::Observe(double y) {
  phase_stats_[n_ % period_].Add(y);
  global_.Add(y);
  ++n_;
}

void SeasonalMeanModel::Reset() {
  n_ = 0;
  for (RunningStats& s : phase_stats_) s.Reset();
  global_.Reset();
}

ExpectedModelFactory WithPriorFloor(ExpectedModelFactory inner, double floor) {
  return [inner = std::move(inner), floor] {
    return std::make_unique<PriorFloorModel>(inner(), floor);
  };
}

std::vector<double> BurstinessSeries(std::span<const double> y,
                                     ExpectedFrequencyModel* model) {
  std::vector<double> b(y.size());
  for (size_t i = 0; i < y.size(); ++i) {
    b[i] = model->HasHistory() ? y[i] - model->Expected() : 0.0;
    model->Observe(y[i]);
  }
  return b;
}

}  // namespace stburst
