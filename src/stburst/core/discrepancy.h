// Maximum bichromatic-discrepancy rectangle (paper §4, reference [5]).
//
// Given planar points with real weights (positive where a stream's observed
// frequency exceeds its expected one, negative otherwise), find the
// axis-oriented rectangle maximizing the total weight of the points inside.
// This is R-Bursty's inner module.
//
// Two modes:
//  - kExact: coordinate-compressed Kadane sweep over row bands. Candidate
//    bands are anchored at rows containing positive-weight points (an
//    optimal rectangle can always be shrunk until each horizontal edge
//    touches a positive point), giving O(P · R · C) for P positive rows, R
//    total rows, C columns — comfortably fast for the hundreds of streams
//    the paper's real datasets have and exact for result-quality
//    experiments.
//  - kGrid: aggregates weights onto a fixed g x g grid first (the paper's §2
//    explicitly endorses grid partitioning of the map), then runs the same
//    sweep in O(n + g^3) independent of the stream count. Used for the
//    Figure 8 scalability sweeps with up to 128k streams.
//
// The binning (bounds, grid geometry, coordinate compression, and each
// point's cell) depends only on the point set and the options — never on
// the weights. Stream positions are fixed across every term and snapshot
// of a corpus, so SpatialBinning lets callers pay for that geometry once:
// each solve is then an O(points) weight scatter plus the sweep.
// R-Bursty shares one binning across its iterative extractions, STLocal
// across every snapshot of a term, and the batch miner across the entire
// vocabulary (see docs/ARCHITECTURE.md, "Shared spatial binning").

#ifndef STBURST_CORE_DISCREPANCY_H_
#define STBURST_CORE_DISCREPANCY_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "stburst/common/statusor.h"
#include "stburst/geo/point.h"
#include "stburst/geo/rect.h"

namespace stburst {

/// Weight assigned to streams already reported by R-Bursty: any rectangle
/// containing such a stream is disqualified (the paper's "set B = −∞").
/// Finite so the arithmetic stays IEEE-clean; far beyond any real score.
inline constexpr double kExcludedWeight = -1e18;

struct MaxRectOptions {
  enum class Mode { kExact, kGrid };
  Mode mode = Mode::kExact;
  /// Grid resolution for kGrid mode.
  size_t grid_cols = 64;
  size_t grid_rows = 64;
  /// Band evaluation strategy for the Kadane sweep.
  ///
  /// kScalar (default) runs the sequential max-subarray recurrence on every
  /// admitted band — the fully bit-identical path. kVectorized first runs
  /// simd::MaxSubarrayMayExceed, a prefix-sum/prefix-max scan whose lanes
  /// carry independent columns, and only falls back to the sequential
  /// recurrence on bands the scan cannot prune. The scan reassociates float
  /// adds internally (the library's one reassociation boundary — see
  /// ARCHITECTURE.md), but it is used purely as an admission filter with a
  /// provable rounding slack: reported scores are always sequential window
  /// sums, and the per-band max stays within 4 ULP of the scalar mode's (in
  /// practice equal; the argmax window on exact score ties is documented as
  /// unspecified). Opt-in because the *decision* path differs from the
  /// scalar mode's, even though the emitted results agree.
  enum class KadaneMode { kScalar, kVectorized };
  KadaneMode kadane = KadaneMode::kScalar;
};

/// The best rectangle found: its tight geometry, its score, and the indices
/// of all input points inside it. When no positive-score rectangle exists,
/// `rect` is empty, `score` is 0, and `points_inside` is empty.
struct MaxRectResult {
  Rect rect;
  double score = 0.0;
  std::vector<size_t> points_inside;
};

/// The weight-independent half of the rectangle solver: a rows x cols cell
/// geometry over the plane plus the cell of every input point, built once
/// from a fixed point set and reused for any number of weight vectors.
///
/// In kExact mode rows/columns are the coordinate-compressed point
/// coordinates; in kGrid mode they are uniform grid cells over the bounding
/// box (degenerate layouts — empty or collinear point sets, where the box
/// has no area — fall back to the exact compression, which handles 1-D
/// natively). Immutable after Create and safe to share across any number of
/// threads concurrently; valid for as long as the point set it was built
/// from stays fixed (it holds no reference to the points).
class SpatialBinning {
 public:
  /// An empty binning (zero points, zero cells); assign from Create.
  SpatialBinning() = default;

  /// Builds the binning for `points` under `options`. InvalidArgument for a
  /// zero grid resolution in kGrid mode. O(n log n).
  static StatusOr<SpatialBinning> Create(const std::vector<Point2D>& points,
                                         const MaxRectOptions& options = {});

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t num_points() const { return point_row_.size(); }

  /// Geometry views (length cols()/rows()): the planar extent of each
  /// column in x and each row in y (lo == hi in exact mode).
  std::span<const double> col_lo() const { return col_lo_; }
  std::span<const double> col_hi() const { return col_hi_; }
  std::span<const double> row_lo() const { return row_lo_; }
  std::span<const double> row_hi() const { return row_hi_; }

  /// Cell of each input point (length num_points()).
  std::span<const uint32_t> point_rows() const { return point_row_; }
  std::span<const uint32_t> point_cols() const { return point_col_; }

  /// The band evaluation strategy this binning was created with; every
  /// solve against it (and thus R-Bursty, STLocal, the batch miner, and the
  /// runtimes, which all share binnings) inherits it.
  MaxRectOptions::KadaneMode kadane() const { return kadane_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  MaxRectOptions::KadaneMode kadane_ = MaxRectOptions::KadaneMode::kScalar;
  std::vector<double> col_lo_, col_hi_;  // x-extent of each column
  std::vector<double> row_lo_, row_hi_;  // y-extent of each row
  std::vector<uint32_t> point_row_, point_col_;  // cell of each input point
};

/// Finds the maximum-weight axis-oriented rectangle over the weighted
/// points. `points` and `weights` must have equal length. Weights equal to
/// kExcludedWeight poison any rectangle containing their point.
///
/// Builds a fresh binning per call; when solving repeatedly over a fixed
/// point set (the mining hot paths), create a SpatialBinning once and use
/// the overload below instead.
StatusOr<MaxRectResult> MaxWeightRectangle(const std::vector<Point2D>& points,
                                           const std::vector<double>& weights,
                                           const MaxRectOptions& options = {});

/// Solves against a prebuilt binning: scatters `weights` (one per binned
/// point, length binning.num_points()) into the cells and runs the sweep.
/// O(points) scatter + O(P · R · C) sweep, no allocations in steady state
/// (per-thread scratch). Identical output to the per-call overload built
/// from the same points and options (tested). Thread-safe: many threads may
/// solve against one shared binning concurrently.
StatusOr<MaxRectResult> MaxWeightRectangle(const SpatialBinning& binning,
                                           std::span<const double> weights);

}  // namespace stburst

#endif  // STBURST_CORE_DISCREPANCY_H_
