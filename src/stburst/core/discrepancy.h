// Maximum bichromatic-discrepancy rectangle (paper §4, reference [5]).
//
// Given planar points with real weights (positive where a stream's observed
// frequency exceeds its expected one, negative otherwise), find the
// axis-oriented rectangle maximizing the total weight of the points inside.
// This is R-Bursty's inner module.
//
// Two modes:
//  - kExact: coordinate-compressed Kadane sweep over row bands. Candidate
//    bands are anchored at rows containing positive-weight points (an
//    optimal rectangle can always be shrunk until each horizontal edge
//    touches a positive point), giving O(P · R · C) for P positive rows, R
//    total rows, C columns — comfortably fast for the hundreds of streams
//    the paper's real datasets have and exact for result-quality
//    experiments.
//  - kGrid: aggregates weights onto a fixed g x g grid first (the paper's §2
//    explicitly endorses grid partitioning of the map), then runs the same
//    sweep in O(n + g^3) independent of the stream count. Used for the
//    Figure 8 scalability sweeps with up to 128k streams.

#ifndef STBURST_CORE_DISCREPANCY_H_
#define STBURST_CORE_DISCREPANCY_H_

#include <cstddef>
#include <vector>

#include "stburst/common/statusor.h"
#include "stburst/geo/point.h"
#include "stburst/geo/rect.h"

namespace stburst {

/// Weight assigned to streams already reported by R-Bursty: any rectangle
/// containing such a stream is disqualified (the paper's "set B = −∞").
/// Finite so the arithmetic stays IEEE-clean; far beyond any real score.
inline constexpr double kExcludedWeight = -1e18;

struct MaxRectOptions {
  enum class Mode { kExact, kGrid };
  Mode mode = Mode::kExact;
  /// Grid resolution for kGrid mode.
  size_t grid_cols = 64;
  size_t grid_rows = 64;
};

/// The best rectangle found: its tight geometry, its score, and the indices
/// of all input points inside it. When no positive-score rectangle exists,
/// `rect` is empty, `score` is 0, and `points_inside` is empty.
struct MaxRectResult {
  Rect rect;
  double score = 0.0;
  std::vector<size_t> points_inside;
};

/// Finds the maximum-weight axis-oriented rectangle over the weighted
/// points. `points` and `weights` must have equal length. Weights equal to
/// kExcludedWeight poison any rectangle containing their point.
StatusOr<MaxRectResult> MaxWeightRectangle(const std::vector<Point2D>& points,
                                           const std::vector<double>& weights,
                                           const MaxRectOptions& options = {});

}  // namespace stburst

#endif  // STBURST_CORE_DISCREPANCY_H_
