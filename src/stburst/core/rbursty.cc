#include "stburst/core/rbursty.h"

#include <algorithm>

#include "stburst/common/logging.h"

namespace stburst {

StatusOr<std::vector<BurstyRectangle>> RBursty(
    const SpatialBinning& binning, std::span<const double> burstiness,
    const RBurstyOptions& options) {
  if (binning.num_points() != burstiness.size()) {
    return Status::InvalidArgument("binning/burstiness length mismatch");
  }
  std::vector<BurstyRectangle> out;
  if (burstiness.empty()) return out;

  std::vector<double> weights(burstiness.begin(), burstiness.end());
  while (out.size() < options.max_rectangles) {
    STB_ASSIGN_OR_RETURN(MaxRectResult best,
                         MaxWeightRectangle(binning, weights));
    if (best.score <= 0.0) break;

    BurstyRectangle rect;
    rect.rect = best.rect;
    rect.score = best.score;
    for (size_t idx : best.points_inside) {
      rect.streams.push_back(static_cast<StreamId>(idx));
      // Paper step 2: B(t, Dx) = −∞ for every stream inside the reported
      // rectangle, eliminating overlap among reported rectangles.
      weights[idx] = kExcludedWeight;
    }
    STB_DCHECK(!rect.streams.empty());
    std::sort(rect.streams.begin(), rect.streams.end());
    out.push_back(std::move(rect));
  }
  return out;
}

StatusOr<std::vector<BurstyRectangle>> RBursty(
    const std::vector<Point2D>& positions, const std::vector<double>& burstiness,
    const RBurstyOptions& options) {
  if (positions.size() != burstiness.size()) {
    return Status::InvalidArgument("positions/burstiness length mismatch");
  }
  if (positions.empty()) return std::vector<BurstyRectangle>{};
  STB_ASSIGN_OR_RETURN(SpatialBinning binning,
                       SpatialBinning::Create(positions, options.rect));
  return RBursty(binning, burstiness, options);
}

}  // namespace stburst
