#include "stburst/core/stlocal.h"

#include <algorithm>
#include <utility>

#include "stburst/common/logging.h"

namespace stburst {

StLocal::StLocal(std::vector<Point2D> positions, StLocalOptions options)
    : positions_(std::move(positions)), options_(options) {}

Status StLocal::ProcessSnapshot(const std::vector<double>& burstiness) {
  if (burstiness.size() != positions_.size()) {
    return Status::InvalidArgument("burstiness size does not match stream count");
  }

  // Line 6: bursty rectangles of this snapshot.
  STB_ASSIGN_OR_RETURN(std::vector<BurstyRectangle> rects,
                       RBursty(positions_, burstiness, options_.rbursty));

  // Line 7: open a sequence for every newly seen region.
  for (BurstyRectangle& r : rects) {
    auto it = live_.find(r.streams);
    if (it == live_.end()) {
      Sequence seq;
      seq.rect = r.rect;
      seq.streams = r.streams;
      seq.born = time_;
      live_.emplace(std::move(r.streams), std::move(seq));
    }
  }

  // Lines 8-12: extend every live sequence with this snapshot's r-score of
  // its region, update its maximal windows, retire on negative total.
  for (auto it = live_.begin(); it != live_.end();) {
    Sequence& seq = it->second;
    double r_score = 0.0;
    for (StreamId s : seq.streams) r_score += burstiness[s];
    seq.segments.Add(r_score);
    if (seq.segments.total() < 0.0) {
      Retire(seq);
      it = live_.erase(it);
    } else {
      ++it;
    }
  }

  ++time_;
  return Status::OK();
}

void StLocal::Retire(const Sequence& seq) {
  for (const Segment& seg : seq.segments.CurrentSegments()) {
    if (seg.score <= options_.min_window_score) continue;
    SpatiotemporalWindow w;
    w.region = seq.rect;
    w.streams = seq.streams;
    w.timeframe = Interval{seq.born + static_cast<Timestamp>(seg.start),
                           seq.born + static_cast<Timestamp>(seg.end)};
    w.score = seg.score;
    finished_.push_back(std::move(w));
  }
}

std::vector<SpatiotemporalWindow> StLocal::Finish() {
  for (const auto& [key, seq] : live_) Retire(seq);
  live_.clear();
  std::vector<SpatiotemporalWindow> out = finished_;
  std::sort(out.begin(), out.end(),
            [](const SpatiotemporalWindow& a, const SpatiotemporalWindow& b) {
              return a.score > b.score;
            });
  return out;
}

size_t StLocal::num_open_windows() const {
  size_t total = 0;
  for (const auto& [key, seq] : live_) total += seq.segments.num_candidates();
  return total;
}

StatusOr<std::vector<SpatiotemporalWindow>> MineRegionalPatterns(
    const TermSeries& series, const std::vector<Point2D>& positions,
    const ExpectedModelFactory& model_factory, const StLocalOptions& options) {
  if (series.num_streams() != positions.size()) {
    return Status::InvalidArgument("series/positions stream count mismatch");
  }

  std::vector<std::unique_ptr<ExpectedFrequencyModel>> models;
  models.reserve(positions.size());
  for (size_t s = 0; s < positions.size(); ++s) models.push_back(model_factory());

  StLocal miner(positions, options);
  std::vector<double> burstiness(positions.size());
  for (Timestamp t = 0; t < series.timeline_length(); ++t) {
    for (StreamId s = 0; s < series.num_streams(); ++s) {
      double y = series.at(s, t);
      burstiness[s] = models[s]->HasHistory() ? y - models[s]->Expected() : 0.0;
      models[s]->Observe(y);
    }
    STB_RETURN_NOT_OK(miner.ProcessSnapshot(burstiness));
  }
  return miner.Finish();
}

}  // namespace stburst
