#include "stburst/core/stlocal.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "stburst/common/logging.h"

namespace stburst {

StLocal::StLocal(std::vector<Point2D> positions, StLocalOptions options,
                 const SpatialBinning* shared_binning)
    : positions_(std::move(positions)),
      num_streams_(positions_.size()),
      options_(options),
      binning_(shared_binning) {}

StLocal::StLocal(size_t num_streams, StLocalOptions options,
                 const SpatialBinning& binning)
    : num_streams_(num_streams), options_(options), binning_(&binning) {}

Status StLocal::EnsureBinning() {
  if (binning_ != nullptr) {
    if (binning_->num_points() != num_streams_) {
      return Status::InvalidArgument(
          "shared binning does not cover this miner's streams");
    }
    return Status::OK();
  }
  STB_ASSIGN_OR_RETURN(SpatialBinning binning,
                       SpatialBinning::Create(positions_, options_.rbursty.rect));
  // Heap-owned so binning_ stays valid when the miner itself is moved.
  own_binning_ = std::make_unique<SpatialBinning>(std::move(binning));
  binning_ = own_binning_.get();
  return Status::OK();
}

Status StLocal::ProcessSnapshot(std::span<const double> burstiness) {
  return ProcessSnapshotImpl(burstiness, /*record=*/true);
}

Status StLocal::ProcessSnapshotImpl(std::span<const double> burstiness,
                                    bool record) {
  if (burstiness.size() != num_streams_) {
    return Status::InvalidArgument("burstiness size does not match stream count");
  }
  STB_RETURN_NOT_OK(EnsureBinning());
  if (record && options_.track_history) {
    history_.insert(history_.end(), burstiness.begin(), burstiness.end());
  }

  // Line 6: bursty rectangles of this snapshot, against the standing
  // binning (built once per miner, or shared across a whole vocabulary).
  STB_ASSIGN_OR_RETURN(std::vector<BurstyRectangle> rects,
                       RBursty(*binning_, burstiness, options_.rbursty));

  // Line 7: open a sequence for every newly seen region. The stream set is
  // the map key and nothing else: try_emplace hashes the set it is handed
  // and moves it in only on actual insertion — one lookup, zero copies.
  for (BurstyRectangle& r : rects) {
    auto [it, inserted] = live_.try_emplace(std::move(r.streams));
    if (inserted) {
      it->second.rect = r.rect;
      it->second.born = time_;
    }
  }

  // Lines 8-12: extend every live sequence with this snapshot's r-score of
  // its region, update its maximal windows, retire on negative total.
  for (auto it = live_.begin(); it != live_.end();) {
    Sequence& seq = it->second;
    double r_score = 0.0;
    for (StreamId s : it->first) r_score += burstiness[s];
    seq.segments.Add(r_score);
    if (seq.segments.total() < 0.0) {
      Retire(it->first, seq);
      it = live_.erase(it);
    } else {
      ++it;
    }
  }

  ++time_;
  return Status::OK();
}

void StLocal::Retire(const std::vector<StreamId>& streams, const Sequence& seq) {
  for (const Segment& seg : seq.segments.CurrentSegments()) {
    if (seg.score <= options_.min_window_score) continue;
    SpatiotemporalWindow w;
    w.region = seq.rect;
    w.streams = streams;
    w.timeframe = Interval{seq.born + static_cast<Timestamp>(seg.start),
                           seq.born + static_cast<Timestamp>(seg.end)};
    w.score = seg.score;
    finished_.push_back(std::move(w));
  }
}

Status StLocal::ReplayWindow(Timestamp cutoff,
                             std::span<const double> burstiness) {
  live_.clear();
  finished_.clear();
  time_ = cutoff;
  origin_ = cutoff;
  const size_t count = num_streams_ == 0 ? 0 : burstiness.size() / num_streams_;
  for (size_t i = 0; i < count; ++i) {
    STB_RETURN_NOT_OK(ProcessSnapshotImpl(
        burstiness.subspan(i * num_streams_, num_streams_), /*record=*/false));
  }
  return Status::OK();
}

Status StLocal::EvictBefore(Timestamp cutoff) {
  if (cutoff <= origin_) return Status::OK();
  if (cutoff > time_) {
    return Status::OutOfRange("eviction cutoff beyond consumed history");
  }
  if (!options_.track_history) {
    return Status::FailedPrecondition(
        "EvictBefore(cutoff) replays the burstiness history; construct the "
        "miner with options.track_history (or supply rebased values)");
  }
  // Move the history aside so the replay (which records nothing) cannot
  // touch it, then keep exactly the retained suffix as the new history.
  std::vector<double> history = std::move(history_);
  history_.clear();
  history.erase(history.begin(),
                history.begin() + static_cast<ptrdiff_t>(
                                      (cutoff - origin_) * num_streams_));
  const Status replayed = ReplayWindow(cutoff, history);
  history_ = std::move(history);
  return replayed;
}

Status StLocal::EvictBefore(Timestamp cutoff,
                            std::span<const double> rebased) {
  if (cutoff < origin_) {
    return Status::InvalidArgument(
        "rebase cutoff precedes the retained window");
  }
  if (cutoff > time_) {
    return Status::OutOfRange("eviction cutoff beyond consumed history");
  }
  if (rebased.size() !=
      static_cast<size_t>(time_ - cutoff) * num_streams_) {
    return Status::InvalidArgument(
        "rebased burstiness does not cover the retained window");
  }
  STB_RETURN_NOT_OK(ReplayWindow(cutoff, rebased));
  if (options_.track_history) {
    history_.assign(rebased.begin(), rebased.end());
  }
  return Status::OK();
}

std::vector<SpatiotemporalWindow> StLocal::Finish() {
  for (const auto& [streams, seq] : live_) Retire(streams, seq);
  live_.clear();
  std::vector<SpatiotemporalWindow> out = finished_;
  std::sort(out.begin(), out.end(),
            [](const SpatiotemporalWindow& a, const SpatiotemporalWindow& b) {
              return a.score > b.score;
            });
  return out;
}

size_t StLocal::num_open_windows() const {
  size_t total = 0;
  for (const auto& [key, seq] : live_) total += seq.segments.num_candidates();
  return total;
}

namespace {

// The miner owns the raw history itself and rebases its inner StLocal with
// recomputed burstiness, so the inner history tracking would only duplicate
// O(n) memory per snapshot (the header documents the flag as ignored here).
StLocalOptions WithoutHistoryTracking(StLocalOptions options) {
  options.track_history = false;
  return options;
}

}  // namespace

OnlineRegionalMiner::OnlineRegionalMiner(std::vector<Point2D> positions,
                                         const ExpectedModelFactory& model_factory,
                                         StLocalOptions options,
                                         const SpatialBinning* shared_binning)
    : model_factory_(model_factory),
      miner_(std::move(positions), WithoutHistoryTracking(options),
             shared_binning) {
  models_.reserve(miner_.num_streams());
  for (size_t s = 0; s < miner_.num_streams(); ++s) {
    models_.push_back(model_factory());
  }
  burstiness_.resize(models_.size());
}

Status OnlineRegionalMiner::Push(std::span<const double> frequencies) {
  if (frequencies.size() != models_.size()) {
    return Status::InvalidArgument("snapshot size does not match stream count");
  }
  raw_.insert(raw_.end(), frequencies.begin(), frequencies.end());
  for (size_t s = 0; s < models_.size(); ++s) {
    const double y = frequencies[s];
    burstiness_[s] = models_[s]->HasHistory() ? y - models_[s]->Expected() : 0.0;
    models_[s]->Observe(y);
  }
  return miner_.ProcessSnapshot(burstiness_);
}

Status OnlineRegionalMiner::EvictBefore(Timestamp cutoff) {
  const size_t n = models_.size();
  if (cutoff <= origin_) return Status::OK();
  if (cutoff > current_time()) {
    return Status::OutOfRange("eviction cutoff beyond consumed history");
  }
  raw_.erase(raw_.begin(),
             raw_.begin() + static_cast<ptrdiff_t>(
                                static_cast<size_t>(cutoff - origin_) * n));
  origin_ = cutoff;

  // Rebase the causal baselines: fresh models re-observe the retained raw
  // frequencies in order, and every retained snapshot's burstiness is
  // recomputed against them — exactly the values a batch mine over the
  // windowed series derives. The replay below then rebuilds the per-region
  // sequences from those values.
  for (size_t s = 0; s < n; ++s) models_[s] = model_factory_();
  std::vector<double> rebased(raw_.size());
  const size_t window = n == 0 ? 0 : raw_.size() / n;
  for (size_t t = 0; t < window; ++t) {
    for (size_t s = 0; s < n; ++s) {
      const double y = raw_[t * n + s];
      rebased[t * n + s] =
          models_[s]->HasHistory() ? y - models_[s]->Expected() : 0.0;
      models_[s]->Observe(y);
    }
  }
  return miner_.EvictBefore(cutoff, rebased);
}

Status OnlineRegionalMiner::PushFromIndex(const FrequencyIndex& index,
                                          TermId term) {
  if (index.num_streams() != models_.size()) {
    return Status::InvalidArgument("index stream count does not match miner");
  }
  if (current_time() >= index.timeline_length()) {
    return Status::FailedPrecondition(
        "online miner is already caught up with the index");
  }
  if (current_time() < index.window_start()) {
    // SnapshotColumn would silently return zeros for an evicted timestamp;
    // attach watchlists before the index evicts past them.
    return Status::FailedPrecondition(
        "index evicted the timestamp the miner needs next");
  }
  return Push(index.SnapshotColumn(term, current_time()));
}

StatusOr<std::vector<SpatiotemporalWindow>> MineRegionalPatterns(
    const TermSeries& series, const std::vector<Point2D>& positions,
    const ExpectedModelFactory& model_factory, const StLocalOptions& options,
    const SpatialBinning* shared_binning, RegionalMiningScratch* scratch) {
  if (series.num_streams() != positions.size()) {
    return Status::InvalidArgument("series/positions stream count mismatch");
  }
  const size_t n = series.num_streams();
  const size_t timeline = static_cast<size_t>(series.timeline_length());

  // Burstiness for the whole term, laid out time-major (snapshot t at
  // [t*n, (t+1)*n)): each stream's causal model walks its row through a
  // zero-copy span, and each snapshot is then a contiguous span — no
  // per-snapshot strided column gather, no per-push allocation. Values are
  // identical to pushing columns through OnlineRegionalMiner (same models,
  // same observation order per stream).
  //
  // With a scratch, the models come from its arena — Reset() between terms
  // stands in for fresh construction (the ExpectedFrequencyModel contract)
  // — and the buffer is recycled; every element is overwritten below, so
  // no clear is needed. Without one, locals keep the call self-contained.
  std::vector<double> local_burstiness;
  std::vector<double>& burstiness =
      scratch != nullptr ? scratch->burstiness : local_burstiness;
  burstiness.resize(n * timeline);
  for (StreamId s = 0; s < n; ++s) {
    std::unique_ptr<ExpectedFrequencyModel> local_model;
    ExpectedFrequencyModel* model;
    if (scratch != nullptr) {
      if (s < scratch->models.size()) {
        scratch->models[s]->Reset();
      } else {
        scratch->models.push_back(model_factory());
      }
      model = scratch->models[s].get();
    } else {
      local_model = model_factory();
      model = local_model.get();
    }
    const std::span<const double> row = series.StreamRow(s);
    for (size_t t = 0; t < timeline; ++t) {
      const double y = row[t];
      burstiness[t * n + s] =
          model->HasHistory() ? y - model->Expected() : 0.0;
      model->Observe(y);
    }
  }

  // Resolve the binning here (caller's, or one build for this call) so the
  // per-term StLocal never copies the positions vector.
  std::optional<SpatialBinning> own_binning;
  const SpatialBinning* binning = shared_binning;
  if (binning == nullptr) {
    STB_ASSIGN_OR_RETURN(own_binning,
                         SpatialBinning::Create(positions, options.rbursty.rect));
    binning = &*own_binning;
  }

  StLocal miner(n, options, *binning);
  for (size_t t = 0; t < timeline; ++t) {
    STB_RETURN_NOT_OK(miner.ProcessSnapshot(
        std::span<const double>(burstiness.data() + t * n, n)));
  }
  return miner.Finish();
}

}  // namespace stburst
