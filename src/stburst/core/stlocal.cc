#include "stburst/core/stlocal.h"

#include <algorithm>
#include <utility>

#include "stburst/common/logging.h"

namespace stburst {

StLocal::StLocal(std::vector<Point2D> positions, StLocalOptions options)
    : positions_(std::move(positions)), options_(options) {}

Status StLocal::ProcessSnapshot(const std::vector<double>& burstiness) {
  if (burstiness.size() != positions_.size()) {
    return Status::InvalidArgument("burstiness size does not match stream count");
  }

  // Line 6: bursty rectangles of this snapshot.
  STB_ASSIGN_OR_RETURN(std::vector<BurstyRectangle> rects,
                       RBursty(positions_, burstiness, options_.rbursty));

  // Line 7: open a sequence for every newly seen region.
  for (BurstyRectangle& r : rects) {
    auto it = live_.find(r.streams);
    if (it == live_.end()) {
      Sequence seq;
      seq.rect = r.rect;
      seq.streams = r.streams;
      seq.born = time_;
      live_.emplace(std::move(r.streams), std::move(seq));
    }
  }

  // Lines 8-12: extend every live sequence with this snapshot's r-score of
  // its region, update its maximal windows, retire on negative total.
  for (auto it = live_.begin(); it != live_.end();) {
    Sequence& seq = it->second;
    double r_score = 0.0;
    for (StreamId s : seq.streams) r_score += burstiness[s];
    seq.segments.Add(r_score);
    if (seq.segments.total() < 0.0) {
      Retire(seq);
      it = live_.erase(it);
    } else {
      ++it;
    }
  }

  ++time_;
  return Status::OK();
}

void StLocal::Retire(const Sequence& seq) {
  for (const Segment& seg : seq.segments.CurrentSegments()) {
    if (seg.score <= options_.min_window_score) continue;
    SpatiotemporalWindow w;
    w.region = seq.rect;
    w.streams = seq.streams;
    w.timeframe = Interval{seq.born + static_cast<Timestamp>(seg.start),
                           seq.born + static_cast<Timestamp>(seg.end)};
    w.score = seg.score;
    finished_.push_back(std::move(w));
  }
}

std::vector<SpatiotemporalWindow> StLocal::Finish() {
  for (const auto& [key, seq] : live_) Retire(seq);
  live_.clear();
  std::vector<SpatiotemporalWindow> out = finished_;
  std::sort(out.begin(), out.end(),
            [](const SpatiotemporalWindow& a, const SpatiotemporalWindow& b) {
              return a.score > b.score;
            });
  return out;
}

size_t StLocal::num_open_windows() const {
  size_t total = 0;
  for (const auto& [key, seq] : live_) total += seq.segments.num_candidates();
  return total;
}

OnlineRegionalMiner::OnlineRegionalMiner(std::vector<Point2D> positions,
                                         const ExpectedModelFactory& model_factory,
                                         StLocalOptions options)
    : miner_(std::move(positions), options) {
  models_.reserve(miner_.num_streams());
  for (size_t s = 0; s < miner_.num_streams(); ++s) {
    models_.push_back(model_factory());
  }
  burstiness_.resize(models_.size());
}

Status OnlineRegionalMiner::Push(std::span<const double> frequencies) {
  if (frequencies.size() != models_.size()) {
    return Status::InvalidArgument("snapshot size does not match stream count");
  }
  for (size_t s = 0; s < models_.size(); ++s) {
    const double y = frequencies[s];
    burstiness_[s] = models_[s]->HasHistory() ? y - models_[s]->Expected() : 0.0;
    models_[s]->Observe(y);
  }
  return miner_.ProcessSnapshot(burstiness_);
}

Status OnlineRegionalMiner::PushFromIndex(const FrequencyIndex& index,
                                          TermId term) {
  if (index.num_streams() != models_.size()) {
    return Status::InvalidArgument("index stream count does not match miner");
  }
  if (current_time() >= index.timeline_length()) {
    return Status::FailedPrecondition(
        "online miner is already caught up with the index");
  }
  if (current_time() < index.window_start()) {
    // SnapshotColumn would silently return zeros for an evicted timestamp;
    // attach watchlists before the index evicts past them.
    return Status::FailedPrecondition(
        "index evicted the timestamp the miner needs next");
  }
  return Push(index.SnapshotColumn(term, current_time()));
}

StatusOr<std::vector<SpatiotemporalWindow>> MineRegionalPatterns(
    const TermSeries& series, const std::vector<Point2D>& positions,
    const ExpectedModelFactory& model_factory, const StLocalOptions& options) {
  if (series.num_streams() != positions.size()) {
    return Status::InvalidArgument("series/positions stream count mismatch");
  }
  OnlineRegionalMiner miner(positions, model_factory, options);
  std::vector<double> column(series.num_streams());
  for (Timestamp t = 0; t < series.timeline_length(); ++t) {
    for (StreamId s = 0; s < series.num_streams(); ++s) {
      column[s] = series.at(s, t);
    }
    STB_RETURN_NOT_OK(miner.Push(column));
  }
  return miner.Finish();
}

}  // namespace stburst
