// TopixSimulator — the stand-in for the paper's Topix.com crawl (§6.1).
//
// The real dataset (305,641 articles from 181 countries, Sep-08..Jul-09) is
// not openly available; this simulator regenerates its statistical
// structure: 181 country streams at their real coordinates, a 48-week
// timeline, Zipfian background vocabulary with per-country news volumes,
// and the 18 Major Events of Table 4 injected with tier-dependent spatial
// footprints and Weibull temporal profiles. Every document carries a
// provenance label (which event burst emitted it, if any), which powers the
// simulated annotator used by the precision experiments. See DESIGN.md's
// substitution table for why this preserves the evaluated behaviour.

#ifndef STBURST_GEN_TOPIX_SIM_H_
#define STBURST_GEN_TOPIX_SIM_H_

#include <string>
#include <vector>

#include "stburst/common/statusor.h"
#include "stburst/core/interval.h"
#include "stburst/gen/major_events.h"
#include "stburst/stream/collection.h"
#include "stburst/stream/frequency.h"

namespace stburst {

struct TopixOptions {
  uint64_t seed = 7;
  /// Background (non-event) vocabulary size.
  size_t background_vocab = 1200;
  /// Zipf exponent of the background vocabulary.
  double vocab_zipf = 1.05;
  /// Average background documents per (country, week); per-country volumes
  /// are Zipf-distributed around this (big media markets produce more).
  double mean_docs_per_week = 12.0;
  /// Tokens per background document, uniform in [min, max].
  size_t doc_len_min = 12;
  size_t doc_len_max = 32;
  /// Query-term occurrences inside an event document, uniform in [min, max].
  size_t event_term_min = 2;
  size_t event_term_max = 5;
  /// Ambient (non-event) rate at which event terms show up in background
  /// docs anywhere: expected mentions per (country, week, event).
  double ambient_mention_rate = 0.004;
  /// Query-term occurrences inside a decoy document ("passing mention"),
  /// uniform in [min, max]. Lower than event docs, like real name
  /// collisions in sports pages vs. headline coverage.
  size_t decoy_term_min = 1;
  size_t decoy_term_max = 5;
  /// Project streams with classical MDS (the paper's pipeline); when false,
  /// an equirectangular lon/lat projection is used instead.
  bool use_mds = true;
};

/// Offset added to an event's index to label decoy-burst documents: they
/// mention the query term but are not relevant to the event.
inline constexpr int32_t kDecoyEventBase = 1000;

/// The generated corpus plus its ground truth.
class TopixSimulator {
 public:
  /// Generates the full corpus. Deterministic in options.seed.
  static StatusOr<TopixSimulator> Generate(const TopixOptions& options = {});

  const Collection& collection() const { return collection_; }
  const TopixOptions& options() const { return options_; }
  const std::vector<MajorEvent>& events() const { return MajorEventsList(); }

  /// True iff `doc` was emitted by a relevant burst of event `event_index`
  /// (0-based into events()). The simulated annotator of §6.3.
  bool IsRelevant(DocId doc, size_t event_index) const;

  /// Query term ids of event `event_index` (resolved against the corpus
  /// vocabulary; multi-word queries yield several terms).
  std::vector<TermId> QueryTerms(size_t event_index) const;

  /// Streams affected by the event's relevant bursts (ground truth for the
  /// pattern-shape experiments), sorted.
  std::vector<StreamId> AffectedStreams(size_t event_index) const;

  /// Week range spanned by the event's relevant bursts.
  Interval RelevantTimeframe(size_t event_index) const;

 private:
  TopixSimulator(Collection collection, TopixOptions options,
                 std::vector<std::vector<StreamId>> affected,
                 std::vector<Interval> timeframes);

  Collection collection_;
  TopixOptions options_;
  std::vector<std::vector<StreamId>> affected_;  // per event
  std::vector<Interval> timeframes_;             // per event
};

}  // namespace stburst

#endif  // STBURST_GEN_TOPIX_SIM_H_
