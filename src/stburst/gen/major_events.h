// The Major Events List (paper §6.1, Table 4): 18 real-world events between
// Sep-2008 and Jul-2009, with the queries the paper's annotator chose, plus
// the injection parameters the Topix simulator uses to re-create each
// event's spatiotemporal footprint.
//
// Events fall in the paper's three tiers: (1) global impact (events 1-6),
// (2) reported in a significant number of countries (7-12), (3) localized
// impact (13-18). Each event carries one or more bursts; a burst marked
// `relevant = false` is a decoy — the same query term spiking elsewhere for
// unrelated reasons (name collisions, background chatter) — which is what
// makes the retrieval task non-trivial for the temporal-only TB baseline.

#ifndef STBURST_GEN_MAJOR_EVENTS_H_
#define STBURST_GEN_MAJOR_EVENTS_H_

#include <string_view>
#include <vector>

#include "stburst/stream/types.h"

namespace stburst {

/// One injected burst of an event.
struct EventBurst {
  std::string_view source_country;  // must exist in WorldCountries()
  Timestamp start_week = 0;         // week 0 = Sep-2008
  Timestamp duration_weeks = 4;
  /// Countries within this great-circle radius of the source are affected.
  double footprint_km = 3000.0;
  /// Expected extra event documents per week at the source at the burst
  /// peak; decays with distance and with the Weibull temporal profile.
  double peak_docs = 20.0;
  /// Weibull shape of the temporal profile (>1: rise then decay; larger =
  /// sharper onset).
  double shape = 2.0;
  /// Documents of this burst are relevant to the event (false: decoy).
  bool relevant = true;
};

struct MajorEvent {
  int number = 0;                 // 1-based, Table 4 numbering
  std::string_view query;         // the annotator's search query
  std::string_view description;
  int tier = 1;                   // 1 = global, 2 = multi-country, 3 = localized
  std::vector<EventBurst> bursts;
};

/// The 18 events, in Table 4 order.
const std::vector<MajorEvent>& MajorEventsList();

/// Number of weeks in the simulated timeline (Sep-2008 .. Jul-2009).
inline constexpr Timestamp kTopixWeeks = 48;

}  // namespace stburst

#endif  // STBURST_GEN_MAJOR_EVENTS_H_
