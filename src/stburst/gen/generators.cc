#include "stburst/gen/generators.h"

#include <algorithm>
#include <cmath>

#include "stburst/common/logging.h"

namespace stburst {

namespace {

// Separate RNG streams per purpose so that, e.g., adding terms does not
// perturb the pattern ground truth.
constexpr uint64_t kPositionsSalt = 0x706f736974696f6eULL;
constexpr uint64_t kPatternsSalt = 0x7061747465726e73ULL;
constexpr uint64_t kTermSalt = 0x7465726d64617461ULL;

uint64_t MixSeed(uint64_t seed, uint64_t salt, uint64_t key) {
  uint64_t z = seed ^ salt ^ (key * 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

double InjectedProfile(Timestamp x, double k, double c, double peak) {
  if (x < 0) return 0.0;
  double mode = WeibullMode(k, c);
  // PDF value at the mode; guard the k <= 1 corner (mode at 0, PDF finite
  // only for k == 1) by evaluating slightly inside.
  double at_mode = WeibullPdf(std::max(mode, 1e-9), k, c);
  if (at_mode <= 0.0 || !std::isfinite(at_mode)) return 0.0;
  // Evaluate at x + 1 like the paper (timestamp order 1, 2, ..., |T|).
  return WeibullPdf(static_cast<double>(x) + 1.0, k, c) * peak / at_mode;
}

StatusOr<SyntheticGenerator> SyntheticGenerator::Create(
    GeneratorMode mode, GeneratorOptions options) {
  if (options.timeline <= 0) {
    return Status::InvalidArgument("timeline must be positive");
  }
  if (options.num_streams == 0) {
    return Status::InvalidArgument("need at least one stream");
  }
  if (options.num_terms == 0) {
    return Status::InvalidArgument("need at least one term");
  }
  if (options.span_min <= 0 || options.span_max < options.span_min) {
    return Status::InvalidArgument("invalid pattern span range");
  }
  if (options.streams_min == 0 || options.streams_max < options.streams_min) {
    return Status::InvalidArgument("invalid pattern stream-count range");
  }
  if (options.peak_min <= 0.0 || options.peak_max < options.peak_min) {
    return Status::InvalidArgument("invalid peak range");
  }
  if (options.shape_min <= 1.0 || options.shape_max < options.shape_min) {
    return Status::InvalidArgument("shape range must lie above 1");
  }
  if (options.background_mean <= 0.0) {
    return Status::InvalidArgument("background mean must be positive");
  }
  SyntheticGenerator gen(mode, options);
  gen.GeneratePatterns();
  return gen;
}

SyntheticGenerator::SyntheticGenerator(GeneratorMode mode,
                                       GeneratorOptions options)
    : mode_(mode), options_(options) {
  Rng rng(MixSeed(options_.seed, kPositionsSalt, 0));
  positions_.resize(options_.num_streams);
  for (Point2D& p : positions_) {
    p.x = rng.Uniform(0.0, options_.map_size);
    p.y = rng.Uniform(0.0, options_.map_size);
  }
}

std::vector<StreamId> SyntheticGenerator::SampleDistStreams(size_t count,
                                                            Rng* rng) const {
  const size_t n = options_.num_streams;
  count = std::min(count, n);
  // Seed stream chosen uniformly; the rest join weighted by distance decay.
  StreamId seed = static_cast<StreamId>(rng->NextUint64(n));
  std::vector<StreamId> chosen{seed};
  if (count == 1) return chosen;

  std::vector<double> weight(n);
  std::vector<bool> taken(n, false);
  taken[seed] = true;
  double total = 0.0;
  for (size_t s = 0; s < n; ++s) {
    if (taken[s]) continue;
    double d = EuclideanDistance(positions_[seed], positions_[s]);
    weight[s] = std::exp(-d / options_.locality_scale);
    total += weight[s];
  }
  while (chosen.size() < count && total > 1e-300) {
    double u = rng->NextDouble() * total;
    double acc = 0.0;
    size_t pick = n;
    for (size_t s = 0; s < n; ++s) {
      if (taken[s]) continue;
      acc += weight[s];
      if (acc >= u) {
        pick = s;
        break;
      }
    }
    if (pick == n) {  // numeric fallout: take the last untaken stream
      for (size_t s = n; s > 0; --s) {
        if (!taken[s - 1]) {
          pick = s - 1;
          break;
        }
      }
    }
    taken[pick] = true;
    total -= weight[pick];
    weight[pick] = 0.0;
    chosen.push_back(static_cast<StreamId>(pick));
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

std::vector<StreamId> SyntheticGenerator::SampleRandStreams(size_t count,
                                                            Rng* rng) const {
  const size_t n = options_.num_streams;
  count = std::min(count, n);
  std::vector<size_t> idx = rng->SampleWithoutReplacement(n, count);
  std::vector<StreamId> out(idx.begin(), idx.end());
  std::sort(out.begin(), out.end());
  return out;
}

void SyntheticGenerator::GeneratePatterns() {
  Rng rng(MixSeed(options_.seed, kPatternsSalt, 0));
  patterns_.reserve(options_.num_patterns);
  patterns_by_term_.assign(options_.num_terms, {});

  for (size_t p = 0; p < options_.num_patterns; ++p) {
    InjectedPattern pattern;
    pattern.term = static_cast<TermId>(rng.NextUint64(options_.num_terms));

    Timestamp span = static_cast<Timestamp>(
        rng.UniformInt(options_.span_min, options_.span_max));
    span = std::min(span, options_.timeline);
    Timestamp latest_start = options_.timeline - span;
    Timestamp start =
        static_cast<Timestamp>(rng.UniformInt(0, latest_start));
    pattern.timeframe = Interval{start, start + span - 1};

    size_t count = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(options_.streams_min),
                       static_cast<int64_t>(options_.streams_max)));
    pattern.streams = mode_ == GeneratorMode::kDist
                          ? SampleDistStreams(count, &rng)
                          : SampleRandStreams(count, &rng);

    patterns_by_term_[pattern.term].push_back(patterns_.size());
    patterns_.push_back(std::move(pattern));
  }
}

std::vector<size_t> SyntheticGenerator::PatternsForTerm(TermId term) const {
  if (term >= patterns_by_term_.size()) return {};
  return patterns_by_term_[term];
}

TermSeries SyntheticGenerator::GenerateTerm(TermId term) const {
  STB_CHECK(term < options_.num_terms) << "term " << term << " out of range";
  TermSeries series(options_.num_streams, options_.timeline);

  // Background: exponential noise everywhere.
  Rng rng(MixSeed(options_.seed, kTermSalt, term));
  const double lambda = 1.0 / options_.background_mean;
  for (StreamId s = 0; s < options_.num_streams; ++s) {
    for (Timestamp t = 0; t < options_.timeline; ++t) {
      series.set(s, t, rng.Exponential(lambda));
    }
  }

  // Injected patterns: per-stream Weibull profiles with per-stream
  // parameters (paper: "the values for c, k, P are chosen uniformly at
  // random for each stream, to ensure high variability").
  for (size_t pidx : PatternsForTerm(term)) {
    const InjectedPattern& pattern = patterns_[pidx];
    const Timestamp span = pattern.timeframe.length();
    for (StreamId s : pattern.streams) {
      double k = rng.Uniform(options_.shape_min, options_.shape_max);
      // Scale c so the profile's bulk sits inside the pattern span: the
      // Weibull mode c((k-1)/k)^{1/k} lands in [0.2, 0.7] of the span.
      double c = rng.Uniform(0.3, 0.8) * static_cast<double>(span) /
                 std::max(0.2, std::pow((k - 1.0) / k, 1.0 / k));
      double peak = rng.Uniform(options_.peak_min, options_.peak_max);
      for (Timestamp x = 0; x < span; ++x) {
        series.add(s, pattern.timeframe.start + x, InjectedProfile(x, k, c, peak));
      }
    }
  }
  return series;
}

}  // namespace stburst
