// distGen / randGen — synthetic spatiotemporal data generators (paper §B).
//
// Background frequencies are sampled per (stream, timestamp) from an
// exponential distribution (which the paper verified fits the Topix data);
// injected patterns add a Weibull-shaped frequency profile (Eq. 12) whose
// shape k, scale c, and peak P are re-sampled per stream so the same event
// looks different at every affected location.
//
// The two modes differ only in how a pattern's stream set is chosen:
//  - distGen (realistic): a seed stream is drawn uniformly; every additional
//    stream joins with probability decaying in its distance from the seed,
//    giving the spatial locality of real events.
//  - randGen: the stream count is drawn uniformly and the streams sampled
//    uniformly at random — no spatial structure.
//
// Generation is lazy and deterministic: GenerateTerm(t) materializes only
// term t's n x L matrix, from an RNG stream keyed by (seed, t), so huge
// corpora (Figure 8 sweeps up to 128k streams) never exist in memory at
// once.

#ifndef STBURST_GEN_GENERATORS_H_
#define STBURST_GEN_GENERATORS_H_

#include <vector>

#include "stburst/common/random.h"
#include "stburst/common/statusor.h"
#include "stburst/core/interval.h"
#include "stburst/geo/point.h"
#include "stburst/stream/frequency.h"
#include "stburst/stream/types.h"

namespace stburst {

enum class GeneratorMode { kDist, kRand };

struct GeneratorOptions {
  Timestamp timeline = 365;
  size_t num_streams = 200;
  size_t num_terms = 10000;
  size_t num_patterns = 1000;
  uint64_t seed = 42;

  /// Square map side; stream positions are uniform over [0, map_size]^2.
  double map_size = 100.0;
  /// Mean of the exponential background frequency.
  double background_mean = 0.5;
  /// Peak injected frequency P, sampled uniformly per (pattern, stream).
  double peak_min = 8.0;
  double peak_max = 25.0;
  /// Weibull shape k range (k > 1 so the profile rises then decays).
  double shape_min = 1.3;
  double shape_max = 5.0;
  /// Pattern timeframe length range (timestamps).
  Timestamp span_min = 10;
  Timestamp span_max = 45;
  /// Streams per pattern.
  size_t streams_min = 4;
  size_t streams_max = 24;
  /// distGen locality: join probability ∝ exp(−distance / locality_scale).
  /// Small relative to map_size so patterns are clearly regional.
  double locality_scale = 6.0;
};

/// Ground truth for one injected pattern.
struct InjectedPattern {
  TermId term = kInvalidTerm;
  Interval timeframe;
  std::vector<StreamId> streams;  // sorted
};

/// Deterministic lazy generator; see file comment.
class SyntheticGenerator {
 public:
  /// Validates options and precomputes stream positions and the pattern
  /// ground truth (but no frequency data).
  static StatusOr<SyntheticGenerator> Create(GeneratorMode mode,
                                             GeneratorOptions options);

  const GeneratorOptions& options() const { return options_; }
  GeneratorMode mode() const { return mode_; }

  /// Planar stream positions, indexed by StreamId.
  const std::vector<Point2D>& positions() const { return positions_; }

  /// All injected patterns, in generation order.
  const std::vector<InjectedPattern>& patterns() const { return patterns_; }

  /// Indices into patterns() of the patterns injected into `term`.
  std::vector<size_t> PatternsForTerm(TermId term) const;

  /// Materializes term `t`'s full n x L frequency matrix: exponential
  /// background plus this term's injected Weibull bursts.
  TermSeries GenerateTerm(TermId term) const;

 private:
  SyntheticGenerator(GeneratorMode mode, GeneratorOptions options);

  void GeneratePatterns();
  std::vector<StreamId> SampleDistStreams(size_t count, Rng* rng) const;
  std::vector<StreamId> SampleRandStreams(size_t count, Rng* rng) const;

  GeneratorMode mode_;
  GeneratorOptions options_;
  std::vector<Point2D> positions_;
  std::vector<InjectedPattern> patterns_;
  std::vector<std::vector<size_t>> patterns_by_term_;
};

/// The injected Weibull profile: frequency added at offset `x` (0-based
/// timestamps since the pattern's start) for shape k, scale c, peak P. The
/// curve is Eq. 12's PDF rescaled so its maximum over the pattern span
/// equals P (paper: "multiplying all the values in the sequence with v/m").
double InjectedProfile(Timestamp x, double k, double c, double peak);

}  // namespace stburst

#endif  // STBURST_GEN_GENERATORS_H_
