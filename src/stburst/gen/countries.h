// The 181-country source list for the simulated Topix corpus (paper §6.1:
// "local news sources from 181 different countries"). Coordinates are
// approximate capital-city locations, adequate for pair-wise distance
// computation and MDS projection.

#ifndef STBURST_GEN_COUNTRIES_H_
#define STBURST_GEN_COUNTRIES_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "stburst/geo/point.h"

namespace stburst {

struct Country {
  std::string_view name;
  GeoPoint location;
};

/// The full 181-entry table, in a fixed order (index = StreamId in the
/// simulated collection).
const std::vector<Country>& WorldCountries();

/// Index of a country by exact name; SIZE_MAX if absent.
size_t CountryIndex(std::string_view name);

}  // namespace stburst

#endif  // STBURST_GEN_COUNTRIES_H_
