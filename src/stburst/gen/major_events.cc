#include "stburst/gen/major_events.h"

namespace stburst {

const std::vector<MajorEvent>& MajorEventsList() {
  // Week numbering: week 0 starts Sep-01-2008; week 47 ends late Jul-2009.
  // Rough conversions: Nov-2008 ~ wk 9-13, Dec-2008 ~ wk 13-17, Jan-2009 ~
  // wk 17-21, Feb ~ 22-25, Mar ~ 26-30, Apr ~ 30-34, May ~ 35-38, Jun ~
  // 39-43, Jul ~ 43-47.
  static const std::vector<MajorEvent> kEvents = {
      // ---- Tier 1: global impact -------------------------------------
      {1,
       "Obama",
       "Events regarding the actions of B. Obama, the new President of the "
       "USA since January of 2009.",
       1,
       {{"United States", 8, 16, 20000.0, 26.0, 1.6},
        {"United States", 30, 12, 20000.0, 14.0, 1.8}}},
      {2,
       "financial crisis",
       "Events regarding the global financial crisis.",
       1,
       {{"United States", 1, 26, 20000.0, 22.0, 1.5}}},
      {3,
       "terrorists",
       "Events regarding terrorism.",
       1,
       {{"India", 12, 8, 20000.0, 20.0, 3.5},
        {"Pakistan", 26, 10, 12000.0, 10.0, 2.0}}},
      {4,
       "Jackson",
       "American entertainer Michael Jackson passes away.",
       1,
       {{"United States", 42, 5, 20000.0, 30.0, 5.0}}},
      {5,
       "swine",
       "Events regarding the 2009 swine flu pandemic.",
       1,
       {{"Mexico", 33, 14, 20000.0, 24.0, 2.2}}},
      {6,
       "earthquake",
       "Events regarding earthquakes.",
       1,
       // Several genuine but geographically scattered quakes: the behaviour
       // the paper highlights (STLocal latches onto one compact region,
       // STComb unions quake coverage across the globe).
       {{"Costa Rica", 18, 4, 1800.0, 16.0, 4.5},
        {"Italy", 31, 4, 2000.0, 14.0, 4.5},
        {"Indonesia", 40, 3, 2000.0, 12.0, 5.0},
        {"Mexico", 35, 3, 1800.0, 10.0, 5.0},
        {"China", 20, 3, 2000.0, 9.0, 5.0}}},
      // ---- Tier 2: reported in many countries ------------------------
      {7,
       "gaza",
       "Events regarding the Israeli Palestinian conflict in the Gaza "
       "Strip.",
       2,
       {{"Israel", 16, 6, 14000.0, 22.0, 3.0}}},
      {8,
       "ceasefire",
       "Israel announces a unilateral ceasefire in the Gaza War.",
       2,
       {{"Israel", 20, 3, 3500.0, 16.0, 4.5}}},
      {9,
       "Yemenia",
       "Yemenia Flight 626 crashes off the coast of Moroni, Comoros, "
       "killing all but one of the 153 passengers and crew.",
       2,
       {{"Comoros", 43, 3, 3000.0, 14.0, 5.0}}},
      {10,
       "piracy",
       "Events regarding incidents of Piracy off the Somali coast.",
       2,
       {{"Somalia", 10, 6, 3500.0, 12.0, 2.5},
        {"Somalia", 31, 5, 3500.0, 14.0, 3.0}}},
      {11,
       "Air France",
       "Air France Flight 447 from Rio de Janeiro to Paris crashes into "
       "the Atlantic Ocean killing all 228 on board.",
       2,
       {{"France", 39, 4, 4000.0, 18.0, 4.5},
        {"Brazil", 39, 4, 3500.0, 12.0, 4.5}}},
      {12,
       "bush fires",
       "Deadly bush fires in Australia kill 173, injure 500 more, and "
       "leave 7,500 homeless.",
       2,
       {{"Australia", 22, 4, 3000.0, 18.0, 4.0}}},
      // ---- Tier 3: localized impact ----------------------------------
      {13,
       "Nkunda",
       "Congolese rebel leader L. Nkunda is captured by Rwandan forces.",
       3,
       {{"Rwanda", 20, 4, 1400.0, 20.0, 4.5},
        // Decoy: background chatter about the rebel group far from the
        // capture, weeks earlier.
        {"Belgium", 9, 4, 400.0, 9.0, 2.5, false}}},
      {14,
       "Vieira",
       "The President of Guinea-Bissau, J. B. Vieira, is assassinated.",
       3,
       {{"Guinea-Bissau", 26, 4, 2500.0, 20.0, 5.0},
        // Decoy: a namesake footballer in the sports pages.
        {"Brazil", 13, 4, 800.0, 8.0, 2.0, false}}},
      {15,
       "Tsvangirai",
       "M. Tsvangirai is sworn in as the new Prime Minister of Zimbabwe.",
       3,
       {{"Zimbabwe", 23, 4, 1400.0, 20.0, 4.5},
        // Decoy: earlier power-sharing talks coverage from abroad.
        {"United Kingdom", 6, 4, 400.0, 11.0, 2.0, false}}},
      {16,
       "Rajoelina",
       "Andry Rajoelina becomes the new President of Madagascar after a "
       "military coup d'etat.",
       3,
       {{"Madagascar", 27, 4, 1600.0, 20.0, 3.5},
        {"France", 18, 4, 400.0, 11.0, 2.5, false}}},
      {17,
       "Fujimori",
       "Former Peruvian Pres. Fujimori is sentenced to 25 years in prison "
       "for killings and kidnappings by security forces.",
       3,
       {{"Peru", 31, 4, 2500.0, 20.0, 5.0},
        // Decoy: namesake coverage in Japan.
        {"Japan", 14, 4, 700.0, 11.0, 2.0, false}}},
      {18,
       "Zelaya",
       "The Supreme Court of Honduras orders the arrest and exile of "
       "President M. Zelaya.",
       3,
       {{"Honduras", 43, 4, 1800.0, 20.0, 4.5},
        {"Spain", 20, 3, 500.0, 8.0, 2.0, false}}},
  };
  return kEvents;
}

}  // namespace stburst
