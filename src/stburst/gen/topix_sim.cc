#include "stburst/gen/topix_sim.h"

#include <algorithm>
#include <cmath>

#include "stburst/common/logging.h"
#include "stburst/common/random.h"
#include "stburst/common/string_util.h"
#include "stburst/gen/countries.h"
#include "stburst/gen/generators.h"
#include "stburst/geo/haversine.h"
#include "stburst/stream/tokenizer.h"

namespace stburst {

namespace {

// Weekly document counts for one burst at one country: Weibull profile over
// the burst duration, scaled by distance decay from the source.
double BurstRate(const EventBurst& burst, double distance_km, Timestamp week) {
  if (week < burst.start_week ||
      week >= burst.start_week + burst.duration_weeks) {
    return 0.0;
  }
  if (distance_km > burst.footprint_km) return 0.0;
  // Distance decay: the source gets the full rate, the footprint edge ~15%.
  double decay = std::exp(-1.9 * distance_km / burst.footprint_km);
  // Temporal profile: Weibull pdf rescaled to peak 1 over the duration,
  // with the mode placed at ~1/3 of the duration.
  double k = burst.shape;
  double target_mode =
      std::max(0.8, static_cast<double>(burst.duration_weeks) / 3.0);
  double c = target_mode / std::pow((k - 1.0) / k, 1.0 / k);
  double x = static_cast<double>(week - burst.start_week) + 0.5;
  double at_mode = WeibullPdf(std::max(WeibullMode(k, c), 1e-9), k, c);
  double profile = at_mode > 0.0 ? WeibullPdf(x, k, c) / at_mode : 0.0;
  return burst.peak_docs * decay * profile;
}

}  // namespace

TopixSimulator::TopixSimulator(Collection collection, TopixOptions options,
                               std::vector<std::vector<StreamId>> affected,
                               std::vector<Interval> timeframes)
    : collection_(std::move(collection)),
      options_(options),
      affected_(std::move(affected)),
      timeframes_(std::move(timeframes)) {}

StatusOr<TopixSimulator> TopixSimulator::Generate(const TopixOptions& options) {
  if (options.background_vocab == 0) {
    return Status::InvalidArgument("background vocabulary must be non-empty");
  }
  if (options.doc_len_min == 0 || options.doc_len_max < options.doc_len_min) {
    return Status::InvalidArgument("invalid document length range");
  }
  if (options.event_term_min == 0 ||
      options.event_term_max < options.event_term_min) {
    return Status::InvalidArgument("invalid event term count range");
  }

  STB_ASSIGN_OR_RETURN(Collection collection, Collection::Create(kTopixWeeks));

  // Streams: the 181 countries. Positions start as equirectangular lon/lat
  // and are optionally replaced by the MDS embedding (the paper's §6.1).
  const std::vector<Country>& countries = WorldCountries();
  for (const Country& c : countries) {
    collection.AddStream(std::string(c.name), c.location,
                         Point2D{c.location.lon_deg, c.location.lat_deg});
  }
  if (options.use_mds) {
    STB_RETURN_NOT_OK(collection.ProjectStreamsWithMds());
  }

  // Vocabulary: background words first, then the event query terms.
  Vocabulary* vocab = collection.mutable_vocabulary();
  std::vector<TermId> background_terms;
  background_terms.reserve(options.background_vocab);
  for (size_t i = 0; i < options.background_vocab; ++i) {
    background_terms.push_back(vocab->Intern(StringPrintf("bg%04zu", i)));
  }
  Tokenizer tokenizer;
  const std::vector<MajorEvent>& events = MajorEventsList();
  std::vector<std::vector<TermId>> event_terms(events.size());
  for (size_t e = 0; e < events.size(); ++e) {
    event_terms[e] = tokenizer.Tokenize(events[e].query, vocab);
  }

  Rng rng(options.seed);
  ZipfSampler word_sampler(options.background_vocab, options.vocab_zipf);

  // Per-country news volume: Zipf over a shuffled country order so volume
  // does not correlate with table position.
  std::vector<double> volume(countries.size());
  {
    std::vector<size_t> order(countries.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.Shuffle(&order);
    double total = 0.0;
    for (size_t rank = 0; rank < order.size(); ++rank) {
      volume[order[rank]] = 1.0 / std::pow(static_cast<double>(rank + 1), 0.35);
      total += volume[order[rank]];
    }
    double scale =
        options.mean_docs_per_week * static_cast<double>(countries.size()) /
        total;
    for (double& v : volume) v *= scale;
  }

  auto sample_background_tokens = [&](size_t len) {
    std::vector<TermId> tokens;
    tokens.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      tokens.push_back(background_terms[word_sampler.Sample(&rng)]);
    }
    return tokens;
  };

  // Precompute per-event affected streams and relevant timeframes.
  std::vector<std::vector<StreamId>> affected(events.size());
  std::vector<Interval> timeframes(events.size());
  for (size_t e = 0; e < events.size(); ++e) {
    Interval frame;  // invalid until the first relevant burst
    std::vector<StreamId> streams;
    for (const EventBurst& burst : events[e].bursts) {
      if (!burst.relevant) continue;
      size_t src = CountryIndex(burst.source_country);
      STB_CHECK(src != static_cast<size_t>(-1))
          << "unknown source country " << burst.source_country;
      for (StreamId s = 0; s < countries.size(); ++s) {
        double d = HaversineKm(countries[src].location, countries[s].location);
        if (d <= burst.footprint_km) streams.push_back(s);
      }
      Interval span{burst.start_week,
                    std::min<Timestamp>(
                        burst.start_week + burst.duration_weeks - 1,
                        kTopixWeeks - 1)};
      frame = frame.Union(span);
    }
    std::sort(streams.begin(), streams.end());
    streams.erase(std::unique(streams.begin(), streams.end()), streams.end());
    affected[e] = std::move(streams);
    timeframes[e] = frame;
  }

  // Emit documents week by week, country by country.
  for (StreamId s = 0; s < countries.size(); ++s) {
    for (Timestamp week = 0; week < kTopixWeeks; ++week) {
      // Background documents.
      int64_t n_docs = rng.Poisson(volume[s]);
      for (int64_t d = 0; d < n_docs; ++d) {
        size_t len = static_cast<size_t>(
            rng.UniformInt(static_cast<int64_t>(options.doc_len_min),
                           static_cast<int64_t>(options.doc_len_max)));
        STB_RETURN_NOT_OK(
            collection.AddDocument(s, week, sample_background_tokens(len))
                .status());
      }

      // Ambient event-term mentions: one occurrence inside an otherwise
      // background document, not relevant to the event.
      for (size_t e = 0; e < events.size(); ++e) {
        int64_t mentions = rng.Poisson(options.ambient_mention_rate);
        for (int64_t m = 0; m < mentions; ++m) {
          std::vector<TermId> tokens =
              sample_background_tokens(options.doc_len_min);
          for (TermId qt : event_terms[e]) tokens.push_back(qt);
          STB_RETURN_NOT_OK(
              collection.AddDocument(s, week, std::move(tokens)).status());
        }
      }

      // Event documents.
      for (size_t e = 0; e < events.size(); ++e) {
        for (const EventBurst& burst : events[e].bursts) {
          size_t src = CountryIndex(burst.source_country);
          STB_CHECK(src != static_cast<size_t>(-1))
              << "unknown source country " << burst.source_country;
          double d =
              HaversineKm(countries[src].location, countries[s].location);
          double rate = BurstRate(burst, d, week);
          if (rate <= 0.0) continue;
          int64_t n_event_docs = rng.Poisson(rate);
          for (int64_t k = 0; k < n_event_docs; ++k) {
            std::vector<TermId> tokens =
                sample_background_tokens(options.doc_len_min);
            size_t rep_min =
                burst.relevant ? options.event_term_min : options.decoy_term_min;
            size_t rep_max =
                burst.relevant ? options.event_term_max : options.decoy_term_max;
            size_t reps = static_cast<size_t>(
                rng.UniformInt(static_cast<int64_t>(rep_min),
                               static_cast<int64_t>(rep_max)));
            for (size_t r = 0; r < reps; ++r) {
              for (TermId qt : event_terms[e]) tokens.push_back(qt);
            }
            int32_t label = burst.relevant
                                ? static_cast<int32_t>(e)
                                : kDecoyEventBase + static_cast<int32_t>(e);
            STB_RETURN_NOT_OK(
                collection.AddDocument(s, week, std::move(tokens), label)
                    .status());
          }
        }
      }
    }
  }

  return TopixSimulator(std::move(collection), options, std::move(affected),
                        std::move(timeframes));
}

bool TopixSimulator::IsRelevant(DocId doc, size_t event_index) const {
  return collection_.document(doc).event_id == static_cast<int32_t>(event_index);
}

std::vector<TermId> TopixSimulator::QueryTerms(size_t event_index) const {
  STB_CHECK(event_index < events().size()) << "event index out of range";
  Tokenizer tokenizer;
  return tokenizer.TokenizeFrozen(
      std::string(events()[event_index].query), collection_.vocabulary());
}

std::vector<StreamId> TopixSimulator::AffectedStreams(size_t event_index) const {
  STB_CHECK(event_index < affected_.size()) << "event index out of range";
  return affected_[event_index];
}

Interval TopixSimulator::RelevantTimeframe(size_t event_index) const {
  STB_CHECK(event_index < timeframes_.size()) << "event index out of range";
  return timeframes_[event_index];
}

}  // namespace stburst
