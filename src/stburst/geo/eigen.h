// Dense symmetric eigendecomposition (cyclic Jacobi). Substrate for the
// classical-MDS projection of document sources; n is the number of sources
// (hundreds), so the O(n^3) Jacobi sweep cost is negligible.

#ifndef STBURST_GEO_EIGEN_H_
#define STBURST_GEO_EIGEN_H_

#include <cstddef>
#include <vector>

#include "stburst/common/statusor.h"

namespace stburst {

/// Result of a symmetric eigendecomposition: A = V diag(values) V^T with the
/// pairs sorted by descending eigenvalue. `vectors` is row-major n x n;
/// column j (entries vectors[i*n + j]) is the unit eigenvector for values[j].
struct EigenDecomposition {
  std::vector<double> values;
  std::vector<double> vectors;
  size_t n = 0;
};

/// Decomposes the symmetric matrix `a` (row-major n x n). Returns
/// InvalidArgument if the matrix is empty, not n x n, or not symmetric to
/// within `symmetry_tol` (relative to the largest entry).
StatusOr<EigenDecomposition> SymmetricEigen(const std::vector<double>& a,
                                            size_t n,
                                            double symmetry_tol = 1e-8,
                                            int max_sweeps = 64);

}  // namespace stburst

#endif  // STBURST_GEO_EIGEN_H_
