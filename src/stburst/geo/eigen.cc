#include "stburst/geo/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace stburst {

StatusOr<EigenDecomposition> SymmetricEigen(const std::vector<double>& a,
                                            size_t n, double symmetry_tol,
                                            int max_sweeps) {
  if (n == 0) return Status::InvalidArgument("empty matrix");
  if (a.size() != n * n) {
    return Status::InvalidArgument("matrix size does not match n*n");
  }
  double max_abs = 0.0;
  for (double v : a) max_abs = std::max(max_abs, std::abs(v));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (std::abs(a[i * n + j] - a[j * n + i]) >
          symmetry_tol * std::max(1.0, max_abs)) {
        return Status::InvalidArgument("matrix is not symmetric");
      }
    }
  }

  // Working copy; V starts as identity.
  std::vector<double> m = a;
  std::vector<double> v(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  auto off_diag_norm = [&]() {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) s += m[i * n + j] * m[i * n + j];
    }
    return std::sqrt(2.0 * s);
  };

  const double tol = 1e-12 * std::max(1.0, max_abs) * static_cast<double>(n);
  for (int sweep = 0; sweep < max_sweeps && off_diag_norm() > tol; ++sweep) {
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double apq = m[p * n + q];
        if (std::abs(apq) <= tol / static_cast<double>(n)) continue;
        double app = m[p * n + p], aqq = m[q * n + q];
        // Stable rotation angle computation (Golub & Van Loan §8.5).
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0.0 ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;

        for (size_t k = 0; k < n; ++k) {
          double mkp = m[k * n + p], mkq = m[k * n + q];
          m[k * n + p] = c * mkp - s * mkq;
          m[k * n + q] = s * mkp + c * mkq;
        }
        for (size_t k = 0; k < n; ++k) {
          double mpk = m[p * n + k], mqk = m[q * n + k];
          m[p * n + k] = c * mpk - s * mqk;
          m[q * n + k] = s * mpk + c * mqk;
        }
        for (size_t k = 0; k < n; ++k) {
          double vkp = v[k * n + p], vkq = v[k * n + q];
          v[k * n + p] = c * vkp - s * vkq;
          v[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  EigenDecomposition out;
  out.n = n;
  out.values.resize(n);
  for (size_t i = 0; i < n; ++i) out.values[i] = m[i * n + i];

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return out.values[x] > out.values[y]; });

  std::vector<double> sorted_values(n);
  std::vector<double> sorted_vectors(n * n);
  for (size_t j = 0; j < n; ++j) {
    sorted_values[j] = out.values[order[j]];
    for (size_t i = 0; i < n; ++i) {
      sorted_vectors[i * n + j] = v[i * n + order[j]];
    }
  }
  out.values = std::move(sorted_values);
  out.vectors = std::move(sorted_vectors);
  return out;
}

}  // namespace stburst
