#include "stburst/geo/haversine.h"

#include <cmath>

namespace stburst {

namespace {
constexpr double kDegToRad = M_PI / 180.0;
}  // namespace

double HaversineKm(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;

  const double sin_dlat = std::sin(dlat / 2.0);
  const double sin_dlon = std::sin(dlon / 2.0);
  double h = sin_dlat * sin_dlat +
             std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
  h = std::min(1.0, h);  // clamp rounding before asin
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(h));
}

std::vector<double> PairwiseDistanceMatrixKm(const std::vector<GeoPoint>& points) {
  const size_t n = points.size();
  std::vector<double> d(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double dist = HaversineKm(points[i], points[j]);
      d[i * n + j] = dist;
      d[j * n + i] = dist;
    }
  }
  return d;
}

}  // namespace stburst
