// Geographic and planar point types.
//
// The paper's pipeline (§6.1) takes document sources with geographic
// coordinates (GeoPoint, degrees on the sphere), computes pair-wise
// great-circle distances, and projects the sources to the 2-D plane with
// multidimensional scaling (Point2D). All burst mining then happens in the
// plane.

#ifndef STBURST_GEO_POINT_H_
#define STBURST_GEO_POINT_H_

#include <cmath>

namespace stburst {

/// A location on the sphere, in degrees. Latitude in [-90, 90], longitude in
/// [-180, 180].
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend bool operator==(const GeoPoint& a, const GeoPoint& b) {
    return a.lat_deg == b.lat_deg && a.lon_deg == b.lon_deg;
  }
};

/// A point in the plane (the MDS embedding space, or any user-supplied map).
struct Point2D {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point2D& a, const Point2D& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Euclidean distance between planar points.
inline double EuclideanDistance(const Point2D& a, const Point2D& b) {
  double dx = a.x - b.x, dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace stburst

#endif  // STBURST_GEO_POINT_H_
