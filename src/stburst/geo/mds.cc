#include "stburst/geo/mds.h"

#include <algorithm>
#include <cmath>

#include "stburst/geo/eigen.h"
#include "stburst/geo/haversine.h"

namespace stburst {

StatusOr<std::vector<Point2D>> ClassicalMds(const std::vector<double>& distances,
                                            size_t n) {
  if (n == 0) return Status::InvalidArgument("no objects to embed");
  if (distances.size() != n * n) {
    return Status::InvalidArgument("distance matrix size does not match n*n");
  }
  for (size_t i = 0; i < n; ++i) {
    if (distances[i * n + i] != 0.0) {
      return Status::InvalidArgument("distance matrix diagonal must be zero");
    }
    for (size_t j = 0; j < n; ++j) {
      if (distances[i * n + j] < 0.0) {
        return Status::InvalidArgument("distances must be non-negative");
      }
    }
  }
  if (n == 1) return std::vector<Point2D>{Point2D{0.0, 0.0}};

  // Double-centered Gram matrix B = -1/2 J D^2 J.
  std::vector<double> sq(n * n);
  for (size_t i = 0; i < n * n; ++i) sq[i] = distances[i] * distances[i];

  std::vector<double> row_mean(n, 0.0);
  double grand_mean = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) row_mean[i] += sq[i * n + j];
    row_mean[i] /= static_cast<double>(n);
    grand_mean += row_mean[i];
  }
  grand_mean /= static_cast<double>(n);

  std::vector<double> b(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      b[i * n + j] =
          -0.5 * (sq[i * n + j] - row_mean[i] - row_mean[j] + grand_mean);
    }
  }
  // Symmetrize exactly: double centering is symmetric in infinite precision
  // but the row/column means accumulate differently in floating point.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double avg = 0.5 * (b[i * n + j] + b[j * n + i]);
      b[i * n + j] = avg;
      b[j * n + i] = avg;
    }
  }

  STB_ASSIGN_OR_RETURN(EigenDecomposition eig, SymmetricEigen(b, n));

  std::vector<Point2D> out(n);
  const double l0 = std::max(0.0, eig.values[0]);
  const double l1 = n >= 2 ? std::max(0.0, eig.values[1]) : 0.0;
  const double s0 = std::sqrt(l0);
  const double s1 = std::sqrt(l1);
  for (size_t i = 0; i < n; ++i) {
    out[i].x = s0 * eig.vectors[i * n + 0];
    out[i].y = n >= 2 ? s1 * eig.vectors[i * n + 1] : 0.0;
  }
  return out;
}

StatusOr<std::vector<Point2D>> ProjectGeoPoints(const std::vector<GeoPoint>& points) {
  return ClassicalMds(PairwiseDistanceMatrixKm(points), points.size());
}

double MdsStress(const std::vector<double>& distances,
                 const std::vector<Point2D>& embedding) {
  const size_t n = embedding.size();
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double target = distances[i * n + j];
      double actual = EuclideanDistance(embedding[i], embedding[j]);
      num += (target - actual) * (target - actual);
      den += target * target;
    }
  }
  if (den == 0.0) return 0.0;
  return std::sqrt(num / den);
}

}  // namespace stburst
