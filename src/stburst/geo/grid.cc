#include "stburst/geo/grid.h"

#include <algorithm>
#include <cmath>

#include "stburst/common/logging.h"

namespace stburst {

StatusOr<UniformGrid> UniformGrid::Create(const Rect& bounds, size_t cols,
                                          size_t rows) {
  if (bounds.empty()) return Status::InvalidArgument("grid bounds are empty");
  if (cols == 0 || rows == 0) {
    return Status::InvalidArgument("grid needs at least one column and row");
  }
  if (bounds.width() <= 0.0 || bounds.height() <= 0.0) {
    return Status::InvalidArgument("grid bounds must have positive area");
  }
  return UniformGrid(bounds, cols, rows);
}

UniformGrid::UniformGrid(const Rect& bounds, size_t cols, size_t rows)
    : bounds_(bounds),
      cols_(cols),
      rows_(rows),
      cell_w_(bounds.width() / static_cast<double>(cols)),
      cell_h_(bounds.height() / static_cast<double>(rows)) {}

void UniformGrid::CellCoords(const Point2D& p, size_t* col, size_t* row) const {
  auto clamp_idx = [](double offset, double width, size_t count) {
    int64_t idx = static_cast<int64_t>(std::floor(offset / width));
    idx = std::clamp<int64_t>(idx, 0, static_cast<int64_t>(count) - 1);
    return static_cast<size_t>(idx);
  };
  *col = clamp_idx(p.x - bounds_.min_x(), cell_w_, cols_);
  *row = clamp_idx(p.y - bounds_.min_y(), cell_h_, rows_);
}

size_t UniformGrid::CellIndex(const Point2D& p) const {
  size_t col, row;
  CellCoords(p, &col, &row);
  return row * cols_ + col;
}

Rect UniformGrid::CellRect(size_t col, size_t row) const {
  STB_DCHECK(col < cols_ && row < rows_);
  double x0 = bounds_.min_x() + cell_w_ * static_cast<double>(col);
  double y0 = bounds_.min_y() + cell_h_ * static_cast<double>(row);
  return Rect(x0, y0, x0 + cell_w_, y0 + cell_h_);
}

Point2D UniformGrid::CellCenter(size_t col, size_t row) const {
  Rect r = CellRect(col, row);
  return Point2D{(r.min_x() + r.max_x()) / 2.0, (r.min_y() + r.max_y()) / 2.0};
}

std::vector<double> UniformGrid::AggregateWeights(
    const std::vector<Point2D>& points, const std::vector<double>& weights) const {
  STB_CHECK(points.size() == weights.size())
      << "points/weights length mismatch: " << points.size() << " vs "
      << weights.size();
  std::vector<double> cells(num_cells(), 0.0);
  for (size_t i = 0; i < points.size(); ++i) {
    cells[CellIndex(points[i])] += weights[i];
  }
  return cells;
}

}  // namespace stburst
