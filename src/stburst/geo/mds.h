// Classical multidimensional scaling (Torgerson). The paper (§6.1) projects
// document sources onto the 2-D plane from their pair-wise geographical
// distances; this module performs that projection.

#ifndef STBURST_GEO_MDS_H_
#define STBURST_GEO_MDS_H_

#include <cstddef>
#include <vector>

#include "stburst/common/statusor.h"
#include "stburst/geo/point.h"

namespace stburst {

/// Embeds n objects in the plane from their symmetric n x n distance matrix
/// (row-major) so that Euclidean distances approximate the inputs:
///   B = -1/2 J D^2 J (double centering), X = V_2 Lambda_2^{1/2}.
/// Returns InvalidArgument on malformed input (asymmetry, negative
/// distances, nonzero diagonal).
StatusOr<std::vector<Point2D>> ClassicalMds(const std::vector<double>& distances,
                                            size_t n);

/// Convenience: haversine distances + ClassicalMds. This is the exact
/// pipeline the paper applies to the Topix sources.
StatusOr<std::vector<Point2D>> ProjectGeoPoints(const std::vector<GeoPoint>& points);

/// Kruskal stress-1 of an embedding against the target distances: sqrt of
/// (sum of squared residuals / sum of squared distances). 0 is a perfect fit.
double MdsStress(const std::vector<double>& distances,
                 const std::vector<Point2D>& embedding);

}  // namespace stburst

#endif  // STBURST_GEO_MDS_H_
