// Uniform grid partitioning of the map. The paper (§2) notes that streams
// can be grouped by partitioning the map with a grid, each cell acting as an
// aggregate stream; the discrepancy module also uses grids as its
// approximate mode for very large stream counts.

#ifndef STBURST_GEO_GRID_H_
#define STBURST_GEO_GRID_H_

#include <cstddef>
#include <vector>

#include "stburst/common/statusor.h"
#include "stburst/geo/point.h"
#include "stburst/geo/rect.h"

namespace stburst {

/// A fixed cols x rows grid over a bounding rectangle. Cells are addressed
/// by (col, row) or by flat index row*cols + col.
class UniformGrid {
 public:
  /// Builds a grid over `bounds` (must be non-empty with positive area).
  static StatusOr<UniformGrid> Create(const Rect& bounds, size_t cols,
                                      size_t rows);

  size_t cols() const { return cols_; }
  size_t rows() const { return rows_; }
  size_t num_cells() const { return cols_ * rows_; }
  const Rect& bounds() const { return bounds_; }

  /// Flat index of the cell containing `p`. Points outside the bounds clamp
  /// to the nearest edge cell, so every point maps somewhere.
  size_t CellIndex(const Point2D& p) const;

  /// Column/row of the cell containing `p` (clamped like CellIndex).
  void CellCoords(const Point2D& p, size_t* col, size_t* row) const;

  /// Geometry of cell (col, row).
  Rect CellRect(size_t col, size_t row) const;

  /// Centroid of cell (col, row).
  Point2D CellCenter(size_t col, size_t row) const;

  /// Sum of `weights[i]` per cell for point set `points` (same length).
  std::vector<double> AggregateWeights(const std::vector<Point2D>& points,
                                       const std::vector<double>& weights) const;

 private:
  UniformGrid(const Rect& bounds, size_t cols, size_t rows);

  Rect bounds_;
  size_t cols_;
  size_t rows_;
  double cell_w_;
  double cell_h_;
};

}  // namespace stburst

#endif  // STBURST_GEO_GRID_H_
