// Axis-oriented rectangles on the 2-D map. STLocal's regional patterns
// (paper §4) are restricted to this shape to keep pattern mining polynomial.

#ifndef STBURST_GEO_RECT_H_
#define STBURST_GEO_RECT_H_

#include <string>
#include <vector>

#include "stburst/geo/point.h"

namespace stburst {

/// A closed axis-oriented rectangle [min_x, max_x] x [min_y, max_y].
/// A default-constructed Rect is "empty": it contains no point and unions as
/// the identity.
class Rect {
 public:
  /// Constructs the empty rectangle.
  Rect();

  /// Constructs from corner coordinates; swaps as needed so min <= max.
  Rect(double min_x, double min_y, double max_x, double max_y);

  /// The minimum bounding rectangle of a point set; empty for no points.
  static Rect BoundingBox(const std::vector<Point2D>& points);

  bool empty() const { return empty_; }

  double min_x() const { return min_x_; }
  double min_y() const { return min_y_; }
  double max_x() const { return max_x_; }
  double max_y() const { return max_y_; }

  /// Width/height; 0 for the empty rectangle.
  double width() const { return empty_ ? 0.0 : max_x_ - min_x_; }
  double height() const { return empty_ ? 0.0 : max_y_ - min_y_; }
  double Area() const { return width() * height(); }

  /// True iff `p` lies inside (boundary inclusive).
  bool Contains(const Point2D& p) const;

  /// True iff `other` lies fully inside this rectangle. The empty rectangle
  /// is contained in everything.
  bool Contains(const Rect& other) const;

  /// True iff the closed rectangles share at least one point.
  bool Intersects(const Rect& other) const;

  /// Grows the rectangle to cover `p`.
  void ExpandToInclude(const Point2D& p);

  /// Grows the rectangle to cover `other`.
  void ExpandToInclude(const Rect& other);

  /// "[x0,y0 .. x1,y1]" or "[empty]".
  std::string ToString() const;

  friend bool operator==(const Rect& a, const Rect& b) {
    if (a.empty_ || b.empty_) return a.empty_ == b.empty_;
    return a.min_x_ == b.min_x_ && a.min_y_ == b.min_y_ &&
           a.max_x_ == b.max_x_ && a.max_y_ == b.max_y_;
  }
  friend bool operator!=(const Rect& a, const Rect& b) { return !(a == b); }

 private:
  bool empty_;
  double min_x_, min_y_, max_x_, max_y_;
};

}  // namespace stburst

#endif  // STBURST_GEO_RECT_H_
