#include "stburst/geo/rect.h"

#include <algorithm>
#include <utility>

#include "stburst/common/string_util.h"

namespace stburst {

Rect::Rect() : empty_(true), min_x_(0), min_y_(0), max_x_(0), max_y_(0) {}

Rect::Rect(double min_x, double min_y, double max_x, double max_y)
    : empty_(false), min_x_(min_x), min_y_(min_y), max_x_(max_x), max_y_(max_y) {
  if (min_x_ > max_x_) std::swap(min_x_, max_x_);
  if (min_y_ > max_y_) std::swap(min_y_, max_y_);
}

Rect Rect::BoundingBox(const std::vector<Point2D>& points) {
  Rect box;
  for (const Point2D& p : points) box.ExpandToInclude(p);
  return box;
}

bool Rect::Contains(const Point2D& p) const {
  if (empty_) return false;
  return p.x >= min_x_ && p.x <= max_x_ && p.y >= min_y_ && p.y <= max_y_;
}

bool Rect::Contains(const Rect& other) const {
  if (other.empty_) return true;
  if (empty_) return false;
  return other.min_x_ >= min_x_ && other.max_x_ <= max_x_ &&
         other.min_y_ >= min_y_ && other.max_y_ <= max_y_;
}

bool Rect::Intersects(const Rect& other) const {
  if (empty_ || other.empty_) return false;
  return min_x_ <= other.max_x_ && other.min_x_ <= max_x_ &&
         min_y_ <= other.max_y_ && other.min_y_ <= max_y_;
}

void Rect::ExpandToInclude(const Point2D& p) {
  if (empty_) {
    empty_ = false;
    min_x_ = max_x_ = p.x;
    min_y_ = max_y_ = p.y;
    return;
  }
  min_x_ = std::min(min_x_, p.x);
  max_x_ = std::max(max_x_, p.x);
  min_y_ = std::min(min_y_, p.y);
  max_y_ = std::max(max_y_, p.y);
}

void Rect::ExpandToInclude(const Rect& other) {
  if (other.empty_) return;
  ExpandToInclude(Point2D{other.min_x_, other.min_y_});
  ExpandToInclude(Point2D{other.max_x_, other.max_y_});
}

std::string Rect::ToString() const {
  if (empty_) return "[empty]";
  return StringPrintf("[%.3f,%.3f .. %.3f,%.3f]", min_x_, min_y_, max_x_, max_y_);
}

}  // namespace stburst
