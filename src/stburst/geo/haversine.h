// Great-circle distances. The paper (§6.1) projects sources using "pair-wise
// geographical distances"; we use the haversine formula on a spherical Earth,
// which is within 0.5% of the ellipsoidal (Vincenty) result and has no
// convergence failures near antipodes.

#ifndef STBURST_GEO_HAVERSINE_H_
#define STBURST_GEO_HAVERSINE_H_

#include <vector>

#include "stburst/geo/point.h"

namespace stburst {

/// Mean Earth radius in kilometers (IUGG).
inline constexpr double kEarthRadiusKm = 6371.0088;

/// Great-circle distance between two geographic points, in kilometers.
double HaversineKm(const GeoPoint& a, const GeoPoint& b);

/// Full symmetric pair-wise distance matrix, row-major n x n, in kilometers.
std::vector<double> PairwiseDistanceMatrixKm(const std::vector<GeoPoint>& points);

}  // namespace stburst

#endif  // STBURST_GEO_HAVERSINE_H_
