#include "stburst/eval/pattern_match.h"

#include "stburst/eval/metrics.h"

namespace stburst {

PatternRetrievalScore ScoreRetrieval(const std::vector<StreamId>& truth_streams,
                                     const Interval& truth_frame,
                                     const std::vector<MinedPattern>& mined,
                                     Timestamp timeline_length) {
  PatternRetrievalScore best;
  best.start_error = static_cast<double>(timeline_length);
  best.end_error = static_cast<double>(timeline_length);

  double best_match = -1.0;
  for (const MinedPattern& m : mined) {
    double temporal = truth_frame.TemporalJaccard(m.timeframe);
    if (temporal <= 0.0) continue;  // no temporal overlap: not this event
    double spatial = JaccardSim(truth_streams, m.streams);
    double match = spatial * temporal;
    if (match > best_match) {
      best_match = match;
      best.matched = true;
      best.jaccard = spatial;
      best.start_error = StartError(truth_frame, m.timeframe, timeline_length);
      best.end_error = EndError(truth_frame, m.timeframe, timeline_length);
    }
  }
  return best;
}

RetrievalAggregate Aggregate(const std::vector<PatternRetrievalScore>& scores) {
  RetrievalAggregate agg;
  agg.patterns = scores.size();
  if (scores.empty()) return agg;
  for (const PatternRetrievalScore& s : scores) {
    agg.mean_jaccard += s.jaccard;
    agg.mean_start_error += s.start_error;
    agg.mean_end_error += s.end_error;
  }
  agg.mean_jaccard /= static_cast<double>(scores.size());
  agg.mean_start_error /= static_cast<double>(scores.size());
  agg.mean_end_error /= static_cast<double>(scores.size());
  return agg;
}

}  // namespace stburst
