#include "stburst/eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace stburst {

double JaccardSim(const std::vector<StreamId>& a, const std::vector<StreamId>& b) {
  std::unordered_set<StreamId> sa(a.begin(), a.end());
  std::unordered_set<StreamId> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 1.0;
  size_t inter = 0;
  for (StreamId s : sa) {
    if (sb.count(s) > 0) ++inter;
  }
  size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double StartError(const Interval& truth, const Interval& reported,
                  Timestamp timeline_length) {
  if (!truth.valid() || !reported.valid()) {
    return static_cast<double>(timeline_length);
  }
  return std::abs(static_cast<double>(truth.start) -
                  static_cast<double>(reported.start));
}

double EndError(const Interval& truth, const Interval& reported,
                Timestamp timeline_length) {
  if (!truth.valid() || !reported.valid()) {
    return static_cast<double>(timeline_length);
  }
  return std::abs(static_cast<double>(truth.end) -
                  static_cast<double>(reported.end));
}

double PrecisionAtK(const std::vector<bool>& relevance_of_ranked, size_t k) {
  size_t considered = std::min(k, relevance_of_ranked.size());
  if (considered == 0) return 0.0;
  size_t relevant = 0;
  for (size_t i = 0; i < considered; ++i) {
    if (relevance_of_ranked[i]) ++relevant;
  }
  return static_cast<double>(relevant) / static_cast<double>(considered);
}

double TopKOverlap(const std::vector<DocId>& a, const std::vector<DocId>& b,
                   size_t k) {
  if (k == 0) return 0.0;
  std::unordered_set<DocId> sa(a.begin(),
                               a.begin() + std::min(k, a.size()));
  size_t inter = 0;
  for (size_t i = 0; i < std::min(k, b.size()); ++i) {
    if (sa.count(b[i]) > 0) ++inter;
  }
  return static_cast<double>(inter) / static_cast<double>(k);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace stburst
