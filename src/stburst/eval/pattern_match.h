// Matching mined patterns to injected ground truth (the Table 2 protocol):
// for each injected pattern, find the mined pattern of the same term that
// best matches it and score JaccardSim / Start-Error / End-Error.

#ifndef STBURST_EVAL_PATTERN_MATCH_H_
#define STBURST_EVAL_PATTERN_MATCH_H_

#include <vector>

#include "stburst/core/interval.h"
#include "stburst/stream/types.h"

namespace stburst {

/// A mined pattern reduced to the fields the retrieval metrics need.
struct MinedPattern {
  std::vector<StreamId> streams;
  Interval timeframe;
  double score = 0.0;
};

/// Per-injected-pattern retrieval scores.
struct PatternRetrievalScore {
  double jaccard = 0.0;
  double start_error = 0.0;
  double end_error = 0.0;
  bool matched = false;  // a candidate with temporal overlap existed
};

/// Picks the mined pattern whose (stream-set Jaccard x temporal Jaccard)
/// match to the truth is best, and scores it. With no overlapping candidate
/// the retrieval counts as a miss: Jaccard 0, both errors = timeline length.
PatternRetrievalScore ScoreRetrieval(const std::vector<StreamId>& truth_streams,
                                     const Interval& truth_frame,
                                     const std::vector<MinedPattern>& mined,
                                     Timestamp timeline_length);

/// Aggregate of ScoreRetrieval over many injected patterns.
struct RetrievalAggregate {
  double mean_jaccard = 0.0;
  double mean_start_error = 0.0;
  double mean_end_error = 0.0;
  size_t patterns = 0;
};

RetrievalAggregate Aggregate(const std::vector<PatternRetrievalScore>& scores);

}  // namespace stburst

#endif  // STBURST_EVAL_PATTERN_MATCH_H_
