// Evaluation metrics (paper §6.2.2 and §6.3): stream-set Jaccard
// similarity, timeframe start/end errors, precision@k, and top-k overlap.

#ifndef STBURST_EVAL_METRICS_H_
#define STBURST_EVAL_METRICS_H_

#include <vector>

#include "stburst/core/interval.h"
#include "stburst/stream/types.h"

namespace stburst {

/// |A ∩ B| / |A ∪ B| of two stream sets (need not be sorted; duplicates are
/// collapsed). 1 when both are empty.
double JaccardSim(const std::vector<StreamId>& a, const std::vector<StreamId>& b);

/// |i − i'|: absolute error between the true and reported first timestamps.
/// Invalid intervals contribute the full timeline length (a miss).
double StartError(const Interval& truth, const Interval& reported,
                  Timestamp timeline_length);

/// Absolute error between the true and reported last timestamps.
double EndError(const Interval& truth, const Interval& reported,
                Timestamp timeline_length);

/// Fraction of the first min(k, |ranked|) entries that are relevant
/// according to `is_relevant` (indexed positionally alongside `ranked`).
/// Returns 0 for an empty ranking.
double PrecisionAtK(const std::vector<bool>& relevance_of_ranked, size_t k);

/// |topA ∩ topB| / k: the paper's top-k set similarity (§6.3).
double TopKOverlap(const std::vector<DocId>& a, const std::vector<DocId>& b,
                   size_t k);

/// Mean of a vector; 0 when empty.
double Mean(const std::vector<double>& values);

}  // namespace stburst

#endif  // STBURST_EVAL_METRICS_H_
