#include "stburst/history/cold_tier.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "stburst/common/logging.h"
#include "stburst/common/statusor.h"

namespace stburst {
namespace {

// On-disk layout (version 1, little-endian; field-by-field contract in
// docs/STORAGE.md — keep the two in lockstep):
//
//   [0, 64)   header (kHeader below, fixed 64 bytes)
//   [64, ...) payload:
//     term_offsets  (num_terms + 1) x u64   row range of term t is
//                                  [term_offsets[t], term_offsets[t+1])
//     stream column  num_rows x u32
//     bucket column  num_rows x u32
//     sum column     num_rows x f64
//     max column     num_rows x f64
//     count column   num_rows x u64
//
// Rows are sorted by (term via the offset index, stream, bucket). Checksums
// are FNV-1a/64: header_checksum covers header bytes [0, 56); payload_checksum
// covers every payload byte.

constexpr char kMagic[8] = {'S', 'T', 'B', 'C', 'O', 'L', 'D', '1'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kHeaderSize = 64;

struct FileHeader {
  char magic[8];
  uint32_t version;
  uint32_t header_size;
  uint32_t bucket_width;
  uint32_t stream_upper_bound;
  int32_t covered_start;
  int32_t folded_until;
  uint64_t num_terms;
  uint64_t num_rows;
  uint64_t payload_checksum;
  uint64_t header_checksum;
};
static_assert(sizeof(FileHeader) == kHeaderSize,
              "cold tier header must be exactly 64 bytes");

uint64_t Fnv1a64(const void* data, size_t len,
                 uint64_t seed = 14695981039346656037ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

bool HostIsLittleEndian() { return std::endian::native == std::endian::little; }

std::string Errno(const char* op, const std::string& path) {
  return std::string("cold tier: ") + op + " failed for '" + path +
         "': " + std::strerror(errno);
}

// Binary-searches `rows` (sorted by (stream, bucket)) for the insertion
// point of (stream, bucket).
auto LowerBound(std::vector<ColdRow>& rows, StreamId stream, uint32_t bucket) {
  return std::lower_bound(
      rows.begin(), rows.end(), std::pair(stream, bucket),
      [](const ColdRow& r, const std::pair<StreamId, uint32_t>& key) {
        return std::pair(r.stream, r.bucket) < key;
      });
}

}  // namespace

/// Parsed view of one published generation: the mmap'd file plus typed
/// pointers into its columns. Immutable once validated.
struct ColdTier::Base {
  void* addr = nullptr;
  size_t len = 0;
  const uint64_t* term_offsets = nullptr;
  const uint32_t* stream = nullptr;
  const uint32_t* bucket = nullptr;
  const double* sum = nullptr;
  const double* max = nullptr;
  const uint64_t* count = nullptr;
  uint64_t num_terms = 0;
  uint64_t num_rows = 0;
  Timestamp covered_start = 0;
  Timestamp folded_until = 0;
  uint32_t stream_upper_bound = 0;

  ~Base() {
    if (addr != nullptr) ::munmap(addr, len);
  }

  // Maps and validates `path`. Returns nullptr (not an error) if the file
  // does not exist and `missing_ok` is set.
  static StatusOr<std::unique_ptr<Base>> Map(const std::string& path,
                                             bool missing_ok) {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT && missing_ok) return std::unique_ptr<Base>();
      return Status::InvalidArgument(Errno("open", path));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::InvalidArgument(Errno("fstat", path));
    }
    const auto file_len = static_cast<size_t>(st.st_size);
    if (file_len < kHeaderSize) {
      ::close(fd);
      return Status::FailedPrecondition(
          "cold tier: '" + path + "' is " + std::to_string(file_len) +
          " bytes, shorter than the 64-byte header (truncated?)");
    }
    void* addr = ::mmap(nullptr, file_len, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (addr == MAP_FAILED) {
      return Status::InvalidArgument(Errno("mmap", path));
    }
    auto base = std::make_unique<Base>();
    base->addr = addr;
    base->len = file_len;

    FileHeader h;
    std::memcpy(&h, addr, sizeof(h));
    if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
      return Status::InvalidArgument("cold tier: '" + path +
                                     "' has no STBCOLD1 magic; not a cold "
                                     "tier file (or written big-endian)");
    }
    if (h.version != kVersion) {
      return Status::InvalidArgument(
          "cold tier: '" + path + "' is format version " +
          std::to_string(h.version) + "; this build reads version " +
          std::to_string(kVersion));
    }
    if (h.header_size != kHeaderSize) {
      return Status::InvalidArgument(
          "cold tier: '" + path + "' declares header_size " +
          std::to_string(h.header_size) + ", expected 64");
    }
    if (Fnv1a64(addr, offsetof(FileHeader, header_checksum)) !=
        h.header_checksum) {
      return Status::FailedPrecondition(
          "cold tier: '" + path + "' header checksum mismatch (corrupt)");
    }
    if (h.bucket_width == 0 || h.covered_start < 0 ||
        h.folded_until < h.covered_start) {
      return Status::FailedPrecondition("cold tier: '" + path +
                                        "' header fields out of range");
    }
    const uint64_t payload_len = uint64_t{8} * (h.num_terms + 1) +
                                 h.num_rows * (4 + 4 + 8 + 8 + 8);
    if (payload_len != file_len - kHeaderSize) {
      return Status::FailedPrecondition(
          "cold tier: '" + path + "' payload is " +
          std::to_string(file_len - kHeaderSize) + " bytes but the header " +
          "implies " + std::to_string(payload_len) + " (truncated?)");
    }
    const auto* payload = static_cast<const unsigned char*>(addr) + kHeaderSize;
    if (Fnv1a64(payload, payload_len) != h.payload_checksum) {
      return Status::FailedPrecondition(
          "cold tier: '" + path + "' payload checksum mismatch (corrupt)");
    }

    base->num_terms = h.num_terms;
    base->num_rows = h.num_rows;
    base->covered_start = h.covered_start;
    base->folded_until = h.folded_until;
    base->stream_upper_bound = h.stream_upper_bound;
    const unsigned char* p = payload;
    base->term_offsets = reinterpret_cast<const uint64_t*>(p);
    p += 8 * (h.num_terms + 1);
    base->stream = reinterpret_cast<const uint32_t*>(p);
    p += 4 * h.num_rows;
    base->bucket = reinterpret_cast<const uint32_t*>(p);
    p += 4 * h.num_rows;
    base->sum = reinterpret_cast<const double*>(p);
    p += 8 * h.num_rows;
    base->max = reinterpret_cast<const double*>(p);
    p += 8 * h.num_rows;
    base->count = reinterpret_cast<const uint64_t*>(p);
    // The offset index itself must be monotone and end at num_rows, or row
    // ranges could run past the mapping.
    if (base->term_offsets[0] != 0 ||
        base->term_offsets[h.num_terms] != h.num_rows) {
      return Status::FailedPrecondition(
          "cold tier: '" + path + "' term offset index does not span rows");
    }
    for (uint64_t t = 0; t < h.num_terms; ++t) {
      if (base->term_offsets[t] > base->term_offsets[t + 1]) {
        return Status::FailedPrecondition(
            "cold tier: '" + path + "' term offset index is not monotone");
      }
    }
    return base;
  }

  // Row range [begin, end) of one term; empty for terms past the index.
  std::pair<uint64_t, uint64_t> Range(TermId term) const {
    if (term >= num_terms) return {0, 0};
    return {term_offsets[term], term_offsets[term + 1]};
  }
};

ColdTier::ColdTier() = default;
ColdTier::ColdTier(ColdTier&&) noexcept = default;
ColdTier& ColdTier::operator=(ColdTier&&) noexcept = default;
ColdTier::~ColdTier() = default;

StatusOr<ColdTier> ColdTier::CreateInMemory(Timestamp bucket_width) {
  if (bucket_width <= 0) {
    return Status::InvalidArgument(
        "cold tier: bucket width must be positive, got " +
        std::to_string(bucket_width));
  }
  ColdTier tier;
  tier.bucket_width_ = bucket_width;
  return tier;
}

StatusOr<ColdTier> ColdTier::OpenOrCreate(std::string path,
                                          Timestamp bucket_width) {
  if (!HostIsLittleEndian()) {
    return Status::NotImplemented(
        "cold tier: the mmap format is little-endian; this host is not");
  }
  if (bucket_width <= 0) {
    return Status::InvalidArgument(
        "cold tier: bucket width must be positive, got " +
        std::to_string(bucket_width));
  }
  if (path.empty()) {
    return Status::InvalidArgument("cold tier: empty path for mmap mode");
  }
  STB_ASSIGN_OR_RETURN(auto base, Base::Map(path, /*missing_ok=*/true));
  ColdTier tier;
  tier.path_ = std::move(path);
  tier.bucket_width_ = bucket_width;
  if (base != nullptr) {
    const FileHeader* h = static_cast<const FileHeader*>(base->addr);
    if (static_cast<Timestamp>(h->bucket_width) != bucket_width) {
      return Status::InvalidArgument(
          "cold tier: '" + tier.path_ + "' was written with bucket width " +
          std::to_string(h->bucket_width) + " but the runtime asks for " +
          std::to_string(bucket_width) +
          "; aggregates cannot be re-bucketed");
    }
    tier.covered_start_ = base->covered_start;
    tier.folded_until_ = base->folded_until;
    tier.stream_ub_ = base->stream_upper_bound;
    tier.term_ub_ = static_cast<uint32_t>(base->num_terms);
    tier.base_ = std::move(base);
  }
  return tier;
}

StatusOr<ColdTier> ColdTier::Open(std::string path) {
  if (!HostIsLittleEndian()) {
    return Status::NotImplemented(
        "cold tier: the mmap format is little-endian; this host is not");
  }
  STB_ASSIGN_OR_RETURN(auto base, Base::Map(path, /*missing_ok=*/false));
  ColdTier tier;
  tier.path_ = std::move(path);
  const FileHeader* h = static_cast<const FileHeader*>(base->addr);
  tier.bucket_width_ = static_cast<Timestamp>(h->bucket_width);
  tier.covered_start_ = base->covered_start;
  tier.folded_until_ = base->folded_until;
  tier.stream_ub_ = base->stream_upper_bound;
  tier.term_ub_ = static_cast<uint32_t>(base->num_terms);
  tier.base_ = std::move(base);
  return tier;
}

uint32_t ColdTier::bucket_lower_bound() const {
  return static_cast<uint32_t>(covered_start_ / bucket_width_);
}

uint32_t ColdTier::bucket_upper_bound() const {
  if (folded_until_ <= covered_start_) return bucket_lower_bound();
  return static_cast<uint32_t>((folded_until_ - 1) / bucket_width_) + 1;
}

Status ColdTier::AttachAt(Timestamp window_start) {
  if (window_start < 0) {
    return Status::InvalidArgument("cold tier: negative window start");
  }
  if (folded_until_ >= window_start) return Status::OK();  // reaches/overlaps
  if (folded_until_ == covered_start_ && delta_.empty() && base_rows() == 0) {
    // Nothing folded yet: coverage honestly begins at the live window.
    covered_start_ = window_start;
    folded_until_ = window_start;
    return Status::OK();
  }
  return Status::InvalidArgument(
      "cold tier: persisted aggregates end at timestamp " +
      std::to_string(folded_until_) + " but the live window starts at " +
      std::to_string(window_start) +
      "; the span between was never folded (history gap)");
}

std::vector<ColdRow>* ColdTier::DeltaForTerm(TermId term) {
  auto it = delta_.find(term);
  return it == delta_.end() ? nullptr : &it->second;
}

const std::vector<ColdRow>* ColdTier::DeltaForTerm(TermId term) const {
  auto it = delta_.find(term);
  return it == delta_.end() ? nullptr : &it->second;
}

size_t ColdTier::FoldEvicted(
    std::span<const std::pair<TermId, std::vector<TermPosting>>> removed,
    Timestamp cutoff, ColdFoldUndo* undo) {
  if (undo != nullptr) {
    undo->folded_until = folded_until_;
    undo->stream_upper_bound = stream_ub_;
    undo->term_upper_bound = term_ub_;
    undo->saved_delta.clear();
  }
  size_t folded_terms = 0;
  for (const auto& [term, postings] : removed) {
    bool touched = false;
    for (const TermPosting& p : postings) {
      // Idempotence: [0, folded_until_) is already aggregated (possibly by a
      // previous generation of this process), and [cutoff, ...) is still hot.
      if (p.time < folded_until_ || p.time >= cutoff) continue;
      if (p.count == 0.0) continue;  // postings are sparse; zeros carry no mass
      if (!touched) {
        touched = true;
        ++folded_terms;
        if (undo != nullptr) {
          const std::vector<ColdRow>* existing = DeltaForTerm(term);
          undo->saved_delta.emplace_back(
              term, existing == nullptr ? std::vector<ColdRow>() : *existing);
        }
      }
      const auto bucket = static_cast<uint32_t>(p.time / bucket_width_);
      std::vector<ColdRow>& rows = delta_[term];
      auto it = LowerBound(rows, p.stream, bucket);
      if (it == rows.end() || it->stream != p.stream || it->bucket != bucket) {
        it = rows.insert(it, ColdRow{p.stream, bucket, 0.0, 0.0, 0});
      }
      it->sum += p.count;
      it->max = std::max(it->max, p.count);
      it->count += 1;
      stream_ub_ = std::max(stream_ub_, p.stream + 1);
      term_ub_ = std::max(term_ub_, term + 1);
    }
  }
  if (cutoff > folded_until_) folded_until_ = cutoff;
  return folded_terms;
}

void ColdTier::RollbackFold(ColdFoldUndo&& undo) {
  for (auto& [term, rows] : undo.saved_delta) {
    if (rows.empty()) {
      delta_.erase(term);
    } else {
      delta_[term] = std::move(rows);
    }
  }
  folded_until_ = undo.folded_until;
  stream_ub_ = undo.stream_upper_bound;
  term_ub_ = undo.term_upper_bound;
  undo.saved_delta.clear();
}

std::vector<ColdRow> ColdTier::TermRows(TermId term) const {
  std::vector<ColdRow> merged;
  const std::vector<ColdRow>* delta = DeltaForTerm(term);
  if (base_ == nullptr) {
    if (delta != nullptr) merged = *delta;
    return merged;
  }
  auto [begin, end] = base_->Range(term);
  size_t di = 0;
  const size_t dn = delta == nullptr ? 0 : delta->size();
  merged.reserve((end - begin) + dn);
  uint64_t bi = begin;
  // Two-way merge on (stream, bucket); delta rows are increments over base.
  while (bi < end || di < dn) {
    const bool take_base =
        di >= dn ||
        (bi < end &&
         std::pair(base_->stream[bi], base_->bucket[bi]) <=
             std::pair((*delta)[di].stream, (*delta)[di].bucket));
    if (take_base) {
      ColdRow row{base_->stream[bi], base_->bucket[bi], base_->sum[bi],
                  base_->max[bi], base_->count[bi]};
      if (di < dn && (*delta)[di].stream == row.stream &&
          (*delta)[di].bucket == row.bucket) {
        row.sum += (*delta)[di].sum;
        row.max = std::max(row.max, (*delta)[di].max);
        row.count += (*delta)[di].count;
        ++di;
      }
      merged.push_back(row);
      ++bi;
    } else {
      merged.push_back((*delta)[di]);
      ++di;
    }
  }
  return merged;
}

double ColdTier::StreamSum(TermId term, StreamId stream) const {
  double total = 0.0;
  if (base_ != nullptr) {
    auto [begin, end] = base_->Range(term);
    for (uint64_t i = begin; i < end; ++i) {
      if (base_->stream[i] == stream) total += base_->sum[i];
    }
  }
  if (const std::vector<ColdRow>* delta = DeltaForTerm(term)) {
    for (const ColdRow& r : *delta) {
      if (r.stream == stream) total += r.sum;
    }
  }
  return total;
}

double ColdTier::TermSum(TermId term) const {
  double total = 0.0;
  if (base_ != nullptr) {
    auto [begin, end] = base_->Range(term);
    for (uint64_t i = begin; i < end; ++i) total += base_->sum[i];
  }
  if (const std::vector<ColdRow>* delta = DeltaForTerm(term)) {
    for (const ColdRow& r : *delta) total += r.sum;
  }
  return total;
}

TermSeries ColdTier::ReplaySeries(TermId term, uint32_t bucket_begin,
                                  uint32_t bucket_end,
                                  size_t num_streams) const {
  STB_CHECK(bucket_begin <= bucket_end);
  STB_CHECK(num_streams >= stream_upper_bound());
  TermSeries series(num_streams,
                    static_cast<Timestamp>(bucket_end - bucket_begin));
  for (const ColdRow& r : TermRows(term)) {
    if (r.bucket < bucket_begin || r.bucket >= bucket_end) continue;
    series.add(r.stream, static_cast<Timestamp>(r.bucket - bucket_begin),
               r.sum);
  }
  return series;
}

size_t ColdTier::delta_rows() const {
  size_t n = 0;
  for (const auto& [term, rows] : delta_) n += rows.size();
  return n;
}

uint64_t ColdTier::base_rows() const {
  return base_ == nullptr ? 0 : base_->num_rows;
}

Status ColdTier::Publish() {
  if (!mmap_backed()) return Status::OK();
  const bool base_current = base_ != nullptr &&
                            base_->folded_until == folded_until_ &&
                            base_->covered_start == covered_start_;
  if (delta_.empty() && base_current) {
    return Status::OK();  // nothing new since the last generation
  }

  // Merge base + delta into columnar arrays, terms 0..term_ub_.
  const uint64_t num_terms = term_ub_;
  std::vector<uint64_t> offsets;
  offsets.reserve(num_terms + 1);
  std::vector<uint32_t> streams, buckets;
  std::vector<double> sums, maxes;
  std::vector<uint64_t> counts;
  offsets.push_back(0);
  for (TermId term = 0; term < num_terms; ++term) {
    for (const ColdRow& r : TermRows(term)) {
      streams.push_back(r.stream);
      buckets.push_back(r.bucket);
      sums.push_back(r.sum);
      maxes.push_back(r.max);
      counts.push_back(r.count);
    }
    offsets.push_back(streams.size());
  }
  const uint64_t num_rows = streams.size();

  std::string payload;
  payload.reserve(8 * (num_terms + 1) + num_rows * 32);
  auto append = [&payload](const void* data, size_t len) {
    payload.append(static_cast<const char*>(data), len);
  };
  append(offsets.data(), 8 * offsets.size());
  append(streams.data(), 4 * streams.size());
  append(buckets.data(), 4 * buckets.size());
  append(sums.data(), 8 * sums.size());
  append(maxes.data(), 8 * maxes.size());
  append(counts.data(), 8 * counts.size());

  FileHeader h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kVersion;
  h.header_size = kHeaderSize;
  h.bucket_width = static_cast<uint32_t>(bucket_width_);
  h.stream_upper_bound = stream_ub_;
  h.covered_start = covered_start_;
  h.folded_until = folded_until_;
  h.num_terms = num_terms;
  h.num_rows = num_rows;
  h.payload_checksum = Fnv1a64(payload.data(), payload.size());
  h.header_checksum = Fnv1a64(&h, offsetof(FileHeader, header_checksum));

  // Write-to-temp + fsync + rename: a crash at any point leaves either the
  // previous generation (rename not reached) or the new one (rename is
  // atomic on POSIX); never a torn file at `path_`.
  const std::string tmp = path_ + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::InvalidArgument(Errno("open", tmp));
  auto write_all = [fd](const void* data, size_t len) {
    const char* p = static_cast<const char*>(data);
    while (len > 0) {
      ssize_t n = ::write(fd, p, len);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      p += n;
      len -= static_cast<size_t>(n);
    }
    return true;
  };
  if (!write_all(&h, sizeof(h)) ||
      !write_all(payload.data(), payload.size()) || ::fsync(fd) != 0) {
    Status st = Status::InvalidArgument(Errno("write", tmp));
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    Status st = Status::InvalidArgument(Errno("rename", tmp));
    ::unlink(tmp.c_str());
    return st;
  }
  // Make the rename itself durable.
  const std::string dir =
      std::filesystem::path(path_).parent_path().string();
  int dfd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }

  // Swap in the new generation; only then drop the delta it absorbed.
  auto remapped = Base::Map(path_, /*missing_ok=*/false);
  if (!remapped.ok()) return remapped.status();
  base_ = std::move(remapped).value();
  delta_.clear();
  return Status::OK();
}

}  // namespace stburst
