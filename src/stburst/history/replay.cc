#include "stburst/history/replay.h"

#include <string>

#include "stburst/core/temporal.h"
#include "stburst/stream/frequency.h"

namespace stburst {

StatusOr<std::vector<ReplayedInterval>> ReplayRange(
    const ColdTier& tier, TermId term, uint32_t bucket_begin,
    uint32_t bucket_end, const ExpectedModelFactory& factory,
    const ReplayOptions& options) {
  if (bucket_begin >= bucket_end) {
    return Status::InvalidArgument(
        "ReplayRange: empty bucket span [" + std::to_string(bucket_begin) +
        ", " + std::to_string(bucket_end) + ")");
  }
  if (bucket_begin < tier.bucket_lower_bound() ||
      bucket_end > tier.bucket_upper_bound()) {
    return Status::OutOfRange(
        "ReplayRange: span [" + std::to_string(bucket_begin) + ", " +
        std::to_string(bucket_end) + ") reaches outside the covered buckets [" +
        std::to_string(tier.bucket_lower_bound()) + ", " +
        std::to_string(tier.bucket_upper_bound()) + ")");
  }
  const size_t num_streams = options.num_streams != 0
                                 ? options.num_streams
                                 : tier.stream_upper_bound();
  if (num_streams < tier.stream_upper_bound()) {
    return Status::InvalidArgument(
        "ReplayRange: num_streams " + std::to_string(num_streams) +
        " would drop rows; the tier has streams up to " +
        std::to_string(tier.stream_upper_bound()));
  }

  const TermSeries series =
      tier.ReplaySeries(term, bucket_begin, bucket_end, num_streams);
  std::vector<ReplayedInterval> out;
  for (StreamId stream = 0; stream < num_streams; ++stream) {
    std::unique_ptr<ExpectedFrequencyModel> model = factory();
    const std::vector<double> burstiness =
        BurstinessSeries(series.StreamRow(stream), model.get());
    for (const BurstyInterval& found :
         ExtractBurstyIntervals(burstiness, options.min_burstiness)) {
      out.push_back(ReplayedInterval{
          stream, bucket_begin + static_cast<uint32_t>(found.interval.start),
          bucket_begin + static_cast<uint32_t>(found.interval.end) + 1,
          found.burstiness});
    }
  }
  return out;
}

}  // namespace stburst
