// ColdTier: the persistent half of the tiered history subsystem.
//
// Eviction has dropped snapshots past the retention window since the feed
// runtime gained a window (retention rules 1-8, docs/ARCHITECTURE.md), which
// caps every expected-model baseline at the window length. The cold tier
// closes that gap: when `FeedRuntime::Tick` evicts postings, they are folded
// into per-(term, stream, bucket) coarse aggregates — bucket width is
// configurable (e.g. 4 weeks) — holding the frequency sum, the maximum
// single-cell frequency, and the number of non-zero (stream, time) cells
// folded. Baselines then draw from hot window + cold tier seamlessly via
// `LongHorizonBaseline` (history/long_horizon.h), and stored spans can be
// re-run against today's models via `ReplayRange` (history/replay.h).
//
// The tier covers the timeline span [covered_start(), folded_until())
// exactly: every evicted cell in that span is represented in some bucket,
// and no cell outside it is. covered_start() is where folding began — 0 for
// a feed whose whole history passed through eviction, later when Create
// applied the retention window to a deep seed collection (that prefix was
// dropped, not folded, and the tier says so instead of faking zero
// observations). Folding is idempotent under the invariant — postings below
// folded_until() are skipped — which makes restart-with-replay-overlap
// safe.
//
// Storage model (kMmap mode): queries merge an immutable mmap-backed base
// generation (the last published file; layout documented field-by-field in
// docs/STORAGE.md) with an in-memory delta overlay holding folds since the
// last `Publish()`. Publish writes a merged generation to `<path>.tmp`,
// fsyncs, and atomically renames it over `<path>` — a crash mid-write
// recovers the previous generation untouched. kInMemory keeps everything in
// the delta overlay and never touches disk.
//
// Thread-safety: externally synchronized, like the rest of the tick state.
// The FeedRuntime mutates the tier only inside the tick transaction.

#ifndef STBURST_HISTORY_COLD_TIER_H_
#define STBURST_HISTORY_COLD_TIER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "stburst/common/status.h"
#include "stburst/common/statusor.h"
#include "stburst/stream/frequency.h"
#include "stburst/stream/types.h"

namespace stburst {

/// Where the cold tier lives. kOff disables folding entirely (eviction drops
/// history, the pre-PR-10 behavior); kInMemory folds into a process-local
/// tier that dies with the process; kMmap additionally publishes each folded
/// generation to `history_path` and recovers it on restart.
enum class HistoryMode { kOff = 0, kInMemory = 1, kMmap = 2 };

/// One coarse aggregate cell: everything the tier remembers about
/// (term, stream) inside one bucket of `bucket_width` timestamps.
struct ColdRow {
  StreamId stream = 0;
  /// Absolute bucket index: time / bucket_width. Buckets never shift when
  /// the hot window slides, so rows are stable identities across restarts.
  uint32_t bucket = 0;
  /// Sum of folded cell frequencies (integer-valued for document-driven
  /// feeds, so partial sums are exact in double — see frequency.h).
  double sum = 0.0;
  /// Maximum single (stream, time) cell frequency folded into the bucket.
  double max = 0.0;
  /// Number of non-zero (stream, time) cells folded into the bucket.
  uint64_t count = 0;

  friend bool operator==(const ColdRow& a, const ColdRow& b) {
    return a.stream == b.stream && a.bucket == b.bucket && a.sum == b.sum &&
           a.max == b.max && a.count == b.count;
  }
};

/// Captured pre-fold tier state for one `FoldEvicted` call, restored exactly
/// by `RollbackFold`. Folds only mutate the in-memory delta overlay (the
/// published base generation is immutable), so rollback is pure memory.
struct ColdFoldUndo {
  Timestamp folded_until = 0;
  uint32_t stream_upper_bound = 0;
  uint32_t term_upper_bound = 0;
  /// Per touched term, the term's delta rows before the fold.
  std::vector<std::pair<TermId, std::vector<ColdRow>>> saved_delta;
};

class ColdTier {
 public:
  /// In-memory tier (HistoryMode::kInMemory). bucket_width must be > 0.
  static StatusOr<ColdTier> CreateInMemory(Timestamp bucket_width);

  /// Mmap-backed tier (HistoryMode::kMmap). If `path` exists it is opened,
  /// validated (magic, version, header + payload checksums), and required to
  /// have the same bucket width; if it does not exist, an empty tier is
  /// created and the file appears on the first `Publish()`. Rejects
  /// big-endian hosts (the format is little-endian, see docs/STORAGE.md).
  static StatusOr<ColdTier> OpenOrCreate(std::string path,
                                         Timestamp bucket_width);

  /// Read-only open of an existing published tier, e.g. for backtesting a
  /// stored span without a live feed. Fails if the file is missing or does
  /// not validate. Any bucket width is accepted (it is read from the file).
  static StatusOr<ColdTier> Open(std::string path);

  ColdTier(ColdTier&&) noexcept;
  ColdTier& operator=(ColdTier&&) noexcept;
  ~ColdTier();
  ColdTier(const ColdTier&) = delete;
  ColdTier& operator=(const ColdTier&) = delete;

  Timestamp bucket_width() const { return bucket_width_; }
  /// First timestamp the tier covers (see the class comment).
  Timestamp covered_start() const { return covered_start_; }
  /// First timestamp NOT covered: aggregates cover [covered_start(),
  /// folded_until()) exactly.
  Timestamp folded_until() const { return folded_until_; }
  /// Covered timestamps = observations per stream the aggregates stand for
  /// (zeros included) — the denominator LongHorizonBaseline seeds with.
  Timestamp covered_length() const { return folded_until_ - covered_start_; }
  bool mmap_backed() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  /// One past the largest stream id / term id with any folded cell.
  uint32_t stream_upper_bound() const { return stream_ub_; }
  uint32_t term_upper_bound() const { return term_ub_; }
  /// Bucket index range that may hold rows:
  /// [bucket_lower_bound(), bucket_upper_bound()). The boundary buckets may
  /// be partially covered when covered_start()/folded_until() fall inside a
  /// bucket.
  uint32_t bucket_lower_bound() const;
  uint32_t bucket_upper_bound() const;

  /// Runtime-attach handshake: called once by FeedRuntime::Create with the
  /// live window's start. An empty tier adopts it as covered_start (Create
  /// dropped any deeper seed history un-folded, so coverage honestly begins
  /// there); a reopened tier must already reach it (folded_until() >=
  /// window_start), else there is an unrecoverable gap between the
  /// persisted aggregates and the live window and the attach fails with
  /// InvalidArgument. Overlap (folded_until() > window_start after a
  /// restart replayed extra history) is fine: folds skip covered times.
  Status AttachAt(Timestamp window_start);

  /// Folds evicted postings (the `FrequencyEvictUndo::removed` capture of a
  /// tick's eviction, or any per-term posting list in canonical
  /// (stream, time) order) into the tier and advances folded_until() to
  /// `cutoff`. Postings with time < folded_until() (already covered) or
  /// time >= cutoff are skipped. Returns the number of terms that
  /// contributed at least one cell. `undo`, when non-null, captures the
  /// pre-fold state for RollbackFold.
  size_t FoldEvicted(
      std::span<const std::pair<TermId, std::vector<TermPosting>>> removed,
      Timestamp cutoff, ColdFoldUndo* undo);

  /// Restores the tier to its exact pre-FoldEvicted state. Consumes `undo`.
  void RollbackFold(ColdFoldUndo&& undo);

  /// Merged (base + delta) rows for one term, sorted by (stream, bucket).
  std::vector<ColdRow> TermRows(TermId term) const;

  /// Sum of folded frequency for (term, stream) over the whole covered
  /// span — the numerator of a long-horizon mean whose denominator is
  /// covered_length() observations (zeros included).
  double StreamSum(TermId term, StreamId stream) const;

  /// Sum of folded frequency for a term across all streams.
  double TermSum(TermId term) const;

  /// Bucket-resolution frequency matrix for `term` over bucket indices
  /// [bucket_begin, bucket_end): cell (s, b - bucket_begin) holds the
  /// folded sum for stream s in bucket b. `num_streams` must be >=
  /// stream_upper_bound() to not drop rows (STB_CHECKed).
  TermSeries ReplaySeries(TermId term, uint32_t bucket_begin,
                          uint32_t bucket_end, size_t num_streams) const;

  /// kMmap only (no-op OK for kInMemory): merges base + delta into a new
  /// generation, writes it to `<path>.tmp`, fsyncs, atomically renames it
  /// over `path`, remaps the published file, and clears the delta overlay.
  /// On failure the previous published generation and the in-memory state
  /// are both intact, and the same delta is retried on the next call.
  Status Publish();

  /// Rows folded since the last Publish (kInMemory: since creation).
  size_t delta_rows() const;
  /// Rows in the published base generation (0 when nothing published).
  uint64_t base_rows() const;

 private:
  struct Base;  // mmap view of the published generation
  ColdTier();

  std::vector<ColdRow>* DeltaForTerm(TermId term);
  const std::vector<ColdRow>* DeltaForTerm(TermId term) const;
  std::span<const uint64_t> BaseRange(TermId term, const uint64_t** offsets)
      const;

  std::string path_;  // empty <=> kInMemory
  Timestamp bucket_width_ = 1;
  Timestamp covered_start_ = 0;
  Timestamp folded_until_ = 0;
  uint32_t stream_ub_ = 0;
  uint32_t term_ub_ = 0;
  /// Folds since the last publish; per term, sorted by (stream, bucket).
  /// In kMmap mode these are increments over the base generation.
  std::unordered_map<TermId, std::vector<ColdRow>> delta_;
  std::unique_ptr<Base> base_;
};

}  // namespace stburst

#endif  // STBURST_HISTORY_COLD_TIER_H_
