// LongHorizonBaseline: expected-frequency baselines that see past the
// retention window by seeding models from the cold tier.
//
// The paper's default baseline is the mean observed frequency over *all*
// snapshots before timestamp i (§4) — but a windowed FeedRuntime only holds
// the hot window raw. The cold tier keeps exactly what that mean needs for
// the evicted span: per-(term, stream) frequency sums over [covered_start(),
// folded_until()), with covered_length() the observation count (every
// covered timestamp is one observation; silent ones are zeros).
// SeededMeanModel
// carries that (sum, count) prior and then observes the hot window, so
//
//     Expected = (cold_sum + hot_sum) / (cold_count + hot_count)
//
// equals the unwindowed global mean over the full horizon. For integer-
// valued frequencies (document-driven feeds; see the determinism note in
// stream/frequency.h) the equality is bit-exact regardless of how the cold
// sum was associated into buckets, because integer partial sums are exact in
// double. Only the arithmetic-mean family is seedable from (sum, count);
// window/EWMA/seasonal models would need per-bucket moments the tier does
// not store — a documented limitation, not an oversight.

#ifndef STBURST_HISTORY_LONG_HORIZON_H_
#define STBURST_HISTORY_LONG_HORIZON_H_

#include <cstdint>
#include <memory>

#include "stburst/core/expected.h"
#include "stburst/history/cold_tier.h"
#include "stburst/stream/types.h"

namespace stburst {

/// GlobalMeanModel with a (sum, count) prior. Uses plain sum/count
/// arithmetic (not Welford) so a seeded model and an unseeded model that
/// observed the seed span agree bit-exactly on integer-valued inputs.
class SeededMeanModel : public ExpectedFrequencyModel {
 public:
  SeededMeanModel() = default;
  SeededMeanModel(double seed_sum, uint64_t seed_count)
      : seed_sum_(seed_sum), seed_count_(seed_count) {}

  double Expected() const override {
    const uint64_t n = seed_count_ + hot_count_;
    return n == 0 ? 0.0 : (seed_sum_ + hot_sum_) / static_cast<double>(n);
  }
  void Observe(double y) override {
    hot_sum_ += y;
    ++hot_count_;
  }
  /// The seed counts as history: a term with months of folded baseline is
  /// never scored as "first observation" again.
  bool HasHistory() const override { return seed_count_ + hot_count_ > 0; }
  /// Restores the freshly-constructed (still seeded) state, per the
  /// Reset-equals-new-instance contract in expected.h.
  void Reset() override {
    hot_sum_ = 0.0;
    hot_count_ = 0;
  }

  double seed_sum() const { return seed_sum_; }
  uint64_t seed_count() const { return seed_count_; }

 private:
  double seed_sum_ = 0.0;
  uint64_t seed_count_ = 0;
  double hot_sum_ = 0.0;
  uint64_t hot_count_ = 0;
};

/// Adapter from a ColdTier to the existing model interfaces: hands out
/// SeededMeanModel instances whose prior is the tier's aggregate for one
/// (term, stream). Borrowed tier; a null tier yields unseeded models (pure
/// hot-window behavior), so callers need no history-on/off branches.
class LongHorizonBaseline {
 public:
  explicit LongHorizonBaseline(const ColdTier* tier) : tier_(tier) {}

  /// Model whose prior is (tier StreamSum, tier covered_length()): feed it
  /// the hot-window series starting at folded_until() and Expected() tracks
  /// the global mean over the full covered horizon.
  std::unique_ptr<ExpectedFrequencyModel> ModelFor(TermId term,
                                                   StreamId stream) const {
    return std::make_unique<SeededMeanModel>(SeedFor(term, stream));
  }

  /// Factory form for interfaces that construct models themselves
  /// (BurstinessSeries, the batch miner's per-stream factories). Captures
  /// the seed by value, so the factory stays valid past tier mutation.
  ExpectedModelFactory FactoryFor(TermId term, StreamId stream) const {
    SeededMeanModel seed = SeedFor(term, stream);
    return [seed]() { return std::make_unique<SeededMeanModel>(seed); };
  }

  const ColdTier* tier() const { return tier_; }

 private:
  SeededMeanModel SeedFor(TermId term, StreamId stream) const {
    if (tier_ == nullptr || tier_->covered_length() <= 0) {
      return SeededMeanModel();
    }
    return SeededMeanModel(tier_->StreamSum(term, stream),
                           static_cast<uint64_t>(tier_->covered_length()));
  }

  const ColdTier* tier_;
};

}  // namespace stburst

#endif  // STBURST_HISTORY_LONG_HORIZON_H_
