// ReplayRange: historical backtesting over the cold tier.
//
// The tier keeps bucket-resolution aggregates of every evicted span, which
// is enough to re-run a stored stretch of history against *today's* models:
// reconstruct the bucket-level frequency matrix of a term
// (ColdTier::ReplaySeries), score it per stream with a caller-supplied
// expected-model factory, and extract the maximal bursty intervals exactly
// as the live pipeline does (core/temporal.h, Ruzzo–Tompa). Resolution is
// the bucket width — a 4-week bucket feed replays at month granularity —
// which is the precision/space trade the tier makes by design.

#ifndef STBURST_HISTORY_REPLAY_H_
#define STBURST_HISTORY_REPLAY_H_

#include <cstdint>
#include <vector>

#include "stburst/common/statusor.h"
#include "stburst/core/expected.h"
#include "stburst/history/cold_tier.h"
#include "stburst/stream/types.h"

namespace stburst {

/// One bursty stretch found by a replay, in absolute bucket coordinates:
/// buckets [bucket_begin, bucket_end) cover timestamps
/// [bucket_begin * bucket_width, bucket_end * bucket_width).
struct ReplayedInterval {
  StreamId stream = 0;
  uint32_t bucket_begin = 0;
  uint32_t bucket_end = 0;
  double burstiness = 0.0;

  friend bool operator==(const ReplayedInterval& a, const ReplayedInterval& b) {
    return a.stream == b.stream && a.bucket_begin == b.bucket_begin &&
           a.bucket_end == b.bucket_end && a.burstiness == b.burstiness;
  }
};

struct ReplayOptions {
  /// Intervals scoring <= this are dropped (same knob as the live miner).
  double min_burstiness = 0.0;
  /// Rows per replayed series; 0 means the tier's stream_upper_bound().
  size_t num_streams = 0;
};

/// Re-runs the stored span [bucket_begin, bucket_end) of `term` against the
/// models produced by `factory` (one fresh model per stream) and returns
/// every bursty interval found, ordered by (stream, bucket_begin). Fails if
/// the requested span is empty or reaches outside the covered bucket range
/// [tier.bucket_lower_bound(), tier.bucket_upper_bound()).
StatusOr<std::vector<ReplayedInterval>> ReplayRange(
    const ColdTier& tier, TermId term, uint32_t bucket_begin,
    uint32_t bucket_end, const ExpectedModelFactory& factory,
    const ReplayOptions& options = {});

}  // namespace stburst

#endif  // STBURST_HISTORY_REPLAY_H_
