// Status: lightweight RocksDB/Arrow-style result type for recoverable errors.
//
// stburst does not use exceptions on library paths. Functions that can fail
// for data-dependent reasons return Status (or StatusOr<T>, see statusor.h);
// programming errors are caught with STB_CHECK (see logging.h).

#ifndef STBURST_COMMON_STATUS_H_
#define STBURST_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace stburst {

/// Broad machine-inspectable error categories, mirroring the subset of
/// RocksDB/Arrow codes this library needs.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kNotImplemented = 7,
};

/// Returns a stable human-readable name for a code ("OK", "InvalidArgument"...).
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error result. Cheap to return by value: the OK state carries
/// no allocation; error states hold a heap message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. An empty message is
  /// allowed; a kOk code with a message is normalized to plain OK.
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  /// True iff the status is OK.
  bool ok() const { return rep_ == nullptr; }

  /// The status code; kOk for OK statuses.
  StatusCode code() const { return rep_ == nullptr ? StatusCode::kOk : rep_->code; }

  /// The error message; empty for OK statuses.
  std::string_view message() const {
    return rep_ == nullptr ? std::string_view() : std::string_view(rep_->message);
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // nullptr <=> OK. unique_ptr keeps moves O(1) and the OK path allocation-free.
  std::unique_ptr<Rep> rep_;
};

/// Evaluates `expr` (a Status expression); on error, returns it from the
/// enclosing function.
#define STB_RETURN_NOT_OK(expr)              \
  do {                                       \
    ::stburst::Status _st = (expr);          \
    if (!_st.ok()) return _st;               \
  } while (false)

}  // namespace stburst

#endif  // STBURST_COMMON_STATUS_H_
