// Minimal threading runtime for the batch mining engine.
//
// ThreadPool is a fixed-size worker pool over per-worker work-stealing
// deques (Chase–Lev): a worker pushes and pops its own deque LIFO, idle
// workers steal FIFO from the other end, and external submits land in a
// shared injector queue. The mutex + condvar exist only for sleep/wake and
// Wait() — the task hand-off path itself is lock-free, so Zipf-skewed
// per-task costs no longer serialize every hand-off behind one contended
// queue lock.
// ParallelFor partitions an index range over the pool with dynamic
// chunking (workers grab chunks from a shared atomic cursor, so uneven
// per-item costs — rare heavy terms amid a Zipfian tail — still balance).
// Exceptions thrown by the body are captured and rethrown on the calling
// thread after all workers finish, so invariants outside the loop hold.
//
// Determinism contract: ParallelFor invokes the body exactly once per index
// with a worker id in [0, num_workers); callers that write results into
// index-addressed slots get schedule-independent output.

#ifndef STBURST_COMMON_PARALLEL_H_
#define STBURST_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace stburst {

struct ThreadPoolOptions {
  /// 0 means std::thread::hardware_concurrency() (min 1).
  size_t num_threads = 0;
  /// Pin worker i to core i % hardware_concurrency() (Linux only; advisory
  /// no-op elsewhere). Off by default: pinning helps steady-state mining
  /// sweeps on dedicated cores and hurts on oversubscribed hosts.
  bool pin_threads = false;
};

/// Fixed-size worker pool. Threads are created once and live until
/// destruction; Submit() enqueues work, Wait() blocks until all submitted
/// tasks finish. Destruction waits for pending work.
///
/// Scheduling: a task submitted from a pool worker (nested fan-out) goes to
/// that worker's own deque and is preferred LIFO — inner loops complete
/// before their enqueuer resumes scanning — while idle workers steal the
/// oldest entries FIFO. Tasks submitted from outside the pool are taken
/// FIFO from the injector. No cross-task ordering is guaranteed; callers
/// needing deterministic output write into index-addressed slots (what
/// ParallelFor's contract provides).
///
/// Thread-safety: Submit() and Wait() may be called concurrently from any
/// thread; tasks run concurrently with each other and with the submitter.
class ThreadPool {
 public:
  /// `num_threads` 0 means std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(size_t num_threads = 0);
  explicit ThreadPool(const ThreadPoolOptions& options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw; wrap user code that can.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void Wait();

  /// Pops and runs one task on the calling thread, if any; returns whether
  /// a task ran. A pool worker drains its own deque first, then the
  /// injector, then steals; other threads take from the injector or steal.
  /// This is how a thread that must wait for other work on the same pool
  /// lends its cycles instead of blocking: ParallelFor's completion wait
  /// calls it, which makes *nested* loops on one pool safe — an outer
  /// loop's workers drain the inner loops' chunks rather than deadlocking
  /// with every worker parked in an inner wait.
  bool TryRunOneTask();

 private:
  class Deque;  // per-worker Chase–Lev deque (parallel.cc)

  void WorkerLoop(size_t index);
  /// Own pop (workers) -> injector -> steal sweep; null when nothing ran.
  std::function<void()>* FindTask(size_t self, bool is_worker);
  bool HasVisibleWork();
  void FinishTask();

  std::vector<std::unique_ptr<Deque>> deques_;  // one per worker
  std::mutex injector_mu_;
  std::deque<std::function<void()>*> injector_;  // external submits, FIFO
  std::atomic<size_t> injector_size_{0};
  std::atomic<size_t> in_flight_{0};  // queued + executing
  std::atomic<int> sleepers_{0};
  std::atomic<bool> shutdown_{false};
  std::mutex mu_;  // sleep/wake and Wait only — never on the hand-off path
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::vector<std::thread> workers_;
};

/// Resolves a thread-count knob: 0 -> hardware concurrency, floor 1.
size_t ResolveThreadCount(size_t requested);

/// Invokes `body(worker, i)` for every i in [begin, end) across `pool`'s
/// workers with dynamic chunking. `worker` is a stable id in
/// [0, pool->num_threads()] usable to index per-worker scratch — size such
/// scratch pool->num_threads() + 1, since the calling thread participates
/// with the highest id. With a null pool or a single-index range, runs
/// serially on the calling thread with worker id 0.
///
/// The first exception thrown by any invocation is rethrown on the calling
/// thread once the loop has quiesced; remaining chunks are abandoned.
///
/// Reentrancy: the body may itself call ParallelFor on the same pool. The
/// completion wait is a helping wait (ThreadPool::TryRunOneTask), so nested
/// fan-out — e.g. a loop over runtime shards whose bodies fan per-term work
/// across the same standing pool — cannot deadlock on a saturated pool.
///
/// Thread-safety: `body` runs concurrently on multiple threads and must be
/// safe for that; per-worker scratch indexed by the worker id is the
/// sanctioned way to keep it allocation- and lock-free. The loop itself
/// costs O((end - begin) / chunk) atomic cursor bumps with chunk ≈
/// range / (8 · workers), and blocks the caller until every index ran.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t worker, size_t i)>& body);

/// Convenience overload: creates a transient pool of `num_threads` (see
/// ResolveThreadCount) for one loop. num_threads <= 1 runs serially without
/// spawning anything.
void ParallelFor(size_t num_threads, size_t begin, size_t end,
                 const std::function<void(size_t worker, size_t i)>& body);

}  // namespace stburst

#endif  // STBURST_COMMON_PARALLEL_H_
