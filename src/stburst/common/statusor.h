// StatusOr<T>: value-or-error, the companion of Status for functions that
// compute a result. Mirrors the Arrow Result<T> / abseil StatusOr<T> shape.

#ifndef STBURST_COMMON_STATUSOR_H_
#define STBURST_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "stburst/common/logging.h"
#include "stburst/common/status.h"

namespace stburst {

/// Holds either a T or a non-OK Status. Accessing the value of an errored
/// StatusOr is a checked programming error.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value (success).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status. Must not be OK: an OK status carries no value.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    STB_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  /// True iff a value is held.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is held.
  const Status& status() const { return status_; }

  /// Value accessors; require ok().
  const T& value() const& {
    STB_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    STB_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    STB_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or, on error, the provided default.
  T value_or(T default_value) const {
    return ok() ? *value_ : std::move(default_value);
  }

 private:
  Status status_;  // OK iff value_ holds.
  std::optional<T> value_;
};

/// Evaluates a StatusOr expression; on error returns its status, otherwise
/// assigns the value to `lhs`.
#define STB_ASSIGN_OR_RETURN(lhs, expr)                \
  STB_ASSIGN_OR_RETURN_IMPL_(                          \
      STB_STATUSOR_CONCAT_(_statusor_, __LINE__), lhs, expr)

#define STB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define STB_STATUSOR_CONCAT_(a, b) STB_STATUSOR_CONCAT_2_(a, b)
#define STB_STATUSOR_CONCAT_2_(a, b) a##b

}  // namespace stburst

#endif  // STBURST_COMMON_STATUSOR_H_
