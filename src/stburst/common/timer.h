// Wall-clock stopwatch for the performance harnesses (Figures 7 and 8).

#ifndef STBURST_COMMON_TIMER_H_
#define STBURST_COMMON_TIMER_H_

#include <chrono>

namespace stburst {

/// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace stburst

#endif  // STBURST_COMMON_TIMER_H_
