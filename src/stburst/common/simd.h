// Runtime-dispatched SIMD kernels for the mining hot paths.
//
// Scope is deliberately narrow: only *element-wise* operations, where the
// vector lanes carry independent columns and no floating-point fold is
// reassociated. Every kernel is therefore bit-identical across instruction
// sets — the AVX2 path and the scalar path produce the same doubles, so the
// miners' parity guarantees (thread-count invariance, online/batch
// equivalence, shared-binning vs per-call equality) hold regardless of
// which CPU runs them. Horizontal reductions (sums across a row) are NOT
// offered here precisely because they would break that contract.
//
// Dispatch policy: the ISA is resolved once per process — AVX2 when the
// binary targets x86, the CPU reports the feature, and the environment
// does not set STBURST_NO_AVX2=1; scalar otherwise. The AVX2 kernels are
// compiled with function-level target attributes, so the rest of the
// library keeps the portable baseline and the binary stays runnable on
// any x86-64 (and the scalar path builds cleanly on non-x86).

#ifndef STBURST_COMMON_SIMD_H_
#define STBURST_COMMON_SIMD_H_

#include <cstddef>

namespace stburst {
namespace simd {

/// Instruction sets the kernels can dispatch to.
enum class Isa { kScalar, kAvx2 };

/// True when this binary carries AVX2 kernels and the CPU supports them
/// (independent of STBURST_NO_AVX2).
bool Avx2Supported();

/// The ISA the kernels currently dispatch to. Resolved once on first use:
/// kAvx2 iff Avx2Supported() and STBURST_NO_AVX2 is unset/!=1.
Isa ActiveIsa();

/// "avx2" / "scalar" — for logs and bench output.
const char* IsaName(Isa isa);

/// Test/bench hook: force the dispatch to `isa` (kAvx2 requires
/// Avx2Supported()). Not thread-safe — call while no kernel is running,
/// e.g. before spawning workers. Returns the previously active ISA so
/// callers can restore it.
Isa SetIsaForTest(Isa isa);

/// dst[i] += src[i] for i in [0, n). Element-wise, no reassociation:
/// bit-identical on every ISA. The buffers must not overlap.
void AddInto(double* dst, const double* src, size_t n);

}  // namespace simd
}  // namespace stburst

#endif  // STBURST_COMMON_SIMD_H_
