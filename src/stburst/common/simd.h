// Runtime-dispatched SIMD kernels for the mining hot paths.
//
// Scope is deliberately narrow: with one documented exception, only
// *element-wise* operations, where the vector lanes carry independent
// columns and no floating-point fold is reassociated. Every element-wise
// kernel is therefore bit-identical across instruction sets — the AVX-512,
// AVX2, and scalar paths produce the same doubles, so the miners' parity
// guarantees (thread-count invariance, online/batch equivalence,
// shared-binning vs per-call equality) hold regardless of which CPU runs
// them. Horizontal reductions (sums across a row) are NOT offered as
// value-producing kernels precisely because they would break that contract.
//
// The one exception is MaxSubarrayMayExceed, the vectorized-Kadane
// admission scan: it reassociates float adds internally (blocked prefix
// scans), but its result is a *boolean pruning decision* padded with a
// provable rounding slack, never a score. Callers that prune on a `false`
// are exact — the slack guarantees no window that beats the threshold is
// ever missed — and callers that see `true` recover the winning window
// with the sequential scalar recurrence. Reported scores therefore remain
// sequential window sums on every ISA. This is the library's
// "reassociation boundary" (see ARCHITECTURE.md).
//
// Dispatch policy: the ISA is resolved once per process — the widest of
// {AVX-512, AVX2, scalar} that the binary carries, the CPU reports, and
// the environment does not veto. STBURST_NO_AVX2=1 forces scalar (it caps
// the whole ladder); STBURST_NO_AVX512=1 caps dispatch at AVX2. The vector
// kernels are compiled with function-level target attributes, so the rest
// of the library keeps the portable baseline and the binary stays runnable
// on any x86-64 (and the scalar path builds cleanly on non-x86).

#ifndef STBURST_COMMON_SIMD_H_
#define STBURST_COMMON_SIMD_H_

#include <cstddef>

namespace stburst {
namespace simd {

/// Instruction sets the kernels can dispatch to, narrowest first.
enum class Isa { kScalar, kAvx2, kAvx512 };

/// True when this binary carries AVX2 kernels and the CPU supports them
/// (independent of STBURST_NO_AVX2).
bool Avx2Supported();

/// True when this binary carries AVX-512 kernels and the CPU supports the
/// subsets they use (F + DQ), independent of STBURST_NO_AVX512.
bool Avx512Supported();

/// The ISA the kernels currently dispatch to. Resolved once on first use:
/// the widest supported level not vetoed by STBURST_NO_AVX2 /
/// STBURST_NO_AVX512 (=1 each; NO_AVX2 also implies no AVX-512).
Isa ActiveIsa();

/// "avx512" / "avx2" / "scalar" — for logs and bench output.
const char* IsaName(Isa isa);

/// Test/bench hook: force the dispatch to `isa` (kAvx2 requires
/// Avx2Supported(), kAvx512 requires Avx512Supported()). Not thread-safe —
/// call while no kernel is running, e.g. before spawning workers. Returns
/// the previously active ISA so callers can restore it.
Isa SetIsaForTest(Isa isa);

/// dst[i] += src[i] for i in [0, n). Element-wise, no reassociation:
/// bit-identical on every ISA. The buffers must not overlap.
void AddInto(double* dst, const double* src, size_t n);

/// dst[i] += scale * src[i] for i in [0, n). The multiply and add round
/// separately on every path (this translation unit builds with
/// -ffp-contract=off, so neither the scalar loop nor the vector bodies may
/// contract to FMA): bit-identical on every ISA. Buffers must not overlap.
void AddScaledInto(double* dst, const double* src, double scale, size_t n);

/// dst[i] = max(dst[i], src[i]) for i in [0, n), with exactly the
/// vmaxpd tie/zero convention: (dst > src) ? dst : src, so equal values
/// and +0/-0 pairs take src. Inputs must not be NaN. Element-wise,
/// bit-identical on every ISA. Buffers must not overlap.
void MaxInto(double* dst, const double* src, size_t n);

/// cells[idx[i]] = 0.0 for i in [0, n) — the touched-cell reset behind the
/// epoch-stamped scatter in discrepancy.cc. Duplicate indices are allowed
/// (every store writes the same zero). On AVX-512 this issues masked
/// 64-bit-index scatters; narrower ISAs use the scalar loop. The result is
/// the same cells either way, so the bit-identity contract holds.
void ScatterZero(double* cells, const size_t* idx, size_t n);

/// Vectorized-Kadane admission scan — the reassociation boundary.
///
/// Decides whether the best (non-empty, contiguous) subarray sum of
/// a[0..n) can exceed `threshold`. The vector paths evaluate the
/// prefix-sum/prefix-max reformulation
///
///     kadane = max_j(prefix[j] - min_prefix[<j])
///
/// with 8-lane (AVX-512) or 4-lane (AVX2) blocked scans, then pad the
/// result with slack = 8 * n * eps * sum(|a[i]|), which dominates the
/// worst-case rounding divergence between the blocked and sequential
/// prefix sums for any n < 2^40. Guarantees:
///
///   - returns false only when NO window's sequential (scalar) sum
///     exceeds threshold — pruning on false is exact on every ISA;
///   - may return true conservatively (rounding slack, and on the vector
///     paths the bound can also include the empty window for padded
///     blocks); callers must confirm with the exact scalar recurrence.
///
/// The scalar dispatch level runs the exact sequential Kadane recurrence
/// (no slack). Arrays carrying exclusion poison (magnitudes near 1e18,
/// e.g. core/discrepancy.h kExcludedWeight) inflate the slack until the
/// filter stops pruning — still correct, just no faster than scalar.
/// n == 0 returns false.
bool MaxSubarrayMayExceed(const double* a, size_t n, double threshold);

}  // namespace simd
}  // namespace stburst

#endif  // STBURST_COMMON_SIMD_H_
