#include "stburst/common/simd.h"

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define STBURST_SIMD_X86 1
#include <immintrin.h>
#else
#define STBURST_SIMD_X86 0
#endif

// This translation unit must build with -ffp-contract=off (enforced in
// CMakeLists.txt): AddScaledInto's bit-identity contract requires the
// multiply and add to round separately on every path, and both the scalar
// loop here and the AVX-512 bodies (whose target carries FMA) would
// otherwise be eligible for contraction.

namespace stburst {
namespace simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar kernels — the portable reference every vector variant must match
// bit-for-bit (except MayExceed, which is a pruning decision, not a value).
// ---------------------------------------------------------------------------

void AddIntoScalar(double* dst, const double* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void AddScaledIntoScalar(double* dst, const double* src, double scale,
                         size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += scale * src[i];
}

// Mirrors vmaxpd exactly: (a > b) ? a : b, so ties and +0/-0 take src.
void MaxIntoScalar(double* dst, const double* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = dst[i] > src[i] ? dst[i] : src[i];
}

void ScatterZeroScalar(double* cells, const size_t* idx, size_t n) {
  for (size_t i = 0; i < n; ++i) cells[idx[i]] = 0.0;
}

// Exact sequential Kadane (non-empty windows): the scalar dispatch level
// answers MayExceed with no slack at all.
bool MayExceedScalar(const double* a, size_t n, double threshold) {
  if (n == 0) return false;
  double best = a[0];
  double run = a[0];
  for (size_t i = 1; i < n; ++i) {
    run = run > 0.0 ? run + a[i] : a[i];
    if (run > best) best = run;
  }
  return best > threshold;
}

#if STBURST_SIMD_X86

// ---------------------------------------------------------------------------
// AVX2 kernels. Compiled with function-level target attributes so the
// translation unit (and the rest of the library) keeps the portable
// baseline; these bodies are only reached after the runtime CPU check.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) void AddIntoAvx2(double* dst,
                                                 const double* src, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_loadu_pd(src + i)));
    _mm256_storeu_pd(dst + i + 4, _mm256_add_pd(_mm256_loadu_pd(dst + i + 4),
                                                _mm256_loadu_pd(src + i + 4)));
    _mm256_storeu_pd(dst + i + 8, _mm256_add_pd(_mm256_loadu_pd(dst + i + 8),
                                                _mm256_loadu_pd(src + i + 8)));
    _mm256_storeu_pd(dst + i + 12,
                     _mm256_add_pd(_mm256_loadu_pd(dst + i + 12),
                                   _mm256_loadu_pd(src + i + 12)));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

__attribute__((target("avx2"))) void AddScaledIntoAvx2(double* dst,
                                                       const double* src,
                                                       double scale,
                                                       size_t n) {
  const __m256d vs = _mm256_set1_pd(scale);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(
        dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i),
                               _mm256_mul_pd(vs, _mm256_loadu_pd(src + i))));
    _mm256_storeu_pd(dst + i + 4,
                     _mm256_add_pd(_mm256_loadu_pd(dst + i + 4),
                                   _mm256_mul_pd(
                                       vs, _mm256_loadu_pd(src + i + 4))));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i),
                               _mm256_mul_pd(vs, _mm256_loadu_pd(src + i))));
  }
  for (; i < n; ++i) dst[i] += scale * src[i];
}

__attribute__((target("avx2"))) void MaxIntoAvx2(double* dst,
                                                 const double* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_max_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] = dst[i] > src[i] ? dst[i] : src[i];
}

// Lane shifts toward higher index with an explicit fill lane — the scan
// primitives. always_inline keeps them inside their target("avx2") callers.
__attribute__((target("avx2"), always_inline)) inline __m256d Shl1Avx2(
    __m256d v, __m256d fill) {
  return _mm256_blend_pd(_mm256_permute4x64_pd(v, _MM_SHUFFLE(2, 1, 0, 0)),
                         fill, 0x1);
}

__attribute__((target("avx2"), always_inline)) inline __m256d Shl2Avx2(
    __m256d v, __m256d fill) {
  return _mm256_blend_pd(_mm256_permute4x64_pd(v, _MM_SHUFFLE(1, 0, 0, 0)),
                         fill, 0x3);
}

__attribute__((target("avx2"), always_inline)) inline double Lane3Avx2(
    __m256d v) {
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  return _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
}

__attribute__((target("avx2"), always_inline)) inline double HMinAvx2(
    __m256d v) {
  __m128d m = _mm_min_pd(_mm256_castpd256_pd128(v),
                         _mm256_extractf128_pd(v, 1));
  m = _mm_min_sd(m, _mm_unpackhi_pd(m, m));
  return _mm_cvtsd_f64(m);
}

__attribute__((target("avx2"), always_inline)) inline double HMaxAvx2(
    __m256d v) {
  __m128d m = _mm_max_pd(_mm256_castpd256_pd128(v),
                         _mm256_extractf128_pd(v, 1));
  m = _mm_max_sd(m, _mm_unpackhi_pd(m, m));
  return _mm_cvtsd_f64(m);
}

__attribute__((target("avx2"), always_inline)) inline double HSumAvx2(
    __m256d v) {
  __m128d s = _mm_add_pd(_mm256_castpd256_pd128(v),
                         _mm256_extractf128_pd(v, 1));
  s = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
  return _mm_cvtsd_f64(s);
}

// The prefix-sum/prefix-max reformulation, 4 columns per step: within each
// block an inclusive sum-scan builds the prefixes, a shifted inclusive
// min-scan builds the exclusive prefix minima, and the block's best
// (prefix[j] - min_prefix[<j]) folds into a running vector max. Scalar
// carries (last prefix, running prefix minimum) stitch blocks together.
__attribute__((target("avx2"))) bool MayExceedAvx2(const double* a, size_t n,
                                                   double threshold) {
  if (n == 0) return false;
  double carry = 0.0;       // prefix sum entering the next block
  double carry_min = 0.0;   // min prefix so far, incl. the empty prefix 0
  double best = -HUGE_VAL;
  double abs_sum = 0.0;
  size_t i = 0;
  if (n >= 4) {
    const __m256d zero = _mm256_setzero_pd();
    const __m256d inf = _mm256_set1_pd(HUGE_VAL);
    const __m256d sign = _mm256_set1_pd(-0.0);
    __m256d vbest = _mm256_set1_pd(-HUGE_VAL);
    __m256d vabs = zero;
    for (; i + 4 <= n; i += 4) {
      const __m256d v = _mm256_loadu_pd(a + i);
      vabs = _mm256_add_pd(vabs, _mm256_andnot_pd(sign, v));
      __m256d s = _mm256_add_pd(v, Shl1Avx2(v, zero));
      s = _mm256_add_pd(s, Shl2Avx2(s, zero));
      const __m256d p = _mm256_add_pd(s, _mm256_set1_pd(carry));
      __m256d e = Shl1Avx2(p, inf);  // lane j: prefix[j-1]
      e = _mm256_min_pd(e, Shl1Avx2(e, inf));
      e = _mm256_min_pd(e, Shl2Avx2(e, inf));
      const __m256d m = _mm256_min_pd(e, _mm256_set1_pd(carry_min));
      vbest = _mm256_max_pd(vbest, _mm256_sub_pd(p, m));
      carry_min = std::min(carry_min, HMinAvx2(p));
      carry = Lane3Avx2(p);
    }
    best = HMaxAvx2(vbest);
    abs_sum = HSumAvx2(vabs);  // reassociated — feeds the slack only
  }
  for (; i < n; ++i) {
    const double x = a[i];
    abs_sum += std::fabs(x);
    const double p = carry + x;
    best = std::max(best, p - carry_min);
    carry_min = std::min(carry_min, p);
    carry = p;
  }
  const double slack =
      8.0 * static_cast<double>(n) * DBL_EPSILON * abs_sum;
  return best + slack > threshold;
}

// ---------------------------------------------------------------------------
// AVX-512 kernels (F + DQ). Same contracts, 8 lanes.
// ---------------------------------------------------------------------------

#define STBURST_AVX512 "avx512f,avx512dq"

__attribute__((target(STBURST_AVX512))) void AddIntoAvx512(double* dst,
                                                           const double* src,
                                                           size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_pd(dst + i, _mm512_add_pd(_mm512_loadu_pd(dst + i),
                                            _mm512_loadu_pd(src + i)));
    _mm512_storeu_pd(dst + i + 8, _mm512_add_pd(_mm512_loadu_pd(dst + i + 8),
                                                _mm512_loadu_pd(src + i + 8)));
  }
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(dst + i, _mm512_add_pd(_mm512_loadu_pd(dst + i),
                                            _mm512_loadu_pd(src + i)));
  }
  if (i < n) {
    const __mmask8 m = static_cast<__mmask8>((1u << (n - i)) - 1u);
    _mm512_mask_storeu_pd(
        dst + i, m,
        _mm512_add_pd(_mm512_maskz_loadu_pd(m, dst + i),
                      _mm512_maskz_loadu_pd(m, src + i)));
  }
}

__attribute__((target(STBURST_AVX512))) void AddScaledIntoAvx512(
    double* dst, const double* src, double scale, size_t n) {
  const __m512d vs = _mm512_set1_pd(scale);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(
        dst + i, _mm512_add_pd(_mm512_loadu_pd(dst + i),
                               _mm512_mul_pd(vs, _mm512_loadu_pd(src + i))));
  }
  if (i < n) {
    const __mmask8 m = static_cast<__mmask8>((1u << (n - i)) - 1u);
    _mm512_mask_storeu_pd(
        dst + i, m,
        _mm512_add_pd(_mm512_maskz_loadu_pd(m, dst + i),
                      _mm512_mul_pd(vs, _mm512_maskz_loadu_pd(m, src + i))));
  }
}

__attribute__((target(STBURST_AVX512))) void MaxIntoAvx512(double* dst,
                                                           const double* src,
                                                           size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(dst + i, _mm512_max_pd(_mm512_loadu_pd(dst + i),
                                            _mm512_loadu_pd(src + i)));
  }
  if (i < n) {
    const __mmask8 m = static_cast<__mmask8>((1u << (n - i)) - 1u);
    // maskz fill is 0.0 on both sides; max(0,0) = 0 and the store is
    // masked, so inactive lanes never land.
    _mm512_mask_storeu_pd(
        dst + i, m,
        _mm512_max_pd(_mm512_maskz_loadu_pd(m, dst + i),
                      _mm512_maskz_loadu_pd(m, src + i)));
  }
}

__attribute__((target(STBURST_AVX512))) void ScatterZeroAvx512(
    double* cells, const size_t* idx, size_t n) {
  static_assert(sizeof(size_t) == sizeof(int64_t),
                "64-bit indices required for i64scatter");
  const __m512d zero = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_i64scatter_pd(
        cells, _mm512_loadu_si512(static_cast<const void*>(idx + i)), zero,
        8);
  }
  if (i < n) {
    const __mmask8 m = static_cast<__mmask8>((1u << (n - i)) - 1u);
    _mm512_mask_i64scatter_pd(
        cells, m,
        _mm512_maskz_loadu_epi64(m, static_cast<const void*>(idx + i)), zero,
        8);
  }
}

// Lane shifts by k with an explicit fill: valignq over the fill:value
// concatenation. k is an immediate, hence three helpers.
__attribute__((target(STBURST_AVX512), always_inline)) inline __m512d
Shl1Avx512(__m512d v, __m512d fill) {
  return _mm512_castsi512_pd(_mm512_alignr_epi64(
      _mm512_castpd_si512(v), _mm512_castpd_si512(fill), 7));
}

__attribute__((target(STBURST_AVX512), always_inline)) inline __m512d
Shl2Avx512(__m512d v, __m512d fill) {
  return _mm512_castsi512_pd(_mm512_alignr_epi64(
      _mm512_castpd_si512(v), _mm512_castpd_si512(fill), 6));
}

__attribute__((target(STBURST_AVX512), always_inline)) inline __m512d
Shl4Avx512(__m512d v, __m512d fill) {
  return _mm512_castsi512_pd(_mm512_alignr_epi64(
      _mm512_castpd_si512(v), _mm512_castpd_si512(fill), 4));
}

__attribute__((target(STBURST_AVX512), always_inline)) inline double
Lane7Avx512(__m512d v) {
  const __m256d hi = _mm512_extractf64x4_pd(v, 1);
  const __m128d hi2 = _mm256_extractf128_pd(hi, 1);
  return _mm_cvtsd_f64(_mm_unpackhi_pd(hi2, hi2));
}

// Same scan as MayExceedAvx2 with 8 columns per step (three scan levels).
__attribute__((target(STBURST_AVX512))) bool MayExceedAvx512(
    const double* a, size_t n, double threshold) {
  if (n == 0) return false;
  double carry = 0.0;
  double carry_min = 0.0;
  double best = -HUGE_VAL;
  double abs_sum = 0.0;
  size_t i = 0;
  if (n >= 8) {
    const __m512d zero = _mm512_setzero_pd();
    const __m512d inf = _mm512_set1_pd(HUGE_VAL);
    __m512d vbest = _mm512_set1_pd(-HUGE_VAL);
    __m512d vabs = zero;
    for (; i + 8 <= n; i += 8) {
      const __m512d v = _mm512_loadu_pd(a + i);
      vabs = _mm512_add_pd(vabs, _mm512_abs_pd(v));
      __m512d s = _mm512_add_pd(v, Shl1Avx512(v, zero));
      s = _mm512_add_pd(s, Shl2Avx512(s, zero));
      s = _mm512_add_pd(s, Shl4Avx512(s, zero));
      const __m512d p = _mm512_add_pd(s, _mm512_set1_pd(carry));
      __m512d e = Shl1Avx512(p, inf);  // lane j: prefix[j-1]
      e = _mm512_min_pd(e, Shl1Avx512(e, inf));
      e = _mm512_min_pd(e, Shl2Avx512(e, inf));
      e = _mm512_min_pd(e, Shl4Avx512(e, inf));
      const __m512d m = _mm512_min_pd(e, _mm512_set1_pd(carry_min));
      vbest = _mm512_max_pd(vbest, _mm512_sub_pd(p, m));
      carry_min = std::min(carry_min, _mm512_reduce_min_pd(p));
      carry = Lane7Avx512(p);
    }
    best = _mm512_reduce_max_pd(vbest);
    abs_sum = _mm512_reduce_add_pd(vabs);  // reassociated — slack only
  }
  for (; i < n; ++i) {
    const double x = a[i];
    abs_sum += std::fabs(x);
    const double p = carry + x;
    best = std::max(best, p - carry_min);
    carry_min = std::min(carry_min, p);
    carry = p;
  }
  const double slack =
      8.0 * static_cast<double>(n) * DBL_EPSILON * abs_sum;
  return best + slack > threshold;
}

#undef STBURST_AVX512

#endif  // STBURST_SIMD_X86

// The dispatch state, resolved once (thread-safe via static-local init).
// SetIsaForTest mutates it from a quiesced state, so a plain struct is
// enough — no atomics on the kernel call path.
struct Dispatch {
  Isa isa;
  void (*add_into)(double*, const double*, size_t);
  void (*add_scaled_into)(double*, const double*, double, size_t);
  void (*max_into)(double*, const double*, size_t);
  void (*scatter_zero)(double*, const size_t*, size_t);
  bool (*may_exceed)(const double*, size_t, double);
};

Dispatch MakeDispatch(Isa isa) {
#if STBURST_SIMD_X86
  if (isa == Isa::kAvx512 && Avx512Supported()) {
    return {Isa::kAvx512,    &AddIntoAvx512, &AddScaledIntoAvx512,
            &MaxIntoAvx512,  &ScatterZeroAvx512, &MayExceedAvx512};
  }
  if (isa != Isa::kScalar && Avx2Supported()) {
    // AVX2 has no scatter; that kernel stays scalar at this level.
    return {Isa::kAvx2,     &AddIntoAvx2, &AddScaledIntoAvx2,
            &MaxIntoAvx2,   &ScatterZeroScalar, &MayExceedAvx2};
  }
#endif
  return {Isa::kScalar,     &AddIntoScalar, &AddScaledIntoScalar,
          &MaxIntoScalar,   &ScatterZeroScalar, &MayExceedScalar};
}

bool EnvSetToOne(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && std::strcmp(v, "1") == 0;
}

Isa ResolveIsa() {
  if (EnvSetToOne("STBURST_NO_AVX2")) return Isa::kScalar;
  if (Avx512Supported() && !EnvSetToOne("STBURST_NO_AVX512")) {
    return Isa::kAvx512;
  }
  return Avx2Supported() ? Isa::kAvx2 : Isa::kScalar;
}

Dispatch& ActiveDispatch() {
  static Dispatch dispatch = MakeDispatch(ResolveIsa());
  return dispatch;
}

}  // namespace

bool Avx2Supported() {
#if STBURST_SIMD_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool Avx512Supported() {
#if STBURST_SIMD_X86
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0;
#else
  return false;
#endif
}

Isa ActiveIsa() { return ActiveDispatch().isa; }

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kAvx512:
      return "avx512";
    case Isa::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

Isa SetIsaForTest(Isa isa) {
  Dispatch& dispatch = ActiveDispatch();
  const Isa previous = dispatch.isa;
  dispatch = MakeDispatch(isa);
  return previous;
}

void AddInto(double* dst, const double* src, size_t n) {
  ActiveDispatch().add_into(dst, src, n);
}

void AddScaledInto(double* dst, const double* src, double scale, size_t n) {
  ActiveDispatch().add_scaled_into(dst, src, scale, n);
}

void MaxInto(double* dst, const double* src, size_t n) {
  ActiveDispatch().max_into(dst, src, n);
}

void ScatterZero(double* cells, const size_t* idx, size_t n) {
  ActiveDispatch().scatter_zero(cells, idx, n);
}

bool MaxSubarrayMayExceed(const double* a, size_t n, double threshold) {
  return ActiveDispatch().may_exceed(a, n, threshold);
}

}  // namespace simd
}  // namespace stburst
