#include "stburst/common/simd.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define STBURST_SIMD_X86 1
#include <immintrin.h>
#else
#define STBURST_SIMD_X86 0
#endif

namespace stburst {
namespace simd {

namespace {

void AddIntoScalar(double* dst, const double* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += src[i];
}

#if STBURST_SIMD_X86
// Compiled with a function-level target attribute so the translation unit
// (and the rest of the library) keeps the portable baseline; only this body
// may emit AVX2 instructions, and it is only ever reached after the runtime
// CPU check below.
__attribute__((target("avx2"))) void AddIntoAvx2(double* dst,
                                                 const double* src, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_loadu_pd(src + i)));
    _mm256_storeu_pd(dst + i + 4, _mm256_add_pd(_mm256_loadu_pd(dst + i + 4),
                                                _mm256_loadu_pd(src + i + 4)));
    _mm256_storeu_pd(dst + i + 8, _mm256_add_pd(_mm256_loadu_pd(dst + i + 8),
                                                _mm256_loadu_pd(src + i + 8)));
    _mm256_storeu_pd(dst + i + 12,
                     _mm256_add_pd(_mm256_loadu_pd(dst + i + 12),
                                   _mm256_loadu_pd(src + i + 12)));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}
#endif  // STBURST_SIMD_X86

// The dispatch state, resolved once (thread-safe via static-local init).
// SetIsaForTest mutates it from a quiesced state, so a plain struct is
// enough — no atomics on the kernel call path.
struct Dispatch {
  Isa isa;
  void (*add_into)(double*, const double*, size_t);
};

Dispatch MakeDispatch(Isa isa) {
#if STBURST_SIMD_X86
  if (isa == Isa::kAvx2) return {Isa::kAvx2, &AddIntoAvx2};
#endif
  return {Isa::kScalar, &AddIntoScalar};
}

bool DisabledByEnv() {
  const char* v = std::getenv("STBURST_NO_AVX2");
  return v != nullptr && std::strcmp(v, "1") == 0;
}

Dispatch& ActiveDispatch() {
  static Dispatch dispatch = MakeDispatch(
      Avx2Supported() && !DisabledByEnv() ? Isa::kAvx2 : Isa::kScalar);
  return dispatch;
}

}  // namespace

bool Avx2Supported() {
#if STBURST_SIMD_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Isa ActiveIsa() { return ActiveDispatch().isa; }

const char* IsaName(Isa isa) {
  return isa == Isa::kAvx2 ? "avx2" : "scalar";
}

Isa SetIsaForTest(Isa isa) {
  Dispatch& dispatch = ActiveDispatch();
  const Isa previous = dispatch.isa;
  dispatch = MakeDispatch(isa);
  return previous;
}

void AddInto(double* dst, const double* src, size_t n) {
  ActiveDispatch().add_into(dst, src, n);
}

}  // namespace simd
}  // namespace stburst
