#include "stburst/common/fault_injection.h"

#ifdef STBURST_FAULT_INJECTION

#include <atomic>
#include <new>

#include "stburst/common/logging.h"
#include "stburst/common/string_util.h"

namespace stburst::fault {

namespace {

// One registry slot per site. Hit counting and the armed trigger are
// lock-free so pool workers pay two relaxed atomic ops per pass-through
// hit; arming/disarming happens only on the (externally serialized) test
// thread.
struct SiteState {
  const char* name;
  std::atomic<size_t> hits{0};
  std::atomic<size_t> fail_at_hit{0};  // 0 = disarmed
  std::atomic<int> kind{0};            // FailureKind when armed
};

// The central registry: every STBURST_FAULT_POINT* site in the library.
// Keep in lockstep with the call sites — MaybeFail CHECK-fails on an
// unregistered name, so a site added in code but not here dies loudly the
// first time it runs in a fault build, and the sweep test (which iterates
// this list) proves tick atomicity for every entry.
SiteState g_sites[] = {
    {"collection.append"},        // Collection::Append, before any mutation
    {"collection.evict"},         // Collection::EvictBefore, before any mutation
    {"frequency.append_splice"},  // per-term splice worker in AppendSnapshot
    {"frequency.evict"},          // per-term evict worker in EvictBefore
    {"batch_miner.mine_term"},    // per-term mining worker (MineAllTerms /
                                  // RemineTerms / staged re-mines)
    {"runtime.remine"},           // FeedRuntime staging, before the re-mine
    {"runtime.search_update"},    // per-term search-posting staging (pool
                                  // workers in StageSearchPostings)
    {"index.evict"},              // InvertedIndex::EvictBefore, before any
                                  // mutation
    {"runtime.publish"},          // after the next search snapshot is fully
                                  // built, before its publication swap
    {"sharded.commit"},           // ShardedRuntime::Tick, after every shard
                                  // staged cleanly and before the first
                                  // shard commits (never hit by an
                                  // unsharded FeedRuntime::Tick)
    {"history.fold"},             // FeedRuntime ingest, on an evicting tick
                                  // with history on, before the evicted
                                  // postings fold into the cold tier
};

SiteState* FindSite(std::string_view name) {
  for (SiteState& site : g_sites) {
    if (name == site.name) return &site;
  }
  return nullptr;
}

SiteState* FindSiteOrDie(std::string_view name) {
  SiteState* site = FindSite(name);
  STB_CHECK(site != nullptr) << "unregistered fault-injection site \"" << name
                             << "\" (add it to fault_injection.cc)";
  return site;
}

// Returns the failure to apply for this hit, or FailureKind-as-(-1) when
// the hit passes through.
int CountHit(SiteState* site) {
  const size_t hit = site->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  const size_t fail_at = site->fail_at_hit.load(std::memory_order_relaxed);
  if (fail_at == 0 || hit != fail_at) return -1;
  return site->kind.load(std::memory_order_relaxed);
}

}  // namespace

std::vector<std::string_view> RegisteredSites() {
  std::vector<std::string_view> names;
  for (const SiteState& site : g_sites) names.emplace_back(site.name);
  return names;
}

void Arm(std::string_view name, size_t nth_hit, FailureKind kind) {
  STB_CHECK(nth_hit > 0) << "fault sites arm on a 1-based hit count";
  SiteState* site = FindSiteOrDie(name);
  site->hits.store(0, std::memory_order_relaxed);
  site->kind.store(static_cast<int>(kind), std::memory_order_relaxed);
  site->fail_at_hit.store(nth_hit, std::memory_order_relaxed);
}

void DisarmAll() {
  for (SiteState& site : g_sites) {
    site.fail_at_hit.store(0, std::memory_order_relaxed);
    site.hits.store(0, std::memory_order_relaxed);
  }
}

size_t HitCount(std::string_view name) {
  return FindSiteOrDie(name)->hits.load(std::memory_order_relaxed);
}

namespace internal {

Status MaybeFail(const char* name) {
  const int kind = CountHit(FindSiteOrDie(name));
  if (kind < 0) return Status::OK();
  if (kind == static_cast<int>(FailureKind::kBadAlloc)) throw std::bad_alloc();
  return Status::Internal(
      StringPrintf("injected fault at \"%s\"", name));
}

void MaybeFailThrow(const char* name) {
  const int kind = CountHit(FindSiteOrDie(name));
  if (kind < 0) return;
  if (kind == static_cast<int>(FailureKind::kBadAlloc)) throw std::bad_alloc();
  throw FaultInjected(
      StringPrintf("injected fault at \"%s\"", name));
}

}  // namespace internal

}  // namespace stburst::fault

#endif  // STBURST_FAULT_INJECTION
