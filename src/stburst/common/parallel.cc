#include "stburst/common/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>

namespace stburst {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = ResolveThreadCount(num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> task;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
  }
  task();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (--in_flight_ == 0) all_done_.notify_all();
  }
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

size_t ResolveThreadCount(size_t requested) {
  if (requested > 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

namespace {

// Shared state of one ParallelFor call: the chunk cursor, a per-call
// completion latch (so concurrent loops on a shared pool don't wait on each
// other), and the first captured exception.
struct LoopState {
  std::atomic<size_t> next{0};
  size_t end = 0;
  size_t chunk = 1;
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::condition_variable done;
  size_t outstanding = 0;
  std::exception_ptr error;
};

void RunChunks(LoopState* state, size_t worker,
               const std::function<void(size_t, size_t)>& body) {
  for (;;) {
    if (state->failed.load(std::memory_order_relaxed)) return;
    size_t start = state->next.fetch_add(state->chunk, std::memory_order_relaxed);
    if (start >= state->end) return;
    size_t stop = std::min(state->end, start + state->chunk);
    try {
      for (size_t i = start; i < stop; ++i) body(worker, i);
    } catch (...) {
      std::unique_lock<std::mutex> lock(state->mu);
      if (!state->error) state->error = std::current_exception();
      state->failed.store(true, std::memory_order_relaxed);
      return;
    }
  }
}

}  // namespace

void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& body) {
  if (end <= begin) return;
  const size_t n = end - begin;
  const size_t helpers = pool == nullptr ? 0 : pool->num_threads();
  if (helpers == 0 || n == 1) {
    for (size_t i = begin; i < end; ++i) body(0, i);
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->next.store(begin);
  state->end = end;
  // ~8 chunks per worker balances Zipf-skewed per-item costs against cursor
  // contention.
  state->chunk = std::max<size_t>(1, n / (8 * (helpers + 1)));
  state->outstanding = helpers;

  for (size_t w = 0; w < helpers; ++w) {
    pool->Submit([state, w, &body] {
      RunChunks(state.get(), w, body);
      std::unique_lock<std::mutex> lock(state->mu);
      if (--state->outstanding == 0) state->done.notify_all();
    });
  }
  // The calling thread participates with the highest worker id.
  RunChunks(state.get(), helpers, body);
  // Helping wait: while this loop's helper tasks are outstanding, run other
  // queued pool tasks instead of blocking. A helper of *this* loop may be
  // queued behind tasks of a sibling loop (nested fan-out on a shared
  // pool); executing whatever is at the head keeps every loop progressing.
  // The timed wait covers the gap where the queue is empty but a nested
  // body is about to submit — our own helpers' completion still notifies
  // promptly through `done`.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state->mu);
      if (state->outstanding == 0) break;
    }
    if (pool->TryRunOneTask()) continue;
    std::unique_lock<std::mutex> lock(state->mu);
    state->done.wait_for(lock, std::chrono::milliseconds(1),
                         [&] { return state->outstanding == 0; });
  }
  if (state->error) std::rethrow_exception(state->error);
}

void ParallelFor(size_t num_threads, size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& body) {
  size_t n = ResolveThreadCount(num_threads);
  if (n <= 1) {
    ParallelFor(nullptr, begin, end, body);
    return;
  }
  // The calling thread works too, so one fewer pool thread suffices.
  ThreadPool pool(n - 1);
  ParallelFor(&pool, begin, end, body);
}

}  // namespace stburst
