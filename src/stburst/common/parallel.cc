#include "stburst/common/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace stburst {

namespace {

// Which pool (if any) the current thread is a worker of, and its deque
// index there. Nested submits from a worker route to its own deque; every
// other thread is external and goes through the injector.
struct WorkerSlot {
  ThreadPool* pool = nullptr;
  size_t index = 0;
};
thread_local WorkerSlot tls_worker;

}  // namespace

// Chase–Lev work-stealing deque over heap-allocated task pointers. The
// owner pushes and pops at the bottom (LIFO), thieves CAS the top (FIFO).
//
// This is the C11 formulation (Lê et al., "Correct and efficient
// work-stealing for weak memory models") with every ordered access at
// seq_cst and NO standalone fences: ThreadSanitizer does not model
// std::atomic_thread_fence, and the TSan CI leg is a hard gate, so the
// classic fence-based variant would report false races. The extra strength
// costs little here — tasks are chunky (ParallelFor chunks, per-term
// mines), so deque traffic is far off the critical path of the work itself.
//
// Grown buffers are retired, not freed, until the deque dies: a thief may
// still hold the old buffer pointer and read a stale slot, which the CAS on
// top_ then rejects. Slots are atomic pointers so that benign overlap
// (owner wrapping a slot a thief is reading before its CAS fails) is
// race-free at the language level too.
class ThreadPool::Deque {
 public:
  Deque() : buffer_(new Buffer(kInitialCapacity)) {}

  ~Deque() {
    delete buffer_.load(std::memory_order_relaxed);
    for (Buffer* b : retired_) delete b;
  }

  // Owner only.
  void Push(std::function<void()>* task) {
    const int64_t b = bottom_.load();
    const int64_t t = top_.load();
    Buffer* buf = buffer_.load();
    if (b - t >= buf->capacity) {
      Buffer* bigger = new Buffer(buf->capacity * 2);
      for (int64_t i = t; i < b; ++i) bigger->Put(i, buf->Get(i));
      retired_.push_back(buf);
      buffer_.store(bigger);
      buf = bigger;
    }
    buf->Put(b, task);
    bottom_.store(b + 1);
  }

  // Owner only. Null when empty (or when a thief won the last element).
  std::function<void()>* Pop() {
    const int64_t b = bottom_.load() - 1;
    Buffer* buf = buffer_.load();
    bottom_.store(b);
    int64_t t = top_.load();
    if (t > b) {  // already empty
      bottom_.store(b + 1);
      return nullptr;
    }
    std::function<void()>* task = buf->Get(b);
    if (t == b) {
      // Last element: race the thieves for it via the same CAS they use.
      if (!top_.compare_exchange_strong(t, t + 1)) task = nullptr;
      bottom_.store(b + 1);
    }
    return task;
  }

  // Any thread. Null on empty or lost race.
  std::function<void()>* Steal() {
    int64_t t = top_.load();
    const int64_t b = bottom_.load();
    if (t >= b) return nullptr;
    Buffer* buf = buffer_.load();
    std::function<void()>* task = buf->Get(t);
    if (!top_.compare_exchange_strong(t, t + 1)) return nullptr;
    return task;
  }

  bool NonEmpty() const { return bottom_.load() > top_.load(); }

 private:
  struct Buffer {
    explicit Buffer(int64_t cap)
        : capacity(cap),
          slots(new std::atomic<std::function<void()>*>[cap]) {}
    ~Buffer() { delete[] slots; }
    std::function<void()>* Get(int64_t i) const {
      return slots[i & (capacity - 1)].load();
    }
    void Put(int64_t i, std::function<void()>* v) {
      slots[i & (capacity - 1)].store(v);
    }
    const int64_t capacity;  // power of two
    std::atomic<std::function<void()>*>* slots;
  };

  static constexpr int64_t kInitialCapacity = 64;

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
  std::vector<Buffer*> retired_;  // owner-only; freed with the deque
};

ThreadPool::ThreadPool(size_t num_threads)
    : ThreadPool(ThreadPoolOptions{num_threads, false}) {}

ThreadPool::ThreadPool(const ThreadPoolOptions& options) {
  const size_t n = ResolveThreadCount(options.num_threads);
  deques_.reserve(n);
  for (size_t i = 0; i < n; ++i) deques_.push_back(std::make_unique<Deque>());
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
#if defined(__linux__)
  if (options.pin_threads) {
    const unsigned ncpu = std::max(1u, std::thread::hardware_concurrency());
    for (size_t i = 0; i < workers_.size(); ++i) {
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(static_cast<unsigned>(i) % ncpu, &set);
      pthread_setaffinity_np(workers_[i].native_handle(), sizeof(set), &set);
    }
  }
#endif
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_.store(true);
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  auto* t = new std::function<void()>(std::move(task));
  in_flight_.fetch_add(1);
  if (tls_worker.pool == this) {
    deques_[tls_worker.index]->Push(t);
  } else {
    std::lock_guard<std::mutex> lock(injector_mu_);
    injector_.push_back(t);
    injector_size_.fetch_add(1);
  }
  // Wake a sleeper if there might be one. The publish above and this load
  // are both seq_cst, as are the sleeper's counter bump and its predicate
  // check under mu_ — so either we observe the sleeper (and notify under
  // the same mutex its wait holds), or the sleeper's predicate observes
  // our work. No lost wakeup either way.
  if (sleepers_.load() > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    work_available_.notify_one();
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_.load() == 0; });
}

void ThreadPool::FinishTask() {
  if (in_flight_.fetch_sub(1) == 1) {
    std::lock_guard<std::mutex> lock(mu_);
    all_done_.notify_all();
  }
}

bool ThreadPool::HasVisibleWork() {
  if (injector_size_.load() > 0) return true;
  for (const std::unique_ptr<Deque>& d : deques_) {
    if (d->NonEmpty()) return true;
  }
  return false;
}

std::function<void()>* ThreadPool::FindTask(size_t self, bool is_worker) {
  if (is_worker) {
    if (std::function<void()>* t = deques_[self]->Pop()) return t;
  }
  if (injector_size_.load() > 0) {
    std::lock_guard<std::mutex> lock(injector_mu_);
    if (!injector_.empty()) {
      std::function<void()>* t = injector_.front();
      injector_.pop_front();
      injector_size_.fetch_sub(1);
      return t;
    }
  }
  const size_t n = deques_.size();
  const size_t start = is_worker ? self + 1 : 0;
  for (size_t k = 0; k < n; ++k) {
    const size_t victim = (start + k) % n;
    if (is_worker && victim == self) continue;
    if (std::function<void()>* t = deques_[victim]->Steal()) return t;
  }
  return nullptr;
}

bool ThreadPool::TryRunOneTask() {
  const bool is_worker = tls_worker.pool == this;
  std::function<void()>* t =
      FindTask(is_worker ? tls_worker.index : 0, is_worker);
  if (t == nullptr) return false;
  (*t)();
  delete t;
  FinishTask();
  return true;
}

void ThreadPool::WorkerLoop(size_t index) {
  tls_worker.pool = this;
  tls_worker.index = index;
  for (;;) {
    if (std::function<void()>* t = FindTask(index, /*is_worker=*/true)) {
      (*t)();
      delete t;
      FinishTask();
      continue;
    }
    // Nothing found (empty, or every steal lost its race): sleep until
    // work becomes visible. The predicate re-checks under mu_, pairing
    // with Submit's notify-under-mu_, so a task published between our scan
    // and the wait cannot be missed.
    std::unique_lock<std::mutex> lock(mu_);
    sleepers_.fetch_add(1);
    work_available_.wait(
        lock, [this] { return shutdown_.load() || HasVisibleWork(); });
    sleepers_.fetch_sub(1);
    if (shutdown_.load() && !HasVisibleWork()) {
      // Drained shutdown: a still-running task on another worker that
      // submits more work pushes to its *own* deque and its own loop (not
      // yet exited) runs it, so exiting here never orphans work.
      tls_worker.pool = nullptr;
      return;
    }
  }
}

size_t ResolveThreadCount(size_t requested) {
  if (requested > 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

namespace {

// Shared state of one ParallelFor call: the chunk cursor, a per-call
// completion latch (so concurrent loops on a shared pool don't wait on each
// other), and the first captured exception.
struct LoopState {
  std::atomic<size_t> next{0};
  size_t end = 0;
  size_t chunk = 1;
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::condition_variable done;
  size_t outstanding = 0;
  std::exception_ptr error;
};

void RunChunks(LoopState* state, size_t worker,
               const std::function<void(size_t, size_t)>& body) {
  for (;;) {
    if (state->failed.load(std::memory_order_relaxed)) return;
    size_t start = state->next.fetch_add(state->chunk, std::memory_order_relaxed);
    if (start >= state->end) return;
    size_t stop = std::min(state->end, start + state->chunk);
    try {
      for (size_t i = start; i < stop; ++i) body(worker, i);
    } catch (...) {
      std::unique_lock<std::mutex> lock(state->mu);
      if (!state->error) state->error = std::current_exception();
      state->failed.store(true, std::memory_order_relaxed);
      return;
    }
  }
}

}  // namespace

void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& body) {
  if (end <= begin) return;
  const size_t n = end - begin;
  const size_t helpers = pool == nullptr ? 0 : pool->num_threads();
  if (helpers == 0 || n == 1) {
    for (size_t i = begin; i < end; ++i) body(0, i);
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->next.store(begin);
  state->end = end;
  // ~8 chunks per worker balances Zipf-skewed per-item costs against cursor
  // contention.
  state->chunk = std::max<size_t>(1, n / (8 * (helpers + 1)));
  state->outstanding = helpers;

  for (size_t w = 0; w < helpers; ++w) {
    pool->Submit([state, w, &body] {
      RunChunks(state.get(), w, body);
      std::unique_lock<std::mutex> lock(state->mu);
      if (--state->outstanding == 0) state->done.notify_all();
    });
  }
  // The calling thread participates with the highest worker id.
  RunChunks(state.get(), helpers, body);
  // Helping wait: while this loop's helper tasks are outstanding, run other
  // queued pool tasks instead of blocking. A helper of *this* loop may be
  // queued behind tasks of a sibling loop (nested fan-out on a shared
  // pool); executing whatever TryRunOneTask finds keeps every loop
  // progressing. The timed wait covers the gap where no task is visible
  // but a nested body is about to submit — our own helpers' completion
  // still notifies promptly through `done`.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state->mu);
      if (state->outstanding == 0) break;
    }
    if (pool->TryRunOneTask()) continue;
    std::unique_lock<std::mutex> lock(state->mu);
    state->done.wait_for(lock, std::chrono::milliseconds(1),
                         [&] { return state->outstanding == 0; });
  }
  if (state->error) std::rethrow_exception(state->error);
}

void ParallelFor(size_t num_threads, size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& body) {
  size_t n = ResolveThreadCount(num_threads);
  if (n <= 1) {
    ParallelFor(nullptr, begin, end, body);
    return;
  }
  // The calling thread works too, so one fewer pool thread suffices.
  ThreadPool pool(n - 1);
  ParallelFor(&pool, begin, end, body);
}

}  // namespace stburst
