#include "stburst/common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace stburst {

std::vector<std::string> Split(std::string_view input, std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || delims.find(input[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t b = 0, e = input.size();
  while (b < e && std::isspace(static_cast<unsigned char>(input[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(input[e - 1]))) --e;
  return input.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace stburst
