#include "stburst/common/math_util.h"

#include <algorithm>
#include <cmath>

#include "stburst/common/logging.h"

namespace stburst {

void KahanSum::Add(double v) {
  double t = sum_ + v;
  if (std::abs(sum_) >= std::abs(v)) {
    c_ += (sum_ - t) + v;
  } else {
    c_ += (v - t) + sum_;
  }
  sum_ = t;
}

void KahanSum::Reset() {
  sum_ = 0.0;
  c_ = 0.0;
}

void RunningStats::Add(double v) {
  ++n_;
  double delta = v - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (v - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Reset() {
  n_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  STB_CHECK(alpha > 0.0 && alpha <= 1.0) << "Ewma alpha must be in (0, 1]";
}

void Ewma::Add(double v) {
  if (empty_) {
    value_ = v;
    empty_ = false;
  } else {
    value_ = alpha_ * v + (1.0 - alpha_) * value_;
  }
}

void Ewma::Reset() {
  value_ = 0.0;
  empty_ = true;
}

std::vector<int64_t> Histogram(const std::vector<double>& values, double lo,
                               double hi, size_t num_buckets) {
  STB_CHECK(num_buckets > 0) << "Histogram requires at least one bucket";
  STB_CHECK(hi > lo) << "Histogram requires hi > lo";
  std::vector<int64_t> buckets(num_buckets, 0);
  const double width = (hi - lo) / static_cast<double>(num_buckets);
  for (double v : values) {
    double offset = (v - lo) / width;
    int64_t idx = static_cast<int64_t>(std::floor(offset));
    idx = std::clamp<int64_t>(idx, 0, static_cast<int64_t>(num_buckets) - 1);
    ++buckets[static_cast<size_t>(idx)];
  }
  return buckets;
}

bool AlmostEqual(double a, double b, double abs_tol, double rel_tol) {
  double diff = std::abs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::max(std::abs(a), std::abs(b));
}

}  // namespace stburst
