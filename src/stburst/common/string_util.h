// String helpers used by the tokenizer, report formatting, and generators.

#ifndef STBURST_COMMON_STRING_UTIL_H_
#define STBURST_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace stburst {

/// Splits on any of the characters in `delims`, dropping empty pieces.
std::vector<std::string> Split(std::string_view input, std::string_view delims);

/// ASCII lowercase copy.
std::string ToLower(std::string_view input);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace stburst

#endif  // STBURST_COMMON_STRING_UTIL_H_
