// Minimal logging + assertion macros in the RocksDB/Arrow spirit.
//
//   STB_CHECK(cond) << "context";   // fatal on violation, always on
//   STB_DCHECK(cond) << "context";  // fatal unless NDEBUG
//   STB_LOG(INFO) << "message";     // leveled logging to stderr

#ifndef STBURST_COMMON_LOGGING_H_
#define STBURST_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace stburst {
namespace internal {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Minimum level actually emitted; default Info. Settable for tests.
LogLevel GetLogThreshold();
void SetLogThreshold(LogLevel level);

/// Stream-style message collector; emits on destruction. Fatal messages
/// abort the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows streamed expressions for disabled checks.
class NullLogMessage {
 public:
  template <typename T>
  NullLogMessage& operator<<(const T&) {
    return *this;
  }
};

/// glog-style voidifier: `&` binds looser than `<<`, turning a streamed
/// LogMessage chain into a void expression usable inside a ternary.
class Voidify {
 public:
  void operator&(const LogMessage&) {}
  void operator&(const NullLogMessage&) {}
};

}  // namespace internal

#define STB_LOG_DEBUG ::stburst::internal::LogLevel::kDebug
#define STB_LOG_INFO ::stburst::internal::LogLevel::kInfo
#define STB_LOG_WARNING ::stburst::internal::LogLevel::kWarning
#define STB_LOG_ERROR ::stburst::internal::LogLevel::kError
#define STB_LOG_FATAL ::stburst::internal::LogLevel::kFatal

#define STB_LOG(level)                                             \
  ::stburst::internal::LogMessage(STB_LOG_##level, __FILE__, __LINE__)

#define STB_CHECK(cond)                                                 \
  (cond) ? (void)0                                                      \
         : ::stburst::internal::Voidify() &                             \
               ::stburst::internal::LogMessage(                         \
                   ::stburst::internal::LogLevel::kFatal, __FILE__,     \
                   __LINE__)                                            \
                   << "Check failed: " #cond " "

#ifdef NDEBUG
#define STB_DCHECK(cond)                          \
  true ? (void)0                                  \
       : ::stburst::internal::Voidify() &         \
             ::stburst::internal::NullLogMessage()
#else
#define STB_DCHECK(cond) STB_CHECK(cond)
#endif

}  // namespace stburst

#endif  // STBURST_COMMON_LOGGING_H_
