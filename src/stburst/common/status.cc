#include "stburst/common/status.h"

namespace stburst {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_ != nullptr) rep_ = std::make_unique<Rep>(*other.rep_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ == nullptr ? nullptr : std::make_unique<Rep>(*other.rep_);
  }
  return *this;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  if (!rep_->message.empty()) {
    out += ": ";
    out += rep_->message;
  }
  return out;
}

}  // namespace stburst
