// Deterministic fault injection for robustness proofs.
//
// A fault point is a named site on a failure-prone path — an allocation-
// heavy splice, an eviction pass, a per-term re-mine — that tests can arm
// to fail on its Nth hit. Two macros cover the library's two error
// idioms:
//
//   STBURST_FAULT_POINT(site)        in Status / StatusOr-returning code:
//                                    an armed kStatus failure returns
//                                    Internal from the enclosing function;
//                                    an armed kBadAlloc throws
//                                    std::bad_alloc.
//   STBURST_FAULT_POINT_THROW(site)  in code with no Status channel (pool
//                                    worker lambdas, void members): an
//                                    armed failure throws — FaultInjected
//                                    for kStatus, std::bad_alloc for
//                                    kBadAlloc — and propagates through
//                                    ParallelFor's first-exception capture
//                                    to the calling thread.
//
// Both macros compile to nothing unless the library is built with
// -DSTBURST_FAULT_INJECTION=ON (CMake option; CI runs a dedicated sweep
// job with it). Sites are listed in the central registry in
// fault_injection.cc; hitting an unregistered site in a fault build is a
// checked programming error, so the registry cannot silently drift from
// the code. Hit counting is global across threads (one atomic per site),
// which is what makes "fail on the 3rd hit" meaningful for sites reached
// from pool workers.
//
// The proof harness this exists for lives in tests/fault_injection_test.cc:
// for every registered site, an armed FeedRuntime::Tick must fail with the
// runtime bit-identical to a control that never saw the snapshot, and the
// next clean tick must restore batch parity.

#ifndef STBURST_COMMON_FAULT_INJECTION_H_
#define STBURST_COMMON_FAULT_INJECTION_H_

#ifdef STBURST_FAULT_INJECTION

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "stburst/common/status.h"

namespace stburst::fault {

/// What an armed site does on its triggering hit.
enum class FailureKind {
  kStatus,    ///< Status channel: Internal("injected fault at <site>");
              ///< thrown as FaultInjected where no Status channel exists.
  kBadAlloc,  ///< allocation failure: throws std::bad_alloc.
};

/// The exception a throw-site raises for an armed kStatus failure. Carries
/// the site name so owners (FeedRuntime::Tick) can convert it back into a
/// Status::Internal with provenance.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& what) : std::runtime_error(what) {}
};

/// Every site name compiled into the library, in registry order. The sweep
/// test parameterizes over this list, so adding a site automatically adds
/// its atomicity proof.
std::vector<std::string_view> RegisteredSites();

/// Arms `site` to fail on its `nth_hit`-th hit from now (1-based; hits are
/// counted globally across threads). Re-arming replaces the previous arming
/// and resets the site's hit counter. Checked error for unknown sites.
void Arm(std::string_view site, size_t nth_hit = 1,
         FailureKind kind = FailureKind::kStatus);

/// Disarms every site and resets all hit counters.
void DisarmAll();

/// Hits `site` has taken since its counter was last reset. Checked error
/// for unknown sites.
size_t HitCount(std::string_view site);

namespace internal {
/// Macro backends: count a hit and fail if this hit is the armed one.
Status MaybeFail(const char* site);
void MaybeFailThrow(const char* site);
}  // namespace internal

}  // namespace stburst::fault

// In Status/StatusOr-returning functions only: an armed kStatus failure
// returns from the enclosing function.
#define STBURST_FAULT_POINT(site)                                       \
  do {                                                                  \
    ::stburst::Status stburst_fault_status_ =                           \
        ::stburst::fault::internal::MaybeFail(site);                    \
    if (!stburst_fault_status_.ok()) return stburst_fault_status_;      \
  } while (false)

// In code with no Status channel (pool workers, void members): an armed
// failure throws.
#define STBURST_FAULT_POINT_THROW(site) \
  ::stburst::fault::internal::MaybeFailThrow(site)

#else  // !STBURST_FAULT_INJECTION

#define STBURST_FAULT_POINT(site) \
  do {                            \
  } while (false)
#define STBURST_FAULT_POINT_THROW(site) \
  do {                                  \
  } while (false)

#endif  // STBURST_FAULT_INJECTION

#endif  // STBURST_COMMON_FAULT_INJECTION_H_
