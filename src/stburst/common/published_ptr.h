// Single-writer publication slot for immutable snapshots (RCU-style).
//
// A PublishedPtr<T> holds the current generation of some immutable value as
// a shared_ptr<const T> behind an atomic slot. One writer builds the next
// generation off to the side and Publish()es it with one release-ordered
// swap; any number of readers Load() the current one and keep it alive for
// as long as they hold the shared_ptr — the previous generation is freed
// when its last holder releases it, never in a reader's face.
//
// Memory-ordering contract: Publish() releases and Load() acquires, so
// everything the writer wrote into the pointee happens-before any reader's
// use of it. The pointee must be treated as immutable after Publish() —
// the slot synchronizes the hand-off, not subsequent mutation.
//
// Why not std::atomic<std::shared_ptr>: it is the same design — libstdc++
// guards the control-block swap with a spin bit embedded in an atomic word,
// not a mutex — but as of GCC 12 its load() releases that bit with a
// *relaxed* fetch_sub (bits/shared_ptr_atomic.h), so there is no formal
// happens-before edge from a reader's pointer read to the next store()'s
// pointer write and ThreadSanitizer reports the pair as a data race. This
// slot keeps the embedded-spin-bit shape and fixes the ordering: the bit is
// acquired with an acquire exchange and released with a release store, so
// the TSan CI leg proves the read plane clean with no suppressions. The
// critical sections are a shared_ptr copy (Load) or swap (Publish) — a
// refcount increment or a pointer exchange, a handful of instructions;
// readers never wait on anything slower than another reader's increment,
// and never on the writer's snapshot *build*, which happens entirely
// outside the slot.
//
// The slot lives behind a unique_ptr so owners keep their defaulted move
// operations (atomics are immovable); moving a PublishedPtr moves the
// slot, which is only valid while no other thread is using the source —
// the same single-writer rule every owner already follows during moves.

#ifndef STBURST_COMMON_PUBLISHED_PTR_H_
#define STBURST_COMMON_PUBLISHED_PTR_H_

#include <atomic>
#include <memory>

namespace stburst {

template <typename T>
class PublishedPtr {
 public:
  PublishedPtr() : slot_(std::make_unique<Slot>()) {}

  PublishedPtr(PublishedPtr&&) noexcept = default;
  PublishedPtr& operator=(PublishedPtr&&) noexcept = default;

  /// The currently published value (null before the first Publish). The
  /// returned shared_ptr keeps the value alive independently of any later
  /// Publish; safe from any thread, any time.
  std::shared_ptr<const T> Load() const {
    Slot* slot = slot_.get();
    slot->Lock();
    std::shared_ptr<const T> current = slot->ptr;
    slot->Unlock();
    return current;
  }

  /// Publishes `next` as the current value. Single writer: concurrent
  /// Publish calls must be externally serialized (Loads need not be).
  void Publish(std::shared_ptr<const T> next) {
    Slot* slot = slot_.get();
    slot->Lock();
    slot->ptr.swap(next);
    slot->Unlock();
    // `next` now holds the superseded generation; it releases here, outside
    // the critical section, so a last-reference destruction of a whole
    // snapshot never runs under the bit.
  }

 private:
  struct Slot {
    // Test-and-test-and-set on the embedded bit. Acquire on the winning
    // exchange pairs with the release in Unlock(): everything a previous
    // holder did to `ptr` happens-before the next holder's access.
    void Lock() const {
      for (;;) {
        if (!locked.exchange(true, std::memory_order_acquire)) return;
        while (locked.load(std::memory_order_relaxed)) {
        }
      }
    }
    void Unlock() const { locked.store(false, std::memory_order_release); }

    mutable std::atomic<bool> locked{false};
    std::shared_ptr<const T> ptr;
  };
  std::unique_ptr<Slot> slot_;
};

}  // namespace stburst

#endif  // STBURST_COMMON_PUBLISHED_PTR_H_
