#include "stburst/common/logging.h"

#include <atomic>

namespace stburst {
namespace internal {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogThreshold() { return g_threshold.load(std::memory_order_relaxed); }

void SetLogThreshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  // Strip the directory prefix for readability.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogThreshold() || level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace stburst
