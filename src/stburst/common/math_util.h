// Small numeric helpers shared across modules: compensated summation,
// streaming mean/variance, and histogram bucketing for the reports.

#ifndef STBURST_COMMON_MATH_UTIL_H_
#define STBURST_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stburst {

/// Kahan–Babuska compensated accumulator. The burstiness scores summed by
/// STLocal are tiny differences of large counts; naive accumulation across a
/// 365-step timeline loses the sign of near-zero window totals.
class KahanSum {
 public:
  /// Adds a value.
  void Add(double v);

  /// Current compensated total.
  double Get() const { return sum_ + c_; }

  /// Resets to zero.
  void Reset();

 private:
  double sum_ = 0.0;
  double c_ = 0.0;
};

/// Streaming mean/variance via Welford's algorithm. Used by the
/// expected-frequency models (paper §4: "average observed frequency ...
/// over all the snapshots collected before timestamp i").
class RunningStats {
 public:
  /// Incorporates one observation.
  void Add(double v);

  /// Number of observations so far.
  int64_t count() const { return n_; }

  /// Mean of observations; 0 when empty.
  double mean() const { return mean_; }

  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;

  /// Sample standard deviation.
  double stddev() const;

  /// Resets to the empty state.
  void Reset();

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Fixed-width exponentially-weighted moving average with smoothing alpha in
/// (0, 1]. First observation initializes the average.
class Ewma {
 public:
  explicit Ewma(double alpha);

  void Add(double v);
  double value() const { return value_; }
  bool empty() const { return empty_; }
  void Reset();

 private:
  double alpha_;
  double value_ = 0.0;
  bool empty_ = true;
};

/// Buckets `values` into `num_buckets` equal-width bins over [lo, hi];
/// values outside the range clamp to the edge bins. Used by the Figure 5
/// histogram harness.
std::vector<int64_t> Histogram(const std::vector<double>& values, double lo,
                               double hi, size_t num_buckets);

/// True if |a-b| <= abs_tol + rel_tol*max(|a|,|b|).
bool AlmostEqual(double a, double b, double abs_tol = 1e-12,
                 double rel_tol = 1e-9);

}  // namespace stburst

#endif  // STBURST_COMMON_MATH_UTIL_H_
