#include "stburst/common/random.h"

#include <cmath>
#include <limits>

#include "stburst/common/logging.h"

namespace stburst {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  STB_CHECK(n > 0) << "NextUint64(n) requires n > 0";
  // Rejection sampling over the largest multiple of n.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  STB_CHECK(lo <= hi) << "UniformInt requires lo <= hi";
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(NextUint64());
  }
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double lambda) {
  STB_CHECK(lambda > 0.0) << "Exponential requires lambda > 0";
  // Inverse CDF; 1 - u avoids log(0).
  return -std::log(1.0 - NextDouble()) / lambda;
}

double Rng::Weibull(double k, double c) {
  STB_CHECK(k > 0.0 && c > 0.0) << "Weibull requires k > 0 and c > 0";
  return c * std::pow(-std::log(1.0 - NextDouble()), 1.0 / k);
}

double Rng::Normal(double mean, double stddev) {
  // Box–Muller: u1 in (0,1] to keep log finite.
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

int64_t Rng::Poisson(double lambda) {
  STB_CHECK(lambda >= 0.0) << "Poisson requires lambda >= 0";
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth's product-of-uniforms method.
    const double l = std::exp(-lambda);
    int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation, adequate for the generator workloads.
  double draw = Normal(lambda, std::sqrt(lambda));
  return draw <= 0.0 ? 0 : static_cast<int64_t>(std::llround(draw));
}

Rng Rng::Fork() { return Rng(NextUint64() ^ 0xd2b74407b1ce6e93ULL); }

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  STB_CHECK(k <= n) << "cannot sample " << k << " distinct values from " << n;
  // Floyd's algorithm: O(k) expected inserts, no O(n) scratch for small k.
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(NextUint64(j + 1));
    bool seen = false;
    for (size_t v : out) {
      if (v == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  return out;
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  STB_CHECK(n > 0) << "ZipfSampler requires n > 0";
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = acc;
  }
  for (double& v : cdf_) v /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  // Binary search for the first cdf entry >= u.
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double WeibullPdf(double x, double k, double c) {
  STB_CHECK(k > 0.0 && c > 0.0) << "WeibullPdf requires k > 0 and c > 0";
  if (x < 0.0) return 0.0;
  if (x == 0.0) {
    if (k < 1.0) return std::numeric_limits<double>::infinity();
    if (k == 1.0) return 1.0 / c;
    return 0.0;
  }
  double xc = x / c;
  return (k / c) * std::pow(xc, k - 1.0) * std::exp(-std::pow(xc, k));
}

double WeibullMode(double k, double c) {
  if (k <= 1.0) return 0.0;
  return c * std::pow((k - 1.0) / k, 1.0 / k);
}

}  // namespace stburst
