// Deterministic random number generation and the distribution samplers used
// by the synthetic data generators (paper §B): exponential background
// frequencies, Weibull burst profiles, and Zipfian vocabularies.
//
// We ship our own generator (splitmix64-seeded xoshiro256**) instead of
// <random> engines so that generated datasets are bit-identical across
// platforms and standard-library versions — reproducibility of the synthetic
// corpora is part of the experimental contract.

#ifndef STBURST_COMMON_RANDOM_H_
#define STBURST_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace stburst {

/// xoshiro256** PRNG with splitmix64 seeding. Not cryptographic; fast,
/// high-quality, and deterministic across platforms.
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield identical sequences everywhere.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, n). Requires n > 0. Uses rejection to avoid modulo bias.
  uint64_t NextUint64(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponential with rate lambda > 0 (mean 1/lambda).
  double Exponential(double lambda);

  /// Weibull with shape k > 0 and scale c > 0 (paper §B, Eq. 12).
  double Weibull(double k, double c);

  /// Standard normal via Box–Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Poisson with mean lambda >= 0 (Knuth for small lambda, normal
  /// approximation with rounding for large lambda).
  int64_t Poisson(double lambda);

  /// Forks an independent generator; streams of parent and child do not
  /// collide for practical purposes.
  Rng Fork();

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples `k` distinct indices uniformly from [0, n). Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
};

/// Zipfian sampler over ranks {0, ..., n-1} with exponent `s`:
/// P(rank r) ∝ 1/(r+1)^s. Precomputes the CDF for O(log n) sampling.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  /// Draws a rank in [0, n).
  size_t Sample(Rng* rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Probability density of the Weibull(k, c) distribution at x (paper Eq. 12).
/// Returns 0 for x < 0.
double WeibullPdf(double x, double k, double c);

/// Mode (peak location) of Weibull(k, c): c*((k-1)/k)^(1/k) for k > 1, else 0.
double WeibullMode(double k, double c);

}  // namespace stburst

#endif  // STBURST_COMMON_RANDOM_H_
