// Tests for the expected-frequency models (core/expected).

#include "stburst/core/expected.h"

#include <gtest/gtest.h>

#include <vector>

namespace stburst {
namespace {

TEST(GlobalMeanModel, MeanOfAllPastObservations) {
  GlobalMeanModel m;
  EXPECT_FALSE(m.HasHistory());
  m.Observe(2.0);
  EXPECT_TRUE(m.HasHistory());
  EXPECT_DOUBLE_EQ(m.Expected(), 2.0);
  m.Observe(4.0);
  EXPECT_DOUBLE_EQ(m.Expected(), 3.0);
  m.Observe(9.0);
  EXPECT_DOUBLE_EQ(m.Expected(), 5.0);
  m.Reset();
  EXPECT_FALSE(m.HasHistory());
}

TEST(WindowMeanModel, OnlyRecentWindowCounts) {
  WindowMeanModel m(2);
  m.Observe(100.0);  // will fall out of the window
  m.Observe(2.0);
  m.Observe(4.0);
  EXPECT_DOUBLE_EQ(m.Expected(), 3.0);
  m.Observe(6.0);
  EXPECT_DOUBLE_EQ(m.Expected(), 5.0);
}

TEST(WindowMeanModel, PartialWindow) {
  WindowMeanModel m(10);
  m.Observe(4.0);
  m.Observe(8.0);
  EXPECT_DOUBLE_EQ(m.Expected(), 6.0);
}

TEST(EwmaModel, TracksWithSmoothing) {
  EwmaModel m(0.5);
  EXPECT_FALSE(m.HasHistory());
  m.Observe(10.0);
  EXPECT_DOUBLE_EQ(m.Expected(), 10.0);
  m.Observe(0.0);
  EXPECT_DOUBLE_EQ(m.Expected(), 5.0);
}

TEST(SeasonalMeanModel, UsesSamePhaseHistory) {
  SeasonalMeanModel m(7);  // weekly seasonality over a daily timeline
  // Two full weeks: weekends (phases 5, 6) run hot.
  for (int day = 0; day < 14; ++day) {
    m.Observe(day % 7 >= 5 ? 10.0 : 2.0);
  }
  // Day 14 is phase 0 (weekday): expect the weekday mean.
  EXPECT_DOUBLE_EQ(m.Expected(), 2.0);
  for (int day = 14; day < 19; ++day) m.Observe(2.0);
  // Day 19 is phase 5 (weekend): expect the weekend mean.
  EXPECT_DOUBLE_EQ(m.Expected(), 10.0);
}

TEST(SeasonalMeanModel, FallsBackToGlobalMeanBeforeFullPeriod) {
  SeasonalMeanModel m(5);
  m.Observe(4.0);
  m.Observe(8.0);
  // Phase 2 has no history yet: global mean 6.
  EXPECT_DOUBLE_EQ(m.Expected(), 6.0);
}

TEST(BurstinessSeries, FirstTimestampNeutral) {
  GlobalMeanModel m;
  std::vector<double> y = {5.0, 5.0, 9.0};
  auto b = BurstinessSeries(y, &m);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_DOUBLE_EQ(b[0], 0.0);       // no history: neutral
  EXPECT_DOUBLE_EQ(b[1], 0.0);       // 5 - mean(5)
  EXPECT_DOUBLE_EQ(b[2], 4.0);       // 9 - mean(5, 5)
}

TEST(BurstinessSeries, DetectsDeviationFromRunningMean) {
  GlobalMeanModel m;
  std::vector<double> y = {2, 2, 2, 2, 10, 2};
  auto b = BurstinessSeries(y, &m);
  EXPECT_DOUBLE_EQ(b[4], 8.0);  // 10 - mean(2,2,2,2)
  EXPECT_LT(b[5], 0.0);         // 2 - inflated mean
}

TEST(BurstinessSeries, IsCausal) {
  // Prefix invariance: b[i] must not depend on later observations.
  std::vector<double> y1 = {3, 1, 4, 1, 5};
  std::vector<double> y2 = {3, 1, 4, 99, 99};
  GlobalMeanModel m1, m2;
  auto b1 = BurstinessSeries(y1, &m1);
  auto b2 = BurstinessSeries(y2, &m2);
  for (size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(b1[i], b2[i]);
}

TEST(PriorFloorModel, FloorsTheInnerExpectation) {
  PriorFloorModel m(std::make_unique<GlobalMeanModel>(), 0.5);
  // No inner history: the floor applies immediately.
  EXPECT_TRUE(m.HasHistory());
  EXPECT_DOUBLE_EQ(m.Expected(), 0.5);
  // Inner mean below the floor: still floored.
  m.Observe(0.1);
  EXPECT_DOUBLE_EQ(m.Expected(), 0.5);
  // Inner mean above the floor: inner wins.
  m.Observe(3.9);
  EXPECT_DOUBLE_EQ(m.Expected(), 2.0);
  m.Reset();
  EXPECT_DOUBLE_EQ(m.Expected(), 0.5);
}

TEST(PriorFloorModel, SilentStreamScoresNegative) {
  // The motivating property: a stream that never mentions the term yields a
  // strictly negative burstiness everywhere, so rectangles pay to cover it.
  PriorFloorModel m(std::make_unique<GlobalMeanModel>(), 0.2);
  std::vector<double> y(10, 0.0);
  auto b = BurstinessSeries(y, &m);
  for (double v : b) EXPECT_DOUBLE_EQ(v, -0.2);
}

TEST(WithPriorFloor, DecoratesFactory) {
  ExpectedModelFactory factory = WithPriorFloor(
      [] { return std::make_unique<GlobalMeanModel>(); }, 0.3);
  auto a = factory();
  auto b = factory();
  EXPECT_DOUBLE_EQ(a->Expected(), 0.3);
  a->Observe(10.0);
  EXPECT_DOUBLE_EQ(a->Expected(), 10.0);
  EXPECT_DOUBLE_EQ(b->Expected(), 0.3);  // independent instances
}

TEST(ExpectedModelFactory, ProducesIndependentModels) {
  ExpectedModelFactory factory = [] {
    return std::make_unique<GlobalMeanModel>();
  };
  auto a = factory();
  auto b = factory();
  a->Observe(100.0);
  EXPECT_TRUE(a->HasHistory());
  EXPECT_FALSE(b->HasHistory());
}

}  // namespace
}  // namespace stburst
