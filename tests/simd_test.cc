// Three-way ISA conformance for common/simd.h.
//
// Every element-wise kernel (AddInto, AddScaledInto, MaxInto, ScatterZero)
// must be bit-identical across scalar / AVX2 / AVX-512 — compared with
// memcmp, so signed zeros and every last ULP count — over odd sizes
// straddling the 4- and 8-lane boundaries and over deliberately misaligned
// spans. MaxSubarrayMayExceed is the documented reassociation boundary: it
// is tested against its contract (never a false negative vs the exact
// sequential Kadane; prunes when the threshold sits comfortably above the
// true max) rather than for bit-identity.

#include "stburst/common/simd.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace stburst {
namespace simd {
namespace {

// Sizes straddling 0, the 4-lane AVX2 boundary, the 8-lane AVX-512
// boundary, the 16-element unroll, and a couple of large odd strays.
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 12, 15, 16, 17, 31, 33, 63, 64, 65, 100, 255, 257};

std::vector<Isa> SupportedIsas() {
  std::vector<Isa> isas = {Isa::kScalar};
  if (Avx2Supported()) isas.push_back(Isa::kAvx2);
  if (Avx512Supported()) isas.push_back(Isa::kAvx512);
  return isas;
}

// Fills with a mix of magnitudes, signs, and signed zeros so a kernel that
// flips -0.0 to +0.0 or reorders a rounding step cannot slip through.
std::vector<double> RandomValues(std::mt19937_64& rng, size_t n) {
  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  std::uniform_int_distribution<int> kind(0, 9);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    switch (kind(rng)) {
      case 0:
        v[i] = 0.0;
        break;
      case 1:
        v[i] = -0.0;
        break;
      case 2:
        v[i] = unit(rng) * 1e-300;  // denormal-adjacent
        break;
      case 3:
        v[i] = unit(rng) * 1e12;
        break;
      default:
        v[i] = unit(rng);
    }
  }
  return v;
}

// Runs `fn(dst_span, src_span, n)` on every supported ISA, on both aligned
// and one-element-shifted (misaligned) spans, and asserts the resulting dst
// bytes match the scalar run exactly.
template <typename Fn>
void ExpectBitIdenticalAcrossIsas(const Fn& fn, const char* what) {
  std::mt19937_64 rng(0xC0FFEE ^ std::strlen(what));
  const std::vector<Isa> isas = SupportedIsas();
  for (size_t n : kSizes) {
    for (size_t offset : {size_t{0}, size_t{1}}) {
      const std::vector<double> dst_init = RandomValues(rng, n + offset);
      const std::vector<double> src_init = RandomValues(rng, n + offset);
      std::vector<double> reference;
      for (Isa isa : isas) {
        const Isa previous = SetIsaForTest(isa);
        ASSERT_EQ(ActiveIsa(), isa) << what;
        std::vector<double> dst = dst_init;
        std::vector<double> src = src_init;
        fn(dst.data() + offset, src.data() + offset, n);
        SetIsaForTest(previous);
        if (isa == Isa::kScalar) {
          reference = dst;
        } else {
          // dst.data() is null for the n=0, offset=0 case; memcmp's nonnull
          // contract (UBSan-enforced) forbids it even with a zero length.
          ASSERT_EQ(0, dst.empty()
                           ? 0
                           : std::memcmp(reference.data(), dst.data(),
                                         dst.size() * sizeof(double)))
              << what << " diverges from scalar on " << IsaName(isa)
              << " at n=" << n << " offset=" << offset;
        }
      }
    }
  }
}

TEST(SimdIsa, DispatchCoversAllSupportedLevels) {
  const Isa previous = SetIsaForTest(Isa::kScalar);
  EXPECT_EQ(ActiveIsa(), Isa::kScalar);
  EXPECT_STREQ(IsaName(Isa::kScalar), "scalar");
  EXPECT_STREQ(IsaName(Isa::kAvx2), "avx2");
  EXPECT_STREQ(IsaName(Isa::kAvx512), "avx512");
  if (Avx2Supported()) {
    SetIsaForTest(Isa::kAvx2);
    EXPECT_EQ(ActiveIsa(), Isa::kAvx2);
  }
  if (Avx512Supported()) {
    SetIsaForTest(Isa::kAvx512);
    EXPECT_EQ(ActiveIsa(), Isa::kAvx512);
  }
  SetIsaForTest(previous);
  EXPECT_EQ(ActiveIsa(), previous);
}

TEST(SimdKernels, AddIntoBitIdentical) {
  ExpectBitIdenticalAcrossIsas(
      [](double* dst, const double* src, size_t n) { AddInto(dst, src, n); },
      "AddInto");
}

TEST(SimdKernels, AddScaledIntoBitIdentical) {
  // Several scales, including ones that make contraction-vs-separate
  // rounding visible (irrational-ish multipliers) and sign flips.
  for (double scale : {1.0, -1.0, 0.5, -0.3333333333333333, 1e-7, 3.7e5}) {
    ExpectBitIdenticalAcrossIsas(
        [scale](double* dst, const double* src, size_t n) {
          AddScaledInto(dst, src, scale, n);
        },
        "AddScaledInto");
  }
}

TEST(SimdKernels, MaxIntoBitIdentical) {
  ExpectBitIdenticalAcrossIsas(
      [](double* dst, const double* src, size_t n) { MaxInto(dst, src, n); },
      "MaxInto");
}

TEST(SimdKernels, MaxIntoFollowsVmaxpdTieConvention) {
  // (dst > src) ? dst : src — equal values and +0/-0 pairs take src, on
  // every ISA. Checked bitwise via copysign.
  for (Isa isa : SupportedIsas()) {
    const Isa previous = SetIsaForTest(isa);
    double dst[8] = {-0.0, 0.0, 1.0, -1.0, 2.0, -0.0, 5.0, 3.0};
    const double src[8] = {0.0, -0.0, 1.0, -2.0, 3.0, -0.0, 4.0, 3.0};
    MaxInto(dst, src, 8);
    SetIsaForTest(previous);
    EXPECT_EQ(std::signbit(dst[0]), false) << IsaName(isa);   // src +0.0
    EXPECT_EQ(std::signbit(dst[1]), true) << IsaName(isa);    // src -0.0
    EXPECT_EQ(dst[2], 1.0);
    EXPECT_EQ(dst[3], -1.0);
    EXPECT_EQ(dst[4], 3.0);
    EXPECT_EQ(std::signbit(dst[5]), true) << IsaName(isa);
    EXPECT_EQ(dst[6], 5.0);
    EXPECT_EQ(dst[7], 3.0);
  }
}

TEST(SimdKernels, ScatterZeroBitIdentical) {
  std::mt19937_64 rng(20260808);
  const std::vector<Isa> isas = SupportedIsas();
  for (size_t cells_n : {1u, 7u, 64u, 1000u}) {
    for (size_t touched_n : kSizes) {
      std::uniform_int_distribution<size_t> pick(0, cells_n - 1);
      std::vector<size_t> idx(touched_n);
      for (size_t& i : idx) i = pick(rng);  // duplicates allowed by contract
      const std::vector<double> cells_init = RandomValues(rng, cells_n);
      std::vector<double> reference;
      for (Isa isa : isas) {
        const Isa previous = SetIsaForTest(isa);
        std::vector<double> cells = cells_init;
        ScatterZero(cells.data(), idx.data(), idx.size());
        SetIsaForTest(previous);
        for (size_t i : idx) {
          EXPECT_EQ(cells[i], 0.0) << IsaName(isa);
          EXPECT_FALSE(std::signbit(cells[i])) << IsaName(isa);
        }
        if (isa == Isa::kScalar) {
          reference = cells;
        } else {
          ASSERT_EQ(0, std::memcmp(reference.data(), cells.data(),
                                   cells.size() * sizeof(double)))
              << "ScatterZero diverges on " << IsaName(isa)
              << " cells=" << cells_n << " touched=" << touched_n;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// MaxSubarrayMayExceed — contract tests for the reassociation boundary.
// ---------------------------------------------------------------------------

// The exact sequential Kadane max (non-empty windows) the filter's `false`
// must never contradict.
double ExactKadane(const std::vector<double>& a) {
  double best = a[0];
  double run = a[0];
  for (size_t i = 1; i < a.size(); ++i) {
    run = run > 0.0 ? run + a[i] : a[i];
    best = std::max(best, run);
  }
  return best;
}

TEST(MaxSubarrayMayExceed, NeverFalseNegative) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  for (Isa isa : SupportedIsas()) {
    const Isa previous = SetIsaForTest(isa);
    for (size_t n : {1u, 2u, 3u, 5u, 8u, 13u, 64u, 257u}) {
      for (int trial = 0; trial < 50; ++trial) {
        std::vector<double> a(n);
        for (double& x : a) x = unit(rng);
        const double best = ExactKadane(a);
        // Any threshold strictly below the exact max must come back true.
        EXPECT_TRUE(MaxSubarrayMayExceed(
            a.data(), n, best - 1e-12 - 1e-12 * std::fabs(best)))
            << IsaName(isa) << " n=" << n;
        EXPECT_TRUE(MaxSubarrayMayExceed(
            a.data(), n, -std::numeric_limits<double>::infinity()))
            << IsaName(isa) << " n=" << n;
      }
    }
    SetIsaForTest(previous);
  }
}

TEST(MaxSubarrayMayExceed, PrunesWellAboveTheMax) {
  // With O(1) magnitudes and n <= 512 the rounding slack is ~1e-11, so a
  // threshold a full 0.5 above the exact max must be pruned on every ISA.
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  for (Isa isa : SupportedIsas()) {
    const Isa previous = SetIsaForTest(isa);
    for (size_t n : {1u, 4u, 9u, 100u, 512u}) {
      for (int trial = 0; trial < 20; ++trial) {
        std::vector<double> a(n);
        for (double& x : a) x = unit(rng);
        EXPECT_FALSE(MaxSubarrayMayExceed(a.data(), n, ExactKadane(a) + 0.5))
            << IsaName(isa) << " n=" << n;
      }
    }
    SetIsaForTest(previous);
  }
}

TEST(MaxSubarrayMayExceed, AllNegativeAndDegenerateShapes) {
  for (Isa isa : SupportedIsas()) {
    const Isa previous = SetIsaForTest(isa);
    // n == 0: vacuously false.
    EXPECT_FALSE(MaxSubarrayMayExceed(nullptr, 0, -1e300)) << IsaName(isa);
    // Single element (the degenerate single-column band).
    const double one = -3.5;
    EXPECT_TRUE(MaxSubarrayMayExceed(&one, 1, -4.0)) << IsaName(isa);
    EXPECT_FALSE(MaxSubarrayMayExceed(&one, 1, -3.0)) << IsaName(isa);
    // All-negative: the exact max is the largest single element; the
    // non-empty contract means a threshold below it must pass and a
    // threshold well above it must prune.
    std::vector<double> neg(37);
    for (size_t i = 0; i < neg.size(); ++i) {
      neg[i] = -1.0 - static_cast<double>((i * 7) % 13);
    }
    EXPECT_TRUE(MaxSubarrayMayExceed(neg.data(), neg.size(), -1.5))
        << IsaName(isa);
    EXPECT_FALSE(MaxSubarrayMayExceed(neg.data(), neg.size(), 0.5))
        << IsaName(isa);
    SetIsaForTest(previous);
  }
}

TEST(MaxSubarrayMayExceed, ExclusionPoisonStaysSafe) {
  // kExcludedWeight-magnitude entries blow the slack up; the filter must
  // degrade to "may exceed" (true) for reachable thresholds, never to a
  // wrong prune.
  for (Isa isa : SupportedIsas()) {
    const Isa previous = SetIsaForTest(isa);
    std::vector<double> a = {0.5, -1e18, 2.5, 1.25, -0.5, 0.75, 1.0, -2.0, 3.0};
    const double best = ExactKadane(a);  // 2.5+1.25-0.5+0.75+1-2+3 = 6.0
    EXPECT_EQ(best, 6.0);
    EXPECT_TRUE(MaxSubarrayMayExceed(a.data(), a.size(), 4.0)) << IsaName(isa);
    SetIsaForTest(previous);
  }
}

}  // namespace
}  // namespace simd
}  // namespace stburst
