// Tests for the simulated Topix corpus (gen/topix_sim, gen/countries,
// gen/major_events).

#include "stburst/gen/topix_sim.h"

#include <gtest/gtest.h>

#include "stburst/gen/countries.h"

namespace stburst {
namespace {

TopixOptions FastOptions() {
  TopixOptions o;
  o.mean_docs_per_week = 2.0;  // small corpus for unit-test speed
  o.background_vocab = 200;
  o.use_mds = false;  // equirectangular is fine for structural checks
  return o;
}

TEST(Countries, Exactly181WithValidCoordinates) {
  const auto& countries = WorldCountries();
  ASSERT_EQ(countries.size(), 181u);
  for (const auto& c : countries) {
    EXPECT_FALSE(c.name.empty());
    EXPECT_GE(c.location.lat_deg, -90.0);
    EXPECT_LE(c.location.lat_deg, 90.0);
    EXPECT_GE(c.location.lon_deg, -180.0);
    EXPECT_LE(c.location.lon_deg, 180.0);
  }
  EXPECT_NE(CountryIndex("Zimbabwe"), static_cast<size_t>(-1));
  EXPECT_EQ(CountryIndex("Atlantis"), static_cast<size_t>(-1));
}

TEST(MajorEvents, TableFourStructure) {
  const auto& events = MajorEventsList();
  ASSERT_EQ(events.size(), 18u);
  for (size_t e = 0; e < events.size(); ++e) {
    EXPECT_EQ(events[e].number, static_cast<int>(e) + 1);
    EXPECT_FALSE(events[e].query.empty());
    EXPECT_FALSE(events[e].bursts.empty());
    EXPECT_GE(events[e].tier, 1);
    EXPECT_LE(events[e].tier, 3);
    bool has_relevant = false;
    for (const auto& b : events[e].bursts) {
      // Source country must resolve, weeks must fit the timeline.
      EXPECT_NE(CountryIndex(b.source_country), static_cast<size_t>(-1))
          << b.source_country;
      EXPECT_GE(b.start_week, 0);
      EXPECT_LT(b.start_week, kTopixWeeks);
      has_relevant |= b.relevant;
    }
    EXPECT_TRUE(has_relevant);
  }
  // Tier layout of the paper: 1-6 global, 7-12 multi-country, 13-18 local.
  for (size_t e = 0; e < 6; ++e) EXPECT_EQ(events[e].tier, 1);
  for (size_t e = 6; e < 12; ++e) EXPECT_EQ(events[e].tier, 2);
  for (size_t e = 12; e < 18; ++e) EXPECT_EQ(events[e].tier, 3);
}

class TopixFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto sim = TopixSimulator::Generate(FastOptions());
    ASSERT_TRUE(sim.ok());
    sim_ = new TopixSimulator(std::move(*sim));
  }
  static void TearDownTestSuite() {
    delete sim_;
    sim_ = nullptr;
  }
  static TopixSimulator* sim_;
};

TopixSimulator* TopixFixture::sim_ = nullptr;

TEST_F(TopixFixture, CorpusShape) {
  const Collection& c = sim_->collection();
  EXPECT_EQ(c.num_streams(), 181u);
  EXPECT_EQ(c.timeline_length(), kTopixWeeks);
  EXPECT_GT(c.num_documents(), 5000u);
  EXPECT_GT(c.vocabulary().size(), 200u);  // background + query terms
}

TEST_F(TopixFixture, QueryTermsResolve) {
  for (size_t e = 0; e < sim_->events().size(); ++e) {
    auto terms = sim_->QueryTerms(e);
    EXPECT_FALSE(terms.empty()) << "event " << e;
  }
  // Multi-word queries resolve to several terms.
  EXPECT_EQ(sim_->QueryTerms(1).size(), 2u);   // "financial crisis"
  EXPECT_EQ(sim_->QueryTerms(10).size(), 2u);  // "Air France"
}

TEST_F(TopixFixture, EventDocumentsCarryProvenance) {
  const Collection& c = sim_->collection();
  size_t event_docs = 0, decoy_docs = 0, background_docs = 0;
  for (const Document& d : c.documents()) {
    if (d.event_id == kNoEvent) {
      ++background_docs;
    } else if (d.event_id >= kDecoyEventBase) {
      ++decoy_docs;
    } else {
      ++event_docs;
    }
  }
  EXPECT_GT(event_docs, 100u);
  EXPECT_GT(decoy_docs, 10u);  // tier-3 decoys exist
  EXPECT_GT(background_docs, 1000u);
}

TEST_F(TopixFixture, RelevanceFollowsProvenance) {
  const Collection& c = sim_->collection();
  for (const Document& d : c.documents()) {
    if (d.event_id >= 0 && d.event_id < 18) {
      EXPECT_TRUE(sim_->IsRelevant(d.id, static_cast<size_t>(d.event_id)));
      EXPECT_FALSE(
          sim_->IsRelevant(d.id, static_cast<size_t>((d.event_id + 1) % 18)));
    } else {
      for (size_t e = 0; e < 18; ++e) EXPECT_FALSE(sim_->IsRelevant(d.id, e));
    }
  }
}

TEST_F(TopixFixture, GlobalEventsAffectMoreStreamsThanLocalOnes) {
  // Tier 1 footprints must dominate tier 3 ones.
  size_t tier1_min = 181, tier3_max = 0;
  for (size_t e = 0; e < 6; ++e) {
    tier1_min = std::min(tier1_min, sim_->AffectedStreams(e).size());
  }
  for (size_t e = 12; e < 18; ++e) {
    tier3_max = std::max(tier3_max, sim_->AffectedStreams(e).size());
  }
  EXPECT_GT(tier1_min, tier3_max);
  // The fully global events cover (almost) everything.
  EXPECT_GT(sim_->AffectedStreams(0).size(), 150u);  // Obama
  // Localized events stay compact.
  EXPECT_LT(sim_->AffectedStreams(13).size(), 40u);  // Vieira
}

TEST_F(TopixFixture, RelevantTimeframesMatchBurstDefinitions) {
  // Jackson (event 4, index 3): single burst at week 42 for 5 weeks.
  Interval frame = sim_->RelevantTimeframe(3);
  EXPECT_EQ(frame.start, 42);
  EXPECT_EQ(frame.end, 46);
  // Decoy bursts must not extend the relevant timeframe (Vieira, index 13:
  // relevant burst starts week 26; its decoy is week 13).
  EXPECT_EQ(sim_->RelevantTimeframe(13).start, 26);
}

TEST_F(TopixFixture, EventTermFrequencySpikesDuringEvent) {
  const Collection& c = sim_->collection();
  FrequencyIndex freq = FrequencyIndex::Build(c);
  TermId jackson = c.vocabulary().Lookup("jackson");
  ASSERT_NE(jackson, kInvalidTerm);
  TermSeries series = freq.DenseSeries(jackson);
  auto merged = series.AggregateOverStreams();
  double in_burst = 0.0, outside = 0.0;
  for (Timestamp w = 0; w < kTopixWeeks; ++w) {
    if (w >= 42 && w <= 46) {
      in_burst += merged[w];
    } else {
      outside += merged[w];
    }
  }
  // 5 burst weeks carry far more mass than the 43 quiet weeks combined.
  EXPECT_GT(in_burst, outside);
}

TEST(TopixSimulator, DeterministicForSeed) {
  TopixOptions o = FastOptions();
  o.mean_docs_per_week = 1.0;
  auto a = TopixSimulator::Generate(o);
  auto b = TopixSimulator::Generate(o);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->collection().num_documents(), b->collection().num_documents());
  for (size_t i = 0; i < a->collection().num_documents(); i += 997) {
    const Document& da = a->collection().document(static_cast<DocId>(i));
    const Document& db = b->collection().document(static_cast<DocId>(i));
    EXPECT_EQ(da.stream, db.stream);
    EXPECT_EQ(da.time, db.time);
    EXPECT_EQ(da.tokens, db.tokens);
  }
}

TEST(TopixSimulator, ValidatesOptions) {
  TopixOptions o = FastOptions();
  o.background_vocab = 0;
  EXPECT_TRUE(TopixSimulator::Generate(o).status().IsInvalidArgument());
  o = FastOptions();
  o.doc_len_max = o.doc_len_min - 1;
  EXPECT_TRUE(TopixSimulator::Generate(o).status().IsInvalidArgument());
}

}  // namespace
}  // namespace stburst
