// Tests for the interval-graph maximum-weight clique sweep (core/max_clique).

#include "stburst/core/max_clique.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "stburst/common/random.h"

namespace stburst {
namespace {

WeightedInterval WI(Timestamp a, Timestamp b, double w, int64_t tag) {
  return WeightedInterval{Interval{a, b}, w, tag};
}

TEST(MaxWeightClique, EmptyInput) {
  CliqueResult clique = MaxWeightClique({});
  EXPECT_TRUE(clique.empty());
}

TEST(MaxWeightClique, SingleInterval) {
  auto clique = MaxWeightClique({WI(2, 5, 1.5, 0)});
  ASSERT_EQ(clique.members.size(), 1u);
  EXPECT_DOUBLE_EQ(clique.weight, 1.5);
  EXPECT_TRUE((Interval{2, 5}).Contains(clique.stab));
}

TEST(MaxWeightClique, PaperFigure2Example) {
  // Figure 2 of the paper: intervals I1..I7 with burstiness scores; the
  // highest-scoring subset is {I1, I3, I5, I6} with cumulative score 2.1.
  // Reconstruction of the figure's geometry: I1 [2,9] 0.8 (D1),
  // I2 [12,18] 0.5 (D1), I3 [4,10] 0.4 (D2), I4 [13,19] 0.6 (D2),
  // I5 [3,8] 0.3 (D3), I6 [5,9] 0.6 (D4), I7 [14,17] 0.2 (D4).
  std::vector<WeightedInterval> intervals = {
      WI(2, 9, 0.8, 1),  WI(12, 18, 0.5, 1), WI(4, 10, 0.4, 2),
      WI(13, 19, 0.6, 2), WI(3, 8, 0.3, 3),  WI(5, 9, 0.6, 4),
      WI(14, 17, 0.2, 4),
  };
  auto clique = MaxWeightClique(intervals);
  EXPECT_NEAR(clique.weight, 2.1, 1e-12);
  std::vector<size_t> expected = {0, 2, 4, 5};
  EXPECT_EQ(clique.members, expected);
  // The stab point must lie in the common segment [5, 8].
  EXPECT_GE(clique.stab, 5);
  EXPECT_LE(clique.stab, 8);
}

TEST(MaxWeightClique, TouchingEndpointsIntersect) {
  // Closed intervals [0,5] and [5,9] share timestamp 5.
  auto clique = MaxWeightClique({WI(0, 5, 1.0, 0), WI(5, 9, 1.0, 1)});
  EXPECT_EQ(clique.members.size(), 2u);
  EXPECT_DOUBLE_EQ(clique.weight, 2.0);
  EXPECT_EQ(clique.stab, 5);
}

TEST(MaxWeightClique, DisjointIntervalsPickHeaviest) {
  auto clique = MaxWeightClique({WI(0, 2, 1.0, 0), WI(5, 7, 3.0, 1)});
  ASSERT_EQ(clique.members.size(), 1u);
  EXPECT_EQ(clique.members[0], 1u);
  EXPECT_DOUBLE_EQ(clique.weight, 3.0);
}

TEST(MaxWeightClique, IgnoresNonPositiveWeights) {
  auto clique = MaxWeightClique(
      {WI(0, 9, -1.0, 0), WI(0, 9, 0.0, 1), WI(3, 4, 0.5, 2)});
  ASSERT_EQ(clique.members.size(), 1u);
  EXPECT_EQ(clique.members[0], 2u);
}

TEST(MaxWeightClique, AllNegativeYieldsEmpty) {
  auto clique = MaxWeightClique({WI(0, 5, -1.0, 0), WI(1, 3, -0.1, 1)});
  EXPECT_TRUE(clique.empty());
  EXPECT_DOUBLE_EQ(clique.weight, 0.0);
}

TEST(MaxWeightClique, ManyIntervalsSharedCore) {
  // 10 intervals all containing timestamp 50.
  std::vector<WeightedInterval> intervals;
  for (int i = 0; i < 10; ++i) {
    intervals.push_back(WI(50 - i, 50 + i, 1.0, i));
  }
  auto clique = MaxWeightClique(intervals);
  EXPECT_EQ(clique.members.size(), 10u);
  EXPECT_DOUBLE_EQ(clique.weight, 10.0);
}

// Differential test against brute force over stab points.
double BruteForceBestStabWeight(const std::vector<WeightedInterval>& ivs,
                                Timestamp lo, Timestamp hi) {
  double best = 0.0;
  for (Timestamp t = lo; t <= hi; ++t) {
    double w = 0.0;
    for (const auto& iv : ivs) {
      if (iv.weight > 0.0 && iv.interval.Contains(t)) w += iv.weight;
    }
    best = std::max(best, w);
  }
  return best;
}

TEST(MaxWeightClique, MatchesBruteForceOnRandomInstances) {
  Rng rng(42);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<WeightedInterval> ivs;
    size_t m = 1 + rng.NextUint64(20);
    for (size_t i = 0; i < m; ++i) {
      Timestamp a = static_cast<Timestamp>(rng.UniformInt(0, 40));
      Timestamp b = static_cast<Timestamp>(rng.UniformInt(a, 40));
      // Distinct tags: the per-stream dedup path is tested separately.
      ivs.push_back(WI(a, b, rng.Uniform(0.1, 2.0), static_cast<int64_t>(i)));
    }
    auto clique = MaxWeightClique(ivs);
    EXPECT_NEAR(clique.weight, BruteForceBestStabWeight(ivs, 0, 40), 1e-9)
        << "trial " << trial;
    // Verify the clique members all contain the stab point.
    for (size_t idx : clique.members) {
      EXPECT_TRUE(ivs[idx].interval.Contains(clique.stab));
    }
  }
}

TEST(MaxWeightClique, SameTagKeepsHeaviest) {
  // Two overlapping intervals with the same tag both contain point 5; only
  // the heavier may join the clique.
  auto clique = MaxWeightClique(
      {WI(0, 9, 1.0, 7), WI(4, 6, 2.0, 7), WI(5, 5, 0.5, 8)});
  ASSERT_EQ(clique.members.size(), 2u);
  EXPECT_TRUE(std::find(clique.members.begin(), clique.members.end(), 1u) !=
              clique.members.end());
  EXPECT_TRUE(std::find(clique.members.begin(), clique.members.end(), 0u) ==
              clique.members.end());
}

}  // namespace
}  // namespace stburst
