// Tests for eval/pattern_match (Table 2 scoring protocol).

#include "stburst/eval/pattern_match.h"

#include <gtest/gtest.h>

namespace stburst {
namespace {

TEST(ScoreRetrieval, PerfectMatch) {
  std::vector<StreamId> truth = {1, 2, 3};
  Interval frame{10, 20};
  std::vector<MinedPattern> mined = {{{1, 2, 3}, {10, 20}, 1.0}};
  auto score = ScoreRetrieval(truth, frame, mined, 365);
  EXPECT_TRUE(score.matched);
  EXPECT_DOUBLE_EQ(score.jaccard, 1.0);
  EXPECT_DOUBLE_EQ(score.start_error, 0.0);
  EXPECT_DOUBLE_EQ(score.end_error, 0.0);
}

TEST(ScoreRetrieval, NoCandidatesIsAMiss) {
  auto score = ScoreRetrieval({1}, Interval{5, 9}, {}, 365);
  EXPECT_FALSE(score.matched);
  EXPECT_DOUBLE_EQ(score.jaccard, 0.0);
  EXPECT_DOUBLE_EQ(score.start_error, 365.0);
  EXPECT_DOUBLE_EQ(score.end_error, 365.0);
}

TEST(ScoreRetrieval, NonOverlappingCandidatesIgnored) {
  std::vector<MinedPattern> mined = {{{1}, {100, 120}, 5.0}};
  auto score = ScoreRetrieval({1}, Interval{5, 9}, mined, 365);
  EXPECT_FALSE(score.matched);
}

TEST(ScoreRetrieval, PicksBestCombinedMatch) {
  std::vector<StreamId> truth = {1, 2, 3, 4};
  Interval frame{10, 20};
  std::vector<MinedPattern> mined = {
      {{9, 8}, {10, 20}, 3.0},          // right time, wrong streams
      {{1, 2, 3}, {12, 19}, 1.0},       // good on both axes
      {{1}, {15, 15}, 9.0},             // overlapping but poor
  };
  auto score = ScoreRetrieval(truth, frame, mined, 365);
  EXPECT_TRUE(score.matched);
  EXPECT_DOUBLE_EQ(score.jaccard, 0.75);
  EXPECT_DOUBLE_EQ(score.start_error, 2.0);
  EXPECT_DOUBLE_EQ(score.end_error, 1.0);
}

TEST(Aggregate, Averages) {
  std::vector<PatternRetrievalScore> scores = {
      {1.0, 0.0, 2.0, true},
      {0.5, 4.0, 6.0, true},
  };
  auto agg = Aggregate(scores);
  EXPECT_EQ(agg.patterns, 2u);
  EXPECT_DOUBLE_EQ(agg.mean_jaccard, 0.75);
  EXPECT_DOUBLE_EQ(agg.mean_start_error, 2.0);
  EXPECT_DOUBLE_EQ(agg.mean_end_error, 4.0);
}

TEST(Aggregate, EmptyIsZero) {
  auto agg = Aggregate({});
  EXPECT_EQ(agg.patterns, 0u);
  EXPECT_DOUBLE_EQ(agg.mean_jaccard, 0.0);
}

}  // namespace
}  // namespace stburst
