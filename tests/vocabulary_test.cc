// Tests for stream/vocabulary.

#include "stburst/stream/vocabulary.h"

#include <gtest/gtest.h>

namespace stburst {
namespace {

TEST(Vocabulary, InternAssignsDenseIds) {
  Vocabulary v;
  EXPECT_EQ(v.Intern("alpha"), 0u);
  EXPECT_EQ(v.Intern("beta"), 1u);
  EXPECT_EQ(v.Intern("alpha"), 0u);  // repeated intern is stable
  EXPECT_EQ(v.size(), 2u);
}

TEST(Vocabulary, LookupWithoutIntern) {
  Vocabulary v;
  v.Intern("x");
  EXPECT_EQ(v.Lookup("x"), 0u);
  EXPECT_EQ(v.Lookup("missing"), kInvalidTerm);
  EXPECT_EQ(v.size(), 1u);  // Lookup does not intern
}

TEST(Vocabulary, TermOfRoundTrips) {
  Vocabulary v;
  TermId a = v.Intern("hello");
  TermId b = v.Intern("world");
  EXPECT_EQ(v.TermOf(a), "hello");
  EXPECT_EQ(v.TermOf(b), "world");
}

TEST(Vocabulary, ManyTerms) {
  Vocabulary v;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(v.Intern("term" + std::to_string(i)), static_cast<TermId>(i));
  }
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_EQ(v.Lookup("term537"), 537u);
  EXPECT_EQ(v.TermOf(999), "term999");
}

TEST(Vocabulary, EmptyStringIsATerm) {
  Vocabulary v;
  TermId id = v.Intern("");
  EXPECT_EQ(v.Lookup(""), id);
  EXPECT_EQ(v.TermOf(id), "");
}

}  // namespace
}  // namespace stburst
