// Tests for geo/grid.

#include "stburst/geo/grid.h"

#include <gtest/gtest.h>

namespace stburst {
namespace {

TEST(UniformGrid, RejectsBadArguments) {
  EXPECT_TRUE(UniformGrid::Create(Rect(), 4, 4).status().IsInvalidArgument());
  EXPECT_TRUE(UniformGrid::Create(Rect(0, 0, 1, 1), 0, 4)
                  .status()
                  .IsInvalidArgument());
  // Zero-area bounds.
  EXPECT_TRUE(UniformGrid::Create(Rect(0, 0, 0, 1), 2, 2)
                  .status()
                  .IsInvalidArgument());
}

TEST(UniformGrid, CellIndexing) {
  auto grid = UniformGrid::Create(Rect(0, 0, 10, 10), 5, 2);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->cols(), 5u);
  EXPECT_EQ(grid->rows(), 2u);
  EXPECT_EQ(grid->num_cells(), 10u);

  size_t col, row;
  grid->CellCoords(Point2D{0.5, 0.5}, &col, &row);
  EXPECT_EQ(col, 0u);
  EXPECT_EQ(row, 0u);
  grid->CellCoords(Point2D{9.9, 9.9}, &col, &row);
  EXPECT_EQ(col, 4u);
  EXPECT_EQ(row, 1u);
  // Exact max boundary clamps into the last cell.
  grid->CellCoords(Point2D{10.0, 10.0}, &col, &row);
  EXPECT_EQ(col, 4u);
  EXPECT_EQ(row, 1u);
}

TEST(UniformGrid, OutOfBoundsClampToEdges) {
  auto grid = UniformGrid::Create(Rect(0, 0, 10, 10), 4, 4);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->CellIndex(Point2D{-100, -100}), 0u);
  EXPECT_EQ(grid->CellIndex(Point2D{100, 100}), grid->num_cells() - 1);
}

TEST(UniformGrid, CellRectTilesTheBounds) {
  auto grid = UniformGrid::Create(Rect(1, 2, 5, 10), 4, 2);
  ASSERT_TRUE(grid.ok());
  Rect first = grid->CellRect(0, 0);
  EXPECT_DOUBLE_EQ(first.min_x(), 1.0);
  EXPECT_DOUBLE_EQ(first.min_y(), 2.0);
  EXPECT_DOUBLE_EQ(first.max_x(), 2.0);
  EXPECT_DOUBLE_EQ(first.max_y(), 6.0);
  Rect last = grid->CellRect(3, 1);
  EXPECT_DOUBLE_EQ(last.max_x(), 5.0);
  EXPECT_DOUBLE_EQ(last.max_y(), 10.0);
}

TEST(UniformGrid, CellCenter) {
  auto grid = UniformGrid::Create(Rect(0, 0, 4, 4), 2, 2);
  ASSERT_TRUE(grid.ok());
  Point2D c = grid->CellCenter(0, 0);
  EXPECT_DOUBLE_EQ(c.x, 1.0);
  EXPECT_DOUBLE_EQ(c.y, 1.0);
  c = grid->CellCenter(1, 1);
  EXPECT_DOUBLE_EQ(c.x, 3.0);
  EXPECT_DOUBLE_EQ(c.y, 3.0);
}

TEST(UniformGrid, AggregateWeightsSumsPerCell) {
  auto grid = UniformGrid::Create(Rect(0, 0, 2, 2), 2, 2);
  ASSERT_TRUE(grid.ok());
  std::vector<Point2D> pts = {{0.5, 0.5}, {0.6, 0.4}, {1.5, 0.5}, {1.5, 1.5}};
  std::vector<double> w = {1.0, 2.0, 4.0, 8.0};
  auto cells = grid->AggregateWeights(pts, w);
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_DOUBLE_EQ(cells[0], 3.0);  // (0,0)
  EXPECT_DOUBLE_EQ(cells[1], 4.0);  // (1,0)
  EXPECT_DOUBLE_EQ(cells[2], 0.0);  // (0,1)
  EXPECT_DOUBLE_EQ(cells[3], 8.0);  // (1,1)

  double total = 0.0;
  for (double c : cells) total += c;
  EXPECT_DOUBLE_EQ(total, 15.0);
}

}  // namespace
}  // namespace stburst
