// Tests for core/pattern helpers (MBR, streams-in-rect) and the types.

#include "stburst/core/pattern.h"

#include <gtest/gtest.h>

namespace stburst {
namespace {

TEST(StreamsMbr, BoundingBoxOfPositions) {
  std::vector<Point2D> positions = {{0, 0}, {5, 1}, {2, 8}, {-3, 4}};
  Rect mbr = StreamsMbr({0, 1, 2}, positions);
  EXPECT_DOUBLE_EQ(mbr.min_x(), 0);
  EXPECT_DOUBLE_EQ(mbr.max_x(), 5);
  EXPECT_DOUBLE_EQ(mbr.max_y(), 8);
  EXPECT_TRUE(StreamsMbr({}, positions).empty());
}

TEST(StreamsInRect, InclusiveBoundaries) {
  std::vector<Point2D> positions = {{0, 0}, {1, 1}, {2, 2}, {5, 5}};
  auto inside = StreamsInRect(Rect(0, 0, 2, 2), positions);
  EXPECT_EQ(inside, (std::vector<StreamId>{0, 1, 2}));
  EXPECT_TRUE(StreamsInRect(Rect(), positions).empty());
}

TEST(StreamsInRect, MbrRoundTripCoversMembers) {
  // Every stream used to build the MBR must lie inside it (Table 1's
  // "# countries in MBR" is computed exactly this way).
  std::vector<Point2D> positions = {{0, 0}, {4, 7}, {9, 3}, {-2, -5}, {6, 6}};
  std::vector<StreamId> members = {1, 2, 4};
  Rect mbr = StreamsMbr(members, positions);
  auto inside = StreamsInRect(mbr, positions);
  for (StreamId m : members) {
    EXPECT_TRUE(std::binary_search(inside.begin(), inside.end(), m));
  }
  EXPECT_GE(inside.size(), members.size());
}

TEST(PatternTypes, ToStringSmoke) {
  CombinatorialPattern p;
  p.streams = {1, 2};
  p.timeframe = {3, 9};
  p.score = 1.25;
  EXPECT_NE(p.ToString().find("2 streams"), std::string::npos);

  SpatiotemporalWindow w;
  w.region = Rect(0, 0, 1, 1);
  w.streams = {0};
  w.timeframe = {2, 4};
  w.score = 0.5;
  EXPECT_NE(w.ToString().find("[2:4]"), std::string::npos);
}

}  // namespace
}  // namespace stburst
