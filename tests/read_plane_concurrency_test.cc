// Concurrency stress proof for the decoupled read plane: N reader threads
// hammer Search()/search_snapshot()/search_index() in a tight loop while
// the main thread runs 25 windowed (appending AND evicting) ticks. Every
// result must be internally consistent — computed wholly against one
// published generation, with per-reader generations monotonically
// non-decreasing — and the final published index must be posting-identical
// to a from-scratch rebuild. Runs at 2/4/8 readers; built into its own
// ctest target (stburst_concurrency_tests, label "concurrency") with a
// long per-test timeout, and exercised by both the ASan and TSan CI legs.
//
// gtest assertions are not thread-safe, so readers record violations into
// per-thread reports and the main thread asserts after joining.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "index_test_util.h"
#include "stburst/common/random.h"
#include "stburst/index/pattern_index.h"
#include "stburst/index/search_engine.h"
#include "stburst/stream/feed_runtime.h"

namespace stburst {
namespace {

constexpr size_t kStreams = 6;
constexpr size_t kVocab = 48;
constexpr Timestamp kWindow = 6;
constexpr int kWarmupTicks = 8;
constexpr int kStressTicks = 25;

Collection MakeSeedCollection() {
  auto c = Collection::Create(2);
  EXPECT_TRUE(c.ok());
  for (size_t s = 0; s < kStreams; ++s) {
    c->AddStream("s" + std::to_string(s), {},
                 Point2D{static_cast<double>(s % 3),
                         static_cast<double>(s / 3)});
  }
  Vocabulary* v = c->mutable_vocabulary();
  for (size_t t = 0; t < kVocab; ++t) v->Intern("term" + std::to_string(t));
  return std::move(*c);
}

Snapshot MakeSnapshot(Rng& rng) {
  Snapshot snap;
  for (StreamId s = 0; s < kStreams; ++s) {
    const size_t docs = 1 + rng.NextUint64(2);
    for (size_t d = 0; d < docs; ++d) {
      SnapshotDocument doc;
      doc.stream = s;
      const size_t len = 2 + rng.NextUint64(4);
      for (size_t i = 0; i < len; ++i) {
        TermId tok = static_cast<TermId>(rng.NextUint64(kVocab));
        if (rng.Bernoulli(0.5)) {
          tok = static_cast<TermId>(tok % (kVocab / 4 + 1));
        }
        doc.tokens.push_back(tok);
      }
      snap.push_back(std::move(doc));
    }
  }
  return snap;
}

FeedRuntimeOptions StressOptions(size_t cache_entries = 0) {
  FeedRuntimeOptions opts;
  opts.num_threads = 2;  // one pool worker: publication races a real pool
  opts.retention_window = kWindow;
  opts.refresh_budget = 2;
  opts.search_serving = SearchServing::kCombinatorial;
  opts.search_cache_entries = cache_entries;
  opts.miner.stcomb.min_interval_burstiness = 0.05;
  return opts;
}

std::vector<std::vector<TermId>> MakeQueries() {
  std::vector<std::vector<TermId>> queries;
  for (TermId t = 0; t < 16; ++t) {
    queries.push_back({t, static_cast<TermId>((t * 7 + 3) % kVocab)});
  }
  return queries;
}

// Everything one reader observed; asserted on the main thread after join.
struct ReaderReport {
  size_t queries_run = 0;
  uint64_t first_generation = 0;
  uint64_t last_generation = 0;
  size_t distinct_generations = 0;
  std::vector<std::string> violations;

  void Violation(std::string what) {
    if (violations.size() < 8) violations.push_back(std::move(what));
  }
};

// The reader loop: load one snapshot, check every derived fact against
// that snapshot alone, repeat. No locks, no gtest, no shared mutable
// state beyond the stop flag.
void ReaderLoop(const FeedRuntime& runtime,
                const std::vector<std::vector<TermId>>& queries,
                const std::atomic<bool>& stop, ReaderReport* report) {
  uint64_t last_generation = 0;
  size_t next_query = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    const std::shared_ptr<const IndexSnapshot> snapshot =
        runtime.search_snapshot();
    if (snapshot == nullptr) {
      report->Violation("search_snapshot() returned null");
      return;
    }
    if (snapshot->generation < last_generation) {
      report->Violation("generation went backwards: " +
                        std::to_string(snapshot->generation) + " after " +
                        std::to_string(last_generation));
      return;
    }
    if (snapshot->generation != snapshot->index.generation()) {
      report->Violation("snapshot metadata disagrees with its index");
      return;
    }
    // The compatibility accessor must point at a published snapshot's
    // index — ours, or a successor published since our load. Only
    // dereference it when it is ours: the raw pointer carries no
    // lifetime, which is exactly why snapshot holders are the API.
    const InvertedIndex* via_accessor = runtime.search_index();
    if (via_accessor == &snapshot->index &&
        via_accessor->generation() != snapshot->generation) {
      report->Violation("search_index() generation mismatch");
      return;
    }

    const std::vector<TermId>& query = queries[next_query];
    next_query = (next_query + 1) % queries.size();

    // Internal consistency of one result: computed wholly against the
    // pinned snapshot — its generation stamp, its live-doc floor, and
    // exact agreement with the exhaustive reference over the same
    // snapshot (a torn read would break one of these first).
    const TopKResult result = ThresholdTopK(snapshot->index, query, 5);
    if (result.generation != snapshot->generation) {
      report->Violation("result stamped with a foreign generation");
      return;
    }
    for (const ScoredDoc& doc : result.docs) {
      if (doc.doc < snapshot->doc_id_base) {
        report->Violation("posting precedes the snapshot's live window");
        return;
      }
    }
    // Same score sequence to the 1e-9 the repo's differential test grants
    // TA (its aggregates sum per-term scores in a different order), and
    // the same docs everywhere above the truncation boundary. Docs tied
    // exactly AT the k-th score may legally differ: TA terminates before
    // seeing every member of a tie straddling the cut.
    const TopKResult reference = ExhaustiveTopK(snapshot->index, query, 5);
    bool matches = result.docs.size() == reference.docs.size();
    const double boundary =
        reference.docs.empty() ? 0.0 : reference.docs.back().score;
    for (size_t i = 0; matches && i < result.docs.size(); ++i) {
      const bool score_ok =
          std::abs(result.docs[i].score - reference.docs[i].score) < 1e-9;
      const bool same_doc = result.docs[i].doc == reference.docs[i].doc;
      const bool boundary_tie =
          std::abs(result.docs[i].score - boundary) < 1e-9;
      matches = score_ok && (same_doc || boundary_tie);
    }
    if (!matches) {
      report->Violation("TA and exhaustive disagree on one snapshot");
      return;
    }

    // The public API takes its own (possibly newer) snapshot; it may only
    // move forward relative to what this reader just saw.
    const TopKResult via_api = runtime.Search(query, 5);
    if (via_api.generation < snapshot->generation) {
      report->Violation("Search() answered from an older generation");
      return;
    }

    if (report->queries_run == 0) {
      report->first_generation = snapshot->generation;
    }
    if (snapshot->generation != last_generation) {
      ++report->distinct_generations;
    }
    last_generation = snapshot->generation;
    report->last_generation = snapshot->generation;
    ++report->queries_run;
  }
}

InvertedIndex RebuildReferenceSearchIndex(const FeedRuntime& runtime) {
  PatternIndex patterns;
  for (TermId t = 0; t < runtime.result().terms.size(); ++t) {
    const TermPatterns& slot = runtime.result().terms[t];
    for (const auto& p : slot.combinatorial) patterns.AddCombinatorial(t, p);
  }
  auto engine = BurstySearchEngine::Build(runtime.collection(), patterns);
  return engine.index();
}

class ReadPlaneStressTest : public testing::TestWithParam<size_t> {};

TEST_P(ReadPlaneStressTest, ReadersStayConsistentUnderLiveTicks) {
  const size_t num_readers = GetParam();
  auto runtime = FeedRuntime::Create(MakeSeedCollection(), StressOptions());
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
  Rng rng(777);
  for (int i = 0; i < kWarmupTicks; ++i) {
    ASSERT_TRUE(runtime->Tick(MakeSnapshot(rng)).ok());
  }
  const uint64_t warm_generation = runtime->search_snapshot()->generation;

  const std::vector<std::vector<TermId>> queries = MakeQueries();
  std::atomic<bool> stop{false};
  std::vector<ReaderReport> reports(num_readers);
  std::vector<std::thread> readers;
  readers.reserve(num_readers);
  for (size_t r = 0; r < num_readers; ++r) {
    readers.emplace_back([&runtime, &queries, &stop, &reports, r] {
      ReaderLoop(*runtime, queries, stop, &reports[r]);
    });
  }

  // 25 windowed ticks: every one appends, evicts, and publishes. The short
  // sleep guarantees readers get scheduled against multiple generations
  // even on a single-core machine.
  for (int i = 0; i < kStressTicks; ++i) {
    ASSERT_TRUE(runtime->Tick(MakeSnapshot(rng)).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  for (size_t r = 0; r < reports.size(); ++r) {
    const ReaderReport& report = reports[r];
    EXPECT_GT(report.queries_run, 0u) << "reader " << r << " never ran";
    for (const std::string& violation : report.violations) {
      ADD_FAILURE() << "reader " << r << ": " << violation;
    }
    EXPECT_GE(report.last_generation, report.first_generation);
  }

  // The write plane made real progress under the readers...
  const std::shared_ptr<const IndexSnapshot> final_snapshot =
      runtime->search_snapshot();
  EXPECT_EQ(final_snapshot->generation,
            warm_generation + static_cast<uint64_t>(kStressTicks));
  // ...and landed exactly where a from-scratch rebuild lands.
  ExpectIdenticalIndexes(final_snapshot->index,
                         RebuildReferenceSearchIndex(*runtime));
}

INSTANTIATE_TEST_SUITE_P(Readers, ReadPlaneStressTest,
                         testing::Values(2, 4, 8),
                         [](const testing::TestParamInfo<size_t>& info) {
                           return std::to_string(info.param) + "readers";
                         });

// Same drumbeat with the query-result cache on: readers go through
// Search() only (cache mutex + snapshot load), which under TSan proves
// the cache's internal locking against concurrent ticks and readers.
TEST(ReadPlaneStressTest, CachedSearchStaysConsistentUnderLiveTicks) {
  auto runtime =
      FeedRuntime::Create(MakeSeedCollection(), StressOptions(/*cache=*/32));
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
  Rng rng(778);
  for (int i = 0; i < kWarmupTicks; ++i) {
    ASSERT_TRUE(runtime->Tick(MakeSnapshot(rng)).ok());
  }

  const std::vector<std::vector<TermId>> queries = MakeQueries();
  constexpr size_t kReaders = 4;
  std::atomic<bool> stop{false};
  std::vector<ReaderReport> reports(kReaders);
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&runtime, &queries, &stop, &reports, r] {
      ReaderReport* report = &reports[r];
      uint64_t last_generation = 0;
      size_t next_query = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::vector<TermId>& query = queries[next_query];
        next_query = (next_query + 1) % queries.size();
        const TopKResult result = runtime->Search(query, 5);
        if (result.generation < last_generation) {
          report->Violation("cached Search() went backwards in generations");
          return;
        }
        for (size_t i = 1; i < result.docs.size(); ++i) {
          if (result.docs[i].score > result.docs[i - 1].score) {
            report->Violation("cached result out of score order");
            return;
          }
        }
        last_generation = result.generation;
        ++report->queries_run;
      }
    });
  }

  for (int i = 0; i < kStressTicks; ++i) {
    ASSERT_TRUE(runtime->Tick(MakeSnapshot(rng)).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  size_t total_queries = 0;
  for (size_t r = 0; r < reports.size(); ++r) {
    EXPECT_GT(reports[r].queries_run, 0u) << "reader " << r << " never ran";
    for (const std::string& violation : reports[r].violations) {
      ADD_FAILURE() << "reader " << r << ": " << violation;
    }
    total_queries += reports[r].queries_run;
  }
  // Accounting sanity: every query was either a hit or a miss.
  const QueryCacheStats stats = runtime->search_cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, total_queries);
  EXPECT_GT(stats.hits, 0u);
}

}  // namespace
}  // namespace stburst
