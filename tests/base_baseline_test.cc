// Tests for the Base baseline miner (core/base_baseline, paper §6.2.2).

#include "stburst/core/base_baseline.h"

#include <gtest/gtest.h>

namespace stburst {
namespace {

TEST(BaseBinarizedIntervals, BinarizesAtZero) {
  auto ivs = BaseBinarizedIntervals({-1.0, 2.0, 3.0, -0.5, -0.5, 1.0}, 1);
  ASSERT_EQ(ivs.size(), 2u);
  EXPECT_EQ(ivs[0], (Interval{1, 2}));
  EXPECT_EQ(ivs[1], (Interval{5, 5}));
}

TEST(BaseBinarizedIntervals, FillsShortInteriorGaps) {
  // Gap of length 1 < ell=2 between two runs is filled.
  auto ivs = BaseBinarizedIntervals({1.0, -0.1, 1.0}, 2);
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_EQ(ivs[0], (Interval{0, 2}));
}

TEST(BaseBinarizedIntervals, KeepsLongGaps) {
  auto ivs = BaseBinarizedIntervals({1.0, -0.1, -0.1, 1.0}, 2);
  ASSERT_EQ(ivs.size(), 2u);
}

TEST(BaseBinarizedIntervals, LeadingTrailingZerosNeverFilled) {
  // Zeros at the boundary stay zeros regardless of ell.
  auto ivs = BaseBinarizedIntervals({-1.0, 2.0, -1.0}, 10);
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_EQ(ivs[0], (Interval{1, 1}));
}

TEST(BaseBinarizedIntervals, AllNegativeOrEmpty) {
  EXPECT_TRUE(BaseBinarizedIntervals({-1.0, -2.0}, 2).empty());
  EXPECT_TRUE(BaseBinarizedIntervals({}, 2).empty());
}

TermSeries MakeTwoStreamSeries() {
  // Streams 0 and 1 burst over [10, 15] against a flat background of 1.
  TermSeries series(3, 40);
  for (StreamId s = 0; s < 3; ++s) {
    for (Timestamp t = 0; t < 40; ++t) series.set(s, t, 1.0);
  }
  for (StreamId s = 0; s < 2; ++s) {
    for (Timestamp t = 10; t <= 15; ++t) series.add(s, t, 6.0);
  }
  return series;
}

ExpectedModelFactory MeanFactory() {
  return [] { return std::make_unique<GlobalMeanModel>(); };
}

TEST(BaseMine, MergesMatchingIntervalsAcrossStreams) {
  TermSeries series = MakeTwoStreamSeries();
  BaseOptions opts;
  opts.gap_fill = 2;
  opts.merge_jaccard = 0.5;
  auto patterns = BaseMine(series, MeanFactory(), opts);
  // The two bursting streams must end up in one pattern covering the burst.
  bool found = false;
  for (const auto& p : patterns) {
    if (p.streams.size() >= 2) {
      EXPECT_TRUE(p.timeframe.Intersects(Interval{10, 15}));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(BaseMine, MergedTimeframeIsIntersection) {
  // Stream 0 bursts [10, 20], stream 1 bursts [14, 24]: Jaccard 7/15 with
  // delta 0.4 merges, and the pattern keeps the intersection [14, 20].
  TermSeries series(2, 40);
  for (StreamId s = 0; s < 2; ++s) {
    for (Timestamp t = 0; t < 40; ++t) series.set(s, t, 1.0);
  }
  for (Timestamp t = 10; t <= 20; ++t) series.add(0, t, 9.0);
  for (Timestamp t = 14; t <= 24; ++t) series.add(1, t, 9.0);

  BaseOptions opts;
  opts.gap_fill = 1;
  opts.merge_jaccard = 0.4;
  auto patterns = BaseMine(series, MeanFactory(), opts);
  const BasePattern* merged = nullptr;
  for (const auto& p : patterns) {
    if (p.streams.size() == 2) merged = &p;
  }
  ASSERT_NE(merged, nullptr);
  EXPECT_GE(merged->timeframe.start, 13);
  EXPECT_LE(merged->timeframe.end, 21);
}

TEST(BaseMine, HighDeltaPreventsMerging) {
  TermSeries series = MakeTwoStreamSeries();
  BaseOptions opts;
  opts.merge_jaccard = 1.01;  // impossible threshold
  auto patterns = BaseMine(series, MeanFactory(), opts);
  for (const auto& p : patterns) EXPECT_EQ(p.streams.size(), 1u);
}

TEST(BaseMine, CustomStreamOrderIsRespected) {
  TermSeries series = MakeTwoStreamSeries();
  std::vector<StreamId> order = {1, 0, 2};
  BaseOptions opts;
  auto patterns = BaseMine(series, MeanFactory(), opts, &order);
  // Merging still yields one multi-stream pattern regardless of order.
  bool found = false;
  for (const auto& p : patterns) {
    if (p.streams.size() >= 2) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(BaseMine, QuietSeriesYieldsNoMultiStreamPatterns) {
  TermSeries series(4, 30);
  for (StreamId s = 0; s < 4; ++s) {
    for (Timestamp t = 0; t < 30; ++t) series.set(s, t, 2.0);
  }
  auto patterns = BaseMine(series, MeanFactory());
  // Flat series: burstiness never positive after the first observation.
  EXPECT_TRUE(patterns.empty());
}

}  // namespace
}  // namespace stburst
