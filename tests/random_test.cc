// Tests for the deterministic RNG and samplers (common/random).

#include "stburst/common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace stburst {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BoundedUniformStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(6);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformMeanCloseToCenter) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(2.0, 4.0);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(9);
  const double lambda = 2.5;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.01);
}

TEST(Rng, WeibullMeanMatchesClosedForm) {
  Rng rng(10);
  const double k = 2.0, c = 3.0;
  // E[X] = c * Gamma(1 + 1/k); Gamma(1.5) = sqrt(pi)/2.
  const double expected = c * std::sqrt(M_PI) / 2.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Weibull(k, c);
  EXPECT_NEAR(sum / n, expected, 0.03);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.08);
}

TEST(Rng, PoissonMeanSmallLambda) {
  Rng rng(12);
  const double lambda = 3.2;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(lambda));
  EXPECT_NEAR(sum / n, lambda, 0.05);
}

TEST(Rng, PoissonMeanLargeLambda) {
  Rng rng(13);
  const double lambda = 250.0;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(lambda));
  EXPECT_NEAR(sum / n, lambda, 1.5);
}

TEST(Rng, PoissonZeroLambdaIsZero) {
  Rng rng(14);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(15);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(16);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(18);
  for (int trial = 0; trial < 200; ++trial) {
    auto sample = rng.SampleWithoutReplacement(50, 12);
    EXPECT_EQ(sample.size(), 12u);
    std::set<size_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), 12u);
    for (size_t s : sample) EXPECT_LT(s, 50u);
  }
}

TEST(Rng, SampleAllElements) {
  Rng rng(19);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(ZipfSampler, RanksAreWithinRange) {
  Rng rng(20);
  ZipfSampler zipf(100, 1.1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(&rng), 100u);
}

TEST(ZipfSampler, LowerRanksMoreFrequent) {
  Rng rng(21);
  ZipfSampler zipf(50, 1.2);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[5], counts[25]);
}

TEST(ZipfSampler, SingleElement) {
  Rng rng(22);
  ZipfSampler zipf(1, 2.0);
  EXPECT_EQ(zipf.Sample(&rng), 0u);
}

TEST(WeibullPdf, MatchesClosedFormPoints) {
  // k=1, c=1 is Exponential(1): pdf(x) = exp(-x).
  EXPECT_NEAR(WeibullPdf(0.5, 1.0, 1.0), std::exp(-0.5), 1e-12);
  EXPECT_DOUBLE_EQ(WeibullPdf(-1.0, 2.0, 1.0), 0.0);
  // pdf integrates to ~1 (trapezoid over a wide range).
  double integral = 0.0, prev = WeibullPdf(0.0, 2.0, 3.0);
  const double dx = 0.001;
  for (double x = dx; x < 30.0; x += dx) {
    double cur = WeibullPdf(x, 2.0, 3.0);
    integral += 0.5 * (prev + cur) * dx;
    prev = cur;
  }
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(WeibullMode, PeakLocation) {
  // Mode of Weibull(k, c) = c ((k-1)/k)^{1/k}; the pdf must be maximal there.
  const double k = 3.0, c = 5.0;
  double mode = WeibullMode(k, c);
  double at_mode = WeibullPdf(mode, k, c);
  EXPECT_GT(at_mode, WeibullPdf(mode * 0.8, k, c));
  EXPECT_GT(at_mode, WeibullPdf(mode * 1.2, k, c));
  EXPECT_DOUBLE_EQ(WeibullMode(0.9, 2.0), 0.0);  // k <= 1: mode at origin
}

}  // namespace
}  // namespace stburst
