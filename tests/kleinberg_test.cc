// Tests for the Kleinberg two-state burst automaton (core/kleinberg).

#include "stburst/core/kleinberg.h"

#include <gtest/gtest.h>

#include "stburst/common/random.h"
#include "stburst/core/stcomb.h"

namespace stburst {
namespace {

TEST(KleinbergBursts, RejectsBadInput) {
  EXPECT_TRUE(KleinbergBursts({1.0}, {1.0, 2.0}).status().IsInvalidArgument());
  KleinbergOptions bad_s;
  bad_s.s = 1.0;
  EXPECT_TRUE(KleinbergBursts({1.0}, {2.0}, bad_s).status().IsInvalidArgument());
  KleinbergOptions bad_gamma;
  bad_gamma.gamma = -0.5;
  EXPECT_TRUE(
      KleinbergBursts({1.0}, {2.0}, bad_gamma).status().IsInvalidArgument());
  // relevant > total is inconsistent.
  EXPECT_TRUE(KleinbergBursts({3.0}, {2.0}).status().IsInvalidArgument());
}

TEST(KleinbergBursts, EmptyOrZeroInput) {
  auto none = KleinbergBursts({}, {});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());

  auto zeros = KleinbergBursts({0, 0, 0}, {10, 10, 10});
  ASSERT_TRUE(zeros.ok());
  EXPECT_TRUE(zeros->empty());
}

TEST(KleinbergBursts, FlatRateHasNoBursts) {
  std::vector<double> r(40, 5.0), d(40, 100.0);
  auto bursts = KleinbergBursts(r, d);
  ASSERT_TRUE(bursts.ok());
  EXPECT_TRUE(bursts->empty());
}

TEST(KleinbergBursts, DetectsPlantedBurst) {
  // Base rate 5/100; rate 30/100 during [15, 22].
  std::vector<double> r(50, 5.0), d(50, 100.0);
  for (int t = 15; t <= 22; ++t) r[t] = 30.0;
  auto bursts = KleinbergBursts(r, d);
  ASSERT_TRUE(bursts.ok());
  ASSERT_EQ(bursts->size(), 1u);
  const auto& b = (*bursts)[0];
  EXPECT_LE(b.interval.start, 16);
  EXPECT_GE(b.interval.end, 21);
  EXPECT_GT(b.burstiness, 0.0);
}

TEST(KleinbergBursts, SeparatesTwoBursts) {
  std::vector<double> r(60, 4.0), d(60, 100.0);
  for (int t = 10; t <= 14; ++t) r[t] = 25.0;
  for (int t = 40; t <= 46; ++t) r[t] = 25.0;
  auto bursts = KleinbergBursts(r, d);
  ASSERT_TRUE(bursts.ok());
  ASSERT_EQ(bursts->size(), 2u);
  EXPECT_LT((*bursts)[0].interval.end, (*bursts)[1].interval.start);
}

TEST(KleinbergBursts, HigherGammaSuppressesWeakBursts) {
  std::vector<double> r(50, 5.0), d(50, 100.0);
  for (int t = 20; t <= 21; ++t) r[t] = 11.0;  // weak, short bump
  KleinbergOptions lenient;
  lenient.gamma = 0.05;
  KleinbergOptions strict;
  strict.gamma = 8.0;
  auto weak = KleinbergBursts(r, d, lenient);
  auto none = KleinbergBursts(r, d, strict);
  ASSERT_TRUE(weak.ok());
  ASSERT_TRUE(none.ok());
  EXPECT_GE(weak->size(), none->size());
  EXPECT_TRUE(none->empty());
}

TEST(KleinbergBursts, IntervalsNonOverlappingOrdered) {
  Rng rng(12);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> r(100), d(100);
    for (int t = 0; t < 100; ++t) {
      d[t] = 50.0 + rng.NextUint64(50);
      r[t] = static_cast<double>(rng.NextUint64(static_cast<uint64_t>(d[t])));
    }
    auto bursts = KleinbergBursts(r, d);
    ASSERT_TRUE(bursts.ok());
    for (size_t i = 1; i < bursts->size(); ++i) {
      EXPECT_GT((*bursts)[i].interval.start, (*bursts)[i - 1].interval.end);
    }
  }
}

TEST(KleinbergBursts, PlugsIntoStCombAsAlternativeDetector) {
  // §3: STComb accepts any non-overlapping interval reporter. Build stream
  // intervals from Kleinberg output and mine the joint pattern.
  std::vector<StreamInterval> intervals;
  for (StreamId s = 0; s < 3; ++s) {
    std::vector<double> r(50, 3.0), d(50, 100.0);
    for (int t = 20; t <= 27; ++t) r[t] = 25.0;
    auto bursts = KleinbergBursts(r, d);
    ASSERT_TRUE(bursts.ok());
    for (const auto& b : *bursts) {
      intervals.push_back(StreamInterval{s, b.interval, b.burstiness});
    }
  }
  StComb miner;
  auto patterns = miner.MineFromIntervals(intervals);
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_EQ(patterns[0].streams, (std::vector<StreamId>{0, 1, 2}));
  EXPECT_TRUE(patterns[0].timeframe.Intersects(Interval{20, 27}));
}

}  // namespace
}  // namespace stburst
