// Tests for the threading runtime (common/parallel).

#include "stburst/common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <new>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace stburst {
namespace {

TEST(ThreadPool, ExecutesEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // nothing queued: must not block
}

TEST(ThreadPool, DestructionDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) pool.Submit([&count] { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ResolveThreadCount, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(ResolveThreadCount(0), 1u);
  EXPECT_EQ(ResolveThreadCount(7), 7u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    std::vector<std::atomic<int>> visits(1000);
    for (auto& v : visits) v.store(0);
    ParallelFor(threads, 0, visits.size(),
                [&](size_t /*worker*/, size_t i) { visits[i].fetch_add(1); });
    for (size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelFor, WorkerIdsIndexBoundedScratch) {
  const size_t threads = 4;
  std::vector<std::atomic<long>> per_worker(threads);
  for (auto& v : per_worker) v.store(0);
  ParallelFor(threads, 0, 10000, [&](size_t worker, size_t i) {
    ASSERT_LT(worker, threads);
    per_worker[worker].fetch_add(static_cast<long>(i));
  });
  long total = 0;
  for (auto& v : per_worker) total += v.load();
  EXPECT_EQ(total, 10000L * 9999L / 2);
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  int calls = 0;
  ParallelFor(size_t{4}, 5, 5, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(size_t{4}, 7, 8, [&](size_t worker, size_t i) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(i, 7u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, NonZeroBegin) {
  std::atomic<long> sum{0};
  ParallelFor(size_t{3}, 100, 200,
              [&](size_t, size_t i) { sum.fetch_add(static_cast<long>(i)); });
  long expect = 0;
  for (long i = 100; i < 200; ++i) expect += i;
  EXPECT_EQ(sum.load(), expect);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      ParallelFor(size_t{4}, 0, 1000,
                  [&](size_t, size_t i) {
                    if (i == 537) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ParallelFor, ExactlyOneExceptionPropagatesWhenManyThrow) {
  // Every index throws; the loop must rethrow exactly one (the first
  // captured), quiesce the rest, and leave the count proving no index ran
  // twice.
  std::atomic<size_t> attempts{0};
  try {
    ParallelFor(size_t{4}, 0, 64, [&](size_t, size_t i) {
      attempts.fetch_add(1);
      throw std::runtime_error("worker " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("worker"), std::string::npos);
  }
  EXPECT_LE(attempts.load(), 64u);
  EXPECT_GE(attempts.load(), 1u);
}

TEST(ParallelFor, SerialPathPropagatesToo) {
  // The null-pool inline path takes a different code route than the pooled
  // one; its exception contract must match.
  EXPECT_THROW(ParallelFor(static_cast<ThreadPool*>(nullptr), 0, 10,
                           [&](size_t, size_t i) {
                             if (i == 7) throw std::runtime_error("inline");
                           }),
               std::runtime_error);
}

TEST(ParallelFor, PropagatesBadAllocFromWorkers) {
  ThreadPool pool(3);
  EXPECT_THROW(ParallelFor(&pool, 0, 100,
                           [&](size_t, size_t i) {
                             if (i == 37) throw std::bad_alloc();
                           }),
               std::bad_alloc);
}

TEST(ParallelFor, PoolStaysUsableAfterAnException) {
  // FeedRuntime reuses one standing pool across ticks; a tick that died on
  // a worker exception must leave the pool fully serviceable.
  ThreadPool pool(3);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(ParallelFor(&pool, 0, 50,
                             [&](size_t, size_t i) {
                               if (i % 2 == 0) {
                                 throw std::runtime_error("boom");
                               }
                             }),
                 std::runtime_error);
    std::atomic<long> sum{0};
    ParallelFor(&pool, 0, 100, [&](size_t, size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
    EXPECT_EQ(sum.load(), 99L * 100L / 2);
  }
}

// Deterministic busy-work whose cost follows a Zipf-like skew: the first
// tasks dominate, so a worker that keeps its own (LIFO) tail busy leaves the
// heavy head for thieves — the steal-heavy regime the deques exist for.
double ZipfBusyWork(size_t i) {
  size_t iters = 20000 / (i + 1) + 10;
  double acc = 0.0;
  for (size_t k = 0; k < iters; ++k) {
    acc += std::sin(static_cast<double>(k + i));
  }
  return acc;
}

TEST(ThreadPool, ZipfFanOutDeterministicAcrossThreadCounts) {
  // Each task writes its result into its own index slot, so the output must
  // be independent of which worker ran what and in what order. Children are
  // submitted from inside workers: they land on the submitting worker's own
  // deque and reach other workers only by stealing.
  constexpr size_t kGenerators = 8;
  constexpr size_t kChildren = 32;
  constexpr size_t kTasks = kGenerators * kChildren;
  auto run = [&](size_t threads) {
    std::vector<double> out(kTasks, 0.0);
    ThreadPool pool(threads);
    for (size_t g = 0; g < kGenerators; ++g) {
      pool.Submit([&pool, &out, g] {
        for (size_t c = 0; c < kChildren; ++c) {
          const size_t i = g * kChildren + c;
          pool.Submit([&out, i] { out[i] = ZipfBusyWork(i); });
        }
      });
    }
    pool.Wait();
    return out;
  };
  const std::vector<double> reference = run(1);
  for (size_t threads : {2u, 4u, 8u}) {
    EXPECT_EQ(run(threads), reference) << threads << " threads";
  }
}

TEST(ThreadPool, NestedGeneratorSubmitsStress) {
  // Wait() must count grandchildren submitted from inside running tasks,
  // and shutdown must not orphan work a worker queued onto its own deque.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int g = 0; g < 8; ++g) {
    pool.Submit([&pool, &count] {
      for (int c = 0; c < 100; ++c) {
        pool.Submit([&count] { count.fetch_add(1); });
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 800);
}

TEST(ThreadPool, PinThreadsSmokeTest) {
  // Pinning is best-effort (and a no-op off Linux); the pool must behave
  // identically either way.
  ThreadPoolOptions options;
  options.num_threads = 2;
  options.pin_threads = true;
  ThreadPool pool(options);
  EXPECT_EQ(pool.num_threads(), 2u);
  std::atomic<long> sum{0};
  ParallelFor(&pool, 0, 1000,
              [&](size_t, size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 999L * 1000L / 2);
}

TEST(ParallelFor, SharedPoolRunsMultipleLoops) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 5; ++round) {
    ParallelFor(&pool, 0, 100,
                [&](size_t, size_t i) { sum.fetch_add(static_cast<long>(i)); });
  }
  EXPECT_EQ(sum.load(), 5 * (99L * 100L / 2));
}

}  // namespace
}  // namespace stburst
