// Tests for the threading runtime (common/parallel).

#include "stburst/common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace stburst {
namespace {

TEST(ThreadPool, ExecutesEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // nothing queued: must not block
}

TEST(ThreadPool, DestructionDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) pool.Submit([&count] { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ResolveThreadCount, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(ResolveThreadCount(0), 1u);
  EXPECT_EQ(ResolveThreadCount(7), 7u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    std::vector<std::atomic<int>> visits(1000);
    for (auto& v : visits) v.store(0);
    ParallelFor(threads, 0, visits.size(),
                [&](size_t /*worker*/, size_t i) { visits[i].fetch_add(1); });
    for (size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelFor, WorkerIdsIndexBoundedScratch) {
  const size_t threads = 4;
  std::vector<std::atomic<long>> per_worker(threads);
  for (auto& v : per_worker) v.store(0);
  ParallelFor(threads, 0, 10000, [&](size_t worker, size_t i) {
    ASSERT_LT(worker, threads);
    per_worker[worker].fetch_add(static_cast<long>(i));
  });
  long total = 0;
  for (auto& v : per_worker) total += v.load();
  EXPECT_EQ(total, 10000L * 9999L / 2);
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  int calls = 0;
  ParallelFor(size_t{4}, 5, 5, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(size_t{4}, 7, 8, [&](size_t worker, size_t i) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(i, 7u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, NonZeroBegin) {
  std::atomic<long> sum{0};
  ParallelFor(size_t{3}, 100, 200,
              [&](size_t, size_t i) { sum.fetch_add(static_cast<long>(i)); });
  long expect = 0;
  for (long i = 100; i < 200; ++i) expect += i;
  EXPECT_EQ(sum.load(), expect);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      ParallelFor(size_t{4}, 0, 1000,
                  [&](size_t, size_t i) {
                    if (i == 537) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ParallelFor, SharedPoolRunsMultipleLoops) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 5; ++round) {
    ParallelFor(&pool, 0, 100,
                [&](size_t, size_t i) { sum.fetch_add(static_cast<long>(i)); });
  }
  EXPECT_EQ(sum.load(), 5 * (99L * 100L / 2));
}

}  // namespace
}  // namespace stburst
