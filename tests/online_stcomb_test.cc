// Tests for the online STComb variant (core/online_stcomb) and the
// maximal-clique enumeration (core/max_clique), the two §3/§8 extensions.

#include "stburst/core/online_stcomb.h"

#include <gtest/gtest.h>

#include "stburst/common/random.h"
#include "stburst/core/max_clique.h"
#include "stburst/stream/frequency.h"

namespace stburst {
namespace {

TEST(OnlineStComb, RejectsWrongSnapshotSize) {
  OnlineStComb miner(3);
  EXPECT_TRUE(miner.Push({1.0}).IsInvalidArgument());
}

TEST(OnlineStComb, MatchesBatchAtEveryPrefix) {
  // The core equivalence: CurrentPatterns() after k pushes must equal batch
  // STComb over the k-length prefix.
  Rng rng(21);
  const size_t n = 8;
  const Timestamp length = 60;
  TermSeries series(n, length);
  for (StreamId s = 0; s < n; ++s) {
    for (Timestamp t = 0; t < length; ++t) {
      series.set(s, t, rng.Exponential(2.0));
    }
  }
  for (StreamId s = 2; s <= 5; ++s) {
    for (Timestamp t = 25; t < 35; ++t) series.add(s, t, 10.0);
  }

  StCombOptions opts;
  opts.min_interval_burstiness = 0.05;
  OnlineStComb online(n, opts);
  StComb batch(opts);

  for (Timestamp t = 0; t < length; ++t) {
    ASSERT_TRUE(online.Push(series.SnapshotColumn(t)).ok());
    if (t % 7 != 6) continue;  // compare at a few prefixes

    TermSeries prefix(n, t + 1);
    for (StreamId s = 0; s < n; ++s) {
      for (Timestamp u = 0; u <= t; ++u) prefix.set(s, u, series.at(s, u));
    }
    auto expected = batch.MinePatterns(prefix);
    auto got = online.CurrentPatterns();
    ASSERT_EQ(got.size(), expected.size()) << "prefix " << t;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].streams, expected[i].streams) << "prefix " << t;
      EXPECT_EQ(got[i].timeframe, expected[i].timeframe);
      EXPECT_NEAR(got[i].score, expected[i].score, 1e-9);
    }
  }
  EXPECT_EQ(online.current_time(), length);
}

TEST(OnlineStComb, LazyRefreshSkipsQuietStreams) {
  // A stream that stays at zero never contributes intervals.
  OnlineStComb miner(2);
  for (int t = 0; t < 10; ++t) {
    ASSERT_TRUE(miner.Push({t == 5 ? 4.0 : 1.0, 0.0}).ok());
  }
  for (const StreamInterval& si : miner.CurrentIntervals()) {
    EXPECT_EQ(si.stream, 0u);
  }
}

TEST(OnlineStComb, PatternsAppearWhenBurstArrives) {
  OnlineStComb miner(3);
  // Quiet prefix: no patterns.
  for (int t = 0; t < 10; ++t) {
    ASSERT_TRUE(miner.Push({1.0, 1.0, 1.0}).ok());
  }
  EXPECT_TRUE(miner.CurrentPatterns().empty());
  // Joint burst on streams 0 and 1.
  for (int t = 0; t < 5; ++t) {
    ASSERT_TRUE(miner.Push({9.0, 9.0, 1.0}).ok());
  }
  auto patterns = miner.CurrentPatterns();
  ASSERT_GE(patterns.size(), 1u);
  EXPECT_EQ(patterns[0].streams, (std::vector<StreamId>{0, 1}));
}

TEST(OnlineStComb, PushFromIndexTracksALiveFedIndex) {
  // End-to-end online/batch equivalence on a live feed: the online miner
  // consumes snapshots straight from the shared FrequencyIndex as appends
  // land, and must agree with batch STComb over the final data.
  auto c = Collection::Create(6);
  ASSERT_TRUE(c.ok());
  const size_t kStreams = 4;
  for (size_t s = 0; s < kStreams; ++s) c->AddStream("s", {}, {});
  TermId storm = c->mutable_vocabulary()->Intern("storm");
  TermId other = c->mutable_vocabulary()->Intern("other");

  Rng rng(5);
  for (Timestamp t = 0; t < 6; ++t) {
    for (StreamId s = 0; s < kStreams; ++s) {
      if (rng.Bernoulli(0.6)) {
        (void)c->AddDocument(s, t, {storm, other});
      }
    }
  }
  FrequencyIndex freq = FrequencyIndex::Build(*c);

  StCombOptions opts;
  opts.min_interval_burstiness = 0.05;
  OnlineStComb online(kStreams, opts);
  while (online.current_time() < freq.timeline_length()) {
    ASSERT_TRUE(online.PushFromIndex(freq, storm).ok());
  }
  // Caught up: another index-pull must be refused.
  EXPECT_TRUE(online.PushFromIndex(freq, storm).IsFailedPrecondition());

  // Live phase: appends, index catch-up, online catch-up.
  for (int round = 0; round < 8; ++round) {
    Snapshot snap;
    for (StreamId s = 0; s < 2; ++s) {
      snap.push_back(SnapshotDocument{s, {storm, storm, storm}});
    }
    ASSERT_TRUE(c->Append(std::move(snap)).ok());
    ASSERT_TRUE(freq.AppendSnapshot(*c).ok());
    ASSERT_TRUE(online.PushFromIndex(freq, storm).ok());
  }
  EXPECT_EQ(online.current_time(), freq.timeline_length());

  StComb batch(opts);
  auto expected = batch.MinePatterns(freq.DenseSeries(storm));
  auto got = online.CurrentPatterns();
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].streams, expected[i].streams);
    EXPECT_EQ(got[i].timeframe, expected[i].timeframe);
    EXPECT_NEAR(got[i].score, expected[i].score, 1e-9);
  }
}

TEST(OnlineStComb, PushFromIndexRejectsMismatchedStreamCount) {
  auto c = Collection::Create(3);
  ASSERT_TRUE(c.ok());
  c->AddStream("only", {}, {});
  c->mutable_vocabulary()->Intern("x");
  FrequencyIndex freq = FrequencyIndex::Build(*c);
  OnlineStComb online(2);  // two streams, index has one
  EXPECT_TRUE(online.PushFromIndex(freq, 0).IsInvalidArgument());
}

TEST(OnlineStComb, EvictBeforeMatchesBatchOverTheWindow) {
  // Retention parity: after evicting history older than a cutoff, the
  // online miner's patterns must equal batch STComb over the windowed
  // suffix, with timeframes reported in absolute timestamps.
  Rng rng(31);
  const size_t n = 6;
  const Timestamp length = 50;
  const Timestamp cutoff = 20;
  TermSeries series(n, length);
  for (StreamId s = 0; s < n; ++s) {
    for (Timestamp t = 0; t < length; ++t) {
      series.set(s, t, rng.Exponential(2.0));
    }
  }
  // One burst straddling the cutoff and one inside the window.
  for (StreamId s = 0; s < 3; ++s) {
    for (Timestamp t = 15; t < 25; ++t) series.add(s, t, 8.0);
    for (Timestamp t = 38; t < 43; ++t) series.add(s, t, 8.0);
  }

  StCombOptions opts;
  opts.min_interval_burstiness = 0.05;
  OnlineStComb online(n, opts);
  StComb batch(opts);
  for (Timestamp t = 0; t < length; ++t) {
    ASSERT_TRUE(online.Push(series.SnapshotColumn(t)).ok());
  }
  ASSERT_TRUE(online.EvictBefore(cutoff).ok());
  EXPECT_EQ(online.window_start(), cutoff);

  TermSeries window(n, length - cutoff);
  for (StreamId s = 0; s < n; ++s) {
    for (Timestamp t = cutoff; t < length; ++t) {
      window.set(s, t - cutoff, series.at(s, t));
    }
  }
  auto expected = batch.MinePatterns(window);
  auto got = online.CurrentPatterns();
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].streams, expected[i].streams);
    // Online timeframes are absolute; the batch run over the extracted
    // window is relative to the cutoff.
    EXPECT_EQ(got[i].timeframe.start, expected[i].timeframe.start + cutoff);
    EXPECT_EQ(got[i].timeframe.end, expected[i].timeframe.end + cutoff);
    EXPECT_NEAR(got[i].score, expected[i].score, 1e-9);
  }

  // Pushing after an eviction keeps working (and stays in parity).
  ASSERT_TRUE(online.Push(std::vector<double>(n, 1.0)).ok());
  EXPECT_EQ(online.current_time(), length + 1);
}

TEST(OnlineStComb, PushFromIndexRejectsEvictedTimestamps) {
  // A miner lagging behind an evicted index must fail loudly instead of
  // silently ingesting zeros for timestamps the index no longer holds.
  auto c = Collection::Create(3);
  ASSERT_TRUE(c.ok());
  StreamId s = c->AddStream("A", {}, {});
  TermId w = c->mutable_vocabulary()->Intern("w");
  for (Timestamp t = 0; t < 3; ++t) ASSERT_TRUE(c->AddDocument(s, t, {w}).ok());
  FrequencyIndex idx = FrequencyIndex::Build(*c);
  ASSERT_TRUE(idx.EvictBefore(2).ok());

  OnlineStComb fresh(1);  // current_time 0 < window_start 2
  EXPECT_TRUE(fresh.PushFromIndex(idx, w).IsFailedPrecondition());

  // A miner evicted in lockstep keeps working.
  OnlineStComb aligned(1);
  ASSERT_TRUE(aligned.Push({1.0}).ok());
  ASSERT_TRUE(aligned.Push({1.0}).ok());
  ASSERT_TRUE(aligned.EvictBefore(2).ok());
  EXPECT_TRUE(aligned.PushFromIndex(idx, w).ok());
}

TEST(OnlineStComb, EvictBeforeValidatesCutoff) {
  OnlineStComb miner(2);
  ASSERT_TRUE(miner.Push({1.0, 0.0}).ok());
  EXPECT_TRUE(miner.EvictBefore(0).ok());   // no-op
  EXPECT_TRUE(miner.EvictBefore(-5).ok());  // no-op
  EXPECT_TRUE(miner.EvictBefore(2).IsOutOfRange());  // beyond history
  ASSERT_TRUE(miner.Push({1.0, 0.0}).ok());
  EXPECT_TRUE(miner.EvictBefore(1).ok());
  EXPECT_EQ(miner.window_start(), 1);
  EXPECT_EQ(miner.current_time(), 2);
}

// ---- EnumerateMaximalCliques --------------------------------------------

WeightedInterval WI(Timestamp a, Timestamp b, double w, int64_t tag) {
  return WeightedInterval{Interval{a, b}, w, tag};
}

TEST(EnumerateMaximalCliques, EmptyAndSingle) {
  EXPECT_TRUE(EnumerateMaximalCliques({}).empty());
  auto cliques = EnumerateMaximalCliques({WI(0, 5, 1.0, 0)});
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0].members, (std::vector<size_t>{0}));
}

TEST(EnumerateMaximalCliques, ChainOfOverlaps) {
  // [0,4], [3,8], [7,12]: maximal cliques {0,1} and {1,2}.
  auto cliques = EnumerateMaximalCliques(
      {WI(0, 4, 1.0, 0), WI(3, 8, 1.0, 1), WI(7, 12, 1.0, 2)});
  ASSERT_EQ(cliques.size(), 2u);
  EXPECT_EQ(cliques[0].members, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(cliques[1].members, (std::vector<size_t>{1, 2}));
}

TEST(EnumerateMaximalCliques, NestedIntervalsSingleClique) {
  auto cliques = EnumerateMaximalCliques(
      {WI(0, 10, 1.0, 0), WI(2, 8, 1.0, 1), WI(4, 6, 1.0, 2)});
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0].members, (std::vector<size_t>{0, 1, 2}));
}

TEST(EnumerateMaximalCliques, DisjointIntervals) {
  auto cliques = EnumerateMaximalCliques(
      {WI(0, 2, 1.0, 0), WI(5, 7, 1.0, 1), WI(10, 12, 1.0, 2)});
  ASSERT_EQ(cliques.size(), 3u);
}

TEST(EnumerateMaximalCliques, CoversMaxWeightClique) {
  // The maximum-weight clique must appear among (or be contained in) the
  // enumerated maximal cliques, with at least its weight.
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<WeightedInterval> ivs;
    size_t m = 1 + rng.NextUint64(15);
    for (size_t i = 0; i < m; ++i) {
      Timestamp a = static_cast<Timestamp>(rng.UniformInt(0, 30));
      Timestamp b = static_cast<Timestamp>(rng.UniformInt(a, 30));
      ivs.push_back(WI(a, b, rng.Uniform(0.1, 1.0), static_cast<int64_t>(i)));
    }
    CliqueResult best = MaxWeightClique(ivs);
    auto all = EnumerateMaximalCliques(ivs);

    // Every enumerated clique is a real clique (pairwise intersecting).
    for (const CliqueResult& c : all) {
      for (size_t x : c.members) {
        for (size_t y : c.members) {
          EXPECT_TRUE(ivs[x].interval.Intersects(ivs[y].interval));
        }
      }
    }
    // And the best weight over the enumeration matches MaxWeightClique.
    double best_enumerated = 0.0;
    for (const CliqueResult& c : all) {
      double positive = 0.0;
      for (size_t idx : c.members) {
        if (ivs[idx].weight > 0.0) positive += ivs[idx].weight;
      }
      best_enumerated = std::max(best_enumerated, positive);
    }
    EXPECT_NEAR(best_enumerated, best.weight, 1e-9) << "trial " << trial;
  }
}

TEST(EnumerateMaximalCliques, NoCliqueContainsAnother) {
  Rng rng(91);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<WeightedInterval> ivs;
    size_t m = 2 + rng.NextUint64(12);
    for (size_t i = 0; i < m; ++i) {
      Timestamp a = static_cast<Timestamp>(rng.UniformInt(0, 20));
      Timestamp b = static_cast<Timestamp>(rng.UniformInt(a, 20));
      ivs.push_back(WI(a, b, 1.0, static_cast<int64_t>(i)));
    }
    auto all = EnumerateMaximalCliques(ivs);
    for (size_t i = 0; i < all.size(); ++i) {
      for (size_t j = 0; j < all.size(); ++j) {
        if (i == j) continue;
        EXPECT_FALSE(std::includes(all[i].members.begin(),
                                   all[i].members.end(),
                                   all[j].members.begin(),
                                   all[j].members.end()))
            << "clique " << j << " inside clique " << i << ", trial " << trial;
      }
    }
  }
}

}  // namespace
}  // namespace stburst
