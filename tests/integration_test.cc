// Cross-module integration tests: generator -> miners -> metrics, and
// corpus -> patterns -> search engine -> annotator.

#include <gtest/gtest.h>

#include <memory>

#include "stburst/core/base_baseline.h"
#include "stburst/core/stcomb.h"
#include "stburst/core/stlocal.h"
#include "stburst/eval/metrics.h"
#include "stburst/eval/pattern_match.h"
#include "stburst/gen/generators.h"
#include "stburst/gen/topix_sim.h"
#include "stburst/index/search_engine.h"
#include "stburst/index/tb_engine.h"

namespace stburst {
namespace {

ExpectedModelFactory MeanFactory() {
  return [] { return std::make_unique<GlobalMeanModel>(); };
}

GeneratorOptions IntegrationGenOptions() {
  GeneratorOptions o;
  o.timeline = 120;
  o.num_streams = 60;
  o.num_terms = 20;
  o.num_patterns = 15;
  o.seed = 31337;
  return o;
}

// STLocal must retrieve distGen patterns with high stream Jaccard and small
// timeframe errors (the Table 2 headline behaviour).
TEST(Integration, StLocalRetrievesDistGenPatterns) {
  auto gen =
      SyntheticGenerator::Create(GeneratorMode::kDist, IntegrationGenOptions());
  ASSERT_TRUE(gen.ok());

  std::vector<PatternRetrievalScore> scores;
  for (const InjectedPattern& truth : gen->patterns()) {
    TermSeries series = gen->GenerateTerm(truth.term);
    auto windows = MineRegionalPatterns(series, gen->positions(), MeanFactory());
    ASSERT_TRUE(windows.ok());
    std::vector<MinedPattern> mined;
    for (const auto& w : *windows) {
      mined.push_back(MinedPattern{w.streams, w.timeframe, w.score});
    }
    scores.push_back(ScoreRetrieval(truth.streams, truth.timeframe, mined,
                                    IntegrationGenOptions().timeline));
  }
  auto agg = Aggregate(scores);
  EXPECT_GT(agg.mean_jaccard, 0.5);
  EXPECT_LT(agg.mean_start_error, 25.0);
  EXPECT_LT(agg.mean_end_error, 25.0);
}

// STComb must retrieve randGen patterns (arbitrary stream sets) well.
TEST(Integration, StCombRetrievesRandGenPatterns) {
  auto gen =
      SyntheticGenerator::Create(GeneratorMode::kRand, IntegrationGenOptions());
  ASSERT_TRUE(gen.ok());

  // Background noise streams produce low-B_T maximal segments; the planted
  // bursts dominate their streams' mass, so a moderate threshold separates.
  StCombOptions opts;
  opts.min_interval_burstiness = 0.3;
  StComb miner(opts);

  std::vector<PatternRetrievalScore> scores;
  for (const InjectedPattern& truth : gen->patterns()) {
    TermSeries series = gen->GenerateTerm(truth.term);
    std::vector<MinedPattern> mined;
    for (const auto& p : miner.MinePatterns(series)) {
      mined.push_back(MinedPattern{p.streams, p.timeframe, p.score});
    }
    scores.push_back(ScoreRetrieval(truth.streams, truth.timeframe, mined,
                                    IntegrationGenOptions().timeline));
  }
  auto agg = Aggregate(scores);
  EXPECT_GT(agg.mean_jaccard, 0.5);
  EXPECT_LT(agg.mean_start_error, 25.0);
  EXPECT_LT(agg.mean_end_error, 25.0);
}

// Base is a weaker baseline than both main algorithms on distGen data.
TEST(Integration, BaseIsWorseThanStLocalOnDistGen) {
  auto gen =
      SyntheticGenerator::Create(GeneratorMode::kDist, IntegrationGenOptions());
  ASSERT_TRUE(gen.ok());

  std::vector<PatternRetrievalScore> stlocal_scores, base_scores;
  for (const InjectedPattern& truth : gen->patterns()) {
    TermSeries series = gen->GenerateTerm(truth.term);

    auto windows = MineRegionalPatterns(series, gen->positions(), MeanFactory());
    ASSERT_TRUE(windows.ok());
    std::vector<MinedPattern> mined;
    for (const auto& w : *windows) {
      mined.push_back(MinedPattern{w.streams, w.timeframe, w.score});
    }
    stlocal_scores.push_back(ScoreRetrieval(
        truth.streams, truth.timeframe, mined, IntegrationGenOptions().timeline));

    mined.clear();
    for (const auto& p : BaseMine(series, MeanFactory())) {
      mined.push_back(MinedPattern{p.streams, p.timeframe, 0.0});
    }
    base_scores.push_back(ScoreRetrieval(
        truth.streams, truth.timeframe, mined, IntegrationGenOptions().timeline));
  }
  EXPECT_GT(Aggregate(stlocal_scores).mean_jaccard,
            Aggregate(base_scores).mean_jaccard);
}

// Full corpus path: simulate Topix, mine patterns for one event term, build
// the engine, retrieve top-10, check precision via provenance.
TEST(Integration, TopixSearchPrecisionForLocalizedEvent) {
  TopixOptions topts;
  topts.mean_docs_per_week = 3.0;
  topts.background_vocab = 300;
  topts.use_mds = false;
  auto sim = TopixSimulator::Generate(topts);
  ASSERT_TRUE(sim.ok());
  const Collection& corpus = sim->collection();
  FrequencyIndex freq = FrequencyIndex::Build(corpus);

  const size_t kVieira = 13;  // tier-3 event with a decoy burst
  auto query = sim->QueryTerms(kVieira);
  ASSERT_EQ(query.size(), 1u);
  TermId term = query[0];

  // Regional patterns for the query term.
  PatternIndex regional;
  {
    TermSeries series = freq.DenseSeries(term);
    auto windows =
        MineRegionalPatterns(series, corpus.StreamPositions(), MeanFactory());
    ASSERT_TRUE(windows.ok());
    for (const auto& w : *windows) regional.AddWindow(term, w);
  }
  ASSERT_GE(regional.total_patterns(), 1u);

  auto engine = BurstySearchEngine::Build(corpus, regional);
  auto top = engine.Search(query, 10);
  ASSERT_GE(top.docs.size(), 5u);

  std::vector<bool> relevance;
  for (const auto& d : top.docs) {
    relevance.push_back(sim->IsRelevant(d.doc, kVieira));
  }
  EXPECT_GE(PrecisionAtK(relevance, 10), 0.8);
}

// The TB engine on the same corpus still retrieves mostly relevant docs for
// a clean tier-1 query.
TEST(Integration, TbPrecisionOnGlobalEvent) {
  TopixOptions topts;
  topts.mean_docs_per_week = 3.0;
  topts.background_vocab = 300;
  topts.use_mds = false;
  auto sim = TopixSimulator::Generate(topts);
  ASSERT_TRUE(sim.ok());
  const Collection& corpus = sim->collection();
  FrequencyIndex freq = FrequencyIndex::Build(corpus);

  const size_t kJackson = 3;
  auto query = sim->QueryTerms(kJackson);
  ASSERT_EQ(query.size(), 1u);

  PatternIndex tb = BuildTbPatternIndex(freq, query);
  auto engine = BurstySearchEngine::Build(corpus, tb);
  auto top = engine.Search(query, 10);
  ASSERT_GE(top.docs.size(), 5u);
  std::vector<bool> relevance;
  for (const auto& d : top.docs) {
    relevance.push_back(sim->IsRelevant(d.doc, kJackson));
  }
  EXPECT_GE(PrecisionAtK(relevance, 10), 0.8);
}

}  // namespace
}  // namespace stburst
