// Tests for geo/rect.

#include "stburst/geo/rect.h"

#include <gtest/gtest.h>

namespace stburst {
namespace {

TEST(Rect, DefaultIsEmpty) {
  Rect r;
  EXPECT_TRUE(r.empty());
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);
  EXPECT_FALSE(r.Contains(Point2D{0, 0}));
}

TEST(Rect, NormalizesCorners) {
  Rect r(5, 7, 1, 2);
  EXPECT_DOUBLE_EQ(r.min_x(), 1);
  EXPECT_DOUBLE_EQ(r.min_y(), 2);
  EXPECT_DOUBLE_EQ(r.max_x(), 5);
  EXPECT_DOUBLE_EQ(r.max_y(), 7);
  EXPECT_DOUBLE_EQ(r.Area(), 20.0);
}

TEST(Rect, ContainsPointBoundaryInclusive) {
  Rect r(0, 0, 2, 2);
  EXPECT_TRUE(r.Contains(Point2D{1, 1}));
  EXPECT_TRUE(r.Contains(Point2D{0, 0}));
  EXPECT_TRUE(r.Contains(Point2D{2, 2}));
  EXPECT_FALSE(r.Contains(Point2D{2.001, 1}));
  EXPECT_FALSE(r.Contains(Point2D{-0.001, 1}));
}

TEST(Rect, ContainsRect) {
  Rect outer(0, 0, 10, 10);
  EXPECT_TRUE(outer.Contains(Rect(2, 2, 5, 5)));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Rect(5, 5, 11, 6)));
  EXPECT_TRUE(outer.Contains(Rect()));   // empty in everything
  EXPECT_FALSE(Rect().Contains(outer));  // nothing in empty
}

TEST(Rect, Intersects) {
  Rect a(0, 0, 2, 2);
  EXPECT_TRUE(a.Intersects(Rect(1, 1, 3, 3)));
  EXPECT_TRUE(a.Intersects(Rect(2, 2, 4, 4)));  // touching corner counts
  EXPECT_FALSE(a.Intersects(Rect(3, 3, 4, 4)));
  EXPECT_FALSE(a.Intersects(Rect()));
  EXPECT_FALSE(Rect().Intersects(a));
}

TEST(Rect, ExpandToIncludePoint) {
  Rect r;
  r.ExpandToInclude(Point2D{1, 2});
  EXPECT_FALSE(r.empty());
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);  // degenerate single point
  EXPECT_TRUE(r.Contains(Point2D{1, 2}));
  r.ExpandToInclude(Point2D{-1, 5});
  EXPECT_DOUBLE_EQ(r.min_x(), -1);
  EXPECT_DOUBLE_EQ(r.max_y(), 5);
  EXPECT_TRUE(r.Contains(Point2D{0, 3}));
}

TEST(Rect, ExpandToIncludeRect) {
  Rect r(0, 0, 1, 1);
  r.ExpandToInclude(Rect(3, -2, 4, 0.5));
  EXPECT_DOUBLE_EQ(r.min_y(), -2);
  EXPECT_DOUBLE_EQ(r.max_x(), 4);
  Rect unchanged = r;
  r.ExpandToInclude(Rect());
  EXPECT_EQ(r, unchanged);
}

TEST(Rect, BoundingBox) {
  auto box = Rect::BoundingBox({{1, 1}, {4, -2}, {0, 3}});
  EXPECT_DOUBLE_EQ(box.min_x(), 0);
  EXPECT_DOUBLE_EQ(box.min_y(), -2);
  EXPECT_DOUBLE_EQ(box.max_x(), 4);
  EXPECT_DOUBLE_EQ(box.max_y(), 3);
  EXPECT_TRUE(Rect::BoundingBox({}).empty());
}

TEST(Rect, EqualityAndToString) {
  EXPECT_EQ(Rect(), Rect());
  EXPECT_EQ(Rect(0, 0, 1, 1), Rect(1, 1, 0, 0));
  EXPECT_NE(Rect(0, 0, 1, 1), Rect(0, 0, 1, 2));
  EXPECT_NE(Rect(), Rect(0, 0, 0, 0));  // degenerate != empty
  EXPECT_EQ(Rect().ToString(), "[empty]");
}

}  // namespace
}  // namespace stburst
