// The transactional-tick proof harness (built only with
// -DSTBURST_FAULT_INJECTION=ON): for every site in the fault registry and
// both failure kinds, a FeedRuntime::Tick that fails at that site must
// leave the runtime bit-identical to a control runtime that never saw the
// snapshot — collection, frequency index, standing result, staleness
// bookkeeping, search index and its generation — and the next clean tick
// must bring both runtimes back into lockstep and the search index back to
// full-rebuild parity.

#include "stburst/common/fault_injection.h"

#ifdef STBURST_FAULT_INJECTION

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "index_test_util.h"
#include "stburst/common/random.h"
#include "stburst/index/pattern_index.h"
#include "stburst/index/search_engine.h"
#include "stburst/stream/feed_runtime.h"

namespace stburst {
namespace {

constexpr size_t kStreams = 6;
constexpr size_t kVocab = 60;
constexpr Timestamp kWindow = 6;
// Warmup must overfill the window so the armed tick both appends AND
// evicts — that is what routes it through every registered site.
constexpr int kWarmupTicks = 10;

Collection MakeSeedCollection() {
  auto c = Collection::Create(2);
  EXPECT_TRUE(c.ok());
  for (size_t s = 0; s < kStreams; ++s) {
    c->AddStream("s" + std::to_string(s), {},
                 Point2D{static_cast<double>(s % 3),
                         static_cast<double>(s / 3)});
  }
  Vocabulary* v = c->mutable_vocabulary();
  for (size_t t = 0; t < kVocab; ++t) v->Intern("term" + std::to_string(t));
  return std::move(*c);
}

Snapshot MakeSnapshot(Rng& rng) {
  Snapshot snap;
  for (StreamId s = 0; s < kStreams; ++s) {
    size_t docs = 1 + rng.NextUint64(2);
    for (size_t d = 0; d < docs; ++d) {
      SnapshotDocument doc;
      doc.stream = s;
      size_t len = 2 + rng.NextUint64(4);
      for (size_t i = 0; i < len; ++i) {
        TermId tok = static_cast<TermId>(rng.NextUint64(kVocab));
        if (rng.Bernoulli(0.5)) {
          tok = static_cast<TermId>(tok % (kVocab / 4 + 1));
        }
        doc.tokens.push_back(tok);
      }
      snap.push_back(std::move(doc));
    }
  }
  return snap;
}

// A configuration that exercises every registered site on an evicting
// tick: retention (collection/frequency/index evict), dirty re-mine
// (batch_miner.mine_term via runtime.remine), a refresh sweep,
// combinatorial search serving (runtime.search_update), and the cold
// history tier (history.fold; kInMemory needs no file and proves the same
// delta-overlay rollback path kMmap uses).
FeedRuntimeOptions SweepOptions() {
  FeedRuntimeOptions opts;
  opts.num_threads = 4;  // sites must roll back when hit on pool workers
  opts.retention_window = kWindow;
  opts.refresh_budget = 4;
  opts.search_serving = SearchServing::kCombinatorial;
  opts.miner.stcomb.min_interval_burstiness = 0.05;
  opts.history_mode = HistoryMode::kInMemory;
  opts.history_bucket_width = 2;
  return opts;
}

void ExpectIdenticalCollections(const Collection& a, const Collection& b) {
  ASSERT_EQ(a.timeline_length(), b.timeline_length());
  ASSERT_EQ(a.window_start(), b.window_start());
  ASSERT_EQ(a.doc_id_base(), b.doc_id_base());
  ASSERT_EQ(a.num_documents(), b.num_documents());
  ASSERT_EQ(a.vocabulary().size(), b.vocabulary().size());
  for (size_t i = 0; i < a.documents().size(); ++i) {
    const Document& da = a.documents()[i];
    const Document& db = b.documents()[i];
    EXPECT_EQ(da.id, db.id);
    EXPECT_EQ(da.stream, db.stream);
    EXPECT_EQ(da.time, db.time);
    EXPECT_EQ(da.tokens, db.tokens);
    EXPECT_EQ(da.event_id, db.event_id);
  }
  for (StreamId s = 0; s < a.num_streams(); ++s) {
    for (Timestamp t = a.window_start(); t < a.timeline_length(); ++t) {
      EXPECT_EQ(a.DocumentsAt(s, t), b.DocumentsAt(s, t))
          << "stream " << s << " time " << t;
    }
  }
}

void ExpectIdenticalFrequency(const FrequencyIndex& a,
                              const FrequencyIndex& b) {
  ASSERT_EQ(a.num_terms(), b.num_terms());
  ASSERT_EQ(a.window_start(), b.window_start());
  ASSERT_EQ(a.timeline_length(), b.timeline_length());
  for (TermId t = 0; t < a.num_terms(); ++t) {
    const auto& pa = a.postings(t);
    const auto& pb = b.postings(t);
    ASSERT_EQ(pa.size(), pb.size()) << "term " << t;
    for (size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i].stream, pb[i].stream) << "term " << t;
      EXPECT_EQ(pa[i].time, pb[i].time) << "term " << t;
      EXPECT_EQ(pa[i].count, pb[i].count) << "term " << t;
    }
  }
}

void ExpectIdenticalResults(const BatchMineResult& a,
                            const BatchMineResult& b) {
  ASSERT_EQ(a.terms.size(), b.terms.size());
  EXPECT_EQ(a.terms_mined, b.terms_mined);
  EXPECT_EQ(a.terms_skipped, b.terms_skipped);
  for (size_t t = 0; t < a.terms.size(); ++t) {
    const TermPatterns& pa = a.terms[t];
    const TermPatterns& pb = b.terms[t];
    ASSERT_EQ(pa.mined, pb.mined) << "term " << t;
    ASSERT_EQ(pa.combinatorial.size(), pb.combinatorial.size())
        << "term " << t;
    for (size_t i = 0; i < pa.combinatorial.size(); ++i) {
      EXPECT_EQ(pa.combinatorial[i].streams, pb.combinatorial[i].streams);
      EXPECT_EQ(pa.combinatorial[i].timeframe, pb.combinatorial[i].timeframe);
      EXPECT_EQ(pa.combinatorial[i].score, pb.combinatorial[i].score);
    }
    ASSERT_EQ(pa.regional.size(), pb.regional.size()) << "term " << t;
  }
}

void ExpectIdenticalTiers(const ColdTier* a, const ColdTier* b) {
  ASSERT_EQ(a == nullptr, b == nullptr);
  if (a == nullptr) return;
  ASSERT_EQ(a->covered_start(), b->covered_start());
  ASSERT_EQ(a->folded_until(), b->folded_until());
  ASSERT_EQ(a->bucket_width(), b->bucket_width());
  ASSERT_EQ(a->term_upper_bound(), b->term_upper_bound());
  ASSERT_EQ(a->stream_upper_bound(), b->stream_upper_bound());
  for (TermId t = 0; t < a->term_upper_bound(); ++t) {
    EXPECT_EQ(a->TermRows(t), b->TermRows(t)) << "tier rows, term " << t;
  }
}

// The whole observable surface of a runtime, search generation and cold
// tier included.
void ExpectIdenticalRuntimes(const FeedRuntime& a, const FeedRuntime& b) {
  ExpectIdenticalCollections(a.collection(), b.collection());
  ExpectIdenticalFrequency(a.index(), b.index());
  ExpectIdenticalResults(a.result(), b.result());
  for (TermId t = 0; t < a.result().terms.size(); ++t) {
    EXPECT_EQ(a.staleness(t), b.staleness(t)) << "term " << t;
  }
  ExpectIdenticalTiers(a.history(), b.history());
  ASSERT_NE(a.search_index(), nullptr);
  ASSERT_NE(b.search_index(), nullptr);
  EXPECT_EQ(a.search_index()->generation(), b.search_index()->generation());
  ExpectIdenticalIndexes(*a.search_index(), *b.search_index());
}

InvertedIndex RebuildReferenceSearchIndex(const FeedRuntime& runtime) {
  PatternIndex patterns;
  for (TermId t = 0; t < runtime.result().terms.size(); ++t) {
    const TermPatterns& slot = runtime.result().terms[t];
    for (const auto& p : slot.combinatorial) patterns.AddCombinatorial(t, p);
  }
  auto engine = BurstySearchEngine::Build(runtime.collection(), patterns);
  return engine.index();
}

struct SweepCase {
  std::string_view site;
  fault::FailureKind kind;
};

std::vector<SweepCase> AllSweepCases() {
  std::vector<SweepCase> cases;
  for (std::string_view site : fault::RegisteredSites()) {
    // Coordinator-only site: an unsharded Tick never routes through it.
    // tests/sharded_runtime_test.cc sweeps it through ShardedRuntime::Tick.
    if (site == "sharded.commit") continue;
    cases.push_back({site, fault::FailureKind::kStatus});
    cases.push_back({site, fault::FailureKind::kBadAlloc});
  }
  return cases;
}

std::string SweepCaseName(const testing::TestParamInfo<SweepCase>& info) {
  std::string name(info.param.site);
  for (char& c : name) {
    if (c == '.') c = '_';
  }
  name += info.param.kind == fault::FailureKind::kStatus ? "_status"
                                                         : "_bad_alloc";
  return name;
}

class FaultSweepTest : public testing::TestWithParam<SweepCase> {
 protected:
  void TearDown() override { fault::DisarmAll(); }
};

TEST_P(FaultSweepTest, ArmedTickRollsBackAndNextTickRecovers) {
  const SweepCase& param = GetParam();
  fault::DisarmAll();

  auto subject = FeedRuntime::Create(MakeSeedCollection(), SweepOptions());
  ASSERT_TRUE(subject.ok()) << subject.status().ToString();
  auto control = FeedRuntime::Create(MakeSeedCollection(), SweepOptions());
  ASSERT_TRUE(control.ok()) << control.status().ToString();

  // Identical warmup feeds; the two runtimes are in lockstep afterwards.
  Rng subject_rng(4242), control_rng(4242);
  for (int i = 0; i < kWarmupTicks; ++i) {
    ASSERT_TRUE(subject->Tick(MakeSnapshot(subject_rng)).ok());
    ASSERT_TRUE(control->Tick(MakeSnapshot(control_rng)).ok());
  }
  ExpectIdenticalRuntimes(*subject, *control);

  // The armed tick: the subject sees the snapshot and fails; the control
  // never sees it. Drawn from both rngs to keep them in lockstep for the
  // post-recovery snapshots.
  Snapshot doomed = MakeSnapshot(subject_rng);
  Snapshot doomed_copy = MakeSnapshot(control_rng);
  ASSERT_EQ(doomed.size(), doomed_copy.size());
  fault::Arm(param.site, /*nth_hit=*/1, param.kind);
  auto failed = subject->Tick(std::move(doomed));
  ASSERT_FALSE(failed.ok()) << "armed site " << param.site << " never fired";
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal)
      << failed.status().ToString();
  EXPECT_GE(fault::HitCount(param.site), 1u);
  fault::DisarmAll();

  // Rollback proof: bit-identical to the runtime that never saw it.
  ExpectIdenticalRuntimes(*subject, *control);

  // Recovery proof: the same snapshot, clean, converges both runtimes —
  // and the maintained search index is back at full-rebuild parity.
  Snapshot control_doomed = doomed_copy;
  ASSERT_TRUE(subject->Tick(std::move(doomed_copy)).ok());
  ASSERT_TRUE(control->Tick(std::move(control_doomed)).ok());
  Snapshot next_subject = MakeSnapshot(subject_rng);
  Snapshot next_control = MakeSnapshot(control_rng);
  ASSERT_TRUE(subject->Tick(std::move(next_subject)).ok());
  ASSERT_TRUE(control->Tick(std::move(next_control)).ok());
  ExpectIdenticalRuntimes(*subject, *control);
  ExpectIdenticalIndexes(*subject->search_index(),
                         RebuildReferenceSearchIndex(*subject));
}

INSTANTIATE_TEST_SUITE_P(AllSites, FaultSweepTest,
                         testing::ValuesIn(AllSweepCases()), SweepCaseName);

// The sweep configuration must actually route a tick through every
// registered site — otherwise the parameterized proof above passes
// vacuously for sites that never fire.
TEST(FaultRegistry, SweepConfigurationHitsEverySite) {
  fault::DisarmAll();
  auto runtime = FeedRuntime::Create(MakeSeedCollection(), SweepOptions());
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
  Rng rng(4242);
  for (int i = 0; i < kWarmupTicks + 1; ++i) {
    ASSERT_TRUE(runtime->Tick(MakeSnapshot(rng)).ok());
  }
  for (std::string_view site : fault::RegisteredSites()) {
    if (site == "sharded.commit") continue;  // coordinator-only site
    EXPECT_GE(fault::HitCount(site), 1u) << "site never hit: " << site;
  }
  fault::DisarmAll();
}

// runtime.publish fires after the next snapshot is fully built but before
// the publication swap: readers must stay on the exact old snapshot object
// (pointer identity, not merely equal contents — the failed tick's
// successor was dropped unpublished), and the next clean tick publishes a
// fresh successor exactly one generation up.
TEST(FaultRegistry, PublishFailureLeavesReadersOnOldSnapshot) {
  fault::DisarmAll();
  auto runtime = FeedRuntime::Create(MakeSeedCollection(), SweepOptions());
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
  Rng rng(99);
  for (int i = 0; i < kWarmupTicks; ++i) {
    ASSERT_TRUE(runtime->Tick(MakeSnapshot(rng)).ok());
  }
  const std::shared_ptr<const IndexSnapshot> before =
      runtime->search_snapshot();
  ASSERT_NE(before, nullptr);

  fault::Arm("runtime.publish", /*nth_hit=*/1);
  auto failed = runtime->Tick(MakeSnapshot(rng));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(fault::HitCount("runtime.publish"), 1u);
  fault::DisarmAll();

  const std::shared_ptr<const IndexSnapshot> after = runtime->search_snapshot();
  EXPECT_EQ(after.get(), before.get());
  EXPECT_EQ(after->generation, before->generation);

  // The dropped successor leaks no generation number: the next clean tick
  // lands on exactly generation + 1.
  ASSERT_TRUE(runtime->Tick(MakeSnapshot(rng)).ok());
  const std::shared_ptr<const IndexSnapshot> recovered =
      runtime->search_snapshot();
  EXPECT_NE(recovered.get(), before.get());
  EXPECT_EQ(recovered->generation, before->generation + 1);
}

// Re-arming resets the counter; a later hit index delays the failure.
TEST(FaultRegistry, NthHitArmsOnTheNthHit) {
  fault::DisarmAll();
  fault::Arm("collection.append", /*nth_hit=*/3);
  auto collection = MakeSeedCollection();
  EXPECT_TRUE(collection.Append({}).ok());
  EXPECT_TRUE(collection.Append({}).ok());
  EXPECT_FALSE(collection.Append({}).ok());
  EXPECT_EQ(fault::HitCount("collection.append"), 3u);
  fault::DisarmAll();
}

}  // namespace
}  // namespace stburst

#endif  // STBURST_FAULT_INJECTION
