// Shared InvertedIndex comparison for the test suite: the posting-for-
// posting equality that the eviction, refreeze, and search-serving parity
// tests all assert. One definition so a future Posting field cannot be
// silently dropped from some copies of the check.

#ifndef STBURST_TESTS_INDEX_TEST_UTIL_H_
#define STBURST_TESTS_INDEX_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>

#include "stburst/index/inverted_index.h"

namespace stburst {

// Posting-for-posting equality (docs, scores, order, totals); terms past
// either index's id space compare as empty (a term whose postings were
// wholly evicted keeps its empty slot in an incrementally maintained index
// but never appears in a rebuilt one).
inline void ExpectIdenticalIndexes(const InvertedIndex& a,
                                   const InvertedIndex& b) {
  EXPECT_EQ(a.total_postings(), b.total_postings());
  const size_t terms = std::max(a.num_terms(), b.num_terms());
  for (TermId t = 0; t < terms; ++t) {
    const auto& pa = a.postings(t);
    const auto& pb = b.postings(t);
    ASSERT_EQ(pa.size(), pb.size()) << "term " << t;
    for (size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i].doc, pb[i].doc) << "term " << t << " rank " << i;
      EXPECT_EQ(pa[i].score, pb[i].score) << "term " << t << " rank " << i;
    }
  }
}

}  // namespace stburst

#endif  // STBURST_TESTS_INDEX_TEST_UTIL_H_
