// Tests for index/inverted_index and index/pattern_index.

#include "stburst/index/inverted_index.h"

#include <gtest/gtest.h>

#include <vector>

#include "stburst/common/random.h"
#include "stburst/index/pattern_index.h"
#include "index_test_util.h"

namespace stburst {
namespace {

TEST(InvertedIndex, PostingsSortedByScoreDescending) {
  InvertedIndex idx;
  idx.Add(0, 10, 1.0);
  idx.Add(0, 11, 3.0);
  idx.Add(0, 12, 2.0);
  idx.Finalize();
  const auto& p = idx.postings(0);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0].doc, 11u);
  EXPECT_EQ(p[1].doc, 12u);
  EXPECT_EQ(p[2].doc, 10u);
}

TEST(InvertedIndex, TieBreakByDocId) {
  InvertedIndex idx;
  idx.Add(0, 9, 1.0);
  idx.Add(0, 3, 1.0);
  idx.Finalize();
  EXPECT_EQ(idx.postings(0)[0].doc, 3u);
}

TEST(InvertedIndex, RandomAccess) {
  InvertedIndex idx;
  idx.Add(2, 5, 1.5);
  idx.Finalize();
  double score = 0.0;
  EXPECT_TRUE(idx.Score(2, 5, &score));
  EXPECT_DOUBLE_EQ(score, 1.5);
  EXPECT_FALSE(idx.Score(2, 6, &score));
  EXPECT_FALSE(idx.Score(99, 5, &score));
}

TEST(InvertedIndex, UnknownTermEmpty) {
  InvertedIndex idx;
  idx.Finalize();
  EXPECT_TRUE(idx.postings(42).empty());
  EXPECT_EQ(idx.total_postings(), 0u);
}

TEST(InvertedIndex, CountsAndFinalizeIdempotent) {
  InvertedIndex idx;
  idx.Add(0, 1, 1.0);
  idx.Add(1, 2, 2.0);
  idx.Finalize();
  idx.Finalize();
  EXPECT_EQ(idx.total_postings(), 2u);
  EXPECT_EQ(idx.num_terms(), 2u);
  EXPECT_TRUE(idx.finalized());
}

TEST(InvertedIndex, ReopenIncrementalRefreezeMatchesFromScratch) {
  // Live-feed shape: freeze, reopen, feed more postings, refreeze. The
  // incremental refreeze (only dirty terms re-sorted) must be
  // indistinguishable from an index built in one shot.
  InvertedIndex incremental;
  InvertedIndex reference;
  incremental.Add(0, 1, 1.0);
  incremental.Add(0, 2, 5.0);
  incremental.Add(1, 1, 2.0);
  incremental.Finalize();

  incremental.Reopen();
  incremental.Add(0, 3, 3.0);   // dirty term: existing list
  incremental.Add(2, 9, 0.5);   // dirty term: brand new
  incremental.Finalize();

  reference.Add(0, 1, 1.0);
  reference.Add(0, 2, 5.0);
  reference.Add(1, 1, 2.0);
  reference.Add(0, 3, 3.0);
  reference.Add(2, 9, 0.5);
  reference.Finalize();

  ASSERT_EQ(incremental.num_terms(), reference.num_terms());
  EXPECT_EQ(incremental.total_postings(), reference.total_postings());
  for (TermId t = 0; t < reference.num_terms(); ++t) {
    const auto& a = incremental.postings(t);
    const auto& b = reference.postings(t);
    ASSERT_EQ(a.size(), b.size()) << "term " << t;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].doc, b[i].doc);
      EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
    }
  }
  double score = 0.0;
  EXPECT_TRUE(incremental.Score(0, 3, &score));
  EXPECT_DOUBLE_EQ(score, 3.0);
}

TEST(InvertedIndex, GenerationBumpsOnEveryFreeze) {
  InvertedIndex idx;
  EXPECT_EQ(idx.generation(), 0u);
  idx.Add(0, 1, 1.0);
  idx.Finalize();
  EXPECT_EQ(idx.generation(), 1u);
  idx.Finalize();  // idempotent: no state change, no bump
  EXPECT_EQ(idx.generation(), 1u);
  idx.Reopen();
  EXPECT_EQ(idx.generation(), 1u);  // reopening alone is not a new freeze
  idx.Add(0, 2, 2.0);
  idx.Finalize();
  EXPECT_EQ(idx.generation(), 2u);
  EXPECT_EQ(idx.postings(0).size(), 2u);
}

TEST(InvertedIndex, ReopenWhileOpenIsANoOp) {
  InvertedIndex idx;
  idx.Reopen();
  idx.Add(0, 1, 1.0);
  idx.Finalize();
  EXPECT_TRUE(idx.finalized());
}

TEST(InvertedIndex, EvictBeforeDropsEvictedDocsInPlace) {
  InvertedIndex idx;
  idx.Add(0, 1, 4.0);
  idx.Add(0, 5, 2.0);
  idx.Add(0, 2, 3.0);
  idx.Add(1, 2, 1.0);   // term whose postings are wholly evicted
  idx.Add(2, 9, 0.5);   // term untouched by the eviction
  idx.Finalize();
  ASSERT_EQ(idx.generation(), 1u);

  idx.Reopen();
  idx.EvictBefore(/*min_live_doc=*/3);
  idx.Finalize();
  EXPECT_EQ(idx.generation(), 2u);  // the edit batch is one new freeze

  // Only docs >= 3 survive, still in descending-score order, and the
  // random-access maps forgot the evicted docs.
  ASSERT_EQ(idx.postings(0).size(), 1u);
  EXPECT_EQ(idx.postings(0)[0].doc, 5u);
  EXPECT_TRUE(idx.postings(1).empty());
  ASSERT_EQ(idx.postings(2).size(), 1u);
  EXPECT_EQ(idx.total_postings(), 2u);
  double score = 0.0;
  EXPECT_FALSE(idx.Score(0, 1, &score));
  EXPECT_FALSE(idx.Score(0, 2, &score));
  EXPECT_TRUE(idx.Score(0, 5, &score));
  EXPECT_DOUBLE_EQ(score, 2.0);
  EXPECT_FALSE(idx.Score(1, 2, &score));
}

TEST(InvertedIndex, ClearTermReplacesPostings) {
  InvertedIndex idx;
  idx.Add(0, 1, 1.0);
  idx.Add(0, 2, 2.0);
  idx.Add(1, 1, 9.0);
  idx.Finalize();

  // The live maintainer's per-term refresh: drop and re-derive one term.
  idx.Reopen();
  idx.ClearTerm(0);
  idx.Add(0, 3, 7.0);
  idx.Finalize();

  ASSERT_EQ(idx.postings(0).size(), 1u);
  EXPECT_EQ(idx.postings(0)[0].doc, 3u);
  EXPECT_EQ(idx.total_postings(), 2u);
  double score = 0.0;
  EXPECT_FALSE(idx.Score(0, 1, &score));  // old map entries are gone
  EXPECT_TRUE(idx.Score(0, 3, &score));
  EXPECT_TRUE(idx.Score(1, 1, &score));   // untouched term unaffected

  // Clearing a term to empty (no re-adds) leaves a clean empty slot.
  idx.Reopen();
  idx.ClearTerm(1);
  idx.Finalize();
  EXPECT_TRUE(idx.postings(1).empty());
  EXPECT_FALSE(idx.Score(1, 1, &score));
  EXPECT_EQ(idx.total_postings(), 1u);
}

TEST(InvertedIndex, RandomizedAppendEvictInterleavingsMatchRebuild) {
  // The live-feed shape, randomized: rounds of "append postings for fresh
  // docs, then evict an id prefix", the incremental index following each
  // round in place (Reopen → EvictBefore → Add → Finalize). After every
  // round it must be indistinguishable from an index rebuilt from scratch
  // over the surviving postings, and every round must bump the generation
  // exactly once.
  constexpr size_t kTerms = 12;
  Rng rng(2024);
  InvertedIndex incremental;
  std::vector<std::vector<Posting>> live(kTerms);  // per-term surviving docs

  DocId next_doc = 0;
  DocId min_live = 0;
  for (int round = 0; round < 30; ++round) {
    incremental.Reopen();

    // Evict: advance the live floor past a random slice of current docs.
    if (round > 0 && rng.Bernoulli(0.7)) {
      min_live += static_cast<DocId>(rng.NextUint64(4));
      incremental.EvictBefore(min_live);
      for (auto& plist : live) {
        std::erase_if(plist,
                      [&](const Posting& p) { return p.doc < min_live; });
      }
    }

    // Append: a few new docs, each scoring on a few random distinct terms
    // (Add takes each (term, doc) pair at most once — colliding draws are
    // dropped).
    const size_t docs = 1 + rng.NextUint64(3);
    std::vector<TermId> doc_terms;
    for (size_t d = 0; d < docs; ++d) {
      const DocId doc = next_doc++;
      if (doc < min_live) continue;
      const size_t hits = 1 + rng.NextUint64(3);
      doc_terms.clear();
      for (size_t h = 0; h < hits; ++h) {
        const TermId term = static_cast<TermId>(rng.NextUint64(kTerms));
        if (std::find(doc_terms.begin(), doc_terms.end(), term) !=
            doc_terms.end()) {
          continue;
        }
        doc_terms.push_back(term);
        const double score = rng.Uniform(0.1, 5.0);
        incremental.Add(term, doc, score);
        live[term].push_back(Posting{doc, score});
      }
    }

    const uint64_t before = incremental.generation();
    incremental.Finalize();
    ASSERT_EQ(incremental.generation(), before + 1) << "round " << round;

    InvertedIndex rebuilt;
    for (TermId t = 0; t < kTerms; ++t) {
      for (const Posting& p : live[t]) rebuilt.Add(t, p.doc, p.score);
    }
    rebuilt.Finalize();
    ExpectIdenticalIndexes(incremental, rebuilt);
  }
}

TEST(PatternIndex, OverlapSemantics) {
  PatternIndex pidx;
  pidx.Add(7, TermPattern{{2, 5, 9}, Interval{10, 20}, 1.5});

  double score = 0.0;
  // Stream and time both inside.
  EXPECT_TRUE(pidx.MaxOverlapScore(7, 5, 15, &score));
  EXPECT_DOUBLE_EQ(score, 1.5);
  // Wrong stream.
  EXPECT_FALSE(pidx.MaxOverlapScore(7, 4, 15, &score));
  // Outside timeframe.
  EXPECT_FALSE(pidx.MaxOverlapScore(7, 5, 21, &score));
  // Unknown term.
  EXPECT_FALSE(pidx.MaxOverlapScore(8, 5, 15, &score));
}

TEST(PatternIndex, MaxScoreAcrossOverlappingPatterns) {
  PatternIndex pidx;
  pidx.Add(0, TermPattern{{1}, Interval{0, 30}, 0.5});
  pidx.Add(0, TermPattern{{1, 2}, Interval{10, 20}, 2.0});
  double score = 0.0;
  ASSERT_TRUE(pidx.MaxOverlapScore(0, 1, 15, &score));
  EXPECT_DOUBLE_EQ(score, 2.0);  // max, not sum or first
  ASSERT_TRUE(pidx.MaxOverlapScore(0, 1, 25, &score));
  EXPECT_DOUBLE_EQ(score, 0.5);  // only the broad pattern covers t=25
}

TEST(PatternIndex, AddersFromMinerOutputs) {
  PatternIndex pidx;
  CombinatorialPattern cp;
  cp.streams = {3, 1};
  cp.timeframe = {5, 8};
  cp.score = 1.0;
  pidx.AddCombinatorial(0, cp);

  SpatiotemporalWindow w;
  w.streams = {2};
  w.timeframe = {1, 2};
  w.score = 0.7;
  pidx.AddWindow(1, w);

  // Streams sorted on insertion, so binary search works.
  double score = 0.0;
  EXPECT_TRUE(pidx.MaxOverlapScore(0, 1, 6, &score));
  EXPECT_TRUE(pidx.MaxOverlapScore(0, 3, 6, &score));
  EXPECT_TRUE(pidx.MaxOverlapScore(1, 2, 1, &score));
  EXPECT_EQ(pidx.total_patterns(), 2u);
  EXPECT_EQ(pidx.num_terms_with_patterns(), 2u);
}

}  // namespace
}  // namespace stburst
