// Tests for R-Bursty (core/rbursty, paper Algorithm 1).

#include "stburst/core/rbursty.h"

#include <gtest/gtest.h>

#include <set>

#include "stburst/common/random.h"

namespace stburst {
namespace {

TEST(RBursty, RejectsMismatchedInput) {
  EXPECT_TRUE(RBursty({{0, 0}}, {1.0, 2.0}).status().IsInvalidArgument());
}

TEST(RBursty, EmptyAndAllNegative) {
  auto none = RBursty(std::vector<Point2D>{}, {});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());

  auto neg = RBursty({{0, 0}, {1, 1}}, {-1.0, -0.5});
  ASSERT_TRUE(neg.ok());
  EXPECT_TRUE(neg->empty());
}

TEST(RBursty, SingleBurstyRegion) {
  std::vector<Point2D> pts = {{0, 0}, {1, 0}, {10, 10}};
  std::vector<double> b = {1.0, 1.5, -1.0};
  auto rects = RBursty(pts, b);
  ASSERT_TRUE(rects.ok());
  ASSERT_EQ(rects->size(), 1u);
  EXPECT_NEAR((*rects)[0].score, 2.5, 1e-12);
  EXPECT_EQ((*rects)[0].streams, (std::vector<StreamId>{0, 1}));
}

TEST(RBursty, ReportsMultipleDisjointRegionsInScoreOrder) {
  // Two positive clusters separated by negative space.
  std::vector<Point2D> pts = {{0, 0}, {1, 1}, {20, 20}, {21, 21}, {10, 10}};
  std::vector<double> b = {1.0, 1.0, 3.0, 3.0, -2.0};
  auto rects = RBursty(pts, b);
  ASSERT_TRUE(rects.ok());
  ASSERT_EQ(rects->size(), 2u);
  EXPECT_NEAR((*rects)[0].score, 6.0, 1e-12);
  EXPECT_EQ((*rects)[0].streams, (std::vector<StreamId>{2, 3}));
  EXPECT_NEAR((*rects)[1].score, 2.0, 1e-12);
  EXPECT_EQ((*rects)[1].streams, (std::vector<StreamId>{0, 1}));
}

TEST(RBursty, ReportedRectanglesShareNoStreams) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    size_t n = 20;
    std::vector<Point2D> pts(n);
    std::vector<double> b(n);
    for (size_t i = 0; i < n; ++i) {
      pts[i] = Point2D{rng.Uniform(0, 50), rng.Uniform(0, 50)};
      b[i] = rng.Uniform(-1.5, 1.5);
    }
    auto rects = RBursty(pts, b);
    ASSERT_TRUE(rects.ok());
    std::set<StreamId> seen;
    for (const auto& rect : *rects) {
      EXPECT_GT(rect.score, 0.0);
      for (StreamId s : rect.streams) {
        EXPECT_TRUE(seen.insert(s).second)
            << "stream " << s << " in two rectangles, trial " << trial;
      }
      // r-score consistency: sum of member burstiness equals the score.
      double sum = 0.0;
      for (StreamId s : rect.streams) sum += b[s];
      EXPECT_NEAR(sum, rect.score, 1e-9);
    }
    // At most n rectangles (the paper's bound).
    EXPECT_LE(rects->size(), n);
  }
}

TEST(RBursty, ScoresAreNonIncreasing) {
  Rng rng(23);
  std::vector<Point2D> pts(30);
  std::vector<double> b(30);
  for (size_t i = 0; i < 30; ++i) {
    pts[i] = Point2D{rng.Uniform(0, 40), rng.Uniform(0, 40)};
    b[i] = rng.Uniform(-1.0, 1.0);
  }
  auto rects = RBursty(pts, b);
  ASSERT_TRUE(rects.ok());
  for (size_t i = 1; i < rects->size(); ++i) {
    EXPECT_GE((*rects)[i - 1].score, (*rects)[i].score - 1e-9);
  }
}

TEST(RBursty, MaxRectanglesCap) {
  // Three positives separated by strong negative moats would yield three
  // rectangles; the cap keeps two.
  std::vector<Point2D> pts = {{0, 0}, {10, 0}, {20, 0}, {30, 0}, {40, 0}};
  std::vector<double> b = {1.0, -5.0, 1.0, -5.0, 1.0};
  RBurstyOptions opts;
  opts.max_rectangles = 2;
  auto rects = RBursty(pts, b, opts);
  ASSERT_TRUE(rects.ok());
  EXPECT_EQ(rects->size(), 2u);
}

TEST(RBursty, MoatedPositivesEachBecomeARectangle) {
  // Positives fenced off by strong negatives: one rect each.
  std::vector<Point2D> pts = {{0, 0}, {10, 0}, {20, 0}, {30, 0}, {40, 0}};
  std::vector<double> b = {0.5, -5.0, 0.7, -5.0, 0.9};
  auto rects = RBursty(pts, b);
  ASSERT_TRUE(rects.ok());
  EXPECT_EQ(rects->size(), 3u);
}

TEST(RBursty, NoNegativesMergeIntoOneRectangle) {
  // With no negative mass anywhere, the single best rectangle absorbs every
  // positive stream, however far apart.
  std::vector<Point2D> pts = {{0, 0}, {50, 0}, {0, 50}};
  std::vector<double> b = {0.5, 0.7, 0.9};
  auto rects = RBursty(pts, b);
  ASSERT_TRUE(rects.ok());
  ASSERT_EQ(rects->size(), 1u);
  EXPECT_NEAR((*rects)[0].score, 2.1, 1e-12);
  EXPECT_EQ((*rects)[0].streams.size(), 3u);
}

TEST(RBursty, MergeDecisionDependsOnInterveningWeight) {
  // Paper §4: the algorithm decides automatically whether to span weak
  // negatives or split. Weak moat: one rect; strong moat: two.
  std::vector<Point2D> pts = {{0, 0}, {5, 0}, {10, 0}};
  auto weak = RBursty(pts, {2.0, -0.4, 2.0});
  ASSERT_TRUE(weak.ok());
  ASSERT_EQ(weak->size(), 1u);
  EXPECT_EQ((*weak)[0].streams.size(), 3u);

  auto strong = RBursty(pts, {2.0, -5.0, 2.0});
  ASSERT_TRUE(strong.ok());
  EXPECT_EQ(strong->size(), 2u);
}

}  // namespace
}  // namespace stburst
