// Tests for stream/collection.

#include "stburst/stream/collection.h"

#include <gtest/gtest.h>

namespace stburst {
namespace {

TEST(Collection, RejectsNonPositiveTimeline) {
  EXPECT_TRUE(Collection::Create(0).status().IsInvalidArgument());
  EXPECT_TRUE(Collection::Create(-3).status().IsInvalidArgument());
}

TEST(Collection, AddStreamAssignsDenseIds) {
  auto c = Collection::Create(10);
  ASSERT_TRUE(c.ok());
  StreamId a = c->AddStream("Athens", GeoPoint{37.98, 23.73}, Point2D{1, 2});
  StreamId b = c->AddStream("Berlin", GeoPoint{52.52, 13.41}, Point2D{3, 4});
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(c->num_streams(), 2u);
  EXPECT_EQ(c->stream(a).name, "Athens");
  EXPECT_EQ(c->stream(b).position.x, 3.0);
}

TEST(Collection, AddDocumentValidates) {
  auto c = Collection::Create(5);
  ASSERT_TRUE(c.ok());
  StreamId s = c->AddStream("X", {}, {});
  EXPECT_TRUE(c->AddDocument(99, 0, {}).status().IsInvalidArgument());
  EXPECT_TRUE(c->AddDocument(s, -1, {}).status().IsOutOfRange());
  EXPECT_TRUE(c->AddDocument(s, 5, {}).status().IsOutOfRange());
  auto doc = c->AddDocument(s, 4, {1, 2, 3});
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(*doc, 0u);
  EXPECT_EQ(c->num_documents(), 1u);
}

TEST(Collection, DocumentsAtGroupsByStreamAndTime) {
  auto c = Collection::Create(3);
  ASSERT_TRUE(c.ok());
  StreamId s0 = c->AddStream("A", {}, {});
  StreamId s1 = c->AddStream("B", {}, {});
  TermId t = c->mutable_vocabulary()->Intern("word");
  auto d0 = c->AddDocument(s0, 0, {t});
  auto d1 = c->AddDocument(s0, 0, {t, t});
  auto d2 = c->AddDocument(s1, 2, {t});
  ASSERT_TRUE(d0.ok() && d1.ok() && d2.ok());

  EXPECT_EQ(c->DocumentsAt(s0, 0).size(), 2u);
  EXPECT_EQ(c->DocumentsAt(s0, 1).size(), 0u);
  EXPECT_EQ(c->DocumentsAt(s1, 2).size(), 1u);
  EXPECT_EQ(c->document(*d1).TermFrequency(t), 2);
  EXPECT_EQ(c->document(*d2).stream, s1);
  EXPECT_EQ(c->document(*d2).time, 2);
}

TEST(Collection, EventLabelDefaultsToNoEvent) {
  auto c = Collection::Create(2);
  ASSERT_TRUE(c.ok());
  StreamId s = c->AddStream("A", {}, {});
  auto plain = c->AddDocument(s, 0, {});
  auto labeled = c->AddDocument(s, 0, {}, 7);
  ASSERT_TRUE(plain.ok() && labeled.ok());
  EXPECT_EQ(c->document(*plain).event_id, kNoEvent);
  EXPECT_EQ(c->document(*labeled).event_id, 7);
}

TEST(Collection, AppendExtendsTimelineAndFilesDocuments) {
  auto c = Collection::Create(2);
  ASSERT_TRUE(c.ok());
  StreamId s0 = c->AddStream("A", {}, {});
  StreamId s1 = c->AddStream("B", {}, {});
  TermId w = c->mutable_vocabulary()->Intern("w");

  Snapshot snap;
  snap.push_back(SnapshotDocument{s0, {w, w}, 5});
  snap.push_back(SnapshotDocument{s1, {w}});
  auto t = c->Append(std::move(snap));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, 2);
  EXPECT_EQ(c->timeline_length(), 3);
  EXPECT_EQ(c->num_documents(), 2u);
  ASSERT_EQ(c->DocumentsAt(s0, 2).size(), 1u);
  ASSERT_EQ(c->DocumentsAt(s1, 2).size(), 1u);

  const Document& doc = c->document(c->DocumentsAt(s0, 2)[0]);
  EXPECT_EQ(doc.stream, s0);
  EXPECT_EQ(doc.time, 2);
  EXPECT_EQ(doc.event_id, 5);
  EXPECT_EQ(doc.TermFrequency(w), 2);
  EXPECT_EQ(c->document(c->DocumentsAt(s1, 2)[0]).event_id, kNoEvent);
}

TEST(Collection, AppendRejectsUnknownStreamAtomically) {
  auto c = Collection::Create(1);
  ASSERT_TRUE(c.ok());
  StreamId s = c->AddStream("A", {}, {});
  Snapshot snap;
  snap.push_back(SnapshotDocument{s, {0}});
  snap.push_back(SnapshotDocument{77, {0}});  // unknown stream
  EXPECT_TRUE(c->Append(std::move(snap)).status().IsInvalidArgument());
  // All-or-nothing: the valid document was not filed either.
  EXPECT_EQ(c->timeline_length(), 1);
  EXPECT_EQ(c->num_documents(), 0u);
}

TEST(Collection, AppendEmptySnapshotStillTicksTheTimeline) {
  auto c = Collection::Create(1);
  ASSERT_TRUE(c.ok());
  StreamId s = c->AddStream("A", {}, {});
  auto t = c->Append({});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, 1);
  EXPECT_EQ(c->timeline_length(), 2);
  EXPECT_TRUE(c->DocumentsAt(s, 1).empty());
}

TEST(Collection, AppendThenAddStreamCoversTheWholeTimeline) {
  auto c = Collection::Create(1);
  ASSERT_TRUE(c.ok());
  c->AddStream("A", {}, {});
  ASSERT_TRUE(c->Append({}).ok());
  StreamId late = c->AddStream("B", {}, {});
  // The late stream can still be addressed at every timestamp.
  EXPECT_TRUE(c->DocumentsAt(late, 0).empty());
  EXPECT_TRUE(c->DocumentsAt(late, 1).empty());
  Snapshot snap;
  snap.push_back(SnapshotDocument{late, {}});
  ASSERT_TRUE(c->Append(std::move(snap)).ok());
  EXPECT_EQ(c->DocumentsAt(late, 2).size(), 1u);
}

TEST(CollectionRetention, EvictBeforeDropsDocsAndRenumbers) {
  auto c = Collection::Create(4);
  ASSERT_TRUE(c.ok());
  StreamId s0 = c->AddStream("A", {}, {});
  StreamId s1 = c->AddStream("B", {}, {});
  TermId w = c->mutable_vocabulary()->Intern("w");
  ASSERT_TRUE(c->AddDocument(s0, 0, {w}).ok());
  ASSERT_TRUE(c->AddDocument(s1, 1, {w, w}).ok());
  ASSERT_TRUE(c->AddDocument(s0, 2, {w}).ok());
  ASSERT_TRUE(c->AddDocument(s1, 3, {w}).ok());

  ASSERT_TRUE(c->EvictBefore(2).ok());
  EXPECT_EQ(c->window_start(), 2);
  EXPECT_EQ(c->timeline_length(), 4);  // timestamps stay absolute
  EXPECT_EQ(c->num_documents(), 2u);
  EXPECT_EQ(c->doc_id_base(), 2u);

  // Survivors are renumbered densely from the base, in original order.
  EXPECT_EQ(c->documents()[0].time, 2);
  EXPECT_EQ(c->documents()[0].id, 2u);
  EXPECT_EQ(c->documents()[1].id, 3u);
  EXPECT_EQ(c->document(2).stream, s0);
  ASSERT_EQ(c->DocumentsAt(s1, 3).size(), 1u);
  EXPECT_EQ(c->DocumentsAt(s1, 3)[0], 3u);

  // The retained window keeps accepting documents and snapshots.
  EXPECT_TRUE(c->AddDocument(s0, 1, {w}).status().IsOutOfRange());  // evicted
  ASSERT_TRUE(c->AddDocument(s0, 3, {w}).ok());
  Snapshot snap;
  snap.push_back(SnapshotDocument{s1, {w}, kNoEvent});
  auto t = c->Append(std::move(snap));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, 4);
  EXPECT_EQ(c->DocumentsAt(s1, 4).size(), 1u);

  // Cutoffs at or behind the window are no-ops; beyond the timeline fail.
  EXPECT_TRUE(c->EvictBefore(1).ok());
  EXPECT_EQ(c->window_start(), 2);
  EXPECT_TRUE(c->EvictBefore(99).IsOutOfRange());
}

TEST(CollectionRetention, EvictBeforeHandlesOutOfOrderHistory) {
  // Documents ingested out of time order force the general eviction path
  // (survivor renumbering + docs_at_ re-filing) instead of the prefix
  // erase; the observable contract is identical.
  auto c = Collection::Create(4);
  ASSERT_TRUE(c.ok());
  StreamId s0 = c->AddStream("A", {}, {});
  StreamId s1 = c->AddStream("B", {}, {});
  TermId w = c->mutable_vocabulary()->Intern("w");
  ASSERT_TRUE(c->AddDocument(s0, 3, {w}).ok());        // id 0
  ASSERT_TRUE(c->AddDocument(s1, 0, {w}).ok());        // id 1 (evicted)
  ASSERT_TRUE(c->AddDocument(s0, 2, {w, w}).ok());     // id 2
  ASSERT_TRUE(c->AddDocument(s1, 1, {w}).ok());        // id 3 (evicted)
  ASSERT_TRUE(c->AddDocument(s0, 3, {w}).ok());        // id 4

  ASSERT_TRUE(c->EvictBefore(2).ok());
  EXPECT_EQ(c->num_documents(), 3u);
  EXPECT_EQ(c->doc_id_base(), 2u);
  // Survivors keep their relative order (times 3, 2, 3) and dense ids.
  EXPECT_EQ(c->documents()[0].time, 3);
  EXPECT_EQ(c->documents()[1].time, 2);
  EXPECT_EQ(c->documents()[2].time, 3);
  EXPECT_EQ(c->documents()[0].id, 2u);
  EXPECT_EQ(c->documents()[2].id, 4u);
  // docs_at_ was re-filed consistently: both s0 docs at t=3, in order.
  ASSERT_EQ(c->DocumentsAt(s0, 3).size(), 2u);
  EXPECT_EQ(c->DocumentsAt(s0, 3)[0], 2u);
  EXPECT_EQ(c->DocumentsAt(s0, 3)[1], 4u);
  ASSERT_EQ(c->DocumentsAt(s0, 2).size(), 1u);
  EXPECT_EQ(c->document(c->DocumentsAt(s0, 2)[0]).TermFrequency(w), 2);
  EXPECT_EQ(c->DocumentsAt(s1, 2).size(), 0u);
  EXPECT_EQ(c->DocumentsAt(s1, 3).size(), 0u);
}

TEST(CollectionRetention, EvictionReportDistinguishesPrefixFromRenumber) {
  // Time-ordered ingest: the report must say ids were preserved, so
  // DocId-keyed consumers can follow the eviction in place.
  auto ordered = Collection::Create(4);
  ASSERT_TRUE(ordered.ok());
  StreamId s = ordered->AddStream("A", {}, {});
  TermId w = ordered->mutable_vocabulary()->Intern("w");
  for (Timestamp t = 0; t < 4; ++t) {
    ASSERT_TRUE(ordered->AddDocument(s, t, {w}).ok());
  }
  EvictionReport report;
  ASSERT_TRUE(ordered->EvictBefore(3, &report).ok());
  EXPECT_EQ(report.cutoff, 3);
  EXPECT_EQ(report.evicted_documents, 3u);
  EXPECT_EQ(report.doc_id_base, 3u);
  EXPECT_TRUE(report.ids_preserved);
  // The surviving document really did keep its pre-eviction id.
  EXPECT_EQ(ordered->document(3).time, 3);

  // A no-op cutoff reports zero evictions coherently.
  EvictionReport noop;
  ASSERT_TRUE(ordered->EvictBefore(1, &noop).ok());
  EXPECT_EQ(noop.evicted_documents, 0u);
  EXPECT_EQ(noop.doc_id_base, 3u);
  EXPECT_TRUE(noop.ids_preserved);

  // Out-of-order ingest forces the renumbering path; the report must warn
  // consumers their DocIds are meaningless.
  auto shuffled = Collection::Create(4);
  ASSERT_TRUE(shuffled.ok());
  StreamId z = shuffled->AddStream("A", {}, {});
  ASSERT_TRUE(shuffled->AddDocument(z, 3, {w}).ok());
  ASSERT_TRUE(shuffled->AddDocument(z, 0, {w}).ok());
  ASSERT_TRUE(shuffled->AddDocument(z, 2, {w}).ok());
  EvictionReport renumbered;
  ASSERT_TRUE(shuffled->EvictBefore(2, &renumbered).ok());
  EXPECT_EQ(renumbered.cutoff, 2);
  EXPECT_EQ(renumbered.evicted_documents, 1u);
  EXPECT_EQ(renumbered.doc_id_base, 1u);
  EXPECT_FALSE(renumbered.ids_preserved);
}

TEST(CollectionRetention, AddStreamAfterEvictionCoversTheWindow) {
  auto c = Collection::Create(6);
  ASSERT_TRUE(c.ok());
  c->AddStream("A", {}, {});
  ASSERT_TRUE(c->EvictBefore(4).ok());
  StreamId late = c->AddStream("B", {}, {});
  // The late stream's per-time slots must span exactly the retained window.
  EXPECT_EQ(c->DocumentsAt(late, 4).size(), 0u);
  EXPECT_EQ(c->DocumentsAt(late, 5).size(), 0u);
  TermId w = c->mutable_vocabulary()->Intern("w");
  ASSERT_TRUE(c->AddDocument(late, 5, {w}).ok());
  EXPECT_EQ(c->DocumentsAt(late, 5).size(), 1u);
}

// Checks every observable field two collections share.
void ExpectSameState(const Collection& a, const Collection& b) {
  ASSERT_EQ(a.timeline_length(), b.timeline_length());
  ASSERT_EQ(a.window_start(), b.window_start());
  ASSERT_EQ(a.doc_id_base(), b.doc_id_base());
  ASSERT_EQ(a.num_documents(), b.num_documents());
  for (size_t i = 0; i < a.documents().size(); ++i) {
    const Document& da = a.documents()[i];
    const Document& db = b.documents()[i];
    EXPECT_EQ(da.id, db.id);
    EXPECT_EQ(da.stream, db.stream);
    EXPECT_EQ(da.time, db.time);
    EXPECT_EQ(da.tokens, db.tokens);
  }
  for (StreamId s = 0; s < a.num_streams(); ++s) {
    for (Timestamp t = a.window_start(); t < a.timeline_length(); ++t) {
      EXPECT_EQ(a.DocumentsAt(s, t), b.DocumentsAt(s, t));
    }
  }
}

Collection MakeRollbackFixture() {
  auto c = Collection::Create(2);
  EXPECT_TRUE(c.ok());
  StreamId s0 = c->AddStream("A", {}, {});
  StreamId s1 = c->AddStream("B", {}, {});
  TermId w = c->mutable_vocabulary()->Intern("w");
  TermId v = c->mutable_vocabulary()->Intern("v");
  EXPECT_TRUE(c->AddDocument(s0, 0, {w}).ok());
  EXPECT_TRUE(c->AddDocument(s1, 1, {w, v}).ok());
  Snapshot snap;
  snap.push_back(SnapshotDocument{s0, {v}});
  EXPECT_TRUE(c->Append(std::move(snap)).ok());
  return std::move(*c);
}

TEST(CollectionRollback, AppendRoundTripRestoresEverything) {
  Collection c = MakeRollbackFixture();
  const Collection before = c;
  const Timestamp old_timeline = c.timeline_length();
  const size_t old_docs = c.num_documents();

  Snapshot snap;
  snap.push_back(SnapshotDocument{0, {0, 1}});
  snap.push_back(SnapshotDocument{1, {1}});
  ASSERT_TRUE(c.Append(std::move(snap)).ok());
  ASSERT_TRUE(c.Append({}).ok());  // rollback spans multiple appends too

  c.RollbackAppend(old_timeline, old_docs);
  ExpectSameState(c, before);
}

TEST(CollectionRollback, EvictRoundTripFastPath) {
  Collection c = MakeRollbackFixture();
  const Collection before = c;

  CollectionEvictUndo undo;
  EvictionReport report;
  ASSERT_TRUE(c.EvictBefore(2, &report, &undo).ok());
  ASSERT_TRUE(report.ids_preserved);
  ASSERT_EQ(c.num_documents(), 1u);
  ASSERT_TRUE(undo.applied);

  c.RollbackEvict(std::move(undo));
  ExpectSameState(c, before);
}

TEST(CollectionRollback, EvictRoundTripRenumberingPath) {
  auto created = Collection::Create(4);
  ASSERT_TRUE(created.ok());
  Collection c = std::move(*created);
  StreamId s = c.AddStream("A", {}, {});
  TermId w = c.mutable_vocabulary()->Intern("w");
  // Out-of-order history forces the full-copy undo.
  ASSERT_TRUE(c.AddDocument(s, 3, {w}).ok());
  ASSERT_TRUE(c.AddDocument(s, 0, {w, w}).ok());
  ASSERT_TRUE(c.AddDocument(s, 2, {w}).ok());
  const Collection before = c;

  CollectionEvictUndo undo;
  EvictionReport report;
  ASSERT_TRUE(c.EvictBefore(2, &report, &undo).ok());
  ASSERT_FALSE(report.ids_preserved);
  ASSERT_TRUE(undo.full_copy);

  c.RollbackEvict(std::move(undo));
  ExpectSameState(c, before);
}

TEST(CollectionRollback, UnappliedUndoIsANoOp) {
  Collection c = MakeRollbackFixture();
  const Collection before = c;
  CollectionEvictUndo undo;  // never handed to an eviction
  c.RollbackEvict(std::move(undo));
  ExpectSameState(c, before);
}

TEST(CollectionRetention, OutOfRangeCutoffLeavesStateUntouched) {
  Collection c = MakeRollbackFixture();
  const Collection before = c;
  CollectionEvictUndo undo;
  EvictionReport report;
  ASSERT_TRUE(c.EvictBefore(c.timeline_length() + 1, &report, &undo)
                  .IsOutOfRange());
  // A defined no-op: coherent "nothing moved" report, unapplied undo, and
  // bitwise-unchanged state.
  EXPECT_EQ(report.evicted_documents, 0u);
  EXPECT_TRUE(report.ids_preserved);
  EXPECT_FALSE(undo.applied);
  ExpectSameState(c, before);
}

TEST(Collection, MdsProjectionRequiresStreams) {
  auto c = Collection::Create(2);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->ProjectStreamsWithMds().IsFailedPrecondition());
}

TEST(Collection, MdsProjectionPreservesNeighborhoods) {
  auto c = Collection::Create(2);
  ASSERT_TRUE(c.ok());
  c->AddStream("London", GeoPoint{51.51, -0.13}, {});
  c->AddStream("Paris", GeoPoint{48.86, 2.35}, {});
  c->AddStream("Tokyo", GeoPoint{35.68, 139.69}, {});
  ASSERT_TRUE(c->ProjectStreamsWithMds().ok());
  auto pos = c->StreamPositions();
  double lp = EuclideanDistance(pos[0], pos[1]);
  double lt = EuclideanDistance(pos[0], pos[2]);
  EXPECT_LT(lp, lt);
}

}  // namespace
}  // namespace stburst
