// Tests for stream/feed_runtime: the long-running live-feed runtime — tick
// determinism across thread counts, the bounded-memory plateau under a
// retention window, retention edge cases (burst at the window boundary,
// re-appending an evicted term), and the quiet-term refresh policy.

#include "stburst/stream/feed_runtime.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "index_test_util.h"
#include "stburst/common/random.h"
#include "stburst/core/expected.h"
#include "stburst/index/search_engine.h"

namespace stburst {
namespace {

// The full-rebuild reference for search serving: a from-scratch
// BurstySearchEngine over the retained collection and the *standing*
// patterns (search serving is consistent with result(), staleness and all,
// not with a hypothetical fresh mine).
InvertedIndex RebuildReferenceSearchIndex(const FeedRuntime& runtime,
                                          SearchServing source) {
  PatternIndex patterns;
  for (TermId t = 0; t < runtime.result().terms.size(); ++t) {
    const TermPatterns& slot = runtime.result().terms[t];
    if (source == SearchServing::kCombinatorial) {
      for (const auto& p : slot.combinatorial) patterns.AddCombinatorial(t, p);
    } else {
      for (const auto& w : slot.regional) patterns.AddWindow(t, w);
    }
  }
  auto engine = BurstySearchEngine::Build(runtime.collection(), patterns);
  // Copy out the index (the engine owns it); postings/maps copy cleanly.
  return engine.index();
}

Collection MakeSeedCollection(size_t num_streams, Timestamp timeline,
                              size_t vocab) {
  auto c = Collection::Create(timeline);
  EXPECT_TRUE(c.ok());
  for (size_t s = 0; s < num_streams; ++s) {
    c->AddStream("s" + std::to_string(s), {},
                 Point2D{static_cast<double>(s % 4), static_cast<double>(s / 4)});
  }
  Vocabulary* v = c->mutable_vocabulary();
  for (size_t t = 0; t < vocab; ++t) v->Intern("term" + std::to_string(t));
  return std::move(*c);
}

// One deterministic feed tick: a handful of Zipf-ish documents per stream.
Snapshot MakeSnapshot(Rng& rng, size_t num_streams, size_t vocab) {
  Snapshot snap;
  for (StreamId s = 0; s < num_streams; ++s) {
    size_t docs = 1 + rng.NextUint64(3);
    for (size_t d = 0; d < docs; ++d) {
      SnapshotDocument doc;
      doc.stream = s;
      size_t len = 2 + rng.NextUint64(4);
      for (size_t i = 0; i < len; ++i) {
        TermId tok = static_cast<TermId>(rng.NextUint64(vocab));
        if (rng.Bernoulli(0.5)) tok = static_cast<TermId>(tok % (vocab / 4 + 1));
        doc.tokens.push_back(tok);
      }
      snap.push_back(std::move(doc));
    }
  }
  return snap;
}

void ExpectIdenticalResults(const BatchMineResult& a, const BatchMineResult& b) {
  ASSERT_EQ(a.terms.size(), b.terms.size());
  EXPECT_EQ(a.terms_mined, b.terms_mined);
  EXPECT_EQ(a.terms_skipped, b.terms_skipped);
  for (size_t t = 0; t < a.terms.size(); ++t) {
    const TermPatterns& pa = a.terms[t];
    const TermPatterns& pb = b.terms[t];
    ASSERT_EQ(pa.mined, pb.mined) << "term " << t;
    ASSERT_EQ(pa.combinatorial.size(), pb.combinatorial.size()) << "term " << t;
    for (size_t i = 0; i < pa.combinatorial.size(); ++i) {
      EXPECT_EQ(pa.combinatorial[i].streams, pb.combinatorial[i].streams);
      EXPECT_EQ(pa.combinatorial[i].timeframe, pb.combinatorial[i].timeframe);
      EXPECT_EQ(pa.combinatorial[i].score, pb.combinatorial[i].score);
    }
    ASSERT_EQ(pa.regional.size(), pb.regional.size()) << "term " << t;
    for (size_t i = 0; i < pa.regional.size(); ++i) {
      EXPECT_EQ(pa.regional[i].streams, pb.regional[i].streams);
      EXPECT_EQ(pa.regional[i].timeframe, pb.regional[i].timeframe);
      EXPECT_EQ(pa.regional[i].score, pb.regional[i].score);
    }
  }
}

void ExpectIdenticalPostings(const FrequencyIndex& a, const FrequencyIndex& b) {
  ASSERT_EQ(a.num_terms(), b.num_terms());
  ASSERT_EQ(a.window_start(), b.window_start());
  ASSERT_EQ(a.timeline_length(), b.timeline_length());
  for (TermId t = 0; t < a.num_terms(); ++t) {
    const auto& pa = a.postings(t);
    const auto& pb = b.postings(t);
    ASSERT_EQ(pa.size(), pb.size()) << "term " << t;
    for (size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i].stream, pb[i].stream);
      EXPECT_EQ(pa[i].time, pb[i].time);
      EXPECT_EQ(pa[i].count, pb[i].count);
    }
  }
}

FeedRuntimeOptions BaseOptions(size_t threads) {
  FeedRuntimeOptions opts;
  opts.miner.stcomb.min_interval_burstiness = 0.05;
  opts.num_threads = threads;
  return opts;
}

TEST(FeedRuntime, TickOutputBitIdenticalAt1248Threads) {
  constexpr size_t kStreams = 8;
  constexpr size_t kVocab = 120;
  constexpr int kTicks = 40;

  std::unique_ptr<FeedRuntime> reference;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    FeedRuntimeOptions opts = BaseOptions(threads);
    opts.retention_window = 16;
    opts.refresh_budget = 6;
    opts.miner.mine_regional = true;
    opts.miner.positions.resize(kStreams);
    for (size_t s = 0; s < kStreams; ++s) {
      opts.miner.positions[s] =
          Point2D{static_cast<double>(s % 4), static_cast<double>(s / 4)};
    }
    opts.miner.model_factory = WithPriorFloor(
        [] { return std::make_unique<GlobalMeanModel>(); }, 0.2);

    opts.search_serving = SearchServing::kRegional;

    auto runtime = FeedRuntime::Create(MakeSeedCollection(kStreams, 4, kVocab),
                                       std::move(opts));
    ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();

    Rng rng(777);  // same seed per thread count -> same snapshot sequence
    for (int tick = 0; tick < kTicks; ++tick) {
      auto stats = runtime->Tick(MakeSnapshot(rng, kStreams, kVocab));
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    }
    if (reference == nullptr) {
      reference = std::make_unique<FeedRuntime>(std::move(*runtime));
    } else {
      ExpectIdenticalPostings(reference->index(), runtime->index());
      ExpectIdenticalResults(reference->result(), runtime->result());
      // The maintained search index is part of the bit-identical surface.
      ASSERT_NE(runtime->search_index(), nullptr);
      ExpectIdenticalIndexes(*reference->search_index(),
                             *runtime->search_index());
    }
  }
}

TEST(FeedRuntime, WindowedMemoryPlateausWhileUnwindowedGrows) {
  constexpr size_t kStreams = 6;
  constexpr size_t kVocab = 100;
  constexpr Timestamp kWindow = 50;
  constexpr int kTicks = 200;

  FeedRuntimeOptions windowed = BaseOptions(2);
  windowed.retention_window = kWindow;
  auto bounded = FeedRuntime::Create(MakeSeedCollection(kStreams, 1, kVocab),
                                     std::move(windowed));
  ASSERT_TRUE(bounded.ok());

  auto unbounded = FeedRuntime::Create(MakeSeedCollection(kStreams, 1, kVocab),
                                       BaseOptions(2));
  ASSERT_TRUE(unbounded.ok());

  Rng rng_a(99), rng_b(99);  // identical feeds
  size_t bounded_at_window = 0, bounded_peak_after = 0;
  size_t unbounded_at_window = 0;
  for (int tick = 0; tick < kTicks; ++tick) {
    ASSERT_TRUE(bounded->Tick(MakeSnapshot(rng_a, kStreams, kVocab)).ok());
    ASSERT_TRUE(unbounded->Tick(MakeSnapshot(rng_b, kStreams, kVocab)).ok());
    const size_t mem = bounded->index().PostingsMemoryBytes();
    if (tick + 1 == kWindow) {
      bounded_at_window = mem;
      unbounded_at_window = unbounded->index().PostingsMemoryBytes();
    } else if (tick + 1 > kWindow) {
      bounded_peak_after = std::max(bounded_peak_after, mem);
    }
  }

  // The windowed run plateaus: its peak after the window fills stays within
  // 1.5x of the steady state at snapshot W.
  ASSERT_GT(bounded_at_window, 0u);
  EXPECT_LE(static_cast<double>(bounded_peak_after),
            1.5 * static_cast<double>(bounded_at_window))
      << "peak " << bounded_peak_after << " vs steady " << bounded_at_window;

  // The unwindowed run keeps growing roughly linearly: 200 snapshots hold
  // far more than 1.5x the postings of 50.
  const size_t unbounded_final = unbounded->index().PostingsMemoryBytes();
  EXPECT_GE(static_cast<double>(unbounded_final),
            2.5 * static_cast<double>(unbounded_at_window))
      << "final " << unbounded_final << " vs @window " << unbounded_at_window;

  // And the window actually slid: only the last W timestamps are retained.
  EXPECT_EQ(bounded->window_start(), bounded->collection().timeline_length() -
                                         kWindow);
  EXPECT_EQ(bounded->index().window_length(), kWindow);
}

// A burst whose first timestamp sits exactly on the eviction cutoff must
// survive eviction whole: the boundary is inclusive on the retained side.
TEST(FeedRuntime, WindowBoundaryExactlyAtBurstStart) {
  constexpr size_t kStreams = 3;
  constexpr size_t kVocab = 8;
  constexpr Timestamp kWindow = 6;
  const TermId burst_term = 1;

  FeedRuntimeOptions opts = BaseOptions(1);
  opts.retention_window = kWindow;
  auto runtime =
      FeedRuntime::Create(MakeSeedCollection(kStreams, 1, kVocab), opts);
  ASSERT_TRUE(runtime.ok());

  // Quiet filler first, then a 3-tick burst timed so that after the last
  // tick the window start lands exactly on the burst's first timestamp.
  auto quiet_tick = [&] {
    Snapshot snap;
    for (StreamId s = 0; s < kStreams; ++s) {
      snap.push_back(SnapshotDocument{s, {TermId{0}}, kNoEvent});
    }
    return snap;
  };
  auto burst_tick = [&] {
    Snapshot snap = quiet_tick();
    for (StreamId s = 0; s < kStreams; ++s) {
      snap.push_back(
          SnapshotDocument{s, {burst_term, burst_term, burst_term}, kNoEvent});
    }
    return snap;
  };

  // Timeline after Create: [0, 1). Ticks: 4 quiet (t=1..4), burst at
  // t=5,6,7, quiet at t=8,9,10. Window 6 over timeline 11 -> start at 5.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(runtime->Tick(quiet_tick()).ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(runtime->Tick(burst_tick()).ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(runtime->Tick(quiet_tick()).ok());

  ASSERT_EQ(runtime->window_start(), 5);
  const TermPatterns& slot = runtime->patterns(burst_term);
  ASSERT_TRUE(slot.mined);
  ASSERT_FALSE(slot.combinatorial.empty());
  // The burst [5, 7] starts exactly at the window boundary and must be
  // reported whole, in absolute timestamps.
  EXPECT_EQ(slot.combinatorial[0].timeframe, (Interval{5, 7}));
  EXPECT_EQ(slot.combinatorial[0].streams.size(), kStreams);
}

// A term whose postings are entirely evicted must come back cleanly when it
// reappears in a later snapshot: empty slot in between, fresh patterns after.
TEST(FeedRuntime, EvictedTermReappearsViaAppend) {
  constexpr size_t kStreams = 2;
  constexpr size_t kVocab = 6;
  const TermId comet = 2;

  FeedRuntimeOptions opts = BaseOptions(1);
  opts.retention_window = 4;
  auto runtime =
      FeedRuntime::Create(MakeSeedCollection(kStreams, 1, kVocab), opts);
  ASSERT_TRUE(runtime.ok());

  auto tick_with = [&](std::vector<TermId> tokens) {
    Snapshot snap;
    for (StreamId s = 0; s < kStreams; ++s) {
      snap.push_back(SnapshotDocument{s, {TermId{0}}, kNoEvent});
      if (!tokens.empty()) snap.push_back(SnapshotDocument{s, tokens, kNoEvent});
    }
    return runtime->Tick(std::move(snap));
  };

  // The term appears once, then goes quiet until its postings leave the
  // window entirely.
  ASSERT_TRUE(tick_with({comet, comet, comet}).ok());
  EXPECT_FALSE(runtime->index().postings(comet).empty());
  EXPECT_TRUE(runtime->patterns(comet).mined);

  for (int i = 0; i < 6; ++i) ASSERT_TRUE(tick_with({}).ok());
  EXPECT_TRUE(runtime->index().postings(comet).empty());
  // Eviction dirtied the term; the re-mine emptied its standing slot.
  EXPECT_FALSE(runtime->patterns(comet).mined);
  EXPECT_TRUE(runtime->patterns(comet).combinatorial.empty());

  // Reappearing is a plain append into the now-empty bucket.
  auto stats = tick_with({comet, comet, comet, comet});
  ASSERT_TRUE(stats.ok());
  const auto& postings = runtime->index().postings(comet);
  ASSERT_FALSE(postings.empty());
  for (const TermPosting& p : postings) {
    EXPECT_GE(p.time, runtime->window_start());
  }
  EXPECT_TRUE(runtime->patterns(comet).mined);
  ASSERT_FALSE(runtime->patterns(comet).combinatorial.empty());
  // The fresh burst is at the (absolute) final timestamp.
  EXPECT_EQ(runtime->patterns(comet).combinatorial[0].timeframe.start,
            runtime->collection().timeline_length() - 1);
}

// The runtime's incrementally maintained index must equal a from-scratch
// build over the evicted collection — retention does not break the
// append/rebuild equivalence invariant.
TEST(FeedRuntime, WindowedIndexMatchesRebuildFromEvictedCollection) {
  constexpr size_t kStreams = 5;
  constexpr size_t kVocab = 60;

  FeedRuntimeOptions opts = BaseOptions(3);
  opts.retention_window = 12;
  auto runtime =
      FeedRuntime::Create(MakeSeedCollection(kStreams, 3, kVocab), opts);
  ASSERT_TRUE(runtime.ok());

  Rng rng(4242);
  for (int tick = 0; tick < 30; ++tick) {
    ASSERT_TRUE(runtime->Tick(MakeSnapshot(rng, kStreams, kVocab)).ok());
  }

  FrequencyIndex rebuilt = FrequencyIndex::Build(runtime->collection(), 4);
  ExpectIdenticalPostings(runtime->index(), rebuilt);
}

TEST(FeedRuntime, SearchServingMatchesFullRebuildEveryTick) {
  // The tentpole acceptance: through appends, evictions, dirty re-mines,
  // and refresh sweeps, the incrementally maintained search index must stay
  // posting-identical to a from-scratch engine build over the retained
  // collection and standing patterns — and each editing tick must bump the
  // generation exactly once.
  constexpr size_t kStreams = 5;
  constexpr size_t kVocab = 50;

  FeedRuntimeOptions opts = BaseOptions(2);
  opts.retention_window = 10;
  opts.refresh_budget = 4;
  opts.search_serving = SearchServing::kCombinatorial;
  auto runtime =
      FeedRuntime::Create(MakeSeedCollection(kStreams, 3, kVocab), opts);
  ASSERT_TRUE(runtime.ok());
  ASSERT_NE(runtime->search_index(), nullptr);
  EXPECT_TRUE(runtime->search_index()->finalized());

  Rng rng(31337);
  uint64_t last_generation = runtime->search_index()->generation();
  for (int tick = 0; tick < 25; ++tick) {
    auto stats = runtime->Tick(MakeSnapshot(rng, kStreams, kVocab));
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(runtime->search_index()->generation(), last_generation + 1)
        << "tick " << tick;
    last_generation = runtime->search_index()->generation();

    InvertedIndex reference =
        RebuildReferenceSearchIndex(*runtime, SearchServing::kCombinatorial);
    ExpectIdenticalIndexes(*runtime->search_index(), reference);

    // Queries agree too, and carry the generation for cache invalidation.
    const std::vector<TermId> query = {TermId{0}, TermId{1}, TermId{2}};
    TopKResult live = runtime->Search(query, 5);
    TopKResult rebuilt = ThresholdTopK(reference, query, 5);
    ASSERT_EQ(live.docs.size(), rebuilt.docs.size());
    for (size_t i = 0; i < live.docs.size(); ++i) {
      EXPECT_EQ(live.docs[i], rebuilt.docs[i]);
    }
    EXPECT_EQ(live.generation, last_generation);
  }
  // The run exercised eviction (window 10, 25 ticks over a 3-deep seed).
  EXPECT_GT(runtime->window_start(), 0);
}

TEST(FeedRuntime, SearchGenerationStaysPutOnEditFreeTicks) {
  // A tick with no eviction, no dirty terms, and no refresh targets leaves
  // the search index bit-identical, so its generation must not move —
  // cached top-k results stay valid exactly as the contract promises.
  FeedRuntimeOptions opts = BaseOptions(1);
  opts.search_serving = SearchServing::kCombinatorial;
  Collection seed = MakeSeedCollection(2, 2, 6);
  for (Timestamp t = 0; t < 2; ++t) {
    for (StreamId s = 0; s < 2; ++s) {
      ASSERT_TRUE(seed.AddDocument(s, t, {TermId{0}, TermId{1}}).ok());
    }
  }
  auto runtime = FeedRuntime::Create(std::move(seed), opts);
  ASSERT_TRUE(runtime.ok());
  const uint64_t created = runtime->search_index()->generation();

  auto idle = runtime->Tick(Snapshot{});  // no docs, no window: no edits
  ASSERT_TRUE(idle.ok());
  EXPECT_EQ(idle->search_terms, 0u);
  EXPECT_EQ(runtime->search_index()->generation(), created);

  Snapshot snap;
  snap.push_back(SnapshotDocument{0, {TermId{0}}});
  auto editing = runtime->Tick(std::move(snap));  // dirty term: one bump
  ASSERT_TRUE(editing.ok());
  EXPECT_EQ(runtime->search_index()->generation(), created + 1);
}

TEST(FeedRuntime, SearchDisabledByDefault) {
  auto runtime = FeedRuntime::Create(MakeSeedCollection(2, 2, 6),
                                     BaseOptions(1));
  ASSERT_TRUE(runtime.ok());
  EXPECT_EQ(runtime->search_index(), nullptr);
}

TEST(FeedRuntime, RefreshSweepDrainsStaleness) {
  constexpr size_t kStreams = 4;
  constexpr size_t kVocab = 30;

  // A corpus where every term occurs in history with equal mass, then total
  // silence: no term is ever dirty again, so only the sweep mines. Equal
  // masses make the sweep a pure staleness rotation (ties to TermId).
  Collection seed = MakeSeedCollection(kStreams, 6, kVocab);
  for (Timestamp t = 0; t < 6; ++t) {
    for (StreamId s = 0; s < kStreams; ++s) {
      for (TermId term = 0; term < kVocab; ++term) {
        ASSERT_TRUE(seed.AddDocument(s, t, {term}).ok());
      }
    }
  }

  FeedRuntimeOptions opts = BaseOptions(2);
  opts.refresh_budget = 5;
  auto runtime = FeedRuntime::Create(std::move(seed), opts);
  ASSERT_TRUE(runtime.ok());

  // Ten empty ticks: no term is ever dirty, so only the sweep mines.
  size_t refreshed_total = 0;
  for (int tick = 0; tick < 10; ++tick) {
    auto stats = runtime->Tick(Snapshot{});
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->dirty_terms, 0u);
    EXPECT_LE(stats->refreshed_terms, 5u);
    refreshed_total += stats->refreshed_terms;
  }
  EXPECT_EQ(refreshed_total, 50u);  // budget fully used every tick

  // With 30 equal-mass terms and budget 5 the rotation cycles every 6
  // ticks, so after 10 ticks no term is staler than the cycle length — far
  // below the 10 ticks an unswept term would show.
  Timestamp max_stale = 0;
  for (TermId t = 0; t < kVocab; ++t) {
    max_stale = std::max(max_stale, runtime->staleness(t));
  }
  EXPECT_LE(max_stale, 6);
  EXPECT_GT(max_stale, 0);  // the rotation is budgeted, not instantaneous
}

TEST(FeedRuntime, RefreshSweepDrainsToZeroInSteadyState) {
  constexpr size_t kStreams = 4;
  constexpr size_t kVocab = 40;
  constexpr Timestamp kWindow = 8;

  FeedRuntimeOptions opts = BaseOptions(1);
  opts.retention_window = kWindow;
  opts.refresh_budget = 5;
  auto runtime =
      FeedRuntime::Create(MakeSeedCollection(kStreams, 1, kVocab), opts);
  ASSERT_TRUE(runtime.ok());

  Rng rng(808);
  std::vector<size_t> refreshed_per_tick;
  for (int tick = 0; tick < 30; ++tick) {
    auto stats = runtime->Tick(MakeSnapshot(rng, kStreams, kVocab));
    ASSERT_TRUE(stats.ok());
    refreshed_per_tick.push_back(stats->refreshed_terms);
  }
  // While the window grows, quiet terms' 1/N baseline drifts and the sweep
  // works; once every tick is a length-preserving slide, terms re-stamped
  // at the full window length are provably identical, so after a short
  // drain (each fill-era slot refreshed once) the sweep must go idle
  // instead of re-mining no-ops forever.
  size_t total = 0, tail = 0;
  for (size_t i = 0; i < refreshed_per_tick.size(); ++i) {
    total += refreshed_per_tick[i];
    if (i >= 20) tail += refreshed_per_tick[i];
  }
  EXPECT_GT(total, 0u);
  EXPECT_EQ(tail, 0u) << "sweep still re-mining in steady state";
}

TEST(FeedRuntime, RefreshPrefersMassTimesStaleness) {
  constexpr size_t kStreams = 2;
  // Two terms, same staleness; the heavier one must be refreshed first.
  Collection seed = MakeSeedCollection(kStreams, 3, 4);
  const TermId heavy = 0, light = 1;
  for (Timestamp t = 0; t < 3; ++t) {
    for (StreamId s = 0; s < kStreams; ++s) {
      ASSERT_TRUE(seed.AddDocument(s, t, {heavy, heavy, heavy, heavy}).ok());
      ASSERT_TRUE(seed.AddDocument(s, t, {light}).ok());
    }
  }

  FeedRuntimeOptions opts = BaseOptions(1);
  opts.refresh_budget = 1;
  auto runtime = FeedRuntime::Create(std::move(seed), opts);
  ASSERT_TRUE(runtime.ok());

  ASSERT_TRUE(runtime->Tick(Snapshot{}).ok());
  // Both were stale by 1; the budget-1 sweep picked the heavier term.
  EXPECT_EQ(runtime->staleness(heavy), 0);
  EXPECT_EQ(runtime->staleness(light), 1);

  ASSERT_TRUE(runtime->Tick(Snapshot{}).ok());
  // heavy carries 4x the mass, so heavy at staleness 1 (priority 24) still
  // outranks light at staleness 2 (priority 12): mass x staleness, not LRU.
  EXPECT_EQ(runtime->staleness(heavy), 0);
  EXPECT_EQ(runtime->staleness(light), 2);
}

TEST(FeedRuntime, CreateRejectsSearchServingWithoutItsPatternType) {
  // kRegional serving with combinatorial-only mining (and vice versa) would
  // silently serve an always-empty index; Create must refuse instead.
  FeedRuntimeOptions regional = BaseOptions(1);
  regional.search_serving = SearchServing::kRegional;  // mine_regional off
  EXPECT_TRUE(FeedRuntime::Create(MakeSeedCollection(2, 2, 4), regional)
                  .status()
                  .IsInvalidArgument());

  FeedRuntimeOptions combinatorial = BaseOptions(1);
  combinatorial.search_serving = SearchServing::kCombinatorial;
  combinatorial.miner.mine_combinatorial = false;
  EXPECT_TRUE(FeedRuntime::Create(MakeSeedCollection(2, 2, 4), combinatorial)
                  .status()
                  .IsInvalidArgument());
}

TEST(FeedRuntime, CreateRejectsNegativeWindow) {
  FeedRuntimeOptions opts = BaseOptions(1);
  opts.retention_window = -3;
  auto runtime =
      FeedRuntime::Create(MakeSeedCollection(2, 2, 4), std::move(opts));
  EXPECT_TRUE(runtime.status().IsInvalidArgument());
}

TEST(FeedRuntimeValidation, RejectTickIsAtomic) {
  // The strict default: one malformed document fails the whole tick with
  // InvalidArgument and nothing — timeline included — moves.
  auto runtime = FeedRuntime::Create(MakeSeedCollection(2, 2, 6),
                                     BaseOptions(1));
  ASSERT_TRUE(runtime.ok());
  const Timestamp before = runtime->collection().timeline_length();

  Snapshot bad_stream;
  bad_stream.push_back(SnapshotDocument{0, {TermId{1}}});
  bad_stream.push_back(SnapshotDocument{77, {TermId{1}}});
  EXPECT_TRUE(runtime->Tick(std::move(bad_stream)).status().IsInvalidArgument());

  Snapshot bad_token;
  bad_token.push_back(SnapshotDocument{0, {TermId{6}}});  // vocab is [0, 6)
  EXPECT_TRUE(runtime->Tick(std::move(bad_token)).status().IsInvalidArgument());

  Snapshot bad_sentinel;
  bad_sentinel.push_back(SnapshotDocument{0, {kInvalidTerm}});
  EXPECT_TRUE(
      runtime->Tick(std::move(bad_sentinel)).status().IsInvalidArgument());

  EXPECT_EQ(runtime->collection().timeline_length(), before);
  EXPECT_EQ(runtime->collection().num_documents(), 0u);

  // The rejected ticks left no residue: a clean tick proceeds normally.
  Snapshot good;
  good.push_back(SnapshotDocument{0, {TermId{1}}});
  auto stats = runtime->Tick(std::move(good));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->documents, 1u);
  EXPECT_EQ(runtime->collection().timeline_length(), before + 1);
}

TEST(FeedRuntimeValidation, DropDocumentQuarantinesAndIngestsTheRest) {
  FeedRuntimeOptions opts = BaseOptions(1);
  opts.on_invalid = InvalidDocPolicy::kDropDocument;
  auto quarantining = FeedRuntime::Create(MakeSeedCollection(2, 2, 6), opts);
  ASSERT_TRUE(quarantining.ok());
  auto control = FeedRuntime::Create(MakeSeedCollection(2, 2, 6),
                                     BaseOptions(1));
  ASSERT_TRUE(control.ok());

  Snapshot dirty;
  dirty.push_back(SnapshotDocument{0, {TermId{1}, TermId{2}}});
  dirty.push_back(SnapshotDocument{77, {TermId{1}}});       // unknown stream
  dirty.push_back(SnapshotDocument{1, {TermId{6}}});        // out of vocab
  dirty.push_back(SnapshotDocument{1, {TermId{3}}});
  auto stats = quarantining->Tick(std::move(dirty));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rejected_documents, 2u);
  EXPECT_EQ(stats->documents, 2u);

  // The surviving documents ingest exactly as a clean snapshot would.
  Snapshot clean;
  clean.push_back(SnapshotDocument{0, {TermId{1}, TermId{2}}});
  clean.push_back(SnapshotDocument{1, {TermId{3}}});
  auto control_stats = control->Tick(std::move(clean));
  ASSERT_TRUE(control_stats.ok());
  EXPECT_EQ(control_stats->rejected_documents, 0u);
  ExpectIdenticalPostings(quarantining->index(), control->index());
  ExpectIdenticalResults(quarantining->result(), control->result());
}

TEST(FeedRuntimeValidation, DuplicateEventReportsAreInvalid) {
  // The same stream re-reporting the same explicit event id in one snapshot
  // is a duplicate; documents without an event id never are, and different
  // streams may report the same event.
  FeedRuntimeOptions opts = BaseOptions(1);
  opts.on_invalid = InvalidDocPolicy::kDropDocument;
  auto runtime = FeedRuntime::Create(MakeSeedCollection(2, 2, 6), opts);
  ASSERT_TRUE(runtime.ok());

  Snapshot snap;
  snap.push_back(SnapshotDocument{0, {TermId{1}}, 9});
  snap.push_back(SnapshotDocument{0, {TermId{2}}, 9});   // duplicate
  snap.push_back(SnapshotDocument{1, {TermId{3}}, 9});   // other stream: fine
  snap.push_back(SnapshotDocument{0, {TermId{1}}});      // no id: fine
  snap.push_back(SnapshotDocument{0, {TermId{1}}});      // no id: fine
  auto stats = runtime->Tick(std::move(snap));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rejected_documents, 1u);
  EXPECT_EQ(stats->documents, 4u);

  auto strict = FeedRuntime::Create(MakeSeedCollection(2, 2, 6),
                                    BaseOptions(1));
  ASSERT_TRUE(strict.ok());
  Snapshot dup;
  dup.push_back(SnapshotDocument{0, {TermId{1}}, 4});
  dup.push_back(SnapshotDocument{0, {TermId{2}}, 4});
  EXPECT_TRUE(strict->Tick(std::move(dup)).status().IsInvalidArgument());
}

TEST(FeedRuntime, EmptySnapshotTickIsDefined) {
  // An empty snapshot is a quiet timestamp, not an error: the timeline
  // advances, nothing is mined, and every stat reads zero.
  auto runtime = FeedRuntime::Create(MakeSeedCollection(2, 2, 6),
                                     BaseOptions(1));
  ASSERT_TRUE(runtime.ok());
  const Timestamp before = runtime->collection().timeline_length();
  auto stats = runtime->Tick(Snapshot{});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->time, before);
  EXPECT_EQ(stats->documents, 0u);
  EXPECT_EQ(stats->dirty_terms, 0u);
  EXPECT_EQ(stats->rejected_documents, 0u);
  EXPECT_FALSE(stats->evicted);
  EXPECT_FALSE(stats->degraded);
  EXPECT_EQ(runtime->collection().timeline_length(), before + 1);
}

TEST(FeedRuntimeDeadline, LadderShedsRefreshThenDefersSearch) {
  constexpr size_t kStreams = 3;
  constexpr size_t kVocab = 12;

  FeedRuntimeOptions opts = BaseOptions(1);
  opts.refresh_budget = 3;
  opts.search_serving = SearchServing::kCombinatorial;
  opts.tick_deadline_seconds = 1.0;
  // Scripted clock: reads 0.0 once (the first tick's start), then 100.0
  // forever — so the first tick is over deadline at every later check and
  // every subsequent tick (start 100, checks 100) has headroom.
  auto calls = std::make_shared<int>(0);
  opts.clock = [calls]() { return (*calls)++ == 0 ? 0.0 : 100.0; };

  // Seed history so the first tick has dirty terms to re-mine and quiet
  // terms the sweep would want.
  Collection seed = MakeSeedCollection(kStreams, 3, kVocab);
  for (Timestamp t = 0; t < 3; ++t) {
    for (StreamId s = 0; s < kStreams; ++s) {
      for (TermId term = 0; term < kVocab; ++term) {
        ASSERT_TRUE(seed.AddDocument(s, t, {term}).ok());
      }
    }
  }
  auto runtime = FeedRuntime::Create(std::move(seed), opts);
  ASSERT_TRUE(runtime.ok());
  const uint64_t created_generation = runtime->search_index()->generation();

  // Over-deadline tick: correctness work (append + dirty re-mine) runs;
  // the refresh sweep is shed and search re-scoring deferred.
  Snapshot snap;
  snap.push_back(SnapshotDocument{0, {TermId{0}, TermId{0}}});
  auto degraded = runtime->Tick(std::move(snap));
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->degraded);
  EXPECT_EQ(degraded->dirty_terms, 1u);       // correctness always runs
  EXPECT_EQ(degraded->refreshed_terms, 0u);   // ladder step 1: shed
  EXPECT_EQ(degraded->search_terms, 0u);      // ladder step 2: deferred
  EXPECT_EQ(runtime->search_index()->generation(), created_generation);

  // The next tick has headroom: the deferred term is scored (catch-up),
  // the sweep runs again, and the index is back at full-rebuild parity.
  auto catchup = runtime->Tick(Snapshot{});
  ASSERT_TRUE(catchup.ok());
  EXPECT_FALSE(catchup->degraded);
  EXPECT_GE(catchup->search_terms, 1u);
  EXPECT_GT(runtime->search_index()->generation(), created_generation);
  ExpectIdenticalIndexes(
      *runtime->search_index(),
      RebuildReferenceSearchIndex(*runtime, SearchServing::kCombinatorial));
}

TEST(FeedRuntime, SearchEdgeCasesAreDefined) {
  FeedRuntimeOptions opts = BaseOptions(1);
  opts.search_serving = SearchServing::kCombinatorial;
  Collection seed = MakeSeedCollection(2, 3, 6);
  for (Timestamp t = 0; t < 3; ++t) {
    for (StreamId s = 0; s < 2; ++s) {
      ASSERT_TRUE(seed.AddDocument(s, t, {TermId{0}, TermId{1}}).ok());
    }
  }
  auto runtime = FeedRuntime::Create(std::move(seed), opts);
  ASSERT_TRUE(runtime.ok());

  // Empty query, k = 0, unknown-words-only, and out-of-range term ids all
  // return an empty (not crashed, not partial) result.
  EXPECT_TRUE(runtime->Search(std::string(""), 5).docs.empty());
  EXPECT_TRUE(runtime->Search("...!!!", 5).docs.empty());
  EXPECT_TRUE(runtime->Search("neverinterned words", 5).docs.empty());
  EXPECT_TRUE(runtime->Search(std::vector<TermId>{}, 5).docs.empty());
  EXPECT_TRUE(runtime->Search(std::vector<TermId>{TermId{0}}, 0).docs.empty());
  EXPECT_TRUE(
      runtime->Search(std::vector<TermId>{TermId{9999}}, 5).docs.empty());
}

}  // namespace
}  // namespace stburst
