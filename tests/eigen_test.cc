// Tests for the Jacobi symmetric eigensolver (geo/eigen).

#include "stburst/geo/eigen.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stburst/common/random.h"

namespace stburst {
namespace {

TEST(SymmetricEigen, RejectsBadInput) {
  EXPECT_TRUE(SymmetricEigen({}, 0).status().IsInvalidArgument());
  EXPECT_TRUE(SymmetricEigen({1.0, 2.0}, 2).status().IsInvalidArgument());
  // Asymmetric 2x2.
  EXPECT_TRUE(
      SymmetricEigen({1.0, 2.0, 3.0, 4.0}, 2).status().IsInvalidArgument());
}

TEST(SymmetricEigen, DiagonalMatrix) {
  auto result = SymmetricEigen({3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0}, 3);
  ASSERT_TRUE(result.ok());
  const auto& eig = *result;
  EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-10);
  EXPECT_NEAR(eig.values[2], 1.0, 1e-10);
}

TEST(SymmetricEigen, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  auto result = SymmetricEigen({2.0, 1.0, 1.0, 2.0}, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->values[0], 3.0, 1e-10);
  EXPECT_NEAR(result->values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  double v0 = result->vectors[0 * 2 + 0];
  double v1 = result->vectors[1 * 2 + 0];
  EXPECT_NEAR(std::abs(v0), 1.0 / std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(v0, v1, 1e-9);
}

// Property sweep: reconstruction, orthonormality, and trace preservation on
// random symmetric matrices of several sizes.
class EigenPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EigenPropertyTest, ReconstructsMatrix) {
  const size_t n = GetParam();
  Rng rng(100 + n);
  std::vector<double> a(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double v = rng.Uniform(-2.0, 2.0);
      a[i * n + j] = v;
      a[j * n + i] = v;
    }
  }
  auto result = SymmetricEigen(a, n);
  ASSERT_TRUE(result.ok());
  const auto& eig = *result;

  // A ≈ V diag(w) V^T.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (size_t k = 0; k < n; ++k) {
        sum += eig.vectors[i * n + k] * eig.values[k] * eig.vectors[j * n + k];
      }
      EXPECT_NEAR(sum, a[i * n + j], 1e-8) << "entry " << i << "," << j;
    }
  }

  // Columns orthonormal.
  for (size_t c1 = 0; c1 < n; ++c1) {
    for (size_t c2 = c1; c2 < n; ++c2) {
      double dot = 0.0;
      for (size_t i = 0; i < n; ++i) {
        dot += eig.vectors[i * n + c1] * eig.vectors[i * n + c2];
      }
      EXPECT_NEAR(dot, c1 == c2 ? 1.0 : 0.0, 1e-9);
    }
  }

  // Trace preserved; eigenvalues sorted descending.
  double trace = 0.0, wsum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    trace += a[i * n + i];
    wsum += eig.values[i];
  }
  EXPECT_NEAR(trace, wsum, 1e-8);
  for (size_t i = 1; i < n; ++i) {
    EXPECT_GE(eig.values[i - 1], eig.values[i] - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 40));

}  // namespace
}  // namespace stburst
