// Tests for the distGen/randGen synthetic generators (gen/generators).

#include "stburst/gen/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace stburst {
namespace {

GeneratorOptions SmallOptions() {
  GeneratorOptions o;
  o.timeline = 100;
  o.num_streams = 40;
  o.num_terms = 50;
  o.num_patterns = 30;
  o.seed = 11;
  return o;
}

TEST(SyntheticGenerator, ValidatesOptions) {
  GeneratorOptions o = SmallOptions();
  o.timeline = 0;
  EXPECT_TRUE(SyntheticGenerator::Create(GeneratorMode::kDist, o)
                  .status()
                  .IsInvalidArgument());
  o = SmallOptions();
  o.num_streams = 0;
  EXPECT_TRUE(SyntheticGenerator::Create(GeneratorMode::kDist, o)
                  .status()
                  .IsInvalidArgument());
  o = SmallOptions();
  o.shape_min = 0.9;  // must exceed 1
  EXPECT_TRUE(SyntheticGenerator::Create(GeneratorMode::kDist, o)
                  .status()
                  .IsInvalidArgument());
  o = SmallOptions();
  o.span_max = o.span_min - 1;
  EXPECT_TRUE(SyntheticGenerator::Create(GeneratorMode::kDist, o)
                  .status()
                  .IsInvalidArgument());
}

TEST(SyntheticGenerator, GroundTruthShape) {
  auto gen = SyntheticGenerator::Create(GeneratorMode::kDist, SmallOptions());
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(gen->positions().size(), 40u);
  EXPECT_EQ(gen->patterns().size(), 30u);
  for (const auto& p : gen->patterns()) {
    EXPECT_LT(p.term, 50u);
    EXPECT_TRUE(p.timeframe.valid());
    EXPECT_GE(p.timeframe.start, 0);
    EXPECT_LT(p.timeframe.end, 100);
    EXPECT_GE(p.streams.size(), SmallOptions().streams_min);
    EXPECT_LE(p.streams.size(), SmallOptions().streams_max);
    // Streams sorted and distinct.
    for (size_t i = 1; i < p.streams.size(); ++i) {
      EXPECT_LT(p.streams[i - 1], p.streams[i]);
    }
  }
}

TEST(SyntheticGenerator, PatternsForTermConsistent) {
  auto gen = SyntheticGenerator::Create(GeneratorMode::kRand, SmallOptions());
  ASSERT_TRUE(gen.ok());
  size_t total = 0;
  for (TermId t = 0; t < 50; ++t) {
    for (size_t idx : gen->PatternsForTerm(t)) {
      EXPECT_EQ(gen->patterns()[idx].term, t);
      ++total;
    }
  }
  EXPECT_EQ(total, gen->patterns().size());
  EXPECT_TRUE(gen->PatternsForTerm(9999).empty());
}

TEST(SyntheticGenerator, DeterministicAcrossInstances) {
  auto a = SyntheticGenerator::Create(GeneratorMode::kDist, SmallOptions());
  auto b = SyntheticGenerator::Create(GeneratorMode::kDist, SmallOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  TermSeries sa = a->GenerateTerm(7);
  TermSeries sb = b->GenerateTerm(7);
  for (StreamId s = 0; s < 40; ++s) {
    for (Timestamp t = 0; t < 100; ++t) {
      ASSERT_DOUBLE_EQ(sa.at(s, t), sb.at(s, t));
    }
  }
}

TEST(SyntheticGenerator, TermGenerationOrderIndependent) {
  auto a = SyntheticGenerator::Create(GeneratorMode::kDist, SmallOptions());
  ASSERT_TRUE(a.ok());
  TermSeries first = a->GenerateTerm(3);
  (void)a->GenerateTerm(9);  // interleave another term
  TermSeries again = a->GenerateTerm(3);
  for (StreamId s = 0; s < 40; ++s) {
    for (Timestamp t = 0; t < 100; ++t) {
      ASSERT_DOUBLE_EQ(first.at(s, t), again.at(s, t));
    }
  }
}

TEST(SyntheticGenerator, InjectedPatternRaisesFrequencies) {
  auto gen = SyntheticGenerator::Create(GeneratorMode::kDist, SmallOptions());
  ASSERT_TRUE(gen.ok());
  ASSERT_FALSE(gen->patterns().empty());
  const InjectedPattern& p = gen->patterns()[0];
  TermSeries series = gen->GenerateTerm(p.term);

  // Mean frequency of affected streams inside the timeframe must clearly
  // exceed the background mean.
  double in_sum = 0.0;
  size_t in_count = 0;
  for (StreamId s : p.streams) {
    for (Timestamp t = p.timeframe.start; t <= p.timeframe.end; ++t) {
      in_sum += series.at(s, t);
      ++in_count;
    }
  }
  double in_mean = in_sum / static_cast<double>(in_count);
  EXPECT_GT(in_mean, 3.0 * SmallOptions().background_mean);
}

TEST(SyntheticGenerator, DistGenIsSpatiallyLocal) {
  // The mean pairwise distance within distGen patterns must be well below
  // randGen's (which matches the map's global mean).
  GeneratorOptions o = SmallOptions();
  o.num_patterns = 60;
  // Patterns must be small relative to the stream population, otherwise any
  // subset necessarily spans most of the map and locality cannot show.
  o.streams_max = 8;
  auto dist = SyntheticGenerator::Create(GeneratorMode::kDist, o);
  auto rand = SyntheticGenerator::Create(GeneratorMode::kRand, o);
  ASSERT_TRUE(dist.ok() && rand.ok());

  auto mean_spread = [](const SyntheticGenerator& gen) {
    double total = 0.0;
    size_t pairs = 0;
    for (const auto& p : gen.patterns()) {
      for (size_t i = 0; i < p.streams.size(); ++i) {
        for (size_t j = i + 1; j < p.streams.size(); ++j) {
          total += EuclideanDistance(gen.positions()[p.streams[i]],
                                     gen.positions()[p.streams[j]]);
          ++pairs;
        }
      }
    }
    return total / static_cast<double>(pairs);
  };
  EXPECT_LT(mean_spread(*dist), 0.7 * mean_spread(*rand));
}

TEST(InjectedProfile, PeaksAtRequestedValue) {
  const double k = 2.5, c = 10.0, peak = 20.0;
  double max_seen = 0.0;
  for (Timestamp x = 0; x < 60; ++x) {
    max_seen = std::max(max_seen, InjectedProfile(x, k, c, peak));
  }
  EXPECT_NEAR(max_seen, peak, 0.5);  // discretization slack
  EXPECT_DOUBLE_EQ(InjectedProfile(-1, k, c, peak), 0.0);
}

TEST(SyntheticGenerator, BackgroundMeanRoughlyMatchesOption) {
  GeneratorOptions o = SmallOptions();
  o.num_patterns = 0;  // pure background
  auto gen = SyntheticGenerator::Create(GeneratorMode::kDist, o);
  ASSERT_TRUE(gen.ok());
  TermSeries series = gen->GenerateTerm(0);
  double mean = series.Total() / (40.0 * 100.0);
  EXPECT_NEAR(mean, o.background_mean, 0.05);
}

}  // namespace
}  // namespace stburst
