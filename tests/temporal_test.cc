// Tests for core/temporal: B_T (Eq. 1) and bursty interval extraction.

#include "stburst/core/temporal.h"

#include <gtest/gtest.h>

#include <vector>

#include "stburst/common/random.h"

namespace stburst {
namespace {

TEST(TemporalBurstiness, MatchesEquationOne) {
  std::vector<double> y = {1, 1, 8, 8, 1, 1};  // W = 20, N = 6
  Interval burst{2, 3};
  // (16/20) - (2/6) = 0.8 - 0.3333...
  EXPECT_NEAR(TemporalBurstiness(y, burst), 0.8 - 2.0 / 6.0, 1e-12);
}

TEST(TemporalBurstiness, WholeTimelineScoresZero) {
  std::vector<double> y = {2, 5, 1};
  EXPECT_NEAR(TemporalBurstiness(y, Interval{0, 2}), 0.0, 1e-12);
}

TEST(TemporalBurstiness, BoundedByOne) {
  Rng rng(1);
  std::vector<double> y(50);
  for (double& v : y) v = rng.Uniform(0.0, 10.0);
  for (int trial = 0; trial < 100; ++trial) {
    Timestamp a = static_cast<Timestamp>(rng.UniformInt(0, 49));
    Timestamp b = static_cast<Timestamp>(rng.UniformInt(a, 49));
    double bt = TemporalBurstiness(y, Interval{a, b});
    EXPECT_GE(bt, -1.0);
    EXPECT_LE(bt, 1.0);
  }
}

TEST(TemporalBurstiness, DegenerateInputs) {
  std::vector<double> empty;
  std::vector<double> two = {1, 2};
  std::vector<double> zeros = {0, 0, 0};
  EXPECT_DOUBLE_EQ(TemporalBurstiness(empty, Interval{0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(TemporalBurstiness(two, Interval{}), 0.0);
  EXPECT_DOUBLE_EQ(TemporalBurstiness(two, Interval{0, 5}), 0.0);  // OOR
  EXPECT_DOUBLE_EQ(TemporalBurstiness(zeros, Interval{0, 1}), 0.0);  // no mass
}

TEST(ExtractBurstyIntervals, FindsThePlantedBurst) {
  // Flat background of 1 with a strong burst at [10, 14].
  std::vector<double> y(30, 1.0);
  for (int t = 10; t <= 14; ++t) y[t] = 12.0;
  auto bursts = ExtractBurstyIntervals(y);
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].interval, (Interval{10, 14}));
  EXPECT_NEAR(bursts[0].burstiness, TemporalBurstiness(y, bursts[0].interval),
              1e-12);
  EXPECT_GT(bursts[0].burstiness, 0.5);
}

TEST(ExtractBurstyIntervals, FindsMultipleSeparatedBursts) {
  std::vector<double> y(60, 1.0);
  for (int t = 5; t <= 8; ++t) y[t] = 10.0;
  for (int t = 40; t <= 46; ++t) y[t] = 8.0;
  auto bursts = ExtractBurstyIntervals(y);
  ASSERT_EQ(bursts.size(), 2u);
  EXPECT_EQ(bursts[0].interval, (Interval{5, 8}));
  EXPECT_EQ(bursts[1].interval, (Interval{40, 46}));
}

TEST(ExtractBurstyIntervals, NonOverlappingAndOrdered) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> y(120);
    for (double& v : y) v = rng.Exponential(1.0);
    auto bursts = ExtractBurstyIntervals(y);
    for (size_t i = 1; i < bursts.size(); ++i) {
      EXPECT_GT(bursts[i].interval.start, bursts[i - 1].interval.end);
    }
    for (const auto& b : bursts) {
      EXPECT_GT(b.burstiness, 0.0);
      EXPECT_LE(b.burstiness, 1.0);
      // Score consistency with the definition.
      EXPECT_NEAR(b.burstiness, TemporalBurstiness(y, b.interval), 1e-9);
    }
  }
}

TEST(ExtractBurstyIntervals, ThresholdFilters) {
  std::vector<double> y(30, 1.0);
  for (int t = 10; t <= 14; ++t) y[t] = 12.0;  // strong burst
  y[25] = 4.0;                                 // small blip
  auto all = ExtractBurstyIntervals(y, 0.0);
  auto strong = ExtractBurstyIntervals(y, 0.3);
  EXPECT_GT(all.size(), strong.size());
  ASSERT_EQ(strong.size(), 1u);
  EXPECT_EQ(strong[0].interval, (Interval{10, 14}));
}

TEST(ExtractBurstyIntervals, UniformSequenceHasNoBursts) {
  std::vector<double> y(50, 3.0);
  EXPECT_TRUE(ExtractBurstyIntervals(y).empty());
}

TEST(ExtractBurstyIntervals, ZeroOrEmptySequence) {
  EXPECT_TRUE(ExtractBurstyIntervals({}).empty());
  EXPECT_TRUE(ExtractBurstyIntervals(std::vector<double>(10, 0.0)).empty());
}

}  // namespace
}  // namespace stburst
